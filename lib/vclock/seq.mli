(** Vector-clock race detectors for the depth-first interpreter,
    report-identical to the ESP-bags detectors ({!Espbags.Detector},
    {!Espbags.Reference}) — same SRW/MRW flavours, same packed hot path,
    but concurrency decided by {!Clock} tests instead of union-find
    bags.  Under depth-first delivery both predicates compute precise
    may-happen-in-parallel for async-finish programs, which the
    differential suite checks record-for-record. *)

type mode = Espbags.Detector.mode = Srw | Mrw

val pp_mode : mode Fmt.t

type t = private {
  mode : mode;
  mutable monitor : Rt.Monitor.t;  (** pass to {!Rt.Interp.run} *)
  steps : Sdpst.Node.t Tdrutil.Vec.t;
  r_buf : Tdrutil.Ivec.t;
      (** packed race records, same layout as {!Espbags.Detector} *)
  clocks : Clock.t Tdrutil.Vec.t;  (** task index -> clock *)
  mutable task_stack : int list;
  mutable fin_stack : Clock.t list;
  mutable cur : Clock.t;
  mutable cur_tidx : int;
  mutable intern : Rt.Addr.Intern.t;
  mutable n_accesses : int;
  mutable n_locations : int;
  mutable n_skipped : int;
  mutable n_tasks : int;
  mutable n_merges : int;
  mutable n_scan_entries : int;
}

(** Races recorded so far, in report order. *)
val races : t -> Espbags.Race.t list

(** ["detector."]-prefixed counters for an {!Obs.Metrics} registry;
    vclock-specific keys are [detector.tasks], [detector.clock_merges]
    and [detector.scan_entries]. *)
val stats : t -> (string * int) list

val race_count : t -> int

(** No race reported? *)
val clean : t -> bool

(** Fresh detector of the given flavour. *)
val make : mode -> t

(** Same contract as {!Espbags.Detector.detect}: [keep] is a
    per-statement monitoring predicate; rejected accesses are skipped
    and counted in [n_skipped]. *)
val detect :
  ?fuel:int ->
  ?keep:(bid:int -> idx:int -> bool) ->
  mode ->
  Mhj.Ast.program ->
  t * Rt.Interp.result
