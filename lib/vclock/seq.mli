(** Vector-clock race detectors for the depth-first interpreter,
    report-identical to the ESP-bags detectors ({!Espbags.Detector},
    {!Espbags.Reference}) — same SRW/MRW flavours, same packed hot path,
    but concurrency decided by {!Clock} tests instead of union-find
    bags.  Under depth-first delivery both predicates compute precise
    may-happen-in-parallel for async-finish programs, which the
    differential suite checks record-for-record.

    At scale, memory stays bounded without changing reports (DESIGN.md
    §15): shadow tables grow in slab chunks, dead tasks' clocks are
    released at task end, epoch GC retires shadow entries that are
    permanently ordered before all future work, and race-record overflow
    spills to disk. *)

type mode = Espbags.Detector.mode = Srw | Mrw

val pp_mode : mode Fmt.t

type t = private {
  mode : mode;
  mutable monitor : Rt.Monitor.t;  (** pass to {!Rt.Interp.run} *)
  steps : Sdpst.Node.t Tdrutil.Vec.t;
  r_buf : Tdrutil.Ivec.t;
      (** packed race records, same layout as {!Espbags.Detector} *)
  spill : Espbags.Spill.t option;
      (** overflow sink: past its cap, [r_buf] drains to disk *)
  mutable spill_gen : int;  (** drains so far (invalidates scan memos) *)
  clocks : Clock.t Tdrutil.Vec.t;
      (** task index -> clock; replaced by [dead] once the task ends *)
  dead : Clock.t;  (** shared sentinel standing in for released clocks *)
  mutable task_stack : int list;
  mutable fin_stack : Clock.t list;
  mutable cur : Clock.t;
  mutable cur_tidx : int;
  mutable retire_ver : int;  (** epoch-GC retirement waves so far *)
  mutable retire_clock : Clock.t;
      (** root-clock snapshot of the last wave (see seq.ml) *)
  mutable intern : Rt.Addr.Intern.t;
  mutable n_accesses : int;
  mutable n_locations : int;
  mutable n_skipped : int;
  mutable n_tasks : int;
  mutable n_merges : int;
  mutable n_scan_entries : int;
  mutable n_retired : int;  (** shadow entries dropped by epoch GC *)
  mutable n_clocks_freed : int;  (** clocks released at task end *)
  mutable shadow_info : unit -> int * int;
      (** current (slab count, allocated shadow words) *)
}

(** Races recorded so far (including any spilled to disk), in report
    order. *)
val races : t -> Espbags.Race.t list

(** ["detector."]-prefixed counters for an {!Obs.Metrics} registry;
    vclock-specific keys are [detector.tasks], [detector.clock_merges],
    [detector.scan_entries] and [detector.clocks_freed]; shared scaling
    keys are [detector.shadow_slabs], [detector.shadow_words],
    [detector.gc_retired] and [detector.spilled_races]. *)
val stats : t -> (string * int) list

(** Including spilled records. *)
val race_count : t -> int

(** Race records spilled to disk so far. *)
val n_spilled : t -> int

(** Allocated shadow slab count / words. *)
val shadow_slabs : t -> int

val shadow_words : t -> int

(** No race reported? *)
val clean : t -> bool

(** Fresh detector of the given flavour.  [layout] picks the shadow
    growth policy (default: slab-chunked); [spill] bounds in-memory race
    records.  Neither changes the reported races. *)
val make :
  ?layout:Tdrutil.Islab.layout -> ?spill:Espbags.Spill.config -> mode -> t

(** Same contract as {!Espbags.Detector.detect}: [keep] is a
    per-statement monitoring predicate; rejected accesses are skipped
    and counted in [n_skipped].  [layout] and [spill] as in {!make}. *)
val detect :
  ?fuel:int ->
  ?keep:(bid:int -> idx:int -> bool) ->
  ?layout:Tdrutil.Islab.layout ->
  ?spill:Espbags.Spill.config ->
  mode ->
  Mhj.Ast.program ->
  t * Rt.Interp.result
