(** Parallel MRW vector-clock race detection: a {!Par.Emon}
    implementation that detects races {e during} actual parallel
    execution under {!Par.Engine}, sharded by address range.

    Concurrency is the same logical happens-before as {!Seq} (clock
    coverage), which is schedule-independent, so the reported {e static}
    race set matches the sequential MRW oracle's on every schedule —
    the property the parallel differential tests check. *)

type t

(** Fresh detector; attach {!emon} to {!Par.Engine.run}. *)
val make : unit -> t

val emon : t -> Par.Emon.t

(** Distinct races as sorted static keys
    (see {!Espbags.Race.static_key_of_race}), addresses rendered in
    source-level form.
    @raise Invalid_argument if the detector never received [on_init] *)
val races : t -> ((int * int * bool) * (int * int * bool) * string) list

val race_count : t -> int

val clean : t -> bool

(** ["detector."]-prefixed counters; parallel-specific keys match
    {!Seq.stats} minus [detector.skipped] (no static pruning here). *)
val stats : t -> (string * int) list

(** Run [prog] under {!Par.Engine.run} with a fresh detector attached;
    [mode] picks the schedule ({!Par.Engine.Fuzz} for deterministic
    interleavings, {!Par.Engine.Domains} for real parallelism). *)
val detect :
  ?fuel:int ->
  ?pace_ns:int ->
  ?policy:Par.Engine.policy ->
  mode:Par.Engine.mode ->
  Mhj.Ast.program ->
  t * Par.Engine.result
