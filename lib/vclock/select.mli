(** Static backend auto-selection for [--backend=auto]: picks ESP-bags
    or vector clocks from syntactic workload features (task fan-out
    shape, async nesting depth) and explains the choice. *)

type choice = [ `Espbags | `Vclock ]

val pp_choice : choice Fmt.t

type features = {
  n_async : int;
  n_finish : int;
  n_loop_async : int;  (** asyncs spawned directly from a loop body *)
  max_async_depth : int;  (** deepest syntactic async nesting *)
}

val features : Mhj.Ast.program -> features

(** Pick a backend; the string is the human-readable reason, reported by
    the CLI and logged in [report.metrics]. *)
val choose : Mhj.Ast.program -> choice * string
