(** Vector-clock race detectors for the sequential (depth-first)
    interpreter, report-identical to the ESP-bags detectors.

    Same two flavours as {!Espbags.Detector} ({b SRW} single
    reader/writer slot, {b MRW} full access lists), same packed hot-path
    representation (slab shadow tables over interned ids, packed race
    records, per-step epoch dedup, scan replay, disk spill of race-record
    overflow) — but concurrency is decided by vector clocks ({!Clock})
    instead of union-find bags.

    Under the depth-first execution both predicates compute precise
    may-happen-in-parallel for async-finish programs, so for every
    recorded shadow entry the clock test [not (covers current t e)]
    answers exactly like [Bags.in_pbag t]:

    - an entry by an ancestor (or an earlier epoch of the current task
      itself) was inherited at fork time — covered, ordered;
    - an entry by a task that ended but whose join finish is still open
      has not been merged anywhere the current task can see — not
      covered, concurrent (ESP-bags: in a P-bag);
    - once the finish ends, the accumulator merge makes the current task
      cover every joined epoch — ordered again (ESP-bags: P-bag unioned
      into the S-bag).

    The differential suite holds this module's race records byte-equal
    to {!Espbags.Reference}'s.  The scan-replay optimization remains
    valid here because a task's clock only changes at structural
    transitions, never inside a step.

    {b Memory bounds at scale} (DESIGN.md §15), mirroring the ESP-bags
    backend:

    - a task's clock is released the moment the task ends (it is only
      ever read at its own forks and its end-merge), collapsing clock
      footprint from all-tasks to live-tasks — the vclock analogue of
      "retiring dead task ids";
    - {e epoch GC}: when a finish closes with only the root task live,
      every entry covered by the root's clock {e at that moment} is
      permanently ordered before everything that can still run (all
      future tasks fork, transitively, from the root and inherit that
      clock), so MRW entries passing [covers retire_clock] are dropped
      lazily per location;
    - shadow slabs and race-record spill exactly as in
      {!Espbags.Detector}. *)

type mode = Espbags.Detector.mode = Srw | Mrw

let pp_mode = Espbags.Detector.pp_mode

let mode_name = function Srw -> "SRW" | Mrw -> "MRW"

type t = {
  mode : mode;
  mutable monitor : Rt.Monitor.t;  (** pass to {!Rt.Interp.run} *)
  steps : Sdpst.Node.t Tdrutil.Vec.t;
      (** step id -> step node, filled on each step's first access *)
  r_buf : Tdrutil.Ivec.t;
      (** race records, stride 2, packed like {!Espbags.Detector}:
          [(src lsl 31) lor sink], then [(addr lsl 2) lor kind] *)
  spill : Espbags.Spill.t option;
      (** overflow sink: past its cap, [r_buf] drains to disk *)
  mutable spill_gen : int;  (** drains so far (invalidates scan memos) *)
  clocks : Clock.t Tdrutil.Vec.t;
      (** task index -> clock; replaced by [dead] once the task ends *)
  dead : Clock.t;  (** shared sentinel standing in for released clocks *)
  mutable task_stack : int list;  (** task indices, innermost first *)
  mutable fin_stack : Clock.t list;  (** open finishes' accumulators *)
  mutable cur : Clock.t;  (** current task's clock (cached stack top) *)
  mutable cur_tidx : int;
  mutable retire_ver : int;
      (** retirement waves so far; per-location stamps compare against it *)
  mutable retire_clock : Clock.t;
      (** snapshot of the root's clock at the last wave — entries it
          covers are permanently ordered (see the module comment) *)
  mutable intern : Rt.Addr.Intern.t;
  mutable n_accesses : int;
  mutable n_locations : int;
  mutable n_skipped : int;
  mutable n_tasks : int;
  mutable n_merges : int;  (** clock fold/merge operations *)
  mutable n_scan_entries : int;  (** MRW shadow entries scanned *)
  mutable n_retired : int;  (** shadow entries dropped by epoch GC *)
  mutable n_clocks_freed : int;  (** clocks released at task end *)
  mutable shadow_info : unit -> int * int;
      (** current (slab count, allocated shadow words) *)
}

let wr = 0

and rw = 1

and ww = 2

let kind_of_code = Espbags.Trace_fmt.kind_of_code

let n_spilled t =
  match t.spill with None -> 0 | Some sp -> Espbags.Spill.n_spilled sp

let race_count t = n_spilled t + (Tdrutil.Ivec.length t.r_buf / 2)

let clean t = race_count t = 0

let sid_mask = (1 lsl 31) - 1

let races t =
  let node i = Tdrutil.Vec.unsafe_get t.steps i in
  let rec go i acc =
    if i < 0 then acc
    else
      let ss = Tdrutil.Ivec.unsafe_get t.r_buf i
      and meta = Tdrutil.Ivec.unsafe_get t.r_buf (i + 1) in
      go (i - 2)
        (Espbags.Race.make
           ~src:(node (ss lsr 31))
           ~sink:(node (ss land sid_mask))
           ~addr:(Rt.Addr.Intern.of_id t.intern (meta lsr 2))
           ~kind:(kind_of_code (meta land 3))
        :: acc)
  in
  let in_mem = go (Tdrutil.Ivec.length t.r_buf - 2) [] in
  match t.spill with
  | None -> in_mem
  | Some sp ->
      Espbags.Spill.records sp ~resolve:(fun sid -> Tdrutil.Vec.get t.steps sid)
      @ in_mem

let shadow_slabs t = fst (t.shadow_info ())

let shadow_words t = snd (t.shadow_info ())

let stats t =
  let slabs, words = t.shadow_info () in
  [
    ("detector.accesses", t.n_accesses);
    ("detector.locations", t.n_locations);
    ("detector.races", race_count t);
    ("detector.skipped", t.n_skipped);
    ("detector.tasks", t.n_tasks);
    ("detector.clock_merges", t.n_merges);
    ("detector.scan_entries", t.n_scan_entries);
    ("detector.shadow_slabs", slabs);
    ("detector.shadow_words", words);
    ("detector.gc_retired", t.n_retired);
    ("detector.clocks_freed", t.n_clocks_freed);
    ("detector.spilled_races", n_spilled t);
  ]

let check_sid sid =
  if sid < 0 || sid >= 1 lsl 31 then
    invalid_arg "Vclock.Seq: step id exceeds 31 bits"

let check_tidx tidx =
  if tidx < 0 || tidx >= 1 lsl 31 then
    invalid_arg "Vclock.Seq: task index exceeds 31 bits"

let dummy_step () = (Sdpst.Node.create_tree ~main_bid:(-1)).Sdpst.Node.root

let register_step det ~dummy step sid =
  Tdrutil.Vec.ensure det.steps (sid + 1) ~fill:dummy;
  if Tdrutil.Vec.unsafe_get det.steps sid == dummy then
    Tdrutil.Vec.unsafe_set det.steps sid step

let maybe_spill det =
  match det.spill with
  | None -> ()
  | Some sp ->
      if Tdrutil.Ivec.length det.r_buf >= Espbags.Spill.cap_ints sp then begin
        Espbags.Spill.append sp ~intern:det.intern det.r_buf;
        Tdrutil.Ivec.clear det.r_buf;
        Tdrutil.Ivec.compact det.r_buf;
        det.spill_gen <- det.spill_gen + 1
      end

(* ------------------------------------------------------------------ *)
(* Structural transitions                                               *)
(* ------------------------------------------------------------------ *)

let task_begin det =
  let tidx = det.n_tasks in
  check_tidx tidx;
  det.n_tasks <- tidx + 1;
  let c =
    match det.task_stack with
    | [] ->
        let c = Clock.create () in
        Clock.set c tidx 1;
        c
    | parent :: _ ->
        let pc = Tdrutil.Vec.get det.clocks parent in
        (* copy before the parent's self-increment: accesses the parent
           recorded before this fork are inherited (ordered), accesses
           after it are not *)
        let c = Clock.copy pc in
        Clock.set c tidx 1;
        Clock.incr pc parent;
        c
  in
  Tdrutil.Vec.ensure det.clocks (tidx + 1) ~fill:c;
  Tdrutil.Vec.unsafe_set det.clocks tidx c;
  det.task_stack <- tidx :: det.task_stack;
  det.cur <- c;
  det.cur_tidx <- tidx

let task_end det =
  match det.task_stack with
  | [] -> invalid_arg "Vclock.Seq.task_end: empty task stack"
  | tidx :: rest ->
      det.task_stack <- rest;
      (match det.fin_stack with
      | [] -> ()  (* root task: nothing joins it *)
      | acc :: _ ->
          Clock.merge ~into:acc (Tdrutil.Vec.get det.clocks tidx);
          det.n_merges <- det.n_merges + 1);
      (* the ended task's clock is only ever read at its own forks and
         the end-merge above — release it, so clock footprint tracks the
         live tasks (O(depth)) instead of every task ever forked *)
      Tdrutil.Vec.unsafe_set det.clocks tidx det.dead;
      det.n_clocks_freed <- det.n_clocks_freed + 1;
      (match rest with
      | [] -> ()
      | parent :: _ ->
          det.cur <- Tdrutil.Vec.get det.clocks parent;
          det.cur_tidx <- parent)

let finish_begin det = det.fin_stack <- Clock.create () :: det.fin_stack

let finish_end det =
  match det.fin_stack with
  | [] -> invalid_arg "Vclock.Seq.finish_end: empty finish stack"
  | acc :: rest ->
      det.fin_stack <- rest;
      (* every task joined here folded its clock into [acc]; the merge
         orders all of their accesses before the continuation *)
      Clock.merge ~into:det.cur acc;
      det.n_merges <- det.n_merges + 1;
      (match det.task_stack with
      | [ _root ] ->
          (* only the root is live: everything its clock covers now is
             permanently ordered before all future work (which forks from
             the root and inherits this clock).  Snapshot it — the lazy
             per-location sweeps run later, when other tasks are live
             again, so they must test against this frozen clock, not the
             then-current one. *)
          det.retire_ver <- det.retire_ver + 1;
          det.retire_clock <- Clock.copy det.cur
      | _ -> ())

let structural det ~on_init ~on_access : Rt.Monitor.t =
  {
    Rt.Monitor.on_init;
    on_task_begin = (fun _n -> task_begin det);
    on_task_end = (fun _n -> task_end det);
    on_finish_begin = (fun _n -> finish_begin det);
    on_finish_end = (fun _n -> finish_end det);
    on_access;
  }

let fresh ?spill mode =
  let empty = Clock.create () in
  {
    mode;
    monitor = Rt.Monitor.nop;
    steps = Tdrutil.Vec.create ();
    r_buf = Tdrutil.Ivec.create ();
    spill =
      Option.map
        (fun cfg -> Espbags.Spill.create cfg ~mode_name:(mode_name mode))
        spill;
    spill_gen = 0;
    clocks = Tdrutil.Vec.create ();
    dead = Clock.create ();
    task_stack = [];
    fin_stack = [];
    cur = empty;
    cur_tidx = -1;
    retire_ver = 0;
    retire_clock = Clock.create ();
    intern = Rt.Addr.Intern.create ();
    n_accesses = 0;
    n_locations = 0;
    n_skipped = 0;
    n_tasks = 0;
    n_merges = 0;
    n_scan_entries = 0;
    n_retired = 0;
    n_clocks_freed = 0;
    shadow_info = (fun () -> (0, 0));
  }

let report det ~src_id ~sink_id ~addr ~kind =
  if src_id <> sink_id then
    Tdrutil.Ivec.push2 det.r_buf
      ((src_id lsl 31) lor sink_id)
      ((addr lsl 2) lor kind)

(* ------------------------------------------------------------------ *)
(* SRW                                                                  *)
(* ------------------------------------------------------------------ *)

(* Slab shadow, stride 8 per location (6 columns padded to a power of
   two so a row never straddles a chunk): [w_task; w_id; w_ep; r_task;
   r_id; r_ep; _; _], task -1 = no recorded access.  The step/epoch
   columns are only read behind a task >= 0 guard, so the -1 filler is
   never observed. *)

let make_srw ?layout ?spill () : t =
  let det = fresh ?spill Srw in
  let dummy = dummy_step () in
  let tbl = Tdrutil.Islab.create ?layout ~fill:(-1) () in
  det.shadow_info <-
    (fun () -> (Tdrutil.Islab.n_chunks tbl, Tdrutil.Islab.words tbl));
  let on_access ~step ~bid:_ ~idx:_ addr kind =
    det.n_accesses <- det.n_accesses + 1;
    let row, off = Tdrutil.Islab.slot tbl (addr lsl 3) ~stride:8 in
    let sid = step.Sdpst.Node.id in
    register_step det ~dummy step sid;
    let wt = Array.unsafe_get row off and rt = Array.unsafe_get row (off + 3) in
    if wt < 0 && rt < 0 then det.n_locations <- det.n_locations + 1;
    let cur = det.cur in
    let parallel t ep = not (Clock.covers cur t ep) in
    (match kind with
    | Rt.Monitor.Read ->
        if wt >= 0 && parallel wt (Array.unsafe_get row (off + 2)) then
          report det
            ~src_id:(Array.unsafe_get row (off + 1))
            ~sink_id:sid ~addr ~kind:wr;
        if not (rt >= 0 && parallel rt (Array.unsafe_get row (off + 5)))
        then begin
          check_sid sid;
          Array.unsafe_set row (off + 3) det.cur_tidx;
          Array.unsafe_set row (off + 4) sid;
          Array.unsafe_set row (off + 5) (Clock.get cur det.cur_tidx)
        end
    | Rt.Monitor.Write ->
        if wt >= 0 && parallel wt (Array.unsafe_get row (off + 2)) then
          report det
            ~src_id:(Array.unsafe_get row (off + 1))
            ~sink_id:sid ~addr ~kind:ww;
        if rt >= 0 && parallel rt (Array.unsafe_get row (off + 5)) then
          report det
            ~src_id:(Array.unsafe_get row (off + 4))
            ~sink_id:sid ~addr ~kind:rw;
        check_sid sid;
        Array.unsafe_set row off det.cur_tidx;
        Array.unsafe_set row (off + 1) sid;
        Array.unsafe_set row (off + 2) (Clock.get cur det.cur_tidx));
    maybe_spill det
  in
  det.monitor <-
    structural det ~on_init:(fun intern -> det.intern <- intern) ~on_access;
  det

(* ------------------------------------------------------------------ *)
(* MRW                                                                  *)
(* ------------------------------------------------------------------ *)

(* Entries pack [(task index lsl 31) lor sid] with a parallel epoch
   vector; the concurrency test per entry is one clock lookup against
   the current task's clock instead of a union-find find. *)
type mrw_loc = {
  w_list : Tdrutil.Ivec.t;  (** recorded writers, packed [tidx, sid] *)
  w_eps : Tdrutil.Ivec.t;  (** their epochs, parallel to [w_list] *)
  r_list : Tdrutil.Ivec.t;
  r_eps : Tdrutil.Ivec.t;
  mutable w_epoch : int;  (** id of the last recorded writer step; -1 none *)
  mutable r_epoch : int;
  mutable gc_ver : int;  (** [retire_ver] as of the last sweep here *)
  (* Scan replay, exactly as in Espbags.Detector: the current task's
     clock cannot change while one step executes (clock maintenance is
     tied to structural transitions), so a step's repeated same-kind
     scans of one location produce byte-identical report runs.  Memos
     are only valid within their spill generation. *)
  mutable rscan_epoch : int;
  mutable rscan_gen : int;
  mutable rscan_lo : int;
  mutable rscan_hi : int;
  mutable wscan_epoch : int;
  mutable wscan_gen : int;
  mutable wscan_lo : int;
  mutable wscan_hi : int;
}

let fresh_loc () =
  {
    w_list = Tdrutil.Ivec.create ();
    w_eps = Tdrutil.Ivec.create ();
    r_list = Tdrutil.Ivec.create ();
    r_eps = Tdrutil.Ivec.create ();
    w_epoch = -1;
    r_epoch = -1;
    gc_ver = 0;
    rscan_epoch = -1;
    rscan_gen = 0;
    rscan_lo = 0;
    rscan_hi = 0;
    wscan_epoch = -1;
    wscan_gen = 0;
    wscan_lo = 0;
    wscan_hi = 0;
  }

(* Epoch GC sweep of one direction's entry list and its parallel epoch
   vector, in place and order-preserving; see the module comment for why
   [covers retire_clock] entries can never report again. *)
let retire_lists det l eps =
  let n = Tdrutil.Ivec.length l in
  let data = Tdrutil.Ivec.unsafe_data l in
  let edata = Tdrutil.Ivec.unsafe_data eps in
  let rc = det.retire_clock in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let e = Array.unsafe_get data i in
    if not (Clock.covers rc (e lsr 31) (Array.unsafe_get edata i)) then begin
      Array.unsafe_set data !j e;
      Array.unsafe_set edata !j (Array.unsafe_get edata i);
      incr j
    end
  done;
  Tdrutil.Ivec.truncate l !j;
  Tdrutil.Ivec.truncate eps !j;
  let cap = Tdrutil.Ivec.capacity l in
  if cap >= 32 && !j * 4 <= cap then begin
    Tdrutil.Ivec.compact l;
    Tdrutil.Ivec.compact eps
  end;
  n - !j

let make_mrw ?layout ?spill () : t =
  let det = fresh ?spill Mrw in
  let dummy = dummy_step () in
  let null_loc = fresh_loc () in
  let shadow : mrw_loc Tdrutil.Slab.t =
    Tdrutil.Slab.create ?layout ~fill:null_loc ()
  in
  det.shadow_info <-
    (fun () ->
      let words = ref (Tdrutil.Slab.words shadow) in
      Tdrutil.Slab.iter_present
        (fun s ->
          if s != null_loc then
            words :=
              !words
              + Tdrutil.Ivec.capacity s.w_list
              + Tdrutil.Ivec.capacity s.w_eps
              + Tdrutil.Ivec.capacity s.r_list
              + Tdrutil.Ivec.capacity s.r_eps)
        shadow;
      (Tdrutil.Slab.n_chunks shadow, !words));
  let scan entries eps ~sid ~meta =
    let cur = det.cur in
    let n = Tdrutil.Ivec.length entries in
    det.n_scan_entries <- det.n_scan_entries + n;
    for i = 0 to n - 1 do
      let packed = Tdrutil.Ivec.unsafe_get entries i in
      if not (Clock.covers cur (packed lsr 31) (Tdrutil.Ivec.unsafe_get eps i))
      then begin
        let src = packed land sid_mask in
        if src <> sid then
          Tdrutil.Ivec.push2 det.r_buf ((src lsl 31) lor sid) meta
      end
    done
  in
  let on_access ~step ~bid:_ ~idx:_ addr kind =
    det.n_accesses <- det.n_accesses + 1;
    let s = Tdrutil.Slab.get shadow addr in
    let s =
      if s != null_loc then s
      else begin
        let s = fresh_loc () in
        Tdrutil.Slab.set shadow addr s;
        det.n_locations <- det.n_locations + 1;
        s
      end
    in
    (* lazy epoch GC: a retirement wave happened since this location's
       last sweep (waves occur at finish ends, so never mid-step) *)
    if s.gc_ver <> det.retire_ver then begin
      s.gc_ver <- det.retire_ver;
      det.n_retired <-
        det.n_retired
        + retire_lists det s.w_list s.w_eps
        + retire_lists det s.r_list s.r_eps
    end;
    let sid = step.Sdpst.Node.id in
    register_step det ~dummy step sid;
    let self_epoch () = Clock.get det.cur det.cur_tidx in
    (match kind with
    | Rt.Monitor.Read ->
        if s.rscan_epoch = sid && s.rscan_gen = det.spill_gen then
          Tdrutil.Ivec.append_slice det.r_buf s.rscan_lo s.rscan_hi
        else begin
          s.rscan_epoch <- sid;
          s.rscan_gen <- det.spill_gen;
          s.rscan_lo <- Tdrutil.Ivec.length det.r_buf;
          scan s.w_list s.w_eps ~sid ~meta:((addr lsl 2) lor wr);
          s.rscan_hi <- Tdrutil.Ivec.length det.r_buf
        end;
        if s.r_epoch <> sid then begin
          check_sid sid;
          s.r_epoch <- sid;
          Tdrutil.Ivec.push s.r_list ((det.cur_tidx lsl 31) lor sid);
          Tdrutil.Ivec.push s.r_eps (self_epoch ())
        end
    | Rt.Monitor.Write ->
        if s.wscan_epoch = sid && s.wscan_gen = det.spill_gen then
          Tdrutil.Ivec.append_slice det.r_buf s.wscan_lo s.wscan_hi
        else begin
          s.wscan_epoch <- sid;
          s.wscan_gen <- det.spill_gen;
          s.wscan_lo <- Tdrutil.Ivec.length det.r_buf;
          scan s.w_list s.w_eps ~sid ~meta:((addr lsl 2) lor ww);
          scan s.r_list s.r_eps ~sid ~meta:((addr lsl 2) lor rw);
          s.wscan_hi <- Tdrutil.Ivec.length det.r_buf
        end;
        if s.w_epoch <> sid then begin
          check_sid sid;
          s.w_epoch <- sid;
          Tdrutil.Ivec.push s.w_list ((det.cur_tidx lsl 31) lor sid);
          Tdrutil.Ivec.push s.w_eps (self_epoch ())
        end);
    maybe_spill det
  in
  det.monitor <-
    structural det ~on_init:(fun intern -> det.intern <- intern) ~on_access;
  det

let make ?layout ?spill = function
  | Srw -> make_srw ?layout ?spill ()
  | Mrw -> make_mrw ?layout ?spill ()

(** Run [prog] under a fresh vector-clock detector; same contract as
    {!Espbags.Detector.detect}, including [keep]-based static pruning and
    the report-invariant [layout]/[spill] memory bounds. *)
let detect ?fuel ?keep ?layout ?spill mode (prog : Mhj.Ast.program) :
    t * Rt.Interp.result =
  let det = make ?layout ?spill mode in
  let monitor =
    match keep with
    | None -> det.monitor
    | Some keep ->
        Rt.Monitor.filter
          ~keep:(fun ~bid ~idx _addr _kind -> keep ~bid ~idx)
          ~on_skip:(fun () -> det.n_skipped <- det.n_skipped + 1)
          det.monitor
  in
  let res = Rt.Interp.run ?fuel ~monitor prog in
  Option.iter Espbags.Spill.close det.spill;
  (det, res)
