(** Vector-clock race detectors for the sequential (depth-first)
    interpreter, report-identical to the ESP-bags detectors.

    Same two flavours as {!Espbags.Detector} ({b SRW} single
    reader/writer slot, {b MRW} full access lists), same packed hot-path
    representation (flat shadow tables over interned ids, packed race
    records, per-step epoch dedup, scan replay) — but concurrency is
    decided by vector clocks ({!Clock}) instead of union-find bags.

    Under the depth-first execution both predicates compute precise
    may-happen-in-parallel for async-finish programs, so for every
    recorded shadow entry the clock test [not (covers current t e)]
    answers exactly like [Bags.in_pbag t]:

    - an entry by an ancestor (or an earlier epoch of the current task
      itself) was inherited at fork time — covered, ordered;
    - an entry by a task that ended but whose join finish is still open
      has not been merged anywhere the current task can see — not
      covered, concurrent (ESP-bags: in a P-bag);
    - once the finish ends, the accumulator merge makes the current task
      cover every joined epoch — ordered again (ESP-bags: P-bag unioned
      into the S-bag).

    The differential suite holds this module's race records byte-equal
    to {!Espbags.Reference}'s.  The scan-replay optimization remains
    valid here because a task's clock only changes at structural
    transitions, never inside a step. *)

type mode = Espbags.Detector.mode = Srw | Mrw

let pp_mode = Espbags.Detector.pp_mode

type t = {
  mode : mode;
  mutable monitor : Rt.Monitor.t;  (** pass to {!Rt.Interp.run} *)
  steps : Sdpst.Node.t Tdrutil.Vec.t;
      (** step id -> step node, filled on each step's first access *)
  r_buf : Tdrutil.Ivec.t;
      (** race records, stride 2, packed like {!Espbags.Detector}:
          [(src lsl 31) lor sink], then [(addr lsl 2) lor kind] *)
  clocks : Clock.t Tdrutil.Vec.t;  (** task index -> clock *)
  mutable task_stack : int list;  (** task indices, innermost first *)
  mutable fin_stack : Clock.t list;  (** open finishes' accumulators *)
  mutable cur : Clock.t;  (** current task's clock (cached stack top) *)
  mutable cur_tidx : int;
  mutable intern : Rt.Addr.Intern.t;
  mutable n_accesses : int;
  mutable n_locations : int;
  mutable n_skipped : int;
  mutable n_tasks : int;
  mutable n_merges : int;  (** clock fold/merge operations *)
  mutable n_scan_entries : int;  (** MRW shadow entries scanned *)
}

let wr = 0

and rw = 1

and ww = 2

let kind_of_code = function
  | 0 -> Espbags.Race.Write_read
  | 1 -> Espbags.Race.Read_write
  | _ -> Espbags.Race.Write_write

let race_count t = Tdrutil.Ivec.length t.r_buf / 2

let clean t = Tdrutil.Ivec.is_empty t.r_buf

let sid_mask = (1 lsl 31) - 1

let races t =
  let node i = Tdrutil.Vec.unsafe_get t.steps i in
  let rec go i acc =
    if i < 0 then acc
    else
      let ss = Tdrutil.Ivec.unsafe_get t.r_buf i
      and meta = Tdrutil.Ivec.unsafe_get t.r_buf (i + 1) in
      go (i - 2)
        (Espbags.Race.make
           ~src:(node (ss lsr 31))
           ~sink:(node (ss land sid_mask))
           ~addr:(Rt.Addr.Intern.of_id t.intern (meta lsr 2))
           ~kind:(kind_of_code (meta land 3))
        :: acc)
  in
  go (Tdrutil.Ivec.length t.r_buf - 2) []

let stats t =
  [
    ("detector.accesses", t.n_accesses);
    ("detector.locations", t.n_locations);
    ("detector.races", race_count t);
    ("detector.skipped", t.n_skipped);
    ("detector.tasks", t.n_tasks);
    ("detector.clock_merges", t.n_merges);
    ("detector.scan_entries", t.n_scan_entries);
  ]

let check_sid sid =
  if sid < 0 || sid >= 1 lsl 31 then
    invalid_arg "Vclock.Seq: step id exceeds 31 bits"

let check_tidx tidx =
  if tidx < 0 || tidx >= 1 lsl 31 then
    invalid_arg "Vclock.Seq: task index exceeds 31 bits"

let dummy_step () = (Sdpst.Node.create_tree ~main_bid:(-1)).Sdpst.Node.root

let register_step det ~dummy step sid =
  Tdrutil.Vec.ensure det.steps (sid + 1) ~fill:dummy;
  if Tdrutil.Vec.unsafe_get det.steps sid == dummy then
    Tdrutil.Vec.unsafe_set det.steps sid step

(* ------------------------------------------------------------------ *)
(* Structural transitions                                               *)
(* ------------------------------------------------------------------ *)

let task_begin det =
  let tidx = det.n_tasks in
  check_tidx tidx;
  det.n_tasks <- tidx + 1;
  let c =
    match det.task_stack with
    | [] ->
        let c = Clock.create () in
        Clock.set c tidx 1;
        c
    | parent :: _ ->
        let pc = Tdrutil.Vec.get det.clocks parent in
        (* copy before the parent's self-increment: accesses the parent
           recorded before this fork are inherited (ordered), accesses
           after it are not *)
        let c = Clock.copy pc in
        Clock.set c tidx 1;
        Clock.incr pc parent;
        c
  in
  Tdrutil.Vec.ensure det.clocks (tidx + 1) ~fill:c;
  Tdrutil.Vec.unsafe_set det.clocks tidx c;
  det.task_stack <- tidx :: det.task_stack;
  det.cur <- c;
  det.cur_tidx <- tidx

let task_end det =
  match det.task_stack with
  | [] -> invalid_arg "Vclock.Seq.task_end: empty task stack"
  | tidx :: rest ->
      det.task_stack <- rest;
      (match det.fin_stack with
      | [] -> ()  (* root task: nothing joins it *)
      | acc :: _ ->
          Clock.merge ~into:acc (Tdrutil.Vec.get det.clocks tidx);
          det.n_merges <- det.n_merges + 1);
      (match rest with
      | [] -> ()
      | parent :: _ ->
          det.cur <- Tdrutil.Vec.get det.clocks parent;
          det.cur_tidx <- parent)

let finish_begin det = det.fin_stack <- Clock.create () :: det.fin_stack

let finish_end det =
  match det.fin_stack with
  | [] -> invalid_arg "Vclock.Seq.finish_end: empty finish stack"
  | acc :: rest ->
      det.fin_stack <- rest;
      (* every task joined here folded its clock into [acc]; the merge
         orders all of their accesses before the continuation *)
      Clock.merge ~into:det.cur acc;
      det.n_merges <- det.n_merges + 1

let structural det ~on_init ~on_access : Rt.Monitor.t =
  {
    Rt.Monitor.on_init;
    on_task_begin = (fun _n -> task_begin det);
    on_task_end = (fun _n -> task_end det);
    on_finish_begin = (fun _n -> finish_begin det);
    on_finish_end = (fun _n -> finish_end det);
    on_access;
  }

let fresh mode =
  let empty = Clock.create () in
  {
    mode;
    monitor = Rt.Monitor.nop;
    steps = Tdrutil.Vec.create ();
    r_buf = Tdrutil.Ivec.create ();
    clocks = Tdrutil.Vec.create ();
    task_stack = [];
    fin_stack = [];
    cur = empty;
    cur_tidx = -1;
    intern = Rt.Addr.Intern.create ();
    n_accesses = 0;
    n_locations = 0;
    n_skipped = 0;
    n_tasks = 0;
    n_merges = 0;
    n_scan_entries = 0;
  }

let report det ~src_id ~sink_id ~addr ~kind =
  if src_id <> sink_id then
    Tdrutil.Ivec.push2 det.r_buf
      ((src_id lsl 31) lor sink_id)
      ((addr lsl 2) lor kind)

(* ------------------------------------------------------------------ *)
(* SRW                                                                  *)
(* ------------------------------------------------------------------ *)

(* Same flat struct-of-arrays shadow as the ESP-bags SRW, plus an epoch
   column per direction: a slot is (task index, step id, epoch), task
   index -1 = no recorded access. *)

let make_srw () : t =
  let det = fresh Srw in
  let dummy = dummy_step () in
  let w_task = Tdrutil.Ivec.create ()
  and w_id = Tdrutil.Ivec.create ()
  and w_ep = Tdrutil.Ivec.create ()
  and r_task = Tdrutil.Ivec.create ()
  and r_id = Tdrutil.Ivec.create ()
  and r_ep = Tdrutil.Ivec.create () in
  let cap = ref 0 in
  let grow addr =
    let n = max (addr + 1) (2 * !cap) in
    Tdrutil.Ivec.ensure w_task n ~fill:(-1);
    Tdrutil.Ivec.ensure w_id n ~fill:(-1);
    Tdrutil.Ivec.ensure w_ep n ~fill:0;
    Tdrutil.Ivec.ensure r_task n ~fill:(-1);
    Tdrutil.Ivec.ensure r_id n ~fill:(-1);
    Tdrutil.Ivec.ensure r_ep n ~fill:0;
    cap := n
  in
  let on_access ~step ~bid:_ ~idx:_ addr kind =
    det.n_accesses <- det.n_accesses + 1;
    if addr >= !cap then grow addr;
    let sid = step.Sdpst.Node.id in
    register_step det ~dummy step sid;
    let wt = Tdrutil.Ivec.unsafe_get w_task addr
    and rt = Tdrutil.Ivec.unsafe_get r_task addr in
    if wt < 0 && rt < 0 then det.n_locations <- det.n_locations + 1;
    let cur = det.cur in
    let parallel t ep = not (Clock.covers cur t ep) in
    match kind with
    | Rt.Monitor.Read ->
        if wt >= 0 && parallel wt (Tdrutil.Ivec.unsafe_get w_ep addr) then
          report det
            ~src_id:(Tdrutil.Ivec.unsafe_get w_id addr)
            ~sink_id:sid ~addr ~kind:wr;
        if not (rt >= 0 && parallel rt (Tdrutil.Ivec.unsafe_get r_ep addr))
        then begin
          check_sid sid;
          Tdrutil.Ivec.unsafe_set r_task addr det.cur_tidx;
          Tdrutil.Ivec.unsafe_set r_id addr sid;
          Tdrutil.Ivec.unsafe_set r_ep addr (Clock.get cur det.cur_tidx)
        end
    | Rt.Monitor.Write ->
        if wt >= 0 && parallel wt (Tdrutil.Ivec.unsafe_get w_ep addr) then
          report det
            ~src_id:(Tdrutil.Ivec.unsafe_get w_id addr)
            ~sink_id:sid ~addr ~kind:ww;
        if rt >= 0 && parallel rt (Tdrutil.Ivec.unsafe_get r_ep addr) then
          report det
            ~src_id:(Tdrutil.Ivec.unsafe_get r_id addr)
            ~sink_id:sid ~addr ~kind:rw;
        check_sid sid;
        Tdrutil.Ivec.unsafe_set w_task addr det.cur_tidx;
        Tdrutil.Ivec.unsafe_set w_id addr sid;
        Tdrutil.Ivec.unsafe_set w_ep addr (Clock.get cur det.cur_tidx)
  in
  det.monitor <-
    structural det ~on_init:(fun intern -> det.intern <- intern) ~on_access;
  det

(* ------------------------------------------------------------------ *)
(* MRW                                                                  *)
(* ------------------------------------------------------------------ *)

(* Entries pack [(task index lsl 31) lor sid] with a parallel epoch
   vector; the concurrency test per entry is one clock lookup against
   the current task's clock instead of a union-find find. *)
type mrw_loc = {
  w_list : Tdrutil.Ivec.t;  (** recorded writers, packed [tidx, sid] *)
  w_eps : Tdrutil.Ivec.t;  (** their epochs, parallel to [w_list] *)
  r_list : Tdrutil.Ivec.t;
  r_eps : Tdrutil.Ivec.t;
  mutable w_epoch : int;  (** id of the last recorded writer step; -1 none *)
  mutable r_epoch : int;
  (* Scan replay, exactly as in Espbags.Detector: the current task's
     clock cannot change while one step executes (clock maintenance is
     tied to structural transitions), so a step's repeated same-kind
     scans of one location produce byte-identical report runs. *)
  mutable rscan_epoch : int;
  mutable rscan_lo : int;
  mutable rscan_hi : int;
  mutable wscan_epoch : int;
  mutable wscan_lo : int;
  mutable wscan_hi : int;
}

let fresh_loc () =
  {
    w_list = Tdrutil.Ivec.create ();
    w_eps = Tdrutil.Ivec.create ();
    r_list = Tdrutil.Ivec.create ();
    r_eps = Tdrutil.Ivec.create ();
    w_epoch = -1;
    r_epoch = -1;
    rscan_epoch = -1;
    rscan_lo = 0;
    rscan_hi = 0;
    wscan_epoch = -1;
    wscan_lo = 0;
    wscan_hi = 0;
  }

let make_mrw () : t =
  let det = fresh Mrw in
  let dummy = dummy_step () in
  let null_loc = fresh_loc () in
  let shadow : mrw_loc Tdrutil.Vec.t = Tdrutil.Vec.create () in
  let cap = ref 0 in
  let grow addr =
    let n = max (addr + 1) (2 * !cap) in
    Tdrutil.Vec.ensure shadow n ~fill:null_loc;
    cap := n
  in
  let scan entries eps ~sid ~meta =
    let cur = det.cur in
    let n = Tdrutil.Ivec.length entries in
    det.n_scan_entries <- det.n_scan_entries + n;
    for i = 0 to n - 1 do
      let packed = Tdrutil.Ivec.unsafe_get entries i in
      if not (Clock.covers cur (packed lsr 31) (Tdrutil.Ivec.unsafe_get eps i))
      then begin
        let src = packed land sid_mask in
        if src <> sid then
          Tdrutil.Ivec.push2 det.r_buf ((src lsl 31) lor sid) meta
      end
    done
  in
  let on_access ~step ~bid:_ ~idx:_ addr kind =
    det.n_accesses <- det.n_accesses + 1;
    if addr >= !cap then grow addr;
    let s = Tdrutil.Vec.unsafe_get shadow addr in
    let s =
      if s != null_loc then s
      else begin
        let s = fresh_loc () in
        Tdrutil.Vec.unsafe_set shadow addr s;
        det.n_locations <- det.n_locations + 1;
        s
      end
    in
    let sid = step.Sdpst.Node.id in
    register_step det ~dummy step sid;
    let self_epoch () = Clock.get det.cur det.cur_tidx in
    match kind with
    | Rt.Monitor.Read ->
        if s.rscan_epoch = sid then
          Tdrutil.Ivec.append_slice det.r_buf s.rscan_lo s.rscan_hi
        else begin
          s.rscan_epoch <- sid;
          s.rscan_lo <- Tdrutil.Ivec.length det.r_buf;
          scan s.w_list s.w_eps ~sid ~meta:((addr lsl 2) lor wr);
          s.rscan_hi <- Tdrutil.Ivec.length det.r_buf
        end;
        if s.r_epoch <> sid then begin
          check_sid sid;
          s.r_epoch <- sid;
          Tdrutil.Ivec.push s.r_list ((det.cur_tidx lsl 31) lor sid);
          Tdrutil.Ivec.push s.r_eps (self_epoch ())
        end
    | Rt.Monitor.Write ->
        if s.wscan_epoch = sid then
          Tdrutil.Ivec.append_slice det.r_buf s.wscan_lo s.wscan_hi
        else begin
          s.wscan_epoch <- sid;
          s.wscan_lo <- Tdrutil.Ivec.length det.r_buf;
          scan s.w_list s.w_eps ~sid ~meta:((addr lsl 2) lor ww);
          scan s.r_list s.r_eps ~sid ~meta:((addr lsl 2) lor rw);
          s.wscan_hi <- Tdrutil.Ivec.length det.r_buf
        end;
        if s.w_epoch <> sid then begin
          check_sid sid;
          s.w_epoch <- sid;
          Tdrutil.Ivec.push s.w_list ((det.cur_tidx lsl 31) lor sid);
          Tdrutil.Ivec.push s.w_eps (self_epoch ())
        end
  in
  det.monitor <-
    structural det ~on_init:(fun intern -> det.intern <- intern) ~on_access;
  det

let make = function Srw -> make_srw () | Mrw -> make_mrw ()

(** Run [prog] under a fresh vector-clock detector; same contract as
    {!Espbags.Detector.detect}, including [keep]-based static pruning. *)
let detect ?fuel ?keep mode (prog : Mhj.Ast.program) : t * Rt.Interp.result =
  let det = make mode in
  let monitor =
    match keep with
    | None -> det.monitor
    | Some keep ->
        Rt.Monitor.filter
          ~keep:(fun ~bid ~idx _addr _kind -> keep ~bid ~idx)
          ~on_skip:(fun () -> det.n_skipped <- det.n_skipped + 1)
          det.monitor
  in
  let res = Rt.Interp.run ?fuel ~monitor prog in
  (det, res)
