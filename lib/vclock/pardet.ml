(** Parallel MRW vector-clock race detection under the domains engine.

    Implements {!Par.Emon} so detection runs {e during} actual parallel
    execution: every worker reports its shared-memory accesses as they
    happen, and concurrency between two accesses is decided by the same
    logical happens-before the sequential {!Seq} detector computes —
    access by task [u] at epoch [e] is ordered before the current access
    of task [t] iff [t]'s clock covers [(u, e)].  The clock relation is
    schedule-independent (it encodes the async-finish structure, not the
    observed interleaving), so a parallel run reports the same {e static}
    race set as the sequential MRW oracle on the same program, which the
    differential property in [test_par] checks across schedules.

    Synchronization layout:

    - {b clocks} — one {!Clock} per task token, in a copy-on-write
      registry.  A clock is only ever {e mutated} by the worker
      currently running its task (forks happen on the spawning worker;
      joins on the joining worker), so clock operations need no lock of
      their own.  Publication of a child's clock to whichever worker
      steals the task rides the engine's deque atomics: the task is
      pushed after [on_task_begin] returns, and stealing acquires.
    - {b finish accumulators} — per-finish {!Clock} plus a mutex;
      [on_task_end] folds the ended task's clock in under the lock, and
      the join side reads it under the same lock (the engine's
      pending-count atomic already orders every fold before the read;
      the mutex supplies the memory fence).
    - {b shadow memory} — sharded by address ([addr mod 16]); each shard
      owns a mutex, its slice of per-location access lists, and a dedup
      table of reported races.  The shard lock serializes all accesses
      to one location, so for every unordered pair the later-recorded
      access scans the earlier entry: no race is missed.

    The sequential detectors' scan-replay shortcut is {e dropped} here —
    other tasks may append entries to a location between two scans by
    the same step, so replaying a remembered report range would be
    unsound.  Races are instead deduplicated by their static key
    ({!Espbags.Race.static_key}), which is also the granularity at which
    parallel reports are compared to sequential ones. *)

let n_shards = 16

(* Per-location access lists: stride-4 entries (task token, epoch,
   origin bid, origin idx) per direction.  Entries are only appended
   under the owning shard's lock. *)
type loc = { w_ent : Tdrutil.Ivec.t; r_ent : Tdrutil.Ivec.t }

let fresh_loc () =
  { w_ent = Tdrutil.Ivec.create (); r_ent = Tdrutil.Ivec.create () }

type shard = {
  mu : Mutex.t;
  locs : loc Tdrutil.Vec.t;  (** slot [addr / n_shards] -> location *)
  null_loc : loc;  (** sentinel: slot allocated, location untouched *)
  races : ((int * int * bool) * (int * int * bool) * int, unit) Hashtbl.t;
      (** static keys of reported races, addr as interned id *)
  mutable n_accesses : int;
  mutable n_locations : int;
  mutable n_scan_entries : int;
}

(* Copy-on-write registry of per-token values: slot writes happen under
   [mu] and the backing array is republished on growth, so a lock-free
   [Atomic.get] either sees the value or falls back to the locked read
   (which synchronizes with the registering unlock). *)
module Reg = struct
  type 'a t = {
    mu : Mutex.t;
    next : int Atomic.t;
    slots : 'a option array Atomic.t;
  }

  let create () =
    { mu = Mutex.create (); next = Atomic.make 0; slots = Atomic.make [||] }

  let n_registered t = Atomic.get t.next

  (* Mint a token and bind [v] to it. *)
  let add t v =
    Mutex.lock t.mu;
    let tok = Atomic.fetch_and_add t.next 1 in
    let s = Atomic.get t.slots in
    let s =
      if tok < Array.length s then s
      else begin
        let bigger = Array.make (max (tok + 1) (2 * Array.length s)) None in
        Array.blit s 0 bigger 0 (Array.length s);
        Atomic.set t.slots bigger;
        bigger
      end
    in
    s.(tok) <- Some v;
    Mutex.unlock t.mu;
    tok

  let get t tok =
    let s = Atomic.get t.slots in
    let hit = if tok >= 0 && tok < Array.length s then s.(tok) else None in
    match hit with
    | Some v -> v
    | None ->
        Mutex.lock t.mu;
        let s = Atomic.get t.slots in
        let r = if tok >= 0 && tok < Array.length s then s.(tok) else None in
        Mutex.unlock t.mu;
        (match r with
        | Some v -> v
        | None -> invalid_arg "Vclock.Pardet: unknown token")
end

type fin = { fmu : Mutex.t; acc : Clock.t }

type t = {
  emon : Par.Emon.t;
  clocks : Clock.t Reg.t;
  fins : fin Reg.t;
  shards : shard array;
  intern : Rt.Addr.Intern.t option ref;
  n_merges : int Atomic.t;
}

let make () : t =
  let clocks = Reg.create () and fins = Reg.create () in
  let shards =
    Array.init n_shards (fun _ ->
        {
          mu = Mutex.create ();
          locs = Tdrutil.Vec.create ();
          null_loc = fresh_loc ();
          races = Hashtbl.create 32;
          n_accesses = 0;
          n_locations = 0;
          n_scan_entries = 0;
        })
  in
  let intern = ref None in
  let n_merges = Atomic.make 0 in
  let on_task_begin ~parent =
    let c =
      if parent < 0 then Clock.create ()
      else begin
        (* copy before the parent's self-increment: accesses the parent
           recorded before this fork are inherited (ordered), accesses
           after it are not *)
        let pc = Reg.get clocks parent in
        let c = Clock.copy pc in
        Clock.incr pc parent;
        c
      end
    in
    let tok = Reg.add clocks c in
    Clock.set c tok 1;
    tok
  in
  let on_task_end ~task ~fin =
    if fin >= 0 then begin
      let f = Reg.get fins fin in
      Mutex.lock f.fmu;
      Clock.merge ~into:f.acc (Reg.get clocks task);
      Mutex.unlock f.fmu;
      Atomic.incr n_merges
    end
  in
  let on_finish_begin ~task:_ =
    Reg.add fins { fmu = Mutex.create (); acc = Clock.create () }
  in
  let on_finish_end ~task ~fin =
    let f = Reg.get fins fin in
    (* every joined task folded its clock in before the pending count hit
       zero; the lock is the memory fence making those folds visible *)
    Mutex.lock f.fmu;
    Clock.merge ~into:(Reg.get clocks task) f.acc;
    Mutex.unlock f.fmu;
    Atomic.incr n_merges
  in
  (* Scan the entries of one direction against the current clock, report
     every uncovered (= concurrent) one.  Runs under the shard lock. *)
  let scan sh ent c ~ent_write ~cur_write ~bid ~idx ~addr =
    let n = Tdrutil.Ivec.length ent / 4 in
    sh.n_scan_entries <- sh.n_scan_entries + n;
    for i = 0 to n - 1 do
      let tok = Tdrutil.Ivec.unsafe_get ent (4 * i)
      and ep = Tdrutil.Ivec.unsafe_get ent ((4 * i) + 1) in
      if not (Clock.covers c tok ep) then begin
        let e_bid = Tdrutil.Ivec.unsafe_get ent ((4 * i) + 2)
        and e_idx = Tdrutil.Ivec.unsafe_get ent ((4 * i) + 3) in
        let key =
          Espbags.Race.static_key ~a_bid:e_bid ~a_idx:e_idx
            ~a_write:ent_write ~b_bid:bid ~b_idx:idx ~b_write:cur_write
            ~addr
        in
        if not (Hashtbl.mem sh.races key) then Hashtbl.replace sh.races key ()
      end
    done
  in
  (* Append an entry unless it duplicates the last one (same task, same
     epoch, same origin — e.g. a loop touching one cell repeatedly).
     Best-effort: interleaved entries from other tasks break the run. *)
  let record ent ~tok ~ep ~bid ~idx =
    let n = Tdrutil.Ivec.length ent in
    let dup =
      n >= 4
      && Tdrutil.Ivec.unsafe_get ent (n - 4) = tok
      && Tdrutil.Ivec.unsafe_get ent (n - 3) = ep
      && Tdrutil.Ivec.unsafe_get ent (n - 2) = bid
      && Tdrutil.Ivec.unsafe_get ent (n - 1) = idx
    in
    if not dup then Tdrutil.Ivec.push4 ent tok ep bid idx
  in
  let on_access ~task ~bid ~idx addr kind =
    let c = Reg.get clocks task in
    let sh = shards.(addr land (n_shards - 1)) in
    let slot = addr / n_shards in
    Mutex.lock sh.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sh.mu)
      (fun () ->
        sh.n_accesses <- sh.n_accesses + 1;
        Tdrutil.Vec.ensure sh.locs (slot + 1) ~fill:sh.null_loc;
        let l = Tdrutil.Vec.unsafe_get sh.locs slot in
        let l =
          if l != sh.null_loc then l
          else begin
            let l = fresh_loc () in
            Tdrutil.Vec.unsafe_set sh.locs slot l;
            sh.n_locations <- sh.n_locations + 1;
            l
          end
        in
        let ep = Clock.get c task in
        match kind with
        | Rt.Monitor.Read ->
            scan sh l.w_ent c ~ent_write:true ~cur_write:false ~bid ~idx
              ~addr;
            record l.r_ent ~tok:task ~ep ~bid ~idx
        | Rt.Monitor.Write ->
            scan sh l.w_ent c ~ent_write:true ~cur_write:true ~bid ~idx
              ~addr;
            scan sh l.r_ent c ~ent_write:false ~cur_write:true ~bid ~idx
              ~addr;
            record l.w_ent ~tok:task ~ep ~bid ~idx)
  in
  let emon =
    {
      Par.Emon.on_init = (fun i -> intern := Some i);
      on_task_begin;
      on_task_end;
      on_finish_begin;
      on_finish_end;
      on_access;
    }
  in
  { emon; clocks; fins; shards; intern; n_merges }

let emon t = t.emon

let race_count t =
  Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.races) 0 t.shards

let clean t = race_count t = 0

(* The report: static keys with the interned address rendered back to its
   source-level form, sorted for schedule-independent comparison. *)
let races t : ((int * int * bool) * (int * int * bool) * string) list =
  let intern =
    match !(t.intern) with
    | Some i -> i
    | None -> invalid_arg "Vclock.Pardet.races: detector never ran"
  in
  let out = ref [] in
  Array.iter
    (fun sh ->
      Hashtbl.iter
        (fun (a, b, addr) () ->
          let addr =
            Fmt.str "%a" Rt.Addr.pp (Rt.Addr.Intern.of_id intern addr)
          in
          out := (a, b, addr) :: !out)
        sh.races)
    t.shards;
  List.sort_uniq compare !out

let stats t =
  let sum f = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards in
  [
    ("detector.accesses", sum (fun sh -> sh.n_accesses));
    ("detector.locations", sum (fun sh -> sh.n_locations));
    ("detector.races", race_count t);
    ("detector.tasks", Reg.n_registered t.clocks);
    ("detector.clock_merges", Atomic.get t.n_merges);
    ("detector.scan_entries", sum (fun sh -> sh.n_scan_entries));
  ]

(** Run [prog] under the engine with a fresh parallel detector attached. *)
let detect ?fuel ?pace_ns ?policy ~mode (prog : Mhj.Ast.program) :
    t * Par.Engine.result =
  let det = make () in
  let res = Par.Engine.run ?fuel ?pace_ns ?policy ~emon:det.emon ~mode prog in
  (det, res)
