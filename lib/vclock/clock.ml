(** Dense vector clocks over task indices.

    A clock maps a dense task index to that task's last-known epoch; a
    missing slot reads as 0 ("no knowledge").  The async-finish
    maintenance discipline (DESIGN.md §14):

    - fork: the child's clock is a copy of the parent's with its own
      fresh component set to 1; the parent then increments its own
      component, so later parent accesses are distinguishable from the
      ones the child inherited;
    - task end: the ended task's clock is folded (pointwise max) into
      its innermost enclosing finish's accumulator;
    - finish end: the accumulator folds into the continuing task's
      clock, ordering every joined access before the continuation.

    An access recorded as [(task t, epoch e)] — where [e] was [C_t[t]]
    at record time — happens-before the task currently holding clock
    [c] iff [get c t >= e]; otherwise the two are concurrent.

    Arrays grow lazily (doubling), so a clock's cost is proportional to
    the highest task index it has actually learned about, not the total
    task count.  Clocks are not thread-safe; callers serialize per-clock
    access (in practice each clock is owned by one task, and finish
    accumulators are mutex-protected). *)

type t = { mutable v : int array }

let create () = { v = [||] }

(** Number of slots physically allocated ([get] beyond this is 0). *)
let length c = Array.length c.v

let get c i = if i < Array.length c.v then Array.unsafe_get c.v i else 0

let grow c n =
  let cap = max n (2 * Array.length c.v) in
  let bigger = Array.make cap 0 in
  Array.blit c.v 0 bigger 0 (Array.length c.v);
  c.v <- bigger

let set c i x =
  if i >= Array.length c.v then grow c (i + 1);
  Array.unsafe_set c.v i x

let incr c i = set c i (get c i + 1)

let copy c = { v = Array.copy c.v }

(** Pointwise max of [c] into [into]. *)
let merge ~into c =
  let n = Array.length c.v in
  if n > Array.length into.v then grow into n;
  for i = 0 to n - 1 do
    let x = Array.unsafe_get c.v i in
    if x > Array.unsafe_get into.v i then Array.unsafe_set into.v i x
  done

(** [covers c i e]: does the holder of [c] already know of task [i]'s
    epoch [e] (i.e. is the access ordered before the holder)? *)
let covers c i e = get c i >= e
