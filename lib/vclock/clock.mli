(** Dense, lazily-grown vector clocks over task indices (DESIGN.md §14).

    Not thread-safe: each clock is owned by a single task (or protected
    by its finish accumulator's mutex). *)

type t

val create : unit -> t

(** Slots physically allocated; [get] beyond this returns 0. *)
val length : t -> int

(** Epoch known for task index [i] (0 = no knowledge). *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** Increment slot [i] (creating it at 1 if absent). *)
val incr : t -> int -> unit

val copy : t -> t

(** Pointwise max of the second clock into [into]. *)
val merge : into:t -> t -> unit

(** [covers c i e]: is epoch [e] of task [i] ordered before the holder
    of [c] (that is, [get c i >= e])? *)
val covers : t -> int -> int -> bool
