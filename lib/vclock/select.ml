(** Static backend auto-selection for [--backend=auto].

    Chooses between the ESP-bags and vector-clock detectors from cheap
    syntactic workload features, without executing the program:

    - {b task fan-out}: asyncs spawned directly from loop bodies
      (forasync-style) build wide, shallow task trees.  Vector clocks
      stay short there (a clock's length tracks fork depth plus joined
      siblings) and the vclock backend is the one that can also run
      under the parallel engine — prefer it.
    - {b deep nesting}: recursive divide-and-conquer programs fork
      along long chains, making each fork's clock copy O(depth) while
      ESP-bags pays near-constant union-find work — prefer ESP-bags.
    - {b no tasks}: nothing can race; ESP-bags (the default, most
      battle-tested backend) wins by default.

    The returned reason string is reported to the user and recorded in
    [report.metrics] as [detector.backend]. *)

open Mhj

type choice = [ `Espbags | `Vclock ]

let pp_choice ppf = function
  | `Espbags -> Fmt.string ppf "espbags"
  | `Vclock -> Fmt.string ppf "vclock"

type features = {
  n_async : int;
  n_finish : int;
  n_loop_async : int;  (** asyncs spawned directly from a loop body *)
  max_async_depth : int;  (** deepest syntactic async nesting *)
}

let features (prog : Ast.program) : features =
  let n_async = ref 0
  and n_finish = ref 0
  and n_loop_async = ref 0
  and max_depth = ref 0 in
  (* [in_loop] is reset inside an async body: only the spawning loop
     matters for fan-out shape.  Call sites are not chased — features
     are per-function syntactic counts, which is enough for a
     tie-breaking heuristic. *)
  let rec stmt ~depth ~in_loop (s : Ast.stmt) =
    match s.s with
    | Ast.Async body ->
        incr n_async;
        if in_loop then incr n_loop_async;
        if depth + 1 > !max_depth then max_depth := depth + 1;
        stmt ~depth:(depth + 1) ~in_loop:false body
    | Ast.Finish body ->
        incr n_finish;
        stmt ~depth ~in_loop body
    | Ast.Isolated body -> stmt ~depth ~in_loop body
    | Ast.For (_, _, _, _, body) | Ast.While (_, body) ->
        stmt ~depth ~in_loop:true body
    | Ast.If (_, a, b) ->
        stmt ~depth ~in_loop a;
        Option.iter (stmt ~depth ~in_loop) b
    | Ast.Block b -> List.iter (stmt ~depth ~in_loop) b.stmts
    | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Expr _ -> ()
  in
  List.iter
    (fun (f : Ast.func) ->
      List.iter (stmt ~depth:0 ~in_loop:false) f.body.stmts)
    prog.funcs;
  {
    n_async = !n_async;
    n_finish = !n_finish;
    n_loop_async = !n_loop_async;
    max_async_depth = !max_depth;
  }

(** Pick a backend for [prog]; the second component is the
    human-readable reason for the choice. *)
let choose (prog : Ast.program) : choice * string =
  let f = features prog in
  if f.n_async = 0 then
    (`Espbags, "no async statements, nothing can race; ESP-bags default")
  else if f.max_async_depth >= 3 then
    ( `Espbags,
      Fmt.str
        "deeply nested tasks (async depth %d): constant-time bag ops beat \
         per-fork clock copies"
        f.max_async_depth )
  else if f.n_loop_async > 0 then
    ( `Vclock,
      Fmt.str
        "loop-spawned fan-out (%d of %d asyncs): wide shallow task tree \
         keeps clocks short"
        f.n_loop_async f.n_async )
  else
    ( `Espbags,
      Fmt.str "shallow task structure (%d asyncs, %d finishes): ESP-bags \
               default"
        f.n_async f.n_finish )
