(** Affine subscript forms and sound disjointness tests for the
    index-sensitive race refinement.

    {b Lattice.}  A {!form} abstracts the integer value of an expression
    as an affine combination of [for] loop counters plus a constant, or
    one of two extreme elements:

    {v   Bot  ⊑  Aff (c1·v1 + … + cn·vn + k)  ⊑  Top   v}

    Loop counters are identified by the {e statement id of the binding
    [For]}, not by name, so shadowing and cross-function flows (a counter
    passed as a call argument) cannot confuse two distinct loops.  [Top]
    means "any integer" (non-affine, or derived from mutable state);
    [Bot] means "no value observed yet" and only occurs transiently
    inside the summary fixpoint (a parameter of a function with no
    analyzed call yet) — every consumer must treat it like [Top].  The
    soundness contract of [Aff]: in any execution, the dynamic value of
    the abstracted expression equals [k + Σ ci·(value of counter vi)]
    where each counter value is the one bound by the corresponding [For]
    iteration enclosing (or passed into) the access.

    {b Loop metadata.}  A {!loops} table gives each [For] statement its
    counter name and constant-folded bounds.  Facts used by the tests
    (all verified against the interpreter):
    - bounds and step are evaluated {e once} per loop execution;
    - the counter is immutable in the body ({!Mhj.Typecheck});
    - the step is non-zero and may be negative; bounds are inclusive, so
      every bound value lies in [[min lo hi, max lo hi]];
    - every value is congruent to [lo] modulo [|step|].

    {b Contexts.}  The MHP analysis tags each pair emission with the
    structural meet point it covers (see {!Mhp}): [shared] is the set of
    [For] sids whose counters are guaranteed to hold {e equal} values in
    the two overlapping instances (the loops enclosing the meet point),
    and [loop = Some l] additionally guarantees the two instances belong
    to {e distinct iterations of one execution} of loop [l] — their [l]
    values differ by a non-zero multiple of the step, bounded by the
    loop's span.

    {b Disjointness.}  [disjoint loops ctx fa fb] returns [Ok ()] only
    when the two subscript values are provably unequal in every execution
    consistent with the context, via (in order): the exact cross-iteration
    test [c·δ + h = 0] when both forms have the same non-zero coefficient
    on the context loop (constant-offset separation, stride/GCD residue,
    and span bounds), then interval non-overlap from constant loop
    bounds, then a GCD residue test from constant [lo]/[step] lattices.
    Variables not shared between the two instances are renamed apart and
    range over their full value sets — independence is the weakest
    assumption, so the tests stay sound.  Any missing information makes
    the test fail with a {!reason}, never a wrong proof. *)

module IntSet : Set.S with type elt = int

(** Affine forms over [For]-statement counters.  Invariant on [Aff
    (terms, k)]: terms are sorted by sid, with non-zero coefficients and
    no duplicate sids — maintained by the smart constructors, so
    structural equality decides semantic equality.  Build forms with
    {!const}/{!var} and the arithmetic below; match freely. *)
type form =
  | Bot  (** no value observed yet (uncalled function's parameter) *)
  | Aff of (int * int) list * int  (** [(For sid, coeff)] terms + const *)
  | Top  (** any integer *)

val const : int -> form

val var : int -> form

val add : form -> form -> form

val sub : form -> form -> form

val neg : form -> form

val mul : form -> form -> form
(** Sound only when at least one side is constant; otherwise [Top]. *)

(** Least upper bound in [Bot ⊑ Aff ⊑ Top]; two distinct affine forms
    join to [Top]. *)
val join : form -> form -> form

val equal : form -> form -> bool

(** Constant-folded metadata of one [For] statement.  [lo]/[hi]/[step]
    are [Some] only when the bound expression folds to the same integer
    in {e every} execution (literals and immutable locals with such
    initializers); [step = Some s] has [s <> 0]. *)
type bounds = {
  counter : string;
  lo : int option;
  hi : int option;
  step : int option;
  floc : Mhj.Loc.t;
}

(** [For] sid -> folded bounds, built by {!Summary.build}. *)
type loops = (int, bounds) Hashtbl.t

(** One MHP emission context (see the module preamble). *)
type ctx = { loop : int option; shared : IntSet.t }

val ctx_equal : ctx -> ctx -> bool

(** Why a conflict survived refinement (most specific failure wins). *)
type reason =
  | Global of string  (** collision on a global; no subscript to refine *)
  | Non_affine
      (** a colliding occurrence's subscript is not affine (or flows
          through mutable state / multiple call sites) *)
  | Unknown_bounds
      (** affine subscripts, but a needed bound or step is not a
          compile-time constant *)
  | May_overlap  (** full information, and the indices can collide *)

val describe : reason -> string

val disjoint : loops -> ctx -> form -> form -> (unit, reason) result

(** Render a form using the counter names from [loops] (e.g. ["2*i + 1"],
    ["?"] for [Top]/[Bot]). *)
val pp_form : loops -> form Fmt.t
