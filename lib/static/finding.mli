(** Source-located findings emitted by the static MHP/race/lint layer.

    Self-contained (depends only on [Mhj.Loc]) so that both the CLI lint
    front end and the repair driver's static verifier can report through
    one type; [Core.Diag.of_finding] adapts findings into the pipeline's
    diagnostic type. *)

type rule =
  | Static_race  (** a MHP statement pair with conflicting accesses *)
  | Redundant_finish  (** a finish whose body spawns no escaping async *)
  | Dead_async  (** an async whose body contains no statements *)
  | Finish_coarsen  (** adjacent finishes that could be coalesced *)
  | Provably_disjoint
      (** a parallel array pair discharged by the affine refinement *)

type severity = Warning | Info

type t = { rule : rule; severity : severity; loc : Mhj.Loc.t; msg : string }

(** Kebab-case rule identifier, as printed in brackets by {!pp}. *)
val rule_name : rule -> string

val make : ?severity:severity -> rule:rule -> loc:Mhj.Loc.t -> string -> t

val pp : t Fmt.t

val to_string : t -> string

(** Stable report order: source position, then rule, then message. *)
val compare : t -> t -> int
