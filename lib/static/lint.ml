(** The lint rule framework over the static analysis layer (see
    lint.mli). *)

open Mhj

(* A statement is syntactically empty when it is a (possibly nested)
   block with no effectful statements at all. *)
let rec is_empty_stmt (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Block b -> List.for_all is_empty_stmt b.Ast.stmts
  | _ -> false

(* Every block of the program, in source order: function bodies plus all
   nested blocks. *)
let iter_blocks (prog : Ast.program) (f : Ast.block -> unit) =
  let rec on_stmt (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.If (_, a, b) ->
        on_stmt a;
        Option.iter on_stmt b
    | While (_, b) | For (_, _, _, _, b) | Async b | Finish b | Isolated b ->
        on_stmt b
    | Block blk -> on_block blk
    | Decl _ | Assign _ | Return _ | Expr _ -> ()
  and on_block blk =
    f blk;
    List.iter on_stmt blk.Ast.stmts
  in
  List.iter (fun (fn : Ast.func) -> on_block fn.body) prog.funcs

let dead_asyncs (prog : Ast.program) : Finding.t list =
  let acc = ref [] in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Async body when is_empty_stmt body ->
          acc :=
            Finding.make ~rule:Finding.Dead_async ~loc:st.Ast.sloc
              "dead async: its body contains no statements"
            :: !acc
      | _ -> ())
    prog;
  List.rev !acc

let coarsen_candidates (prog : Ast.program) : Finding.t list =
  let acc = ref [] in
  iter_blocks prog (fun blk ->
      let rec pairs = function
        | ({ Ast.s = Ast.Finish _; _ } : Ast.stmt)
          :: ({ Ast.s = Ast.Finish _; sloc; _ } as b)
          :: rest ->
            acc :=
              Finding.make ~severity:Finding.Info ~rule:Finding.Finish_coarsen
                ~loc:sloc
                "adjacent finish statements: a single enclosing finish \
                 would join both with one synchronization"
              :: !acc;
            pairs (b :: rest)
        | _ :: rest -> pairs rest
        | [] -> ()
      in
      pairs blk.Ast.stmts);
  List.rev !acc

let run ?(explain = false) (prog : Ast.program) : Finding.t list =
  let summary, mhp, cs, ds = Racecheck.check_full prog in
  let races = Racecheck.to_findings ~explain summary cs in
  let disjoint_notes = Racecheck.note_findings summary ds in
  let redundant =
    List.map
      (fun (_sid, loc) ->
        Finding.make ~rule:Finding.Redundant_finish ~loc
          "redundant finish: its body cannot spawn an escaping async, so \
           the join is a no-op")
      (Mhp.redundant_finishes mhp)
  in
  List.sort Finding.compare
    (races @ disjoint_notes @ redundant @ dead_asyncs prog
   @ coarsen_candidates prog)
