(** Lint rules over the static analysis layer, as run by
    [tdrepair lint].

    Rules (see {!Finding.rule}):
    - {b static-race} (warning): an unproven MHP statement pair with
      conflicting may-accesses — a possible race on some input (already
      sharpened by the affine index refinement);
    - {b provably-disjoint} (info): a parallel array pair the affine
      refinement discharged — the indices can never collide;
    - {b redundant-finish} (warning): a finish whose body cannot spawn an
      escaping async (interprocedural: a body whose calls join all their
      asyncs internally counts as async-free);
    - {b dead-async} (warning): an async with a syntactically empty body;
    - {b finish-coarsen} (info): adjacent sibling finishes that one
      enclosing finish would join with a single synchronization.

    The input must be normalized ({!Mhj.Front.compile}).  Findings come
    back sorted by source position.  With [~explain:true] each
    static-race message carries the reason the refinement could not
    discharge the pair (non-affine subscript, unknown bounds, global
    collision, or genuine overlap). *)

val run : ?explain:bool -> Mhj.Ast.program -> Finding.t list

(** Individual rules (exposed for targeted tests). *)
val dead_asyncs : Mhj.Ast.program -> Finding.t list

val coarsen_candidates : Mhj.Ast.program -> Finding.t list
