(** Static pre-pass for dynamic-detection pruning (see prune.mli). *)

module IntSet = Racecheck.IntSet

type t = {
  summary : Summary.t;
  keep_sids : IntSet.t;
  n_conflicts : int;
}

let make (prog : Mhj.Ast.program) : t =
  let summary, _mhp, cs = Racecheck.check prog in
  {
    summary;
    keep_sids = Racecheck.may_race_sids cs;
    n_conflicts = List.length cs;
  }

(* Unknown positions are kept: pruning is an optimization, never a bet. *)
let keep t ~bid ~idx =
  match Summary.stmt_at t.summary ~bid ~idx with
  | Some sid -> IntSet.mem sid t.keep_sids
  | None -> true

let n_kept t = IntSet.cardinal t.keep_sids

let n_stmts t = Summary.n_stmts t.summary

let n_conflicts t = t.n_conflicts
