(** Static pre-pass for dynamic-detection pruning (see prune.mli). *)

module IntSet = Racecheck.IntSet

type t = {
  summary : Summary.t;
  keep_sids : IntSet.t;
  n_conflicts : int;
}

let make ?refine (prog : Mhj.Ast.program) : t =
  let summary, _mhp, cs = Racecheck.check ?refine prog in
  {
    summary;
    keep_sids = Racecheck.may_race_sids cs;
    n_conflicts = List.length cs;
  }

(* Unknown positions are kept: pruning is an optimization, never a bet. *)
let keep t ~bid ~idx =
  match Summary.stmt_at t.summary ~bid ~idx with
  | Some sid -> IntSet.mem sid t.keep_sids
  | None -> true

(* [keep] runs once per monitored access, so the hashtable probe and set
   membership are hot.  [keep_fn] bakes the same predicate into a dense
   (block id x statement index) bitmap built in one pass over the
   summary's position map: the per-access cost drops to two bounds checks
   and a byte load.  Out-of-range positions are unknown, hence kept. *)
let keep_fn t =
  let n_rows = ref 0 in
  Summary.iter_positions t.summary (fun ~bid ~idx:_ ~sid:_ ->
      if bid + 1 > !n_rows then n_rows := bid + 1);
  let widths = Array.make !n_rows 0 in
  Summary.iter_positions t.summary (fun ~bid ~idx ~sid:_ ->
      if idx + 1 > widths.(bid) then widths.(bid) <- idx + 1);
  let rows = Array.map (fun w -> Bytes.make w '\001') widths in
  Summary.iter_positions t.summary (fun ~bid ~idx ~sid ->
      Bytes.set rows.(bid) idx
        (if IntSet.mem sid t.keep_sids then '\001' else '\000'));
  fun ~bid ~idx ->
    if bid < 0 || bid >= Array.length rows then true
    else
      let row = Array.unsafe_get rows bid in
      if idx < 0 || idx >= Bytes.length row then true
      else Bytes.unsafe_get row idx <> '\000'

let n_kept t = IntSet.cardinal t.keep_sids

let n_stmts t = Summary.n_stmts t.summary

let n_conflicts t = t.n_conflicts

let stats t =
  let stmts = n_stmts t and kept = n_kept t in
  [
    ("prune.stmts", stmts);
    ("prune.kept", kept);
    ("prune.discharged", stmts - kept);
    ("prune.conflicts", t.n_conflicts);
  ]
