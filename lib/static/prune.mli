(** Static pre-pass that lets the dynamic detector skip instrumenting
    accesses proven sequential.

    A statement whose sid participates in no {!Racecheck} conflict cannot
    be an endpoint of any dynamic race, on any input: every dynamic race
    is covered by a static MHP pair of its statements (MHP soundness) and
    its address falls in both statements' region summaries (alias
    soundness), which is exactly a conflict.  Skipping the monitor
    callback for such statements therefore leaves the MRW detector's race
    set unchanged — MRW keeps {e all} readers and writers per location,
    so dropping never-racing records cannot mask a race between kept
    ones.  (SRW's single-slot shadow state is overwrite-sensitive; the
    race-set-identity guarantee is claimed for MRW only.) *)

type t

(** [refine] (default [true]) enables the index-sensitive affine
    refinement; [~refine:false] keeps only the coarse region analysis
    (ablation baseline). *)
val make : ?refine:bool -> Mhj.Ast.program -> t

(** Must the access at this interpreter position stay monitored?
    Unknown positions are conservatively kept. *)
val keep : t -> bid:int -> idx:int -> bool

(** [keep_fn t] is {!keep} precompiled into a dense per-position bitmap:
    the returned predicate agrees with [keep t] on every position and
    costs two bounds checks and a byte load per call.  Build it once per
    run and pass it to {!Espbags.Detector.detect}'s [?keep]. *)
val keep_fn : t -> bid:int -> idx:int -> bool

(** Statements that must stay monitored. *)
val n_kept : t -> int

val n_stmts : t -> int

(** Unproven MHP/access conflicts behind the kept set. *)
val n_conflicts : t -> int

(** The pre-pass counters as ["prune."]-prefixed keys for an
    {!Obs.Metrics} registry: total statements, statements kept
    monitored, statements discharged, and unproven conflicts. *)
val stats : t -> (string * int) list
