(** Flow-insensitive alias and access summaries for Mini-HJ (see
    summary.mli for the model and its soundness argument). *)

open Mhj
module IntSet = Set.Make (Int)
module SS = Set.Make (String)

type region =
  | RGlobal of string  (** the global binding itself *)
  | RCell of int  (** any cell of an array allocated at the given site *)

module RegionSet = Set.Make (struct
  type t = region

  let compare = compare
end)

(* Points-to variables of the Andersen-style analysis: each holds the set
   of allocation sites its array value may come from. *)
type pvar =
  | PGlobal of string
  | PLocal of string * string  (** (function, local or parameter) *)
  | PRet of string  (** a function's return value *)
  | PElem of int  (** the cells of arrays allocated at a site *)

(* Allocation sites are keyed by their owner (a statement, or a global
   initializer) and the [NewArr] occurrence index within the owner's
   expressions in evaluation order — a pure function of the AST, so the
   numbering is identical on every walk. *)
type owner = Ostmt of int | Oglobal of string

type access = {
  rw : [ `R | `W ];
  region : region;
  sub : Affine.form;  (** the subscript's affine form; [Top] for globals *)
}

type info = {
  mutable reads : RegionSet.t;
  mutable writes : RegionSet.t;
  mutable calls : string list;
  mutable accs : access list;
}

type t = {
  infos : (int, info) Hashtbl.t;  (** sid -> direct access summary *)
  stmt_at : (int * int, int) Hashtbl.t;  (** (bid, idx) -> sid *)
  locs : (int, Loc.t) Hashtbl.t;  (** sid -> source location *)
  site_locs : (int, Loc.t) Hashtbl.t;  (** allocation site -> NewArr loc *)
  loops : Affine.loops;  (** For sid -> constant-folded bounds *)
  n_sites : int;
  n_stmts : int;
}

let reads t sid =
  match Hashtbl.find_opt t.infos sid with
  | Some i -> i.reads
  | None -> RegionSet.empty

let writes t sid =
  match Hashtbl.find_opt t.infos sid with
  | Some i -> i.writes
  | None -> RegionSet.empty

let calls t sid =
  match Hashtbl.find_opt t.infos sid with Some i -> i.calls | None -> []

let accesses t sid =
  match Hashtbl.find_opt t.infos sid with Some i -> i.accs | None -> []

let loops t = t.loops

let loc_of t sid =
  Option.value ~default:Loc.dummy (Hashtbl.find_opt t.locs sid)

let stmt_at t ~bid ~idx = Hashtbl.find_opt t.stmt_at (bid, idx)

let iter_positions t f =
  Hashtbl.iter (fun (bid, idx) sid -> f ~bid ~idx ~sid) t.stmt_at

let n_sites t = t.n_sites

let n_stmts t = t.n_stmts

let pp_region t ppf = function
  | RGlobal g -> Fmt.pf ppf "global '%s'" g
  | RCell s -> (
      match Hashtbl.find_opt t.site_locs s with
      | Some l when not (Loc.is_dummy l) ->
          Fmt.pf ppf "the array allocated at %a" Loc.pp l
      | _ -> Fmt.pf ppf "an array (allocation site %d)" s)

(* Affine form of an integer expression under an environment binding
   visible locals to their forms (loop counters to their [For] sid's
   variable, immutable locals to their folded initializer, mutable
   locals to [Top]).  Globals and anything else are [Top]; constant
   division/modulo fold with the interpreter's semantics. *)
let rec feval ~aenv (e : Ast.expr) : Affine.form =
  match e.Ast.e with
  | Ast.Int n -> Affine.const n
  | Var x -> (
      match List.assoc_opt x aenv with Some f -> f | None -> Affine.Top)
  | Bin (Add, a, b) -> Affine.add (feval ~aenv a) (feval ~aenv b)
  | Bin (Sub, a, b) -> Affine.sub (feval ~aenv a) (feval ~aenv b)
  | Bin (Mul, a, b) -> Affine.mul (feval ~aenv a) (feval ~aenv b)
  | Bin (Div, a, b) -> (
      match (feval ~aenv a, feval ~aenv b) with
      | Affine.Bot, _ | _, Affine.Bot -> Affine.Bot
      | Affine.Aff ([], x), Affine.Aff ([], y) when y <> 0 ->
          Affine.const (x / y)
      | _ -> Affine.Top)
  | Bin (Mod, a, b) -> (
      match (feval ~aenv a, feval ~aenv b) with
      | Affine.Bot, _ | _, Affine.Bot -> Affine.Bot
      | Affine.Aff ([], x), Affine.Aff ([], y) when y <> 0 ->
          Affine.const (x mod y)
      | _ -> Affine.Top)
  | Un (Neg, a) -> Affine.neg (feval ~aenv a)
  | Float _ | Bool _ | Str _ | Bin _ | Un (Not, _) | Idx _ | Call _
  | NewArr _ ->
      Affine.Top

let build (prog : Ast.program) : t =
  let globals =
    List.fold_left
      (fun s (g : Ast.global) -> SS.add g.gname s)
      SS.empty prog.globals
  in
  (* allocation sites *)
  let sites : (owner * int, int) Hashtbl.t = Hashtbl.create 64 in
  let site_locs = Hashtbl.create 64 in
  let n_sites = ref 0 in
  let site key loc =
    match Hashtbl.find_opt sites key with
    | Some s -> s
    | None ->
        incr n_sites;
        let s = !n_sites in
        Hashtbl.add sites key s;
        Hashtbl.replace site_locs s loc;
        s
  in
  (* points-to fixpoint state *)
  let pts : (pvar, IntSet.t) Hashtbl.t = Hashtbl.create 256 in
  let changed = ref true in
  let lookup v =
    Option.value ~default:IntSet.empty (Hashtbl.find_opt pts v)
  in
  (* Parameter affine forms, joined over all analyzed call sites inside
     the same fixpoint: each parameter climbs Bot -> one form -> Top, so
     this converges (recursion included).  [Bot] arguments carry no
     information yet and are skipped — they are recomputed from scratch
     on the next pass. *)
  let pforms : (string * string, Affine.form) Hashtbl.t =
    Hashtbl.create 64
  in
  let pform f p =
    Option.value ~default:Affine.Bot (Hashtbl.find_opt pforms (f, p))
  in
  let pjoin f p form =
    if form <> Affine.Bot then begin
      let cur = pform f p in
      let nw = Affine.join cur form in
      if not (Affine.equal nw cur) then begin
        Hashtbl.replace pforms (f, p) nw;
        changed := true
      end
    end
  in
  (* For sid -> folded bounds; overwritten every pass, so the table holds
     the converged folding after the final (recording) walk *)
  let loops : Affine.loops = Hashtbl.create 32 in
  let flow v s =
    if not (IntSet.is_empty s) then begin
      let cur = lookup v in
      if not (IntSet.subset s cur) then begin
        Hashtbl.replace pts v (IntSet.union cur s);
        changed := true
      end
    end
  in
  (* Walk [e] in evaluation order, returning the allocation sites its
     value may denote.  [emit]/[callf] are the record-pass hooks (no-ops
     during the fixpoint); [ctr] numbers NewArr occurrences. *)
  let rec expr_sites ~fname ~locals ~aenv ~owner ~ctr ~emit ~callf
      (e : Ast.expr) : IntSet.t =
    let recur = expr_sites ~fname ~locals ~aenv ~owner ~ctr ~emit ~callf in
    match e.Ast.e with
    | Ast.Int _ | Float _ | Bool _ | Str _ -> IntSet.empty
    | Var x ->
        if SS.mem x locals then lookup (PLocal (fname, x))
        else if SS.mem x globals then begin
          emit `R (RGlobal x) Affine.Top;
          lookup (PGlobal x)
        end
        else IntSet.empty
    | Bin (_, a, b) ->
        ignore (recur a);
        ignore (recur b);
        IntSet.empty
    | Un (_, a) ->
        ignore (recur a);
        IntSet.empty
    | Idx (a, i) ->
        let sa = recur a in
        ignore (recur i);
        let fi = feval ~aenv i in
        IntSet.iter (fun s -> emit `R (RCell s) fi) sa;
        IntSet.fold
          (fun s acc -> IntSet.union (lookup (PElem s)) acc)
          sa IntSet.empty
    | Call (f, args) ->
        let arg_sites = List.map recur args in
        if Builtins.is_builtin f then
          (* builtins neither retain nor return caller arrays; [cas]'s
             cell accesses are exempt from race detection by contract *)
          IntSet.empty
        else begin
          callf f;
          (match Ast.find_func prog f with
          | Some fn when List.length fn.params = List.length arg_sites ->
              List.iter2
                (fun (p, _) s -> flow (PLocal (f, p)) s)
                fn.params arg_sites;
              (* propagate the arguments' affine forms into the callee's
                 parameters (joined over all call sites) *)
              List.iter2
                (fun (p, _) a -> pjoin f p (feval ~aenv a))
                fn.params args
          | _ -> ());
          lookup (PRet f)
        end
    | NewArr (_, dims) ->
        List.iter (fun d -> ignore (recur d)) dims;
        let k = !ctr in
        incr ctr;
        let s = site (owner, k) e.Ast.eloc in
        (* multi-dimensional allocation: outer cells hold the inner
           arrays, summarized under the same site *)
        if List.length dims > 1 then flow (PElem s) (IntSet.singleton s);
        IntSet.singleton s
  in
  (* Direct effects of one statement: only its own expressions — nested
     statements are visited separately by the walker. *)
  let stmt_flow ~fname ~locals ~aenv ~emit ~callf (st : Ast.stmt) =
    let ctr = ref 0 in
    let ex =
      expr_sites ~fname ~locals ~aenv ~owner:(Ostmt st.Ast.sid) ~ctr ~emit
        ~callf
    in
    match st.Ast.s with
    | Decl (_, x, _, init) -> flow (PLocal (fname, x)) (ex init)
    | Assign (x, [], rhs) ->
        let s = ex rhs in
        if SS.mem x locals then flow (PLocal (fname, x)) s
        else if SS.mem x globals then begin
          emit `W (RGlobal x) Affine.Top;
          flow (PGlobal x) s
        end
    | Assign (x, path, rhs) ->
        let base =
          if SS.mem x locals then lookup (PLocal (fname, x))
          else if SS.mem x globals then begin
            emit `R (RGlobal x) Affine.Top;
            lookup (PGlobal x)
          end
          else IntSet.empty
        in
        (* mirror the interpreter: indices in order, then the rhs, with a
           cell read at each intermediate level and a write at the last *)
        let rec down cur = function
          | [] -> ()
          | [ last ] ->
              ignore (ex last);
              let fl = feval ~aenv last in
              let s = ex rhs in
              IntSet.iter
                (fun c ->
                  emit `W (RCell c) fl;
                  flow (PElem c) s)
                cur
          | i :: rest ->
              ignore (ex i);
              let fi = feval ~aenv i in
              IntSet.iter (fun c -> emit `R (RCell c) fi) cur;
              down
                (IntSet.fold
                   (fun c acc -> IntSet.union (lookup (PElem c)) acc)
                   cur IntSet.empty)
                rest
        in
        down base path
    | If (c, _, _) | While (c, _) -> ignore (ex c)
    | For (_, lo, hi, by, _) ->
        ignore (ex lo);
        ignore (ex hi);
        Option.iter (fun e -> ignore (ex e)) by
    | Return (Some e) -> flow (PRet fname) (ex e)
    | Return None | Async _ | Finish _ | Isolated _ | Block _ -> ()
    | Expr e -> ignore (ex e)
  in
  (* Scope-threading walker: [locals] holds the local names visible at
     each statement (parameters, loop variables, and earlier Decls of
     enclosing blocks), so Var resolution matches the interpreter's
     local-shadows-global rule; [aenv] mirrors it with each local's
     affine form (cons-front, so shadowing resolves to the newest
     binding). *)
  let rec walk_stmt ~fname ~locals ~aenv ~emit ~callf (st : Ast.stmt) =
    stmt_flow ~fname ~locals ~aenv ~emit:(emit st) ~callf:(callf st) st;
    match st.Ast.s with
    | If (_, a, b) ->
        walk_stmt ~fname ~locals ~aenv ~emit ~callf a;
        Option.iter (walk_stmt ~fname ~locals ~aenv ~emit ~callf) b
    | While (_, b) -> walk_stmt ~fname ~locals ~aenv ~emit ~callf b
    | For (i, lo, hi, by, b) ->
        (* fold the bounds in the environment *outside* the loop (the
           counter is not yet bound); only constant foldings are kept —
           they hold for every execution of the loop *)
        let cint e =
          match feval ~aenv e with
          | Affine.Aff ([], k) -> Some k
          | _ -> None
        in
        Hashtbl.replace loops st.Ast.sid
          {
            Affine.counter = i;
            lo = cint lo;
            hi = cint hi;
            step =
              (match by with
              | None -> Some 1
              | Some e -> (
                  (* a zero step is a runtime error before any
                     iteration; treat it as unknown *)
                  match cint e with Some 0 -> None | s -> s));
            floc = st.Ast.sloc;
          };
        walk_stmt ~fname
          ~locals:(SS.add i locals)
          ~aenv:((i, Affine.var st.Ast.sid) :: aenv)
          ~emit ~callf b
    | Async b | Finish b | Isolated b ->
        walk_stmt ~fname ~locals ~aenv ~emit ~callf b
    | Block blk -> walk_block ~fname ~locals ~aenv ~emit ~callf blk
    | Decl _ | Assign _ | Return _ | Expr _ -> ()
  and walk_block ~fname ~locals ~aenv ~emit ~callf (blk : Ast.block) =
    ignore
      (List.fold_left
         (fun (locals, aenv) st ->
           walk_stmt ~fname ~locals ~aenv ~emit ~callf st;
           match st.Ast.s with
           | Ast.Decl (m, x, _, init) ->
               let f =
                 match m with
                 | Ast.Immut -> feval ~aenv init
                 | Ast.Mut -> Affine.Top
               in
               (SS.add x locals, (x, f) :: aenv)
           | _ -> (locals, aenv))
         (locals, aenv) blk.Ast.stmts)
  in
  let pass ~emit ~callf =
    (* global initializers run unmonitored (program setup), so their
       accesses are never recorded — only their array flows matter *)
    List.iter
      (fun (g : Ast.global) ->
        let ctr = ref 0 in
        flow (PGlobal g.gname)
          (expr_sites ~fname:"" ~locals:SS.empty ~aenv:[]
             ~owner:(Oglobal g.gname) ~ctr
             ~emit:(fun _ _ _ -> ())
             ~callf:(fun _ -> ())
             g.ginit))
      prog.globals;
    List.iter
      (fun (fn : Ast.func) ->
        let locals =
          List.fold_left (fun s (p, _) -> SS.add p s) SS.empty fn.params
        in
        let aenv =
          List.map (fun (p, _) -> (p, pform fn.fname p)) fn.params
        in
        walk_block ~fname:fn.fname ~locals ~aenv ~emit ~callf fn.body)
      prog.funcs
  in
  let quiet_emit _ _ _ _ = () and quiet_call _ _ = () in
  while !changed do
    changed := false;
    pass ~emit:quiet_emit ~callf:quiet_call
  done;
  (* one recording pass over the converged points-to solution *)
  let infos = Hashtbl.create 256 in
  let info_of sid =
    match Hashtbl.find_opt infos sid with
    | Some i -> i
    | None ->
        let i =
          {
            reads = RegionSet.empty;
            writes = RegionSet.empty;
            calls = [];
            accs = [];
          }
        in
        Hashtbl.add infos sid i;
        i
  in
  let emit (st : Ast.stmt) rw region sub =
    let i = info_of st.Ast.sid in
    (match rw with
    | `R -> i.reads <- RegionSet.add region i.reads
    | `W -> i.writes <- RegionSet.add region i.writes);
    let a = { rw; region; sub } in
    if not (List.mem a i.accs) then i.accs <- a :: i.accs
  in
  let callf (st : Ast.stmt) f =
    let i = info_of st.Ast.sid in
    if not (List.mem f i.calls) then i.calls <- f :: i.calls
  in
  pass ~emit ~callf;
  (* positional index: every (block id, statement index) to its sid — the
     coordinates the interpreter reports at each monitored access *)
  let stmt_at = Hashtbl.create 256 and locs = Hashtbl.create 256 in
  let n_stmts = ref 0 in
  Ast.iter_stmts
    (fun st ->
      incr n_stmts;
      Hashtbl.replace locs st.Ast.sid st.Ast.sloc)
    prog;
  let rec index_stmt (st : Ast.stmt) =
    match st.Ast.s with
    | If (_, a, b) ->
        index_stmt a;
        Option.iter index_stmt b
    | While (_, b) | For (_, _, _, _, b) | Async b | Finish b | Isolated b ->
        index_stmt b
    | Block blk -> index_block blk
    | Decl _ | Assign _ | Return _ | Expr _ -> ()
  and index_block (blk : Ast.block) =
    List.iteri
      (fun i st ->
        Hashtbl.replace stmt_at (blk.Ast.bid, i) st.Ast.sid;
        index_stmt st)
      blk.Ast.stmts
  in
  List.iter (fun (fn : Ast.func) -> index_block fn.body) prog.funcs;
  {
    infos;
    stmt_at;
    locs;
    site_locs;
    loops;
    n_sites = !n_sites;
    n_stmts = !n_stmts;
  }
