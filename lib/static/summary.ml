(** Flow-insensitive alias and access summaries for Mini-HJ (see
    summary.mli for the model and its soundness argument). *)

open Mhj
module IntSet = Set.Make (Int)
module SS = Set.Make (String)

type region =
  | RGlobal of string  (** the global binding itself *)
  | RCell of int  (** any cell of an array allocated at the given site *)

module RegionSet = Set.Make (struct
  type t = region

  let compare = compare
end)

(* Points-to variables of the Andersen-style analysis: each holds the set
   of allocation sites its array value may come from. *)
type pvar =
  | PGlobal of string
  | PLocal of string * string  (** (function, local or parameter) *)
  | PRet of string  (** a function's return value *)
  | PElem of int  (** the cells of arrays allocated at a site *)

(* Allocation sites are keyed by their owner (a statement, or a global
   initializer) and the [NewArr] occurrence index within the owner's
   expressions in evaluation order — a pure function of the AST, so the
   numbering is identical on every walk. *)
type owner = Ostmt of int | Oglobal of string

type info = {
  mutable reads : RegionSet.t;
  mutable writes : RegionSet.t;
  mutable calls : string list;
}

type t = {
  infos : (int, info) Hashtbl.t;  (** sid -> direct access summary *)
  stmt_at : (int * int, int) Hashtbl.t;  (** (bid, idx) -> sid *)
  locs : (int, Loc.t) Hashtbl.t;  (** sid -> source location *)
  site_locs : (int, Loc.t) Hashtbl.t;  (** allocation site -> NewArr loc *)
  n_sites : int;
  n_stmts : int;
}

let reads t sid =
  match Hashtbl.find_opt t.infos sid with
  | Some i -> i.reads
  | None -> RegionSet.empty

let writes t sid =
  match Hashtbl.find_opt t.infos sid with
  | Some i -> i.writes
  | None -> RegionSet.empty

let calls t sid =
  match Hashtbl.find_opt t.infos sid with Some i -> i.calls | None -> []

let loc_of t sid =
  Option.value ~default:Loc.dummy (Hashtbl.find_opt t.locs sid)

let stmt_at t ~bid ~idx = Hashtbl.find_opt t.stmt_at (bid, idx)

let iter_positions t f =
  Hashtbl.iter (fun (bid, idx) sid -> f ~bid ~idx ~sid) t.stmt_at

let n_sites t = t.n_sites

let n_stmts t = t.n_stmts

let pp_region t ppf = function
  | RGlobal g -> Fmt.pf ppf "global '%s'" g
  | RCell s -> (
      match Hashtbl.find_opt t.site_locs s with
      | Some l when not (Loc.is_dummy l) ->
          Fmt.pf ppf "the array allocated at %a" Loc.pp l
      | _ -> Fmt.pf ppf "an array (allocation site %d)" s)

let build (prog : Ast.program) : t =
  let globals =
    List.fold_left
      (fun s (g : Ast.global) -> SS.add g.gname s)
      SS.empty prog.globals
  in
  (* allocation sites *)
  let sites : (owner * int, int) Hashtbl.t = Hashtbl.create 64 in
  let site_locs = Hashtbl.create 64 in
  let n_sites = ref 0 in
  let site key loc =
    match Hashtbl.find_opt sites key with
    | Some s -> s
    | None ->
        incr n_sites;
        let s = !n_sites in
        Hashtbl.add sites key s;
        Hashtbl.replace site_locs s loc;
        s
  in
  (* points-to fixpoint state *)
  let pts : (pvar, IntSet.t) Hashtbl.t = Hashtbl.create 256 in
  let changed = ref true in
  let lookup v =
    Option.value ~default:IntSet.empty (Hashtbl.find_opt pts v)
  in
  let flow v s =
    if not (IntSet.is_empty s) then begin
      let cur = lookup v in
      if not (IntSet.subset s cur) then begin
        Hashtbl.replace pts v (IntSet.union cur s);
        changed := true
      end
    end
  in
  (* Walk [e] in evaluation order, returning the allocation sites its
     value may denote.  [emit]/[callf] are the record-pass hooks (no-ops
     during the fixpoint); [ctr] numbers NewArr occurrences. *)
  let rec expr_sites ~fname ~locals ~owner ~ctr ~emit ~callf (e : Ast.expr)
      : IntSet.t =
    let recur = expr_sites ~fname ~locals ~owner ~ctr ~emit ~callf in
    match e.Ast.e with
    | Ast.Int _ | Float _ | Bool _ | Str _ -> IntSet.empty
    | Var x ->
        if SS.mem x locals then lookup (PLocal (fname, x))
        else if SS.mem x globals then begin
          emit `R (RGlobal x);
          lookup (PGlobal x)
        end
        else IntSet.empty
    | Bin (_, a, b) ->
        ignore (recur a);
        ignore (recur b);
        IntSet.empty
    | Un (_, a) ->
        ignore (recur a);
        IntSet.empty
    | Idx (a, i) ->
        let sa = recur a in
        ignore (recur i);
        IntSet.iter (fun s -> emit `R (RCell s)) sa;
        IntSet.fold
          (fun s acc -> IntSet.union (lookup (PElem s)) acc)
          sa IntSet.empty
    | Call (f, args) ->
        let arg_sites = List.map recur args in
        if Builtins.is_builtin f then
          (* builtins neither retain nor return caller arrays; [cas]'s
             cell accesses are exempt from race detection by contract *)
          IntSet.empty
        else begin
          callf f;
          (match Ast.find_func prog f with
          | Some fn when List.length fn.params = List.length arg_sites ->
              List.iter2
                (fun (p, _) s -> flow (PLocal (f, p)) s)
                fn.params arg_sites
          | _ -> ());
          lookup (PRet f)
        end
    | NewArr (_, dims) ->
        List.iter (fun d -> ignore (recur d)) dims;
        let k = !ctr in
        incr ctr;
        let s = site (owner, k) e.Ast.eloc in
        (* multi-dimensional allocation: outer cells hold the inner
           arrays, summarized under the same site *)
        if List.length dims > 1 then flow (PElem s) (IntSet.singleton s);
        IntSet.singleton s
  in
  (* Direct effects of one statement: only its own expressions — nested
     statements are visited separately by the walker. *)
  let stmt_flow ~fname ~locals ~emit ~callf (st : Ast.stmt) =
    let ctr = ref 0 in
    let ex =
      expr_sites ~fname ~locals ~owner:(Ostmt st.Ast.sid) ~ctr ~emit ~callf
    in
    match st.Ast.s with
    | Decl (_, x, _, init) -> flow (PLocal (fname, x)) (ex init)
    | Assign (x, [], rhs) ->
        let s = ex rhs in
        if SS.mem x locals then flow (PLocal (fname, x)) s
        else if SS.mem x globals then begin
          emit `W (RGlobal x);
          flow (PGlobal x) s
        end
    | Assign (x, path, rhs) ->
        let base =
          if SS.mem x locals then lookup (PLocal (fname, x))
          else if SS.mem x globals then begin
            emit `R (RGlobal x);
            lookup (PGlobal x)
          end
          else IntSet.empty
        in
        (* mirror the interpreter: indices in order, then the rhs, with a
           cell read at each intermediate level and a write at the last *)
        let rec down cur = function
          | [] -> ()
          | [ last ] ->
              ignore (ex last);
              let s = ex rhs in
              IntSet.iter
                (fun c ->
                  emit `W (RCell c);
                  flow (PElem c) s)
                cur
          | i :: rest ->
              ignore (ex i);
              IntSet.iter (fun c -> emit `R (RCell c)) cur;
              down
                (IntSet.fold
                   (fun c acc -> IntSet.union (lookup (PElem c)) acc)
                   cur IntSet.empty)
                rest
        in
        down base path
    | If (c, _, _) | While (c, _) -> ignore (ex c)
    | For (_, lo, hi, by, _) ->
        ignore (ex lo);
        ignore (ex hi);
        Option.iter (fun e -> ignore (ex e)) by
    | Return (Some e) -> flow (PRet fname) (ex e)
    | Return None | Async _ | Finish _ | Block _ -> ()
    | Expr e -> ignore (ex e)
  in
  (* Scope-threading walker: [locals] holds the local names visible at
     each statement (parameters, loop variables, and earlier Decls of
     enclosing blocks), so Var resolution matches the interpreter's
     local-shadows-global rule. *)
  let rec walk_stmt ~fname ~locals ~emit ~callf (st : Ast.stmt) =
    stmt_flow ~fname ~locals ~emit:(emit st) ~callf:(callf st) st;
    match st.Ast.s with
    | If (_, a, b) ->
        walk_stmt ~fname ~locals ~emit ~callf a;
        Option.iter (walk_stmt ~fname ~locals ~emit ~callf) b
    | While (_, b) -> walk_stmt ~fname ~locals ~emit ~callf b
    | For (i, _, _, _, b) ->
        walk_stmt ~fname ~locals:(SS.add i locals) ~emit ~callf b
    | Async b | Finish b -> walk_stmt ~fname ~locals ~emit ~callf b
    | Block blk -> walk_block ~fname ~locals ~emit ~callf blk
    | Decl _ | Assign _ | Return _ | Expr _ -> ()
  and walk_block ~fname ~locals ~emit ~callf (blk : Ast.block) =
    ignore
      (List.fold_left
         (fun locals st ->
           walk_stmt ~fname ~locals ~emit ~callf st;
           match st.Ast.s with
           | Ast.Decl (_, x, _, _) -> SS.add x locals
           | _ -> locals)
         locals blk.Ast.stmts)
  in
  let pass ~emit ~callf =
    (* global initializers run unmonitored (program setup), so their
       accesses are never recorded — only their array flows matter *)
    List.iter
      (fun (g : Ast.global) ->
        let ctr = ref 0 in
        flow (PGlobal g.gname)
          (expr_sites ~fname:"" ~locals:SS.empty ~owner:(Oglobal g.gname)
             ~ctr
             ~emit:(fun _ _ -> ())
             ~callf:(fun _ -> ())
             g.ginit))
      prog.globals;
    List.iter
      (fun (fn : Ast.func) ->
        let locals =
          List.fold_left (fun s (p, _) -> SS.add p s) SS.empty fn.params
        in
        walk_block ~fname:fn.fname ~locals ~emit ~callf fn.body)
      prog.funcs
  in
  let quiet_emit _ _ _ = () and quiet_call _ _ = () in
  while !changed do
    changed := false;
    pass ~emit:quiet_emit ~callf:quiet_call
  done;
  (* one recording pass over the converged points-to solution *)
  let infos = Hashtbl.create 256 in
  let info_of sid =
    match Hashtbl.find_opt infos sid with
    | Some i -> i
    | None ->
        let i =
          { reads = RegionSet.empty; writes = RegionSet.empty; calls = [] }
        in
        Hashtbl.add infos sid i;
        i
  in
  let emit (st : Ast.stmt) rw region =
    let i = info_of st.Ast.sid in
    match rw with
    | `R -> i.reads <- RegionSet.add region i.reads
    | `W -> i.writes <- RegionSet.add region i.writes
  in
  let callf (st : Ast.stmt) f =
    let i = info_of st.Ast.sid in
    if not (List.mem f i.calls) then i.calls <- f :: i.calls
  in
  pass ~emit ~callf;
  (* positional index: every (block id, statement index) to its sid — the
     coordinates the interpreter reports at each monitored access *)
  let stmt_at = Hashtbl.create 256 and locs = Hashtbl.create 256 in
  let n_stmts = ref 0 in
  Ast.iter_stmts
    (fun st ->
      incr n_stmts;
      Hashtbl.replace locs st.Ast.sid st.Ast.sloc)
    prog;
  let rec index_stmt (st : Ast.stmt) =
    match st.Ast.s with
    | If (_, a, b) ->
        index_stmt a;
        Option.iter index_stmt b
    | While (_, b) | For (_, _, _, _, b) | Async b | Finish b -> index_stmt b
    | Block blk -> index_block blk
    | Decl _ | Assign _ | Return _ | Expr _ -> ()
  and index_block (blk : Ast.block) =
    List.iteri
      (fun i st ->
        Hashtbl.replace stmt_at (blk.Ast.bid, i) st.Ast.sid;
        index_stmt st)
      blk.Ast.stmts
  in
  List.iter (fun (fn : Ast.func) -> index_block fn.body) prog.funcs;
  { infos; stmt_at; locs; site_locs; n_sites = !n_sites; n_stmts = !n_stmts }
