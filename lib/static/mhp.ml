(** Interprocedural static may-happen-in-parallel analysis (see mhp.mli
    for the L/E-set semantics and the per-construct pairing rules). *)

open Mhj
module IntSet = Set.Make (Int)

type t = {
  pairs : (int * int, Affine.ctx list) Hashtbl.t;
      (** normalized (min sid, max sid) -> structural emission contexts *)
  redundant_finishes : (int * Loc.t) list;
  l_of_func : (string, IntSet.t) Hashtbl.t;
  e_of_func : (string, IntSet.t) Hashtbl.t;
}

(* Analysis context: during the summary fixpoint [record] is off and only
   the per-function L/E summaries evolve; the final pass re-walks every
   function with [record] on, emitting MHP pairs and finish facts against
   the converged summaries. *)
type ctx = {
  summary : Summary.t;
  mutable record : bool;
  prs : (int * int, Affine.ctx list) Hashtbl.t;
  mutable redundant : (int * Loc.t) list;
  lf : (string, IntSet.t) Hashtbl.t;
  ef : (string, IntSet.t) Hashtbl.t;
  mutable changed : bool;
}

let get tbl k = Option.value ~default:IntSet.empty (Hashtbl.find_opt tbl k)

(* Emit E x L with the context of the structural meet point covering the
   overlap: [cinfo.shared] holds the For sids whose counters are equal in
   the two overlapping instances, [cinfo.loop = Some l] that they belong
   to distinct iterations of one execution of [l] (see affine.mli).  A
   pair may be emitted at several meet points; refinement must disprove
   every recorded context. *)
let add_pairs ctx cinfo es ls =
  if ctx.record && not (IntSet.is_empty es) then
    IntSet.iter
      (fun a ->
        IntSet.iter
          (fun b ->
            let key = if a <= b then (a, b) else (b, a) in
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt ctx.prs key)
            in
            if not (List.exists (Affine.ctx_equal cinfo) cur) then
              Hashtbl.replace ctx.prs key (cinfo :: cur))
          ls)
      es

(* L(s): every sid that may execute during s, transitively through calls
   and into async bodies (including s itself).  E(s): sids that may still
   be executing after s completes locally — the escaping asyncs.  Pairs
   are emitted exactly where an escape meets later-or-concurrent work:
   block suffixes, loop re-iterations, and within a statement's own
   evaluation. *)
let rec stmt_le ctx ~encl (st : Ast.stmt) : IntSet.t * IntSet.t =
  let callees = Summary.calls ctx.summary st.Ast.sid in
  let call_l =
    List.fold_left
      (fun acc f -> IntSet.union acc (get ctx.lf f))
      IntSet.empty callees
  and call_e =
    List.fold_left
      (fun acc f -> IntSet.union acc (get ctx.ef f))
      IntSet.empty callees
  in
  let self = IntSet.singleton st.Ast.sid in
  (* overlaps emitted here happen within one instance of this statement,
     so the two sides agree on every enclosing For counter *)
  let here = { Affine.loop = None; shared = encl } in
  match st.Ast.s with
  | Decl _ | Assign _ | Return _ | Expr _ ->
      let l = IntSet.union self call_l in
      (* an async escaping one call runs in parallel with the rest of the
         statement's evaluation (later calls, the statement's accesses) *)
      add_pairs ctx here call_e l;
      (l, call_e)
  | If (_, a, b) ->
      let la, ea = stmt_le ctx ~encl a in
      let lb, eb =
        match b with
        | Some b -> stmt_le ctx ~encl b
        | None -> (IntSet.empty, IntSet.empty)
      in
      let branches = IntSet.union la lb in
      (* asyncs escaping the condition's calls overlap whichever branch
         runs (and the If statement's own accesses) *)
      add_pairs ctx here call_e (IntSet.union self branches);
      ( IntSet.union self (IntSet.union call_l branches),
        IntSet.union call_e (IntSet.union ea eb) )
  | While (_, body) ->
      let lb, eb = stmt_le ctx ~encl body in
      let l = IntSet.union self (IntSet.union call_l lb) in
      let e = IntSet.union call_e eb in
      (* anything escaping the condition or one iteration may run in
         parallel with every later iteration — including another
         instance of itself *)
      add_pairs ctx here e l;
      (l, e)
  | For (_, _, _, _, body) ->
      let encl_body = Affine.IntSet.add st.Ast.sid encl in
      let lb, eb = stmt_le ctx ~encl:encl_body body in
      let l = IntSet.union self (IntSet.union call_l lb) in
      let e = IntSet.union call_e eb in
      (* asyncs escaping the bounds evaluation overlap the whole loop
         within one instance of the For statement... *)
      add_pairs ctx here call_e l;
      (* ...while body escapes meet later iterations: the two instances
         come from distinct iterations of one execution of this loop, so
         their counter values differ by a non-zero multiple of the step *)
      add_pairs ctx
        { Affine.loop = Some st.Ast.sid; shared = encl }
        eb l;
      (l, e)
  | Async body ->
      let lb, _ = stmt_le ctx ~encl body in
      (* the whole body escapes; no self-pairing here — a single async
         instance runs its own body sequentially *)
      let l = IntSet.union self lb in
      (l, l)
  | Finish body ->
      let lb, eb = stmt_le ctx ~encl body in
      if ctx.record && IntSet.is_empty eb then
        ctx.redundant <- (st.Ast.sid, st.Ast.sloc) :: ctx.redundant;
      (* the join: nothing escapes a finish *)
      (IntSet.union self lb, IntSet.empty)
  | Isolated body ->
      (* No tasks inside (enforced by the type checker): behaves like a
         plain nested statement for happens-in-parallel purposes.  The
         mutual exclusion between isolated instances is not modeled here —
         MHP stays an over-approximation, which keeps pruning sound. *)
      let lb, eb = stmt_le ctx ~encl body in
      add_pairs ctx here call_e (IntSet.union self lb);
      (IntSet.union self (IntSet.union call_l lb), IntSet.union call_e eb)
  | Block blk ->
      let lb, eb = block_le ctx ~encl blk in
      (IntSet.union self lb, eb)

and block_le ctx ~encl (blk : Ast.block) : IntSet.t * IntSet.t =
  let les = List.map (stmt_le ctx ~encl) blk.Ast.stmts in
  (* suffix rule: an async escaping statement i runs in parallel with
     everything statements i+1.. may execute — within one instance of
     this block, so enclosing counters are shared *)
  let here = { Affine.loop = None; shared = encl } in
  ignore
    (List.fold_right
       (fun (l, e) suffix ->
         add_pairs ctx here e suffix;
         IntSet.union l suffix)
       les IntSet.empty);
  List.fold_left
    (fun (la, ea) (l, e) -> (IntSet.union la l, IntSet.union ea e))
    (IntSet.empty, IntSet.empty)
    les

let analyze (prog : Ast.program) (summary : Summary.t) : t =
  let ctx =
    {
      summary;
      record = false;
      prs = Hashtbl.create 256;
      redundant = [];
      lf = Hashtbl.create 16;
      ef = Hashtbl.create 16;
      changed = true;
    }
  in
  (* per-function (L, E) summary fixpoint; sets only grow and are bounded
     by the program's sid set, so this terminates (recursion included) *)
  while ctx.changed do
    ctx.changed <- false;
    List.iter
      (fun (fn : Ast.func) ->
        let l, e = block_le ctx ~encl:Affine.IntSet.empty fn.body in
        let old_l = get ctx.lf fn.fname and old_e = get ctx.ef fn.fname in
        if not (IntSet.subset l old_l) then begin
          Hashtbl.replace ctx.lf fn.fname (IntSet.union l old_l);
          ctx.changed <- true
        end;
        if not (IntSet.subset e old_e) then begin
          Hashtbl.replace ctx.ef fn.fname (IntSet.union e old_e);
          ctx.changed <- true
        end)
      prog.funcs
  done;
  ctx.record <- true;
  List.iter
    (fun (fn : Ast.func) ->
      ignore (block_le ctx ~encl:Affine.IntSet.empty fn.body))
    prog.funcs;
  {
    pairs = ctx.prs;
    redundant_finishes = List.rev ctx.redundant;
    l_of_func = ctx.lf;
    e_of_func = ctx.ef;
  }

let mhp t a b = Hashtbl.mem t.pairs (if a <= b then (a, b) else (b, a))

let contexts t a b =
  Option.value ~default:[]
    (Hashtbl.find_opt t.pairs (if a <= b then (a, b) else (b, a)))

let pairs t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.pairs [] |> List.sort compare

let n_pairs t = Hashtbl.length t.pairs

let redundant_finishes t = t.redundant_finishes

let l_of_func t f = get t.l_of_func f

let e_of_func t f = get t.e_of_func f
