(** Findings produced by the static analysis layer (see finding.mli).

    A finding is deliberately independent of the [core] diagnostic type:
    [lib/static] sits below [lib/core] in the dependency order (the repair
    driver consults the static verifier), so the adapter lives in
    [Core.Diag.of_finding], not here. *)

type rule =
  | Static_race  (** a MHP statement pair with conflicting accesses *)
  | Redundant_finish  (** a finish whose body spawns no escaping async *)
  | Dead_async  (** an async whose body contains no statements *)
  | Finish_coarsen  (** adjacent finishes that could be coalesced *)
  | Provably_disjoint
      (** a parallel array pair discharged by the affine refinement *)

type severity = Warning | Info

type t = { rule : rule; severity : severity; loc : Mhj.Loc.t; msg : string }

let rule_name = function
  | Static_race -> "static-race"
  | Redundant_finish -> "redundant-finish"
  | Dead_async -> "dead-async"
  | Finish_coarsen -> "finish-coarsen"
  | Provably_disjoint -> "provably-disjoint"

let make ?(severity = Warning) ~rule ~loc msg = { rule; severity; loc; msg }

let pp_severity ppf = function
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let pp ppf f =
  if Mhj.Loc.is_dummy f.loc then
    Fmt.pf ppf "%a[%s]: %s" pp_severity f.severity (rule_name f.rule) f.msg
  else
    Fmt.pf ppf "%a[%s] at %a: %s" pp_severity f.severity (rule_name f.rule)
      Mhj.Loc.pp f.loc f.msg

let to_string f = Fmt.str "%a" pp f

(* Stable report order: by source position, then rule, then message. *)
let compare a b =
  compare
    (a.loc.Mhj.Loc.line, a.loc.Mhj.Loc.col, rule_name a.rule, a.msg)
    (b.loc.Mhj.Loc.line, b.loc.Mhj.Loc.col, rule_name b.rule, b.msg)
