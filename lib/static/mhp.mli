(** Interprocedural static may-happen-in-parallel analysis over normalized
    Mini-HJ ASTs.

    The analysis abstracts the S-DPST's Theorem-1 MHP relation to the
    statement level.  Each statement [s] gets two sid sets forming the
    analysis lattice (pointwise set inclusion, bounded by the program's
    statements):

    - [L(s)] — everything that may {e execute during} [s]: [s] itself,
      the bodies of called functions (transitively, via per-function
      summaries iterated to fixpoint — recursion is just a larger
      fixpoint), and all nested statements;
    - [E(s)] — everything that may {e escape} [s]: statements of async
      bodies spawned during [s] whose join ([finish]) is outside [s].
      [finish] resets E to the empty set; [async] escapes its whole body;
      a call escapes its callee's E-summary.

    MHP pairs are emitted where an escape meets later-or-concurrent work:
    for block statements [i < j], [E(s_i) × L(s_j)]; for loops,
    [E(body) × L(body)] (cross-iteration, including self-pairs); within a
    single statement, [E(calls) × L(s)].  The result over-approximates
    the dynamic relation: every pair of steps that may happen in parallel
    in some execution is covered by a pair of their statements (the
    differential property checked in [test/test_static.ml]). *)

module IntSet : Set.S with type elt = int

type t

(** [analyze prog summary] — [summary] supplies per-statement callee
    lists; [prog] must be normalized ({!Mhj.Front.compile}). *)
val analyze : Mhj.Ast.program -> Summary.t -> t

(** May the two statements (by sid; order irrelevant) happen in
    parallel?  [mhp t s s] is a self-pair: two dynamic instances of the
    same statement may overlap (e.g. an async body under a loop). *)
val mhp : t -> int -> int -> bool

(** All pairs, normalized as (min sid, max sid), sorted. *)
val pairs : t -> (int * int) list

val n_pairs : t -> int

(** Finish statements whose body cannot spawn an escaping async — the
    join is a no-op (lint: redundant-finish). *)
val redundant_finishes : t -> (int * Mhj.Loc.t) list

(** Converged per-function summaries (diagnostics/tests). *)
val l_of_func : t -> string -> IntSet.t

val e_of_func : t -> string -> IntSet.t
