(** Interprocedural static may-happen-in-parallel analysis over normalized
    Mini-HJ ASTs.

    The analysis abstracts the S-DPST's Theorem-1 MHP relation to the
    statement level.  Each statement [s] gets two sid sets forming the
    analysis lattice (pointwise set inclusion, bounded by the program's
    statements):

    - [L(s)] — everything that may {e execute during} [s]: [s] itself,
      the bodies of called functions (transitively, via per-function
      summaries iterated to fixpoint — recursion is just a larger
      fixpoint), and all nested statements;
    - [E(s)] — everything that may {e escape} [s]: statements of async
      bodies spawned during [s] whose join ([finish]) is outside [s].
      [finish] resets E to the empty set; [async] escapes its whole body;
      a call escapes its callee's E-summary.

    MHP pairs are emitted where an escape meets later-or-concurrent work:
    for block statements [i < j], [E(s_i) × L(s_j)]; for loops,
    [E(body) × L(body)] (cross-iteration, including self-pairs); within a
    single statement, [E(calls) × L(s)].  The result over-approximates
    the dynamic relation: every pair of steps that may happen in parallel
    in some execution is covered by a pair of their statements (the
    differential property checked in [test/test_static.ml]).

    {b Contexts.}  Each emission additionally records the structural meet
    point it covers as an {!Affine.ctx}: any dynamic overlap of the two
    statements routes through the lowest common structure containing both
    instances (a block, an If/expression statement, or a loop
    re-iteration), and the emission at that meet point is tagged with the
    [For] counters its two sides necessarily share ([shared] — the loops
    enclosing the meet point, since both instances live inside one
    iteration of each) plus, for the loop-rule emission, the loop whose
    distinct iterations separate them ([loop = Some l]).  The
    index-sensitive refinement ({!Racecheck}) may discharge a pair only
    by disproving a collision under {e every} recorded context. *)

module IntSet : Set.S with type elt = int

type t

(** [analyze prog summary] — [summary] supplies per-statement callee
    lists; [prog] must be normalized ({!Mhj.Front.compile}). *)
val analyze : Mhj.Ast.program -> Summary.t -> t

(** May the two statements (by sid; order irrelevant) happen in
    parallel?  [mhp t s s] is a self-pair: two dynamic instances of the
    same statement may overlap (e.g. an async body under a loop). *)
val mhp : t -> int -> int -> bool

(** All pairs, normalized as (min sid, max sid), sorted. *)
val pairs : t -> (int * int) list

(** The structural emission contexts recorded for a pair (empty for
    non-pairs).  Deduplicated, in no particular order. *)
val contexts : t -> int -> int -> Affine.ctx list

val n_pairs : t -> int

(** Finish statements whose body cannot spawn an escaping async — the
    join is a no-op (lint: redundant-finish). *)
val redundant_finishes : t -> (int * Mhj.Loc.t) list

(** Converged per-function summaries (diagnostics/tests). *)
val l_of_func : t -> string -> IntSet.t

val e_of_func : t -> string -> IntSet.t
