(** Flow-insensitive alias and may-access summaries for Mini-HJ.

    {b Model.}  Mini-HJ's only shared mutable state is globals and array
    cells ({!Rt.Addr}).  Abstract memory regions mirror that:
    [RGlobal g] is the global binding [g] itself, and [RCell s] stands for
    {e any} cell of {e any} array allocated at site [s] (a [NewArr]
    occurrence, or one per dimension group of a multi-dimensional
    allocation).  An Andersen-style, flow- and context-insensitive
    points-to fixpoint propagates allocation sites through locals,
    globals, parameters, returns and array cells; per statement, a final
    recording pass intersects the converged solution with the statement's
    own expressions to produce may-read / may-write region sets, plus the
    list of user functions it calls.

    {b Soundness.}  The points-to sets over-approximate every execution:
    any runtime array reachable by an expression was allocated at one of
    the expression's static sites, so two dynamic accesses to the same
    address always map to region sets that share a region (name identity
    for globals, a common allocation site for cells).  Accesses are
    attributed to the statement whose expression evaluation performs them
    — exactly the (block id, statement index) coordinates the interpreter
    reports to monitors — so [stmt_at] translates dynamic access positions
    to the statement ids summarized here. *)

type region =
  | RGlobal of string  (** the global binding itself *)
  | RCell of int  (** any cell of an array allocated at the given site *)

module RegionSet : Set.S with type elt = region

(** One occurrence of a may-access inside a statement's expressions,
    refined with the affine form of its subscript ({!Affine.Top} when
    non-affine or for globals).  The region sets below are exactly the
    projection of these occurrences — the refinement layer consults the
    occurrences, every coarse consumer the sets. *)
type access = {
  rw : [ `R | `W ];
  region : region;
  sub : Affine.form;
}

type t

val build : Mhj.Ast.program -> t

(** Regions the statement may read (its own expressions only; nested
    statements are summarized separately). *)
val reads : t -> int -> RegionSet.t

(** Regions the statement may write. *)
val writes : t -> int -> RegionSet.t

(** User functions called from the statement's own expressions. *)
val calls : t -> int -> string list

(** The statement's access occurrences with their subscript forms
    (deduplicated; no particular order). *)
val accesses : t -> int -> access list

(** Constant-folded [For] metadata for the whole program — counters are
    identified by the binding [For]'s sid, also the variables of every
    {!Affine.form} returned by {!accesses}. *)
val loops : t -> Affine.loops

(** Source location of a statement id ({!Mhj.Loc.dummy} if unknown). *)
val loc_of : t -> int -> Mhj.Loc.t

(** The statement id at a (block id, statement index) position — the
    coordinates the interpreter reports at each monitored access. *)
val stmt_at : t -> bid:int -> idx:int -> int option

(** Enumerate every known (block id, statement index) -> statement id
    mapping, in no particular order. *)
val iter_positions : t -> (bid:int -> idx:int -> sid:int -> unit) -> unit

val n_sites : t -> int

val n_stmts : t -> int

(** Render a region for reports, naming the allocation site's source
    location when known. *)
val pp_region : t -> region Fmt.t
