(** Static race reporting: the intersection of the {!Mhp} relation with
    the {!Summary} may-access sets.

    A {e conflict} is a statement pair that may happen in parallel and
    whose region sets collide with at least one write.  No conflicts ⇒
    the program is race-free for every input (both component analyses
    over-approximate); conflicts are "unproven pairs" — possible races or
    precision losses — reported as findings by the lint front end and as
    the residue of the repair driver's [--static-verify] pass. *)

module IntSet : Set.S with type elt = int

type conflict = {
  sid_a : int;
  sid_b : int;
  loc_a : Mhj.Loc.t;
  loc_b : Mhj.Loc.t;
  region : Summary.region;  (** one witness region of the collision *)
  kind : [ `Write_write | `Read_write ];
}

val conflicts : Summary.t -> Mhp.t -> conflict list

(** Statements participating in at least one conflict — the accesses the
    dynamic detector must keep monitoring. *)
val may_race_sids : conflict list -> IntSet.t

(** Render conflicts as source-located, deduplicated findings. *)
val to_findings : Summary.t -> conflict list -> Finding.t list

(** Analyze a (normalized) program from scratch: build the summaries, run
    the MHP analysis, intersect.  Empty conflicts ⇒ statically verified
    race-free for all inputs. *)
val check : Mhj.Ast.program -> Summary.t * Mhp.t * conflict list
