(** Static race reporting: the intersection of the {!Mhp} relation with
    the {!Summary} may-access sets, sharpened by the index-sensitive
    affine refinement.

    A {e conflict} is a statement pair that may happen in parallel and
    whose region sets collide with at least one write.  No conflicts ⇒
    the program is race-free for every input (both component analyses
    over-approximate); conflicts are "unproven pairs" — possible races or
    precision losses — reported as findings by the lint front end and as
    the residue of the repair driver's [--static-verify] pass.

    {b Refinement} (on by default): an array-cell conflict is dropped
    only when, for {e every} MHP emission context of the pair and every
    write-involving pair of its subscripted occurrences on every
    colliding region, {!Affine.disjoint} proves the two indices unequal.
    The refinement is strictly one-sided — it can only remove conflicts
    carrying a proof — so the coarse layer's soundness property (every
    dynamic race is covered by a surviving conflict) is preserved by
    construction; [test/test_static.ml] re-verifies it differentially
    against the reference detector. *)

module IntSet : Set.S with type elt = int

type conflict = {
  sid_a : int;
  sid_b : int;
  loc_a : Mhj.Loc.t;
  loc_b : Mhj.Loc.t;
  region : Summary.region;  (** one witness region of the collision *)
  kind : [ `Write_write | `Read_write ];
  reason : Affine.reason option;
      (** why refinement kept the pair ([lint --explain]); [None] when
          refinement was off *)
}

(** A pair whose every colliding region was proven disjoint — reported
    by lint as a [provably-disjoint] note. *)
type discharged = {
  d_sid_a : int;
  d_sid_b : int;
  d_loc_a : Mhj.Loc.t;
  d_loc_b : Mhj.Loc.t;
  d_region : Summary.region;
}

(** [refine] defaults to [true]; [~refine:false] reproduces the coarse
    PR 2 behaviour (used for ablation and differential testing). *)
val conflicts : ?refine:bool -> Summary.t -> Mhp.t -> conflict list

(** Like {!conflicts}, also returning the fully discharged pairs. *)
val conflicts_full :
  ?refine:bool -> Summary.t -> Mhp.t -> conflict list * discharged list

(** Statements participating in at least one conflict — the accesses the
    dynamic detector must keep monitoring. *)
val may_race_sids : conflict list -> IntSet.t

(** Render conflicts as source-located, deduplicated findings; with
    [~explain:true] each message carries the refinement-failure reason. *)
val to_findings : ?explain:bool -> Summary.t -> conflict list -> Finding.t list

(** Render discharged pairs as [provably-disjoint] info notes. *)
val note_findings : Summary.t -> discharged list -> Finding.t list

(** Analyze a (normalized) program from scratch: build the summaries, run
    the MHP analysis, intersect, refine.  Empty conflicts ⇒ statically
    verified race-free for all inputs. *)
val check :
  ?refine:bool -> Mhj.Ast.program -> Summary.t * Mhp.t * conflict list

(** {!check} with refinement on, also returning the discharged pairs. *)
val check_full :
  Mhj.Ast.program -> Summary.t * Mhp.t * conflict list * discharged list
