(** Affine subscript forms and sound disjointness tests (see affine.mli
    for the lattice, the context model and the soundness contract). *)

module IntSet = Set.Make (Int)

type form = Bot | Aff of (int * int) list * int | Top

let const k = Aff ([], k)

let var sid = Aff ([ (sid, 1) ], 0)

(* Merge two sorted term lists, summing coefficients and dropping zeros —
   keeps the [Aff] normal form so (=) decides semantic equality. *)
let rec merge_terms ta tb =
  match (ta, tb) with
  | [], t | t, [] -> t
  | (va, ca) :: ra, (vb, _) :: _ when va < vb -> (va, ca) :: merge_terms ra tb
  | (va, _) :: _, (vb, cb) :: rb when vb < va -> (vb, cb) :: merge_terms ta rb
  | (v, ca) :: ra, (_, cb) :: rb ->
      let c = ca + cb in
      if c = 0 then merge_terms ra rb else (v, c) :: merge_terms ra rb

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | Aff (ta, ka), Aff (tb, kb) -> Aff (merge_terms ta tb, ka + kb)

let neg = function
  | Bot -> Bot
  | Top -> Top
  | Aff (ts, k) -> Aff (List.map (fun (v, c) -> (v, -c)) ts, -k)

let sub a b = add a (neg b)

let mul_const k = function
  | Bot -> Bot
  | _ when k = 0 -> const 0
  | Top -> Top
  | Aff (ts, k0) -> Aff (List.map (fun (v, c) -> (v, c * k)) ts, k0 * k)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Aff ([], k), f | f, Aff ([], k) -> mul_const k f
  | _ -> Top

let equal (a : form) (b : form) = a = b

let join a b =
  match (a, b) with
  | Bot, f | f, Bot -> f
  | Top, _ | _, Top -> Top
  | _ -> if equal a b then a else Top

type bounds = {
  counter : string;
  lo : int option;
  hi : int option;
  step : int option;
  floc : Mhj.Loc.t;
}

type loops = (int, bounds) Hashtbl.t

type ctx = { loop : int option; shared : IntSet.t }

let ctx_equal a b = a.loop = b.loop && IntSet.equal a.shared b.shared

type reason = Global of string | Non_affine | Unknown_bounds | May_overlap

let describe = function
  | Global g ->
      Fmt.str
        "the collision is on global '%s'; index refinement applies to \
         array cells only"
        g
  | Non_affine ->
      "a subscript is not an affine function of enclosing loop counters"
  | Unknown_bounds ->
      "the subscripts are affine but a loop bound or step is not a \
       compile-time constant"
  | May_overlap -> "the affine subscripts can evaluate to the same index"

(* ------------------------------------------------------------------ *)
(* Per-loop value facts                                                *)
(* ------------------------------------------------------------------ *)

(* Counter values of one loop execution lie in [min lo hi, max lo hi]
   (inclusive bounds, either step sign); constant only when both bounds
   fold. *)
let range (loops : loops) v =
  match Hashtbl.find_opt loops v with
  | Some { lo = Some lo; hi = Some hi; _ } -> Some (min lo hi, max lo hi)
  | _ -> None

(* Counter values satisfy [v ≡ lo (mod |step|)] — valid across all
   executions only when both [lo] and [step] fold to constants. *)
let residue_info (loops : loops) v =
  match Hashtbl.find_opt loops v with
  | Some { lo = Some lo; step = Some s; _ } -> Some (abs s, lo)
  | _ -> None

let step_abs (loops : loops) v =
  match Hashtbl.find_opt loops v with
  | Some { step = Some s; _ } -> Some (abs s)
  | _ -> None

let span (loops : loops) v =
  match range loops v with Some (lo, hi) -> Some (hi - lo) | None -> None

(* ------------------------------------------------------------------ *)
(* The merged difference  g = f_a(instance 1) - f_b(instance 2)        *)
(* ------------------------------------------------------------------ *)

(* Counters shared between the two instances (the context's [shared]
   set) collapse to a single variable; every other counter is renamed
   apart — the two instances' values are treated as independent, which
   is the weakest (hence sound) assumption. *)
type mkey = Kshared of int | Ka of int | Kb of int

let sid_of_key = function Kshared v | Ka v | Kb v -> v

let merge_diff ~shared (ta, ka) (tb, kb) =
  let tbl = Hashtbl.create 8 in
  let bump key c =
    let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (cur + c)
  in
  List.iter
    (fun (v, c) ->
      bump (if IntSet.mem v shared then Kshared v else Ka v) c)
    ta;
  List.iter
    (fun (v, c) ->
      bump (if IntSet.mem v shared then Kshared v else Kb v) (-c))
    tb;
  let terms =
    Hashtbl.fold (fun k c acc -> if c = 0 then acc else (k, c) :: acc) tbl []
  in
  (terms, ka - kb)

(* Interval of the merged difference from constant loop bounds; [None]
   when any variable lacks them. *)
let interval loops terms k =
  try
    Some
      (List.fold_left
         (fun (lo, hi) (key, c) ->
           match range loops (sid_of_key key) with
           | Some (vl, vh) ->
               if c > 0 then (lo + (c * vl), hi + (c * vh))
               else (lo + (c * vh), hi + (c * vl))
           | None -> raise Exit)
         (k, k) terms)
  with Exit -> None

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Residue lattice of the merged difference: all its values lie in
   [r + g·Z] ([g = 0] means exactly [r]).  Needs a constant [lo] and
   [step] for every variable. *)
let residue loops terms k =
  try
    Some
      (List.fold_left
         (fun (g, r) (key, c) ->
           match residue_info loops (sid_of_key key) with
           | Some (s, lo) -> (gcd g (c * s), r + (c * lo))
           | None -> raise Exit)
         (0, k) terms)
  with Exit -> None

(* ------------------------------------------------------------------ *)
(* Disjointness                                                        *)
(* ------------------------------------------------------------------ *)

let coeff v = function
  | Aff (ts, _) -> Option.value ~default:0 (List.assoc_opt v ts)
  | _ -> 0

let drop v = function
  | Aff (ts, k) -> (List.remove_assoc v ts, k)
  | _ -> ([], 0)

(* Prove the merged difference never equals zero: interval exclusion,
   then GCD residue.  [Unknown_bounds] when a test could not run for
   lack of constant bounds. *)
let nonzero loops (terms, k) =
  if terms = [] then if k <> 0 then Ok () else Error May_overlap
  else
    let itv = interval loops terms k in
    match itv with
    | Some (lo, hi) when lo > 0 || hi < 0 -> Ok ()
    | _ -> (
        match residue loops terms k with
        | Some (g, r) when g <> 0 && r mod g <> 0 -> Ok ()
        | rz ->
            if itv = None || rz = None then Error Unknown_bounds
            else Error May_overlap)

(* Cross-iteration test for context loop [l] when both subscripts carry
   the same non-zero coefficient [c] on it: the instances' counter
   values differ by δ, a non-zero multiple of the step with |δ| ≤ span,
   and collision requires  c·δ + h = 0  where [h] is the merged
   difference of the remaining terms. *)
let delta_test loops ~shared ~l ~c fa fb =
  let h_terms, h_k = merge_diff ~shared (drop l fa) (drop l fb) in
  let s = step_abs loops l and sp = span loops l in
  let no_two_iterations =
    match (sp, s) with
    | Some sp, Some s -> sp < s
    | Some sp, None -> sp < 1
    | None, _ -> false
  in
  if no_two_iterations then Ok ()
  else if h_terms = [] then
    (* exact: a solution is δ = -h/c, constrained by stride and span *)
    let k = h_k in
    if k = 0 then Ok ()
    else if k mod c <> 0 then Ok ()
    else
      let d = -k / c in
      let stride_rules_out =
        match s with Some s -> d mod s <> 0 | None -> false
      and span_rules_out =
        match sp with Some sp -> abs d > sp | None -> false
      in
      if stride_rules_out || span_rules_out then Ok ()
      else if s = None || sp = None then Error Unknown_bounds
      else Error May_overlap
  else
    let s' = Option.value ~default:1 s in
    let min_gap = abs c * s' in
    let itv = interval loops h_terms h_k in
    let near =
      (* |h| < |c·δ|'s minimum for every value of h *)
      match itv with
      | Some (lo, hi) -> lo > -min_gap && hi < min_gap
      | None -> false
    and far =
      (* every value of h is beyond the largest reachable |c·δ| *)
      match (sp, itv) with
      | Some sp, Some (lo, hi) ->
          let reach = abs c * sp in
          lo > reach || hi < -reach
      | _ -> false
    in
    if near || far then Ok ()
    else
      let rz = residue loops h_terms h_k in
      let residue_rules_out =
        (* c·δ ranges over (|c|·step)·Z; h over r + g·Z: they can cancel
           only when gcd(g, |c|·step) divides r *)
        match rz with
        | Some (g, r) ->
            let gg = gcd g min_gap in
            gg <> 0 && r mod gg <> 0
        | None -> false
      in
      if residue_rules_out then Ok ()
      else if itv = None || rz = None || s = None || sp = None then
        Error Unknown_bounds
      else Error May_overlap

let disjoint loops (ctx : ctx) fa fb =
  match (fa, fb) with
  | (Bot | Top), _ | _, (Bot | Top) -> Error Non_affine
  | Aff _, Aff _ -> (
      match ctx.loop with
      | Some l when coeff l fa = coeff l fb && coeff l fa <> 0 ->
          delta_test loops ~shared:ctx.shared ~l ~c:(coeff l fa) fa fb
      | _ ->
          (* no usable iteration structure: rename the context loop's
             instances apart like any other non-shared counter *)
          nonzero loops
            (merge_diff ~shared:ctx.shared
               (match fa with Aff (t, k) -> (t, k) | _ -> ([], 0))
               (match fb with Aff (t, k) -> (t, k) | _ -> ([], 0))))

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let counter_name (loops : loops) v =
  match Hashtbl.find_opt loops v with
  | Some b -> b.counter
  | None -> Fmt.str "v%d" v

let pp_form loops ppf = function
  | Bot | Top -> Fmt.string ppf "?"
  | Aff ([], k) -> Fmt.int ppf k
  | Aff (ts, k) ->
      let piece (v, c) =
        let n = counter_name loops v in
        if c = 1 then n
        else if c = -1 then "-" ^ n
        else Fmt.str "%d*%s" c n
      in
      let pieces =
        List.map piece ts @ (if k = 0 then [] else [ string_of_int k ])
      in
      List.iteri
        (fun i p ->
          if i = 0 then Fmt.string ppf p
          else if String.length p > 0 && p.[0] = '-' then
            Fmt.pf ppf " - %s" (String.sub p 1 (String.length p - 1))
          else Fmt.pf ppf " + %s" p)
        pieces
