(** Static race reporting: intersect the MHP relation with the may-access
    summaries, sharpened by the affine subscript refinement (see
    racecheck.mli). *)

open Mhj
module IntSet = Set.Make (Int)
module RS = Summary.RegionSet

type conflict = {
  sid_a : int;
  sid_b : int;
  loc_a : Loc.t;
  loc_b : Loc.t;
  region : Summary.region;
  kind : [ `Write_write | `Read_write ];
  reason : Affine.reason option;
      (** why refinement kept the pair; [None] when refinement was off *)
}

type discharged = {
  d_sid_a : int;
  d_sid_b : int;
  d_loc_a : Loc.t;
  d_loc_b : Loc.t;
  d_region : Summary.region;
}

(* Refinement verdict for one colliding region of one pair: [None] when
   every write-involving occurrence pair is provably disjoint under every
   recorded context, otherwise the first failure reason.  Strictly
   one-sided: a missing proof keeps the conflict. *)
let region_verdict loops ctxs occs_a occs_b region : Affine.reason option =
  match region with
  | Summary.RGlobal g -> Some (Affine.Global g)
  | Summary.RCell _ ->
      if ctxs = [] then (* no recorded route: keep, defensively *)
        Some Affine.Non_affine
      else begin
        let on = List.filter (fun (x : Summary.access) -> x.region = region) in
        let oa = on occs_a and ob = on occs_b in
        let fail = ref None in
        List.iter
          (fun (x : Summary.access) ->
            List.iter
              (fun (y : Summary.access) ->
                if (x.rw = `W || y.rw = `W) && !fail = None then
                  List.iter
                    (fun c ->
                      if !fail = None then
                        match Affine.disjoint loops c x.sub y.sub with
                        | Ok () -> ()
                        | Error r -> fail := Some r)
                    ctxs)
              ob)
          oa;
        !fail
      end

let conflicts_full ?(refine = true) (summary : Summary.t) (mhp : Mhp.t) :
    conflict list * discharged list =
  let loops = Summary.loops summary in
  let kept = ref [] and notes = ref [] in
  List.iter
    (fun (a, b) ->
      let mk region kind reason =
        kept :=
          {
            sid_a = a;
            sid_b = b;
            loc_a = Summary.loc_of summary a;
            loc_b = Summary.loc_of summary b;
            region;
            kind;
            reason;
          }
          :: !kept
      in
      let wa = Summary.writes summary a and wb = Summary.writes summary b in
      let ra = Summary.reads summary a and rb = Summary.reads summary b in
      let ww = RS.inter wa wb in
      let rw = RS.union (RS.inter wa rb) (RS.inter wb ra) in
      if RS.is_empty ww && RS.is_empty rw then ()
      else if not refine then
        if not (RS.is_empty ww) then mk (RS.min_elt ww) `Write_write None
        else mk (RS.min_elt rw) `Read_write None
      else begin
        let ctxs = Mhp.contexts mhp a b in
        let oa = Summary.accesses summary a
        and ob = Summary.accesses summary b in
        let first_kept regs =
          (* ascending region order, matching the coarse witness choice *)
          List.fold_left
            (fun acc r ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match region_verdict loops ctxs oa ob r with
                  | Some reason -> Some (r, reason)
                  | None -> None))
            None (RS.elements regs)
        in
        match first_kept ww with
        | Some (r, reason) -> mk r `Write_write (Some reason)
        | None -> (
            match first_kept rw with
            | Some (r, reason) -> mk r `Read_write (Some reason)
            | None ->
                (* every colliding region proven disjoint *)
                let witness =
                  if not (RS.is_empty ww) then RS.min_elt ww
                  else RS.min_elt rw
                in
                notes :=
                  {
                    d_sid_a = a;
                    d_sid_b = b;
                    d_loc_a = Summary.loc_of summary a;
                    d_loc_b = Summary.loc_of summary b;
                    d_region = witness;
                  }
                  :: !notes)
      end)
    (Mhp.pairs mhp);
  (List.rev !kept, List.rev !notes)

let conflicts ?refine (summary : Summary.t) (mhp : Mhp.t) : conflict list =
  fst (conflicts_full ?refine summary mhp)

(** Statements participating in at least one conflict — the accesses the
    dynamic detector must keep monitoring. *)
let may_race_sids (cs : conflict list) : IntSet.t =
  List.fold_left
    (fun s c -> IntSet.add c.sid_a (IntSet.add c.sid_b s))
    IntSet.empty cs

let pp_other ppf (sid_a, sid_b, loc_b) =
  if sid_a = sid_b then Fmt.string ppf "another instance of itself"
  else if Loc.is_dummy loc_b then Fmt.pf ppf "statement #%d" sid_b
  else Fmt.pf ppf "the statement at %a" Loc.pp loc_b

let to_findings ?(explain = false) (summary : Summary.t)
    (cs : conflict list) : Finding.t list =
  List.map
    (fun c ->
      let kind =
        match c.kind with
        | `Write_write -> "write/write"
        | `Read_write -> "read/write"
      in
      let pp_why ppf c =
        match c.reason with
        | Some r when explain ->
            Fmt.pf ppf " [unrefined: %s]" (Affine.describe r)
        | _ -> ()
      in
      Finding.make ~rule:Finding.Static_race ~loc:c.loc_a
        (Fmt.str "possible %s race on %a: may happen in parallel with %a%a"
           kind
           (Summary.pp_region summary)
           c.region pp_other
           (c.sid_a, c.sid_b, c.loc_b)
           pp_why c))
    cs
  |> List.sort_uniq Finding.compare

let note_findings (summary : Summary.t) (ds : discharged list) :
    Finding.t list =
  List.map
    (fun d ->
      Finding.make ~severity:Finding.Info ~rule:Finding.Provably_disjoint
        ~loc:d.d_loc_a
        (Fmt.str
           "provably disjoint: the parallel accesses to %a here and by %a \
            use affine indices that never collide"
           (Summary.pp_region summary)
           d.d_region pp_other
           (d.d_sid_a, d.d_sid_b, d.d_loc_b)))
    ds
  |> List.sort_uniq Finding.compare

(** One-call static verifier: analyze [prog] from scratch and report the
    unproven pairs.  An empty result means the program is race-free for
    {e every} input (the analysis over-approximates all executions). *)
let check ?refine (prog : Ast.program) : Summary.t * Mhp.t * conflict list =
  let summary = Summary.build prog in
  let mhp = Mhp.analyze prog summary in
  (summary, mhp, conflicts ?refine summary mhp)

let check_full (prog : Ast.program) :
    Summary.t * Mhp.t * conflict list * discharged list =
  let summary = Summary.build prog in
  let mhp = Mhp.analyze prog summary in
  let cs, ds = conflicts_full summary mhp in
  (summary, mhp, cs, ds)
