(** Static race reporting: intersect the MHP relation with the may-access
    summaries (see racecheck.mli). *)

open Mhj
module IntSet = Set.Make (Int)
module RS = Summary.RegionSet

type conflict = {
  sid_a : int;
  sid_b : int;
  loc_a : Loc.t;
  loc_b : Loc.t;
  region : Summary.region;
  kind : [ `Write_write | `Read_write ];
}

let conflicts (summary : Summary.t) (mhp : Mhp.t) : conflict list =
  List.filter_map
    (fun (a, b) ->
      let mk region kind =
        Some
          {
            sid_a = a;
            sid_b = b;
            loc_a = Summary.loc_of summary a;
            loc_b = Summary.loc_of summary b;
            region;
            kind;
          }
      in
      let wa = Summary.writes summary a and wb = Summary.writes summary b in
      let ww = RS.inter wa wb in
      if not (RS.is_empty ww) then mk (RS.min_elt ww) `Write_write
      else
        let ra = Summary.reads summary a and rb = Summary.reads summary b in
        let rw = RS.union (RS.inter wa rb) (RS.inter wb ra) in
        if not (RS.is_empty rw) then mk (RS.min_elt rw) `Read_write
        else None)
    (Mhp.pairs mhp)

(** Statements participating in at least one conflict — the accesses the
    dynamic detector must keep monitoring. *)
let may_race_sids (cs : conflict list) : IntSet.t =
  List.fold_left
    (fun s c -> IntSet.add c.sid_a (IntSet.add c.sid_b s))
    IntSet.empty cs

let to_findings (summary : Summary.t) (cs : conflict list) : Finding.t list =
  List.map
    (fun c ->
      let kind =
        match c.kind with
        | `Write_write -> "write/write"
        | `Read_write -> "read/write"
      in
      let pp_other ppf (c : conflict) =
        if c.sid_a = c.sid_b then Fmt.string ppf "another instance of itself"
        else if Loc.is_dummy c.loc_b then
          Fmt.pf ppf "statement #%d" c.sid_b
        else Fmt.pf ppf "the statement at %a" Loc.pp c.loc_b
      in
      Finding.make ~rule:Finding.Static_race ~loc:c.loc_a
        (Fmt.str "possible %s race on %a: may happen in parallel with %a"
           kind
           (Summary.pp_region summary)
           c.region pp_other c))
    cs
  |> List.sort_uniq Finding.compare

(** One-call static verifier: analyze [prog] from scratch and report the
    unproven pairs.  An empty result means the program is race-free for
    {e every} input (the analysis over-approximates all executions). *)
let check (prog : Ast.program) : Summary.t * Mhp.t * conflict list =
  let summary = Summary.build prog in
  let mhp = Mhp.analyze prog summary in
  (summary, mhp, conflicts summary mhp)
