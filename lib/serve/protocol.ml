(* See protocol.mli. *)

module J = Obs.Json
module FI = Repair.Faultinject

type op = Detect | Repair | Lint

let op_to_string = function
  | Detect -> "detect"
  | Repair -> "repair"
  | Lint -> "lint"

type flags = {
  mode : Espbags.Detector.mode;
  backend : [ `Espbags | `Vclock | `Auto ];
  static_prune : bool;
  static_verify : bool;
  budgets : Repair.Guard.budgets;
  timeout_ms : int option;
  retries : int option;
  sets : (string * int) list;
  faults : FI.fault list;
  trace : bool;
  shadow_chunk : int option;
  spill : string option;
  strategy : Repair.Strategy.choice;
}

let default_flags =
  {
    mode = Espbags.Detector.Mrw;
    backend = `Espbags;
    static_prune = false;
    static_verify = false;
    budgets = Repair.Guard.unlimited;
    timeout_ms = None;
    retries = None;
    sets = [];
    faults = [];
    trace = false;
    shadow_chunk = None;
    spill = None;
    strategy = `Finish;
  }

type job_spec = { id : string; op : op; src : string; flags : flags }

type request =
  | Job of job_spec
  | Health
  | Cancel of string
  | Shutdown

type proto_error =
  | Malformed of string
  | Oversized of int
  | Bad_request of string

exception Bad of string

let bad fmt = Fmt.kstr (fun m -> raise (Bad m)) fmt

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let as_string what = function
  | J.Str s -> s
  | _ -> bad "%s must be a string" what

let as_int what = function J.Int n -> n | _ -> bad "%s must be an integer" what

let as_bool what = function
  | J.Bool b -> b
  | _ -> bad "%s must be a boolean" what

(* Fault specs are compact strings: "worker_crash", "interp_trap:50",
   "slow_stage:100", "detector_abort", "dp_timeout", "place_unsat",
   "insert_fail". *)
let fault_of_string s =
  let name, arg =
    match String.index_opt s ':' with
    | Some i ->
        ( String.sub s 0 i,
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, None)
  in
  match (name, arg) with
  | "interp_trap", Some k -> FI.Interp_trap k
  | "slow_stage", Some ms -> FI.Slow_stage ms
  | "detector_abort", None -> FI.Detector_abort
  | "dp_timeout", None -> FI.Dp_timeout
  | "place_unsat", None -> FI.Place_unsat
  | "insert_fail", None -> FI.Insert_fail
  | "worker_crash", None -> FI.Worker_crash
  | _ -> bad "unknown fault spec %S" s

let fault_to_string = function
  | FI.Interp_trap k -> Printf.sprintf "interp_trap:%d" k
  | FI.Slow_stage ms -> Printf.sprintf "slow_stage:%d" ms
  | FI.Detector_abort -> "detector_abort"
  | FI.Dp_timeout -> "dp_timeout"
  | FI.Place_unsat -> "place_unsat"
  | FI.Insert_fail -> "insert_fail"
  | FI.Worker_crash -> "worker_crash"

let parse_flags j =
  let get k = J.member k j in
  let opt_int k = Option.map (as_int k) (get k) in
  let opt_bool ~default k =
    match get k with Some v -> as_bool k v | None -> default
  in
  let mode =
    match get "mode" with
    | None -> default_flags.mode
    | Some (J.Str "mrw") -> Espbags.Detector.Mrw
    | Some (J.Str "srw") -> Espbags.Detector.Srw
    | Some _ -> bad "flags.mode must be \"mrw\" or \"srw\""
  in
  let backend =
    match get "backend" with
    | None -> default_flags.backend
    | Some (J.Str "espbags") -> `Espbags
    | Some (J.Str "vclock") -> `Vclock
    | Some (J.Str "auto") -> `Auto
    | Some _ -> bad "flags.backend must be \"espbags\", \"vclock\" or \"auto\""
  in
  let strategy =
    match get "strategy" with
    | None -> default_flags.strategy
    | Some (J.Str s) -> (
        match Repair.Strategy.choice_of_string s with
        | Some c -> c
        | None ->
            bad
              "flags.strategy must be \"finish\", \"isolated\", \"elide\", \
               \"chunk\" or \"tournament\"")
    | Some _ -> bad "flags.strategy must be a string"
  in
  let spill =
    match get "spill" with
    | None -> None
    | Some v -> Some (as_string "spill" v)
  in
  let sets =
    match get "set" with
    | None -> []
    | Some (J.Obj kvs) ->
        List.map (fun (k, v) -> (k, as_int ("set." ^ k) v)) kvs
    | Some _ -> bad "flags.set must be an object of int overrides"
  in
  let faults =
    match get "faults" with
    | None -> []
    | Some (J.List fs) ->
        List.map (fun f -> fault_of_string (as_string "fault" f)) fs
    | Some _ -> bad "flags.faults must be a list of fault specs"
  in
  {
    mode;
    backend;
    static_prune = opt_bool ~default:false "static_prune";
    static_verify = opt_bool ~default:false "static_verify";
    budgets =
      {
        Repair.Guard.fuel = opt_int "budget_fuel";
        sdpst_nodes = opt_int "budget_sdpst";
        dp_work = opt_int "budget_dp";
      };
    timeout_ms = opt_int "timeout_ms";
    retries = opt_int "retries";
    sets;
    faults;
    trace = opt_bool ~default:false "trace";
    shadow_chunk = opt_int "shadow_chunk";
    spill;
    strategy;
  }

let parse_obj j =
  let member k = J.member k j in
  let require k =
    match member k with Some v -> v | None -> bad "missing %S field" k
  in
  let id_of v =
    match v with
    | J.Str s -> s
    | J.Int n -> string_of_int n
    | _ -> bad "\"id\" must be a string or integer"
  in
  match require "op" with
  | J.Str "health" -> Health
  | J.Str "shutdown" -> Shutdown
  | J.Str "cancel" -> Cancel (id_of (require "id"))
  | J.Str ("detect" | "repair" | "lint" as opname) ->
      let op =
        match opname with
        | "detect" -> Detect
        | "repair" -> Repair
        | _ -> Lint
      in
      let id = id_of (require "id") in
      let src = as_string "src" (require "src") in
      let flags =
        match member "flags" with
        | None -> default_flags
        | Some (J.Obj _ as f) -> parse_flags f
        | Some _ -> bad "\"flags\" must be an object"
      in
      Job { id; op; src; flags }
  | J.Str other -> bad "unknown op %S" other
  | _ -> bad "\"op\" must be a string"

let parse line =
  match J.of_string line with
  | exception J.Parse_error m -> Error (Malformed m)
  | J.Obj _ as j -> (
      try Ok (parse_obj j) with Bad m -> Error (Bad_request m))
  | _ -> Error (Malformed "frame is not a JSON object")

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

type status = Sok | Sdegraded | Sfailed | Soverloaded | Scancelled

let status_to_string = function
  | Sok -> "ok"
  | Sdegraded -> "degraded"
  | Sfailed -> "failed"
  | Soverloaded -> "overloaded"
  | Scancelled -> "cancelled"

let job_reply ~id ~status ?attempts ?cached ?report ?error ?spans () =
  let base =
    [ ("id", J.Str id); ("status", J.Str (status_to_string status)) ]
  in
  let opt k v f = match v with None -> [] | Some x -> [ (k, f x) ] in
  J.Obj
    (base
    @ opt "attempts" attempts (fun n -> J.Int n)
    @ opt "cached" cached (fun b -> J.Bool b)
    @ opt "report" report Fun.id
    @ opt "error" error (fun e -> J.Str e)
    @ opt "spans" spans (fun ss -> J.List (List.map (fun s -> J.Str s) ss)))

let error_reply = function
  | Malformed m ->
      J.Obj [ ("error", J.Str "malformed-frame"); ("detail", J.Str m) ]
  | Oversized limit ->
      J.Obj [ ("error", J.Str "oversized-frame"); ("limit", J.Int limit) ]
  | Bad_request m ->
      J.Obj [ ("error", J.Str "bad-request"); ("detail", J.Str m) ]

let frame j = J.to_string j ^ "\n"

(* ------------------------------------------------------------------ *)
(* Cache keying                                                        *)
(* ------------------------------------------------------------------ *)

let cache_key (spec : job_spec) =
  let f = spec.flags in
  let b = f.budgets in
  let ios = function None -> "_" | Some n -> string_of_int n in
  (* Every flag that can change a job's observable result participates
     here; forgetting one silently serves stale replies across flag
     changes (the test suite pins each field's sensitivity). *)
  let sig_ =
    String.concat ";"
      [
        op_to_string spec.op;
        (match f.mode with Espbags.Detector.Mrw -> "mrw" | Srw -> "srw");
        (match f.backend with
        | `Espbags -> "espbags"
        | `Vclock -> "vclock"
        | `Auto -> "auto");
        Fmt.str "%a" Repair.Strategy.pp_choice f.strategy;
        string_of_bool f.static_prune;
        string_of_bool f.static_verify;
        ios b.Repair.Guard.fuel;
        ios b.Repair.Guard.sdpst_nodes;
        ios b.Repair.Guard.dp_work;
        ios f.shadow_chunk;
        (match f.spill with None -> "_" | Some p -> p);
        String.concat ","
          (List.map
             (fun (k, v) -> k ^ "=" ^ string_of_int v)
             (List.sort compare f.sets));
      ]
  in
  Digest.to_hex (Digest.string (sig_ ^ "\x00" ^ spec.src))
