(* See client.mli. *)

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  (* bytes [0, scan) of [buf] are known newline-free, so each incoming
     chunk is scanned once — a reply line is read in linear time even
     when it is tens of MB (a detect report lists every race) *)
  mutable scan : int;
  mutable eof : bool;
}

let of_fd fd = { fd; buf = Buffer.create 256; scan = 0; eof = false }

let connect path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX path);
  of_fd fd

let send t line =
  let s = line ^ "\n" in
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring t.fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let send_json t j = send t (Obs.Json.to_string j)

let find_newline buf ~from =
  let len = Buffer.length buf in
  let i = ref from in
  while !i < len && Buffer.nth buf !i <> '\n' do incr i done;
  if !i < len then Some !i else None

let rec recv t =
  match find_newline t.buf ~from:t.scan with
  | Some i ->
      let line = Buffer.sub t.buf 0 i in
      let rest = Buffer.sub t.buf (i + 1) (Buffer.length t.buf - i - 1) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.scan <- 0;
      Some line
  | None ->
      t.scan <- Buffer.length t.buf;
      if t.eof then None
      else begin
        let bytes = Bytes.create 65536 in
        (match Unix.read t.fd bytes 0 65536 with
        | 0 -> t.eof <- true
        | n -> Buffer.add_subbytes t.buf bytes 0 n
        | exception Unix.Unix_error (EINTR, _, _) -> ());
        recv t
      end

let request t line =
  send t line;
  recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
