(** Bounded multi-producer/multi-consumer job queue (mutex +
    condition), the daemon's admission-control point.

    The queue {e sheds load} instead of buffering without bound:
    {!try_push} refuses when the queue is full (the daemon replies
    [overloaded]).  {!force_push} bypasses the capacity check and
    enqueues at the {e front} — reserved for re-enqueueing a job that
    was already admitted and then lost to a worker crash, so an
    admitted job is never shed retroactively.

    {!pop} blocks until an element or {!close}; after [close], pops
    drain the remaining elements and then return [None] — the worker
    exit signal for graceful shutdown. *)

type 'a t

val create : capacity:int -> 'a t

(** [false] when the queue is full or closed (load shed). *)
val try_push : 'a t -> 'a -> bool

(** Enqueue at the front, ignoring capacity (crash re-enqueue path). *)
val force_push : 'a t -> 'a -> unit

(** Block for the next element; [None] once closed and drained. *)
val pop : 'a t -> 'a option

(** Remove and return the first queued element matching [pred]. *)
val remove : 'a t -> ('a -> bool) -> 'a option

val close : 'a t -> unit
val length : 'a t -> int
val capacity : 'a t -> int
