(* See daemon.mli. *)

module J = Obs.Json
module P = Protocol

type config = {
  socket : string;
  workers : int;
  queue_capacity : int;
  max_frame : int;
  cache_capacity : int;
  retries : int;
  backoff_ms : int;
  default_timeout_ms : int option;
  hard_watchdog_ms : int;
  verbose : bool;
}

let default_config ~socket =
  {
    socket;
    workers = 2;
    queue_capacity = 16;
    max_frame = 1 lsl 20;
    cache_capacity = 64;
    retries = 2;
    backoff_ms = 10;
    default_timeout_ms = None;
    hard_watchdog_ms = 5_000;
    verbose = false;
  }

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  (* bytes [0, scan) of [buf] hold no newline: each chunk is scanned
     once, keeping frame extraction linear in the frame size *)
  mutable scan : int;
  mutable alive : bool;
}

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable listening : bool;
  pipe_r : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  pending : (int, conn * string) Hashtbl.t;  (* seq -> reply route *)
  terminal : (int, unit) Hashtbl.t;  (* seqs already replied: exactly-once *)
  sup : Supervisor.t;
  metrics : Obs.Metrics.t;
  started_ns : int64;
  stop_flag : bool ref;
  mutable draining : bool;
}

let vlog st fmt =
  if st.cfg.verbose then Fmt.epr (fmt ^^ "@.")
  else Format.ikfprintf ignore Fmt.stderr fmt

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let close_conn st conn =
  if conn.alive then begin
    conn.alive <- false;
    Hashtbl.remove st.conns conn.fd;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let send_frame st conn json =
  if conn.alive then begin
    let s = P.frame json in
    let len = String.length s in
    let rec go off =
      if off < len then
        match Unix.write_substring conn.fd s off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error (EINTR, _, _) -> go off
        | exception Unix.Unix_error _ -> close_conn st conn
    in
    go 0
  end

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let health_reply st =
  let hits, misses =
    Option.value (Supervisor.cache_stats st.sup) ~default:(0, 0)
  in
  let uptime_ms =
    Int64.to_int
      (Int64.div (Int64.sub (Obs.Clock.now_ns ()) st.started_ns) 1_000_000L)
  in
  J.Obj
    [
      ("op", J.Str "health");
      ("status", J.Str (if st.draining then "draining" else "ok"));
      ("uptime_ms", J.Int uptime_ms);
      ("queue_depth", J.Int (Supervisor.queue_length st.sup));
      ("queue_capacity", J.Int (Supervisor.queue_capacity st.sup));
      ( "workers",
        J.List
          (List.map (fun s -> J.Str s) (Supervisor.worker_states st.sup)) );
      ("respawns", J.Int (Supervisor.respawns st.sup));
      ("crashes", J.Int (Supervisor.crashes st.sup));
      ("pending", J.Int (Hashtbl.length st.pending));
      ("cache_hits", J.Int hits);
      ("cache_misses", J.Int misses);
      ("metrics", Obs.Metrics.to_json st.metrics);
    ]

let begin_drain st =
  if not st.draining then begin
    st.draining <- true;
    if st.listening then begin
      st.listening <- false;
      (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink st.cfg.socket with Unix.Unix_error _ -> ()
    end;
    vlog st "draining: %d reply/replies outstanding" (Hashtbl.length st.pending)
  end

let handle_line st conn line =
  if String.trim line <> "" then
    match P.parse line with
    | Error e ->
        Obs.Metrics.incr st.metrics "serve.proto_errors";
        send_frame st conn (P.error_reply e)
    | Ok P.Health -> send_frame st conn (health_reply st)
    | Ok P.Shutdown ->
        send_frame st conn (J.Obj [ ("status", J.Str "draining") ]);
        begin_drain st
    | Ok (P.Cancel id) -> (
        match Supervisor.cancel st.sup id with
        | Some seq ->
            Hashtbl.replace st.terminal seq ();
            Hashtbl.remove st.pending seq;
            Obs.Metrics.incr st.metrics "serve.jobs_cancelled";
            send_frame st conn (P.job_reply ~id ~status:P.Scancelled ())
        | None ->
            send_frame st conn
              (P.error_reply
                 (P.Bad_request
                    (Fmt.str "no queued job with id %S (running jobs cannot \
                              be cancelled)" id))))
    | Ok (P.Job spec) ->
        if st.draining then
          send_frame st conn
            (P.job_reply ~id:spec.P.id ~status:P.Soverloaded
               ~error:"daemon is draining" ())
        else begin
          match Supervisor.submit st.sup spec with
          | `Overloaded ->
              Obs.Metrics.incr st.metrics "serve.jobs_shed";
              send_frame st conn
                (P.job_reply ~id:spec.P.id ~status:P.Soverloaded ())
          | `Accepted seq ->
              Obs.Metrics.incr st.metrics "serve.jobs_admitted";
              Hashtbl.replace st.pending seq (conn, spec.P.id)
        end

let oversized st conn =
  Obs.Metrics.incr st.metrics "serve.proto_errors";
  send_frame st conn (P.error_reply (P.Oversized st.cfg.max_frame));
  close_conn st conn

let find_newline buf ~from =
  let len = Buffer.length buf in
  let i = ref from in
  while !i < len && Buffer.nth buf !i <> '\n' do incr i done;
  if !i < len then Some !i else None

let process_buffer st conn =
  let rec go () =
    match find_newline conn.buf ~from:conn.scan with
    | Some i ->
        let line = Buffer.sub conn.buf 0 i in
        let rest = Buffer.sub conn.buf (i + 1) (Buffer.length conn.buf - i - 1) in
        Buffer.clear conn.buf;
        Buffer.add_string conn.buf rest;
        conn.scan <- 0;
        if String.length line > st.cfg.max_frame then oversized st conn
        else begin
          handle_line st conn line;
          if conn.alive then go ()
        end
    | None ->
        conn.scan <- Buffer.length conn.buf;
        if conn.scan > st.cfg.max_frame then oversized st conn
  in
  go ()

let on_readable st conn =
  let bytes = Bytes.create 4096 in
  match Unix.read conn.fd bytes 0 4096 with
  | 0 -> close_conn st conn
  | n ->
      Buffer.add_subbytes conn.buf bytes 0 n;
      process_buffer st conn
  | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn st conn

let accept_conn st =
  match Unix.accept st.listen_fd with
  | fd, _ ->
      Hashtbl.replace st.conns fd
        { fd; buf = Buffer.create 256; scan = 0; alive = true }
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Completions                                                         *)
(* ------------------------------------------------------------------ *)

let flush_completions st =
  List.iter
    (fun (c : Supervisor.completion) ->
      if not (Hashtbl.mem st.terminal c.seq) then begin
        Hashtbl.replace st.terminal c.seq ();
        Obs.Metrics.incr st.metrics "serve.jobs_done";
        Obs.Metrics.incr st.metrics
          ("serve.jobs_" ^ P.status_to_string c.outcome.Worker.status);
        if c.outcome.Worker.cached then
          Obs.Metrics.incr st.metrics "serve.cache_hits";
        match Hashtbl.find_opt st.pending c.seq with
        | Some (conn, id) ->
            Hashtbl.remove st.pending c.seq;
            send_frame st conn (Worker.reply ~id c.outcome)
        | None -> () (* client went away: reply dropped, job still ran *)
      end)
    (Supervisor.completions st.sup)

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let metric_keys =
  [
    "serve.jobs_admitted";
    "serve.jobs_done";
    "serve.jobs_ok";
    "serve.jobs_degraded";
    "serve.jobs_failed";
    "serve.jobs_cancelled";
    "serve.jobs_shed";
    "serve.cache_hits";
    "serve.proto_errors";
  ]

let run cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind listen_fd (ADDR_UNIX cfg.socket);
  Unix.listen listen_fd 64;
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  let notify () =
    try ignore (Unix.write pipe_w (Bytes.of_string "!") 0 1)
    with Unix.Unix_error _ -> ()
  in
  let stop_flag = ref false in
  let on_signal _ =
    stop_flag := true;
    notify ()
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let sup =
    Supervisor.create ~workers:cfg.workers ~queue_capacity:cfg.queue_capacity
      ~cache_capacity:cfg.cache_capacity ~retries:cfg.retries
      ~backoff_ms:cfg.backoff_ms ?default_timeout_ms:cfg.default_timeout_ms
      ~notify ()
  in
  let metrics = Obs.Metrics.create () in
  List.iter (Obs.Metrics.declare metrics) metric_keys;
  let st =
    {
      cfg;
      listen_fd;
      listening = true;
      pipe_r;
      conns = Hashtbl.create 16;
      pending = Hashtbl.create 64;
      terminal = Hashtbl.create 64;
      sup;
      metrics;
      started_ns = Obs.Clock.now_ns ();
      stop_flag;
      draining = false;
    }
  in
  Fmt.pr "tdrepair serve: listening on %s (%d worker domain(s), queue %d)@."
    cfg.socket cfg.workers cfg.queue_capacity;
  let drain_pipe () =
    let b = Bytes.create 256 in
    match Unix.read st.pipe_r b 0 256 with
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  let finished = ref false in
  while not !finished do
    if !(st.stop_flag) then begin_drain st;
    let read_fds =
      (if st.listening then [ st.listen_fd ] else [])
      @ (st.pipe_r :: Hashtbl.fold (fun fd _ acc -> fd :: acc) st.conns [])
    in
    let timeout =
      float_of_int (max 10 (min 200 (cfg.hard_watchdog_ms / 4))) /. 1000.
    in
    let ready, _, _ =
      try Unix.select read_fds [] [] timeout
      with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd = st.pipe_r then drain_pipe ()
        else if st.listening && fd = st.listen_fd then accept_conn st
        else
          match Hashtbl.find_opt st.conns fd with
          | Some conn -> on_readable st conn
          | None -> ())
      ready;
    if !(st.stop_flag) then begin_drain st;
    Supervisor.reap st.sup;
    Supervisor.check_wedged st.sup ~limit_ms:cfg.hard_watchdog_ms;
    flush_completions st;
    if
      st.draining
      && Hashtbl.length st.pending = 0
      && Supervisor.queue_length st.sup = 0
    then begin
      Supervisor.shutdown st.sup;
      flush_completions st;
      finished := true
    end
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    st.conns;
  Hashtbl.reset st.conns;
  (try Unix.close pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close pipe_w with Unix.Unix_error _ -> ());
  if st.listening then begin
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink cfg.socket with Unix.Unix_error _ -> ()
  end;
  vlog st "shutdown complete: %d job(s) served"
    (Obs.Metrics.get st.metrics "serve.jobs_done");
  Fmt.pr "tdrepair serve: shutdown complete@."
