(** Supervised pool of worker domains for the daemon.

    Crash-only discipline: a worker is a loop that pops jobs from the
    shared bounded queue ({!Jobq}) and runs them through {!Worker}.  Any
    exception escaping the loop — in practice the
    {!Repair.Faultinject.Worker_crash} fault, which {!Worker.execute}
    deliberately refuses to absorb — is worker {e death}: the slot is
    marked dead, and the next {!reap} re-enqueues the in-flight job at
    the {e front} of the queue (admitted jobs are never shed
    retroactively) and spawns a replacement domain.  Re-enqueues are
    capped, so a job that keeps killing workers terminates as [failed]
    instead of crash-looping the pool.

    OCaml domains cannot be killed, so a worker stuck in a stage that
    never ticks the cooperative watchdog is handled by the {e hard}
    watchdog: {!check_wedged} declares any worker busy beyond the limit
    wedged, emits a [degraded] terminal completion for its job, abandons
    the domain (never joined — it may never return) and spawns a
    replacement.  An abandoned domain that later un-wedges keeps popping
    and completing jobs (those replies are still valid); only its late
    completion for the job it wedged on is a duplicate, and the daemon's
    exactly-once terminal table drops it.

    All entry points are called from the daemon's single event-loop
    thread except the worker-loop internals; shared state is behind one
    mutex.  [notify] is invoked (from worker domains) after every
    completion or death so the daemon's select loop wakes up — wire it
    to the self-pipe. *)

type t

(** Per-job handle: [seq] is the daemon-unique admission number (the
    exactly-once terminal key — client ids may repeat). *)
type completion = {
  seq : int;
  spec : Protocol.job_spec;
  outcome : Worker.outcome;
}

val create :
  workers:int ->
  queue_capacity:int ->
  cache_capacity:int (** 0 disables the result cache *) ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?default_timeout_ms:int ->
  notify:(unit -> unit) ->
  unit ->
  t

(** Admit a job; [`Overloaded] when the queue refuses it (load shed). *)
val submit : t -> Protocol.job_spec -> [ `Accepted of int | `Overloaded ]

(** Remove a not-yet-started job by client id; running jobs cannot be
    cancelled (cooperative model). Returns its admission seq. *)
val cancel : t -> string -> int option

(** Drain completions accumulated since the last call, oldest first. *)
val completions : t -> completion list

(** Re-enqueue jobs lost to dead workers and respawn replacements.
    Call from the event loop after every wake-up. *)
val reap : t -> unit

(** Hard watchdog: declare workers busy longer than [limit_ms] wedged —
    degraded completion, abandoned domain, fresh replacement. *)
val check_wedged : t -> limit_ms:int -> unit

(** Close the queue, let workers drain, and join every live (non
    abandoned) domain.  Idempotent. *)
val shutdown : t -> unit

val queue_length : t -> int
val queue_capacity : t -> int

(** ["idle"]/["busy"]/["dead"] per current slot, for the health reply. *)
val worker_states : t -> string list

val respawns : t -> int
val crashes : t -> int

(** (hits, misses), when the cache is enabled. *)
val cache_stats : t -> (int * int) option
