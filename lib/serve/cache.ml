(* See cache.mli. *)

type 'a t = {
  mu : Mutex.t;
  tbl : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  {
    mu = Mutex.create ();
    tbl = Hashtbl.create 64;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some _ as v ->
          t.hits <- t.hits + 1;
          v
      | None ->
          t.misses <- t.misses + 1;
          None)

let store t key v =
  locked t (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        while Hashtbl.length t.tbl >= t.capacity && not (Queue.is_empty t.order)
        do
          Hashtbl.remove t.tbl (Queue.pop t.order)
        done;
        Hashtbl.replace t.tbl key v;
        Queue.push key t.order
      end)

let stats t = locked t (fun () -> (t.hits, t.misses))

let length t = locked t (fun () -> Hashtbl.length t.tbl)
