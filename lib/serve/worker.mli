(** Per-job execution for the daemon: compile + run one
    detect/repair/lint job under the cooperative watchdog, with
    transient-fault retries and result caching.

    Fault semantics: the job's injected faults ({!Protocol.flags.faults})
    are installed on the {e first} attempt only — they model transient
    faults, so a retry runs clean and the retry path is deterministic.
    {!Repair.Faultinject.Worker_crash} is {e not} handled here: it
    escapes to the supervisor, which treats it as the worker domain
    dying (see {!Supervisor}).

    Terminal classification:
    - pipeline success → [Sok], or [Sdegraded] when the report records
      budget degradations / failed static verification;
    - watchdog expiry → [Sdegraded] immediately (a timeout is not
      transient — retrying would just burn another deadline);
    - injected faults and budget-stage diagnostics → retried with capped
      exponential backoff, then [Sfailed];
    - input errors (parse/typecheck/runtime faults of the analyzed
      program) and unrepairable placements → [Sfailed] immediately.

    Caching: fault-free jobs whose outcome is [Sok] are stored under
    {!Protocol.cache_key}; a hit returns the stored report byte-for-byte
    without running any pipeline stage (trace-span absence is the
    observable proof — see test_serve.ml). *)

type outcome = {
  status : Protocol.status;
  attempts : int;  (** 0 on a cache hit *)
  cached : bool;
  report : Obs.Json.t option;
  error : string option;
  spans : string list option;
      (** pipeline span names when the job asked for [trace] *)
}

val execute :
  ?cache:Obs.Json.t Cache.t ->
  ?retries:int (** default 2 *) ->
  ?backoff_ms:int (** first retry delay; doubles per retry, capped *) ->
  ?default_timeout_ms:int ->
  Protocol.job_spec ->
  outcome

(** The wire reply for an outcome. *)
val reply : id:string -> outcome -> Obs.Json.t
