(** The [tdrepair serve] wire protocol: newline-delimited JSON frames
    over a Unix-domain socket.

    Every frame is one line.  Requests are objects with an ["op"] field;
    job requests (["detect"]/["repair"]/["lint"]) carry a client-chosen
    ["id"] echoed on the reply, the program ["src"], and an optional
    ["flags"] object.  Replies are objects with sorted keys ({!Obs.Json}
    emission), so byte-identical replies are meaningful — the result
    cache relies on this.

    Protocol errors are typed ({!proto_error}): a malformed frame gets
    an error reply and the connection survives; an oversized frame gets
    an error reply and the connection is closed (the read limit bounds
    per-connection buffering, see DESIGN.md §12). *)

type op = Detect | Repair | Lint

val op_to_string : op -> string

type flags = {
  mode : Espbags.Detector.mode;
  backend : [ `Espbags | `Vclock | `Auto ];  (** detection backend *)
  static_prune : bool;
  static_verify : bool;
  budgets : Repair.Guard.budgets;
  timeout_ms : int option;  (** per-job watchdog; [None] = daemon default *)
  retries : int option;  (** transient-fault retries; [None] = default *)
  sets : (string * int) list;  (** int-global test-input overrides *)
  faults : Repair.Faultinject.fault list;
      (** per-job injected faults (applied to the first attempt only);
          jobs with faults are never cached *)
  trace : bool;  (** return the job's {!Obs.Trace} span names *)
  shadow_chunk : int option;  (** chunked shadow-table slab size *)
  spill : string option;  (** race-record spill file *)
  strategy : Repair.Strategy.choice;  (** repair strategy for [repair] *)
}

val default_flags : flags

type job_spec = { id : string; op : op; src : string; flags : flags }

type request =
  | Job of job_spec
  | Health
  | Cancel of string
  | Shutdown

type proto_error =
  | Malformed of string  (** unparseable or non-object frame *)
  | Oversized of int  (** frame exceeded the read limit (the payload) *)
  | Bad_request of string  (** well-formed JSON, invalid request *)

(** Parse one frame (without its newline). *)
val parse : string -> (request, proto_error) result

(** Round-trippable compact fault specs ("interp_trap:50",
    "worker_crash", ...) used in the ["flags.faults"] list. *)
val fault_to_string : Repair.Faultinject.fault -> string

(** Job terminal statuses.  Exactly one terminal reply is sent per
    admitted job. *)
type status = Sok | Sdegraded | Sfailed | Soverloaded | Scancelled

val status_to_string : status -> string

val job_reply :
  id:string ->
  status:status ->
  ?attempts:int ->
  ?cached:bool ->
  ?report:Obs.Json.t ->
  ?error:string ->
  ?spans:string list ->
  unit ->
  Obs.Json.t

(** The error frame for a protocol error (["error"] key instead of
    ["status"]). *)
val error_reply : proto_error -> Obs.Json.t

(** Serialize one reply frame, newline included. *)
val frame : Obs.Json.t -> string

(** Deterministic cache-key material for a job: collapses the flags
    that affect the result (mode, prune/verify, budgets, sets) and
    ignores the ones that do not (trace, timeout, retries).  Jobs with
    faults must not be cached at all. *)
val cache_key : job_spec -> string
