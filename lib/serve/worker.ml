(* See worker.mli. *)

module J = Obs.Json
module FI = Repair.Faultinject
module P = Protocol

type outcome = {
  status : P.status;
  attempts : int;
  cached : bool;
  report : J.t option;
  error : string option;
  spans : string list option;
}

(* ------------------------------------------------------------------ *)
(* One pipeline run                                                    *)
(* ------------------------------------------------------------------ *)

let apply_sets prog sets =
  List.fold_left
    (fun p (name, v) ->
      try Mhj.Transform.set_global_int p name v
      with Invalid_argument m ->
        raise
          (Repair.Diag.Fail
             (Repair.Diag.make ~stage:Repair.Diag.Typecheck m)))
    prog sets

let resolve_backend (flags : P.flags) prog : [ `Espbags | `Vclock ] =
  match flags.backend with
  | (`Espbags | `Vclock) as b -> b
  | `Auto -> fst (Vclock.Select.choose prog)

let run_detect (flags : P.flags) prog =
  let keep =
    if flags.static_prune then
      Some (Static.Prune.keep_fn (Static.Prune.make prog))
    else None
  in
  let layout =
    Option.map (fun n -> Tdrutil.Islab.Chunked n) flags.shadow_chunk
  in
  let spill = Option.map Espbags.Spill.config flags.spill in
  let backend = resolve_backend flags prog in
  let label, races, n_accesses, n_locations, n_skipped =
    match backend with
    | `Espbags ->
        let det, _res =
          Espbags.Detector.detect ?keep ?layout ?spill flags.mode prog
        in
        ( "espbags",
          Espbags.Detector.races det,
          det.Espbags.Detector.n_accesses,
          det.Espbags.Detector.n_locations,
          det.Espbags.Detector.n_skipped )
    | `Vclock ->
        let det, _res =
          Vclock.Seq.detect ?keep ?layout ?spill flags.mode prog
        in
        ( "vclock",
          Vclock.Seq.races det,
          det.Vclock.Seq.n_accesses,
          det.Vclock.Seq.n_locations,
          det.Vclock.Seq.n_skipped )
  in
  (* Races with both endpoints inside [isolated] sections are discharged
     by mutual exclusion, mirroring Driver.detect and the CLI. *)
  let races = Repair.Isolate.suppress prog races in
  let report =
    J.Obj
      [
        ("op", J.Str "detect");
        ( "mode",
          J.Str
            (match flags.mode with Espbags.Detector.Mrw -> "mrw" | Srw -> "srw")
        );
        ("backend", J.Str label);
        ("races", J.Int (List.length races));
        ( "race_pairs",
          J.Int (List.length (Espbags.Race.dedupe_by_steps races)) );
        ("accesses", J.Int n_accesses);
        ("locations", J.Int n_locations);
        ("skipped", J.Int n_skipped);
        ( "race_list",
          J.List
            (List.map
               (fun r -> J.Str (Fmt.str "%a" Espbags.Race.pp r))
               races) );
      ]
  in
  (P.Sok, Some report, None)

(* Non-finish repair strategies route through the tournament layer; the
   reply carries the per-strategy outcomes alongside the winner. *)
let run_repair_strategy (flags : P.flags) prog =
  let outcome =
    Repair.Strategy.run ~mode:flags.mode ~backend:flags.backend
      flags.strategy prog
  in
  let open Repair.Strategy in
  let json =
    J.Obj
      [
        ("op", J.Str "repair");
        ("strategy", J.Str (Fmt.str "%a" pp_choice flags.strategy));
        ("winner", J.Str (kind_name outcome.winner.kind));
        ("converged", J.Bool true);
        ( "candidates",
          J.List
            (List.map
               (fun (c : candidate) ->
                 J.Obj
                   [
                     ("kind", J.Str (kind_name c.kind));
                     ("produced", J.Bool (c.program <> None));
                     ("verified", J.Bool c.verified);
                     ("rounds", J.Int c.rounds);
                     ( "cpl",
                       match c.score with
                       | Some s -> J.Int s.Compgraph.Score.cpl
                       | None -> J.Null );
                   ])
               outcome.candidates) );
        ( "metrics",
          J.Obj (List.map (fun (k, v) -> (k, J.Int v)) outcome.metrics) );
        ("program", J.Str (Mhj.Pretty.program_to_string outcome.program));
      ]
  in
  (P.Sok, Some json, None)

let run_repair (flags : P.flags) prog =
  if flags.strategy <> `Finish then run_repair_strategy flags prog
  else
  let report =
    Repair.Driver.repair ~mode:flags.mode ~backend:flags.backend
      ~budgets:flags.budgets ~static_prune:flags.static_prune
      ~static_verify:flags.static_verify ?shadow_chunk:flags.shadow_chunk
      ?spill:flags.spill prog
  in
  let open Repair.Driver in
  let degraded =
    report.degradations <> [] || report.verified_static = Some false
  in
  let json =
    J.Obj
      [
        ("op", J.Str "repair");
        ("converged", J.Bool report.converged);
        ("iterations", J.Int (List.length report.iterations));
        ("placements", J.Int (List.length (total_placements report)));
        ("final_races", J.Int report.final_races);
        ( "degradations",
          J.List
            (List.map
               (fun d ->
                 J.Str (Fmt.str "%a" Repair.Guard.pp_degradation d))
               report.degradations) );
        ( "verified_static",
          match report.verified_static with
          | None -> J.Null
          | Some b -> J.Bool b );
        ("program", J.Str (Mhj.Pretty.program_to_string report.program));
      ]
  in
  if not report.converged then
    (P.Sfailed, Some json, Some "repair did not converge")
  else if degraded then (P.Sdegraded, Some json, None)
  else (P.Sok, Some json, None)

let run_lint (_flags : P.flags) prog =
  let findings = Static.Lint.run prog in
  let report =
    J.Obj
      [
        ("op", J.Str "lint");
        ("findings", J.Int (List.length findings));
        ( "finding_list",
          J.List
            (List.map
               (fun f -> J.Str (Static.Finding.to_string f))
               findings) );
      ]
  in
  (P.Sok, Some report, None)

let run_once ~timeout_ms ~faults (spec : P.job_spec) =
  FI.with_faults faults (fun () ->
      Rt.Watchdog.with_timeout ~ms:timeout_ms (fun () ->
          (* Daemon-level stall fault: fires before the pipeline so every
             op — not just repair, whose driver also honours it per
             iteration — exercises the watchdog. *)
          FI.fire_slow ();
          let prog =
            Obs.Trace.with_span "compile" (fun () ->
                apply_sets (Mhj.Front.compile spec.src) spec.flags.sets)
          in
          match spec.op with
          | P.Detect -> run_detect spec.flags prog
          | P.Repair -> run_repair spec.flags prog
          | P.Lint -> run_lint spec.flags prog))

(* ------------------------------------------------------------------ *)
(* Attempt classification + retry loop                                 *)
(* ------------------------------------------------------------------ *)

type attempt =
  | Done of P.status * J.t option * string option
  | Expired of int  (* watchdog ms *)
  | Transient of string
  | Fatal of string

let classify ~timeout_ms ~faults spec =
  match run_once ~timeout_ms ~faults spec with
  | status, report, error -> Done (status, report, error)
  | exception Rt.Watchdog.Timeout ms -> Expired ms
  | exception (FI.Injected (FI.Worker_crash, _) as e) ->
      raise e (* supervisor-level fault: not ours to absorb *)
  | exception FI.Injected (_, msg) -> Transient msg
  | exception Repair.Driver.Unrepairable m -> Fatal ("unrepairable: " ^ m)
  | exception Repair.Diag.Fail d ->
      if d.Repair.Diag.stage = Repair.Diag.Budget then
        Transient (Repair.Diag.to_string d)
      else Fatal (Repair.Diag.to_string d)
  | exception e -> (
      match Repair.Diag.of_exn e with
      | Some d when d.Repair.Diag.stage = Repair.Diag.Budget ->
          Transient (Repair.Diag.to_string d)
      | Some d -> Fatal (Repair.Diag.to_string d)
      | None -> Fatal ("internal: " ^ Printexc.to_string e))

let span_names () =
  List.map (fun (e : Obs.Trace.event) -> e.name) (Obs.Trace.events ())

let backoff_cap_ms = 500

let execute ?cache ?(retries = 2) ?(backoff_ms = 10) ?default_timeout_ms
    (spec : P.job_spec) =
  let flags = spec.flags in
  let timeout_ms =
    match flags.timeout_ms with Some _ as t -> t | None -> default_timeout_ms
  in
  let retries = Option.value flags.retries ~default:retries in
  let cacheable = flags.faults = [] in
  let key = P.cache_key spec in
  let cache_hit =
    if cacheable then Option.bind cache (fun c -> Cache.find c key) else None
  in
  match cache_hit with
  | Some report ->
      {
        status = P.Sok;
        attempts = 0;
        cached = true;
        report = Some report;
        error = None;
        (* no pipeline stage ran: an empty span list is the proof *)
        spans = (if flags.trace then Some [] else None);
      }
  | None ->
      let finish ~attempt ~status ~report ~error =
        let spans = if flags.trace then Some (span_names ()) else None in
        if flags.trace then Obs.Trace.disable ();
        (match (status, report) with
        | P.Sok, Some r when cacheable ->
            Option.iter (fun c -> Cache.store c key r) cache
        | _ -> ());
        { status; attempts = attempt; cached = false; report; error; spans }
      in
      let rec go attempt =
        (* Per-job faults model transient faults: first attempt only, so
           a retry runs clean and terminal statuses are deterministic. *)
        let faults =
          if attempt = 1 then
            List.filter (fun f -> f <> FI.Worker_crash) flags.faults
          else []
        in
        if flags.trace then begin
          Obs.Trace.enable ();
          Obs.Trace.reset ()
        end;
        match classify ~timeout_ms ~faults spec with
        | Done (status, report, error) -> finish ~attempt ~status ~report ~error
        | Expired ms ->
            finish ~attempt ~status:P.Sdegraded ~report:None
              ~error:
                (Some
                   (Fmt.str
                      "wall-clock watchdog: job exceeded its %d ms timeout" ms))
        | Fatal msg ->
            finish ~attempt ~status:P.Sfailed ~report:None ~error:(Some msg)
        | Transient msg ->
            if attempt > retries then
              finish ~attempt ~status:P.Sfailed ~report:None
                ~error:(Some ("gave up after transient faults: " ^ msg))
            else begin
              let delay = min (backoff_ms lsl (attempt - 1)) backoff_cap_ms in
              if delay > 0 then Unix.sleepf (float_of_int delay /. 1000.);
              go (attempt + 1)
            end
      in
      go 1

let reply ~id (o : outcome) =
  P.job_reply ~id ~status:o.status ~attempts:o.attempts ~cached:o.cached
    ?report:o.report ?error:o.error ?spans:o.spans ()
