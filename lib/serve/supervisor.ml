(* See supervisor.mli. *)

module FI = Repair.Faultinject
module P = Protocol

type job = {
  seq : int;
  spec : P.job_spec;
  mutable crash_left : int;  (* intentional Worker_crash firings left *)
  mutable requeues : int;  (* crash re-enqueues so far *)
}

type completion = { seq : int; spec : P.job_spec; outcome : Worker.outcome }

type slot_state =
  | Idle
  | Busy of { seq : int; since_ns : int64 }
  | Dead of job option  (* in-flight job at death, for re-enqueue *)

type slot = {
  mutable state : slot_state;
  mutable domain : unit Domain.t option;
  mutable gen : int;  (* bumped on every (re)spawn; guards stale updates *)
}

type t = {
  queue : job Jobq.t;
  cache : Obs.Json.t Cache.t option;
  retries : int option;
  backoff_ms : int option;
  default_timeout_ms : int option;
  notify : unit -> unit;
  mu : Mutex.t;
  slots : slot array;
  mutable completions : completion list;  (* reversed *)
  mutable respawns : int;
  mutable crashes : int;
  mutable next_seq : int;
  mutable shut : bool;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let max_requeues = 3

(* ------------------------------------------------------------------ *)
(* Worker loop                                                         *)
(* ------------------------------------------------------------------ *)

exception Died of job option

let slot_set t i gen st =
  locked t (fun () -> if t.slots.(i).gen = gen then t.slots.(i).state <- st)

(* Completions are pushed unconditionally — even from a worker the hard
   watchdog abandoned: an abandoned worker that un-wedges keeps popping
   jobs, and those jobs still deserve their one terminal reply.  The
   duplicate for the job it was wedged ON (already answered [degraded])
   is dropped by the daemon's exactly-once terminal table, keyed by
   admission seq. *)
let push_completion t c =
  locked t (fun () -> t.completions <- c :: t.completions)

let run_job t (job : job) =
  (* The intentional crash fault fires here, at the worker level, before
     [Worker.execute]: the domain "dies" holding the job.  [crash_left]
     is decremented first so the re-enqueued job runs clean — the fault
     is transient by construction. *)
  if job.crash_left > 0 then begin
    job.crash_left <- job.crash_left - 1;
    raise
      (FI.Injected (FI.Worker_crash, "injected fault: worker crash"))
  end;
  Worker.execute ?cache:t.cache ?retries:t.retries ?backoff_ms:t.backoff_ms
    ?default_timeout_ms:t.default_timeout_ms job.spec

let rec worker_loop t i gen =
  match Jobq.pop t.queue with
  | None -> slot_set t i gen Idle (* queue closed: clean exit *)
  | Some job ->
      slot_set t i gen (Busy { seq = job.seq; since_ns = Obs.Clock.now_ns () });
      (match run_job t job with
      | outcome ->
          push_completion t { seq = job.seq; spec = job.spec; outcome };
          slot_set t i gen Idle;
          t.notify ()
      | exception _ ->
          (* crash-only: ANY escape is worker death with the job in hand *)
          raise (Died (Some job)));
      worker_loop t i gen

let worker_body t i gen () =
  try worker_loop t i gen with
  | Died job ->
      locked t (fun () ->
          if t.slots.(i).gen = gen then begin
            t.slots.(i).state <- Dead job;
            t.crashes <- t.crashes + 1
          end);
      t.notify ()
  | _ ->
      locked t (fun () ->
          if t.slots.(i).gen = gen then begin
            t.slots.(i).state <- Dead None;
            t.crashes <- t.crashes + 1
          end);
      t.notify ()

let spawn t i =
  locked t (fun () ->
      let slot = t.slots.(i) in
      slot.gen <- slot.gen + 1;
      slot.state <- Idle;
      slot.domain <- Some (Domain.spawn (worker_body t i slot.gen)))

(* ------------------------------------------------------------------ *)
(* API                                                                 *)
(* ------------------------------------------------------------------ *)

let create ~workers ~queue_capacity ~cache_capacity ?retries ?backoff_ms
    ?default_timeout_ms ~notify () =
  let t =
    {
      queue = Jobq.create ~capacity:queue_capacity;
      cache =
        (if cache_capacity > 0 then Some (Cache.create ~capacity:cache_capacity)
         else None);
      retries;
      backoff_ms;
      default_timeout_ms;
      notify;
      mu = Mutex.create ();
      slots =
        Array.init (max 1 workers) (fun _ ->
            { state = Idle; domain = None; gen = 0 });
      completions = [];
      respawns = 0;
      crashes = 0;
      next_seq = 0;
      shut = false;
    }
  in
  Array.iteri (fun i _ -> spawn t i) t.slots;
  t

let submit t spec =
  let job =
    locked t (fun () ->
        t.next_seq <- t.next_seq + 1;
        let crash_left =
          List.length
            (List.filter
               (fun f -> f = FI.Worker_crash)
               spec.P.flags.P.faults)
        in
        { seq = t.next_seq; spec; crash_left; requeues = 0 })
  in
  if Jobq.try_push t.queue job then `Accepted job.seq else `Overloaded

let cancel t id =
  match Jobq.remove t.queue (fun j -> j.spec.P.id = id) with
  | Some j -> Some j.seq
  | None -> None

let completions t =
  locked t (fun () ->
      let cs = List.rev t.completions in
      t.completions <- [];
      cs)

let reap t =
  let to_respawn =
    locked t (fun () ->
        let acc = ref [] in
        Array.iteri
          (fun i slot ->
            match slot.state with
            | Dead job -> acc := (i, job) :: !acc
            | Idle | Busy _ -> ())
          t.slots;
        !acc)
  in
  List.iter
    (fun (i, job) ->
      (match job with
      | Some j when j.requeues < max_requeues && not t.shut ->
          j.requeues <- j.requeues + 1;
          Jobq.force_push t.queue j
      | Some j ->
          locked t (fun () ->
              t.completions <-
                {
                  seq = j.seq;
                  spec = j.spec;
                  outcome =
                    {
                      Worker.status = P.Sfailed;
                      attempts = 0;
                      cached = false;
                      report = None;
                      error =
                        Some
                          (Fmt.str
                             "job killed its worker %d time(s); giving up"
                             j.requeues);
                      spans = None;
                    };
                }
                :: t.completions)
      | None -> ());
      if not t.shut then begin
        (* the dead domain's body has returned (or is returning): join it
           so the runtime can reclaim it, then respawn the slot *)
        Option.iter Domain.join t.slots.(i).domain;
        locked t (fun () -> t.respawns <- t.respawns + 1);
        spawn t i
      end)
    to_respawn

let check_wedged t ~limit_ms =
  let now = Obs.Clock.now_ns () in
  let limit_ns = Int64.mul (Int64.of_int limit_ms) 1_000_000L in
  let wedged =
    locked t (fun () ->
        let acc = ref [] in
        Array.iteri
          (fun i slot ->
            match slot.state with
            | Busy { seq; since_ns }
              when Int64.compare (Int64.sub now since_ns) limit_ns > 0 ->
                acc := (i, seq) :: !acc
            | _ -> ())
          t.slots;
        !acc)
  in
  List.iter
    (fun (i, _seq) ->
      (* abandon the domain: it may never return, so it is never joined;
         bump the generation so its late updates are dropped *)
      let spec =
        locked t (fun () ->
            let slot = t.slots.(i) in
            match slot.state with
            | Busy { seq; since_ns = _ } ->
                slot.gen <- slot.gen + 1;
                slot.domain <- None;
                slot.state <- Idle;
                Some (i, seq)
            | _ -> None)
      in
      match spec with
      | None -> ()
      | Some (i, seq) ->
          locked t (fun () ->
              t.crashes <- t.crashes + 1;
              t.respawns <- t.respawns + 1;
              t.completions <-
                {
                  seq;
                  spec =
                    (* the daemon replies by seq; the spec here is only
                       for logging, synthesize a placeholder *)
                    {
                      P.id = "";
                      op = P.Detect;
                      src = "";
                      flags = P.default_flags;
                    };
                  outcome =
                    {
                      Worker.status = P.Sdegraded;
                      attempts = 1;
                      cached = false;
                      report = None;
                      error =
                        Some
                          (Fmt.str
                             "hard watchdog: worker wedged for over %d ms; \
                              worker abandoned and respawned"
                             limit_ms);
                      spans = None;
                    };
                }
                :: t.completions);
          spawn t i)
    wedged

let shutdown t =
  let already = locked t (fun () ->
      let was = t.shut in
      t.shut <- true;
      was)
  in
  if not already then begin
    Jobq.close t.queue;
    Array.iter
      (fun slot ->
        match slot.domain with
        | Some d -> (
            match Domain.join d with () -> () | exception _ -> ())
        | None -> ())
      t.slots
  end

let queue_length t = Jobq.length t.queue
let queue_capacity t = Jobq.capacity t.queue

let worker_states t =
  locked t (fun () ->
      Array.to_list
        (Array.map
           (fun slot ->
             match slot.state with
             | Idle -> "idle"
             | Busy _ -> "busy"
             | Dead _ -> "dead")
           t.slots))

let respawns t = locked t (fun () -> t.respawns)
let crashes t = locked t (fun () -> t.crashes)
let cache_stats t = Option.map Cache.stats t.cache
