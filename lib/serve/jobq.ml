(* See jobq.mli. *)

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable items : 'a list;  (* front = next to pop *)
  mutable len : int;
  mutable closed : bool;
  capacity : int;
}

let create ~capacity =
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    items = [];
    len = 0;
    closed = false;
    capacity;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let try_push t x =
  locked t (fun () ->
      if t.closed || t.len >= t.capacity then false
      else begin
        t.items <- t.items @ [ x ];
        t.len <- t.len + 1;
        Condition.signal t.nonempty;
        true
      end)

let force_push t x =
  locked t (fun () ->
      t.items <- x :: t.items;
      t.len <- t.len + 1;
      Condition.signal t.nonempty)

let pop t =
  locked t (fun () ->
      let rec wait () =
        match t.items with
        | x :: rest ->
            t.items <- rest;
            t.len <- t.len - 1;
            Some x
        | [] ->
            if t.closed then None
            else begin
              Condition.wait t.nonempty t.mu;
              wait ()
            end
      in
      wait ())

let remove t pred =
  locked t (fun () ->
      let rec go acc = function
        | [] -> None
        | x :: rest when pred x ->
            t.items <- List.rev_append acc rest;
            t.len <- t.len - 1;
            Some x
        | x :: rest -> go (x :: acc) rest
      in
      go [] t.items)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = locked t (fun () -> t.len)

let capacity t = t.capacity
