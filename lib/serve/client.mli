(** Minimal blocking client for the daemon's NDJSON socket, used by
    [tdrepair call] and the integration tests.

    One request frame per {!send}; {!recv} returns the next reply line
    (without its newline), blocking until one arrives, or [None] on
    EOF.  Replies to job requests are not necessarily in submission
    order — match them by ["id"]. *)

type t

(** @raise Unix.Unix_error when the socket does not exist / refuses. *)
val connect : string -> t

(** Wrap an already-connected stream fd (e.g. a socketpair end). *)
val of_fd : Unix.file_descr -> t

(** Send one raw frame (the newline is appended). *)
val send : t -> string -> unit

val send_json : t -> Obs.Json.t -> unit

(** Next reply line; [None] once the daemon closes the connection. *)
val recv : t -> string option

(** {!send} then one {!recv}. *)
val request : t -> string -> string option

val close : t -> unit
