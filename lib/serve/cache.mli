(** Content-addressed result cache for the daemon.

    Keys are {!Protocol.cache_key} digests (op + result-affecting flags
    + program source); values are opaque to the cache.  Bounded
    capacity with FIFO eviction; domain-safe (internal mutex).

    Policy (enforced by the caller, {!Worker}): only fault-free [ok]
    results are stored — degraded, failed, and fault-injected runs are
    never cached. *)

type 'a t

val create : capacity:int -> 'a t

val find : 'a t -> string -> 'a option

val store : 'a t -> string -> 'a -> unit

(** (hits, misses) counters, for the health report. *)
val stats : 'a t -> int * int

val length : 'a t -> int
