(** The [tdrepair serve] daemon: a single-threaded [select] event loop
    over a Unix-domain socket, with jobs executed on the
    {!Supervisor}'s worker domains.

    Protocol: newline-delimited JSON frames ({!Protocol}).  Hardening:
    a malformed frame gets a typed error reply and the connection
    survives; a frame exceeding [max_frame] bytes gets an error reply
    and the connection is closed (this bounds per-connection
    buffering).  A client disconnecting does not cancel its admitted
    jobs — they run to completion and the reply is dropped.

    Every admitted job reaches {e exactly one} terminal reply
    ([ok]/[degraded]/[failed]/[cancelled]; [overloaded] is the
    admission-refused reply).  Late completions from abandoned wedged
    workers are dropped by the terminal table.

    Shutdown (SIGTERM, SIGINT, or a ["shutdown"] frame) drains: the
    listener closes, in-flight and queued jobs run to their terminal
    replies, workers are joined, the socket file is unlinked. *)

type config = {
  socket : string;
  workers : int;
  queue_capacity : int;
  max_frame : int;  (** per-connection frame byte limit *)
  cache_capacity : int;  (** 0 disables the result cache *)
  retries : int;
  backoff_ms : int;
  default_timeout_ms : int option;  (** per-job cooperative watchdog *)
  hard_watchdog_ms : int;
      (** busy-beyond-this workers are declared wedged and respawned *)
  verbose : bool;
}

val default_config : socket:string -> config

(** Run the daemon until shutdown.  Prints one ["listening on ..."]
    line when ready (tests wait for it). *)
val run : config -> unit
