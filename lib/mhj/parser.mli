(** Recursive-descent parser for Mini-HJ. *)

exception Error of string * Loc.t

(** Parse a compilation unit (globals and function definitions).  The
    result is {e not} yet normalized or type-checked; use
    {!Front.compile} for the full pipeline.
    @raise Error on syntax errors
    @raise Lexer.Error on lexical errors *)
val parse_program : string -> Ast.program
