(** Hand-written lexer for Mini-HJ: source text to located tokens.
    Comments are [// ...] and [/* ... */] (non-nesting). *)

exception Error of string * Loc.t

(** Lex a whole buffer; the result always ends with one [EOF] token.
    @raise Error on malformed input. *)
val tokenize : string -> (Token.t * Loc.t) array
