(** Abstract syntax for Mini-HJ, the structured task-parallel input language.

    Mini-HJ is the subset of Habanero Java / X10 that the paper targets:
    a sequential imperative core (ints, floats, bools, multi-dimensional
    arrays, globals, first-order functions, loops) extended with the two
    structured-parallelism constructs [async] and [finish].

    Every statement carries a unique statement id ([sid]) and every block a
    unique block id ([bid]).  The repair tool identifies static program
    points as (block id, statement index range) pairs, so these ids are the
    contract between the dynamic analysis (which records them in the S-DPST)
    and the static finish-placement pass (which rewrites the AST). *)

type ty =
  | TInt
  | TFloat
  | TBool
  | TUnit
  | TStr   (** string literals; only valid as an argument to [print] *)
  | TArr of ty

let rec equal_ty a b =
  match (a, b) with
  | TInt, TInt | TFloat, TFloat | TBool, TBool | TUnit, TUnit | TStr, TStr ->
      true
  | TArr a, TArr b -> equal_ty a b
  | _ -> false

let rec pp_ty ppf = function
  | TInt -> Fmt.string ppf "int"
  | TFloat -> Fmt.string ppf "float"
  | TBool -> Fmt.string ppf "bool"
  | TUnit -> Fmt.string ppf "unit"
  | TStr -> Fmt.string ppf "str"
  | TArr t -> Fmt.pf ppf "%a[]" pp_ty t

let string_of_ty t = Fmt.str "%a" pp_ty t

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

let string_of_unop = function Neg -> "-" | Not -> "!"

type expr = { e : expr_desc; eloc : Loc.t }

and expr_desc =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Idx of expr * expr  (** [a[i]] *)
  | Call of string * expr list  (** user function or builtin *)
  | NewArr of ty * expr list
      (** [new t[d1][d2]...]: element type [t] and one expr per dimension *)

(** Whether a local binding may be re-assigned.  As in HJ (where captured
    variables must be [final]), async bodies may only reference immutable
    ([val]) outer locals; this is enforced by {!Typecheck}. *)
type mutability = Mut | Immut

type stmt = { s : stmt_desc; sid : int; sloc : Loc.t }

and stmt_desc =
  | Decl of mutability * string * ty * expr
  | Assign of string * expr list * expr
      (** [x = e] (empty index path) or [a[i]..[j] = e] *)
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of string * expr * expr * expr option * stmt
      (** [for (i = lo to hi [by step]) s]; bounds inclusive, default step 1 *)
  | Return of expr option
  | Async of stmt
  | Finish of stmt
  | Isolated of stmt
      (** [isolated s]: a sequential critical section; at most one
          isolated section executes at a time (global mutual exclusion).
          Bodies may not spawn or join tasks. *)
  | Block of block
  | Expr of expr

and block = { bid : int; stmts : stmt list }

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty;
  body : block;
  floc : Loc.t;
}

type global = { gname : string; gty : ty; ginit : expr; gloc : Loc.t }

type program = { globals : global list; funcs : func list }

(* ------------------------------------------------------------------ *)
(* Id supply                                                           *)
(* ------------------------------------------------------------------ *)

(* Ids are globally unique across all programs built in one process, so
   AST rewrites can always mint fresh ids without consulting the program. *)
let sid_counter = ref 0
let bid_counter = ref 0

let fresh_sid () =
  incr sid_counter;
  !sid_counter

let fresh_bid () =
  incr bid_counter;
  !bid_counter

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let mk_expr ?(loc = Loc.dummy) e = { e; eloc = loc }
let mk_stmt ?(loc = Loc.dummy) s = { s; sid = fresh_sid (); sloc = loc }
let mk_block stmts = { bid = fresh_bid (); stmts }

(** [finish_of_range stmts] wraps a statement list in a fresh
    [finish { ... }] statement, as inserted by the repair tool. *)
let finish_of_range stmts =
  mk_stmt (Finish (mk_stmt (Block (mk_block stmts))))

(** [isolated_of_range stmts] wraps a statement list in a fresh
    [isolated { ... }] statement, as inserted by the isolation repair
    strategy. *)
let isolated_of_range stmts =
  mk_stmt (Isolated (mk_stmt (Block (mk_block stmts))))

(* ------------------------------------------------------------------ *)
(* Traversal helpers                                                   *)
(* ------------------------------------------------------------------ *)

(** [map_blocks f p] rebuilds [p], applying [f] to every block bottom-up
    (innermost blocks first).  Statement/block ids of untouched nodes are
    preserved, which keeps S-DPST static references stable across repair
    iterations. *)
let map_blocks (f : block -> block) (p : program) : program =
  let rec on_stmt st =
    let s =
      match st.s with
      | Decl _ | Assign _ | Return _ | Expr _ -> st.s
      | If (c, a, b) -> If (c, on_stmt a, Option.map on_stmt b)
      | While (c, b) -> While (c, on_stmt b)
      | For (i, lo, hi, by, b) -> For (i, lo, hi, by, on_stmt b)
      | Async b -> Async (on_stmt b)
      | Finish b -> Finish (on_stmt b)
      | Isolated b -> Isolated (on_stmt b)
      | Block b -> Block (on_block b)
    in
    { st with s }
  and on_block b = f { b with stmts = List.map on_stmt b.stmts } in
  { p with funcs = List.map (fun fn -> { fn with body = on_block fn.body }) p.funcs }

(** [iter_stmts f p] applies [f] to every statement in the program, in
    source order. *)
let iter_stmts (f : stmt -> unit) (p : program) : unit =
  let rec on_stmt st =
    f st;
    match st.s with
    | Decl _ | Assign _ | Return _ | Expr _ -> ()
    | If (_, a, b) ->
        on_stmt a;
        Option.iter on_stmt b
    | While (_, b) -> on_stmt b
    | For (_, _, _, _, b) -> on_stmt b
    | Async b | Finish b | Isolated b -> on_stmt b
    | Block b -> List.iter on_stmt b.stmts
  in
  List.iter (fun fn -> List.iter on_stmt fn.body.stmts) p.funcs

(** [find_func p name] returns the function named [name], if any. *)
let find_func (p : program) (name : string) : func option =
  List.find_opt (fun f -> f.fname = name) p.funcs

(** Number of [async] statements in the program. *)
let count_asyncs (p : program) : int =
  let n = ref 0 in
  iter_stmts (fun st -> match st.s with Async _ -> incr n | _ -> ()) p;
  !n

(** Number of [finish] statements in the program. *)
let count_finishes (p : program) : int =
  let n = ref 0 in
  iter_stmts (fun st -> match st.s with Finish _ -> incr n | _ -> ()) p;
  !n

(** Number of [isolated] statements in the program. *)
let count_isolated (p : program) : int =
  let n = ref 0 in
  iter_stmts (fun st -> match st.s with Isolated _ -> incr n | _ -> ()) p;
  !n

(** All statement ids in the program, in source order. *)
let all_sids (p : program) : int list =
  let acc = ref [] in
  iter_stmts (fun st -> acc := st.sid :: !acc) p;
  List.rev !acc
