(** Builtin functions shared by the type checker and the interpreter.
    [alen] and [print] are polymorphic and special-cased in
    {!Typecheck}; [cas] models HJ's atomic vertex claiming and is exempt
    from race detection; [work n] charges [n] abstract cost units. *)

type signature = {
  name : string;
  args : Ast.ty list;
  ret : Ast.ty;
  doc : string;
}

val table : signature list

val is_builtin : string -> bool

val find : string -> signature option
