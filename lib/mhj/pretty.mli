(** Pretty-printer for Mini-HJ.  Output is valid Mini-HJ that re-parses to
    a structurally identical program; the repair driver uses it to emit
    the repaired source. *)

val pp_expr : Ast.expr Fmt.t

val pp_program : Ast.program Fmt.t

val program_to_string : Ast.program -> string

val expr_to_string : Ast.expr -> string

val stmt_to_string : Ast.stmt -> string
