(** Recursive-descent parser for Mini-HJ.

    Grammar (informal):
    {v
      program := (global | func)* EOF
      global  := ("var"|"val") IDENT ":" type "=" expr ";"
      func    := "def" IDENT "(" [params] ")" [":" type] block
      type    := ("int"|"float"|"bool"|"unit") ("[" "]")*
      stmt    := block | decl | if | while | for | return
               | "async" stmt | "finish" stmt | assign-or-expr ";"
      for     := "for" "(" IDENT "=" expr "to" expr ["by" expr] ")" stmt
      forasync := "forasync" "(" ... ")" stmt   (sugar: async per iteration)
    v} *)

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun m -> raise (Error (m, loc))) fmt

type st = { toks : (Token.t * Loc.t) array; mutable idx : int }

let cur p = fst p.toks.(p.idx)
let cur_loc p = snd p.toks.(p.idx)
let advance p = if p.idx < Array.length p.toks - 1 then p.idx <- p.idx + 1

let expect p tok =
  if cur p = tok then advance p
  else
    error (cur_loc p) "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (cur p))

let expect_ident p =
  match cur p with
  | Token.IDENT name ->
      advance p;
      name
  | t -> error (cur_loc p) "expected identifier but found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let parse_type p : Ast.ty =
  let base =
    match cur p with
    | Token.KW_INT -> Ast.TInt
    | Token.KW_FLOAT -> Ast.TFloat
    | Token.KW_BOOL -> Ast.TBool
    | Token.KW_UNIT -> Ast.TUnit
    | t -> error (cur_loc p) "expected a type but found '%s'" (Token.to_string t)
  in
  advance p;
  let ty = ref base in
  while cur p = Token.LBRACKET && fst p.toks.(p.idx + 1) = Token.RBRACKET do
    advance p;
    advance p;
    ty := Ast.TArr !ty
  done;
  !ty

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr p : Ast.expr = parse_or p

and parse_or p =
  let lhs = ref (parse_and p) in
  while cur p = Token.OROR do
    let loc = cur_loc p in
    advance p;
    let rhs = parse_and p in
    lhs := Ast.mk_expr ~loc (Ast.Bin (Ast.Or, !lhs, rhs))
  done;
  !lhs

and parse_and p =
  let lhs = ref (parse_cmp p) in
  while cur p = Token.ANDAND do
    let loc = cur_loc p in
    advance p;
    let rhs = parse_cmp p in
    lhs := Ast.mk_expr ~loc (Ast.Bin (Ast.And, !lhs, rhs))
  done;
  !lhs

and parse_cmp p =
  let lhs = parse_add p in
  let op =
    match cur p with
    | Token.EQEQ -> Some Ast.Eq
    | Token.NEQ -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      let loc = cur_loc p in
      advance p;
      let rhs = parse_add p in
      Ast.mk_expr ~loc (Ast.Bin (op, lhs, rhs))

and parse_add p =
  let lhs = ref (parse_mul p) in
  let rec go () =
    match cur p with
    | Token.PLUS | Token.MINUS ->
        let op = if cur p = Token.PLUS then Ast.Add else Ast.Sub in
        let loc = cur_loc p in
        advance p;
        let rhs = parse_mul p in
        lhs := Ast.mk_expr ~loc (Ast.Bin (op, !lhs, rhs));
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_mul p =
  let lhs = ref (parse_unary p) in
  let rec go () =
    match cur p with
    | Token.STAR | Token.SLASH | Token.PERCENT ->
        let op =
          match cur p with
          | Token.STAR -> Ast.Mul
          | Token.SLASH -> Ast.Div
          | _ -> Ast.Mod
        in
        let loc = cur_loc p in
        advance p;
        let rhs = parse_unary p in
        lhs := Ast.mk_expr ~loc (Ast.Bin (op, !lhs, rhs));
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary p =
  match cur p with
  | Token.MINUS ->
      let loc = cur_loc p in
      advance p;
      let e = parse_unary p in
      Ast.mk_expr ~loc (Ast.Un (Ast.Neg, e))
  | Token.BANG ->
      let loc = cur_loc p in
      advance p;
      let e = parse_unary p in
      Ast.mk_expr ~loc (Ast.Un (Ast.Not, e))
  | _ -> parse_postfix p

and parse_postfix p =
  let e = ref (parse_primary p) in
  while cur p = Token.LBRACKET do
    let loc = cur_loc p in
    advance p;
    let idx = parse_expr p in
    expect p Token.RBRACKET;
    e := Ast.mk_expr ~loc (Ast.Idx (!e, idx))
  done;
  !e

and parse_primary p =
  let loc = cur_loc p in
  match cur p with
  | Token.KW_INT | Token.KW_FLOAT when fst p.toks.(p.idx + 1) = Token.LPAREN
    ->
      (* conversion builtins share their name with the type keywords *)
      let name = if cur p = Token.KW_INT then "int" else "float" in
      advance p;
      advance p;
      let arg = parse_expr p in
      expect p Token.RPAREN;
      Ast.mk_expr ~loc (Ast.Call (name, [ arg ]))
  | Token.INT n ->
      advance p;
      Ast.mk_expr ~loc (Ast.Int n)
  | Token.FLOAT f ->
      advance p;
      Ast.mk_expr ~loc (Ast.Float f)
  | Token.STRING s ->
      advance p;
      Ast.mk_expr ~loc (Ast.Str s)
  | Token.KW_TRUE ->
      advance p;
      Ast.mk_expr ~loc (Ast.Bool true)
  | Token.KW_FALSE ->
      advance p;
      Ast.mk_expr ~loc (Ast.Bool false)
  | Token.LPAREN ->
      advance p;
      let e = parse_expr p in
      expect p Token.RPAREN;
      e
  | Token.KW_NEW ->
      advance p;
      let base =
        match cur p with
        | Token.KW_INT -> Ast.TInt
        | Token.KW_FLOAT -> Ast.TFloat
        | Token.KW_BOOL -> Ast.TBool
        | t ->
            error (cur_loc p) "expected element type after 'new', found '%s'"
              (Token.to_string t)
      in
      advance p;
      let dims = ref [] in
      if cur p <> Token.LBRACKET then
        error (cur_loc p) "expected '[' after 'new %s'" (Ast.string_of_ty base);
      while cur p = Token.LBRACKET do
        advance p;
        let d = parse_expr p in
        expect p Token.RBRACKET;
        dims := d :: !dims
      done;
      Ast.mk_expr ~loc (Ast.NewArr (base, List.rev !dims))
  | Token.IDENT name ->
      advance p;
      if cur p = Token.LPAREN then begin
        advance p;
        let args = ref [] in
        if cur p <> Token.RPAREN then begin
          args := [ parse_expr p ];
          while cur p = Token.COMMA do
            advance p;
            args := parse_expr p :: !args
          done
        end;
        expect p Token.RPAREN;
        Ast.mk_expr ~loc (Ast.Call (name, List.rev !args))
      end
      else Ast.mk_expr ~loc (Ast.Var name)
  | t -> error loc "expected an expression but found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Decompose an expression parsed on the left of '=' into an assignment
   target: a variable with a (possibly empty) index path. *)
let rec lvalue_of_expr (e : Ast.expr) : (string * Ast.expr list) option =
  match e.e with
  | Ast.Var x -> Some (x, [])
  | Ast.Idx (base, idx) -> (
      match lvalue_of_expr base with
      | Some (x, path) -> Some (x, path @ [ idx ])
      | None -> None)
  | _ -> None

let rec parse_stmt p : Ast.stmt =
  let loc = cur_loc p in
  match cur p with
  | Token.LBRACE -> parse_block_stmt p
  | Token.KW_VAR | Token.KW_VAL ->
      let m = if cur p = Token.KW_VAR then Ast.Mut else Ast.Immut in
      advance p;
      let name = expect_ident p in
      expect p Token.COLON;
      let ty = parse_type p in
      expect p Token.EQ;
      let init = parse_expr p in
      expect p Token.SEMI;
      Ast.mk_stmt ~loc (Ast.Decl (m, name, ty, init))
  | Token.KW_IF ->
      advance p;
      expect p Token.LPAREN;
      let cond = parse_expr p in
      expect p Token.RPAREN;
      let then_ = parse_stmt p in
      let else_ =
        if cur p = Token.KW_ELSE then begin
          advance p;
          Some (parse_stmt p)
        end
        else None
      in
      Ast.mk_stmt ~loc (Ast.If (cond, then_, else_))
  | Token.KW_WHILE ->
      advance p;
      expect p Token.LPAREN;
      let cond = parse_expr p in
      expect p Token.RPAREN;
      let body = parse_stmt p in
      Ast.mk_stmt ~loc (Ast.While (cond, body))
  | Token.KW_FOR | Token.KW_FORASYNC ->
      (* forasync (HJ's parallel loop) is sugar: each iteration's body is
         spawned as an async *)
      let is_forasync = cur p = Token.KW_FORASYNC in
      advance p;
      expect p Token.LPAREN;
      let iv = expect_ident p in
      expect p Token.EQ;
      let lo = parse_expr p in
      expect p Token.KW_TO;
      let hi = parse_expr p in
      let by =
        if cur p = Token.KW_BY then begin
          advance p;
          Some (parse_expr p)
        end
        else None
      in
      expect p Token.RPAREN;
      let body = parse_stmt p in
      let body =
        if not is_forasync then body
        else
          Ast.mk_stmt ~loc:body.sloc
            (Ast.Block
               (Ast.mk_block [ Ast.mk_stmt ~loc:body.sloc (Ast.Async body) ]))
      in
      Ast.mk_stmt ~loc (Ast.For (iv, lo, hi, by, body))
  | Token.KW_RETURN ->
      advance p;
      if cur p = Token.SEMI then begin
        advance p;
        Ast.mk_stmt ~loc (Ast.Return None)
      end
      else begin
        let e = parse_expr p in
        expect p Token.SEMI;
        Ast.mk_stmt ~loc (Ast.Return (Some e))
      end
  | Token.KW_ASYNC ->
      advance p;
      let body = parse_stmt p in
      Ast.mk_stmt ~loc (Ast.Async body)
  | Token.KW_FINISH ->
      advance p;
      let body = parse_stmt p in
      Ast.mk_stmt ~loc (Ast.Finish body)
  | Token.KW_ISOLATED ->
      advance p;
      let body = parse_stmt p in
      Ast.mk_stmt ~loc (Ast.Isolated body)
  | _ ->
      let e = parse_expr p in
      if cur p = Token.EQ then begin
        advance p;
        let rhs = parse_expr p in
        expect p Token.SEMI;
        match lvalue_of_expr e with
        | Some (x, path) -> Ast.mk_stmt ~loc (Ast.Assign (x, path, rhs))
        | None -> error loc "left-hand side of '=' is not assignable"
      end
      else begin
        expect p Token.SEMI;
        Ast.mk_stmt ~loc (Ast.Expr e)
      end

and parse_block_stmt p : Ast.stmt =
  let loc = cur_loc p in
  expect p Token.LBRACE;
  let stmts = ref [] in
  while cur p <> Token.RBRACE do
    if cur p = Token.EOF then error loc "unterminated block";
    stmts := parse_stmt p :: !stmts
  done;
  expect p Token.RBRACE;
  Ast.mk_stmt ~loc (Ast.Block (Ast.mk_block (List.rev !stmts)))

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_func p : Ast.func =
  let floc = cur_loc p in
  expect p Token.KW_DEF;
  let fname = expect_ident p in
  expect p Token.LPAREN;
  let params = ref [] in
  if cur p <> Token.RPAREN then begin
    let param () =
      let name = expect_ident p in
      expect p Token.COLON;
      let ty = parse_type p in
      (name, ty)
    in
    params := [ param () ];
    while cur p = Token.COMMA do
      advance p;
      params := param () :: !params
    done
  end;
  expect p Token.RPAREN;
  let ret =
    if cur p = Token.COLON then begin
      advance p;
      parse_type p
    end
    else Ast.TUnit
  in
  match (parse_block_stmt p).s with
  | Ast.Block body -> { Ast.fname; params = List.rev !params; ret; body; floc }
  | _ -> assert false

let parse_global p : Ast.global =
  let gloc = cur_loc p in
  expect p Token.KW_VAR;
  let gname = expect_ident p in
  expect p Token.COLON;
  let gty = parse_type p in
  expect p Token.EQ;
  let ginit = parse_expr p in
  expect p Token.SEMI;
  { Ast.gname; gty; ginit; gloc }

(** [parse_program src] parses a whole Mini-HJ compilation unit.
    @raise Error on syntax errors
    @raise Lexer.Error on lexical errors *)
let parse_program (src : string) : Ast.program =
  let p = { toks = Lexer.tokenize src; idx = 0 } in
  let globals = ref [] in
  let funcs = ref [] in
  let rec go () =
    match cur p with
    | Token.EOF -> ()
    | Token.KW_DEF ->
        funcs := parse_func p :: !funcs;
        go ()
    | Token.KW_VAR ->
        globals := parse_global p :: !globals;
        go ()
    | t ->
        error (cur_loc p) "expected 'def' or 'var' at top level, found '%s'"
          (Token.to_string t)
  in
  go ();
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }
