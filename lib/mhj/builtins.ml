(** Builtin functions shared by the type checker and the interpreter.

    Builtins are ordinary call syntax ([name(args)]) resolved before user
    functions.  [cas] is the one concurrency-aware builtin: it models HJ's
    atomic/isolated vertex-claiming idiom (used by the Spanning Tree
    benchmark), and its array accesses are exempt from race detection. *)

open Ast

type signature = {
  name : string;
  args : ty list;
  ret : ty;
  doc : string;
}

(* [alen] and [print] are polymorphic and handled specially in
   {!Typecheck}; they are listed here for documentation and name lookup. *)
let table : signature list =
  [
    { name = "alen"; args = [ TArr TInt ]; ret = TInt;
      doc = "length of an array (any element type)" };
    { name = "print"; args = [ TStr ]; ret = TUnit;
      doc = "print an int/float/bool/string value on its own line" };
    { name = "work"; args = [ TInt ]; ret = TUnit;
      doc = "consume n abstract cost units (simulated computation)" };
    { name = "cas"; args = [ TArr TInt; TInt; TInt; TInt ]; ret = TBool;
      doc = "atomic compare-and-swap on an int array cell; exempt from race \
             detection" };
    { name = "float"; args = [ TInt ]; ret = TFloat;
      doc = "int to float conversion" };
    { name = "int"; args = [ TFloat ]; ret = TInt;
      doc = "float to int conversion (truncation)" };
    { name = "sqrt"; args = [ TFloat ]; ret = TFloat; doc = "square root" };
    { name = "sin"; args = [ TFloat ]; ret = TFloat; doc = "sine" };
    { name = "cos"; args = [ TFloat ]; ret = TFloat; doc = "cosine" };
    { name = "fabs"; args = [ TFloat ]; ret = TFloat; doc = "absolute value" };
    { name = "pow"; args = [ TFloat; TFloat ]; ret = TFloat;
      doc = "exponentiation" };
    { name = "log"; args = [ TFloat ]; ret = TFloat; doc = "natural log" };
    { name = "exp"; args = [ TFloat ]; ret = TFloat; doc = "exponential" };
  ]

let is_builtin name = List.exists (fun s -> s.name = name) table

let find name = List.find_opt (fun s -> s.name = name) table
