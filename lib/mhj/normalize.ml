(** Normalization: give every statement a home block.

    The static finish-placement pass identifies insertion points as
    (block id, statement range) pairs, so every [async], [finish], branch
    and loop body must be a block.  This pass wraps non-block bodies in
    fresh single-statement blocks.  It is run by {!Front.compile}; all
    later passes may assume normalized form ({!is_normalized}). *)

open Ast

let rec norm_body (st : stmt) : stmt =
  let st = norm_stmt st in
  match st.s with
  | Block _ -> st
  | _ -> mk_stmt ~loc:st.sloc (Block (mk_block [ st ]))

and norm_stmt (st : stmt) : stmt =
  let s =
    match st.s with
    | (Decl _ | Assign _ | Return _ | Expr _) as s -> s
    | If (c, a, b) -> If (c, norm_body a, Option.map norm_body b)
    | While (c, b) -> While (c, norm_body b)
    | For (i, lo, hi, by, b) -> For (i, lo, hi, by, norm_body b)
    | Async b -> Async (norm_body b)
    | Finish b -> Finish (norm_body b)
    | Isolated b -> Isolated (norm_body b)
    | Block b -> Block { b with stmts = List.map norm_stmt b.stmts }
  in
  { st with s }

let normalize (p : program) : program =
  {
    p with
    funcs =
      List.map
        (fun f ->
          { f with body = { f.body with stmts = List.map norm_stmt f.body.stmts } })
        p.funcs;
  }

let rec stmt_normalized (st : stmt) : bool =
  let is_block s = match s.s with Block _ -> true | _ -> false in
  match st.s with
  | Decl _ | Assign _ | Return _ | Expr _ -> true
  | If (_, a, b) ->
      is_block a && stmt_normalized a
      && Option.fold ~none:true ~some:(fun b -> is_block b && stmt_normalized b) b
  | While (_, b) | For (_, _, _, _, b) | Async b | Finish b | Isolated b ->
      is_block b && stmt_normalized b
  | Block b -> List.for_all stmt_normalized b.stmts

(** Whether every compound-statement body in [p] is a block. *)
let is_normalized (p : program) : bool =
  List.for_all (fun f -> List.for_all stmt_normalized f.body.stmts) p.funcs
