(** AST rewrites used by the repair tool.

    - {!strip_finishes} builds the under-synchronized input programs of the
      paper's §7.1 evaluation ("we removed all finish statements from the
      benchmarks");
    - {!insert_finishes} applies the static finish placements computed by
      the repair algorithm: each placement wraps a contiguous range of
      statements of one block in a new [finish] statement. *)

open Ast

(** A static finish placement: wrap statements [lo..hi] (0-based, inclusive)
    of the block identified by [bid]. *)
type placement = { bid : int; lo : int; hi : int }

let pp_placement ppf p = Fmt.pf ppf "finish@@block%d[%d..%d]" p.bid p.lo p.hi

let equal_placement a b = a.bid = b.bid && a.lo = b.lo && a.hi = b.hi

(* ------------------------------------------------------------------ *)
(* Stripping                                                           *)
(* ------------------------------------------------------------------ *)

let rec strip_stmt (st : stmt) : stmt =
  let s =
    match st.s with
    | Finish body -> (strip_stmt body).s
    | Async body -> Async (strip_stmt body)
    | Isolated body -> Isolated (strip_stmt body)
    | If (c, a, b) -> If (c, strip_stmt a, Option.map strip_stmt b)
    | While (c, b) -> While (c, strip_stmt b)
    | For (i, lo, hi, by, b) -> For (i, lo, hi, by, strip_stmt b)
    | Block b -> Block { b with stmts = List.map strip_stmt b.stmts }
    | (Decl _ | Assign _ | Return _ | Expr _) as s -> s
  in
  { st with s }

(** Remove every [finish] statement (bodies stay in place).  Statement and
    block ids of the remaining nodes are preserved. *)
let strip_finishes (p : program) : program =
  {
    p with
    funcs =
      List.map
        (fun f ->
          { f with body = { f.body with stmts = List.map strip_stmt f.body.stmts } })
        p.funcs;
  }

(* ------------------------------------------------------------------ *)
(* Finish insertion                                                    *)
(* ------------------------------------------------------------------ *)

(* Wrap the given (lo, hi) intervals of a statement list in finish blocks.
   Intervals must be pairwise nested or disjoint — this mirrors the
   block-structure of finish and is guaranteed by the DP placement (its
   FinishSet intervals never cross).  Processes top-level intervals left to
   right, recursing into each to apply the contained ones. *)
let rec wrap_intervals (stmts : stmt list) (intervals : (int * int) list) :
    stmt list =
  match intervals with
  | [] -> stmts
  | _ ->
      let sorted =
        List.sort_uniq
          (fun (a1, b1) (a2, b2) ->
            if a1 <> a2 then Int.compare a1 a2 else Int.compare b2 b1)
          intervals
      in
      let arr = Array.of_list stmts in
      let n = Array.length arr in
      List.iter
        (fun (lo, hi) ->
          if lo < 0 || hi >= n || lo > hi then
            invalid_arg
              (Fmt.str "wrap_intervals: interval [%d..%d] out of bounds 0..%d"
                 lo hi (n - 1)))
        sorted;
      (* Partition into top-level intervals and their strictly nested
         children. *)
      let rec split_top = function
        | [] -> []
        | (lo, hi) :: rest ->
            let children, siblings =
              List.partition (fun (l, h) -> l >= lo && h <= hi) rest
            in
            List.iter
              (fun (l, h) ->
                if l <= hi && h > hi then
                  invalid_arg
                    (Fmt.str
                       "wrap_intervals: crossing intervals [%d..%d] and \
                        [%d..%d]"
                       lo hi l h))
              siblings;
            ((lo, hi), children) :: split_top siblings
      in
      let tops = split_top sorted in
      let out = ref [] in
      let cursor = ref 0 in
      List.iter
        (fun ((lo, hi), children) ->
          for i = !cursor to lo - 1 do
            out := arr.(i) :: !out
          done;
          let sub = Array.to_list (Array.sub arr lo (hi - lo + 1)) in
          let children =
            List.filter
              (fun (l, h) -> not (l = lo && h = hi))
              children
            |> List.map (fun (l, h) -> (l - lo, h - lo))
          in
          let wrapped = finish_of_range (wrap_intervals sub children) in
          out := wrapped :: !out;
          cursor := hi + 1)
        tops;
      for i = !cursor to n - 1 do
        out := arr.(i) :: !out
      done;
      List.rev !out

(** Apply a set of static placements to the program.  Placements targeting
    the same block may be nested or disjoint but must not cross.
    @raise Invalid_argument on out-of-range or crossing placements. *)
let insert_finishes (p : program) (placements : placement list) : program =
  let by_bid = Hashtbl.create 8 in
  List.iter
    (fun pl ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_bid pl.bid) in
      Hashtbl.replace by_bid pl.bid ((pl.lo, pl.hi) :: cur))
    placements;
  map_blocks
    (fun b ->
      match Hashtbl.find_opt by_bid b.bid with
      | None -> b
      | Some intervals -> { b with stmts = wrap_intervals b.stmts intervals })
    p

(* ------------------------------------------------------------------ *)
(* Alternative repair rewrites (strategy layer)                        *)
(* ------------------------------------------------------------------ *)

(* Same interval machinery as finish insertion, but each top-level
   interval becomes an [isolated { ... }] section.  Isolation never
   nests (the type checker forbids it), so the intervals of one block
   must be pairwise disjoint. *)
let wrap_isolated (stmts : stmt list) (intervals : (int * int) list) :
    stmt list =
  let sorted =
    List.sort_uniq
      (fun (a1, b1) (a2, b2) ->
        if a1 <> a2 then Int.compare a1 a2 else Int.compare b2 b1)
      intervals
  in
  let rec check = function
    | (_, h1) :: ((l2, _) :: _ as rest) ->
        if l2 <= h1 then
          invalid_arg
            (Fmt.str "wrap_isolated: intervals [..%d] and [%d..] overlap" h1
               l2);
        check rest
    | _ -> ()
  in
  check sorted;
  let arr = Array.of_list stmts in
  let n = Array.length arr in
  let out = ref [] in
  let cursor = ref 0 in
  List.iter
    (fun (lo, hi) ->
      if lo < 0 || hi >= n || lo > hi then
        invalid_arg
          (Fmt.str "wrap_isolated: interval [%d..%d] out of bounds 0..%d" lo
             hi (n - 1));
      for i = !cursor to lo - 1 do
        out := arr.(i) :: !out
      done;
      let sub = Array.to_list (Array.sub arr lo (hi - lo + 1)) in
      out := isolated_of_range sub :: !out;
      cursor := hi + 1)
    sorted;
  for i = !cursor to n - 1 do
    out := arr.(i) :: !out
  done;
  List.rev !out

(** Wrap each placement's statement range in an [isolated { ... }]
    section.  Placements targeting one block must be pairwise disjoint.
    @raise Invalid_argument on out-of-range or overlapping placements. *)
let insert_isolated (p : program) (placements : placement list) : program =
  let by_bid = Hashtbl.create 8 in
  List.iter
    (fun pl ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_bid pl.bid) in
      Hashtbl.replace by_bid pl.bid ((pl.lo, pl.hi) :: cur))
    placements;
  map_blocks
    (fun b ->
      match Hashtbl.find_opt by_bid b.bid with
      | None -> b
      | Some intervals -> { b with stmts = wrap_isolated b.stmts intervals })
    p

(** [elide_asyncs p sids] demotes each [async] statement whose sid is in
    [sids] to inline sequential execution: the wrapper is removed and its
    body block runs in place.  Ids of untouched nodes are preserved. *)
let elide_asyncs (p : program) (sids : int list) : program =
  let target = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace target s ()) sids;
  let rec on_stmt (st : stmt) : stmt =
    let s =
      match st.s with
      | Async body when Hashtbl.mem target st.sid -> (on_stmt body).s
      | Async body -> Async (on_stmt body)
      | Finish body -> Finish (on_stmt body)
      | Isolated body -> Isolated (on_stmt body)
      | If (c, a, b) -> If (c, on_stmt a, Option.map on_stmt b)
      | While (c, b) -> While (c, on_stmt b)
      | For (i, lo, hi, by, b) -> For (i, lo, hi, by, on_stmt b)
      | Block b -> Block { b with stmts = List.map on_stmt b.stmts }
      | (Decl _ | Assign _ | Return _ | Expr _) as s -> s
    in
    { st with s }
  in
  {
    p with
    funcs =
      List.map
        (fun f ->
          { f with body = { f.body with stmts = List.map on_stmt f.body.stmts } })
        p.funcs;
  }

(** Is the expression duplicable into a chunk guard — evaluation-order
    safe and side-effect free when repeated? *)
let duplicable (e : expr) : bool =
  match e.e with Int _ | Var _ -> true | _ -> false

(** [chunk_loop p ~sid ~chunk] splits the [for] loop with statement id
    [sid] into chunks of [chunk] iterations, each wrapped in a [finish]:

    {v
    for (i = lo to hi by s) B
    ==>
    for (c = lo to hi by chunk*s)
      finish
        for (i = c to c + (chunk-1)*s by s)
          if (s > 0 ? i <= hi : i >= hi) B
    v}

    Statement/block ids of the original body are preserved, so races
    re-detected on the chunked program still map to the same static
    points.  Requires a literal (or defaulted) step and a duplicable
    upper bound.
    @raise Invalid_argument if [sid] is not a chunkable [for] or [chunk]
    is not positive. *)
let chunk_loop (p : program) ~(sid : int) ~(chunk : int) : program =
  if chunk <= 0 then invalid_arg "chunk_loop: chunk must be positive";
  let found = ref false in
  let rec on_stmt (st : stmt) : stmt =
    match st.s with
    | For (i, lo, hi, by, body) when st.sid = sid ->
        found := true;
        let step =
          match by with
          | None -> 1
          | Some { e = Int s; _ } -> s
          | Some _ -> invalid_arg "chunk_loop: step is not a literal"
        in
        if step = 0 then invalid_arg "chunk_loop: zero step";
        if not (duplicable hi) then
          invalid_arg "chunk_loop: upper bound is not duplicable";
        let c = "__chunk" ^ string_of_int sid in
        let guard =
          mk_expr
            (Bin ((if step > 0 then Le else Ge), mk_expr (Var i), hi))
        in
        let inner_hi =
          mk_expr (Bin (Add, mk_expr (Var c), mk_expr (Int ((chunk - 1) * step))))
        in
        let inner_body =
          mk_stmt (Block (mk_block [ mk_stmt (If (guard, body, None)) ]))
        in
        let inner_for =
          mk_stmt (For (i, mk_expr (Var c), inner_hi, by, inner_body))
        in
        let outer_body =
          mk_stmt (Block (mk_block [ finish_of_range [ inner_for ] ]))
        in
        {
          st with
          s =
            For
              (c, lo, hi, Some (mk_expr (Int (chunk * step))), outer_body);
        }
    | _ ->
        let s =
          match st.s with
          | Async body -> Async (on_stmt body)
          | Finish body -> Finish (on_stmt body)
          | Isolated body -> Isolated (on_stmt body)
          | If (c, a, b) -> If (c, on_stmt a, Option.map on_stmt b)
          | While (c, b) -> While (c, on_stmt b)
          | For (i, lo, hi, by, b) -> For (i, lo, hi, by, on_stmt b)
          | Block b -> Block { b with stmts = List.map on_stmt b.stmts }
          | (Decl _ | Assign _ | Return _ | Expr _) as s -> s
        in
        { st with s }
  in
  let p' =
    {
      p with
      funcs =
        List.map
          (fun f ->
            {
              f with
              body = { f.body with stmts = List.map on_stmt f.body.stmts };
            })
          p.funcs;
    }
  in
  if not !found then
    invalid_arg (Fmt.str "chunk_loop: no for loop with sid %d" sid);
  p'

(* ------------------------------------------------------------------ *)
(* Test-input variation                                                *)
(* ------------------------------------------------------------------ *)

(** [set_global_int p name v] returns [p] with global [name]'s initializer
    replaced by the literal [v] — how a test harness varies the program's
    input without disturbing any statement or block id (so placements
    computed under one input apply to the program under another).
    @raise Invalid_argument if there is no int global called [name]. *)
let set_global_int (p : program) (name : string) (v : int) : program =
  let found = ref false in
  let globals =
    List.map
      (fun (g : global) ->
        if g.gname = name then begin
          if not (equal_ty g.gty TInt) then
            invalid_arg
              (Fmt.str "set_global_int: global '%s' has type %s" name
                 (string_of_ty g.gty));
          found := true;
          { g with ginit = mk_expr ~loc:g.ginit.eloc (Int v) }
        end
        else g)
      p.globals
  in
  if not !found then
    invalid_arg (Fmt.str "set_global_int: no global named '%s'" name);
  { p with globals }
