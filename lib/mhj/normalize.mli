(** Normalization: wrap every non-block body of [async]/[finish]/branch/
    loop statements in a block, so every statement lives in exactly one
    block — the contract of the static finish-placement pass.  Run by
    {!Front.compile}. *)

val normalize : Ast.program -> Ast.program

(** Does every compound-statement body satisfy the block contract? *)
val is_normalized : Ast.program -> bool
