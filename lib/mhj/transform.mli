(** AST rewrites used by the repair tool: finish stripping (the paper's
    §7.1 buggy-program construction) and finish insertion (applying the
    computed static placements). *)

(** A static finish placement: wrap statements [lo..hi] (0-based,
    inclusive) of the block identified by [bid]. *)
type placement = { bid : int; lo : int; hi : int }

val pp_placement : placement Fmt.t

val equal_placement : placement -> placement -> bool

(** Remove every [finish] statement (bodies stay in place); remaining
    statement/block ids are preserved. *)
val strip_finishes : Ast.program -> Ast.program

(** Wrap the given statement intervals of a statement list in finish
    blocks; intervals must be pairwise nested or disjoint.
    @raise Invalid_argument on crossing or out-of-range intervals. *)
val wrap_intervals : Ast.stmt list -> (int * int) list -> Ast.stmt list

(** Apply a set of placements.  Placements targeting one block may be
    nested or disjoint but must not cross.
    @raise Invalid_argument on out-of-range or crossing placements. *)
val insert_finishes : Ast.program -> placement list -> Ast.program

(** Wrap each placement's statement range in an [isolated { ... }]
    section.  Placements targeting one block must be pairwise disjoint.
    @raise Invalid_argument on out-of-range or overlapping placements. *)
val insert_isolated : Ast.program -> placement list -> Ast.program

(** Demote each [async] whose statement id is listed to inline sequential
    execution (the wrapper is removed; its body block runs in place). *)
val elide_asyncs : Ast.program -> int list -> Ast.program

(** Is the expression duplicable into a chunk guard (literal or
    variable)? *)
val duplicable : Ast.expr -> bool

(** Split the [for] loop with statement id [sid] into [chunk]-iteration
    sub-loops, each wrapped in a [finish]; body ids are preserved.
    @raise Invalid_argument if the loop is missing, its step is not a
    literal, its upper bound is not duplicable, or [chunk <= 0]. *)
val chunk_loop : Ast.program -> sid:int -> chunk:int -> Ast.program

(** [set_global_int p name v] replaces global [name]'s initializer with the
    literal [v] — test-input variation that leaves every statement and
    block id intact, so placements computed under one input apply to the
    program under another.
    @raise Invalid_argument if there is no int global called [name]. *)
val set_global_int : Ast.program -> string -> int -> Ast.program
