(** Serial elision (paper Problem 1, condition 4): erase every [async] and
    [finish] wrapper.  The repaired program must be observationally
    equivalent to this program. *)

val elide_stmt : Ast.stmt -> Ast.stmt

val elide : Ast.program -> Ast.program
