(** Source locations: 1-based [line]/[col] plus absolute [offset]. *)

type t = { line : int; col : int; offset : int }

(** The location of generated (not-from-source) nodes. *)
val dummy : t

val is_dummy : t -> bool

val make : line:int -> col:int -> offset:int -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : t Fmt.t

val to_string : t -> string
