(** Serial elision: erase all parallel constructs.

    The paper's correctness criterion (Problem 1, condition 4) is that the
    repaired program must have the same semantics as its serial elision —
    the program with [async] and [finish] keywords deleted.  This module
    computes that elision; [test/test_driver.ml] checks observational
    equivalence between repaired programs and their elisions. *)

open Ast

let rec elide_stmt (st : stmt) : stmt =
  let s =
    match st.s with
    | Async body -> (elide_stmt body).s
    | Finish body -> (elide_stmt body).s
    | Isolated body -> (elide_stmt body).s
    | If (c, a, b) -> If (c, elide_stmt a, Option.map elide_stmt b)
    | While (c, b) -> While (c, elide_stmt b)
    | For (i, lo, hi, by, b) -> For (i, lo, hi, by, elide_stmt b)
    | Block b -> Block { b with stmts = List.map elide_stmt b.stmts }
    | (Decl _ | Assign _ | Return _ | Expr _) as s -> s
  in
  { st with s }

(** [elide p] is [p] with every [async] and [finish] wrapper removed (their
    bodies are kept in place). *)
let elide (p : program) : program =
  {
    p with
    funcs =
      List.map
        (fun f ->
          { f with body = { f.body with stmts = List.map elide_stmt f.body.stmts } })
        p.funcs;
  }
