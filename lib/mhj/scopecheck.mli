(** Declaration-visibility constraint on finish insertion: wrapping
    statements in a nested [finish { ... }] block must not hide a
    [var]/[val] declaration from later statements of the block. *)

type t = { blocks : (int, Ast.stmt array) Hashtbl.t }
(** Block id to statement array, for position-based queries. *)

val build : Ast.program -> t

(** [wrap_ok t ~bid ~lo ~hi] — may statements [lo..hi] of block [bid] be
    moved into a nested block without breaking a later reference to a
    declaration made inside the range?  Conservative (no shadowing
    analysis); [false] for unknown blocks or invalid ranges. *)
val wrap_ok : t -> bid:int -> lo:int -> hi:int -> bool
