(** Front door for the Mini-HJ front end. *)

(** Parse, type-check and normalize a compilation unit.  Every later pass
    (interpreter, repair) expects programs produced here.
    @raise Lexer.Error on lexical errors
    @raise Parser.Error on syntax errors
    @raise Typecheck.Error on type errors *)
val compile : ?require_main:bool -> string -> Ast.program

(** Render a front-end exception to a located human-readable message;
    [None] for foreign exceptions. *)
val explain_error : exn -> string option
