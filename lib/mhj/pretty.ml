(** Pretty-printer for Mini-HJ.

    Output is valid Mini-HJ that re-parses to a structurally identical
    program (round-trip property tested in [test/test_mhj.ml]).  The repair
    driver uses it to emit the repaired program with its newly inserted
    [finish] statements. *)

open Ast

let prec_of_binop = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let rec pp_expr_prec prec ppf (e : expr) =
  match e.e with
  | Int n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | Float f ->
      (* %h-style output is not re-parseable; use a decimal form. *)
      let s = Fmt.str "%.17g" f in
      let s =
        if String.contains s '.' || String.contains s 'e'
           || String.contains s 'n' (* nan/inf *)
        then s
        else s ^ ".0"
      in
      Fmt.string ppf s
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.pf ppf "%S" s
  | Var x -> Fmt.string ppf x
  | Bin (op, a, b) ->
      let p = prec_of_binop op in
      (* Comparisons and equality are non-associative in the grammar, so a
         same-precedence operand needs parentheses on the left as well. *)
      let left_prec =
        match op with Eq | Ne | Lt | Le | Gt | Ge -> p + 1 | _ -> p
      in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_expr_prec left_prec) a (string_of_binop op)
          (pp_expr_prec (p + 1)) b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Un (op, a) -> Fmt.pf ppf "%s%a" (string_of_unop op) (pp_expr_prec 6) a
  | Idx (a, i) -> Fmt.pf ppf "%a[%a]" (pp_expr_prec 7) a (pp_expr_prec 0) i
  | Call (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") (pp_expr_prec 0)) args
  | NewArr (base, dims) ->
      Fmt.pf ppf "new %a%a" pp_ty base
        (Fmt.list ~sep:Fmt.nop (fun ppf d -> Fmt.pf ppf "[%a]" (pp_expr_prec 0) d))
        dims

let pp_expr ppf e = pp_expr_prec 0 ppf e

let indent n = String.make (2 * n) ' '

let rec pp_stmt depth ppf (st : stmt) =
  let ind = indent depth in
  match st.s with
  | Decl (m, x, ty, init) ->
      Fmt.pf ppf "%s%s %s: %a = %a;" ind
        (match m with Mut -> "var" | Immut -> "val")
        x pp_ty ty pp_expr init
  | Assign (x, path, rhs) ->
      Fmt.pf ppf "%s%s%a = %a;" ind x
        (Fmt.list ~sep:Fmt.nop (fun ppf i -> Fmt.pf ppf "[%a]" pp_expr i))
        path pp_expr rhs
  | If (c, a, b) -> (
      Fmt.pf ppf "%sif (%a)@\n%a" ind pp_expr c (pp_stmt (depth + 1)) a;
      match b with
      | None -> ()
      | Some b -> Fmt.pf ppf "@\n%selse@\n%a" ind (pp_stmt (depth + 1)) b)
  | While (c, body) ->
      Fmt.pf ppf "%swhile (%a)@\n%a" ind pp_expr c (pp_stmt (depth + 1)) body
  | For (i, lo, hi, by, body) ->
      Fmt.pf ppf "%sfor (%s = %a to %a%a)@\n%a" ind i pp_expr lo pp_expr hi
        (Fmt.option (fun ppf e -> Fmt.pf ppf " by %a" pp_expr e))
        by
        (pp_stmt (depth + 1))
        body
  | Return None -> Fmt.pf ppf "%sreturn;" ind
  | Return (Some e) -> Fmt.pf ppf "%sreturn %a;" ind pp_expr e
  | Async body -> Fmt.pf ppf "%sasync@\n%a" ind (pp_stmt (depth + 1)) body
  | Finish body -> Fmt.pf ppf "%sfinish@\n%a" ind (pp_stmt (depth + 1)) body
  | Isolated body ->
      Fmt.pf ppf "%sisolated@\n%a" ind (pp_stmt (depth + 1)) body
  | Block b -> pp_block depth ppf b
  | Expr e -> Fmt.pf ppf "%s%a;" ind pp_expr e

and pp_block depth ppf (b : block) =
  let ind = indent (depth - 1) in
  Fmt.pf ppf "%s{" ind;
  List.iter (fun st -> Fmt.pf ppf "@\n%a" (pp_stmt depth) st) b.stmts;
  Fmt.pf ppf "@\n%s}" ind

let pp_func ppf (f : func) =
  let pp_param ppf (x, ty) = Fmt.pf ppf "%s: %a" x pp_ty ty in
  Fmt.pf ppf "def %s(%a)%a@\n%a" f.fname
    (Fmt.list ~sep:(Fmt.any ", ") pp_param)
    f.params
    (fun ppf ret ->
      match ret with TUnit -> () | t -> Fmt.pf ppf ": %a" pp_ty t)
    f.ret (pp_block 1) f.body

let pp_global ppf (g : global) =
  Fmt.pf ppf "var %s: %a = %a;" g.gname pp_ty g.gty pp_expr g.ginit

let pp_program ppf (p : program) =
  List.iter (fun g -> Fmt.pf ppf "%a@\n@\n" pp_global g) p.globals;
  let first = ref true in
  List.iter
    (fun f ->
      if not !first then Fmt.pf ppf "@\n@\n";
      first := false;
      pp_func ppf f)
    p.funcs;
  Fmt.pf ppf "@\n"

(** Render a whole program back to concrete syntax. *)
let program_to_string (p : program) : string = Fmt.str "%a" pp_program p

let expr_to_string (e : expr) : string = Fmt.str "%a" pp_expr e

let stmt_to_string (st : stmt) : string = Fmt.str "%a" (pp_stmt 0) st
