(** Tokens produced by the Mini-HJ lexer. *)

type t =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_DEF | KW_VAR | KW_VAL | KW_IF | KW_ELSE | KW_WHILE | KW_FOR
  | KW_TO | KW_BY | KW_RETURN | KW_ASYNC | KW_FINISH | KW_FORASYNC
  | KW_ISOLATED
  | KW_NEW
  | KW_TRUE | KW_FALSE
  | KW_INT | KW_FLOAT | KW_BOOL | KW_UNIT
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ          (* = *)
  | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | EOF

let keyword_of_string = function
  | "def" -> Some KW_DEF
  | "var" -> Some KW_VAR
  | "val" -> Some KW_VAL
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "to" -> Some KW_TO
  | "by" -> Some KW_BY
  | "return" -> Some KW_RETURN
  | "async" -> Some KW_ASYNC
  | "forasync" -> Some KW_FORASYNC
  | "finish" -> Some KW_FINISH
  | "isolated" -> Some KW_ISOLATED
  | "new" -> Some KW_NEW
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "int" -> Some KW_INT
  | "float" -> Some KW_FLOAT
  | "bool" -> Some KW_BOOL
  | "unit" -> Some KW_UNIT
  | _ -> None

let to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_DEF -> "def" | KW_VAR -> "var" | KW_VAL -> "val" | KW_IF -> "if"
  | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_FOR -> "for"
  | KW_TO -> "to" | KW_BY -> "by" | KW_RETURN -> "return"
  | KW_ASYNC -> "async" | KW_FINISH -> "finish"
  | KW_ISOLATED -> "isolated"
  | KW_FORASYNC -> "forasync" | KW_NEW -> "new"
  | KW_TRUE -> "true" | KW_FALSE -> "false"
  | KW_INT -> "int" | KW_FLOAT -> "float" | KW_BOOL -> "bool"
  | KW_UNIT -> "unit"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COMMA -> "," | SEMI -> ";" | COLON -> ":"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | EQ -> "=" | EQEQ -> "==" | NEQ -> "!=" | LT -> "<" | LE -> "<="
  | GT -> ">" | GE -> ">=" | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | EOF -> "<eof>"
