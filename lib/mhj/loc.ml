(** Source locations for Mini-HJ programs.

    A location is a [line]/[col] pair (both 1-based) plus the absolute
    character [offset] into the source buffer.  Locations are attached to
    every token, statement and expression so that diagnostics and the
    repair report can point back into the original source. *)

type t = { line : int; col : int; offset : int }

let dummy = { line = 0; col = 0; offset = -1 }

let is_dummy t = t.offset < 0

let make ~line ~col ~offset = { line; col; offset }

let compare a b = Int.compare a.offset b.offset

let equal a b = compare a b = 0

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<generated>"
  else Fmt.pf ppf "%d:%d" t.line t.col

let to_string t = Fmt.str "%a" pp t
