(** Type checker for Mini-HJ.

    Besides conventional typing, enforces the structured-parallel
    well-formedness rules the repair algorithms rely on: async bodies may
    read outer locals only if immutable ([val]) and never assign them (the
    HJ "captured variables are final" rule, confining shared mutable state
    to globals and array cells); [return] may not cross an [async]
    boundary; [for] induction variables are immutable. *)

exception Error of string * Loc.t

(** Check a whole program.
    @param require_main require a parameterless, unit-returning [main]
      (default [true]).
    @raise Error on the first type error. *)
val check_program : ?require_main:bool -> Ast.program -> unit
