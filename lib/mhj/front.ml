(** Convenience front door: parse + type-check in one call. *)

(** [compile src] parses and type-checks a Mini-HJ compilation unit.
    @raise Lexer.Error | Parser.Error | Typecheck.Error with a located
    message on ill-formed input. *)
let compile ?(require_main = true) (src : string) : Ast.program =
  let p = Obs.Trace.with_span "parse" (fun () -> Parser.parse_program src) in
  Obs.Trace.with_span "typecheck" (fun () ->
      Typecheck.check_program ~require_main p);
  Obs.Trace.with_span "normalize" (fun () -> Normalize.normalize p)

(** Render a located front-end error to a human-readable string. *)
let explain_error = function
  | Lexer.Error (m, l) -> Some (Fmt.str "lexical error at %a: %s" Loc.pp l m)
  | Parser.Error (m, l) -> Some (Fmt.str "syntax error at %a: %s" Loc.pp l m)
  | Typecheck.Error (m, l) -> Some (Fmt.str "type error at %a: %s" Loc.pp l m)
  | _ -> None
