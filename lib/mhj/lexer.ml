(** Hand-written lexer for Mini-HJ.

    Turns a source string into an array of located tokens.  Comments are
    [// ... end-of-line] and [/* ... */] (non-nesting), as in HJ/Java. *)

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun m -> raise (Error (m, loc))) fmt

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make_cursor src = { src; pos = 0; line = 1; col = 1 }

let loc_of c = Loc.make ~line:c.line ~col:c.col ~offset:c.pos

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let peek2 c =
  if c.pos + 1 < String.length c.src then Some c.src.[c.pos + 1] else None

let advance c =
  (match peek c with
  | Some '\n' ->
      c.line <- c.line + 1;
      c.col <- 1
  | Some _ -> c.col <- c.col + 1
  | None -> ());
  c.pos <- c.pos + 1

let is_digit ch = ch >= '0' && ch <= '9'

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_ident_char ch = is_ident_start ch || is_digit ch

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance c;
      skip_ws c
  | Some '/' when peek2 c = Some '/' ->
      while peek c <> None && peek c <> Some '\n' do
        advance c
      done;
      skip_ws c
  | Some '/' when peek2 c = Some '*' ->
      let start = loc_of c in
      advance c;
      advance c;
      let rec close () =
        match peek c with
        | None -> error start "unterminated comment"
        | Some '*' when peek2 c = Some '/' ->
            advance c;
            advance c
        | Some _ ->
            advance c;
            close ()
      in
      close ();
      skip_ws c
  | _ -> ()

let lex_number c =
  let start = c.pos in
  let loc = loc_of c in
  while (match peek c with Some ch -> is_digit ch | None -> false) do
    advance c
  done;
  let is_float =
    match (peek c, peek2 c) with
    | Some '.', Some ch when is_digit ch -> true
    | Some '.', (None | Some _) ->
        (* trailing dot: treat "1." as a float too *)
        true
    | _ -> false
  in
  if is_float then begin
    advance c;
    while (match peek c with Some ch -> is_digit ch | None -> false) do
      advance c
    done;
    (match peek c with
    | Some ('e' | 'E') ->
        advance c;
        (match peek c with Some ('+' | '-') -> advance c | _ -> ());
        while (match peek c with Some ch -> is_digit ch | None -> false) do
          advance c
        done
    | _ -> ());
    let text = String.sub c.src start (c.pos - start) in
    match float_of_string_opt text with
    | Some f -> (Token.FLOAT f, loc)
    | None -> error loc "malformed float literal %S" text
  end
  else
    let text = String.sub c.src start (c.pos - start) in
    match int_of_string_opt text with
    | Some n -> (Token.INT n, loc)
    | None -> error loc "malformed int literal %S" text

let lex_ident c =
  let start = c.pos in
  let loc = loc_of c in
  while (match peek c with Some ch -> is_ident_char ch | None -> false) do
    advance c
  done;
  let text = String.sub c.src start (c.pos - start) in
  match Token.keyword_of_string text with
  | Some kw -> (kw, loc)
  | None -> (Token.IDENT text, loc)

let lex_string c =
  let loc = loc_of c in
  advance c;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error loc "unterminated string literal"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance c;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance c;
            go ()
        | Some ('"' | '\\') ->
            Buffer.add_char buf c.src.[c.pos];
            advance c;
            go ()
        | Some ch -> error (loc_of c) "unknown escape '\\%c'" ch
        | None -> error loc "unterminated string literal")
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ();
  (Token.STRING (Buffer.contents buf), loc)

let next_token c : Token.t * Loc.t =
  skip_ws c;
  let loc = loc_of c in
  match peek c with
  | None -> (Token.EOF, loc)
  | Some ch when is_digit ch -> lex_number c
  | Some ch when is_ident_start ch -> lex_ident c
  | Some '"' -> lex_string c
  | Some ch ->
      let two tok =
        advance c;
        advance c;
        (tok, loc)
      in
      let one tok =
        advance c;
        (tok, loc)
      in
      let open Token in
      (match (ch, peek2 c) with
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NEQ
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '=', _ -> one EQ
      | '!', _ -> one BANG
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ',', _ -> one COMMA
      | ';', _ -> one SEMI
      | ':', _ -> one COLON
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | _ -> error loc "unexpected character '%c'" ch)

(** [tokenize src] lexes the whole buffer; the result always ends with a
    single [EOF] token. *)
let tokenize (src : string) : (Token.t * Loc.t) array =
  let c = make_cursor src in
  let acc = ref [] in
  let rec go () =
    let ((tok, _) as t) = next_token c in
    acc := t :: !acc;
    if tok <> Token.EOF then go ()
  in
  go ();
  Array.of_list (List.rev !acc)
