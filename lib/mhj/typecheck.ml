(** Type checker for Mini-HJ.

    Besides conventional typing, this pass enforces the structured-parallel
    well-formedness rules the repair algorithms rely on:

    - an [async] body may read outer locals only if they are immutable
      ([val]) — the HJ "captured variables are final" rule — and may never
      assign to an outer local.  Shared mutable state is therefore exactly
      the set of globals and array cells, which is what the race detector
      monitors;
    - [return] may not cross an [async] boundary;
    - a [for] induction variable is immutable in the loop body. *)

open Ast

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun m -> raise (Error (m, loc))) fmt

type binding = { bty : ty; bmut : mutability; basync : int }
(** [basync] is the async-nesting depth at the point of declaration; a
    reference from a deeper async depth crosses a task boundary. *)

type env = {
  globals : (string, ty) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  mutable scopes : (string * binding) list list;
  mutable async_depth : int;
}

let lookup_local env x =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
        match List.assoc_opt x frame with
        | Some b -> Some b
        | None -> go rest)
  in
  go env.scopes

let declare env loc x b =
  (match env.scopes with
  | frame :: _ when List.mem_assoc x frame ->
      error loc "variable '%s' is already declared in this block" x
  | _ -> ());
  match env.scopes with
  | frame :: rest -> env.scopes <- ((x, b) :: frame) :: rest
  | [] -> env.scopes <- [ [ (x, b) ] ]

let in_scope env f =
  env.scopes <- [] :: env.scopes;
  let finally () = env.scopes <- List.tl env.scopes in
  Fun.protect ~finally f

let is_numeric = function TInt | TFloat -> true | _ -> false

let rec type_expr env (e : expr) : ty =
  match e.e with
  | Int _ -> TInt
  | Float _ -> TFloat
  | Bool _ -> TBool
  | Str _ -> TStr
  | Var x -> (
      match lookup_local env x with
      | Some b ->
          if b.basync < env.async_depth && b.bmut = Mut then
            error e.eloc
              "mutable local '%s' cannot be referenced inside an async \
               (declare it with 'val', or use an array/global)"
              x;
          b.bty
      | None -> (
          match Hashtbl.find_opt env.globals x with
          | Some ty -> ty
          | None -> error e.eloc "unbound variable '%s'" x))
  | Bin (op, a, b) -> (
      let ta = type_expr env a in
      let tb = type_expr env b in
      let same () =
        if not (equal_ty ta tb) then
          error e.eloc "operator '%s' applied to %s and %s"
            (string_of_binop op) (string_of_ty ta) (string_of_ty tb)
      in
      match op with
      | Add | Sub | Mul | Div | Mod ->
          same ();
          if not (is_numeric ta) then
            error e.eloc "operator '%s' expects int or float operands"
              (string_of_binop op);
          if op = Mod && ta <> TInt then
            error e.eloc "operator '%%' expects int operands";
          ta
      | Lt | Le | Gt | Ge ->
          same ();
          if not (is_numeric ta) then
            error e.eloc "comparison expects int or float operands";
          TBool
      | Eq | Ne ->
          same ();
          (match ta with
          | TInt | TFloat | TBool -> ()
          | _ -> error e.eloc "equality is defined on int, float and bool");
          TBool
      | And | Or ->
          same ();
          if ta <> TBool then
            error e.eloc "operator '%s' expects bool operands"
              (string_of_binop op);
          TBool)
  | Un (Neg, a) ->
      let ta = type_expr env a in
      if not (is_numeric ta) then error e.eloc "unary '-' expects int or float";
      ta
  | Un (Not, a) ->
      let ta = type_expr env a in
      if ta <> TBool then error e.eloc "unary '!' expects bool";
      TBool
  | Idx (a, i) -> (
      let ta = type_expr env a in
      let ti = type_expr env i in
      if ti <> TInt then error i.eloc "array index must be int";
      match ta with
      | TArr t -> t
      | t -> error e.eloc "indexing a non-array value of type %s"
               (string_of_ty t))
  | NewArr (base, dims) ->
      List.iter
        (fun d ->
          if type_expr env d <> TInt then
            error d.eloc "array dimension must be int")
        dims;
      List.fold_left (fun t _ -> TArr t) base dims
  | Call (name, args) -> type_call env e.eloc name args

and type_call env loc name args : ty =
  let targs = List.map (fun a -> (type_expr env a, a.eloc)) args in
  match name with
  | "alen" -> (
      match targs with
      | [ (TArr _, _) ] -> TInt
      | [ (t, l) ] -> error l "alen expects an array, got %s" (string_of_ty t)
      | _ -> error loc "alen expects exactly one argument")
  | "print" -> (
      match targs with
      | [ ((TInt | TFloat | TBool | TStr), _) ] -> TUnit
      | [ (t, l) ] -> error l "print cannot print a value of type %s"
                        (string_of_ty t)
      | _ -> error loc "print expects exactly one argument")
  | _ -> (
      match Builtins.find name with
      | Some sg ->
          if List.length targs <> List.length sg.args then
            error loc "builtin '%s' expects %d argument(s), got %d" name
              (List.length sg.args) (List.length targs);
          List.iter2
            (fun expected (got, l) ->
              if not (equal_ty expected got) then
                error l "builtin '%s': expected %s, got %s" name
                  (string_of_ty expected) (string_of_ty got))
            sg.args targs;
          sg.ret
      | None -> (
          match Hashtbl.find_opt env.funcs name with
          | None -> error loc "unknown function '%s'" name
          | Some f ->
              if List.length targs <> List.length f.params then
                error loc "function '%s' expects %d argument(s), got %d" name
                  (List.length f.params) (List.length targs);
              List.iter2
                (fun (px, pty) (got, l) ->
                  if not (equal_ty pty got) then
                    error l "function '%s', parameter '%s': expected %s, got %s"
                      name px (string_of_ty pty) (string_of_ty got))
                f.params targs;
              f.ret))

let rec check_stmt env ~(ret : ty) (st : stmt) : unit =
  match st.s with
  | Decl (m, x, ty, init) ->
      (match ty with
      | TStr -> error st.sloc "variables of type str are not allowed"
      | _ -> ());
      let ti = type_expr env init in
      if not (equal_ty ti ty) then
        error st.sloc "initializer of '%s' has type %s but was declared %s" x
          (string_of_ty ti) (string_of_ty ty);
      declare env st.sloc x { bty = ty; bmut = m; basync = env.async_depth }
  | Assign (x, path, rhs) ->
      let bty, crosses_async =
        match lookup_local env x with
        | Some b ->
            if path = [] then begin
              if b.bmut = Immut then
                error st.sloc "cannot assign to immutable 'val %s'" x;
              if b.basync < env.async_depth then
                error st.sloc
                  "cannot assign to outer local '%s' inside an async" x
            end
            else if b.basync < env.async_depth && b.bmut = Mut then
              error st.sloc
                "mutable local '%s' cannot be referenced inside an async" x;
            (b.bty, false)
        | None -> (
            match Hashtbl.find_opt env.globals x with
            | Some ty -> (ty, false)
            | None -> error st.sloc "unbound variable '%s'" x)
      in
      ignore crosses_async;
      let cell_ty =
        List.fold_left
          (fun t idx ->
            let ti = type_expr env idx in
            if ti <> TInt then error idx.eloc "array index must be int";
            match t with
            | TArr t -> t
            | t ->
                error idx.eloc "indexing a non-array value of type %s"
                  (string_of_ty t))
          bty path
      in
      let tr = type_expr env rhs in
      if not (equal_ty tr cell_ty) then
        error st.sloc "assignment to '%s': expected %s, got %s" x
          (string_of_ty cell_ty) (string_of_ty tr)
  | If (c, a, b) ->
      if type_expr env c <> TBool then error c.eloc "if condition must be bool";
      in_scope env (fun () -> check_stmt env ~ret a);
      Option.iter (fun b -> in_scope env (fun () -> check_stmt env ~ret b)) b
  | While (c, body) ->
      if type_expr env c <> TBool then
        error c.eloc "while condition must be bool";
      in_scope env (fun () -> check_stmt env ~ret body)
  | For (i, lo, hi, by, body) ->
      if type_expr env lo <> TInt then error lo.eloc "for bounds must be int";
      if type_expr env hi <> TInt then error hi.eloc "for bounds must be int";
      Option.iter
        (fun e ->
          if type_expr env e <> TInt then error e.eloc "for step must be int")
        by;
      in_scope env (fun () ->
          declare env st.sloc i
            { bty = TInt; bmut = Immut; basync = env.async_depth };
          check_stmt env ~ret body)
  | Return eo ->
      if env.async_depth > 0 then
        error st.sloc "return may not cross an async boundary";
      let t = match eo with None -> TUnit | Some e -> type_expr env e in
      if not (equal_ty t ret) then
        error st.sloc "return type mismatch: expected %s, got %s"
          (string_of_ty ret) (string_of_ty t)
  | Async body ->
      env.async_depth <- env.async_depth + 1;
      let finally () = env.async_depth <- env.async_depth - 1 in
      Fun.protect ~finally (fun () ->
          in_scope env (fun () -> check_stmt env ~ret body))
  | Finish body -> in_scope env (fun () -> check_stmt env ~ret body)
  | Isolated body ->
      (* Critical sections are strictly sequential: spawning inside one
         could deadlock against the section's mutual exclusion, and a
         join would serialize unrelated tasks behind the lock. *)
      let rec no_calls (e : expr) =
        match e.e with
        | Int _ | Float _ | Bool _ | Str _ | Var _ -> ()
        | Bin (_, a, b) ->
            no_calls a;
            no_calls b
        | Un (_, a) -> no_calls a
        | Idx (a, i) ->
            no_calls a;
            no_calls i
        | NewArr (_, dims) -> List.iter no_calls dims
        | Call (name, args) ->
            (* A user function could transitively spawn (breaking the
               section's atomicity); builtins are leaf operations. *)
            if not (Builtins.is_builtin name) then
              error e.eloc
                "call to user function '%s' is not allowed inside isolated"
                name;
            List.iter no_calls args
      in
      let rec no_tasks (s : stmt) =
        match s.s with
        | Async _ -> error s.sloc "async is not allowed inside isolated"
        | Finish _ -> error s.sloc "finish is not allowed inside isolated"
        | Isolated _ -> error s.sloc "isolated sections may not nest"
        | Decl (_, _, _, init) -> no_calls init
        | Assign (_, path, rhs) ->
            List.iter no_calls path;
            no_calls rhs
        | Return (Some e) | Expr e -> no_calls e
        | Return None -> ()
        | If (c, a, b) ->
            no_calls c;
            no_tasks a;
            Option.iter no_tasks b
        | While (c, b) ->
            no_calls c;
            no_tasks b
        | For (_, lo, hi, by, b) ->
            no_calls lo;
            no_calls hi;
            Option.iter no_calls by;
            no_tasks b
        | Block b -> List.iter no_tasks b.stmts
      in
      no_tasks body;
      in_scope env (fun () -> check_stmt env ~ret body)
  | Block b ->
      in_scope env (fun () -> List.iter (check_stmt env ~ret) b.stmts)
  | Expr e -> ignore (type_expr env e)

let check_func env (f : func) : unit =
  env.scopes <- [ [] ];
  env.async_depth <- 0;
  List.iter
    (fun (x, ty) ->
      declare env f.floc x { bty = ty; bmut = Immut; basync = 0 })
    f.params;
  in_scope env (fun () -> List.iter (check_stmt env ~ret:f.ret) f.body.stmts)

(** Type-check a whole program.

    @param require_main require a [def main()] with no parameters and unit
      return type (default [true]).
    @raise Error on the first type error found. *)
let check_program ?(require_main = true) (p : program) : unit =
  let env =
    {
      globals = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      scopes = [];
      async_depth = 0;
    }
  in
  List.iter
    (fun (g : global) ->
      if Hashtbl.mem env.globals g.gname then
        error g.gloc "duplicate global '%s'" g.gname;
      (match g.gty with
      | TStr -> error g.gloc "globals of type str are not allowed"
      | _ -> ());
      Hashtbl.add env.globals g.gname g.gty)
    p.globals;
  List.iter
    (fun (f : func) ->
      if Builtins.is_builtin f.fname then
        error f.floc "function '%s' shadows a builtin" f.fname;
      if Hashtbl.mem env.funcs f.fname then
        error f.floc "duplicate function '%s'" f.fname;
      Hashtbl.add env.funcs f.fname f)
    p.funcs;
  (* Global initializers run in the root task before main: plain exprs. *)
  List.iter
    (fun (g : global) ->
      let t = type_expr env g.ginit in
      if not (equal_ty t g.gty) then
        error g.gloc "initializer of global '%s' has type %s but was declared %s"
          g.gname (string_of_ty t) (string_of_ty g.gty))
    p.globals;
  List.iter (check_func env) p.funcs;
  if require_main then
    match find_func p "main" with
    | Some f ->
        if f.params <> [] then error f.floc "main must take no parameters";
        if f.ret <> TUnit then error f.floc "main must return unit"
    | None -> error Loc.dummy "program has no 'main' function"
