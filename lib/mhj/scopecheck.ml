(** Declaration-visibility constraint on finish insertion.

    Wrapping statements [lo..hi] of a block in [finish { ... }] moves them
    into a nested lexical scope, so any [var]/[val] declared in the range
    becomes invisible to the statements after [hi].  The paper's scope
    nodes keep a finish {e within} one scope but do not capture this
    visibility constraint, which matters as soon as the repaired program is
    re-emitted as source; {!wrap_ok} rejects such ranges so that the DP
    placement chooses a different (scope-realizable) partition. *)

open Ast

type t = { blocks : (int, stmt array) Hashtbl.t }

let build (p : program) : t =
  let blocks = Hashtbl.create 64 in
  let rec on_stmt st =
    match st.s with
    | Decl _ | Assign _ | Return _ | Expr _ -> ()
    | If (_, a, b) ->
        on_stmt a;
        Option.iter on_stmt b
    | While (_, b) | For (_, _, _, _, b) | Async b | Finish b | Isolated b ->
        on_stmt b
    | Block b -> on_block b
  and on_block b =
    Hashtbl.replace blocks b.bid (Array.of_list b.stmts);
    List.iter on_stmt b.stmts
  in
  List.iter (fun f -> on_block f.body) p.funcs;
  { blocks }

(* All identifiers referenced by an expression. *)
let rec expr_names acc (e : expr) =
  match e.e with
  | Int _ | Float _ | Bool _ | Str _ -> acc
  | Var x -> x :: acc
  | Bin (_, a, b) -> expr_names (expr_names acc a) b
  | Un (_, a) -> expr_names acc a
  | Idx (a, i) -> expr_names (expr_names acc a) i
  | Call (_, args) -> List.fold_left expr_names acc args
  | NewArr (_, dims) -> List.fold_left expr_names acc dims

(* All identifiers referenced anywhere in a statement (conservative: no
   shadowing analysis — a shadowed reuse of the name also rejects). *)
let rec stmt_names acc (st : stmt) =
  match st.s with
  | Decl (_, _, _, init) -> expr_names acc init
  | Assign (x, path, rhs) ->
      x :: List.fold_left expr_names (expr_names acc rhs) path
  | If (c, a, b) ->
      let acc = expr_names acc c in
      let acc = stmt_names acc a in
      Option.fold ~none:acc ~some:(stmt_names acc) b
  | While (c, b) -> stmt_names (expr_names acc c) b
  | For (_, lo, hi, by, b) ->
      let acc = expr_names (expr_names acc lo) hi in
      let acc = Option.fold ~none:acc ~some:(expr_names acc) by in
      stmt_names acc b
  | Return None -> acc
  | Return (Some e) | Expr e -> expr_names acc e
  | Async b | Finish b | Isolated b -> stmt_names acc b
  | Block b -> List.fold_left stmt_names acc b.stmts

(** [wrap_ok t ~bid ~lo ~hi] — may statements [lo..hi] of block [bid] be
    moved into a nested block without breaking a later reference to a
    declaration made inside the range? *)
let wrap_ok (t : t) ~bid ~lo ~hi : bool =
  match Hashtbl.find_opt t.blocks bid with
  | None -> false
  | Some stmts ->
      let n = Array.length stmts in
      if lo < 0 || hi >= n || lo > hi then false
      else begin
        let declared = ref [] in
        for k = lo to hi do
          match stmts.(k).s with
          | Decl (_, x, _, _) -> declared := x :: !declared
          | _ -> ()
        done;
        !declared = []
        ||
        let used_after = ref [] in
        for k = hi + 1 to n - 1 do
          used_after := stmt_names !used_after stmts.(k)
        done;
        not (List.exists (fun x -> List.mem x !used_after) !declared)
      end
