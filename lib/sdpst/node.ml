(** Scoped Dynamic Program Structure Tree (S-DPST) — paper Definition 2.

    The S-DPST for an execution is an ordered rooted tree whose leaves are
    {e step} instances and whose interior nodes are {e async}, {e finish}
    and {e scope} instances.  Scope nodes (the extension over the plain
    DPST of Raman et al.) record the lexical blocks entered during
    execution, so that the start and end points of a newly introduced
    finish statement can be kept within a single scope of the input
    program.

    Construction happens during the sequential depth-first execution, so a
    node's [id] (creation order) is also its depth-first preorder number —
    the number shown on the nodes of the paper's Figure 9.  Sibling order
    (left to right) therefore coincides with [id] order.

    Static back-references: every node records the statement that created
    it ([sid]) and that statement's position ([origin_bid], [origin_idx]) —
    the block id and statement index the static finish-placement pass
    rewrites.  Step nodes additionally record the index of the last
    statement they cover ([last_idx]); async, finish and scope nodes record
    the block their own children belong to ([body_bid]). *)

type scope_kind =
  | Sblock  (** entry into a lexical block (branch/loop body, nested block) *)
  | Scall of string  (** a function call's body *)

type kind =
  | Root  (** the implicit finish enclosing [main] *)
  | Async
  | Finish
  | Scope of scope_kind
  | Step

type t = {
  id : int;
  kind : kind;
  mutable parent : t option;  (** [None] only for the root *)
  mutable depth : int;  (** root has depth 0 *)
  children : t Tdrutil.Vec.t;
  sid : int;  (** static stmt id that created this node; -1 for root/steps *)
  origin_bid : int;  (** block containing the creating statement *)
  origin_idx : int;  (** index of the creating (or first, for steps) stmt *)
  body_bid : int;  (** block executed by this node's children; -1 for steps *)
  mutable cost : int;  (** steps: accumulated execution time (cost units) *)
  mutable last_idx : int;  (** steps: index of the last statement covered *)
  mutable collapsed : (int * int) option;
      (** [(span, drag)] summary left by {!Analysis.prune} when a race-free
          subtree is garbage-collected; [None] for live nodes *)
}

type tree = { root : t; mutable n_nodes : int }

let is_scope n = match n.kind with Scope _ -> true | _ -> false

let is_step n = n.kind = Step

let is_async n = n.kind = Async

(** Non-scope in the paper's sense: async, finish, step, or the root. *)
let is_nonscope n = not (is_scope n)

let kind_name = function
  | Root -> "root"
  | Async -> "async"
  | Finish -> "finish"
  | Scope Sblock -> "scope"
  | Scope (Scall f) -> "call:" ^ f
  | Step -> "step"

let pp_kind ppf k = Fmt.string ppf (kind_name k)

let pp ppf n = Fmt.pf ppf "%a:%d" pp_kind n.kind n.id

(** Fresh tree containing only the root node.  [main_bid] is the block id
    of the main function's body, whose statements execute directly under
    the root. *)
let create_tree ~main_bid =
  let root =
    {
      id = 0;
      kind = Root;
      parent = None;
      depth = 0;
      children = Tdrutil.Vec.create ();
      sid = -1;
      origin_bid = -1;
      origin_idx = -1;
      body_bid = main_bid;
      cost = 0;
      last_idx = -1;
      collapsed = None;
    }
  in
  { root; n_nodes = 1 }

(** Append a fresh child under [parent].  Children must be added in
    left-to-right (depth-first execution) order. *)
let new_child tree ~parent ~kind ?(sid = -1) ?(origin_bid = -1)
    ?(origin_idx = -1) ?(body_bid = -1) () =
  let n =
    {
      id = tree.n_nodes;
      kind;
      parent = Some parent;
      depth = parent.depth + 1;
      children = Tdrutil.Vec.create ();
      sid;
      origin_bid;
      origin_idx;
      body_bid;
      cost = 0;
      last_idx = origin_idx;
      collapsed = None;
    }
  in
  tree.n_nodes <- tree.n_nodes + 1;
  Tdrutil.Vec.push parent.children n;
  n

(** Index of [child] among [parent]'s children.
    @raise Invalid_argument if [child] is not a child of [parent]. *)
let child_index parent child =
  match
    Tdrutil.Vec.find_index (fun c -> c.id = child.id) parent.children
  with
  | Some i -> i
  | None ->
      invalid_arg
        (Fmt.str "Node.child_index: %a is not a child of %a" pp child pp
           parent)

(** Pre-order iteration over the subtree rooted at [n]. *)
let rec iter_subtree f n =
  f n;
  Tdrutil.Vec.iter (iter_subtree f) n.children

let iter_tree f tree = iter_subtree f tree.root

(** Number of nodes per kind, for the Table 2 "S-DPST nodes" column. *)
let count_by_kind tree =
  let asyncs = ref 0 and finishes = ref 0 and scopes = ref 0 and steps = ref 0 in
  iter_tree
    (fun n ->
      match n.kind with
      | Async -> incr asyncs
      | Finish | Root -> incr finishes
      | Scope _ -> incr scopes
      | Step -> incr steps)
    tree;
  (!asyncs, !finishes, !scopes, !steps)
