(** Textual rendering of an S-DPST (the paper's Figure 9 style). *)

val pp_tree : Node.tree Fmt.t

val to_string : Node.tree -> string

(** One-line structural summary — kinds in preorder with bracketed
    children, e.g. [root(step async(step) step)] — for exact structural
    assertions in tests. *)
val skeleton : Node.tree -> string

exception Parse_error of string * int
(** message, 1-based line number *)

val tree_magic : string

(** Serialize the whole tree (preorder, one node per line), suitable for a
    fully offline detector-to-analyzer hand-off. *)
val tree_to_string : Node.tree -> string

(** Rebuild a tree serialized by {!tree_to_string}.
    @raise Parse_error on malformed input. *)
val tree_of_string : string -> Node.tree
