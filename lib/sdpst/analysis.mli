(** Timing analysis over the S-DPST under the ideal (unbounded-processor)
    execution model of the paper's Definition 1.

    Every node has a {e span} (time from its start until all work in its
    subtree completes) and a {e drag} (time until control passes it): 0
    for an async, the span for a finish, the cost for a step, the
    sequential composition of its children for a scope.  These are the
    [t_i] weights and [EST] base cases of Algorithm 1. *)

(** Span of a subtree.  O(subtree) per call; use {!span_memo} for repeated
    queries. *)
val span_of : Node.t -> int

(** Drag of a subtree. *)
val drag_of : Node.t -> int

(** Critical path length of the whole execution (Definition 1). *)
val critical_path_length : Node.tree -> int

(** Total work: sum of all step costs (serial-elision execution time). *)
val work : Node.tree -> int

(** Memoizing (span, drag) evaluators sharing one cache, for repeated
    queries against an unchanging tree. *)
val span_memo : unit -> (Node.t -> int) * (Node.t -> int)

(** [prune tree ~keep] collapses every subtree containing no node for
    which [keep] holds into a [(span, drag)] summary — the paper's §9
    proposed garbage-collection of race-free S-DPST regions.  Timing
    queries are preserved; returns the number of nodes removed. *)
val prune : Node.tree -> keep:(Node.t -> bool) -> int
