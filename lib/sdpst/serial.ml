(** Textual rendering of an S-DPST, in the style of the paper's Figure 9:
    each node as [kind:id], indented by tree depth.  Used by the CLI's
    [--dump-sdpst] option and by structural tests. *)

open Node

let rec pp_node ppf n =
  Fmt.pf ppf "%s%a" (String.make (2 * n.depth) ' ') pp n;
  (match n.kind with
  | Step -> Fmt.pf ppf " cost=%d stmts=[%d..%d]@@b%d" n.cost n.origin_idx
              n.last_idx n.origin_bid
  | Root | Async | Finish | Scope _ ->
      if n.body_bid >= 0 then Fmt.pf ppf " body=b%d" n.body_bid);
  (match n.collapsed with
  | Some (span, drag) -> Fmt.pf ppf " collapsed(span=%d,drag=%d)" span drag
  | None -> ());
  Tdrutil.Vec.iter (fun c -> Fmt.pf ppf "@\n%a" pp_node c) n.children

let pp_tree ppf tree = pp_node ppf tree.root

let to_string tree = Fmt.str "%a" pp_tree tree

(** One-line structural summary: kinds in preorder with bracketed children,
    e.g. [finish(step async(step) step)].  Convenient for exact structural
    assertions in tests. *)
let skeleton tree =
  let buf = Buffer.create 256 in
  let rec go n =
    Buffer.add_string buf (kind_name n.kind);
    if not (Tdrutil.Vec.is_empty n.children) then begin
      Buffer.add_char buf '(';
      let first = ref true in
      Tdrutil.Vec.iter
        (fun c ->
          if not !first then Buffer.add_char buf ' ';
          first := false;
          go c)
        n.children;
      Buffer.add_char buf ')'
    end
  in
  go tree.root;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parseable serialization                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string * int
(** message, 1-based line number *)

let tree_magic = "tdrace-sdpst-v1"

let kind_tag = function
  | Root -> "R"
  | Async -> "A"
  | Finish -> "F"
  | Scope Sblock -> "B"
  | Scope (Scall f) -> "C:" ^ f
  | Step -> "S"

let kind_of_tag ~line = function
  | "R" -> Root
  | "A" -> Async
  | "F" -> Finish
  | "B" -> Scope Sblock
  | "S" -> Step
  | s when String.length s > 2 && String.sub s 0 2 = "C:" ->
      Scope (Scall (String.sub s 2 (String.length s - 2)))
  | s -> raise (Parse_error ("unknown node kind tag " ^ s, line))

(** Serialize the whole tree, one node per line in preorder:
    [id parent_id kind sid origin_bid origin_idx body_bid cost last_idx].
    Collapsed summaries are written as [!span,drag] appended to the line.
    The output reconstructs an identical tree via {!tree_of_string}, so
    the paper's detector-to-analyzer hand-off can be fully offline (no
    re-execution needed to resolve a race trace). *)
let tree_to_string (tree : Node.tree) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf tree_magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Fmt.str "nodes %d\n" tree.n_nodes);
  iter_tree
    (fun n ->
      let parent = match n.parent with Some p -> p.id | None -> -1 in
      Buffer.add_string buf
        (Fmt.str "%d %d %s %d %d %d %d %d %d" n.id parent (kind_tag n.kind)
           n.sid n.origin_bid n.origin_idx n.body_bid n.cost n.last_idx);
      (match n.collapsed with
      | Some (span, drag) -> Buffer.add_string buf (Fmt.str " !%d,%d" span drag)
      | None -> ());
      Buffer.add_char buf '\n')
    tree;
  Buffer.contents buf

(** Rebuild a tree serialized by {!tree_to_string}.
    @raise Parse_error on malformed input. *)
let tree_of_string (s : string) : Node.tree =
  let lines = String.split_on_char '\n' s in
  match lines with
  | m :: rest when String.trim m = tree_magic ->
      let by_id : (int, Node.t) Hashtbl.t = Hashtbl.create 1024 in
      let tree = ref None in
      List.iteri
        (fun i line ->
          let lnum = i + 2 in
          let line = String.trim line in
          if line = "" then ()
          else
            match String.split_on_char ' ' line with
            | [ "nodes"; _n ] -> ()
            | id :: parent :: kind :: rest ->
                let int ~what v =
                  match int_of_string_opt v with
                  | Some n -> n
                  | None ->
                      raise
                        (Parse_error
                           (Fmt.str "malformed %s field %S" what v, lnum))
                in
                let id = int ~what:"id" id in
                let parent_id = int ~what:"parent" parent in
                let kind = kind_of_tag ~line:lnum kind in
                let fields, collapsed =
                  match List.rev rest with
                  | last :: rev_rest
                    when String.length last > 0 && last.[0] = '!' -> (
                      let body = String.sub last 1 (String.length last - 1) in
                      match String.split_on_char ',' body with
                      | [ a; b ] ->
                          ( List.rev rev_rest,
                            Some (int ~what:"span" a, int ~what:"drag" b) )
                      | _ ->
                          raise
                            (Parse_error ("malformed collapsed summary", lnum)))
                  | _ -> (rest, None)
                in
                (match fields with
                | [ sid; obid; oidx; bbid; cost; lidx ] -> (
                    let sid = int ~what:"sid" sid in
                    let origin_bid = int ~what:"origin_bid" obid in
                    let origin_idx = int ~what:"origin_idx" oidx in
                    let body_bid = int ~what:"body_bid" bbid in
                    let cost = int ~what:"cost" cost in
                    let last_idx = int ~what:"last_idx" lidx in
                    match (kind, parent_id) with
                    | Root, -1 ->
                        let t = create_tree ~main_bid:body_bid in
                        t.root.cost <- cost;
                        t.root.collapsed <- collapsed;
                        Hashtbl.replace by_id id t.root;
                        tree := Some t
                    | Root, _ ->
                        raise (Parse_error ("root with a parent", lnum))
                    | _, _ -> (
                        match (!tree, Hashtbl.find_opt by_id parent_id) with
                        | Some t, Some p ->
                            let n =
                              new_child t ~parent:p ~kind ~sid ~origin_bid
                                ~origin_idx ~body_bid ()
                            in
                            if n.id <> id then
                              raise
                                (Parse_error
                                   ( Fmt.str
                                       "node ids must be preorder (%d <> %d)"
                                       n.id id,
                                     lnum ));
                            n.cost <- cost;
                            n.last_idx <- last_idx;
                            n.collapsed <- collapsed;
                            Hashtbl.replace by_id id n
                        | None, _ ->
                            raise (Parse_error ("node before root", lnum))
                        | _, None ->
                            raise
                              (Parse_error
                                 ( Fmt.str "unknown parent id %d" parent_id,
                                   lnum ))))
                | _ -> raise (Parse_error ("wrong field count", lnum)))
            | _ -> raise (Parse_error ("unrecognized line: " ^ line, lnum)))
        rest;
      (match !tree with
      | Some t -> t
      | None -> raise (Parse_error ("empty tree", 2)))
  | _ -> raise (Parse_error ("bad magic; not a tdrace S-DPST dump", 1))
