(** Timing analysis over the S-DPST.

    Under the ideal (unbounded-processor) execution model of the paper's
    Definition 1, each node of the S-DPST has:

    - a {e span}: time from the node starting until {e all} work in its
      subtree has completed (for the root this is the program's critical
      path length, CPL);
    - a {e drag}: time from the node starting until control {e passes} it
      and the next sibling may start — 0 for an async (the parent continues
      immediately), the full span for a finish (the parent blocks), the
      step cost for a step, and the sequential composition of its children
      for a scope.

    These are the [t_i] node weights and [EST] base cases of the paper's
    Algorithm 1.  [work] is the total step cost, i.e. the execution time of
    the serial elision. *)

open Node

(* Sequential composition of a node's children: each child starts when the
   previous child's drag has elapsed; the whole sequence's span is the max
   over child start + child span.  [memo] caches (span, drag) per node id —
   without it the mutual span/drag recursion revisits subtrees
   exponentially often. *)
let rec span_drag memo n =
  match Hashtbl.find_opt memo n.id with
  | Some r -> r
  | None ->
      let r =
        match (n.collapsed, n.kind) with
        | Some (span, drag), _ ->
            (span, if n.kind = Async then 0 else drag)
        | None, Step -> (n.cost, n.cost)
        | None, (Root | Async | Finish | Scope _) ->
            let start = ref 0 in
            let span = ref 0 in
            Tdrutil.Vec.iter
              (fun c ->
                let c_span, c_drag = span_drag memo c in
                span := max !span (!start + c_span);
                start := !start + c_drag)
              n.children;
            let drag =
              match n.kind with
              | Async -> 0
              | Root | Finish -> !span
              | _ -> !start
            in
            (!span, drag)
      in
      Hashtbl.add memo n.id r;
      r

let span_of n = fst (span_drag (Hashtbl.create 256) n)

let drag_of n = snd (span_drag (Hashtbl.create 256) n)

(** Critical path length of the whole execution (Definition 1). *)
let critical_path_length tree = span_of tree.root

(** Total work: sum of all step costs (serial-elision execution time). *)
let work tree =
  let acc = ref 0 in
  iter_tree (fun n -> if is_step n then acc := !acc + n.cost) tree;
  !acc

(** Memoizing span/drag evaluators sharing one cache, for repeated queries
    against an unchanging tree (the dynamic-placement DP queries spans of
    many children). *)
let span_memo () =
  let tbl = Hashtbl.create 256 in
  let span n = fst (span_drag tbl n) in
  let drag n = snd (span_drag tbl n) in
  (span, drag)

(* ------------------------------------------------------------------ *)
(* S-DPST pruning (paper §9 future work)                               *)
(* ------------------------------------------------------------------ *)

(** [prune tree ~keep] collapses subtrees containing no node for which
    [keep] holds into a single summary leaf carrying the subtree's exact
    (span, drag).  This is the paper's proposed garbage-collection of
    race-free S-DPST regions.

    Placements computed on the pruned tree are unchanged because
    collapsed regions contain neither race endpoints nor {e useful}
    finish boundaries — with one exception that bounds what may
    collapse.  Async and finish subtrees are always safe: they appear as
    single vertices in any dependence graph, so only their summary
    matters, and the stored (span, drag) is exact.  A {e scope} subtree,
    however, is expanded by {!Depgraph.nonscope_children} into its
    non-scope descendants: if any of those is an async, the optimal
    finish interval may need to end strictly inside the expansion (to
    leave a trailing race-free async outside the wait), and collapsing
    the scope to one sequential leaf would hide that boundary and
    deterministically shift the DP to a different, longer placement
    (e.g. progen seed 451531: CPL 409 vs 449).  So a scope collapses
    only when its subtree spawns no task — then its expansion is a run
    of pure-drag sinks, which vertex coalescing merges away anyway —
    and otherwise pruning recurses, still collapsing the race-free
    async/finish subtrees below it.  Returns the number of nodes
    removed. *)
let prune tree ~keep =
  let removed = ref 0 in
  let rec subtree_size n =
    Tdrutil.Vec.fold (fun acc c -> acc + subtree_size c) 1 n.children
  in
  let rec contains_kept n =
    keep n || Tdrutil.Vec.exists contains_kept n.children
  in
  let rec contains_async n =
    n.kind = Async || Tdrutil.Vec.exists contains_async n.children
  in
  let scope_safe c =
    match c.kind with Scope _ -> not (contains_async c) | _ -> true
  in
  let rec go n =
    Tdrutil.Vec.iter
      (fun c ->
        if (not (is_step c)) && (not (contains_kept c)) && scope_safe c
        then begin
          removed := !removed + subtree_size c - 1;
          let summary = (span_of c, drag_of c) in
          Tdrutil.Vec.clear c.children;
          c.collapsed <- Some summary
        end
        else go c)
      n.children
  in
  go tree.root;
  tree.n_nodes <- tree.n_nodes - !removed;
  !removed
