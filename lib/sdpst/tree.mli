(** Structural updates and queries on a built S-DPST. *)

(** [insert_finish tree ~parent ~lo ~hi] splices a new finish node over
    children [lo..hi] (inclusive) of [parent] — the paper's §6.1 step (d)
    S-DPST update.  Returns the new node; depths below it are renumbered.
    @raise Invalid_argument on an out-of-range range. *)
val insert_finish : Node.tree -> parent:Node.t -> lo:int -> hi:int -> Node.t

(** All steps, in depth-first (program) order. *)
val steps : Node.tree -> Node.t list

(** Find a node by id (linear scan; testing helper). *)
val find_node : Node.tree -> int -> Node.t option
