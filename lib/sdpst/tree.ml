(** Structural updates to a built S-DPST.

    After the dynamic placement algorithm chooses a finish over a range of
    an NS-LCA's children, the paper's static placement (§6.1 step 3d)
    inserts the corresponding finish {e node} into the S-DPST so that later
    NS-LCA groups see the updated tree.  {!insert_finish} performs that
    splice: a new finish node adopts a contiguous range of siblings. *)

open Node

let rec renumber_depths n =
  Tdrutil.Vec.iter
    (fun c ->
      c.depth <- n.depth + 1;
      renumber_depths c)
    n.children

(** [insert_finish tree ~parent ~lo ~hi] splices a new finish node over
    children [lo..hi] (inclusive) of [parent].  The new node inherits the
    static origin of the leftmost adopted child, so its position still maps
    to the program point where the static pass inserts the [finish]
    statement.  Returns the new finish node.

    Note: the new node's [id] is allocated past the current maximum, so
    after insertion node ids still give a valid left-to-right order within
    any sibling list, but are no longer depth-first preorder numbers. *)
let insert_finish tree ~parent ~lo ~hi =
  let n_children = Tdrutil.Vec.length parent.children in
  if lo < 0 || hi >= n_children || lo > hi then
    invalid_arg
      (Fmt.str "Tree.insert_finish: range [%d..%d] out of bounds 0..%d" lo hi
         (n_children - 1));
  let first = Tdrutil.Vec.get parent.children lo in
  let last = Tdrutil.Vec.get parent.children hi in
  let fin =
    {
      id = tree.n_nodes;
      kind = Finish;
      parent = Some parent;
      depth = parent.depth + 1;
      children = Tdrutil.Vec.create ();
      sid = -1;
      origin_bid = first.origin_bid;
      origin_idx = first.origin_idx;
      body_bid = first.origin_bid;
      cost = 0;
      last_idx = last.last_idx;
      collapsed = None;
    }
  in
  tree.n_nodes <- tree.n_nodes + 1;
  for i = lo to hi do
    let c = Tdrutil.Vec.get parent.children i in
    c.parent <- Some fin;
    Tdrutil.Vec.push fin.children c
  done;
  Tdrutil.Vec.replace_range parent.children ~lo ~hi fin;
  renumber_depths fin;
  fin

(** All steps of the tree, in depth-first (= program) order. *)
let steps tree =
  let acc = ref [] in
  iter_tree (fun n -> if is_step n then acc := n :: !acc) tree;
  List.rev !acc

(** Find a node by id (linear scan; testing helper). *)
let find_node tree id =
  let found = ref None in
  iter_tree (fun n -> if n.id = id then found := Some n) tree;
  !found
