(** Ancestor queries on the S-DPST: LCA, NS-LCA (paper Definitions 3-5)
    and the may-happen-in-parallel test (paper Theorem 1). *)

(** [is_ancestor a n] — is [a] an ancestor of [n] (reflexively)? *)
val is_ancestor : Node.t -> Node.t -> bool

(** Least common ancestor. *)
val lca : Node.t -> Node.t -> Node.t

(** First non-scope node on the path from a node to the root, including
    the node itself. *)
val first_nonscope : Node.t -> Node.t

(** Non-scope least common ancestor (Definition 4): the first non-scope
    node on the path from the LCA to the root. *)
val ns_lca : Node.t -> Node.t -> Node.t

(** [nonscope_child_ancestor ~anc n] — the non-scope child of [anc]
    (Definition 3) whose subtree contains [n].
    @raise Invalid_argument if [n] is not a strict descendant of [anc]. *)
val nonscope_child_ancestor : anc:Node.t -> Node.t -> Node.t

(** Paper Theorem 1: two distinct steps can execute in parallel iff the
    non-scope child of their NS-LCA that is an ancestor of the left one is
    an async node. *)
val may_happen_in_parallel : Node.t -> Node.t -> bool
