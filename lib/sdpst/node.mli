(** Scoped Dynamic Program Structure Tree (S-DPST) — paper Definition 2.

    Leaves are {e step} instances; interior nodes are {e async},
    {e finish} and {e scope} instances.  Scope nodes (the extension over
    the plain DPST) record the lexical blocks entered during execution, so
    a newly introduced finish's start and end points stay within a single
    scope of the input program.

    Nodes are created in depth-first execution order, so [id] is also the
    depth-first preorder number (the numbers of the paper's Figure 9) and
    sibling order coincides with [id] order.  Mutability is part of the
    contract: the interpreter accretes children and step costs during the
    run, {!Tree.insert_finish} re-parents children, and
    {!Analysis.prune} collapses subtrees into summaries. *)

type scope_kind =
  | Sblock  (** entry into a lexical block (branch/loop body, nested block) *)
  | Scall of string  (** a function call's body *)

type kind =
  | Root  (** the implicit finish enclosing [main] *)
  | Async
  | Finish
  | Scope of scope_kind
  | Step

type t = {
  id : int;
  kind : kind;
  mutable parent : t option;  (** [None] only for the root *)
  mutable depth : int;  (** root has depth 0 *)
  children : t Tdrutil.Vec.t;
  sid : int;  (** static stmt id that created this node; -1 for root/steps *)
  origin_bid : int;  (** block containing the creating statement *)
  origin_idx : int;  (** index of the creating (or first, for steps) stmt *)
  body_bid : int;  (** block executed by this node's children; -1 for steps *)
  mutable cost : int;  (** steps: accumulated execution time (cost units) *)
  mutable last_idx : int;  (** steps: index of the last statement covered *)
  mutable collapsed : (int * int) option;
      (** [(span, drag)] summary left by {!Analysis.prune}; [None] live *)
}

type tree = { root : t; mutable n_nodes : int }

val is_scope : t -> bool

val is_step : t -> bool

val is_async : t -> bool

(** Non-scope in the paper's sense: async, finish, step, or the root. *)
val is_nonscope : t -> bool

val kind_name : kind -> string

val pp_kind : kind Fmt.t

val pp : t Fmt.t

(** Fresh tree containing only the root node; [main_bid] is the block id
    of [main]'s body, whose statements execute directly under the root. *)
val create_tree : main_bid:int -> tree

(** Append a fresh child under [parent]; children must be added in
    left-to-right (depth-first execution) order. *)
val new_child :
  tree ->
  parent:t ->
  kind:kind ->
  ?sid:int ->
  ?origin_bid:int ->
  ?origin_idx:int ->
  ?body_bid:int ->
  unit ->
  t

(** Index of a child among its parent's children.
    @raise Invalid_argument if it is not a child of that parent. *)
val child_index : t -> t -> int

(** Pre-order iteration over a subtree. *)
val iter_subtree : (t -> unit) -> t -> unit

val iter_tree : (t -> unit) -> tree -> unit

(** (asyncs, finishes incl. root, scopes, steps) — the Table 2 "S-DPST
    nodes" breakdown. *)
val count_by_kind : tree -> int * int * int * int
