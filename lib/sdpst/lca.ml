(** Ancestor queries on the S-DPST: LCA, NS-LCA (paper Definitions 3-5) and
    the may-happen-in-parallel test (paper Theorem 1). *)

open Node

let parent_exn n =
  match n.parent with
  | Some p -> p
  | None -> invalid_arg "Lca: walked above the root"

(** [is_ancestor a n] — is [a] an ancestor of [n] (reflexively)? *)
let is_ancestor a n =
  let rec go n =
    if n.id = a.id then true
    else match n.parent with None -> false | Some p -> go p
  in
  go n

(** Least common ancestor of [a] and [b]. *)
let lca a b =
  let rec lift n k = if k = 0 then n else lift (parent_exn n) (k - 1) in
  let a, b =
    if a.depth >= b.depth then (lift a (a.depth - b.depth), b)
    else (a, lift b (b.depth - a.depth))
  in
  let rec walk a b = if a.id = b.id then a else walk (parent_exn a) (parent_exn b) in
  walk a b

(** First non-scope node on the path from [n] to the root, including [n]
    itself. *)
let rec first_nonscope n =
  if is_nonscope n then n else first_nonscope (parent_exn n)

(** Non-scope least common ancestor (Definition 4): the first non-scope
    node on the path from [lca a b] to the root. *)
let ns_lca a b = first_nonscope (lca a b)

(** [nonscope_child_ancestor ~anc n] — the non-scope child of [anc]
    (Definition 3) whose subtree contains [n]: the shallowest non-scope
    strict descendant of [anc] on the path from [n] to [anc].

    @raise Invalid_argument if [n] is not a strict descendant of [anc] or
    if a non-scope node interposes between the result and [anc]. *)
let nonscope_child_ancestor ~anc n =
  if n.id = anc.id then invalid_arg "nonscope_child_ancestor: n = anc";
  (* Collect the path n .. anc (exclusive), then take the deepest node c
     such that everything strictly between c and anc is a scope. *)
  let rec path_up n acc =
    if n.id = anc.id then acc
    else
      match n.parent with
      | None -> invalid_arg "nonscope_child_ancestor: not a descendant"
      | Some p -> path_up p (n :: acc)
  in
  let path = path_up n [] in
  (* [path] is ordered from the child of [anc] down to [n].  Walk down while
     nodes are scopes; the first non-scope node is the answer. *)
  let rec first = function
    | [] -> invalid_arg "nonscope_child_ancestor: all-scope path"
    | c :: rest -> if is_nonscope c then c else first rest
  in
  first path

(** Paper Theorem 1: two distinct steps [s1] (left) and [s2] (right) can
    execute in parallel iff the non-scope child of their NS-LCA that is an
    ancestor of [s1] is an async node. *)
let may_happen_in_parallel s1 s2 =
  if s1.id = s2.id then false
  else
    let left, right = if s1.id < s2.id then (s1, s2) else (s2, s1) in
    ignore right;
    let n = ns_lca s1 s2 in
    if n.id = left.id then false
    else
      let a = nonscope_child_ancestor ~anc:n left in
      is_async a
