(** Chase-Lev work-stealing deque (see deque.mli).

    Single-owner bottom end ([push]/[pop]), multi-thief top end ([steal]
    with a compare-and-set on [top]).  All cross-domain synchronization
    goes through OCaml [Atomic]s, whose sequentially-consistent accesses
    establish the happens-before edges the classic algorithm needs: the
    owner publishes a slot with a plain write followed by the atomic
    store to [bottom]; a thief acquires [top]/[bottom] before reading the
    slot, and the winning CAS on [top] claims it.

    Growth copies live entries into a buffer of twice the capacity and
    publishes it through the [buf] atomic; a thief that read the old
    buffer still reads a valid value, because the owner never recycles a
    slot whose index is below the published [top]. *)

type 'a t = {
  top : int Atomic.t;  (** next index thieves take from *)
  bottom : int Atomic.t;  (** next index the owner pushes at *)
  buf : 'a option array Atomic.t;  (** circular, power-of-two capacity *)
  mutable n_grows : int;  (** buffer doublings; owner-written only *)
}

let create ?(capacity = 64) () =
  let cap = max 2 capacity in
  (* round up to a power of two so [land] masks work *)
  let cap =
    let rec up n = if n >= cap then n else up (2 * n) in
    up 2
  in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.make cap None);
    n_grows = 0;
  }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Owner-written plain field; read it after the owning worker has joined
   (or from the owner) for an exact count. *)
let grows t = t.n_grows

let slot a i = i land (Array.length a - 1)

(* Owner only.  Doubles the buffer when full. *)
let push t v =
  let b = Atomic.get t.bottom in
  let top = Atomic.get t.top in
  let a = Atomic.get t.buf in
  let a =
    if b - top >= Array.length a - 1 then begin
      t.n_grows <- t.n_grows + 1;
      let bigger = Array.make (2 * Array.length a) None in
      for i = top to b - 1 do
        bigger.(slot bigger i) <- a.(slot a i)
      done;
      Atomic.set t.buf bigger;
      bigger
    end
    else a
  in
  a.(slot a b) <- Some v;
  Atomic.set t.bottom (b + 1)

(* Owner only.  LIFO end; races with thieves only on the last element,
   resolved by the CAS on [top]. *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  let a = Atomic.get t.buf in
  Atomic.set t.bottom b;
  let top = Atomic.get t.top in
  if b < top then begin
    (* empty: restore the canonical empty state *)
    Atomic.set t.bottom top;
    None
  end
  else if b > top then begin
    let v = a.(slot a b) in
    a.(slot a b) <- None;
    v
  end
  else begin
    (* exactly one element left: fight the thieves for it *)
    let won = Atomic.compare_and_set t.top top (top + 1) in
    Atomic.set t.bottom (top + 1);
    if won then begin
      let v = a.(slot a b) in
      a.(slot a b) <- None;
      v
    end
    else None
  end

(* Any domain.  FIFO end; the CAS on [top] claims the element. *)
let steal t =
  let top = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if top >= b then None
  else begin
    let a = Atomic.get t.buf in
    let v = a.(slot a top) in
    if Atomic.compare_and_set t.top top (top + 1) then v else None
  end
