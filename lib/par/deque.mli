(** Chase-Lev work-stealing deque.

    One domain owns the bottom end and uses {!push}/{!pop} (LIFO, so an
    owner executing its own deque runs depth-first); any other domain may
    {!steal} from the top end (FIFO, so thieves take the oldest — usually
    largest — task).  Lock-free: synchronization is a compare-and-set on
    the [top] index plus sequentially-consistent loads/stores of [top] and
    [bottom].  The buffer grows transparently; [push] never fails. *)

type 'a t

(** [create ?capacity ()] — an empty deque.  [capacity] (default 64) is
    rounded up to a power of two; the buffer doubles as needed. *)
val create : ?capacity:int -> unit -> 'a t

(** Owner only: push onto the bottom (LIFO) end. *)
val push : 'a t -> 'a -> unit

(** Owner only: pop from the bottom (LIFO) end.  [None] when empty or
    when a thief won the race for the last element. *)
val pop : 'a t -> 'a option

(** Any domain: steal from the top (FIFO) end.  [None] when empty or when
    the CAS lost a race (the caller should retry elsewhere). *)
val steal : 'a t -> 'a option

(** Snapshot size (racy; only a hint for victim selection). *)
val size : 'a t -> int

(** How many times the buffer has doubled.  Written by the owner only;
    read it from the owner, or after the owner's domain has joined, for
    an exact count (the engine's stats do the latter). *)
val grows : 'a t -> int
