(** Parallel async-finish execution backend on OCaml 5 domains.

    Runs a normalized Mini-HJ program for real — [async] bodies execute
    concurrently instead of depth-first — with the same value semantics
    and cost model as {!Rt.Interp}.  Two modes:

    - {!Domains}: [n] workers on [n] domains, help-first work stealing
      over per-worker Chase-Lev {!Deque}s; [seed] drives victim
      selection.  Timing-dependent (real parallelism).
    - {!Fuzz}: a single worker whose seeded PRNG chooses the schedule
      (inline-vs-defer at each [async], yields at statement boundaries,
      pool order at [finish] joins).  Fully deterministic: the same seed
      replays the same schedule, which is what the schedule-fuzzing
      differential tests and [repair --validate-par] rely on.

    Racy programs may produce different outputs/final states across
    schedules — that is the point — but never memory-unsafe behavior
    (DESIGN.md §9). *)

type mode =
  | Fuzz of { seed : int }  (** deterministic schedule exploration *)
  | Domains of { n : int; seed : int }  (** real parallel execution *)

type policy = {
  inline_pct : int;  (** chance (0-100) an [async] runs inline at spawn *)
  yield_pct : int;
      (** chance (0-100) of running a pooled task at a statement boundary
          (Fuzz mode only) *)
}

val fuzz_policy : policy
(** Default for {!Fuzz}: 45% inline, 10% yield. *)

val domains_policy : policy
(** Default for {!Domains}: always defer (maximize available parallelism),
    never yield. *)

(** Scheduler counters that only exist in one mode.  The old flat record
    exposed [n_steals] unconditionally, which read as a plausible zero on
    Fuzz runs (a single worker never steals); tagging by mode makes
    "no steal counter" unrepresentable instead of silently zero. *)
type sched_stats =
  | Fuzz_stats of {
      n_inlined : int;  (** asyncs the PRNG chose to run at the spawn point *)
      n_pooled : int;  (** asyncs deferred to the task pool *)
      n_yields : int;  (** pooled tasks run at statement boundaries *)
    }
  | Domains_stats of {
      n_steals : int;  (** successful steals across all workers *)
      n_deque_grows : int;  (** Chase-Lev buffer doublings *)
    }

type stats = {
  n_tasks : int;  (** asyncs spawned *)
  n_fuel_batches : int;  (** per-worker batch flushes against global fuel *)
  sched : sched_stats;
}

(** Pointwise sum, for aggregating across runs (e.g. a
    {!Validate} sweep).
    @raise Invalid_argument when the operands' modes differ. *)
val add_stats : stats -> stats -> stats

(** The stats as ["engine."]-prefixed counters for an {!Obs.Metrics}
    registry.  Only the keys of the run's own mode are present; callers
    wanting a stable schema should [declare] the full key set first. *)
val stats_counters : stats -> (string * int) list

type result = {
  output : string;  (** everything [print]ed; line order is schedule-dependent *)
  globals : (string * Rt.Value.t) list;  (** final global state, sorted *)
  digest : string;  (** {!Rt.Value.digest_globals} of [globals] *)
  work : int;  (** total cost units charged across all workers *)
  wall_s : float;  (** wall-clock seconds of the parallel phase *)
  n_domains : int;
  stats : stats;  (** scheduler counters, tagged by [mode] *)
}

(** Execute [prog] from [main].

    @param fuel shared across workers; {!Rt.Interp.Out_of_fuel} when spent
      (checked at batch granularity, so the abort point is approximate)
    @param pace_ns nanoseconds of sleep-debt per cost unit (default 0).
      Pacing makes wall-clock time proportional to the schedule's span
      even when interpretation itself is faster, so speedup measurements
      reflect schedule overlap rather than host core count.
    @param policy scheduling probabilities; defaults to {!fuzz_policy} or
      {!domains_policy} according to [mode]
    @param emon an execution monitor ({!Emon}) receiving task/finish
      structure and shared-memory accesses from all workers — the
      parallel analogue of {!Rt.Monitor}.  Attaching one makes the
      engine maintain a shared {!Rt.Addr.Intern} (globals in declaration
      order, then array blocks in allocation order) and deliver each
      access with the step origin the depth-first interpreter would
      assign, so parallel race reports are comparable to sequential
      ones.
    @raise Rt.Interp.Runtime_error as {!Rt.Interp.run} (first failing
      task wins; the run is cancelled and joined before re-raising) *)
val run :
  ?fuel:int ->
  ?pace_ns:int ->
  ?policy:policy ->
  ?emon:Emon.t ->
  mode:mode ->
  Mhj.Ast.program ->
  result
