(** Schedule-fuzzing differential validation.

    Race-free async-finish programs are deterministic (the paper's
    foundation), so after a repair claims race-freedom we can test the
    claim behaviorally: run the program under [schedules] deterministic
    fuzzed schedules ({!Engine.Fuzz}) and require every one to reproduce
    the sequential interpreter's observable behavior — the multiset of
    printed lines plus the final global state digest.  Print *order* is
    legitimately schedule-dependent even in race-free programs, so lines
    are compared as a sorted multiset.

    Each schedule [k] uses seed [seed + k]; a reported divergence is
    replayable with [tdrepair run --par=1 --seed <that seed>]. *)

type request = { schedules : int; seed : int; budget_ms : int option }

let default_request = { schedules = 10; seed = 1; budget_ms = None }

type divergence = { schedule_seed : int; detail : string }

type t = {
  requested : int;
  ran : int;
  skipped : int;
  divergences : divergence list;
  engine : Engine.stats option;
}

let ok t = t.divergences = [] && t.skipped = 0

let sorted_lines s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "")
  |> List.sort String.compare

(* One fuzzed schedule against the reference observation.  Returns the
   divergence (if any) plus the engine's scheduler stats (absent when
   the schedule raised before producing a result). *)
let check_schedule ?fuel prog ~schedule_seed ~ref_lines ~ref_digest =
  match Engine.run ?fuel ~mode:(Engine.Fuzz { seed = schedule_seed }) prog with
  | r ->
      let d =
        if sorted_lines r.output <> ref_lines then
          Some { schedule_seed; detail = "printed output differs" }
        else if r.digest <> ref_digest then
          Some { schedule_seed; detail = "final global state differs" }
        else None
      in
      (d, Some r.Engine.stats)
  | exception e ->
      ( Some
          {
            schedule_seed;
            detail = Fmt.str "schedule raised: %s" (Printexc.to_string e);
          },
        None )

let check ?fuel ?budget_ms ?(schedules = 10) ?(seed = 1)
    (prog : Mhj.Ast.program) : t =
  let reference = Rt.Interp.run ?fuel prog in
  let ref_lines = sorted_lines reference.output in
  let ref_digest = Rt.Value.digest_globals reference.globals in
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match budget_ms with
    | None -> false
    | Some ms -> (Unix.gettimeofday () -. t0) *. 1000. >= float_of_int ms
  in
  let ran = ref 0 in
  let divergences = ref [] in
  let engine = ref None in
  (try
     for k = 0 to schedules - 1 do
       if over_budget () then raise Exit;
       let d, stats =
         check_schedule ?fuel prog ~schedule_seed:(seed + k) ~ref_lines
           ~ref_digest
       in
       Option.iter (fun d -> divergences := d :: !divergences) d;
       Option.iter
         (fun s ->
           engine :=
             Some
               (match !engine with
               | None -> s
               | Some acc -> Engine.add_stats acc s))
         stats;
       incr ran
     done
   with Exit -> ());
  {
    requested = schedules;
    ran = !ran;
    skipped = schedules - !ran;
    divergences = List.rev !divergences;
    engine = !engine;
  }

let of_request ?fuel (r : request) prog =
  check ?fuel ?budget_ms:r.budget_ms ~schedules:r.schedules ~seed:r.seed prog

let pp ppf t =
  if t.skipped > 0 then
    Fmt.pf ppf "%d/%d fuzzed schedule(s) run (%d skipped under budget)" t.ran
      t.requested t.skipped
  else Fmt.pf ppf "%d/%d fuzzed schedule(s) run" t.ran t.requested;
  match t.divergences with
  | [] -> if t.ran > 0 then Fmt.pf ppf ", all match the sequential semantics"
  | ds ->
      Fmt.pf ppf ", %d divergence(s):" (List.length ds);
      List.iter
        (fun d ->
          Fmt.pf ppf "@\n  seed %d: %s (replay: run --par=1 --seed %d)"
            d.schedule_seed d.detail d.schedule_seed)
        ds
