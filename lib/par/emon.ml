(** Execution-monitor hooks for the parallel {!Engine} — the parallel
    analogue of {!Rt.Monitor}, for detectors that do not need the
    depth-first order (vector clocks).

    The engine has no S-DPST, so events carry dense [int] tokens instead
    of tree nodes: the monitor mints a token per task
    ([on_task_begin]) and per finish ([on_finish_begin]) and the engine
    threads them through spawns and joins.  Accesses carry the interned
    address (the engine maintains a shared {!Rt.Addr.Intern} when a
    monitor is attached) plus the {e step origin} — the [(bid, idx)]
    position where the current maximal monitored run began, matching the
    origin the sequential interpreter would give the same step, so
    parallel race reports are comparable to sequential ones by static
    position.

    {b Concurrency contract} (what implementations may rely on):
    - [on_init] is called once, before any task runs;
    - [on_task_begin ~parent] runs on the worker currently executing
      task [parent] ([parent = -1] for the root), so the parent's
      monitor state is not concurrently touched during the call;
    - [on_task_end ~task ~fin] runs after [task]'s last event, and the
      engine orders it before the join-side [on_finish_end ~fin] via
      the finish's pending-count atomic ([fin = -1] for the root task);
    - [on_finish_end ~task ~fin] runs on the worker executing [task]
      after every task joined by [fin] has ended;
    - [on_access] may be called concurrently from all workers —
      implementations synchronize internally (e.g. sharded locks). *)

type t = {
  on_init : Rt.Addr.Intern.t -> unit;
      (** the run's shared address interner, delivered before any task *)
  on_task_begin : parent:int -> int;
      (** a task is spawned by [parent] (-1 = root); returns its token *)
  on_task_end : task:int -> fin:int -> unit;
      (** [task] finished; [fin] is its joining finish (-1 = root task) *)
  on_finish_begin : task:int -> int;
      (** [task] opened a finish scope; returns the finish token *)
  on_finish_end : task:int -> fin:int -> unit;
      (** [task] passed the join of finish [fin]: all tasks it joined
          have ended *)
  on_access :
    task:int -> bid:int -> idx:int -> int -> Rt.Monitor.access -> unit;
      (** [task] touched interned address [addr]; [(bid, idx)] is the
          step origin of the access *)
}

(** A monitor that ignores everything (token allocation is a plain
    counter so the engine's threading stays exercised). *)
let nop () : t =
  let next = Atomic.make 0 in
  {
    on_init = (fun _ -> ());
    on_task_begin = (fun ~parent:_ -> Atomic.fetch_and_add next 1);
    on_task_end = (fun ~task:_ ~fin:_ -> ());
    on_finish_begin = (fun ~task:_ -> Atomic.fetch_and_add next 1);
    on_finish_end = (fun ~task:_ ~fin:_ -> ());
    on_access = (fun ~task:_ ~bid:_ ~idx:_ _ _ -> ());
  }
