(** Schedule-fuzzing differential validation of (claimed) race-free
    programs: K deterministic fuzzed schedules must each reproduce the
    sequential interpreter's printed-line multiset and final global
    state.  Used by [repair --validate-par] and the differential test
    layer. *)

type request = {
  schedules : int;  (** how many fuzzed schedules to run *)
  seed : int;  (** schedule [k] uses seed [seed + k] *)
  budget_ms : int option;
      (** wall-clock budget; remaining schedules are skipped (and the run
          marked degraded) once it is exceeded.  [Some 0] skips all —
          deterministically, which the CLI tests rely on. *)
}

val default_request : request
(** 10 schedules, seed 1, no budget. *)

type divergence = {
  schedule_seed : int;  (** replay with [run --par=1 --seed] this value *)
  detail : string;
}

type t = {
  requested : int;
  ran : int;
  skipped : int;  (** schedules not run because the budget ran out *)
  divergences : divergence list;
  engine : Engine.stats option;
      (** scheduler counters summed over the schedules that ran
          ({!Engine.add_stats}); [None] when every schedule raised or
          none ran *)
}

val ok : t -> bool
(** No divergences and nothing skipped. *)

(** [check prog] runs the sequential reference once, then [schedules]
    fuzzed schedules (seeds [seed], [seed+1], ...).  A schedule that
    raises is reported as a divergence rather than escaping. *)
val check :
  ?fuel:int ->
  ?budget_ms:int ->
  ?schedules:int ->
  ?seed:int ->
  Mhj.Ast.program ->
  t

val of_request : ?fuel:int -> request -> Mhj.Ast.program -> t

val sorted_lines : string -> string list
(** Output lines as a sorted multiset (order is schedule-dependent). *)

val pp : t Fmt.t
