(** Parallel async-finish interpreter on OCaml 5 domains.

    This is the "real" execution backend next to {!Rt.Interp}'s canonical
    depth-first one.  Two modes share one interpreter core:

    - [Domains {n; seed}] — [n] workers, each pinned to its own domain,
      run a help-first work-stealing scheduler: an [async] pushes its task
      onto the spawning worker's Chase-Lev {!Deque}; a worker blocked at a
      [finish] (or idle) pops its own deque LIFO and steals FIFO from a
      PRNG-chosen victim.  Timing-dependent, so only best-effort
      reproducible; [seed] drives victim selection.

    - [Fuzz {seed}] — a single worker with an explicit task pool and a
      seeded PRNG deciding, at every [async], whether to inline the child
      or defer it, at statement boundaries whether to yield to a pooled
      task, and which pooled task a waiting [finish] runs next.  Fully
      deterministic: the same seed replays the same schedule exactly, so
      divergences found by schedule fuzzing are reproducible from the
      seed alone.

    Memory-safety of the shared heap (see DESIGN.md §9): local frames are
    snapshotted ([Hashtbl.copy]) at spawn, so no [Hashtbl] structure is
    ever mutated concurrently; globals are created during the sequential
    initializer phase and only their contents ([ref]s and array cells)
    race afterwards, which is memory-safe under the OCaml 5 memory model
    — racy programs yield outcome nondeterminism, never crashes.

    Fuel is a global [Atomic] decremented in per-worker batches; pacing
    ([pace_ns] per cost unit) is paid as debt-based sleeping so that
    wall-clock speedup reflects the schedule's overlap even when the
    interpreter itself is not the bottleneck. *)

open Mhj

exception Abort
(* internal: unwind a task after another task poisoned the run *)

exception Return_v of Rt.Value.t

type mode = Fuzz of { seed : int } | Domains of { n : int; seed : int }

type policy = { inline_pct : int; yield_pct : int }

let fuzz_policy = { inline_pct = 45; yield_pct = 10 }

let domains_policy = { inline_pct = 0; yield_pct = 0 }

type sched_stats =
  | Fuzz_stats of { n_inlined : int; n_pooled : int; n_yields : int }
  | Domains_stats of { n_steals : int; n_deque_grows : int }

type stats = {
  n_tasks : int;
  n_fuel_batches : int;
  sched : sched_stats;
}

let add_stats a b =
  let sched =
    match (a.sched, b.sched) with
    | ( Fuzz_stats { n_inlined = i1; n_pooled = p1; n_yields = y1 },
        Fuzz_stats { n_inlined = i2; n_pooled = p2; n_yields = y2 } ) ->
        Fuzz_stats
          { n_inlined = i1 + i2; n_pooled = p1 + p2; n_yields = y1 + y2 }
    | ( Domains_stats { n_steals = s1; n_deque_grows = g1 },
        Domains_stats { n_steals = s2; n_deque_grows = g2 } ) ->
        Domains_stats { n_steals = s1 + s2; n_deque_grows = g1 + g2 }
    | _ -> invalid_arg "Par.Engine.add_stats: mixed modes"
  in
  {
    n_tasks = a.n_tasks + b.n_tasks;
    n_fuel_batches = a.n_fuel_batches + b.n_fuel_batches;
    sched;
  }

let stats_counters s =
  let common =
    [ ("engine.tasks", s.n_tasks); ("engine.fuel_batches", s.n_fuel_batches) ]
  in
  match s.sched with
  | Fuzz_stats { n_inlined; n_pooled; n_yields } ->
      common
      @ [
          ("engine.inlined", n_inlined);
          ("engine.pooled", n_pooled);
          ("engine.yields", n_yields);
        ]
  | Domains_stats { n_steals; n_deque_grows } ->
      common
      @ [
          ("engine.steals", n_steals); ("engine.deque_grows", n_deque_grows);
        ]

type result = {
  output : string;
  globals : (string * Rt.Value.t) list;
  digest : string;
  work : int;
  wall_s : float;
  n_domains : int;
  stats : stats;
}

let error loc fmt =
  Fmt.kstr (fun m -> raise (Rt.Interp.Runtime_error (m, loc))) fmt

type frame = (string, Rt.Value.t ref) Hashtbl.t

type finish = {
  pending : int Atomic.t;
  mutable ftok : int;  (** monitor finish token; -1 when unmonitored *)
}

type task = {
  t_body : Ast.stmt;  (** normalized block *)
  t_env : frame list;  (** frame snapshot taken at the spawn point *)
  t_fin : finish;
  t_mtok : int;  (** monitor task token; -1 when unmonitored *)
}

(* Growable task pool with PRNG-indexed removal (Fuzz mode only; accessed
   by the single worker, so no synchronization). *)
module Pool = struct
  type t = { mutable data : task array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push p t =
    if p.len = Array.length p.data then begin
      let cap = max 8 (2 * Array.length p.data) in
      let bigger = Array.make cap t in
      Array.blit p.data 0 bigger 0 p.len;
      p.data <- bigger
    end;
    p.data.(p.len) <- t;
    p.len <- p.len + 1

  (* Remove and return the element at [i] (swap with the last). *)
  let take p i =
    let t = p.data.(i) in
    p.len <- p.len - 1;
    p.data.(i) <- p.data.(p.len);
    t
end

type worker = {
  id : int;
  deque : task Deque.t;
  rng : Tdrutil.Prng.t;
  mutable work : int;  (** cost units charged by this worker *)
  mutable batch : int;  (** units since the last slow-path flush *)
  mutable pace_debt_ns : float;  (** pacing debt not yet slept off *)
  (* Stats below are owner-written plain fields, summed after the joins;
     the Fuzz trio is only meaningful on the single Fuzz worker. *)
  mutable n_batches : int;  (** slow-path fuel flushes *)
  mutable n_inlined : int;
  mutable n_pooled : int;
  mutable n_yields : int;
}

(* A global's slot caches its interned address, as in Rt.Interp; -1 when
   no monitor is attached. *)
type gslot = { gval : Rt.Value.t ref; gaddr : int }

(* Monitoring state, present only when an [emon] was passed to [run].
   The address interner is shared across workers: array registration
   happens under [intern_mu] (which also serializes aid draws, keeping
   registration order dense in aid as Addr.Intern requires), and the
   per-array cell bases are mirrored into a copy-on-write array behind
   an [Atomic] so the monitored access path can resolve [base + idx]
   without taking the lock. *)
type mon = {
  em : Emon.t;
  intern : Rt.Addr.Intern.t;
  intern_mu : Mutex.t;
  bases : int array Atomic.t;  (** aid -> cell base id; -1 = unknown *)
}

type engine = {
  funcs : (string, Ast.func) Hashtbl.t;
  globals : (string, gslot) Hashtbl.t;
      (** structure frozen after the sequential initializer phase *)
  mon : mon option;
  fuel : int Atomic.t;
  aid : int Atomic.t;
  buf : Buffer.t;
  buf_mu : Mutex.t;
  cas_mu : Mutex.t;  (** serializes the [cas] builtin *)
  iso_mu : Mutex.t;  (** serializes [isolated] sections (Domains mode) *)
  poison : exn option Atomic.t;  (** first exception wins; aborts the run *)
  finished : bool Atomic.t;  (** tells idle workers to exit *)
  pace_ns : int;  (** nanoseconds of sleep per cost unit (0 = none) *)
  batch_limit : int;  (** slow-path flush granularity, in cost units *)
  policy : policy;
  is_fuzz : bool;
  workers : worker array;
  pool : Pool.t;  (** Fuzz mode's deferred-task pool *)
  n_tasks : int Atomic.t;
  n_steals : int Atomic.t;
}

type tstate = {
  eng : engine;
  w : worker;  (** the worker currently executing this task *)
  mutable locals : frame list;
  mutable fin : finish;  (** innermost enclosing finish *)
  mutable quiet : bool;  (** global-initializer mode: fuel but no work *)
  mutable atomic : int;  (** [isolated] nesting depth: no yields inside *)
  monitored : bool;  (** [eng.mon <> None], checked on hot paths *)
  mutable mtok : int;  (** this task's monitor token *)
  (* Step-origin tracking (monitored runs only).  The sequential
     interpreter's step nodes originate at the (bid, idx) of the first
     charge after a structural transition; the engine mirrors that with
     a cursor [(sbid, sidx)] and a latch [(obid, oidx)] captured by the
     first charge after each [mclose], so monitored access events
     report the same static origin the depth-first run would. *)
  mutable sbid : int;  (** block whose statements are executing *)
  mutable sidx : int;  (** index of the current statement in [sbid] *)
  mutable obid : int;  (** latched step origin; -1 = not latched *)
  mutable oidx : int;
}

(* Close the current step: the next charge re-latches the origin.  The
   engine calls this exactly where the sequential interpreter closes
   steps (structural statements, calls, loop iterations). *)
let mclose st = if st.monitored then st.obid <- -1

(* ------------------------------------------------------------------ *)
(* Cost, fuel, pacing, poison                                          *)
(* ------------------------------------------------------------------ *)

let poison_with eng e =
  ignore (Atomic.compare_and_set eng.poison None (Some e))

let poisoned eng = Atomic.get eng.poison <> None

(* Flush the per-worker batch: settle fuel globally, check for poison,
   and sleep off accumulated pacing debt.  Oversleep (the common case on
   a loaded machine) is credited against future debt, so pacing
   self-corrects instead of drifting. *)
let slow_path st =
  let eng = st.eng and w = st.w in
  let b = w.batch in
  w.batch <- 0;
  w.n_batches <- w.n_batches + 1;
  let before = Atomic.fetch_and_add eng.fuel (-b) in
  if before - b < 0 then begin
    poison_with eng Rt.Interp.Out_of_fuel;
    raise Rt.Interp.Out_of_fuel
  end;
  if poisoned eng then raise Abort;
  if eng.pace_ns > 0 && (not st.quiet) && w.pace_debt_ns >= 300_000. then begin
    let t0 = Unix.gettimeofday () in
    Unix.sleepf (w.pace_debt_ns *. 1e-9);
    let slept_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    w.pace_debt_ns <- w.pace_debt_ns -. slept_ns
  end

let charge st n =
  let w = st.w in
  w.batch <- w.batch + n;
  if not st.quiet then begin
    w.work <- w.work + n;
    if st.monitored && st.obid < 0 then begin
      (* first charge since the last structural transition: this is
         where Rt.Interp would create the step node *)
      st.obid <- st.sbid;
      st.oidx <- st.sidx
    end;
    if st.eng.pace_ns > 0 then
      w.pace_debt_ns <- w.pace_debt_ns +. float_of_int (n * st.eng.pace_ns)
  end;
  if w.batch >= st.eng.batch_limit then slow_path st

(* Deliver a monitored access at the latched step origin. *)
let maccess st addr kind =
  match st.eng.mon with
  | None -> ()
  | Some m ->
      if not st.quiet then begin
        if st.obid < 0 then begin
          st.obid <- st.sbid;
          st.oidx <- st.sidx
        end;
        m.em.Emon.on_access ~task:st.mtok ~bid:st.obid ~idx:st.oidx addr kind
      end

(* Interned id of cell [idx] of array [aid] on the monitored path: a
   lock-free read of the copy-on-write base table, falling back to the
   interner under the lock for an array whose registration this worker
   has not yet observed (the lock acquisition synchronizes with the
   registering unlock). *)
let cell_addr st aid idx =
  match st.eng.mon with
  | None -> -1
  | Some m -> (
      let b = Atomic.get m.bases in
      if aid < Array.length b && Array.unsafe_get b aid >= 0 then
        Array.unsafe_get b aid + idx
      else begin
        Mutex.lock m.intern_mu;
        let r = Rt.Addr.Intern.cell_id m.intern ~aid ~idx in
        Mutex.unlock m.intern_mu;
        r
      end)

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let push_frame st = st.locals <- Hashtbl.create 8 :: st.locals

let pop_frame st = st.locals <- List.tl st.locals

let in_frame st f =
  push_frame st;
  Fun.protect ~finally:(fun () -> pop_frame st) f

let lookup_local st x =
  let rec go = function
    | [] -> None
    | fr :: rest -> (
        match Hashtbl.find_opt fr x with Some r -> Some r | None -> go rest)
  in
  go st.locals

let declare_local st x v =
  match st.locals with
  | fr :: _ -> Hashtbl.replace fr x (ref v)
  | [] -> invalid_arg "Par.Engine.declare_local: no frame"

(* Spawn-time environment snapshot.  The typechecker only lets an async
   body read immutable ([val]) outer locals declared before the async, so
   copying the frames at the spawn point is observationally identical to
   sharing them — and it keeps Hashtbl structure single-domain. *)
let snapshot_env st = List.map Hashtbl.copy st.locals

(* ------------------------------------------------------------------ *)
(* Values and operators (identical semantics to Rt.Interp)             *)
(* ------------------------------------------------------------------ *)

let as_int loc = function
  | Rt.Value.VInt n -> n
  | v -> error loc "expected int, got %a" Rt.Value.pp v

let as_bool loc = function
  | Rt.Value.VBool b -> b
  | v -> error loc "expected bool, got %a" Rt.Value.pp v

let as_arr loc = function
  | Rt.Value.VArr a -> a
  | v -> error loc "expected array, got %a" Rt.Value.pp v

let eval_binop loc op (a : Rt.Value.t) (b : Rt.Value.t) : Rt.Value.t =
  let open Ast in
  match (op, a, b) with
  | Add, VInt x, VInt y -> VInt (x + y)
  | Sub, VInt x, VInt y -> VInt (x - y)
  | Mul, VInt x, VInt y -> VInt (x * y)
  | Div, VInt _, VInt 0 -> error loc "division by zero"
  | Div, VInt x, VInt y -> VInt (x / y)
  | Mod, VInt _, VInt 0 -> error loc "modulo by zero"
  | Mod, VInt x, VInt y -> VInt (x mod y)
  | Add, VFloat x, VFloat y -> VFloat (x +. y)
  | Sub, VFloat x, VFloat y -> VFloat (x -. y)
  | Mul, VFloat x, VFloat y -> VFloat (x *. y)
  | Div, VFloat x, VFloat y -> VFloat (x /. y)
  | Eq, VInt x, VInt y -> VBool (x = y)
  | Ne, VInt x, VInt y -> VBool (x <> y)
  | Lt, VInt x, VInt y -> VBool (x < y)
  | Le, VInt x, VInt y -> VBool (x <= y)
  | Gt, VInt x, VInt y -> VBool (x > y)
  | Ge, VInt x, VInt y -> VBool (x >= y)
  | Eq, VFloat x, VFloat y -> VBool (x = y)
  | Ne, VFloat x, VFloat y -> VBool (x <> y)
  | Lt, VFloat x, VFloat y -> VBool (x < y)
  | Le, VFloat x, VFloat y -> VBool (x <= y)
  | Gt, VFloat x, VFloat y -> VBool (x > y)
  | Ge, VFloat x, VFloat y -> VBool (x >= y)
  | Eq, VBool x, VBool y -> VBool (x = y)
  | Ne, VBool x, VBool y -> VBool (x <> y)
  | _ ->
      error loc "operator '%s' applied to %a and %a" (string_of_binop op)
        Rt.Value.pp a Rt.Value.pp b

(* Draw an array id; monitored runs also register the cell block with
   the shared interner.  Drawing the id under the same lock keeps
   registration order dense in aid (Addr.Intern's invariant) even when
   workers allocate concurrently, and the base is published to the
   copy-on-write mirror before the VArr can escape. *)
let fresh_aid st len =
  match st.eng.mon with
  | None -> 1 + Atomic.fetch_and_add st.eng.aid 1
  | Some m ->
      Mutex.lock m.intern_mu;
      let aid = 1 + Atomic.fetch_and_add st.eng.aid 1 in
      Rt.Addr.Intern.register_array m.intern ~aid ~len;
      let base = Rt.Addr.Intern.cell_id m.intern ~aid ~idx:0 in
      let b = Atomic.get m.bases in
      let b =
        if aid < Array.length b then b
        else begin
          let bigger = Array.make (max (aid + 1) (2 * Array.length b)) (-1) in
          Array.blit b 0 bigger 0 (Array.length b);
          Atomic.set m.bases bigger;
          bigger
        end
      in
      b.(aid) <- base;
      Mutex.unlock m.intern_mu;
      aid

let rec alloc_array st loc base dims : Rt.Value.t =
  match dims with
  | [] -> assert false
  | [ n ] ->
      if n < 0 then error loc "negative array dimension %d" n;
      charge st (n * Rt.Cost.array_cell_alloc);
      let aid = fresh_aid st n in
      Rt.Value.VArr { aid; cells = Array.make n (Rt.Value.zero base) }
  | n :: rest ->
      if n < 0 then error loc "negative array dimension %d" n;
      charge st (n * Rt.Cost.array_cell_alloc);
      let aid = fresh_aid st n in
      let cells = Array.init n (fun _ -> alloc_array st loc base rest) in
      Rt.Value.VArr { aid; cells }

(* ------------------------------------------------------------------ *)
(* Scheduling primitives                                               *)
(* ------------------------------------------------------------------ *)

(* Pop own deque, else steal from a PRNG-chosen victim (scanning all
   others from a random start so a lone busy victim is always found). *)
let try_get eng (w : worker) : task option =
  match Deque.pop w.deque with
  | Some _ as t -> t
  | None ->
      let n = Array.length eng.workers in
      if n = 1 then None
      else begin
        let start = Tdrutil.Prng.int w.rng (n - 1) in
        let rec scan k =
          if k > n - 2 then None
          else
            let v = (start + k) mod (n - 1) in
            let v = if v >= w.id then v + 1 else v in
            match Deque.steal eng.workers.(v).deque with
            | Some _ as t ->
                Atomic.incr eng.n_steals;
                t
            | None -> scan (k + 1)
        in
        scan 0
      end

let backoff_sleep failures =
  if failures < 4 then Domain.cpu_relax ()
  else Unix.sleepf (Float.min 5e-4 (2e-5 *. float_of_int failures))

(* ------------------------------------------------------------------ *)
(* Interpreter core                                                    *)
(* ------------------------------------------------------------------ *)

(* Enter a structural scope, mirroring Rt.Interp.in_structural for the
   step-origin cursor: the current step closes, the body runs with its
   own block cursor, and the step resumes (re-latching lazily) at the
   saved (bid, idx) afterwards. *)
let in_scope st ~body_bid f =
  mclose st;
  let saved_bid = st.sbid and saved_idx = st.sidx in
  st.sbid <- body_bid;
  let restore () =
    mclose st;
    st.sbid <- saved_bid;
    st.sidx <- saved_idx
  in
  Fun.protect ~finally:restore f

let rec eval st (e : Ast.expr) : Rt.Value.t =
  charge st Rt.Cost.expr_node;
  match e.e with
  | Int n -> VInt n
  | Float f -> VFloat f
  | Bool b -> VBool b
  | Str s -> VStr s
  | Var x -> (
      match lookup_local st x with
      | Some r -> !r
      | None -> (
          match Hashtbl.find_opt st.eng.globals x with
          | Some g ->
              maccess st g.gaddr Rt.Monitor.Read;
              !(g.gval)
          | None -> error e.eloc "unbound variable '%s'" x))
  | Bin (And, a, b) ->
      if as_bool a.eloc (eval st a) then eval st b else VBool false
  | Bin (Or, a, b) ->
      if as_bool a.eloc (eval st a) then VBool true else eval st b
  | Bin (op, a, b) ->
      let va = eval st a in
      let vb = eval st b in
      eval_binop e.eloc op va vb
  | Un (Neg, a) -> (
      match eval st a with
      | VInt n -> VInt (-n)
      | VFloat f -> VFloat (-.f)
      | v -> error e.eloc "unary '-' applied to %a" Rt.Value.pp v)
  | Un (Not, a) -> VBool (not (as_bool a.eloc (eval st a)))
  | Idx (a, i) ->
      let arr = as_arr a.eloc (eval st a) in
      let i = as_int i.eloc (eval st i) in
      if i < 0 || i >= Array.length arr.cells then
        error e.eloc "index %d out of bounds [0..%d)" i (Array.length arr.cells);
      if st.monitored then maccess st (cell_addr st arr.aid i) Rt.Monitor.Read;
      arr.cells.(i)
  | NewArr (base, dims) ->
      let dims = List.map (fun d -> as_int d.Ast.eloc (eval st d)) dims in
      alloc_array st e.eloc base dims
  | Call (name, args) ->
      let vargs = List.map (eval st) args in
      if Builtins.is_builtin name then eval_builtin st e.eloc name vargs
      else call_function st e.eloc name vargs

and eval_builtin st loc name (args : Rt.Value.t list) : Rt.Value.t =
  charge st Rt.Cost.builtin_overhead;
  match (name, args) with
  | "alen", [ VArr a ] -> VInt (Array.length a.cells)
  | "print", [ v ] ->
      let line = Fmt.str "%a" Rt.Value.pp v in
      Mutex.lock st.eng.buf_mu;
      Buffer.add_string st.eng.buf line;
      Buffer.add_char st.eng.buf '\n';
      Mutex.unlock st.eng.buf_mu;
      VUnit
  | "work", [ VInt n ] ->
      if n < 0 then error loc "work(%d): negative amount" n;
      charge st n;
      VUnit
  | "cas", [ VArr a; VInt i; VInt old_v; VInt new_v ] ->
      (* Atomic here for real: concurrent claimants must serialize. *)
      if i < 0 || i >= Array.length a.cells then
        error loc "cas: index %d out of bounds [0..%d)" i (Array.length a.cells);
      Mutex.lock st.eng.cas_mu;
      let won = a.cells.(i) = VInt old_v in
      if won then a.cells.(i) <- VInt new_v;
      Mutex.unlock st.eng.cas_mu;
      VBool won
  | "float", [ VInt n ] -> VFloat (float_of_int n)
  | "int", [ VFloat f ] -> VInt (int_of_float f)
  | "sqrt", [ VFloat f ] -> VFloat (sqrt f)
  | "sin", [ VFloat f ] -> VFloat (sin f)
  | "cos", [ VFloat f ] -> VFloat (cos f)
  | "fabs", [ VFloat f ] -> VFloat (abs_float f)
  | "pow", [ VFloat a; VFloat b ] -> VFloat (a ** b)
  | "log", [ VFloat f ] -> VFloat (log f)
  | "exp", [ VFloat f ] -> VFloat (exp f)
  | _ ->
      error loc "builtin '%s' applied to (%a)" name
        Fmt.(list ~sep:comma Rt.Value.pp)
        args

and call_function st loc name (args : Rt.Value.t list) : Rt.Value.t =
  let f =
    match Hashtbl.find_opt st.eng.funcs name with
    | Some f -> f
    | None -> error loc "unknown function '%s'" name
  in
  charge st Rt.Cost.call_overhead;
  in_scope st ~body_bid:f.body.bid (fun () ->
      let saved_locals = st.locals in
      st.locals <- [ Hashtbl.create 8 ];
      List.iter2 (fun (x, _ty) v -> declare_local st x v) f.params args;
      push_frame st;
      let restore () = st.locals <- saved_locals in
      Fun.protect ~finally:restore (fun () ->
          match exec_stmts st f.body.stmts with
          | () -> Rt.Value.VUnit
          | exception Return_v v -> v))

and exec_stmts st (stmts : Ast.stmt list) : unit =
  List.iteri
    (fun i s ->
      st.sidx <- i;
      maybe_yield st;
      exec_stmt st s)
    stmts

and exec_body st (body : Ast.stmt) : unit =
  match body.s with
  | Ast.Block b -> in_frame st (fun () -> exec_stmts st b.stmts)
  | _ ->
      error body.sloc
        "program not normalized (async/finish body); compile with \
         Front.compile"

and exec_stmt st (stmt : Ast.stmt) : unit =
  (match stmt.s with
  | Async _ | Finish _ | Isolated _ | Block _ -> ()
  | _ -> charge st Rt.Cost.stmt);
  match stmt.s with
  | Decl (_m, x, _ty, init) ->
      let v = eval st init in
      declare_local st x v
  | Assign (x, [], rhs) -> (
      let v = eval st rhs in
      match lookup_local st x with
      | Some r -> r := v
      | None -> (
          match Hashtbl.find_opt st.eng.globals x with
          | Some g ->
              maccess st g.gaddr Rt.Monitor.Write;
              g.gval := v
          | None -> error stmt.sloc "unbound variable '%s'" x))
  | Assign (x, path, rhs) ->
      let base =
        match lookup_local st x with
        | Some r -> !r
        | None -> (
            match Hashtbl.find_opt st.eng.globals x with
            | Some g ->
                maccess st g.gaddr Rt.Monitor.Read;
                !(g.gval)
            | None -> error stmt.sloc "unbound variable '%s'" x)
      in
      let rec walk v = function
        | [] -> assert false
        | [ last ] ->
            let arr = as_arr stmt.sloc v in
            let i = as_int last.Ast.eloc (eval st last) in
            if i < 0 || i >= Array.length arr.cells then
              error stmt.sloc "index %d out of bounds [0..%d)" i
                (Array.length arr.cells);
            let rhs_v = eval st rhs in
            if st.monitored then
              maccess st (cell_addr st arr.aid i) Rt.Monitor.Write;
            arr.cells.(i) <- rhs_v
        | idx :: rest ->
            let arr = as_arr stmt.sloc v in
            let i = as_int idx.Ast.eloc (eval st idx) in
            if i < 0 || i >= Array.length arr.cells then
              error stmt.sloc "index %d out of bounds [0..%d)" i
                (Array.length arr.cells);
            if st.monitored then
              maccess st (cell_addr st arr.aid i) Rt.Monitor.Read;
            walk arr.cells.(i) rest
      in
      walk base path
  | If (c, a, b) ->
      if as_bool c.eloc (eval st c) then exec_scope_body st a
      else Option.iter (exec_scope_body st) b
  | While (c, body) ->
      while as_bool c.eloc (eval st c) do
        exec_scope_body st body
      done
  | For (iv, lo, hi, by, body) ->
      let lo = as_int lo.eloc (eval st lo) in
      let hi = as_int hi.eloc (eval st hi) in
      let step =
        match by with
        | None -> 1
        | Some e -> (
            match as_int e.eloc (eval st e) with
            | 0 -> error stmt.sloc "for step must be non-zero"
            | s -> s)
      in
      let i = ref lo in
      let continue () = if step > 0 then !i <= hi else !i >= hi in
      while continue () do
        exec_for_iteration st iv !i body;
        i := !i + step
      done
  | Return None -> raise (Return_v Rt.Value.VUnit)
  | Return (Some e) ->
      let v = eval st e in
      raise (Return_v v)
  | Async body -> (
      match body.s with
      | Ast.Block _ ->
          mclose st;
          spawn st body;
          mclose st
      | _ ->
          error stmt.sloc
            "program not normalized (async); compile with Front.compile")
  | Finish body -> (
      match body.s with
      | Ast.Block b ->
          let fin = { pending = Atomic.make 0; ftok = -1 } in
          (match st.eng.mon with
          | Some m -> fin.ftok <- m.em.Emon.on_finish_begin ~task:st.mtok
          | None -> ());
          in_scope st ~body_bid:b.bid (fun () ->
              let saved = st.fin in
              st.fin <- fin;
              Fun.protect
                ~finally:(fun () -> st.fin <- saved)
                (fun () -> exec_body st body));
          wait_fin st fin;
          (match st.eng.mon with
          | Some m -> m.em.Emon.on_finish_end ~task:st.mtok ~fin:fin.ftok
          | None -> ())
      | _ ->
          error stmt.sloc
            "program not normalized (finish); compile with Front.compile")
  | Isolated body -> (
      match body.s with
      | Ast.Block b ->
          (* Global mutual exclusion.  In Fuzz mode all tasks share one
             worker, so instead of a (self-deadlocking) lock we pin the
             scheduler: [atomic > 0] disables the statement-boundary
             yields, making the section atomic by construction. *)
          let run () =
            in_scope st ~body_bid:b.bid (fun () -> exec_body st body)
          in
          st.atomic <- st.atomic + 1;
          let finally () = st.atomic <- st.atomic - 1 in
          Fun.protect ~finally (fun () ->
              if st.eng.is_fuzz then run ()
              else begin
                Mutex.lock st.eng.iso_mu;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock st.eng.iso_mu)
                  run
              end)
      | _ ->
          error stmt.sloc
            "program not normalized (isolated); compile with Front.compile")
  | Block b ->
      in_scope st ~body_bid:b.bid (fun () ->
          in_frame st (fun () -> exec_stmts st b.stmts))
  | Expr e -> ignore (eval st e)

and exec_scope_body st (body : Ast.stmt) : unit =
  match body.s with
  | Ast.Block _ -> exec_stmt st body
  | _ ->
      error body.sloc
        "program not normalized (branch/loop body); compile with \
         Front.compile"

and exec_for_iteration st iv i body =
  match body.s with
  | Ast.Block b ->
      in_scope st ~body_bid:b.bid (fun () ->
          in_frame st (fun () ->
              declare_local st iv (Rt.Value.VInt i);
              exec_stmts st b.stmts))
  | _ ->
      error body.sloc
        "program not normalized (for body); compile with Front.compile"

(* -------------------------- scheduling ----------------------------- *)

and spawn st (body : Ast.stmt) : unit =
  let eng = st.eng in
  let fin = st.fin in
  Atomic.incr eng.n_tasks;
  Atomic.incr fin.pending;
  let t_mtok =
    match eng.mon with
    | Some m -> m.em.Emon.on_task_begin ~parent:st.mtok
    | None -> -1
  in
  let t = { t_body = body; t_env = snapshot_env st; t_fin = fin; t_mtok } in
  if eng.is_fuzz then begin
    if Tdrutil.Prng.int st.w.rng 100 < eng.policy.inline_pct then begin
      st.w.n_inlined <- st.w.n_inlined + 1;
      run_task eng st.w t
    end
    else begin
      st.w.n_pooled <- st.w.n_pooled + 1;
      Pool.push eng.pool t
    end
  end
  else Deque.push st.w.deque t

(* Fuzz mode only: at a statement boundary, maybe run a pooled task now.
   This lets a deferred sibling interleave between the parent's
   statements instead of only before-all (inline) or after-all (finish
   join). *)
and maybe_yield st =
  let eng = st.eng in
  if
    eng.is_fuzz && (not st.quiet) && st.atomic = 0 && eng.pool.len > 0
    && Tdrutil.Prng.int st.w.rng 100 < eng.policy.yield_pct
  then begin
    st.w.n_yields <- st.w.n_yields + 1;
    run_task eng st.w (Pool.take eng.pool (Tdrutil.Prng.int st.w.rng eng.pool.len))
  end

and wait_fin st (fin : finish) : unit =
  let eng = st.eng in
  if eng.is_fuzz then begin
    while Atomic.get fin.pending > 0 do
      if poisoned eng then raise Abort;
      if eng.pool.len = 0 then
        (* cannot happen: single worker, so every pending task is pooled *)
        invalid_arg "Par.Engine: pending tasks but empty pool";
      run_task eng st.w (Pool.take eng.pool (Tdrutil.Prng.int st.w.rng eng.pool.len))
    done;
    if poisoned eng then raise Abort
  end
  else begin
    let failures = ref 0 in
    while Atomic.get fin.pending > 0 && not (poisoned eng) do
      match try_get eng st.w with
      | Some t ->
          failures := 0;
          run_task eng st.w t
      | None ->
          incr failures;
          backoff_sleep !failures
    done;
    if Atomic.get fin.pending > 0 then raise Abort
  end

(* Run [t] to completion on worker [w].  Never raises: failures poison
   the engine; the pending count is always decremented so joins cannot
   hang. *)
and run_task eng (w : worker) (t : task) : unit =
  let body_bid =
    match t.t_body.s with Ast.Block b -> b.bid | _ -> -1
  in
  let st =
    { eng; w; locals = t.t_env; fin = t.t_fin; quiet = false; atomic = 0;
      monitored = eng.mon <> None; mtok = t.t_mtok;
      sbid = body_bid; sidx = 0; obid = -1; oidx = 0 }
  in
  (try exec_body st t.t_body with
  | Abort -> ()
  | Return_v _ ->
      (* the typechecker rejects [return] crossing an async boundary *)
      ()
  | e -> poison_with eng e);
  (* End the task before releasing the join: the finish's pending-count
     atomic then orders this event before the joiner's on_finish_end. *)
  (match eng.mon with
  | Some m -> m.em.Emon.on_task_end ~task:t.t_mtok ~fin:t.t_fin.ftok
  | None -> ());
  ignore (Atomic.fetch_and_add t.t_fin.pending (-1))

(* ------------------------------------------------------------------ *)
(* Worker loop and whole-program execution                             *)
(* ------------------------------------------------------------------ *)

let worker_loop eng (w : worker) =
  let failures = ref 0 in
  while not (Atomic.get eng.finished) do
    if poisoned eng then Unix.sleepf 2e-4
    else
      match try_get eng w with
      | Some t ->
          failures := 0;
          run_task eng w t
      | None ->
          incr failures;
          backoff_sleep !failures
  done

let run ?(fuel = Rt.Interp.default_fuel) ?(pace_ns = 0) ?policy ?emon ~mode
    (prog : Ast.program) : result =
  if not (Normalize.is_normalized prog) then
    error Loc.dummy "program must be normalized (use Front.compile)";
  let main =
    match Ast.find_func prog "main" with
    | Some f -> f
    | None -> error Loc.dummy "program has no 'main' function"
  in
  let is_fuzz, n_domains, seed =
    match mode with
    | Fuzz { seed } -> (true, 1, seed)
    | Domains { n; seed } -> (false, max 1 n, seed)
  in
  let policy =
    match policy with
    | Some p -> p
    | None -> if is_fuzz then fuzz_policy else domains_policy
  in
  let workers =
    Array.init n_domains (fun id ->
        {
          id;
          deque = Deque.create ();
          (* distinct, seed-derived streams per worker *)
          rng = Tdrutil.Prng.create ~seed:(seed + (31 * id));
          work = 0;
          batch = 0;
          pace_debt_ns = 0.;
          n_batches = 0;
          n_inlined = 0;
          n_pooled = 0;
          n_yields = 0;
        })
  in
  let mon =
    match emon with
    | None -> None
    | Some em ->
        Some
          {
            em;
            intern = Rt.Addr.Intern.create ();
            intern_mu = Mutex.create ();
            bases = Atomic.make [||];
          }
  in
  let eng =
    {
      funcs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      mon;
      fuel = Atomic.make fuel;
      aid = Atomic.make 0;
      buf = Buffer.create 256;
      buf_mu = Mutex.create ();
      cas_mu = Mutex.create ();
      iso_mu = Mutex.create ();
      poison = Atomic.make None;
      finished = Atomic.make false;
      pace_ns;
      batch_limit =
        (if pace_ns > 0 then max 32 (300_000 / pace_ns) else 2048);
      policy;
      is_fuzz;
      workers;
      pool = Pool.create ();
      n_tasks = Atomic.make 0;
      n_steals = Atomic.make 0;
    }
  in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace eng.funcs f.fname f) prog.funcs;
  let root = { pending = Atomic.make 0; ftok = -1 } in
  let st0 =
    { eng; w = workers.(0); locals = [ Hashtbl.create 8 ]; fin = root;
      quiet = false; atomic = 0; monitored = mon <> None; mtok = -1;
      sbid = main.body.bid; sidx = 0; obid = -1; oidx = 0 }
  in
  (* Globals are interned up front (ids 0.. in declaration order, before
     any array registration), as in Rt.Interp. *)
  let gaddrs =
    List.map
      (fun (g : Ast.global) ->
        let gaddr =
          match mon with
          | Some m -> Rt.Addr.Intern.add_global m.intern g.gname
          | None -> -1
        in
        (g, gaddr))
      prog.globals
  in
  (match mon with Some m -> m.em.Emon.on_init m.intern | None -> ());
  (* Global initializers are sequenced before every task: run them before
     any other domain exists, then never touch the table's structure
     again (only the refs and arrays it holds). *)
  st0.quiet <- true;
  List.iter
    (fun ((g : Ast.global), gaddr) ->
      let v = eval st0 g.ginit in
      Hashtbl.replace eng.globals g.gname { gval = ref v; gaddr })
    gaddrs;
  st0.quiet <- false;
  (match mon with
  | Some m ->
      st0.mtok <- m.em.Emon.on_task_begin ~parent:(-1);
      root.ftok <- m.em.Emon.on_finish_begin ~task:st0.mtok
  | None -> ());
  let t_start = Unix.gettimeofday () in
  let doms =
    Array.init (n_domains - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop eng workers.(i + 1)))
  in
  (try
     (try in_frame st0 (fun () -> exec_stmts st0 main.body.stmts)
      with Return_v _ -> ());
     wait_fin st0 root;
     match mon with
     | Some m ->
         m.em.Emon.on_finish_end ~task:st0.mtok ~fin:root.ftok;
         m.em.Emon.on_task_end ~task:st0.mtok ~fin:(-1)
     | None -> ()
   with
  | Abort -> ()
  | e -> poison_with eng e);
  Atomic.set eng.finished true;
  Array.iter Domain.join doms;
  let wall_s = Unix.gettimeofday () -. t_start in
  (match Atomic.get eng.poison with Some e -> raise e | None -> ());
  let globals =
    Hashtbl.fold (fun name g acc -> (name, !(g.gval)) :: acc) eng.globals []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 workers in
  let sched =
    if is_fuzz then
      Fuzz_stats
        {
          n_inlined = sum (fun w -> w.n_inlined);
          n_pooled = sum (fun w -> w.n_pooled);
          n_yields = sum (fun w -> w.n_yields);
        }
    else
      Domains_stats
        {
          n_steals = Atomic.get eng.n_steals;
          n_deque_grows = sum (fun w -> Deque.grows w.deque);
        }
  in
  {
    output = Buffer.contents eng.buf;
    globals;
    digest = Rt.Value.digest_globals globals;
    work = sum (fun w -> w.work);
    wall_s;
    n_domains;
    stats =
      {
        n_tasks = Atomic.get eng.n_tasks;
        n_fuel_batches = sum (fun w -> w.n_batches);
        sched;
      };
  }
