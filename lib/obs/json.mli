(** A deliberately tiny JSON value type: enough to emit the trace and
    metrics files and to re-parse them for schema validation in tests.
    Not a general-purpose JSON library — no streaming, no numbers beyond
    OCaml [int]/[float], UTF-8 passed through verbatim.

    Emission is canonical: object keys are always printed in ascending
    byte order regardless of the order in the [Obj] list, so emitted
    files are stable across runs and trivially diffable.  Parsing
    preserves the key order found in the input (tests use this to check
    that emitted files really are sorted). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Canonical rendering: object keys sorted, no insignificant
    whitespace except a single space after ':' and ','. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** @raise Parse_error on malformed input or trailing garbage. *)
val of_string : string -> t

(** [member k j] is the value bound to key [k] when [j] is an object
    containing it. *)
val member : string -> t -> t option

(** Write [to_string] plus a trailing newline to [file]. *)
val save : string -> t -> unit
