/* Peak resident set size for Obs.Rusage.

   One stub around getrusage(RUSAGE_SELF): ru_maxrss is the process'
   resident-set high-water mark, in kilobytes on Linux (the only target
   this project builds on; macOS reports bytes, which callers normalize
   only if the value is implausibly large).  Returned as an immediate
   int — a peak RSS beyond OCaml's int range is not a realistic
   concern. */

#include <caml/mlvalues.h>
#include <sys/resource.h>

CAMLprim value tdr_obs_peak_rss_kb(value unit)
{
  struct rusage ru;
  (void)unit;
  if (getrusage(RUSAGE_SELF, &ru) != 0)
    return Val_long(0);
  return Val_long((long)ru.ru_maxrss);
}
