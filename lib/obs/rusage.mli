(** Process- and heap-level memory gauges for the scale benchmarks and
    the [detector.peak_rss_kb] metric.

    [peak_rss_kb] is the OS view ([getrusage]'s resident-set high-water
    mark): monotone over the process lifetime, so deltas across runs
    only show growth, never reuse.  [watermark] is the GC view (heap
    words sampled at every major collection): per-measurement, so it
    {e can} compare backends within one process, which is what the
    bench harness wants. *)

(** Resident-set high-water mark of this process, in kilobytes
    (0 if the OS refuses to say). *)
val peak_rss_kb : unit -> int

(** Current total heap size in words (cheap: {!Gc.quick_stat}). *)
val heap_words : unit -> int

(** Live words after a forced full major collection (expensive: walks
    the heap; for after-the-run footprints). *)
val live_words : unit -> int

(** Heap high-water tracking between two points, sampled at every major
    GC cycle plus at creation and reads. *)
type watermark

(** Start tracking: records the current heap size and installs a GC
    alarm that keeps the maximum seen. *)
val watermark : unit -> watermark

(** Highest heap size (words) seen so far, including right now. *)
val high : watermark -> int

(** Stop tracking (removes the GC alarm) and return the final high-water
    mark. *)
val dispose : watermark -> int
