(* See clock.mli.  The C stub lives in clock_stubs.c; it returns a boxed
   int64, so [now_ns] allocates one small block per call — fine for span
   boundaries, and the disabled tracing path never calls it. *)

external now_ns : unit -> int64 = "tdr_obs_monotonic_now_ns"

let elapsed_s t0 = Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, elapsed_s t0)

let time_run ?(warmup = 1) ?(repeat = 3) f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let best = ref infinity in
  let res = ref None in
  for _ = 1 to max 1 repeat do
    let r, s = time f in
    res := Some r;
    if s < !best then best := s
  done;
  (Option.get !res, !best)
