(* See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* JSON has no inf/nan literals; clamp to null rather than emit an
   unparseable token.  Append ".0" when %.12g produced a bare integer so
   the value round-trips as a float. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then Some s
    else Some (s ^ ".0")

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> (
      match float_repr f with
      | Some s -> Buffer.add_string b s
      | None -> Buffer.add_string b "null")
  | Str s -> escape b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      let kvs = List.sort (fun (a, _) (c, _) -> compare a c) kvs in
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          escape b k;
          Buffer.add_string b ": ";
          emit b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  emit b j;
  Buffer.contents b

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

type st = { s : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then (
    st.pos <- st.pos + n;
    v)
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if st.pos >= String.length st.s then fail st "unterminated escape";
        let e = st.s.[st.pos] in
        st.pos <- st.pos + 1;
        match e with
        | '"' | '\\' | '/' ->
            Buffer.add_char b e;
            go ()
        | 'n' ->
            Buffer.add_char b '\n';
            go ()
        | 't' ->
            Buffer.add_char b '\t';
            go ()
        | 'r' ->
            Buffer.add_char b '\r';
            go ()
        | 'b' ->
            Buffer.add_char b '\b';
            go ()
        | 'f' ->
            Buffer.add_char b '\012';
            go ()
        | 'u' ->
            if st.pos + 4 > String.length st.s then fail st "short \\u escape";
            let hex = String.sub st.s st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            (* Encode the code point as UTF-8; surrogate pairs are not
               recombined (we never emit them). *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then (
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
            else (
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))));
            go ()
        | _ -> fail st "bad escape")
    | c ->
        Buffer.add_char b c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && is_num st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt tok with
    | Some n -> Int n
    | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then (
        st.pos <- st.pos + 1;
        Obj [])
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then (
        st.pos <- st.pos + 1;
        List [])
      else
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        elems []
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let save file j =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')
