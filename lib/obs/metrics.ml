(* See metrics.mli. *)

type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let declare t name = ignore (cell t name)
let set t name v = cell t name := v

let add t name v =
  let r = cell t name in
  r := !r + v

let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let snapshot t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let add_all t kvs = List.iter (fun (k, v) -> add t k v) kvs
let reset t = Hashtbl.reset t
let to_json t = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (snapshot t))
let save file t = Json.save file (to_json t)
