(* See metrics.mli. *)

(* Every operation holds [mu]: registries are shared between daemon
   worker domains, and an unguarded Hashtbl resize under concurrent
   [add]s corrupts the table.  The per-op cost is one uncontended lock —
   producers batch through [add_all] once per phase, never per event. *)
type t = { tbl : (string, int ref) Hashtbl.t; mu : Mutex.t }

let create () : t = { tbl = Hashtbl.create 32; mu = Mutex.create () }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let cell t name =
  match Hashtbl.find_opt t.tbl name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.tbl name r;
      r

let declare t name = locked t (fun () -> ignore (cell t name))
let set t name v = locked t (fun () -> cell t name := v)

let add t name v =
  locked t (fun () ->
      let r = cell t name in
      r := !r + v)

let incr t name = add t name 1

let get t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with Some r -> !r | None -> 0)

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let add_all t kvs =
  locked t (fun () ->
      List.iter
        (fun (k, v) ->
          let r = cell t k in
          r := !r + v)
        kvs)

let reset t = locked t (fun () -> Hashtbl.reset t.tbl)
let to_json t = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (snapshot t))
let save file t = Json.save file (to_json t)
