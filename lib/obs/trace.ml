(* See trace.mli. *)

type event = {
  name : string;
  ts_ns : int64;
  dur_ns : int64;
  depth : int;
  args : (string * int) list;
}

(* Plain refs, not Atomics: spans come from the driver domain only. *)
let on = ref false
let depth_now = ref 0
let buf : event list ref = ref []

let enabled () = !on
let enable () = on := true
let disable () = on := false

let reset () =
  buf := [];
  depth_now := 0

let record ev = buf := ev :: !buf

let with_span ?(args = []) name f =
  if not !on then f ()
  else begin
    let d = !depth_now in
    depth_now := d + 1;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        depth_now := d;
        record { name; ts_ns = t0; dur_ns = Int64.sub t1 t0; depth = d; args })
      f
  end

let events () =
  List.sort
    (fun a b ->
      match Int64.compare a.ts_ns b.ts_ns with
      | 0 -> Int64.compare b.dur_ns a.dur_ns
      | c -> c)
    !buf

let us_of_ns ns = Int64.to_float ns /. 1e3

let json_of_event e =
  Json.Obj
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str "tdrepair");
      ("ph", Json.Str "X");
      ("ts", Json.Float (us_of_ns e.ts_ns));
      ("dur", Json.Float (us_of_ns e.dur_ns));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.args));
    ]

let to_json () =
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.List (List.map json_of_event (events ())));
    ]

let save file = Json.save file (to_json ())
