(* See trace.mli. *)

type event = {
  name : string;
  ts_ns : int64;
  dur_ns : int64;
  depth : int;
  args : (string * int) list;
}

(* Domain-local state: each domain owns an independent enabled flag,
   nesting depth and span buffer, so concurrent jobs on daemon worker
   domains can trace without interleaving (or even observing) each
   other.  Within one domain the fields are plain mutables — no atomics
   needed, and the disabled fast path stays a DLS lookup plus one bool
   load. *)
type state = {
  mutable on : bool;
  mutable depth_now : int;
  mutable buf : event list;
}

let key =
  Domain.DLS.new_key (fun () -> { on = false; depth_now = 0; buf = [] })

let st () = Domain.DLS.get key

let enabled () = (st ()).on
let enable () = (st ()).on <- true
let disable () = (st ()).on <- false

let reset () =
  let s = st () in
  s.buf <- [];
  s.depth_now <- 0

let record s ev = s.buf <- ev :: s.buf

let with_span ?(args = []) name f =
  let s = st () in
  if not s.on then f ()
  else begin
    let d = s.depth_now in
    s.depth_now <- d + 1;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        s.depth_now <- d;
        record s { name; ts_ns = t0; dur_ns = Int64.sub t1 t0; depth = d; args })
      f
  end

let events () =
  List.sort
    (fun a b ->
      match Int64.compare a.ts_ns b.ts_ns with
      | 0 -> Int64.compare b.dur_ns a.dur_ns
      | c -> c)
    (st ()).buf

let us_of_ns ns = Int64.to_float ns /. 1e3

let json_of_event e =
  Json.Obj
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str "tdrepair");
      ("ph", Json.Str "X");
      ("ts", Json.Float (us_of_ns e.ts_ns));
      ("dur", Json.Float (us_of_ns e.dur_ns));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.args));
    ]

let to_json () =
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.List (List.map json_of_event (events ())));
    ]

let save file = Json.save file (to_json ())
