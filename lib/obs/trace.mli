(** Low-overhead span tracing with Chrome-trace-format output.

    Disabled by default: {!with_span} on the disabled path is one
    mutable-bool load and a branch — no clock read, no allocation beyond
    the caller's closure — cheap enough to leave in the detector and
    interpreter call paths permanently (the `bench detector` harness
    asserts this stays in the noise, see DESIGN.md §11).

    The span buffer is {e domain-local}: every domain owns an
    independent enabled flag, nesting depth and buffer, so concurrent
    jobs on different domains (the [tdrepair serve] worker pool) can
    each trace their own pipeline without interleaving.  {!enable},
    {!reset}, {!events} and {!to_json} all act on the calling domain's
    buffer only.  A span is recorded when it {e completes} (children
    before parents); {!events} and {!to_json} re-sort by start time so
    timestamps come out monotone. *)

type event = {
  name : string;
  ts_ns : int64;  (** span start, monotonic ns *)
  dur_ns : int64;
  depth : int;  (** nesting depth at entry; 0 = top level *)
  args : (string * int) list;
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** Drop all recorded events and reset nesting depth; the enabled flag
    is unchanged. *)
val reset : unit -> unit

(** [with_span name f] runs [f ()]; when tracing is enabled it records a
    complete-event span around the call (also on exception). *)
val with_span : ?args:(string * int) list -> string -> (unit -> 'a) -> 'a

(** Recorded events, sorted by start time (ties by decreasing
    duration, so parents sort before the children they enclose). *)
val events : unit -> event list

(** The full Chrome trace object: [{"displayTimeUnit": ..,
    "traceEvents": [..]}] with one phase-["X"] complete event per span,
    timestamps in microseconds, sorted ascending. *)
val to_json : unit -> Json.t

(** Write {!to_json} to [file]. *)
val save : string -> unit
