external peak_rss_kb_raw : unit -> int = "tdr_obs_peak_rss_kb" [@@noalloc]

(* Linux ru_maxrss is KB.  If a port ever reports bytes (macOS), values
   come out ~1000x too large; normalize heuristically so gauges stay
   comparable. *)
let peak_rss_kb () =
  let v = peak_rss_kb_raw () in
  if v > 1 lsl 36 then v / 1024 else v

let heap_words () = (Gc.quick_stat ()).Gc.heap_words

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

type watermark = { mutable high : int; mutable alarm : Gc.alarm option }

let watermark () =
  let w = { high = 0; alarm = None } in
  let sample () =
    let h = heap_words () in
    if h > w.high then w.high <- h
  in
  sample ();
  w.alarm <- Some (Gc.create_alarm sample);
  w

let high w =
  let h = heap_words () in
  if h > w.high then w.high <- h;
  w.high

let dispose w =
  Option.iter Gc.delete_alarm w.alarm;
  w.alarm <- None;
  high w
