(** Monotonic wall-clock, promoted from the benchmark harness so the
    tracing layer (and anything else in the production pipeline) can
    timestamp without depending on bechamel.

    All measurements go through [clock_gettime(CLOCK_MONOTONIC)] rather
    than [gettimeofday], which can jump under NTP. *)

(** Nanoseconds since an arbitrary (boot-relative) epoch. *)
val now_ns : unit -> int64

(** Seconds elapsed since a [now_ns] sample. *)
val elapsed_s : int64 -> float

(** [time f] runs [f ()] once and returns its result with the elapsed
    seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_run ?warmup ?repeat f] is the table-number policy: [warmup]
    discarded runs to fill caches and reach a steady allocator state,
    then the minimum of [repeat] timed runs (minimum, not mean: external
    preemption only ever adds time).  Returns the last result and the
    best time. *)
val time_run : ?warmup:int -> ?repeat:int -> (unit -> 'a) -> 'a * float
