(** Counters-and-gauges registry.

    A registry is a flat name → int map.  Dotted names group related
    counters ("detector.accesses", "engine.steals", ...); the registry
    itself imposes no hierarchy.  Counters use {!add}/{!incr}
    (cumulative across repair iterations); gauges use {!set} (latest
    value wins).  [declare] pins a key at 0 so snapshots always contain
    the full schema even when the producing subsystem never ran.

    Registries are domain-safe: every operation takes the registry's
    internal mutex, so one registry may be shared by the daemon's
    worker domains (each lock is uncontended in the common case).  Hot
    loops must still not call into a registry per event — producers
    keep local native counters and publish once per phase (see
    DESIGN.md §11). *)

type t

val create : unit -> t

(** Pin [name] at 0 unless it already has a value. *)
val declare : t -> string -> unit

val set : t -> string -> int -> unit
val add : t -> string -> int -> unit
val incr : t -> string -> unit

(** 0 when the key was never declared or written. *)
val get : t -> string -> int

(** All key/value pairs in ascending key order. *)
val snapshot : t -> (string * int) list

(** Fold a [(name, count)] list in with {!add}. *)
val add_all : t -> (string * int) list -> unit

val reset : t -> unit
val to_json : t -> Json.t

(** [save file t] writes {!to_json} to [file] (one JSON object, keys
    sorted). *)
val save : string -> t -> unit
