/* Monotonic clock for Obs.Clock.

   A single stub around clock_gettime(CLOCK_MONOTONIC), returning
   nanoseconds since an arbitrary epoch as a boxed int64.  Keeping the
   stub local (instead of borrowing bechamel's) lets the library stay
   zero-dependency: bechamel is a test-only dependency of this project
   and must not leak into the production binaries. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <stdint.h>

CAMLprim value tdr_obs_monotonic_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
