(** Growable arrays (amortized O(1) push).

    OCaml 5.1 predates [Dynarray]; this is the small subset the S-DPST and
    the detectors need.  Elements are stored densely in [0, length).  No
    dummy element is required: the backing array starts empty and uses the
    first pushed element as filler when growing. *)

type 'a t = { mutable data : 'a array; mutable len : int; hint : int }

(* [capacity] is a hint, not an allocation: without a dummy element the
   backing array cannot be pre-filled, so the hint is applied on the first
   push (which supplies the filler). *)
let create ?(capacity = 0) () = { data = [||]; len = 0; hint = capacity }

let length t = t.len

let is_empty t = t.len = 0

let grow t filler =
  let cap = max t.hint (max 8 (2 * Array.length t.data)) in
  let data = Array.make cap filler in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let unsafe_get t i = Array.unsafe_get t.data i

let unsafe_set t i x = Array.unsafe_set t.data i x

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let find_index p t =
  let rec go i =
    if i >= t.len then None else if p t.data.(i) then Some i else go (i + 1)
  in
  go 0

(** [replace_range t ~lo ~hi x] replaces the elements in positions
    [lo..hi] (inclusive) by the single element [x], shifting the suffix
    left.  Used to splice a new finish node over a range of its siblings. *)
let replace_range t ~lo ~hi x =
  if lo < 0 || hi >= t.len || lo > hi then invalid_arg "Vec.replace_range";
  t.data.(lo) <- x;
  let tail = t.len - (hi + 1) in
  Array.blit t.data (hi + 1) t.data (lo + 1) tail;
  t.len <- lo + 1 + tail

(** [ensure t n ~fill] grows [t] to length at least [n], filling new
    slots with [fill] — the primitive behind flat tables indexed by dense
    ids. *)
let ensure t n ~fill =
  if n > t.len then begin
    if n > Array.length t.data then begin
      let cap = max n (max t.hint (max 8 (2 * Array.length t.data))) in
      let data = Array.make cap fill in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end
    else Array.fill t.data t.len (n - t.len) fill;
    t.len <- n
  end

let clear t = t.len <- 0
