(** Deterministic pseudo-random numbers (SplitMix64) for reproducible
    workload and submission generators. *)

type t

val create : seed:int -> t

val next_int64 : t -> int64

(** Uniform int in [0, bound). @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Uniform element of a non-empty list.
    @raise Invalid_argument on the empty list. *)
val choose : t -> 'a list -> 'a
