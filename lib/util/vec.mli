(** Growable arrays (amortized O(1) push); the small [Dynarray] subset the
    S-DPST and detectors need on OCaml 5.1. *)

type 'a t

(** [create ?capacity ()] is an empty vector; [capacity] hints the size of
    the first backing allocation (applied on the first push, which supplies
    the filler element). *)
val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

(** @raise Invalid_argument out of bounds *)
val get : 'a t -> int -> 'a

(** @raise Invalid_argument out of bounds *)
val set : 'a t -> int -> 'a -> unit

(** Unchecked access — the caller must guarantee [0 <= i < length]. *)
val unsafe_get : 'a t -> int -> 'a

val unsafe_set : 'a t -> int -> 'a -> unit

val last : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val exists : ('a -> bool) -> 'a t -> bool

val find_index : ('a -> bool) -> 'a t -> int option

(** [replace_range t ~lo ~hi x] replaces elements [lo..hi] (inclusive) by
    the single element [x], shifting the suffix left.
    @raise Invalid_argument on an invalid range *)
val replace_range : 'a t -> lo:int -> hi:int -> 'a -> unit

(** [ensure t n ~fill] grows [t] to length at least [n], filling new
    slots with [fill]; no-op if already long enough. *)
val ensure : 'a t -> int -> fill:'a -> unit

val clear : 'a t -> unit
