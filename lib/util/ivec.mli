(** Growable vectors of unboxed [int]s.

    The detection hot path (shadow memory, union-find bags, access lists)
    stores all of its per-access state in these: a flat [int array] backing
    with amortized O(1) push and no per-element boxing, unlike [('a, int)
    Hashtbl.t] or [int option] fields.  [ensure] supports the
    grow-on-demand tables indexed by dense ids (interned addresses, S-DPST
    node ids). *)

type t

(** [create ?capacity ()] is an empty vector; [capacity] pre-sizes the
    backing array so the first pushes don't reallocate. *)
val create : ?capacity:int -> unit -> t

(** [make ~len fill] is a vector of [len] copies of [fill]. *)
val make : len:int -> int -> t

val length : t -> int

val is_empty : t -> bool

val push : t -> int -> unit

(** [push2 t a b] / [push4 t a b c d] push two/four ints with a single
    capacity check — for fixed-stride tuple buffers on hot paths. *)
val push2 : t -> int -> int -> unit

val push4 : t -> int -> int -> int -> int -> unit

(** [append_slice t lo hi] appends the slice [lo, hi) of [t] to the end
    of [t] (a self-blit; the slice must lie within the current length). *)
val append_slice : t -> int -> int -> unit

(** @raise Invalid_argument out of bounds *)
val get : t -> int -> int

(** @raise Invalid_argument out of bounds *)
val set : t -> int -> int -> unit

(** Unchecked access — the caller must guarantee [0 <= i < length]. *)
val unsafe_get : t -> int -> int

(** The raw backing array (valid entries are [0 .. length - 1]; the rest
    is garbage).  Perf escape hatch for batched hot loops that would
    otherwise re-load the indirection every iteration; the array is
    {e invalidated} by any growth ([push]/[ensure]), so callers must not
    hold it across a push to the same vector. *)
val unsafe_data : t -> int array

val unsafe_set : t -> int -> int -> unit

(** [ensure t n ~fill] grows [t] to length at least [n], filling new slots
    with [fill].  No-op if already long enough. *)
val ensure : t -> int -> fill:int -> unit

(** Last element ([push]/[pop] use the vector as a stack).
    @raise Invalid_argument on an empty vector *)
val top : t -> int

(** Remove and return the last element.
    @raise Invalid_argument on an empty vector *)
val pop : t -> int

val iter : (int -> unit) -> t -> unit

val fold : ('acc -> int -> 'acc) -> 'acc -> t -> 'acc

val to_list : t -> int list

val of_list : int list -> t

val clear : t -> unit

(** [truncate t n] drops elements [n ..] (keeps the backing array).
    With [unsafe_data]/[unsafe_set], the tail of an in-place filter.
    @raise Invalid_argument if [n] is negative or beyond the length *)
val truncate : t -> int -> unit

(** Shrink the backing array to the live length, releasing capacity freed
    by [truncate]/[pop] (invalidates any held [unsafe_data]). *)
val compact : t -> unit

(** Allocated backing slots (>= [length]), for footprint accounting. *)
val capacity : t -> int
