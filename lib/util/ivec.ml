(** Growable vectors of unboxed [int]s (see ivec.mli). *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 0) () = { data = Array.make (max capacity 0) 0; len = 0 }

let make ~len fill = { data = Array.make (max len 1) fill; len }

let length t = t.len

let is_empty t = t.len = 0

let grow t want =
  let cap = max 8 (max want (2 * Array.length t.data)) in
  let data = Array.make cap 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t (t.len + 1);
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

(* One capacity check and one call for a 4-int record: callers that push
   fixed-stride tuples into one vector (e.g. the detector's race buffer)
   are hot enough that four separate [push] calls show up in profiles. *)
let push4 t a b c d =
  let n = t.len + 4 in
  if n > Array.length t.data then grow t n;
  let data = t.data in
  Array.unsafe_set data t.len a;
  Array.unsafe_set data (t.len + 1) b;
  Array.unsafe_set data (t.len + 2) c;
  Array.unsafe_set data (t.len + 3) d;
  t.len <- n

(* Append the slice [lo, hi) of [t] to the end of [t]: the detector's
   scan-replay path re-emits a previously recorded run of race records
   with one memcpy instead of re-scanning the shadow. *)
let append_slice t lo hi =
  let k = hi - lo in
  if k > 0 then begin
    let n = t.len + k in
    if n > Array.length t.data then grow t n;
    Array.blit t.data lo t.data t.len k;
    t.len <- n
  end

let push2 t a b =
  let n = t.len + 2 in
  if n > Array.length t.data then grow t n;
  let data = t.data in
  Array.unsafe_set data t.len a;
  Array.unsafe_set data (t.len + 1) b;
  t.len <- n

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ivec.get";
  Array.unsafe_get t.data i

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Ivec.set";
  Array.unsafe_set t.data i x

let unsafe_get t i = Array.unsafe_get t.data i

(* Perf escape hatch for batched loops (see ivec.mli). *)
let unsafe_data t = t.data

let unsafe_set t i x = Array.unsafe_set t.data i x

let ensure t n ~fill =
  if n > t.len then begin
    if n > Array.length t.data then grow t n;
    Array.fill t.data t.len (n - t.len) fill;
    t.len <- n
  end

let top t =
  if t.len = 0 then invalid_arg "Ivec.top";
  Array.unsafe_get t.data (t.len - 1)

let pop t =
  if t.len = 0 then invalid_arg "Ivec.pop";
  t.len <- t.len - 1;
  Array.unsafe_get t.data t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let of_list xs =
  let t = create ~capacity:(List.length xs) () in
  List.iter (push t) xs;
  t

let clear t = t.len <- 0

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Ivec.truncate";
  t.len <- n

(* Shrink the backing array to the live length: after an in-place filter
   ([truncate]) of a long-lived vector, the freed capacity would
   otherwise be pinned until the next growth. *)
let compact t =
  if Array.length t.data > t.len then t.data <- Array.sub t.data 0 t.len

let capacity t = Array.length t.data
