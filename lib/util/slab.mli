(** Sparse slab-allocated tables of boxed elements — {!Islab} for ['a]
    slots, sharing its {!Islab.layout} choice (chunked growth vs the
    monolithic doubling baseline).  Used for the MRW detectors' shadow:
    one location record per touched address id, where chunked growth
    keeps footprint proportional to touched chunks and avoids the
    doubling copy (which for a boxed table also re-runs the GC write
    barrier per moved slot). *)

type 'a t

(** [create ?layout ~fill ()] is an empty table; every slot reads as
    [fill] until written (use a shared sentinel value).
    @raise Invalid_argument for a non-positive chunk size *)
val create : ?layout:Islab.layout -> fill:'a -> unit -> 'a t

(** Chunks allocated so far. *)
val n_chunks : 'a t -> int

(** Allocated backing words (slots plus directory), excluding the boxed
    elements themselves. *)
val words : 'a t -> int

(** @raise Invalid_argument on a negative index *)
val get : 'a t -> int -> 'a

(** @raise Invalid_argument on a negative index *)
val set : 'a t -> int -> 'a -> unit

(** Apply to every slot of every materialized chunk in index order
    (absent chunks are skipped; present chunks include their [fill]
    padding). *)
val iter_present : ('a -> unit) -> 'a t -> unit
