(* See slab.mli — the boxed-element counterpart of Islab, for shadow
   tables whose slots are records (one [mrw_loc] per touched location).
   Absent chunks are zero-length arrays, as in Islab. *)

type 'a t =
  | Chunks of {
      bits : int;
      mask : int;
      fill : 'a;
      mutable dir : 'a array array;
      mutable n_chunks : int;
    }
  | Mono of { fill : 'a; mutable data : 'a array }

let create ?(layout = Islab.Chunked Islab.default_chunk) ~fill () =
  match layout with
  | Islab.Chunked n ->
      if n <= 0 then invalid_arg "Slab.create: chunk size must be positive";
      let bits = ref 3 in
      while 1 lsl !bits < n do
        incr bits
      done;
      Chunks
        {
          bits = !bits;
          mask = (1 lsl !bits) - 1;
          fill;
          dir = [||];
          n_chunks = 0;
        }
  | Islab.Monolithic -> Mono { fill; data = [||] }

let n_chunks = function
  | Chunks c -> c.n_chunks
  | Mono m -> if Array.length m.data = 0 then 0 else 1

let words = function
  | Chunks c -> Array.length c.dir + (c.n_chunks lsl c.bits)
  | Mono m -> Array.length m.data

let get t i =
  if i < 0 then invalid_arg "Slab.get: negative index";
  match t with
  | Chunks c ->
      let ci = i lsr c.bits in
      if ci >= Array.length c.dir then c.fill
      else
        let ch = Array.unsafe_get c.dir ci in
        if Array.length ch = 0 then c.fill
        else Array.unsafe_get ch (i land c.mask)
  | Mono m -> if i < Array.length m.data then Array.unsafe_get m.data i else m.fill

let set t i v =
  if i < 0 then invalid_arg "Slab.set: negative index";
  match t with
  | Chunks c ->
      let ci = i lsr c.bits in
      if ci >= Array.length c.dir then begin
        let len = max (ci + 1) (2 * Array.length c.dir) in
        let nd = Array.make len [||] in
        Array.blit c.dir 0 nd 0 (Array.length c.dir);
        c.dir <- nd
      end;
      let ch = Array.unsafe_get c.dir ci in
      let ch =
        if Array.length ch <> 0 then ch
        else begin
          let ch = Array.make (1 lsl c.bits) c.fill in
          Array.unsafe_set c.dir ci ch;
          c.n_chunks <- c.n_chunks + 1;
          ch
        end
      in
      Array.unsafe_set ch (i land c.mask) v
  | Mono m ->
      if i >= Array.length m.data then begin
        let len = max (i + 1) (2 * Array.length m.data) in
        let nd = Array.make len m.fill in
        Array.blit m.data 0 nd 0 (Array.length m.data);
        m.data <- nd
      end;
      Array.unsafe_set m.data i v

(* Iterate over every slot ever materialized (in index order), absent
   chunks skipped — for end-of-run sweeps over touched locations. *)
let iter_present f = function
  | Chunks c ->
      Array.iter
        (fun ch -> if Array.length ch <> 0 then Array.iter f ch)
        c.dir
  | Mono m -> Array.iter f m.data
