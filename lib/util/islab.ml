(* See islab.mli.  Absent chunks are represented by a shared zero-length
   array (a chunk is never legitimately empty: real chunks always have
   [1 lsl bits] slots), so presence is one [Array.length] test and absent
   reads touch no per-chunk storage at all. *)

type layout = Chunked of int | Monolithic

let default_chunk = 8192

type chunked = {
  bits : int;  (** log2 slots per chunk *)
  mask : int;  (** [(1 lsl bits) - 1] *)
  c_fill : int;
  mutable dir : int array array;  (** chunk index -> chunk; [||] absent *)
  mutable chunks : int;
}

type mono = {
  m_fill : int;
  mutable data : int array;  (** grown by doubling, [fill]-padded *)
}

type t = Chunks of chunked | Mono of mono

let no_chunk : int array = [||]

(* Smallest power of two >= max 8 n, as its exponent.  The floor of 8
   keeps small strided groups (see [slot]) inside one chunk. *)
let bits_for n =
  let b = ref 3 in
  while 1 lsl !b < n do
    incr b
  done;
  !b

let create ?(layout = Chunked default_chunk) ~fill () =
  match layout with
  | Chunked n ->
      if n <= 0 then invalid_arg "Islab.create: chunk size must be positive";
      let bits = bits_for n in
      Chunks { bits; mask = (1 lsl bits) - 1; c_fill = fill; dir = [||]; chunks = 0 }
  | Monolithic -> Mono { m_fill = fill; data = [||] }

let chunk_slots = function Chunks c -> 1 lsl c.bits | Mono _ -> 0

let n_chunks = function
  | Chunks c -> c.chunks
  | Mono m -> if Array.length m.data = 0 then 0 else 1

let words = function
  | Chunks c -> Array.length c.dir + (c.chunks lsl c.bits)
  | Mono m -> Array.length m.data

let get t i =
  if i < 0 then invalid_arg "Islab.get: negative index";
  match t with
  | Chunks c ->
      let ci = i lsr c.bits in
      if ci >= Array.length c.dir then c.c_fill
      else
        let ch = Array.unsafe_get c.dir ci in
        if Array.length ch = 0 then c.c_fill
        else Array.unsafe_get ch (i land c.mask)
  | Mono m ->
      if i < Array.length m.data then Array.unsafe_get m.data i else m.m_fill

(* Materialize chunk [ci] (directory grown by doubling — the directory is
   one word per chunk, so its own overshoot is negligible). *)
let chunk_of c ci =
  if ci >= Array.length c.dir then begin
    let len = max (ci + 1) (2 * Array.length c.dir) in
    let nd = Array.make len no_chunk in
    Array.blit c.dir 0 nd 0 (Array.length c.dir);
    c.dir <- nd
  end;
  let ch = Array.unsafe_get c.dir ci in
  if Array.length ch <> 0 then ch
  else begin
    let ch = Array.make (1 lsl c.bits) c.c_fill in
    Array.unsafe_set c.dir ci ch;
    c.chunks <- c.chunks + 1;
    ch
  end

let set t i v =
  if i < 0 then invalid_arg "Islab.set: negative index";
  match t with
  | Chunks c -> Array.unsafe_set (chunk_of c (i lsr c.bits)) (i land c.mask) v
  | Mono m ->
      if i >= Array.length m.data then begin
        let len = max (i + 1) (2 * Array.length m.data) in
        let nd = Array.make len m.m_fill in
        Array.blit m.data 0 nd 0 (Array.length m.data);
        m.data <- nd
      end;
      Array.unsafe_set m.data i v

let slot t i ~stride =
  if i < 0 then invalid_arg "Islab.slot: negative index";
  match t with
  | Chunks c -> (chunk_of c (i lsr c.bits), i land c.mask)
  | Mono m ->
      if i + stride > Array.length m.data then begin
        let len = max (i + stride) (2 * Array.length m.data) in
        let nd = Array.make len m.m_fill in
        Array.blit m.data 0 nd 0 (Array.length m.data);
        m.data <- nd
      end;
      (m.data, i)
