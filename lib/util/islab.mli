(** Sparse tables of unboxed [int]s growing in fixed-size slabs.

    The detectors' shadow memory is indexed by dense interned address
    ids, but at scale the id space is large (one id per array cell) and
    access is skewed, so a monolithic doubling array ({!Ivec.ensure})
    pays for every id below the highest one touched — plus a transient
    2x copy at each doubling.  A slab table allocates fixed-size
    power-of-two chunks on first write, so footprint tracks the set of
    {e touched} chunks, never the id-space bound, and growth never
    copies.  Reads of untouched slots return the table's [fill] without
    allocating.

    The [Monolithic] layout keeps the old ensure-and-double behaviour
    behind the same interface — the memory baseline [bench scale]
    compares slab growth against. *)

type layout =
  | Chunked of int
      (** slots per slab, rounded up to a power of two (min 8) *)
  | Monolithic  (** one doubling array, [fill]-padded (the baseline) *)

(** Default slab size in slots (power of two): 64 KiB of [int]s. *)
val default_chunk : int

type t

(** [create ?layout ~fill ()] is an empty table; every slot reads as
    [fill] until written.
    @raise Invalid_argument for a non-positive chunk size *)
val create : ?layout:layout -> fill:int -> unit -> t

(** Slots per chunk ([0] for [Monolithic]). *)
val chunk_slots : t -> int

(** Chunks allocated so far ([Monolithic]: 1 once anything was written) —
    the [detector.shadow_slabs] gauge. *)
val n_chunks : t -> int

(** Allocated backing words (chunks plus directory), for footprint
    accounting. *)
val words : t -> int

(** @raise Invalid_argument on a negative index *)
val get : t -> int -> int

(** @raise Invalid_argument on a negative index *)
val set : t -> int -> int -> unit

(** [slot t i ~stride] returns the backing array and offset of the
    [stride] consecutive slots starting at [i], materializing their chunk
    (so the caller can read {e and} write them in place).  For
    struct-of-arrays shadow rows packed at a fixed stride: one directory
    probe serves the whole row.  Requires [i] to be [stride]-aligned with
    [stride] a power of two no larger than the chunk size; the returned
    array is invalidated by any later growth of a [Monolithic] table.
    @raise Invalid_argument on a negative index *)
val slot : t -> int -> stride:int -> int array * int
