(** Deterministic pseudo-random numbers (SplitMix64).

    Workload generators and the student-submission generator must be
    reproducible across runs and platforms, so they use this explicit-state
    generator rather than [Random]. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). @raise Invalid_argument if [bound <= 0].

    Rejection sampling: a plain [r mod bound] over the 62-bit draw
    favours the low residues whenever [bound] does not divide 2^62.
    Redraw when [r] lands in the short tail above the largest multiple
    of [bound]; the rejection probability is below [bound / 2^62], so
    explicit-seed draw sequences are unchanged in practice. *)
let rec int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  (* mask to a non-negative 62-bit native int before reducing *)
  let r = Int64.to_int (next_int64 t) land max_int in
  let v = r mod bound in
  if r - v > max_int - bound + 1 then int t bound else v

(** Uniform float in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Pick a uniformly random element of a non-empty list.

    Always consumes exactly one {!int} draw (even for a singleton), so
    the draw sequence matches the historical [List.nth]-based version;
    the indexing is O(1)-per-pick for small lists and one array build —
    instead of [List.nth]'s O(n) walk — for longer ones (progen calls
    this inside generator loops). *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | [ x ] ->
      ignore (int t 1);
      x
  | [ x0; x1 ] -> if int t 2 = 0 then x0 else x1
  | [ x0; x1; x2 ] -> (
      match int t 3 with 0 -> x0 | 1 -> x1 | _ -> x2)
  | _ ->
      let a = Array.of_list xs in
      Array.unsafe_get a (int t (Array.length a))
