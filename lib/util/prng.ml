(** Deterministic pseudo-random numbers (SplitMix64).

    Workload generators and the student-submission generator must be
    reproducible across runs and platforms, so they use this explicit-state
    generator rather than [Random]. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). @raise Invalid_argument if [bound <= 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  (* mask to a non-negative native int before reducing *)
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

(** Uniform float in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Pick a uniformly random element of a non-empty list. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))
