(** Race trace files.

    The paper's artifact separates the detector (which writes trace files
    of all detected races) from the analyzer (which reads them back and
    computes finish placements).  This module implements that exchange
    format: a line-oriented text file identifying race endpoints by their
    S-DPST node ids, which are reproducible because the depth-first
    execution is deterministic. *)

let magic = Trace_fmt.magic

exception Parse_error = Trace_fmt.Parse_error  (** message, 1-based line *)

(* Line-level codecs live in Trace_fmt, shared with the Spill sink. *)
let addr_of_string = Trace_fmt.addr_of_string

let kind_of_string = Trace_fmt.kind_of_string

(** Render races to the trace format. *)
let to_string ~(mode : Detector.mode) (races : Race.t list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Fmt.str "mode %a\n" Detector.pp_mode mode);
  Buffer.add_string buf (Fmt.str "races %d\n" (List.length races));
  List.iter
    (fun (r : Race.t) ->
      Trace_fmt.add_race_line buf ~kind:r.kind ~addr:r.addr
        ~src:r.src.Sdpst.Node.id ~sink:r.sink.Sdpst.Node.id)
    races;
  Buffer.contents buf

(** Parse a trace against the S-DPST of the (re-executed) program run that
    produced it; node ids are resolved to step nodes.
    @raise Parse_error on malformed input or unresolvable/non-step ids. *)
let of_string (tree : Sdpst.Node.tree) (s : string) :
    Detector.mode * Race.t list =
  let by_id = Hashtbl.create 1024 in
  Sdpst.Node.iter_tree
    (fun n -> Hashtbl.replace by_id n.Sdpst.Node.id n)
    tree;
  let resolve ~line id =
    match Hashtbl.find_opt by_id id with
    | Some n when Sdpst.Node.is_step n -> n
    | Some _ ->
        raise (Parse_error (Fmt.str "node %d is not a step" id, line))
    | None -> raise (Parse_error (Fmt.str "unknown node id %d" id, line))
  in
  let lines = String.split_on_char '\n' s in
  match lines with
  | m :: rest when String.trim m = magic ->
      let mode = ref Detector.Mrw in
      let races = ref [] in
      List.iteri
        (fun i line ->
          let lnum = i + 2 in
          match String.split_on_char ' ' (String.trim line) with
          | [ "" ] -> ()
          | [ "mode"; "SRW" ] -> mode := Detector.Srw
          | [ "mode"; "MRW" ] -> mode := Detector.Mrw
          | [ "races"; _n ] -> ()
          | [ "race"; kind; addr; src; sink ] -> (
              match (int_of_string_opt src, int_of_string_opt sink) with
              | Some src, Some sink ->
                  races :=
                    Race.make ~src:(resolve ~line:lnum src)
                      ~sink:(resolve ~line:lnum sink)
                      ~addr:(addr_of_string ~line:lnum addr)
                      ~kind:(kind_of_string ~line:lnum kind)
                    :: !races
              | _ ->
                  raise (Parse_error ("malformed race endpoints", lnum)))
          | _ -> raise (Parse_error ("unrecognized line: " ^ line, lnum)))
        rest;
      (!mode, List.rev !races)
  | _ -> raise (Parse_error ("bad magic; not a tdrace trace file", 1))

let save path ~mode races =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~mode races))

let load path tree =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string tree (really_input_string ic n))
