(** Race trace files.

    The paper's artifact separates the detector (which writes trace files
    of all detected races) from the analyzer (which reads them back and
    computes finish placements).  This module implements that exchange
    format: a line-oriented text file identifying race endpoints by their
    S-DPST node ids, which are reproducible because the depth-first
    execution is deterministic. *)

let magic = "tdrace-trace-v1"

exception Parse_error of string * int  (** message, 1-based line number *)

let string_of_addr = function
  | Rt.Addr.Global g -> "g:" ^ g
  | Rt.Addr.Cell (a, i) -> Fmt.str "c:%d:%d" a i

let addr_of_string ~line s =
  match String.split_on_char ':' s with
  | [ "g"; name ] -> Rt.Addr.Global name
  | [ "c"; a; i ] -> (
      match (int_of_string_opt a, int_of_string_opt i) with
      | Some a, Some i -> Rt.Addr.Cell (a, i)
      | _ -> raise (Parse_error ("malformed cell address " ^ s, line)))
  | _ -> raise (Parse_error ("malformed address " ^ s, line))

let string_of_kind = function
  | Race.Write_read -> "WR"
  | Race.Read_write -> "RW"
  | Race.Write_write -> "WW"

let kind_of_string ~line = function
  | "WR" -> Race.Write_read
  | "RW" -> Race.Read_write
  | "WW" -> Race.Write_write
  | s -> raise (Parse_error ("unknown race kind " ^ s, line))

(** Render races to the trace format. *)
let to_string ~(mode : Detector.mode) (races : Race.t list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Fmt.str "mode %a\n" Detector.pp_mode mode);
  Buffer.add_string buf (Fmt.str "races %d\n" (List.length races));
  List.iter
    (fun (r : Race.t) ->
      Buffer.add_string buf
        (Fmt.str "race %s %s %d %d\n" (string_of_kind r.kind)
           (string_of_addr r.addr) r.src.Sdpst.Node.id r.sink.Sdpst.Node.id))
    races;
  Buffer.contents buf

(** Parse a trace against the S-DPST of the (re-executed) program run that
    produced it; node ids are resolved to step nodes.
    @raise Parse_error on malformed input or unresolvable/non-step ids. *)
let of_string (tree : Sdpst.Node.tree) (s : string) :
    Detector.mode * Race.t list =
  let by_id = Hashtbl.create 1024 in
  Sdpst.Node.iter_tree
    (fun n -> Hashtbl.replace by_id n.Sdpst.Node.id n)
    tree;
  let resolve ~line id =
    match Hashtbl.find_opt by_id id with
    | Some n when Sdpst.Node.is_step n -> n
    | Some _ ->
        raise (Parse_error (Fmt.str "node %d is not a step" id, line))
    | None -> raise (Parse_error (Fmt.str "unknown node id %d" id, line))
  in
  let lines = String.split_on_char '\n' s in
  match lines with
  | m :: rest when String.trim m = magic ->
      let mode = ref Detector.Mrw in
      let races = ref [] in
      List.iteri
        (fun i line ->
          let lnum = i + 2 in
          match String.split_on_char ' ' (String.trim line) with
          | [ "" ] -> ()
          | [ "mode"; "SRW" ] -> mode := Detector.Srw
          | [ "mode"; "MRW" ] -> mode := Detector.Mrw
          | [ "races"; _n ] -> ()
          | [ "race"; kind; addr; src; sink ] -> (
              match (int_of_string_opt src, int_of_string_opt sink) with
              | Some src, Some sink ->
                  races :=
                    Race.make ~src:(resolve ~line:lnum src)
                      ~sink:(resolve ~line:lnum sink)
                      ~addr:(addr_of_string ~line:lnum addr)
                      ~kind:(kind_of_string ~line:lnum kind)
                    :: !races
              | _ ->
                  raise (Parse_error ("malformed race endpoints", lnum)))
          | _ -> raise (Parse_error ("unrecognized line: " ^ line, lnum)))
        rest;
      (!mode, List.rev !races)
  | _ -> raise (Parse_error ("bad magic; not a tdrace trace file", 1))

let save path ~mode races =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~mode races))

let load path tree =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string tree (really_input_string ic n))
