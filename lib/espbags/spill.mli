(** Disk spill of detector race-record overflow.

    On heavily racy scale inputs the packed race buffer is the
    detector's dominant allocation (MRW reports every pair), so past a
    configurable record cap the detectors drain it to a file instead of
    growing without bound.  The file is the {!Trace} line format (header
    once, then one [race] line per record, no [races N] summary — which
    {!Trace.of_string} tolerates), so a spill file is itself a loadable
    trace of the spilled prefix.  [races]/[race_count] on a spilling
    detector transparently stitch the spilled prefix back in front of
    the in-memory suffix, in original report order. *)

type config = { path : string; cap : int  (** max in-memory records *) }

(** Default record cap (2^20 records = 16 MiB of packed buffer). *)
val default_cap : int

(** @raise Invalid_argument for a non-positive cap *)
val config : ?cap:int -> string -> config

type t

(** [create cfg ~mode_name] is a fresh sink; the file is only created
    (truncating any stale one) on the first overflow. *)
val create : config -> mode_name:string -> t

val path : t -> string

(** The overflow threshold as an [r_buf] {e length} (2 ints per record). *)
val cap_ints : t -> int

(** Race records written out so far. *)
val n_spilled : t -> int

(** Append every packed race record of [r_buf] to the file.  The caller
    clears the buffer (and invalidates any scan-replay memos ranging
    into it) afterwards. *)
val append : t -> intern:Rt.Addr.Intern.t -> Tdrutil.Ivec.t -> unit

(** Flush and release the file handle (the file remains readable, and a
    later [append] reopens it without truncating). *)
val close : t -> unit

(** Read the spilled records back, in spill order.  [resolve] maps a
    step id to its node (every spilled id is in the detector's step
    registry).
    @raise Trace_fmt.Parse_error on a corrupted file *)
val records : t -> resolve:(int -> Sdpst.Node.t) -> Race.t list
