(** Race trace files: the exchange format between the detector and the
    analyzer (paper Appendix A).  Line-oriented text identifying race
    endpoints by S-DPST node ids, which are stable because the depth-first
    execution is deterministic. *)

val magic : string

exception Parse_error of string * int
(** message, 1-based line number *)

(** Render races to the trace format. *)
val to_string : mode:Detector.mode -> Race.t list -> string

(** Parse a trace against the S-DPST of a (re-executed) run of the same
    program.
    @raise Parse_error on malformed input or unresolvable ids. *)
val of_string : Sdpst.Node.tree -> string -> Detector.mode * Race.t list

val save : string -> mode:Detector.mode -> Race.t list -> unit

val load : string -> Sdpst.Node.tree -> Detector.mode * Race.t list
