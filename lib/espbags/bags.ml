(** S-bags and P-bags for the ESP-bags algorithm (Raman et al., FMSD 2012).

    During the depth-first execution every task (async instance, plus the
    root task) owns an S-bag and every finish instance (plus the implicit
    root finish) owns a P-bag:

    - a task's S-bag holds tasks whose completed work is {e serialized}
      with the task's continuation;
    - a finish's P-bag holds completed tasks whose work may run {e in
      parallel} with the code that follows their spawn point, until the
      finish completes.

    A memory access by the current task races with an earlier access by
    task [t] iff [t] is currently in a P-bag.

    Bags are union-find classes over tasks.  Tasks are handed in as
    S-DPST node ids but interned to {e dense task indices} at
    [task_begin]: node ids are dense over {e all} nodes (every step is a
    node), so arrays indexed by them are an order of magnitude larger
    than the task count and every probe is a cache miss.  Indexed by
    dense task index, the whole union-find state (parent, rank, mark,
    memo) of a run fits in cache.  [current_task] and [in_pbag] speak
    dense indices — they are the detector's per-shadow-entry scan pair,
    so a membership test must be a few cached array reads, not a
    hashtable probe chain.  Bag marks are unboxed ints ([2*owner +
    kind]), and the task/finish stacks are int vectors, so no bag
    transition or membership test allocates. *)

(* A class root's mark encodes which bag the class currently is:
   [2*task] for the S-bag of [task], [2*finish + 1] for the P-bag of
   [finish].  Marks of non-root nodes are stale and never read. *)
let sbag task = 2 * task

let pbag finish = (2 * finish) + 1

type t = {
  mutable n_tasks : int;  (** dense task indices are [0 .. n_tasks-1] *)
  parent : Tdrutil.Ivec.t;
      (** dense task index -> union-find parent; -1 unknown *)
  rank : Tdrutil.Ivec.t;  (** meaningful at class roots *)
  mark : Tdrutil.Ivec.t;  (** class root -> current bag (encoded) *)
  pbag_root : Tdrutil.Ivec.t;
      (** finish node id -> an element (dense index) of its P-bag; -1
          empty *)
  task_stack : Tdrutil.Ivec.t;
      (** dynamically enclosing task {e node ids}, innermost last (kept
          as node ids so [task_end] can check the caller's id) *)
  dtask_stack : Tdrutil.Ivec.t;  (** parallel: their dense indices *)
  finish_stack : Tdrutil.Ivec.t;  (** dynamically enclosing finishes *)
  mutable version : int;
      (** bumped by every transition that can change a bag membership
          ([task_end], [finish_end]); lets [in_pbag] cache its answer *)
  pbag_cache : Tdrutil.Ivec.t;
      (** dense task index -> [2*version + in_pbag] memo of the last
          [in_pbag] query; -1 never queried.  Detector scans re-test the
          same tasks many times between transitions, so most tests are
          one array read instead of a union-find walk. *)
  (* Observability counters.  Placement is chosen so nothing is added to
     the per-entry scan fast path: [find]/[union] only run on memo
     misses and structural transitions, and [scan_report] counts once
     per call, not per entry. *)
  mutable n_finds : int;
  mutable n_unions : int;  (** class merges (no-op unions not counted) *)
  mutable n_scan_entries : int;  (** shadow entries tested by scans *)
  mutable serial_ver : int;
      (** bumped when a finish ending in the {e root} task's continuation
          merges its P-bag into the root S-bag: the merged tasks just
          became {!forever_serial}, so shadow state can retire their
          entries (the detectors' epoch-GC trigger) *)
}

let create () =
  {
    n_tasks = 0;
    parent = Tdrutil.Ivec.create ~capacity:256 ();
    rank = Tdrutil.Ivec.create ~capacity:256 ();
    mark = Tdrutil.Ivec.create ~capacity:256 ();
    pbag_root = Tdrutil.Ivec.create ~capacity:64 ();
    task_stack = Tdrutil.Ivec.create ~capacity:32 ();
    dtask_stack = Tdrutil.Ivec.create ~capacity:32 ();
    finish_stack = Tdrutil.Ivec.create ~capacity:32 ();
    version = 0;
    pbag_cache = Tdrutil.Ivec.create ~capacity:256 ();
    n_finds = 0;
    n_unions = 0;
    n_scan_entries = 0;
    serial_ver = 0;
  }

let n_finds t = t.n_finds
let n_unions t = t.n_unions
let n_scan_entries t = t.n_scan_entries
let serial_version t = t.serial_ver

let find t x =
  if
    x < 0
    || x >= Tdrutil.Ivec.length t.parent
    || Tdrutil.Ivec.unsafe_get t.parent x < 0
  then invalid_arg (Fmt.str "Bags.find: unknown task %d" x);
  t.n_finds <- t.n_finds + 1;
  (* path halving: every node on the walk is re-pointed at its
     grandparent, so repeated finds flatten the class *)
  let x = ref x in
  let p = ref (Tdrutil.Ivec.unsafe_get t.parent !x) in
  while !p <> !x do
    let gp = Tdrutil.Ivec.unsafe_get t.parent !p in
    Tdrutil.Ivec.unsafe_set t.parent !x gp;
    x := gp;
    p := Tdrutil.Ivec.unsafe_get t.parent gp
  done;
  !x

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    t.n_unions <- t.n_unions + 1;
    let ka = Tdrutil.Ivec.unsafe_get t.rank ra
    and kb = Tdrutil.Ivec.unsafe_get t.rank rb in
    let root, child = if ka >= kb then (ra, rb) else (rb, ra) in
    Tdrutil.Ivec.unsafe_set t.parent child root;
    if ka = kb then Tdrutil.Ivec.unsafe_set t.rank root (ka + 1);
    root
  end

let mark_of t x = Tdrutil.Ivec.unsafe_get t.mark (find t x)

(** Is task [x] {e permanently} serialized with everything that still
    runs — i.e. currently in the root task's S-bag (mark [sbag 0]; the
    root task interns to dense index 0)?  Permanent because that class
    can never turn into a P-bag again: while a task [d] lives its class
    is marked [sbag d] (only [finish_end] with [d] current merges into
    it), so a live non-root task is never in the root class, and the only
    transition that re-marks a class to a P-bag — [task_end] — therefore
    never hits it ([task_end] of the root itself is the no-op empty-
    finish-stack case).  The detectors' epoch GC retires shadow entries
    whose recording task satisfies this: such an entry can never be in a
    P-bag again, so it can never report again. *)
let forever_serial t x = mark_of t x = 0

(** Is task [x] currently in a P-bag (i.e. parallel-possible with the
    currently executing code)?  Memoized per [version]: between two
    membership-changing transitions the answer is constant, so repeated
    tests (the detector's shadow scans) cost one array read. *)
let in_pbag t x =
  if x < 0 || x >= t.n_tasks then
    (* unknown task: [find] raises the contractual Invalid_argument *)
    mark_of t x land 1 = 1
  else begin
    let c = Tdrutil.Ivec.unsafe_get t.pbag_cache x in
    if c >= 0 && c lsr 1 = t.version then c land 1 = 1
    else begin
      let b = mark_of t x land 1 = 1 in
      Tdrutil.Ivec.unsafe_set t.pbag_cache x
        ((t.version lsl 1) lor Bool.to_int b);
      b
    end
  end

(** [scan_report t entries ~out ~sink ~meta] is the detector's fused
    inner loop.  [entries] is a shadow location's recorded-access list,
    each element packed as [(task lsl 31) lor sid] — [task] a dense index
    from {!current_task}, [sid] the recording step's id.  For every entry
    whose task is currently in a P-bag, the packed 2-int race record
    [(sid lsl 31) lor sink, meta] is appended to [out] — unless
    [sid = sink] (an access never races with its own step).  Batching
    the loop here keeps the membership-memo probe inlined (one cached
    read per entry on the fast path) and emits hit records in the same
    pass, with no per-element cross-module call, no hit scratch vector,
    and no closure.  Callers guarantee [sink] and every packed [sid] fit
    in 31 bits (they are S-DPST node ids; see the detector's record-push
    guard). *)
let scan_report t entries ~out ~sink ~meta =
  let n = Tdrutil.Ivec.length entries in
  t.n_scan_entries <- t.n_scan_entries + n;
  let ver = t.version in
  (* raw backing arrays, hoisted: neither [entries] nor the memo grows
     during the scan ([out] is a different vector), so the arrays stay
     valid and the loop body reloads nothing *)
  let edata = Tdrutil.Ivec.unsafe_data entries in
  let cdata = Tdrutil.Ivec.unsafe_data t.pbag_cache in
  for i = 0 to n - 1 do
    let e = Array.unsafe_get edata i in
    let x = e lsr 31 in
    let c = Array.unsafe_get cdata x in
    let hit =
      if c >= 0 && c lsr 1 = ver then c land 1 = 1
      else begin
        let bit = mark_of t x land 1 = 1 in
        Array.unsafe_set cdata x ((ver lsl 1) lor Bool.to_int bit);
        bit
      end
    in
    if hit then begin
      let src = e land ((1 lsl 31) - 1) in
      if src <> sink then
        Tdrutil.Ivec.push2 out ((src lsl 31) lor sink) meta
    end
  done

let current_task t =
  if Tdrutil.Ivec.is_empty t.dtask_stack then
    invalid_arg "Bags.current_task: no task executing";
  Tdrutil.Ivec.top t.dtask_stack

(* ------------------------------------------------------------------ *)
(* ESP-bags transitions                                                *)
(* ------------------------------------------------------------------ *)

(** A task starts: fresh singleton S-bag {task}.  [task] (a node id) is
    interned to the next dense index here. *)
let task_begin t ~task =
  let d = t.n_tasks in
  t.n_tasks <- d + 1;
  Tdrutil.Ivec.push t.parent d;
  Tdrutil.Ivec.push t.rank 0;
  Tdrutil.Ivec.push t.mark (sbag d);
  Tdrutil.Ivec.push t.pbag_cache (-1);
  Tdrutil.Ivec.push t.task_stack task;
  Tdrutil.Ivec.push t.dtask_stack d

(** A task ends: its S-bag contents move to the P-bag of its immediately
    enclosing finish — they may now run in parallel with the continuation
    of the parent task, until that finish completes. *)
let task_end t ~task =
  if Tdrutil.Ivec.is_empty t.task_stack || Tdrutil.Ivec.top t.task_stack <> task
  then invalid_arg "Bags.task_end: task stack mismatch";
  ignore (Tdrutil.Ivec.pop t.task_stack);
  let d = Tdrutil.Ivec.pop t.dtask_stack in
  t.version <- t.version + 1;
  if not (Tdrutil.Ivec.is_empty t.finish_stack) then begin
    (* the root task ends after the root finish; nothing outlives it *)
    let ief = Tdrutil.Ivec.top t.finish_stack in
    let r = find t d in
    match Tdrutil.Ivec.get t.pbag_root ief with
    | -1 ->
        Tdrutil.Ivec.unsafe_set t.mark r (pbag ief);
        Tdrutil.Ivec.unsafe_set t.pbag_root ief r
    | existing ->
        let root = union t r existing in
        Tdrutil.Ivec.unsafe_set t.mark root (pbag ief);
        Tdrutil.Ivec.unsafe_set t.pbag_root ief root
  end

(** A finish region starts: its P-bag is empty. *)
let finish_begin t ~finish =
  Tdrutil.Ivec.ensure t.pbag_root (finish + 1) ~fill:(-1);
  Tdrutil.Ivec.unsafe_set t.pbag_root finish (-1);
  Tdrutil.Ivec.push t.finish_stack finish

(** A finish region ends: everything in its P-bag is now serialized with
    the continuation of the enclosing task, so it moves to that task's
    S-bag. *)
let finish_end t ~finish =
  if
    Tdrutil.Ivec.is_empty t.finish_stack
    || Tdrutil.Ivec.top t.finish_stack <> finish
  then invalid_arg "Bags.finish_end: finish stack mismatch";
  ignore (Tdrutil.Ivec.pop t.finish_stack);
  t.version <- t.version + 1;
  match Tdrutil.Ivec.get t.pbag_root finish with
  | -1 -> ()
  | r ->
      Tdrutil.Ivec.unsafe_set t.pbag_root finish (-1);
      let task = current_task t in
      let root = union t r (find t task) in
      Tdrutil.Ivec.unsafe_set t.mark root (sbag task);
      if task = 0 then t.serial_ver <- t.serial_ver + 1
