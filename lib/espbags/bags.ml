(** S-bags and P-bags for the ESP-bags algorithm (Raman et al., FMSD 2012).

    During the depth-first execution every task (async instance, plus the
    root task) owns an S-bag and every finish instance (plus the implicit
    root finish) owns a P-bag:

    - a task's S-bag holds tasks whose completed work is {e serialized}
      with the task's continuation;
    - a finish's P-bag holds completed tasks whose work may run {e in
      parallel} with the code that follows their spawn point, until the
      finish completes.

    A memory access by the current task races with an earlier access by
    task [t] iff [t] is currently in a P-bag.

    Bags are union-find classes over task ids (S-DPST node ids); each class
    root carries a mark saying which bag the class currently is. *)

type mark =
  | Sbag of int  (** S-bag of the task with this node id *)
  | Pbag of int  (** P-bag of the finish with this node id *)

type t = {
  parent : (int, int) Hashtbl.t;
  rank : (int, int) Hashtbl.t;
  mark : (int, mark) Hashtbl.t;  (** class root -> current bag *)
  pbag_root : (int, int) Hashtbl.t;  (** finish id -> an element of its P-bag *)
  mutable task_stack : int list;  (** dynamically enclosing tasks, innermost first *)
  mutable finish_stack : int list;  (** dynamically enclosing finishes *)
}

let create () =
  {
    parent = Hashtbl.create 256;
    rank = Hashtbl.create 256;
    mark = Hashtbl.create 256;
    pbag_root = Hashtbl.create 64;
    task_stack = [];
    finish_stack = [];
  }

let rec find t x =
  match Hashtbl.find_opt t.parent x with
  | None -> invalid_arg (Fmt.str "Bags.find: unknown task %d" x)
  | Some p ->
      if p = x then x
      else begin
        let r = find t p in
        Hashtbl.replace t.parent x r;
        r
      end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    let ka = Hashtbl.find t.rank ra and kb = Hashtbl.find t.rank rb in
    let root, child = if ka >= kb then (ra, rb) else (rb, ra) in
    Hashtbl.replace t.parent child root;
    if ka = kb then Hashtbl.replace t.rank root (ka + 1);
    Hashtbl.remove t.mark child;
    root
  end

let mark_of t x = Hashtbl.find t.mark (find t x)

(** Is task [x] currently in a P-bag (i.e. parallel-possible with the
    currently executing code)? *)
let in_pbag t x = match mark_of t x with Pbag _ -> true | Sbag _ -> false

let current_task t =
  match t.task_stack with
  | task :: _ -> task
  | [] -> invalid_arg "Bags.current_task: no task executing"

(* ------------------------------------------------------------------ *)
(* ESP-bags transitions                                                *)
(* ------------------------------------------------------------------ *)

(** A task starts: fresh singleton S-bag {task}. *)
let task_begin t ~task =
  Hashtbl.replace t.parent task task;
  Hashtbl.replace t.rank task 0;
  Hashtbl.replace t.mark task (Sbag task);
  t.task_stack <- task :: t.task_stack

(** A task ends: its S-bag contents move to the P-bag of its immediately
    enclosing finish — they may now run in parallel with the continuation
    of the parent task, until that finish completes. *)
let task_end t ~task =
  (match t.task_stack with
  | x :: rest when x = task -> t.task_stack <- rest
  | _ -> invalid_arg "Bags.task_end: task stack mismatch");
  match t.finish_stack with
  | [] ->
      (* The root task ends after the root finish; nothing outlives it. *)
      ()
  | ief :: _ -> (
      let r = find t task in
      match Hashtbl.find_opt t.pbag_root ief with
      | None ->
          Hashtbl.replace t.mark r (Pbag ief);
          Hashtbl.replace t.pbag_root ief r
      | Some existing ->
          let root = union t r existing in
          Hashtbl.replace t.mark root (Pbag ief);
          Hashtbl.replace t.pbag_root ief root)

(** A finish region starts: its P-bag is empty. *)
let finish_begin t ~finish = t.finish_stack <- finish :: t.finish_stack

(** A finish region ends: everything in its P-bag is now serialized with
    the continuation of the enclosing task, so it moves to that task's
    S-bag. *)
let finish_end t ~finish =
  (match t.finish_stack with
  | f :: rest when f = finish -> t.finish_stack <- rest
  | _ -> invalid_arg "Bags.finish_end: finish stack mismatch");
  match Hashtbl.find_opt t.pbag_root finish with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.pbag_root finish;
      let task = current_task t in
      let root = union t r (find t task) in
      Hashtbl.replace t.mark root (Sbag task)
