(** The two ESP-bags race detectors.

    {b SRW} (Single Reader-Writer) is the original algorithm of Raman et
    al.: the shadow memory keeps one writer and one reader per location, so
    a single run reports a subset of the races (at least one per racy
    location, and none iff the input is race-free for the given input).

    {b MRW} (Multiple Reader-Writer) is the paper's §4.1 modification: the
    shadow memory keeps {e all} readers and writers per location, so every
    potential race for the input is reported in one run — the property the
    repair tool needs to fix all races without re-running the detector per
    repair.

    Both are packaged as {!Rt.Monitor} implementations to be passed to
    {!Rt.Interp.run}.

    {b Hot-path representation.}  Detection is the inner loop of the whole
    tool, so the per-access path allocates nothing and hashes nothing:

    - locations arrive as dense interned ids ({!Rt.Addr.Intern}), so the
      shadow memory is a table indexed by id — no [Addr.Table] probe, no
      boxed address;
    - MRW access lists are struct-of-arrays (an int vector of task ids
      scanned against the bags, and a parallel vector of step nodes read
      only when a race is actually reported) — no per-access record;
    - per-location step {e epochs} (the id of the last recorded
      reader/writer step) give O(1) full per-step dedup of the lists: the
      depth-first execution never resumes a step node, so a step's
      accesses to a location are contiguous and one epoch compare replaces
      the seed's inspect-the-last-record dance (and its option
      allocation).  {!Reference} keeps the seed representation; the
      differential suite holds the two to identical race multisets.

    {b Memory bounds at scale} (DESIGN.md §15).  Million-access inputs
    add three mechanisms, all report-invariant:

    - shadow tables grow in fixed-size slabs ({!Tdrutil.Islab}) allocated
      per touched id range, instead of one doubling array sized by the
      highest id ([Monolithic] keeps the old behaviour as the comparison
      baseline);
    - {e epoch GC}: once a finish closing in the root task's continuation
      makes a batch of tasks {!Bags.forever_serial}, their MRW shadow
      entries can never report again and are dropped — lazily, per
      location, on its next access;
    - race-record overflow past a cap spills to disk ({!Spill}) in the
      trace format; [races] stitches the spilled prefix back in order. *)

type mode = Srw | Mrw

let pp_mode ppf = function
  | Srw -> Fmt.string ppf "SRW"
  | Mrw -> Fmt.string ppf "MRW"

let mode_name = function Srw -> "SRW" | Mrw -> "MRW"

(* Race reports are recorded as packed 2-int records in one flat buffer
   and only materialized into {!Race.t} values when [races] is called:
   reporting is on the per-access hot path (a racy location's whole
   access list reports on every later conflicting access), and deferring
   the boxed-address reconstruction and record allocation keeps that path
   down to one [Ivec.push2] — no allocation and, crucially, no GC write
   barrier (pushing a step {e node} instead of its id would run
   [caml_modify] per report).  Packing [(src lsl 31) lor sink] and
   [(addr lsl 2) lor kind] halves the buffer: on racy inputs the record
   volume is the detector's main memory traffic (and GC pacing charge).
   Step ids are guarded to 31 bits when recorded into shadow lists.  The
   [steps] registry maps a step id back to its node — one pointer store
   per step, not per report — and is what materialization reads. *)
type t = {
  mode : mode;
  bags : Bags.t;
  mutable monitor : Rt.Monitor.t;
  steps : Sdpst.Node.t Tdrutil.Vec.t;
      (** step id -> step node, filled on each step's first access *)
  r_buf : Tdrutil.Ivec.t;
      (** race records, stride 2, packed: [(src lsl 31) lor sink] of the
          source/sink step ids, then [(addr lsl 2) lor kind] of the
          interned address id and encoded {!Race.kind} *)
  spill : Spill.t option;
      (** overflow sink: past its cap, [r_buf] drains to disk *)
  mutable spill_gen : int;
      (** bumped per drain — invalidates scan-replay memos, whose saved
          ranges point into the cleared buffer *)
  mutable intern : Rt.Addr.Intern.t;
      (** the monitored run's address interner (set by [on_init]); used to
          reconstruct boxed addresses when races are materialized *)
  mutable n_accesses : int;  (** monitored accesses checked *)
  mutable n_locations : int;  (** distinct locations touched *)
  mutable n_skipped : int;  (** accesses skipped by a static pre-pass *)
  mutable n_retired : int;  (** shadow entries dropped by epoch GC *)
  mutable shadow_info : unit -> int * int;
      (** current (slab count, allocated shadow words) — closes over the
          flavour's tables, for {!stats} and the scale bench *)
}

let wr = 0

and rw = 1

and ww = 2

let kind_of_code = Trace_fmt.kind_of_code

let n_spilled t = match t.spill with None -> 0 | Some sp -> Spill.n_spilled sp

let race_count t = n_spilled t + (Tdrutil.Ivec.length t.r_buf / 2)

(** Is the execution race-free (no race reported)? *)
let clean t = race_count t = 0

let sid_mask = (1 lsl 31) - 1

let races t =
  let node i = Tdrutil.Vec.unsafe_get t.steps i in
  let rec go i acc =
    if i < 0 then acc
    else
      let ss = Tdrutil.Ivec.unsafe_get t.r_buf i
      and meta = Tdrutil.Ivec.unsafe_get t.r_buf (i + 1) in
      go (i - 2)
        (Race.make
           ~src:(node (ss lsr 31))
           ~sink:(node (ss land sid_mask))
           ~addr:(Rt.Addr.Intern.of_id t.intern (meta lsr 2))
           ~kind:(kind_of_code (meta land 3))
        :: acc)
  in
  let in_mem = go (Tdrutil.Ivec.length t.r_buf - 2) [] in
  match t.spill with
  | None -> in_mem
  | Some sp ->
      (* spilled records came first: original report order is preserved *)
      Spill.records sp ~resolve:(fun sid -> Tdrutil.Vec.get t.steps sid)
      @ in_mem

let shadow_slabs t = fst (t.shadow_info ())

let shadow_words t = snd (t.shadow_info ())

let stats t =
  let slabs, words = t.shadow_info () in
  [
    ("detector.accesses", t.n_accesses);
    ("detector.locations", t.n_locations);
    ("detector.races", race_count t);
    ("detector.skipped", t.n_skipped);
    ("detector.uf_finds", Bags.n_finds t.bags);
    ("detector.uf_unions", Bags.n_unions t.bags);
    ("detector.scan_entries", Bags.n_scan_entries t.bags);
    ("detector.shadow_slabs", slabs);
    ("detector.shadow_words", words);
    ("detector.gc_retired", t.n_retired);
    ("detector.spilled_races", n_spilled t);
  ]

let report det ~src_id ~sink_id ~addr ~kind =
  if src_id <> sink_id then
    Tdrutil.Ivec.push2 det.r_buf
      ((src_id lsl 31) lor sink_id)
      ((addr lsl 2) lor kind)

(* Drain the race buffer to disk when it exceeds the spill cap; called at
   the end of an access, never mid-scan.  Clearing the buffer invalidates
   every scan-replay memo (their [lo, hi) ranges point into it), hence
   the generation bump. *)
let maybe_spill det =
  match det.spill with
  | None -> ()
  | Some sp ->
      if Tdrutil.Ivec.length det.r_buf >= Spill.cap_ints sp then begin
        Spill.append sp ~intern:det.intern det.r_buf;
        Tdrutil.Ivec.clear det.r_buf;
        Tdrutil.Ivec.compact det.r_buf;
        det.spill_gen <- det.spill_gen + 1
      end

(* The packed encodings hold step ids in 31-bit fields; unreachable in
   practice (step ids are fuel-bounded S-DPST node ids) but checked where
   ids enter shadow state rather than assumed. *)
let check_sid sid =
  if sid < 0 || sid >= 1 lsl 31 then
    invalid_arg "Detector: step id exceeds 31 bits"

(* A placeholder step node used as array filler where a slot's task id is
   the sentinel -1 or the registry slot is unfilled; never read through. *)
let dummy_step () = (Sdpst.Node.create_tree ~main_bid:(-1)).Sdpst.Node.root

(* Record [step] in the id -> node registry (no-op after the step's first
   access).  Every reported id is registered: a sink is the current step,
   and a source was the current step when its access was recorded. *)
let register_step det ~dummy step sid =
  Tdrutil.Vec.ensure det.steps (sid + 1) ~fill:dummy;
  if Tdrutil.Vec.unsafe_get det.steps sid == dummy then
    Tdrutil.Vec.unsafe_set det.steps sid step

let structural (bags : Bags.t) ~on_init ~on_access : Rt.Monitor.t =
  {
    Rt.Monitor.on_init;
    on_task_begin = (fun n -> Bags.task_begin bags ~task:n.Sdpst.Node.id);
    on_task_end = (fun n -> Bags.task_end bags ~task:n.Sdpst.Node.id);
    on_finish_begin = (fun n -> Bags.finish_begin bags ~finish:n.Sdpst.Node.id);
    on_finish_end = (fun n -> Bags.finish_end bags ~finish:n.Sdpst.Node.id);
    on_access;
  }

let fresh ?spill mode =
  {
    mode;
    bags = Bags.create ();
    monitor = Rt.Monitor.nop;
    steps = Tdrutil.Vec.create ();
    r_buf = Tdrutil.Ivec.create ();
    spill =
      Option.map (fun cfg -> Spill.create cfg ~mode_name:(mode_name mode)) spill;
    spill_gen = 0;
    intern = Rt.Addr.Intern.create ();
    n_accesses = 0;
    n_locations = 0;
    n_skipped = 0;
    n_retired = 0;
    shadow_info = (fun () -> (0, 0));
  }

(* ------------------------------------------------------------------ *)
(* SRW                                                                  *)
(* ------------------------------------------------------------------ *)

(* Slab shadow, stride 4 per location: [w_task; w_id; r_task; r_id], task
   id -1 = no recorded access.  One [Islab.slot] probe serves the whole
   row.  The step columns are only read behind a task id >= 0 guard, so
   the -1 filler is never observed as a step id. *)

let make_srw ?layout ?spill () : t =
  let det = fresh ?spill Srw in
  let bags = det.bags in
  let dummy = dummy_step () in
  let tbl = Tdrutil.Islab.create ?layout ~fill:(-1) () in
  det.shadow_info <-
    (fun () -> (Tdrutil.Islab.n_chunks tbl, Tdrutil.Islab.words tbl));
  let on_access ~step ~bid:_ ~idx:_ addr kind =
    det.n_accesses <- det.n_accesses + 1;
    let row, off = Tdrutil.Islab.slot tbl (addr lsl 2) ~stride:4 in
    let sid = step.Sdpst.Node.id in
    register_step det ~dummy step sid;
    let wt = Array.unsafe_get row off and rt = Array.unsafe_get row (off + 2) in
    if wt < 0 && rt < 0 then det.n_locations <- det.n_locations + 1;
    let task = Bags.current_task bags in
    (match kind with
    | Rt.Monitor.Read ->
        if wt >= 0 && Bags.in_pbag bags wt then
          report det
            ~src_id:(Array.unsafe_get row (off + 1))
            ~sink_id:sid ~addr ~kind:wr;
        if not (rt >= 0 && Bags.in_pbag bags rt) then begin
          check_sid sid;
          Array.unsafe_set row (off + 2) task;
          Array.unsafe_set row (off + 3) sid
        end
    | Rt.Monitor.Write ->
        if wt >= 0 && Bags.in_pbag bags wt then
          report det
            ~src_id:(Array.unsafe_get row (off + 1))
            ~sink_id:sid ~addr ~kind:ww;
        if rt >= 0 && Bags.in_pbag bags rt then
          report det
            ~src_id:(Array.unsafe_get row (off + 3))
            ~sink_id:sid ~addr ~kind:rw;
        check_sid sid;
        Array.unsafe_set row off task;
        Array.unsafe_set row (off + 1) sid);
    maybe_spill det
  in
  det.monitor <-
    structural bags ~on_init:(fun intern -> det.intern <- intern) ~on_access;
  det

(* ------------------------------------------------------------------ *)
(* MRW                                                                  *)
(* ------------------------------------------------------------------ *)

(* Per-location access lists: one int vector per direction, each entry
   packing the recording task (a dense {!Bags.current_task} index,
   scanned against the bags) with its step node id (used when reporting)
   as [(task lsl 31) lor sid] — one cache line holds eight entries.  The
   step {e nodes} live in the detector-wide [steps] registry, so the
   shadow holds no pointers at all. *)
type mrw_loc = {
  w_list : Tdrutil.Ivec.t;  (** recorded writers, packed [task, sid] *)
  r_list : Tdrutil.Ivec.t;  (** recorded readers, packed [task, sid] *)
  mutable w_epoch : int;  (** id of the last recorded writer step; -1 none *)
  mutable r_epoch : int;
  mutable gc_ver : int;
      (** {!Bags.serial_version} as of this location's last retirement
          sweep; a mismatch on access triggers the (lazy) sweep *)
  (* Scan replay (per access kind): while one step executes there are no
     structural transitions, so bag memberships are frozen, and the only
     possible change to this location's lists is the step's own recorded
     entry — which never reports (a task is not parallel with itself, and
     [report] drops same-step pairs anyway).  A step's repeated
     same-kind accesses to one location therefore append byte-identical
     report runs: remember the [r_buf] range the first scan appended and
     re-emit it with a blit instead of re-scanning.  A memo is only valid
     within its spill generation: a drain clears the buffer its range
     points into. *)
  mutable rscan_epoch : int;  (** last step whose Read scanned here; -1 none *)
  mutable rscan_gen : int;  (** [spill_gen] of that scan *)
  mutable rscan_lo : int;  (** its appended [r_buf] range: [lo, hi) *)
  mutable rscan_hi : int;
  mutable wscan_epoch : int;  (** same for Write (both its scans) *)
  mutable wscan_gen : int;
  mutable wscan_lo : int;
  mutable wscan_hi : int;
}

let fresh_loc () =
  {
    w_list = Tdrutil.Ivec.create ();
    r_list = Tdrutil.Ivec.create ();
    w_epoch = -1;
    r_epoch = -1;
    gc_ver = 0;
    rscan_epoch = -1;
    rscan_gen = 0;
    rscan_lo = 0;
    rscan_hi = 0;
    wscan_epoch = -1;
    wscan_gen = 0;
    wscan_lo = 0;
    wscan_hi = 0;
  }

(* Epoch GC: drop the entries of forever-serial tasks, in place and
   order-preserving (report byte-identity: such an entry can never report
   again, and the survivors keep their scan order).  Shrink the backing
   array when the survivors fit in a quarter of it — the capacity freed
   by a big retirement wave would otherwise stay pinned. *)
let retire_list bags l =
  let n = Tdrutil.Ivec.length l in
  let data = Tdrutil.Ivec.unsafe_data l in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let e = Array.unsafe_get data i in
    if not (Bags.forever_serial bags (e lsr 31)) then begin
      Array.unsafe_set data !j e;
      incr j
    end
  done;
  Tdrutil.Ivec.truncate l !j;
  let cap = Tdrutil.Ivec.capacity l in
  if cap >= 32 && !j * 4 <= cap then Tdrutil.Ivec.compact l;
  n - !j

let make_mrw ?layout ?spill () : t =
  let det = fresh ?spill Mrw in
  let bags = det.bags in
  let dummy = dummy_step () in
  (* Shared physical sentinel for untouched slots: location state is
     created lazily on first access (and counted), without an option. *)
  let null_loc = fresh_loc () in
  let shadow : mrw_loc Tdrutil.Slab.t =
    Tdrutil.Slab.create ?layout ~fill:null_loc ()
  in
  det.shadow_info <-
    (fun () ->
      (* table words plus the access lists' backing capacity: the lists
         are the part epoch GC reclaims, so the bench must see them *)
      let words = ref (Tdrutil.Slab.words shadow) in
      Tdrutil.Slab.iter_present
        (fun s ->
          if s != null_loc then
            words :=
              !words
              + Tdrutil.Ivec.capacity s.w_list
              + Tdrutil.Ivec.capacity s.r_list)
        shadow;
      (Tdrutil.Slab.n_chunks shadow, !words));
  let scan entries ~sid ~addr ~kind =
    Bags.scan_report bags entries ~out:det.r_buf ~sink:sid
      ~meta:((addr lsl 2) lor kind)
  in
  let on_access ~step ~bid:_ ~idx:_ addr kind =
    det.n_accesses <- det.n_accesses + 1;
    let s = Tdrutil.Slab.get shadow addr in
    let s =
      if s != null_loc then s
      else begin
        let s = fresh_loc () in
        Tdrutil.Slab.set shadow addr s;
        det.n_locations <- det.n_locations + 1;
        s
      end
    in
    (* lazy epoch GC: a retirement wave happened since this location's
       last sweep (always between steps, so never mid-scan-replay) *)
    let sv = Bags.serial_version bags in
    if s.gc_ver <> sv then begin
      s.gc_ver <- sv;
      det.n_retired <-
        det.n_retired + retire_list bags s.w_list + retire_list bags s.r_list
    end;
    let sid = step.Sdpst.Node.id in
    register_step det ~dummy step sid;
    (match kind with
    | Rt.Monitor.Read ->
        if s.rscan_epoch = sid && s.rscan_gen = det.spill_gen then
          Tdrutil.Ivec.append_slice det.r_buf s.rscan_lo s.rscan_hi
        else begin
          s.rscan_epoch <- sid;
          s.rscan_gen <- det.spill_gen;
          s.rscan_lo <- Tdrutil.Ivec.length det.r_buf;
          scan s.w_list ~sid ~addr ~kind:wr;
          s.rscan_hi <- Tdrutil.Ivec.length det.r_buf
        end;
        (* epoch dedup: the depth-first execution never resumes a step
           node, so one compare fully dedups the list per step *)
        if s.r_epoch <> sid then begin
          check_sid sid;
          s.r_epoch <- sid;
          Tdrutil.Ivec.push s.r_list ((Bags.current_task bags lsl 31) lor sid)
        end
    | Rt.Monitor.Write ->
        if s.wscan_epoch = sid && s.wscan_gen = det.spill_gen then
          Tdrutil.Ivec.append_slice det.r_buf s.wscan_lo s.wscan_hi
        else begin
          s.wscan_epoch <- sid;
          s.wscan_gen <- det.spill_gen;
          s.wscan_lo <- Tdrutil.Ivec.length det.r_buf;
          scan s.w_list ~sid ~addr ~kind:ww;
          scan s.r_list ~sid ~addr ~kind:rw;
          s.wscan_hi <- Tdrutil.Ivec.length det.r_buf
        end;
        if s.w_epoch <> sid then begin
          check_sid sid;
          s.w_epoch <- sid;
          Tdrutil.Ivec.push s.w_list ((Bags.current_task bags lsl 31) lor sid)
        end);
    maybe_spill det
  in
  det.monitor <-
    structural bags ~on_init:(fun intern -> det.intern <- intern) ~on_access;
  det

let make ?layout ?spill = function
  | Srw -> make_srw ?layout ?spill ()
  | Mrw -> make_mrw ?layout ?spill ()

(** Run [prog] under a fresh detector; returns the detector (with its
    recorded races) and the execution result.

    [keep] is a per-statement monitoring predicate (a static MHP pre-pass:
    {!Static.Prune.keep_fn}); accesses of statements it rejects are skipped
    and counted in [n_skipped].  With MRW, skipping statements proven
    race-free leaves the reported race set unchanged.

    [layout] picks the shadow growth policy (slab-chunked by default);
    [spill] bounds in-memory race records, draining overflow to a trace
    file. *)
let detect ?fuel ?keep ?layout ?spill mode (prog : Mhj.Ast.program) :
    t * Rt.Interp.result =
  let det = make ?layout ?spill mode in
  let monitor =
    match keep with
    | None -> det.monitor
    | Some keep ->
        Rt.Monitor.filter
          ~keep:(fun ~bid ~idx _addr _kind -> keep ~bid ~idx)
          ~on_skip:(fun () -> det.n_skipped <- det.n_skipped + 1)
          det.monitor
  in
  let res = Rt.Interp.run ?fuel ~monitor prog in
  Option.iter Spill.close det.spill;
  (det, res)
