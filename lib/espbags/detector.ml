(** The two ESP-bags race detectors.

    {b SRW} (Single Reader-Writer) is the original algorithm of Raman et
    al.: the shadow memory keeps one writer and one reader per location, so
    a single run reports a subset of the races (at least one per racy
    location, and none iff the input is race-free for the given input).

    {b MRW} (Multiple Reader-Writer) is the paper's §4.1 modification: the
    shadow memory keeps {e all} readers and writers per location, so every
    potential race for the input is reported in one run — the property the
    repair tool needs to fix all races without re-running the detector per
    repair.

    Both are packaged as {!Rt.Monitor} implementations to be passed to
    {!Rt.Interp.run}. *)

type mode = Srw | Mrw

let pp_mode ppf = function
  | Srw -> Fmt.string ppf "SRW"
  | Mrw -> Fmt.string ppf "MRW"

type access_record = { task : int; step : Sdpst.Node.t }

type srw_shadow = {
  mutable writer : access_record option;
  mutable reader : access_record option;
}

type mrw_shadow = {
  writers : access_record Tdrutil.Vec.t;
  readers : access_record Tdrutil.Vec.t;
}

type t = {
  mode : mode;
  monitor : Rt.Monitor.t;
  races : Race.t Tdrutil.Vec.t;
  mutable n_accesses : int;  (** monitored accesses checked *)
  mutable n_locations : int;  (** distinct locations touched *)
  mutable n_skipped : int;  (** accesses skipped by a static pre-pass *)
}

let races t = Tdrutil.Vec.to_list t.races

let race_count t = Tdrutil.Vec.length t.races

(** Is the execution race-free (no race reported)? *)
let clean t = Tdrutil.Vec.is_empty t.races

(* ------------------------------------------------------------------ *)
(* SRW                                                                  *)
(* ------------------------------------------------------------------ *)

let make_srw () : t =
  let bags = Bags.create () in
  let shadow : srw_shadow Rt.Addr.Table.t = Rt.Addr.Table.create 1024 in
  let races = Tdrutil.Vec.create () in
  let det_ref = ref None in
  let lookup addr =
    match Rt.Addr.Table.find_opt shadow addr with
    | Some s -> s
    | None ->
        let s = { writer = None; reader = None } in
        Rt.Addr.Table.add shadow addr s;
        (match !det_ref with
        | Some det -> det.n_locations <- det.n_locations + 1
        | None -> ());
        s
  in
  let report ~src ~sink ~addr ~kind =
    if src.Sdpst.Node.id <> sink.Sdpst.Node.id then
      Tdrutil.Vec.push races (Race.make ~src ~sink ~addr ~kind)
  in
  let on_access ~step ~bid:_ ~idx:_ addr kind =
    (match !det_ref with
    | Some det -> det.n_accesses <- det.n_accesses + 1
    | None -> ());
    let s = lookup addr in
    let task = Bags.current_task bags in
    let me = { task; step } in
    match kind with
    | Rt.Monitor.Read ->
        (match s.writer with
        | Some w when Bags.in_pbag bags w.task ->
            report ~src:w.step ~sink:step ~addr ~kind:Race.Write_read
        | _ -> ());
        (match s.reader with
        | Some r when Bags.in_pbag bags r.task -> ()
        | _ -> s.reader <- Some me)
    | Rt.Monitor.Write ->
        (match s.writer with
        | Some w when Bags.in_pbag bags w.task ->
            report ~src:w.step ~sink:step ~addr ~kind:Race.Write_write
        | _ -> ());
        (match s.reader with
        | Some r when Bags.in_pbag bags r.task ->
            report ~src:r.step ~sink:step ~addr ~kind:Race.Read_write
        | _ -> ());
        s.writer <- Some me
  in
  let monitor =
    {
      Rt.Monitor.on_task_begin =
        (fun n -> Bags.task_begin bags ~task:n.Sdpst.Node.id);
      on_task_end = (fun n -> Bags.task_end bags ~task:n.Sdpst.Node.id);
      on_finish_begin =
        (fun n -> Bags.finish_begin bags ~finish:n.Sdpst.Node.id);
      on_finish_end = (fun n -> Bags.finish_end bags ~finish:n.Sdpst.Node.id);
      on_access;
    }
  in
  let det =
    { mode = Srw; monitor; races; n_accesses = 0; n_locations = 0;
      n_skipped = 0 }
  in
  det_ref := Some det;
  det

(* ------------------------------------------------------------------ *)
(* MRW                                                                  *)
(* ------------------------------------------------------------------ *)

let make_mrw () : t =
  let bags = Bags.create () in
  let shadow : mrw_shadow Rt.Addr.Table.t = Rt.Addr.Table.create 1024 in
  let races = Tdrutil.Vec.create () in
  let det_ref = ref None in
  let lookup addr =
    match Rt.Addr.Table.find_opt shadow addr with
    | Some s -> s
    | None ->
        let s =
          { writers = Tdrutil.Vec.create (); readers = Tdrutil.Vec.create () }
        in
        Rt.Addr.Table.add shadow addr s;
        (match !det_ref with
        | Some det -> det.n_locations <- det.n_locations + 1
        | None -> ());
        s
  in
  let report ~src ~sink ~addr ~kind =
    if src.Sdpst.Node.id <> sink.Sdpst.Node.id then
      Tdrutil.Vec.push races (Race.make ~src ~sink ~addr ~kind)
  in
  (* Consecutive accesses by the same step are redundant: they would
     produce byte-identical race reports. *)
  let push_unless_last vec (me : access_record) =
    match Tdrutil.Vec.last vec with
    | Some r when r.step.Sdpst.Node.id = me.step.Sdpst.Node.id -> ()
    | _ -> Tdrutil.Vec.push vec me
  in
  let on_access ~step ~bid:_ ~idx:_ addr kind =
    (match !det_ref with
    | Some det -> det.n_accesses <- det.n_accesses + 1
    | None -> ());
    let s = lookup addr in
    let task = Bags.current_task bags in
    let me = { task; step } in
    match kind with
    | Rt.Monitor.Read ->
        Tdrutil.Vec.iter
          (fun w ->
            if Bags.in_pbag bags w.task then
              report ~src:w.step ~sink:step ~addr ~kind:Race.Write_read)
          s.writers;
        push_unless_last s.readers me
    | Rt.Monitor.Write ->
        Tdrutil.Vec.iter
          (fun w ->
            if Bags.in_pbag bags w.task then
              report ~src:w.step ~sink:step ~addr ~kind:Race.Write_write)
          s.writers;
        Tdrutil.Vec.iter
          (fun r ->
            if Bags.in_pbag bags r.task then
              report ~src:r.step ~sink:step ~addr ~kind:Race.Read_write)
          s.readers;
        push_unless_last s.writers me
  in
  let monitor =
    {
      Rt.Monitor.on_task_begin =
        (fun n -> Bags.task_begin bags ~task:n.Sdpst.Node.id);
      on_task_end = (fun n -> Bags.task_end bags ~task:n.Sdpst.Node.id);
      on_finish_begin =
        (fun n -> Bags.finish_begin bags ~finish:n.Sdpst.Node.id);
      on_finish_end = (fun n -> Bags.finish_end bags ~finish:n.Sdpst.Node.id);
      on_access;
    }
  in
  let det =
    { mode = Mrw; monitor; races; n_accesses = 0; n_locations = 0;
      n_skipped = 0 }
  in
  det_ref := Some det;
  det

let make = function Srw -> make_srw () | Mrw -> make_mrw ()

(** Run [prog] under a fresh detector; returns the detector (with its
    recorded races) and the execution result.

    [keep] is a per-statement monitoring predicate (a static MHP pre-pass:
    {!Static.Prune.keep}); accesses of statements it rejects are skipped
    and counted in [n_skipped].  With MRW, skipping statements proven
    race-free leaves the reported race set unchanged. *)
let detect ?fuel ?keep mode (prog : Mhj.Ast.program) : t * Rt.Interp.result =
  let det = make mode in
  let monitor =
    match keep with
    | None -> det.monitor
    | Some keep ->
        Rt.Monitor.filter
          ~keep:(fun ~bid ~idx _addr _kind -> keep ~bid ~idx)
          ~on_skip:(fun () -> det.n_skipped <- det.n_skipped + 1)
          det.monitor
  in
  let res = Rt.Interp.run ?fuel ~monitor prog in
  (det, res)
