(** The seed (pre-optimization) ESP-bags detectors, kept verbatim as the
    golden oracle for the dense-shadow rewrite in {!Detector}.

    Everything deliberately preserves the original representation and its
    costs: hashtable-backed union-find bags, an [Addr.Table] shadow keyed
    by boxed addresses (reconstructed per access, as the seed interpreter
    allocated them per access), per-access [access_record] allocations,
    and the consecutive-only [push_unless_last] dedup.  Two users:

    - the differential test suite holds {!Detector}'s race multiset
      byte-identical to this implementation's over generated programs;
    - [bench detector] measures it as the before side of the before/after
      overhead numbers.

    Do not optimize this module. *)

(* ------------------------------------------------------------------ *)
(* Seed bags: hashtable union-find                                     *)
(* ------------------------------------------------------------------ *)

module Hbags = struct
  type mark = Sbag of int | Pbag of int

  type t = {
    parent : (int, int) Hashtbl.t;
    rank : (int, int) Hashtbl.t;
    mark : (int, mark) Hashtbl.t;
    pbag_root : (int, int) Hashtbl.t;
    mutable task_stack : int list;
    mutable finish_stack : int list;
  }

  let create () =
    {
      parent = Hashtbl.create 256;
      rank = Hashtbl.create 256;
      mark = Hashtbl.create 256;
      pbag_root = Hashtbl.create 64;
      task_stack = [];
      finish_stack = [];
    }

  let rec find t x =
    match Hashtbl.find_opt t.parent x with
    | None -> invalid_arg (Fmt.str "Reference.find: unknown task %d" x)
    | Some p ->
        if p = x then x
        else begin
          let r = find t p in
          Hashtbl.replace t.parent x r;
          r
        end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then ra
    else begin
      let ka = Hashtbl.find t.rank ra and kb = Hashtbl.find t.rank rb in
      let root, child = if ka >= kb then (ra, rb) else (rb, ra) in
      Hashtbl.replace t.parent child root;
      if ka = kb then Hashtbl.replace t.rank root (ka + 1);
      Hashtbl.remove t.mark child;
      root
    end

  let mark_of t x = Hashtbl.find t.mark (find t x)

  let in_pbag t x = match mark_of t x with Pbag _ -> true | Sbag _ -> false

  let current_task t =
    match t.task_stack with
    | task :: _ -> task
    | [] -> invalid_arg "Reference.current_task: no task executing"

  let task_begin t ~task =
    Hashtbl.replace t.parent task task;
    Hashtbl.replace t.rank task 0;
    Hashtbl.replace t.mark task (Sbag task);
    t.task_stack <- task :: t.task_stack

  let task_end t ~task =
    (match t.task_stack with
    | x :: rest when x = task -> t.task_stack <- rest
    | _ -> invalid_arg "Reference.task_end: task stack mismatch");
    match t.finish_stack with
    | [] -> ()
    | ief :: _ -> (
        let r = find t task in
        match Hashtbl.find_opt t.pbag_root ief with
        | None ->
            Hashtbl.replace t.mark r (Pbag ief);
            Hashtbl.replace t.pbag_root ief r
        | Some existing ->
            let root = union t r existing in
            Hashtbl.replace t.mark root (Pbag ief);
            Hashtbl.replace t.pbag_root ief root)

  let finish_begin t ~finish = t.finish_stack <- finish :: t.finish_stack

  let finish_end t ~finish =
    (match t.finish_stack with
    | f :: rest when f = finish -> t.finish_stack <- rest
    | _ -> invalid_arg "Reference.finish_end: finish stack mismatch");
    match Hashtbl.find_opt t.pbag_root finish with
    | None -> ()
    | Some r ->
        Hashtbl.remove t.pbag_root finish;
        let task = current_task t in
        let root = union t r (find t task) in
        Hashtbl.replace t.mark root (Sbag task)
end

(* ------------------------------------------------------------------ *)
(* Seed detectors                                                      *)
(* ------------------------------------------------------------------ *)

type access_record = { task : int; step : Sdpst.Node.t }

type srw_shadow = {
  mutable writer : access_record option;
  mutable reader : access_record option;
}

type mrw_shadow = {
  writers : access_record Tdrutil.Vec.t;
  readers : access_record Tdrutil.Vec.t;
}

type t = {
  mode : Detector.mode;
  monitor : Rt.Monitor.t;
  races : Race.t Tdrutil.Vec.t;
  mutable intern : Rt.Addr.Intern.t;
  mutable n_accesses : int;
  mutable n_locations : int;
  mutable n_skipped : int;
}

let races t = Tdrutil.Vec.to_list t.races

let race_count t = Tdrutil.Vec.length t.races

let clean t = Tdrutil.Vec.is_empty t.races

let make_srw () : t =
  let bags = Hbags.create () in
  let shadow : srw_shadow Rt.Addr.Table.t = Rt.Addr.Table.create 1024 in
  let races = Tdrutil.Vec.create () in
  let det_ref = ref None in
  let lookup addr =
    match Rt.Addr.Table.find_opt shadow addr with
    | Some s -> s
    | None ->
        let s = { writer = None; reader = None } in
        Rt.Addr.Table.add shadow addr s;
        (match !det_ref with
        | Some det -> det.n_locations <- det.n_locations + 1
        | None -> ());
        s
  in
  let report ~src ~sink ~addr ~kind =
    if src.Sdpst.Node.id <> sink.Sdpst.Node.id then
      Tdrutil.Vec.push races (Race.make ~src ~sink ~addr ~kind)
  in
  let on_access ~step ~bid:_ ~idx:_ iaddr kind =
    (match !det_ref with
    | Some det -> det.n_accesses <- det.n_accesses + 1
    | None -> ());
    (* the seed interpreter built a boxed address per access; rebuilding it
       from the interned id keeps this implementation's cost profile *)
    let addr =
      match !det_ref with
      | Some det -> Rt.Addr.Intern.of_id det.intern iaddr
      | None -> assert false
    in
    let s = lookup addr in
    let task = Hbags.current_task bags in
    let me = { task; step } in
    match kind with
    | Rt.Monitor.Read ->
        (match s.writer with
        | Some w when Hbags.in_pbag bags w.task ->
            report ~src:w.step ~sink:step ~addr ~kind:Race.Write_read
        | _ -> ());
        (match s.reader with
        | Some r when Hbags.in_pbag bags r.task -> ()
        | _ -> s.reader <- Some me)
    | Rt.Monitor.Write ->
        (match s.writer with
        | Some w when Hbags.in_pbag bags w.task ->
            report ~src:w.step ~sink:step ~addr ~kind:Race.Write_write
        | _ -> ());
        (match s.reader with
        | Some r when Hbags.in_pbag bags r.task ->
            report ~src:r.step ~sink:step ~addr ~kind:Race.Read_write
        | _ -> ());
        s.writer <- Some me
  in
  let monitor =
    {
      Rt.Monitor.on_init =
        (fun intern ->
          match !det_ref with
          | Some det -> det.intern <- intern
          | None -> ());
      on_task_begin = (fun n -> Hbags.task_begin bags ~task:n.Sdpst.Node.id);
      on_task_end = (fun n -> Hbags.task_end bags ~task:n.Sdpst.Node.id);
      on_finish_begin =
        (fun n -> Hbags.finish_begin bags ~finish:n.Sdpst.Node.id);
      on_finish_end = (fun n -> Hbags.finish_end bags ~finish:n.Sdpst.Node.id);
      on_access;
    }
  in
  let det =
    {
      mode = Detector.Srw;
      monitor;
      races;
      intern = Rt.Addr.Intern.create ();
      n_accesses = 0;
      n_locations = 0;
      n_skipped = 0;
    }
  in
  det_ref := Some det;
  det

let make_mrw () : t =
  let bags = Hbags.create () in
  let shadow : mrw_shadow Rt.Addr.Table.t = Rt.Addr.Table.create 1024 in
  let races = Tdrutil.Vec.create () in
  let det_ref = ref None in
  let lookup addr =
    match Rt.Addr.Table.find_opt shadow addr with
    | Some s -> s
    | None ->
        let s =
          { writers = Tdrutil.Vec.create (); readers = Tdrutil.Vec.create () }
        in
        Rt.Addr.Table.add shadow addr s;
        (match !det_ref with
        | Some det -> det.n_locations <- det.n_locations + 1
        | None -> ());
        s
  in
  let report ~src ~sink ~addr ~kind =
    if src.Sdpst.Node.id <> sink.Sdpst.Node.id then
      Tdrutil.Vec.push races (Race.make ~src ~sink ~addr ~kind)
  in
  (* Consecutive accesses by the same step are redundant: they would
     produce byte-identical race reports. *)
  let push_unless_last vec (me : access_record) =
    match Tdrutil.Vec.last vec with
    | Some r when r.step.Sdpst.Node.id = me.step.Sdpst.Node.id -> ()
    | _ -> Tdrutil.Vec.push vec me
  in
  let on_access ~step ~bid:_ ~idx:_ iaddr kind =
    (match !det_ref with
    | Some det -> det.n_accesses <- det.n_accesses + 1
    | None -> ());
    let addr =
      match !det_ref with
      | Some det -> Rt.Addr.Intern.of_id det.intern iaddr
      | None -> assert false
    in
    let s = lookup addr in
    let task = Hbags.current_task bags in
    let me = { task; step } in
    match kind with
    | Rt.Monitor.Read ->
        Tdrutil.Vec.iter
          (fun w ->
            if Hbags.in_pbag bags w.task then
              report ~src:w.step ~sink:step ~addr ~kind:Race.Write_read)
          s.writers;
        push_unless_last s.readers me
    | Rt.Monitor.Write ->
        Tdrutil.Vec.iter
          (fun w ->
            if Hbags.in_pbag bags w.task then
              report ~src:w.step ~sink:step ~addr ~kind:Race.Write_write)
          s.writers;
        Tdrutil.Vec.iter
          (fun r ->
            if Hbags.in_pbag bags r.task then
              report ~src:r.step ~sink:step ~addr ~kind:Race.Read_write)
          s.readers;
        push_unless_last s.writers me
  in
  let monitor =
    {
      Rt.Monitor.on_init =
        (fun intern ->
          match !det_ref with
          | Some det -> det.intern <- intern
          | None -> ());
      on_task_begin = (fun n -> Hbags.task_begin bags ~task:n.Sdpst.Node.id);
      on_task_end = (fun n -> Hbags.task_end bags ~task:n.Sdpst.Node.id);
      on_finish_begin =
        (fun n -> Hbags.finish_begin bags ~finish:n.Sdpst.Node.id);
      on_finish_end = (fun n -> Hbags.finish_end bags ~finish:n.Sdpst.Node.id);
      on_access;
    }
  in
  let det =
    {
      mode = Detector.Mrw;
      monitor;
      races;
      intern = Rt.Addr.Intern.create ();
      n_accesses = 0;
      n_locations = 0;
      n_skipped = 0;
    }
  in
  det_ref := Some det;
  det

let make = function
  | Detector.Srw -> make_srw ()
  | Detector.Mrw -> make_mrw ()

(** Seed analogue of {!Detector.detect}. *)
let detect ?fuel ?keep mode (prog : Mhj.Ast.program) : t * Rt.Interp.result =
  let det = make mode in
  let monitor =
    match keep with
    | None -> det.monitor
    | Some keep ->
        Rt.Monitor.filter
          ~keep:(fun ~bid ~idx _addr _kind -> keep ~bid ~idx)
          ~on_skip:(fun () -> det.n_skipped <- det.n_skipped + 1)
          det.monitor
  in
  let res = Rt.Interp.run ?fuel ~monitor prog in
  (det, res)
