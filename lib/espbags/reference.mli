(** The seed (pre-optimization) ESP-bags detectors: hashtable union-find
    bags, boxed-address shadow tables, per-access record allocation.

    Kept as the golden oracle for {!Detector}'s dense-shadow rewrite — the
    differential test suite holds the two to identical race multisets, and
    [bench detector] measures this implementation as the "before" side of
    its overhead numbers.  Do not optimize this module. *)

type t = private {
  mode : Detector.mode;
  monitor : Rt.Monitor.t;
  races : Race.t Tdrutil.Vec.t;
  mutable intern : Rt.Addr.Intern.t;
  mutable n_accesses : int;
  mutable n_locations : int;
  mutable n_skipped : int;
}

(** Races recorded so far, in report order. *)
val races : t -> Race.t list

val race_count : t -> int

(** No race reported? *)
val clean : t -> bool

(** Fresh seed detector of the given flavour. *)
val make : Detector.mode -> t

(** Seed analogue of {!Detector.detect}: same semantics, seed cost
    profile. *)
val detect :
  ?fuel:int ->
  ?keep:(bid:int -> idx:int -> bool) ->
  Detector.mode ->
  Mhj.Ast.program ->
  t * Rt.Interp.result
