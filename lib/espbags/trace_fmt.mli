(** Line-level codecs of the race trace format, shared by {!Trace} and
    {!Spill}.  Free of any {!Detector} dependency. *)

val magic : string

exception Parse_error of string * int
(** message, 1-based line number *)

val string_of_addr : Rt.Addr.t -> string

(** @raise Parse_error on a malformed address *)
val addr_of_string : line:int -> string -> Rt.Addr.t

val string_of_kind : Race.kind -> string

(** @raise Parse_error on an unknown kind *)
val kind_of_string : line:int -> string -> Race.kind

(** Decode the detectors' packed 2-bit race-kind code. *)
val kind_of_code : int -> Race.kind

(** Append one [race KIND ADDR SRC SINK] line. *)
val add_race_line :
  Buffer.t -> kind:Race.kind -> addr:Rt.Addr.t -> src:int -> sink:int -> unit
