(** Data race reports.

    A race connects two step instances of the S-DPST: the {e source} is
    the access that occurs first in the depth-first traversal, the
    {e sink} the later one (paper §4.2).  Races are rendered as the dotted
    edges of the paper's Figure 9. *)

type kind =
  | Write_read  (** earlier write, later read *)
  | Read_write  (** earlier read, later write *)
  | Write_write

let pp_kind ppf = function
  | Write_read -> Fmt.string ppf "W->R"
  | Read_write -> Fmt.string ppf "R->W"
  | Write_write -> Fmt.string ppf "W->W"

type t = {
  src : Sdpst.Node.t;  (** source step (earlier in depth-first order) *)
  sink : Sdpst.Node.t;  (** sink step (later in depth-first order) *)
  addr : Rt.Addr.t;  (** the contended location *)
  kind : kind;
}

let make ~src ~sink ~addr ~kind =
  assert (src.Sdpst.Node.id < sink.Sdpst.Node.id);
  { src; sink; addr; kind }

let pp ppf r =
  Fmt.pf ppf "%a race on %a: %a -> %a" pp_kind r.kind Rt.Addr.pp r.addr
    Sdpst.Node.pp r.src Sdpst.Node.pp r.sink

(** Distinct (source step, sink step) pairs, preserving first-seen order.
    The placement algorithms only need one edge per step pair. *)
let dedupe_by_steps (races : t list) : t list =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      let k = (r.src.Sdpst.Node.id, r.sink.Sdpst.Node.id) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    races

(** Exact per-record signature: node ids are deterministic under the
    depth-first interpreter, so two detectors report the same races in
    the same order iff their signature lists are equal.  Shared by the
    differential harness, the bench byte-identity assertions, and the
    vclock backend tests. *)
let exact_sig (r : t) =
  ( r.src.Sdpst.Node.id,
    r.sink.Sdpst.Node.id,
    Fmt.str "%a" Rt.Addr.pp r.addr,
    Fmt.str "%a" pp_kind r.kind )

let exact_sigs races = List.map exact_sig races

let pp_sig ppf (src, sink, addr, kind) =
  Fmt.pf ppf "(%d -> %d) %s %s" src sink addr kind

(** Schedule-independent identity of a race: the unordered pair of static
    endpoints {(bid, idx, is_write)} plus the address, endpoints sorted
    lexicographically.  Node ids (and hence src/sink roles) depend on the
    depth-first traversal order, so parallel detection compares these
    keys instead of {!exact_sig}s. *)
let static_key ~a_bid ~a_idx ~a_write ~b_bid ~b_idx ~b_write ~addr =
  let a = (a_bid, a_idx, a_write) and b = (b_bid, b_idx, b_write) in
  let lo, hi = if a <= b then (a, b) else (b, a) in
  (lo, hi, addr)

let static_key_of_race (r : t) =
  let src_write, sink_write =
    match r.kind with
    | Write_read -> (true, false)
    | Read_write -> (false, true)
    | Write_write -> (true, true)
  in
  static_key ~a_bid:r.src.Sdpst.Node.origin_bid
    ~a_idx:r.src.Sdpst.Node.origin_idx ~a_write:src_write
    ~b_bid:r.sink.Sdpst.Node.origin_bid ~b_idx:r.sink.Sdpst.Node.origin_idx
    ~b_write:sink_write
    ~addr:(Fmt.str "%a" Rt.Addr.pp r.addr)

let pp_static_key ppf ((abid, aidx, aw), (bbid, bidx, bw), addr) =
  let rw w = if w then "W" else "R" in
  Fmt.pf ppf "{%s@%d.%d, %s@%d.%d} %s" (rw aw) abid aidx (rw bw) bbid bidx addr

(** Distinct static (source stmt, sink stmt) pairs — the count a user sees
    as "distinct racy statement pairs". *)
let count_static (races : t list) : int =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let k =
        ( (r.src.Sdpst.Node.origin_bid, r.src.Sdpst.Node.origin_idx),
          (r.sink.Sdpst.Node.origin_bid, r.sink.Sdpst.Node.origin_idx) )
      in
      Hashtbl.replace seen k ())
    races;
  Hashtbl.length seen
