(** Data race reports.

    A race connects two step instances of the S-DPST: the {e source} is
    the access that occurs first in the depth-first traversal, the
    {e sink} the later one (paper §4.2).  Races are rendered as the dotted
    edges of the paper's Figure 9. *)

type kind =
  | Write_read  (** earlier write, later read *)
  | Read_write  (** earlier read, later write *)
  | Write_write

let pp_kind ppf = function
  | Write_read -> Fmt.string ppf "W->R"
  | Read_write -> Fmt.string ppf "R->W"
  | Write_write -> Fmt.string ppf "W->W"

type t = {
  src : Sdpst.Node.t;  (** source step (earlier in depth-first order) *)
  sink : Sdpst.Node.t;  (** sink step (later in depth-first order) *)
  addr : Rt.Addr.t;  (** the contended location *)
  kind : kind;
}

let make ~src ~sink ~addr ~kind =
  assert (src.Sdpst.Node.id < sink.Sdpst.Node.id);
  { src; sink; addr; kind }

let pp ppf r =
  Fmt.pf ppf "%a race on %a: %a -> %a" pp_kind r.kind Rt.Addr.pp r.addr
    Sdpst.Node.pp r.src Sdpst.Node.pp r.sink

(** Distinct (source step, sink step) pairs, preserving first-seen order.
    The placement algorithms only need one edge per step pair. *)
let dedupe_by_steps (races : t list) : t list =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      let k = (r.src.Sdpst.Node.id, r.sink.Sdpst.Node.id) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    races

(** Distinct static (source stmt, sink stmt) pairs — the count a user sees
    as "distinct racy statement pairs". *)
let count_static (races : t list) : int =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let k =
        ( (r.src.Sdpst.Node.origin_bid, r.src.Sdpst.Node.origin_idx),
          (r.sink.Sdpst.Node.origin_bid, r.sink.Sdpst.Node.origin_idx) )
      in
      Hashtbl.replace seen k ())
    races;
  Hashtbl.length seen
