(** Data race reports: a race connects the {e source} step (earlier in
    depth-first order) to the {e sink} step (paper §4.2, the dotted edges
    of Figure 9). *)

type kind =
  | Write_read  (** earlier write, later read *)
  | Read_write  (** earlier read, later write *)
  | Write_write

val pp_kind : kind Fmt.t

type t = private {
  src : Sdpst.Node.t;  (** source step *)
  sink : Sdpst.Node.t;  (** sink step *)
  addr : Rt.Addr.t;  (** the contended location *)
  kind : kind;
}

(** @raise Assert_failure if [src] does not precede [sink]. *)
val make :
  src:Sdpst.Node.t -> sink:Sdpst.Node.t -> addr:Rt.Addr.t -> kind:kind -> t

val pp : t Fmt.t

(** Exact per-record signature [(src id, sink id, addr, kind)] — node ids
    are deterministic under the depth-first interpreter, so two runs
    report the same races in the same order iff their {!exact_sigs}
    lists are equal.  This is the single comparator shared by the
    differential test harness and the bench byte-identity assertions. *)
val exact_sig : t -> int * int * string * string

val exact_sigs : t list -> (int * int * string * string) list

val pp_sig : (int * int * string * string) Fmt.t

(** Schedule-independent race identity: unordered static endpoints
    [(bid, idx, is_write)] (sorted) plus the address.  Parallel detection
    compares these, since node ids depend on depth-first order.  [addr]
    is polymorphic so hot paths can key on the interned id and render
    the source-level string only when collecting. *)
val static_key :
  a_bid:int ->
  a_idx:int ->
  a_write:bool ->
  b_bid:int ->
  b_idx:int ->
  b_write:bool ->
  addr:'a ->
  (int * int * bool) * (int * int * bool) * 'a

val static_key_of_race : t -> (int * int * bool) * (int * int * bool) * string

val pp_static_key : ((int * int * bool) * (int * int * bool) * string) Fmt.t

(** Distinct (source step, sink step) pairs, first-seen order. *)
val dedupe_by_steps : t list -> t list

(** Number of distinct static (source stmt, sink stmt) pairs. *)
val count_static : t list -> int
