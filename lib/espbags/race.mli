(** Data race reports: a race connects the {e source} step (earlier in
    depth-first order) to the {e sink} step (paper §4.2, the dotted edges
    of Figure 9). *)

type kind =
  | Write_read  (** earlier write, later read *)
  | Read_write  (** earlier read, later write *)
  | Write_write

val pp_kind : kind Fmt.t

type t = private {
  src : Sdpst.Node.t;  (** source step *)
  sink : Sdpst.Node.t;  (** sink step *)
  addr : Rt.Addr.t;  (** the contended location *)
  kind : kind;
}

(** @raise Assert_failure if [src] does not precede [sink]. *)
val make :
  src:Sdpst.Node.t -> sink:Sdpst.Node.t -> addr:Rt.Addr.t -> kind:kind -> t

val pp : t Fmt.t

(** Distinct (source step, sink step) pairs, first-seen order. *)
val dedupe_by_steps : t list -> t list

(** Number of distinct static (source stmt, sink stmt) pairs. *)
val count_static : t list -> int
