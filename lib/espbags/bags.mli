(** S-bags and P-bags for the ESP-bags algorithm (Raman et al., FMSD 2012).

    During the depth-first execution every task (async instance plus the
    root task) owns an S-bag and every finish instance (plus the implicit
    root finish) owns a P-bag.  A memory access by the current task races
    with an earlier access by task [t] iff [t] is currently in a P-bag.
    Bags are union-find classes over task ids (S-DPST node ids). *)

type t

val create : unit -> t

(** The innermost executing task.
    @raise Invalid_argument if no task has begun. *)
val current_task : t -> int

(** Is this task currently in a P-bag (parallel-possible with the
    currently executing code)?
    @raise Invalid_argument for an unknown task id. *)
val in_pbag : t -> int -> bool

(** A task starts: fresh singleton S-bag. *)
val task_begin : t -> task:int -> unit

(** A task ends: its S-bag contents move to the P-bag of its immediately
    enclosing finish.
    @raise Invalid_argument if [task] is not the innermost task. *)
val task_end : t -> task:int -> unit

(** A finish region starts (empty P-bag). *)
val finish_begin : t -> finish:int -> unit

(** A finish region ends: its P-bag contents move to the S-bag of the
    enclosing task.
    @raise Invalid_argument if [finish] is not the innermost finish. *)
val finish_end : t -> finish:int -> unit
