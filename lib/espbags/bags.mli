(** S-bags and P-bags for the ESP-bags algorithm (Raman et al., FMSD 2012).

    During the depth-first execution every task (async instance plus the
    root task) owns an S-bag and every finish instance (plus the implicit
    root finish) owns a P-bag.  A memory access by the current task races
    with an earlier access by task [t] iff [t] is currently in a P-bag.
    Bags are union-find classes over tasks.  Structural transitions take
    S-DPST node ids, but tasks are interned to dense indices at
    {!task_begin}: {!current_task} returns the innermost task's dense
    index and {!in_pbag} takes one, which keeps the scan-side state small
    enough to stay in cache. *)

type t

val create : unit -> t

(** Observability counters since [create].  Counting is kept off the
    per-entry scan fast path: finds/unions only happen on memo misses
    and structural transitions, and scan entries are counted once per
    {!scan_report} call. *)

val n_finds : t -> int
(** Union-find root lookups (each may walk and halve a path). *)

val n_unions : t -> int
(** Class merges; unions of an already-shared class are not counted. *)

val n_scan_entries : t -> int
(** Shadow-location entries tested across all {!scan_report} calls. *)

(** The innermost executing task, as its dense index (the value to store
    in shadow state and later pass to {!in_pbag}).
    @raise Invalid_argument if no task has begun. *)
val current_task : t -> int

(** Is this task (a dense index from {!current_task}) currently in a
    P-bag (parallel-possible with the currently executing code)?
    @raise Invalid_argument for an unknown task index. *)
val in_pbag : t -> int -> bool

(** Is this task {e permanently} serialized with everything that still
    runs — in the root task's S-bag, which no transition can ever turn
    back into a P-bag (see bags.ml for the argument)?  Shadow entries
    recorded by such a task can never report again, so the detectors'
    epoch GC drops them.
    @raise Invalid_argument for an unknown task index. *)
val forever_serial : t -> int -> bool

(** Bumped each time a batch of tasks becomes {!forever_serial} (a
    finish closing in the root task's continuation).  Detectors compare
    a per-location stamp against it to lazily trigger retirement. *)
val serial_version : t -> int

(** [scan_report t entries ~out ~sink ~meta] appends to [out] the packed
    2-int race record [(sid lsl 31) lor sink, meta] for every element of
    [entries] — each packed as [(task lsl 31) lor sid] with [task] a
    dense index from {!current_task} — whose task is currently in a
    P-bag, skipping entries whose [sid] equals [sink].  The detector's
    fused scan-and-report inner loop; [sink] and packed [sid]s must fit
    in 31 bits (see bags.ml). *)
val scan_report :
  t -> Tdrutil.Ivec.t -> out:Tdrutil.Ivec.t -> sink:int -> meta:int -> unit

(** A task starts: fresh singleton S-bag. *)
val task_begin : t -> task:int -> unit

(** A task ends: its S-bag contents move to the P-bag of its immediately
    enclosing finish.
    @raise Invalid_argument if [task] is not the innermost task. *)
val task_end : t -> task:int -> unit

(** A finish region starts (empty P-bag). *)
val finish_begin : t -> finish:int -> unit

(** A finish region ends: its P-bag contents move to the S-bag of the
    enclosing task.
    @raise Invalid_argument if [finish] is not the innermost finish. *)
val finish_end : t -> finish:int -> unit

