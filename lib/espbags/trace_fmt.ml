(** Line-level codecs of the race trace format, shared by {!Trace}
    (whole-file save/load) and {!Spill} (incremental append of detector
    overflow).  Kept free of any {!Detector} dependency so the spill sink
    can sit below the detectors. *)

let magic = "tdrace-trace-v1"

exception Parse_error of string * int  (** message, 1-based line number *)

let string_of_addr = function
  | Rt.Addr.Global g -> "g:" ^ g
  | Rt.Addr.Cell (a, i) -> Fmt.str "c:%d:%d" a i

let addr_of_string ~line s =
  match String.split_on_char ':' s with
  | [ "g"; name ] -> Rt.Addr.Global name
  | [ "c"; a; i ] -> (
      match (int_of_string_opt a, int_of_string_opt i) with
      | Some a, Some i -> Rt.Addr.Cell (a, i)
      | _ -> raise (Parse_error ("malformed cell address " ^ s, line)))
  | _ -> raise (Parse_error ("malformed address " ^ s, line))

let string_of_kind = function
  | Race.Write_read -> "WR"
  | Race.Read_write -> "RW"
  | Race.Write_write -> "WW"

let kind_of_string ~line = function
  | "WR" -> Race.Write_read
  | "RW" -> Race.Read_write
  | "WW" -> Race.Write_write
  | s -> raise (Parse_error ("unknown race kind " ^ s, line))

(* The detectors' packed 2-bit race-kind codes (the low bits of a packed
   record's meta word). *)
let kind_of_code = function
  | 0 -> Race.Write_read
  | 1 -> Race.Read_write
  | _ -> Race.Write_write

let add_race_line buf ~kind ~addr ~src ~sink =
  Buffer.add_string buf
    (Fmt.str "race %s %s %d %d\n" (string_of_kind kind) (string_of_addr addr)
       src sink)
