(* See spill.mli.  The file is the trace line format (Trace_fmt) with the
   header written once at creation and records appended per flush — the
   [races N] summary line is omitted, which Trace.of_string tolerates, so
   a spill file doubles as a loadable trace of the spilled prefix. *)

type config = { path : string; cap : int }

let default_cap = 1 lsl 20

let config ?(cap = default_cap) path =
  if cap <= 0 then invalid_arg "Spill.config: cap must be positive";
  { path; cap }

type t = {
  path : string;
  cap_ints : int;  (** r_buf length threshold: records are 2 ints *)
  mode_name : string;
  mutable oc : out_channel option;
  mutable n_spilled : int;  (** race records written out *)
}

let create (cfg : config) ~mode_name =
  {
    path = cfg.path;
    cap_ints = 2 * cfg.cap;
    mode_name;
    oc = None;
    n_spilled = 0;
  }

let path t = t.path

let cap_ints t = t.cap_ints

let n_spilled t = t.n_spilled

let channel t =
  match t.oc with
  | Some oc -> oc
  | None ->
      (* append mode: [close] between flushes must not truncate records
         already on disk.  The first open of a run truncates: a stale
         file from an earlier run must not prepend its records. *)
      let fresh = t.n_spilled = 0 in
      let flags =
        if fresh then [ Open_wronly; Open_creat; Open_trunc ]
        else [ Open_wronly; Open_creat; Open_append ]
      in
      let oc = open_out_gen flags 0o644 t.path in
      if fresh then begin
        output_string oc (Trace_fmt.magic ^ "\n");
        output_string oc ("mode " ^ t.mode_name ^ "\n")
      end;
      t.oc <- Some oc;
      oc

let sid_mask = (1 lsl 31) - 1

(** Append every packed race record of [r_buf] to the file.  The caller
    clears the buffer (and invalidates any scan-replay memos ranging into
    it) afterwards. *)
let append t ~intern r_buf =
  let n = Tdrutil.Ivec.length r_buf in
  if n > 0 then begin
    let oc = channel t in
    let data = Tdrutil.Ivec.unsafe_data r_buf in
    let buf = Buffer.create 8192 in
    let i = ref 0 in
    while !i < n do
      let ss = Array.unsafe_get data !i
      and meta = Array.unsafe_get data (!i + 1) in
      Trace_fmt.add_race_line buf
        ~kind:(Trace_fmt.kind_of_code (meta land 3))
        ~addr:(Rt.Addr.Intern.of_id intern (meta lsr 2))
        ~src:(ss lsr 31) ~sink:(ss land sid_mask);
      if Buffer.length buf > 65536 then begin
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      end;
      i := !i + 2
    done;
    Buffer.output_buffer oc buf;
    t.n_spilled <- t.n_spilled + (n / 2)
  end

(** Flush and release the file handle (the file remains readable and
    appendable). *)
let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      close_out oc;
      t.oc <- None

(** Read the spilled records back, in spill order.  [resolve] maps a step
    id to its node (the detector's step registry: every spilled id was
    registered when recorded).
    @raise Trace_fmt.Parse_error on a corrupted file *)
let records t ~resolve : Race.t list =
  Option.iter Stdlib.flush t.oc;
  if t.n_spilled = 0 then []
  else begin
    let ic = open_in t.path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let races = ref [] in
        let lnum = ref 0 in
        (try
           while true do
             let line = input_line ic in
             incr lnum;
             match String.split_on_char ' ' (String.trim line) with
             | [ "race"; kind; addr; src; sink ] -> (
                 match (int_of_string_opt src, int_of_string_opt sink) with
                 | Some src, Some sink ->
                     races :=
                       Race.make ~src:(resolve src) ~sink:(resolve sink)
                         ~addr:(Trace_fmt.addr_of_string ~line:!lnum addr)
                         ~kind:(Trace_fmt.kind_of_string ~line:!lnum kind)
                       :: !races
                 | _ ->
                     raise
                       (Trace_fmt.Parse_error ("malformed race endpoints", !lnum))
                 )
             | [ "" ] | [ "mode"; _ ] | [ "races"; _ ] -> ()
             | [ m ] when m = Trace_fmt.magic -> ()
             | _ ->
                 raise
                   (Trace_fmt.Parse_error ("unrecognized line: " ^ line, !lnum))
           done
         with End_of_file -> ());
        List.rev !races)
  end
