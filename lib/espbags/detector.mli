(** The two ESP-bags race detectors, packaged as {!Rt.Monitor}
    implementations.

    {b SRW} (Single Reader-Writer) is the original algorithm: one writer
    and one reader tracked per location, reporting a subset of the races
    (none iff the input is race-free).  {b MRW} (Multiple Reader-Writer)
    is the paper's §4.1 modification: all readers and writers are kept, so
    every potential race for the input is reported in a single run. *)

type mode = Srw | Mrw

val pp_mode : mode Fmt.t

type t = private {
  mode : mode;
  monitor : Rt.Monitor.t;  (** pass to {!Rt.Interp.run} *)
  races : Race.t Tdrutil.Vec.t;
  mutable n_accesses : int;  (** monitored accesses checked *)
  mutable n_locations : int;  (** distinct locations touched *)
  mutable n_skipped : int;  (** accesses skipped by a static pre-pass *)
}

(** Races recorded so far, in report order. *)
val races : t -> Race.t list

val race_count : t -> int

(** No race reported? *)
val clean : t -> bool

(** Fresh detector of the given flavour. *)
val make : mode -> t

(** Run a program under a fresh detector; returns the detector (with its
    recorded races) and the execution result.

    [keep] is a per-statement monitoring predicate (typically a static
    MHP pre-pass); accesses of statements it rejects are skipped and
    counted in [n_skipped].  With MRW, skipping statements proven
    race-free leaves the reported race set unchanged. *)
val detect :
  ?fuel:int ->
  ?keep:(bid:int -> idx:int -> bool) ->
  mode ->
  Mhj.Ast.program ->
  t * Rt.Interp.result
