(** The two ESP-bags race detectors, packaged as {!Rt.Monitor}
    implementations.

    {b SRW} (Single Reader-Writer) is the original algorithm: one writer
    and one reader tracked per location, reporting a subset of the races
    (none iff the input is race-free).  {b MRW} (Multiple Reader-Writer)
    is the paper's §4.1 modification: all readers and writers are kept, so
    every potential race for the input is reported in a single run.

    The per-access hot path is allocation- and hash-free: shadow memory is
    a slab-chunked table indexed by interned address id, access lists are
    struct-of-arrays, and per-step dedup is an epoch compare (see
    detector.ml; {!Reference} keeps the seed representation the
    differential suite compares against).  At scale, memory stays bounded
    without changing reports: shadow slabs track touched id ranges, epoch
    GC retires entries of {!Bags.forever_serial} tasks, and race-record
    overflow spills to disk (DESIGN.md §15). *)

type mode = Srw | Mrw

val pp_mode : mode Fmt.t

type t = private {
  mode : mode;
  bags : Bags.t;  (** the run's union-find bag state (for {!stats}) *)
  mutable monitor : Rt.Monitor.t;  (** pass to {!Rt.Interp.run} *)
  steps : Sdpst.Node.t Tdrutil.Vec.t;
      (** step id -> step node, filled on each step's first access *)
  r_buf : Tdrutil.Ivec.t;
      (** deferred race records in report order, stride 2, packed:
          [(src lsl 31) lor sink] step ids, then [(addr lsl 2) lor kind]
          (see [races], which materializes them) *)
  spill : Spill.t option;
      (** overflow sink: past its cap, [r_buf] drains to disk *)
  mutable spill_gen : int;  (** drains so far (invalidates scan memos) *)
  mutable intern : Rt.Addr.Intern.t;
      (** the monitored run's address interner (delivered via the
          monitor's [on_init]) *)
  mutable n_accesses : int;  (** monitored accesses checked *)
  mutable n_locations : int;  (** distinct locations touched *)
  mutable n_skipped : int;  (** accesses skipped by a static pre-pass *)
  mutable n_retired : int;  (** shadow entries dropped by epoch GC *)
  mutable shadow_info : unit -> int * int;
      (** current (slab count, allocated shadow words) *)
}

(** Races recorded so far (including any spilled to disk), in report
    order. *)
val races : t -> Race.t list

(** The run's counters as ["detector."]-prefixed keys for an
    {!Obs.Metrics} registry: accesses monitored, distinct shadow
    locations, races recorded, accesses skipped by a static pre-pass,
    union-find finds/unions, shadow entries scanned, shadow slabs and
    words allocated, entries retired by epoch GC, and race records
    spilled to disk. *)
val stats : t -> (string * int) list

(** Including spilled records. *)
val race_count : t -> int

(** Race records spilled to disk so far. *)
val n_spilled : t -> int

(** Allocated shadow slab count / words (the [detector.shadow_slabs] and
    [detector.shadow_words] gauges). *)
val shadow_slabs : t -> int

val shadow_words : t -> int

(** No race reported? *)
val clean : t -> bool

(** Fresh detector of the given flavour.  [layout] picks the shadow
    growth policy (default: slab-chunked, {!Tdrutil.Islab.default_chunk}
    slots); [spill] bounds in-memory race records. *)
val make : ?layout:Tdrutil.Islab.layout -> ?spill:Spill.config -> mode -> t

(** Run a program under a fresh detector; returns the detector (with its
    recorded races) and the execution result.

    [keep] is a per-statement monitoring predicate (typically a static
    MHP pre-pass); accesses of statements it rejects are skipped and
    counted in [n_skipped].  With MRW, skipping statements proven
    race-free leaves the reported race set unchanged.  [layout] and
    [spill] as in {!make}; neither changes the reported races. *)
val detect :
  ?fuel:int ->
  ?keep:(bid:int -> idx:int -> bool) ->
  ?layout:Tdrutil.Islab.layout ->
  ?spill:Spill.config ->
  mode ->
  Mhj.Ast.program ->
  t * Rt.Interp.result
