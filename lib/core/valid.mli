(** Scope-validity of candidate finish placements (paper Algorithm 2 and
    the Figure 5 constraint), and the static insertion points they map
    to. *)

type insertion = {
  parent : Sdpst.Node.t;  (** node under which the finish node is spliced *)
  child_lo : int;  (** first adopted child index under [parent] *)
  child_hi : int;  (** last adopted child index *)
  placement : Mhj.Transform.placement;  (** static program location *)
}

val pp_insertion : insertion Fmt.t

(** The S-DPST insertion realizing a finish over dependence-graph vertices
    [i..j] (0-based, inclusive), or [None] if no scope-valid insertion
    exists.  Returns the {e highest} valid level (the paper's §5.2 rule):
    candidates climb from [lca(first i, last j)] through enclosing scope
    nodes until the finish would capture vertex [i-1] or [j+1].

    @param wrap_ok declaration-visibility constraint, normally
      {!Mhj.Scopecheck.wrap_ok}. *)
val insertion_for :
  ?wrap_ok:(bid:int -> lo:int -> hi:int -> bool) ->
  Depgraph.t ->
  i:int ->
  j:int ->
  insertion option

(** Paper Algorithm 2, literally: LCA-depth comparison with the outside
    neighbours.  Retained for cross-validation; [insertion_for] refines it
    with statement-boundary and declaration-visibility constraints. *)
val valid_by_depths : Depgraph.t -> i:int -> j:int -> bool

(** Memoized pair of (validity predicate, insertion query) over one
    dependence graph, as consumed by {!Dp_place.solve}. *)
val make_checker :
  ?wrap_ok:(bid:int -> lo:int -> hi:int -> bool) ->
  Depgraph.t ->
  (i:int -> j:int -> bool) * (i:int -> j:int -> insertion option)
