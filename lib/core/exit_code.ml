(** The tdrepair exit-code contract (see exit_code.mli). *)

let ok = 0

let internal_error = 1

let not_converged = 2

let input_error = 3

let degraded = 4

let unrepairable = 5

let lint_findings = 6

let grade_racy = 3

let grade_oversync = 4

let of_diag (d : Diag.t) =
  match d.Diag.stage with
  | Diag.Parse | Diag.Typecheck | Diag.Interp -> input_error
  | Diag.Budget -> degraded
  | Diag.Place | Diag.Insert -> unrepairable
  | Diag.Detect | Diag.Lint -> internal_error
