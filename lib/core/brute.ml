(** Brute-force finish-placement oracle.

    Exhaustively enumerates every well-formed placement — a set of
    pairwise nested-or-disjoint vertex intervals, each passing the
    validity predicate — that resolves all dependence edges, and returns
    the minimum completion time.  Exponential; used only by the test suite
    to validate the DP's optimality claim (paper Theorem 2) on small
    dependence graphs. *)

let max_vertices = 7

(** Minimum completion time over all valid resolving placements, with a
    witness placement; [None] if no placement resolves the edges.
    @raise Invalid_argument when the graph exceeds {!max_vertices}. *)
let solve ?(valid = fun ~i:_ ~j:_ -> true) (g : Depgraph.t) :
    (int * (int * int) list) option =
  let n = Depgraph.n_vertices g in
  if n > max_vertices then
    invalid_arg
      (Fmt.str "Brute.solve: %d vertices exceeds the oracle bound %d" n
         max_vertices);
  let intervals = ref [] in
  for s = n - 1 downto 0 do
    for e = n - 1 downto s do
      if valid ~i:s ~j:e then intervals := (s, e) :: !intervals
    done
  done;
  let intervals = Array.of_list !intervals in
  let crossing (a1, b1) (a2, b2) =
    (a1 < a2 && a2 <= b1 && b1 < b2) || (a2 < a1 && a1 <= b2 && b2 < b1)
  in
  let best = ref None in
  let consider chosen =
    if Dp_place.resolves_all g chosen then begin
      let cost = Dp_place.eval_placement g chosen in
      match !best with
      | Some (c, _) when c <= cost -> ()
      | _ -> best := Some (cost, chosen)
    end
  in
  let rec go idx chosen =
    if idx = Array.length intervals then consider chosen
    else begin
      go (idx + 1) chosen;
      let iv = intervals.(idx) in
      if not (List.exists (crossing iv) chosen) then
        go (idx + 1) (iv :: chosen)
    end
  in
  go 0 [];
  !best
