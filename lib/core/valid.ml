(** Scope-validity of candidate finish placements (paper Algorithm 2).

    A dynamic finish over dependence-graph vertices [i..j] is realizable
    only if a finish node can be introduced into the S-DPST as an ancestor
    of vertices [i..j] but of neither [i-1] nor [j+1] — otherwise the
    finish would cut across a lexical scope of the input program (the
    paper's Figure 5).  The paper tests this with LCA depths; we construct
    the witness insertion point directly, which subsumes the depth test and
    also yields the static program location:

    the new finish becomes a child of [p = lca(node_i, node_j)], adopting
    the contiguous range of [p]'s children from the child-ancestor of
    [node_i] to the child-ancestor of [node_j].  Validity additionally
    requires that the adopted range maps to whole statements — a step that
    resumes mid-statement after a call scope cannot be a finish boundary
    (see DESIGN.md §4). *)

type insertion = {
  parent : Sdpst.Node.t;  (** node under which the finish is spliced *)
  child_lo : int;  (** first adopted child index under [parent] *)
  child_hi : int;  (** last adopted child index *)
  placement : Mhj.Transform.placement;  (** static program location *)
}

let pp_insertion ppf ins =
  Fmt.pf ppf "insert finish under %a children [%d..%d] -> %a" Sdpst.Node.pp
    ins.parent ins.child_lo ins.child_hi Mhj.Transform.pp_placement
    ins.placement

(* The child of [p] on the path from [n] to [p] ([n] itself if its parent
   is [p]). *)
let child_ancestor ~p n =
  let rec go n =
    match n.Sdpst.Node.parent with
    | Some q when q.Sdpst.Node.id = p.Sdpst.Node.id -> n
    | Some q -> go q
    | None -> invalid_arg "Valid.child_ancestor: not a descendant"
  in
  go n

(* First and last statement index occupied by a child node of [p]. *)
let stmt_range (n : Sdpst.Node.t) =
  let last = if Sdpst.Node.is_step n then n.last_idx else n.origin_idx in
  (n.origin_idx, last)

(** Compute the S-DPST insertion realizing a finish over dependence-graph
    vertices [g.nodes.(i) .. g.nodes.(j)] (0-based, inclusive), or [None]
    if no scope-valid insertion exists.

    Candidates start at the tightest level ([lca(node_i, node_j)], or the
    parent for a single vertex) and climb through enclosing scope nodes;
    climbing stops once the finish would capture vertex [i-1] or [j+1]
    (the paper's Figure 5 constraint) or a non-scope node is reached.  Of
    the valid levels, the {e highest} is returned — the paper's §5.2 rule.
    Climbing can only pull enclosing scope structure (never another
    dependence-graph vertex) into the finish, and the highest level is
    what lets dynamic instances with differently-sized subproblems agree
    on one static program point (e.g. LUFact's last elimination step, a
    single async, maps to the same loop-wrapping finish as the full
    steps). *)
let insertion_for ?(wrap_ok = fun ~bid:_ ~lo:_ ~hi:_ -> true) (g : Depgraph.t)
    ~i ~j : insertion option =
  let ni = g.first.(i) and nj = g.last.(j) in
  let left = if i > 0 then Some g.last.(i - 1) else None in
  let right =
    if j + 1 < Depgraph.n_vertices g then Some g.first.(j + 1) else None
  in
  let candidate_at p : insertion option =
    let a = child_ancestor ~p ni and b = child_ancestor ~p nj in
    let lo, _ = stmt_range a in
    let _, hi = stmt_range b in
    (* Statement-boundary test: left sharing is benign (a preceding step
       that also touches statement [lo] — a condition or argument
       evaluation — merely gets that fragment pulled inside the finish);
       right sharing is not, because the statically wrapped range would
       swallow part of the following vertex, which may be a race sink the
       finish must precede. *)
    let child_lo = Sdpst.Node.child_index p a in
    let child_hi = Sdpst.Node.child_index p b in
    let left_ok =
      child_lo = 0
      ||
      let prev = Tdrutil.Vec.get p.Sdpst.Node.children (child_lo - 1) in
      Sdpst.Node.is_step prev || snd (stmt_range prev) < lo
    in
    let right_ok =
      child_hi = Tdrutil.Vec.length p.Sdpst.Node.children - 1
      ||
      let next = Tdrutil.Vec.get p.Sdpst.Node.children (child_hi + 1) in
      fst (stmt_range next) > hi
    in
    if left_ok && right_ok && wrap_ok ~bid:a.Sdpst.Node.origin_bid ~lo ~hi
    then
      Some
        {
          parent = p;
          child_lo;
          child_hi;
          placement = { Mhj.Transform.bid = a.Sdpst.Node.origin_bid; lo; hi };
        }
    else None
  in
  (* The finish must not become an ancestor of vertex i-1 or j+1; once an
     exclusion fails while climbing it fails at every higher level. *)
  let excluded p neighbour boundary =
    match neighbour with
    | None -> true
    | Some nb ->
        (not (Sdpst.Lca.is_ancestor p nb))
        || (child_ancestor ~p nb).Sdpst.Node.id <> boundary
  in
  let rec climb p best =
    let a = child_ancestor ~p ni and b = child_ancestor ~p nj in
    if
      not
        (excluded p left a.Sdpst.Node.id && excluded p right b.Sdpst.Node.id)
    then best
    else
      let best =
        match candidate_at p with Some c -> Some c | None -> best
      in
      match (Sdpst.Node.is_scope p, p.Sdpst.Node.parent) with
      | true, Some q -> climb q best
      | _ -> best
  in
  let p0 =
    if ni.Sdpst.Node.id = nj.Sdpst.Node.id then
      match ni.Sdpst.Node.parent with
      | Some p -> p
      | None -> invalid_arg "Valid.insertion_for: vertex is the root"
    else Sdpst.Lca.lca ni nj
  in
  climb p0 None

(** Paper Algorithm 2, literally: compare LCA depths of the candidate
    boundaries with their outside neighbours.  Retained for
    cross-validation against {!insertion_for} in the test suite. *)
let valid_by_depths (g : Depgraph.t) ~i ~j : bool =
  let n = Depgraph.n_vertices g in
  let d12 =
    if i = j && g.first.(i).Sdpst.Node.id = g.last.(i).Sdpst.Node.id then
      g.first.(i).Sdpst.Node.depth
    else (Sdpst.Lca.lca g.first.(i) g.last.(j)).Sdpst.Node.depth
  in
  let d1l =
    if i = 0 then min_int
    else (Sdpst.Lca.lca g.last.(i - 1) g.first.(i)).Sdpst.Node.depth
  in
  let d2r =
    if j = n - 1 then min_int
    else (Sdpst.Lca.lca g.last.(j) g.first.(j + 1)).Sdpst.Node.depth
  in
  not (d1l > d12 || d2r > d12)

(** Memoized validity predicate for the DP: [valid i j] iff a scope-valid
    insertion exists for vertices [i..j].

    @param wrap_ok declaration-visibility constraint (see
      {!Mhj.Scopecheck.wrap_ok}); defaults to unconstrained. *)
let make_checker ?wrap_ok (g : Depgraph.t) :
    (i:int -> j:int -> bool) * (i:int -> j:int -> insertion option) =
  let memo = Hashtbl.create 64 in
  let insertion ~i ~j =
    match Hashtbl.find_opt memo (i, j) with
    | Some r -> r
    | None ->
        let r = insertion_for ?wrap_ok g ~i ~j in
        Hashtbl.add memo (i, j) r;
        r
  in
  let valid ~i ~j = Option.is_some (insertion ~i ~j) in
  (valid, insertion)
