(** Human-readable repair reports.

    Renders a {!Driver.report} the way the paper's artifact does: the
    source positions where additional [finish] constructs should be
    inserted, plus per-iteration statistics and — as the paper's §9
    "context-sensitive finishes" future-work extension — the set of
    dynamic calling contexts (NS-LCA instances) that demanded each static
    placement. *)

(* Source span of a static placement: locations of the first and last
   wrapped statements. *)
let placement_span (scopes : Mhj.Scopecheck.t)
    (p : Mhj.Transform.placement) : (Mhj.Loc.t * Mhj.Loc.t) option =
  match Hashtbl.find_opt scopes.Mhj.Scopecheck.blocks p.bid with
  | Some stmts when p.lo < Array.length stmts && p.hi < Array.length stmts ->
      Some (stmts.(p.lo).Mhj.Ast.sloc, stmts.(p.hi).Mhj.Ast.sloc)
  | _ -> None

let pp_placement_loc scopes ppf (p : Mhj.Transform.placement) =
  match placement_span scopes p with
  | Some (lo, hi) when not (Mhj.Loc.is_dummy lo) ->
      if lo.Mhj.Loc.line = hi.Mhj.Loc.line then
        Fmt.pf ppf "line %d" lo.Mhj.Loc.line
      else Fmt.pf ppf "lines %d-%d" lo.Mhj.Loc.line hi.Mhj.Loc.line
  | _ -> Fmt.pf ppf "block %d, statements %d..%d" p.bid p.lo p.hi

(** How many dynamic NS-LCA instances demanded each static placement —
    the evidence for a context-sensitive finish (a placement demanded by
    only some contexts could be guarded by a condition). *)
let contexts_per_placement (it : Driver.iteration) :
    (Mhj.Transform.placement * int) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (g : Driver.group_result) ->
      List.iter
        (fun (ins : Valid.insertion) ->
          let key =
            (ins.placement.bid, ins.placement.lo, ins.placement.hi)
          in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
        g.insertions)
    it.groups;
  Hashtbl.fold
    (fun (bid, lo, hi) count acc ->
      ({ Mhj.Transform.bid; lo; hi }, count) :: acc)
    tbl []
  |> List.sort (fun ((a : Mhj.Transform.placement), _) (b, _) ->
         compare (a.bid, a.lo, a.hi) (b.bid, b.lo, b.hi))

let pp_iteration scopes ppf (idx, (it : Driver.iteration)) =
  Fmt.pf ppf "iteration %d: %d race report(s), %d distinct step pair(s), %d \
              NS-LCA group(s), %d S-DPST node(s)@\n"
    (idx + 1) it.n_races it.n_race_pairs it.n_groups it.sdpst_nodes;
  if it.n_skipped > 0 then
    Fmt.pf ppf
      "  static prune: %d access(es) checked, %d skipped as provably \
       sequential@\n"
      it.n_accesses it.n_skipped;
  List.iter
    (fun (p, n_contexts) ->
      Fmt.pf ppf "  insert finish around %a  (demanded by %d dynamic \
                  context(s))@\n"
        (pp_placement_loc scopes) p n_contexts)
    (contexts_per_placement it);
  if it.merged.Static_place.n_merged > 0 then
    Fmt.pf ppf "  (%d crossing placement(s) merged by range union)@\n"
      it.merged.Static_place.n_merged

(** Render the full report for program [original]. *)
let pp ppf ((original, r) : Mhj.Ast.program * Driver.report) =
  let scopes = Mhj.Scopecheck.build original in
  Fmt.pf ppf "repair with %a ESP-bags: %s after %d iteration(s)@\n"
    Espbags.Detector.pp_mode r.mode
    (if r.converged then "race-free" else
       Fmt.str "NOT converged (%d race(s) remain)" r.final_races)
    (List.length r.iterations);
  List.iteri (fun i it -> pp_iteration scopes ppf (i, it)) r.iterations;
  if r.degradations <> [] then begin
    Fmt.pf ppf "degraded: budget limits changed how this repair ran:@\n";
    List.iter
      (fun d -> Fmt.pf ppf "  - %a@\n" Guard.pp_degradation d)
      r.degradations
  end;
  (match r.verified_static with
  | Some true ->
      Fmt.pf ppf
        "statically verified: race-free for all inputs (no unproven MHP \
         pair)@\n"
  | Some false ->
      Fmt.pf ppf
        "static verification incomplete: %d unproven pair(s) remain — \
         race-free for this input only:@\n"
        (List.length r.static_residual);
      List.iter
        (fun f -> Fmt.pf ppf "  - %a@\n" Static.Finding.pp f)
        r.static_residual
  | None -> ());
  match r.validated_par with
  | Some v ->
      Fmt.pf ppf "parallel validation: %a@\n" Par.Validate.pp v
  | None -> ()

let to_string original r = Fmt.str "%a" pp (original, r)
