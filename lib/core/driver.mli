(** The test-driven repair driver (paper Figure 6 and §6.1): iterate
    detection, dynamic finish placement, and static insertion until the
    program is race-free for its input. *)

type group_result = {
  lca_id : int;  (** S-DPST node id of the NS-LCA *)
  n_vertices : int;
  n_edges : int;
  dp_cost : int;  (** optimal block completion time found by the DP *)
  fell_back : bool;
      (** the DP was unsatisfiable and per-edge minimal covers were used *)
  insertions : Valid.insertion list;
}

type iteration = {
  n_races : int;  (** raw race reports this run *)
  n_race_pairs : int;  (** distinct (source step, sink step) pairs *)
  n_groups : int;  (** distinct NS-LCAs *)
  groups : group_result list;
  merged : Static_place.merged;
  detect_time : float;  (** seconds spent executing + detecting *)
  place_time : float;  (** seconds spent in placement (dynamic + static) *)
  sdpst_nodes : int;
}

type report = {
  program : Mhj.Ast.program;  (** the repaired program *)
  mode : Espbags.Detector.mode;
  iterations : iteration list;
  converged : bool;  (** the final detection run found no races *)
  final_races : int;  (** races remaining (0 when converged) *)
}

exception Unrepairable of string
(** Some race admits no scope-valid finish placement. *)

(** One placement pass: the dynamic placement + location mapping for the
    races of a single detector run, without touching the program.
    Trace-file workflows (paper Appendix A) drive this directly. *)
val place_for_tree :
  program:Mhj.Ast.program ->
  Espbags.Race.t list ->
  group_result list * Static_place.merged

(** Paper §6.1's incremental strategy: solve NS-LCA groups one finish at a
    time against a {e live} S-DPST — splice the finish node in (step d),
    drop the races it resolves, re-checked with Theorem 1 (step e), and
    regroup the remainder, whose NS-LCAs may have changed (step f).
    Mutates the tree. *)
val place_incremental :
  program:Mhj.Ast.program ->
  Sdpst.Node.tree ->
  Espbags.Race.t list ->
  group_result list * Static_place.merged

val default_max_iterations : int

(** Repair [prog]: iterate detection and placement until race-free.

    @param mode detector flavour (default {!Espbags.Detector.Mrw})
    @param strategy [`Batch] (default) solves every NS-LCA group of a
      detection run at once; [`Incremental] is the paper's §6.1 live-tree
      loop.  Both converge; [`Batch] does less work on large race sets.
    @param max_iterations safety bound (default 10)
    @param fuel interpreter fuel per run
    @raise Unrepairable if some race admits no scope-valid fix *)
val repair :
  ?mode:Espbags.Detector.mode ->
  ?strategy:[ `Batch | `Incremental ] ->
  ?max_iterations:int ->
  ?fuel:int ->
  Mhj.Ast.program ->
  report

(** All placements inserted across the report's iterations. *)
val total_placements : report -> Mhj.Transform.placement list

(** Multi-input repair (paper §2: "the tool is applied iteratively for
    different test inputs"). *)
type multi_report = {
  final : Mhj.Ast.program;  (** repaired for every input *)
  per_input : (string * report) list;  (** input label -> last repair run *)
  all_converged : bool;
  coverage : Coverage.t;  (** combined coverage of all inputs *)
}

(** Repair one program under several test inputs, each a labelled set of
    int-global overrides ({!Mhj.Transform.set_global_int}).  Placements
    demanded under any input are merged into the shared base program;
    rounds continue until every input's execution is race-free (or
    [max_rounds]).  The result includes the combined coverage of the input
    set — the paper's §9 test-suitability metric. *)
val repair_multi :
  ?mode:Espbags.Detector.mode ->
  ?strategy:[ `Batch | `Incremental ] ->
  ?max_rounds:int ->
  ?fuel:int ->
  inputs:(string * (string * int) list) list ->
  Mhj.Ast.program ->
  multi_report
