(** The test-driven repair driver (paper Figure 6 and §6.1): iterate
    detection, dynamic finish placement, and static insertion until the
    program is race-free for its input.

    Failure handling: every stage runs behind {!Guard.at_stage}, so
    pipeline failures surface as typed {!Diag.t} diagnostics (via
    {!Diag.Fail}) rather than raw [Failure]/[Invalid_argument] escapes;
    {!repair_checked} is the total entry point.  Resource budgets
    ({!Guard.budgets}) bound the interpreter, the S-DPST and the placement
    DP; exhaustion degrades gracefully (prune / interval covers) and is
    recorded in the report's [degradations]. *)

type group_result = {
  lca_id : int;  (** S-DPST node id of the NS-LCA *)
  n_vertices : int;
  n_edges : int;
  dp_cost : int;  (** optimal block completion time found by the DP *)
  fell_back : bool;
      (** the DP was bypassed (unsatisfiable or over budget) and per-edge
          minimal covers were used *)
  insertions : Valid.insertion list;
}

type iteration = {
  n_races : int;  (** raw race reports this run *)
  n_race_pairs : int;  (** distinct (source step, sink step) pairs *)
  n_groups : int;  (** distinct NS-LCAs *)
  groups : group_result list;
  merged : Static_place.merged;
  detect_time : float;  (** seconds spent executing + detecting *)
  place_time : float;  (** seconds spent in placement (dynamic + static) *)
  sdpst_nodes : int;
  n_accesses : int;  (** accesses the detector checked this run *)
  n_skipped : int;  (** accesses skipped by the static prune pre-pass *)
}

type report = {
  program : Mhj.Ast.program;  (** the repaired program *)
  mode : Espbags.Detector.mode;
  iterations : iteration list;
  converged : bool;  (** the final detection run found no races *)
  final_races : int;  (** races remaining (0 when converged) *)
  degradations : Guard.degradation list;
      (** budget degradations that fired, in order; empty means the repair
          ran at full fidelity *)
  verified_static : bool option;
      (** [static_verify] verdict on the converged program: [Some true]
          means race-free for every input, not just the test input;
          [Some false] means unproven MHP pairs remain (see
          [static_residual]); [None] means verification was not requested
          or the repair did not converge *)
  static_residual : Static.Finding.t list;
      (** the unproven pairs behind [verified_static = Some false] *)
  validated_par : Par.Validate.t option;
      (** [validate_par] outcome on the converged program: the repaired
          program re-executed under fuzzed parallel schedules
          ({!Par.Engine.Fuzz}) and compared against the sequential
          semantics.  [None] when validation was not requested or the
          repair did not converge.  Skipped schedules (wall-clock budget)
          are also recorded as a {!Guard.Validate_par_skipped}
          degradation. *)
  metrics : (string * int) list;
      (** sorted snapshot of the run's {!Obs.Metrics} registry —
          detector, pruner, engine and driver counters.  The full key
          schema is always present (zeros for subsystems that did not
          run); [tdrepair repair --metrics=FILE] dumps it as one JSON
          object. *)
}

exception Unrepairable of string
(** Some race admits no scope-valid finish placement. *)

(** Sequential detection backend: the ESP-bags detectors (the paper's
    algorithm, default), the vector-clock detector ({!Vclock.Seq},
    report-identical — the differential suite holds them record-equal),
    or a per-workload automatic pick ({!Vclock.Select.choose}).  The
    resolved choice lands in [report.metrics] as [detector.backend]
    (0 = espbags, 1 = vclock). *)
type backend = [ `Espbags | `Vclock | `Auto ]

val pp_backend : backend Fmt.t

(** One placement pass: the dynamic placement + location mapping for the
    races of a single detector run, without touching the program.
    Trace-file workflows (paper Appendix A) drive this directly.
    [guard] supplies DP budgets (default unlimited). *)
val place_for_tree :
  ?guard:Guard.t ->
  program:Mhj.Ast.program ->
  Espbags.Race.t list ->
  group_result list * Static_place.merged

(** Paper §6.1's incremental strategy: solve NS-LCA groups one finish at a
    time against a {e live} S-DPST — splice the finish node in (step d),
    drop the races it resolves, re-checked with Theorem 1 (step e), and
    regroup the remainder, whose NS-LCAs may have changed (step f).
    Mutates the tree. *)
val place_incremental :
  ?guard:Guard.t ->
  program:Mhj.Ast.program ->
  Sdpst.Node.tree ->
  Espbags.Race.t list ->
  group_result list * Static_place.merged

val default_max_iterations : int

(** Repair [prog]: iterate detection and placement until race-free.

    @param mode detector flavour (default {!Espbags.Detector.Mrw})
    @param backend which detector implementation executes the program
      (default [`Espbags]; [`Auto] resolves per workload)
    @param strategy [`Batch] (default) solves every NS-LCA group of a
      detection run at once; [`Incremental] is the paper's §6.1 live-tree
      loop.  Both converge; [`Batch] does less work on large race sets.
    @param max_iterations safety bound (default 10)
    @param fuel interpreter fuel per run
    @param budgets resource budgets (default {!Guard.unlimited}); on
      exhaustion the repair degrades gracefully and records how in the
      report's [degradations]
    @param static_prune run the static MHP pre-pass ({!Static.Prune})
      before each detection run and skip instrumenting accesses it proves
      sequential; with MRW the reported race set is unchanged
    @param static_verify after convergence, run the static race checker
      on the repaired program and record the verdict in [verified_static]
      (with unproven pairs in [static_residual])
    @param validate_par after convergence, re-run the repaired program
      under fuzzed parallel schedules and record the differential outcome
      in [validated_par] (see {!Par.Validate})
    @param shadow_chunk grow the detector's shadow tables in slab chunks
      of this many slots (default {!Tdrutil.Islab.default_chunk}); the
      reported races are unchanged (DESIGN.md §15)
    @param spill bound in-memory race records by draining overflow to
      this file in {!Espbags.Trace} format; reported races unchanged
    @raise Unrepairable if some race admits no scope-valid fix
    @raise Diag.Fail on typed pipeline failures *)
val repair :
  ?mode:Espbags.Detector.mode ->
  ?backend:backend ->
  ?strategy:[ `Batch | `Incremental ] ->
  ?max_iterations:int ->
  ?fuel:int ->
  ?budgets:Guard.budgets ->
  ?static_prune:bool ->
  ?static_verify:bool ->
  ?validate_par:Par.Validate.request ->
  ?shadow_chunk:int ->
  ?spill:string ->
  Mhj.Ast.program ->
  report

(** Total variant of {!repair}: every failure mode — malformed input,
    runtime faults of the analyzed program, fuel exhaustion, placement
    infeasibility, injected faults, internal invariant violations — comes
    back as a typed diagnostic instead of an exception. *)
val repair_checked :
  ?mode:Espbags.Detector.mode ->
  ?backend:backend ->
  ?strategy:[ `Batch | `Incremental ] ->
  ?max_iterations:int ->
  ?fuel:int ->
  ?budgets:Guard.budgets ->
  ?static_prune:bool ->
  ?static_verify:bool ->
  ?validate_par:Par.Validate.request ->
  ?shadow_chunk:int ->
  ?spill:string ->
  Mhj.Ast.program ->
  (report, Diag.t) result

(** All placements inserted across the report's iterations. *)
val total_placements : report -> Mhj.Transform.placement list

(** Multi-input repair (paper §2: "the tool is applied iteratively for
    different test inputs"). *)
type multi_report = {
  final : Mhj.Ast.program;  (** repaired for every processable input *)
  per_input : (string * report) list;  (** input label -> last repair run *)
  failures : (string * Diag.t) list;
      (** inputs whose repair failed or exhausted its budget; the
          remaining inputs are still processed *)
  all_converged : bool;  (** every input converged and none failed *)
  coverage : Coverage.t;  (** combined coverage of the executable inputs *)
}

(** Repair one program under several test inputs, each a labelled set of
    int-global overrides ({!Mhj.Transform.set_global_int}).  Placements
    demanded under any input are merged into the shared base program;
    rounds continue until every input's execution is race-free (or
    [max_rounds]).  An input that fails — malformed override, runtime
    fault, budget exhaustion, unrepairable race — lands in [failures]
    without stopping the other inputs.  The result includes the combined
    coverage of the input set — the paper's §9 test-suitability metric. *)
val repair_multi :
  ?mode:Espbags.Detector.mode ->
  ?backend:backend ->
  ?strategy:[ `Batch | `Incremental ] ->
  ?max_rounds:int ->
  ?fuel:int ->
  ?budgets:Guard.budgets ->
  inputs:(string * (string * int) list) list ->
  Mhj.Ast.program ->
  multi_report
