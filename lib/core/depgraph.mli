(** Dependence graphs over NS-LCA subtrees (paper §5.1).

    For each unique non-scope least common ancestor [L] of a set of data
    races, the subtree rooted at [L] is reduced to a DAG whose vertices are
    the non-scope children of [L] (left to right) and whose edges are the
    races lifted to the children containing their endpoints.  Runs of
    non-async children that cannot host a useful finish boundary are
    coalesced into super-vertices (see [build]). *)

type t = private {
  lca : Sdpst.Node.t;  (** the NS-LCA this graph was built from *)
  first : Sdpst.Node.t array;  (** leftmost S-DPST child of each vertex *)
  last : Sdpst.Node.t array;  (** rightmost S-DPST child of each vertex *)
  times : int array;  (** [t_i]: sequential composition of the run's spans *)
  drags : int array;
      (** delay until the next vertex may start: 0 for an async, the span
          for steps and finishes, the summarized drag for a collapsed
          scope (< span when it contains asyncs that outlive it) *)
  is_async : bool array;  (** singleton async vertex? *)
  edges : (int * int) list;  (** deduplicated, 0-based, left-to-right *)
  cum : int array array;  (** 2-D prefix sums for O(1) crossing tests *)
  n_raw : int;  (** non-scope children before coalescing *)
}

val n_vertices : t -> int

val n_edges : t -> int

(** Non-scope children of a node (paper Definition 3), left to right:
    descendants reached through scope nodes only. *)
val nonscope_children : Sdpst.Node.t -> Sdpst.Node.t list

(** [are_crossing g ~i ~k ~j] — the paper's [succ(i..k) ∩ {k+1..j} ≠ ∅]
    test: does some edge go from a vertex in [i..k] to one in [k+1..j]?
    O(1). *)
val are_crossing : t -> i:int -> k:int -> j:int -> bool

(** Build the dependence graph for [lca] from the races whose NS-LCA is
    [lca].  [span] supplies subtree completion times (usually
    {!Sdpst.Analysis.span_memo}).

    @param coalesce merge signature-identical and pure-sink runs of
      non-async children (default [true]; [false] gives the paper's exact
      one-vertex-per-child construction).
    @raise Invalid_argument if a race endpoint is not a descendant of a
      non-scope child of [lca]. *)
val build :
  ?coalesce:bool ->
  span:(Sdpst.Node.t -> int) ->
  Sdpst.Node.t ->
  Espbags.Race.t list ->
  t

val pp : t Fmt.t
