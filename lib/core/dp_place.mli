(** Dynamic finish placement (paper §5.2, Algorithms 1 and 3).

    Computes the set of finish blocks — vertex intervals of a dependence
    graph — that resolves every dependence edge while minimizing the
    block's completion time under the ideal parallel execution model,
    restricted to scope-valid placements. *)

type outcome = {
  cost : int;  (** optimal completion time of the whole vertex block *)
  finishes : (int * int) list;
      (** the FinishSet: 0-based inclusive vertex intervals to wrap,
          outermost first; pairwise nested or disjoint *)
}

exception Unsatisfiable of int * int
(** No scope-valid placement can resolve the dependences of this interval. *)

(** Solve the placement problem.

    @param valid scope-validity of wrapping vertices [i..j] in a finish
      (from {!Valid.make_checker}); defaults to always-valid, the pure
      published Algorithm 1.
    @raise Unsatisfiable when the dependences cannot be resolved. *)
val solve : ?valid:(i:int -> j:int -> bool) -> Depgraph.t -> outcome

(** Completion time of the vertex block under an explicit placement (the
    cost function the DP minimizes), evaluated directly.  Intervals must
    be pairwise nested or disjoint. *)
val eval_placement : Depgraph.t -> (int * int) list -> int

(** Does the placement resolve every dependence edge?  Edge [(x, y)] needs
    an interval [(s, e)] with [s <= x <= e < y]. *)
val resolves_all : Depgraph.t -> (int * int) list -> bool
