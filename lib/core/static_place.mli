(** Static finish placement (paper §6): combine the placements demanded by
    all dynamic NS-LCA instances into one consistent set of AST rewrites.

    Placements demanded at one static location by different dynamic
    contexts are merged by range union (a static finish must satisfy its
    most demanding instance); nested placements demanded together by a
    single context (an inner and outer finish of one FinishSet) are
    preserved.  Wraps of a lone block statement are canonicalized to the
    block's contents first, so demands produced at different climb levels
    meet in one block. *)

type merged = {
  placements : Mhj.Transform.placement list;  (** final, non-crossing *)
  n_demanded : int;  (** distinct placements demanded before merging *)
  n_merged : int;  (** union steps performed *)
}

(** Merge raw demands, each tagged with the dynamic context (NS-LCA id)
    that produced it. *)
val merge :
  scopes:Mhj.Scopecheck.t ->
  (int * Mhj.Transform.placement) list ->
  merged

(** Apply the merged placements to the program. *)
val apply : Mhj.Ast.program -> merged -> Mhj.Ast.program
