(** Human-readable repair reports: insertion points as source positions,
    per-iteration statistics, and — as the paper's §9 "context-sensitive
    finishes" extension — the number of dynamic calling contexts that
    demanded each static placement. *)

(** Source span of a placement, if the program carries locations. *)
val placement_span :
  Mhj.Scopecheck.t ->
  Mhj.Transform.placement ->
  (Mhj.Loc.t * Mhj.Loc.t) option

(** How many dynamic NS-LCA instances demanded each static placement of an
    iteration.  A placement demanded by only some contexts is a candidate
    for a context-sensitive (conditionally executed) finish. *)
val contexts_per_placement :
  Driver.iteration -> (Mhj.Transform.placement * int) list

(** Render the report for a repair of [original]. *)
val pp : (Mhj.Ast.program * Driver.report) Fmt.t

val to_string : Mhj.Ast.program -> Driver.report -> string

(** Render a placement as a source position ("line N" / "lines N-M"),
    falling back to block/statement indices when locations are missing. *)
val pp_placement_loc : Mhj.Scopecheck.t -> Mhj.Transform.placement Fmt.t
