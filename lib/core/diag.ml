(** Typed diagnostics for the repair pipeline (see diag.mli). *)

type severity = Error | Warning | Info

type stage = Parse | Typecheck | Interp | Detect | Place | Insert | Budget | Lint

type t = {
  severity : severity;
  stage : stage;
  loc : Mhj.Loc.t option;
  message : string;
}

exception Fail of t

let make ?(severity = Error) ?loc ~stage message =
  { severity; stage; loc; message }

let failf ?loc ~stage fmt =
  Fmt.kstr (fun message -> raise (Fail (make ?loc ~stage message))) fmt

let internal ~stage message =
  make ~stage ("internal error (please report): " ^ message)

let pp_severity ppf s =
  Fmt.string ppf
    (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

let pp_stage ppf s =
  Fmt.string ppf
    (match s with
    | Parse -> "parse"
    | Typecheck -> "typecheck"
    | Interp -> "interp"
    | Detect -> "detect"
    | Place -> "place"
    | Insert -> "insert"
    | Budget -> "budget"
    | Lint -> "lint")

let pp ppf d =
  match d.loc with
  | Some l when not (Mhj.Loc.is_dummy l) ->
      Fmt.pf ppf "%a[%a] at %a: %s" pp_severity d.severity pp_stage d.stage
        Mhj.Loc.pp l d.message
  | _ ->
      Fmt.pf ppf "%a[%a]: %s" pp_severity d.severity pp_stage d.stage
        d.message

let to_string d = Fmt.str "%a" pp d

let of_exn = function
  | Fail d -> Some d
  | Mhj.Lexer.Error (m, l) -> Some (make ~loc:l ~stage:Parse m)
  | Mhj.Parser.Error (m, l) -> Some (make ~loc:l ~stage:Parse m)
  | Mhj.Typecheck.Error (m, l) -> Some (make ~loc:l ~stage:Typecheck m)
  | Rt.Interp.Runtime_error (m, l) -> Some (make ~loc:l ~stage:Interp m)
  | Rt.Watchdog.Timeout ms ->
      Some
        (make ~stage:Budget
           (Fmt.str
              "wall-clock watchdog: job exceeded its %d ms timeout (raise \
               --timeout-ms, or check the program for non-termination)"
              ms))
  | Rt.Interp.Out_of_fuel ->
      Some
        (make ~stage:Budget
           "execution exceeded its fuel budget (raise --budget-fuel, or \
            check the program for non-termination)")
  | Dp_place.Unsatisfiable (i, j) ->
      Some
        (make ~stage:Place
           (Fmt.str
              "no scope-valid finish placement resolves the dependences of \
               vertices %d..%d"
              i j))
  | _ -> None

let is_input_error d =
  match d.stage with
  | Parse | Typecheck | Interp -> true
  | Detect | Place | Insert | Budget | Lint -> false

(* Adapt a static-analysis finding into the pipeline's diagnostic type.
   The rule name is folded into the message; the [lint] stage marks the
   origin. *)
let of_finding (f : Static.Finding.t) =
  let severity =
    match f.Static.Finding.severity with
    | Static.Finding.Warning -> Warning
    | Static.Finding.Info -> Info
  in
  make ~severity ~loc:f.Static.Finding.loc ~stage:Lint
    (Static.Finding.rule_name f.Static.Finding.rule ^ ": " ^ f.Static.Finding.msg)
