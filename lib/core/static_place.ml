(** Static finish placement (paper §6).

    The dynamic placement yields, per NS-LCA instance, a set of S-DPST
    insertions; {!Valid.insertion_for} already mapped each to a static
    program location (block id + statement range).  This pass combines the
    placements demanded by {e all} dynamic NS-LCA instances into one
    consistent set of AST rewrites.

    The subtlety is {e static aliasing}: many dynamic instances share one
    static program point (every recursive call of mergesort demands a
    finish in the same block), and the per-instance optima can differ —
    an instance whose second half is a base case is fixed optimally by
    wrapping only the first async, but inserting that static finish would
    serialize {e every} instance.  A static finish must satisfy the most
    demanding instance, so:

    - placements demanded at the same static location by {e different}
      dynamic contexts whose ranges overlap (nested or crossing) are
      merged into their range {e union} — at least as much synchronization
      as each demand, and still ending before every demanding race's sink
      (re-verified by the driver's next detection iteration);
    - nested placements demanded {e together by one context} (an inner and
      an outer finish from a single FinishSet) are intentional structure
      and are preserved. *)

type merged = {
  placements : Mhj.Transform.placement list;  (** final, non-crossing *)
  n_demanded : int;  (** distinct placements demanded before merging *)
  n_merged : int;  (** union steps performed *)
}

let overlapping (a : Mhj.Transform.placement) (b : Mhj.Transform.placement) =
  a.bid = b.bid && a.lo <= b.hi && b.lo <= a.hi
  && not (Mhj.Transform.equal_placement a b)

let union (a : Mhj.Transform.placement) (b : Mhj.Transform.placement) =
  { a with Mhj.Transform.lo = min a.lo b.lo; hi = max a.hi b.hi }

(* Wrapping exactly one statement that is itself a block is the same
   program as wrapping that block's whole contents; canonicalizing to the
   inner form lets demands produced at different climb levels (see
   {!Valid.insertion_for}) meet in one block and merge by union. *)
let rec canonicalize (scopes : Mhj.Scopecheck.t)
    (p : Mhj.Transform.placement) : Mhj.Transform.placement =
  if p.lo <> p.hi then p
  else
    match Hashtbl.find_opt scopes.Mhj.Scopecheck.blocks p.bid with
    | Some stmts when p.lo >= 0 && p.lo < Array.length stmts -> (
        match stmts.(p.lo).Mhj.Ast.s with
        | Mhj.Ast.Block b when b.stmts <> [] ->
            canonicalize scopes
              {
                Mhj.Transform.bid = b.bid;
                lo = 0;
                hi = List.length b.stmts - 1;
              }
        | _ -> p)
    | _ -> p

(** Merge raw placement demands into a consistent set.  Each demand is
    tagged with the dynamic context (NS-LCA id) that produced it. *)
let merge ~(scopes : Mhj.Scopecheck.t)
    (demands : (int * Mhj.Transform.placement) list) : merged =
  let demands =
    List.map (fun (ctx, p) -> (ctx, canonicalize scopes p)) demands
  in
  (* Pairs of distinct placements co-demanded by one context are protected
     from merging (they are deliberate nested structure). *)
  let protected_pairs = Hashtbl.create 16 in
  let by_ctx = Hashtbl.create 16 in
  List.iter
    (fun (ctx, p) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_ctx ctx) in
      Hashtbl.replace by_ctx ctx (p :: cur))
    demands;
  let key (p : Mhj.Transform.placement) = (p.bid, p.lo, p.hi) in
  Hashtbl.iter
    (fun _ctx ps ->
      List.iter
        (fun p ->
          List.iter
            (fun q ->
              if not (Mhj.Transform.equal_placement p q) then begin
                Hashtbl.replace protected_pairs (key p, key q) ();
                Hashtbl.replace protected_pairs (key q, key p) ()
              end)
            ps)
        ps)
    by_ctx;
  let protected_pair p q = Hashtbl.mem protected_pairs (key p, key q) in
  let dedup ps =
    List.fold_left
      (fun acc p ->
        if List.exists (Mhj.Transform.equal_placement p) acc then acc
        else p :: acc)
      [] ps
    |> List.rev
  in
  let initial = dedup (List.map snd demands) in
  let n_demanded = List.length initial in
  let n_merged = ref 0 in
  let rec fix ps =
    let ps = dedup ps in
    let crossing (a : Mhj.Transform.placement) (b : Mhj.Transform.placement) =
      overlapping a b
      && not ((a.lo <= b.lo && b.hi <= a.hi) || (b.lo <= a.lo && a.hi <= b.hi))
    in
    (* Crossing pairs must merge regardless of protection (finish blocks
       cannot cross); nested pairs merge only when no single context
       demanded both. *)
    let rec find_overlap = function
      | [] -> None
      | p :: rest -> (
          match
            List.find_opt
              (fun q ->
                overlapping p q
                && (crossing p q || not (protected_pair p q)))
              rest
          with
          | Some q -> Some (p, q)
          | None -> find_overlap rest)
    in
    match find_overlap ps with
    | None -> ps
    | Some (p, q) ->
        incr n_merged;
        let u = union p q in
        (* The union inherits the protections of its constituents so that
           an outer deliberate wrapper is not merged away next round. *)
        Hashtbl.iter
          (fun (k1, k2) () ->
            if k1 = key p || k1 = key q then
              Hashtbl.replace protected_pairs (key u, k2) ();
            if k2 = key p || k2 = key q then
              Hashtbl.replace protected_pairs (k1, key u) ())
          (Hashtbl.copy protected_pairs);
        let ps =
          u
          :: List.filter
               (fun r ->
                 not
                   (Mhj.Transform.equal_placement r p
                   || Mhj.Transform.equal_placement r q))
               ps
        in
        fix ps
  in
  let placements = fix initial in
  { placements; n_demanded; n_merged = !n_merged }

(** Apply merged placements to the program. *)
let apply (p : Mhj.Ast.program) (m : merged) : Mhj.Ast.program =
  Mhj.Transform.insert_finishes p m.placements
