(** Deterministic fault injection for the repair pipeline.

    Tests install a {e plan} — a set of faults — around a driver call;
    the driver consults the plan at its stage boundaries and fails exactly
    where the plan says.  This is how the robustness test-suite proves the
    driver never leaks an uncaught exception: every fault below maps to a
    typed {!Diag.t} at the boundary where it fires.

    The plan is a process-global (the test executables are sequential);
    {!with_faults} restores the previous plan on exit, including on
    exceptions. *)

type fault =
  | Interp_trap of int
      (** cap the interpreter's fuel at this many cost units, trapping
          execution deterministically at that point *)
  | Detector_abort  (** abort at the start of the detection stage *)
  | Dp_timeout
      (** every DP placement behaves as if its work budget were exhausted,
          forcing the degradation chain *)
  | Place_unsat
      (** every placement group behaves as if no scope-valid finish
          placement existed *)
  | Insert_fail  (** abort at the static-insertion boundary *)

exception Injected of fault * string
(** Raised by {!fire} when its fault is enabled.  {!Guard.capture}
    converts it into a {!Diag.t} at the owning stage. *)

(** Run [f] with [faults] enabled, restoring the previous plan after. *)
val with_faults : fault list -> (unit -> 'a) -> 'a

(** Is this exact fault in the active plan? *)
val enabled : fault -> bool

(** The fuel cap demanded by an active [Interp_trap], if any. *)
val fuel_cap : unit -> int option

(** Raise {!Injected} if [fault] is enabled; a no-op otherwise. *)
val fire : fault -> unit

(** The pipeline stage a fault belongs to, for diagnostic conversion. *)
val stage_of : fault -> Diag.stage

val pp_fault : fault Fmt.t
