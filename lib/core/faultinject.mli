(** Deterministic fault injection for the repair pipeline.

    Tests install a {e plan} — a set of faults — around a driver call;
    the driver consults the plan at its stage boundaries and fails exactly
    where the plan says.  This is how the robustness test-suite proves the
    driver never leaks an uncaught exception: every fault below maps to a
    typed {!Diag.t} at the boundary where it fires.

    The plan is {e domain-local} ([Domain.DLS]): each daemon worker
    domain installs its job's plan without affecting jobs running
    concurrently on other domains.  {!with_faults} restores the calling
    domain's previous plan on exit, including on exceptions. *)

type fault =
  | Interp_trap of int
      (** cap the interpreter's fuel at this many cost units, trapping
          execution deterministically at that point *)
  | Detector_abort  (** abort at the start of the detection stage *)
  | Dp_timeout
      (** every DP placement behaves as if its work budget were exhausted,
          forcing the degradation chain *)
  | Place_unsat
      (** every placement group behaves as if no scope-valid finish
          placement existed *)
  | Insert_fail  (** abort at the static-insertion boundary *)
  | Worker_crash
      (** daemon-level: the worker domain that picks the job up dies
          before executing it, exercising the supervisor's detect +
          respawn + re-enqueue path (no fire site in the pipeline
          itself) *)
  | Slow_stage of int
      (** daemon-level: stall the first pipeline stage for this many
          milliseconds (without failing it), exercising the per-job
          wall-clock watchdog *)

exception Injected of fault * string
(** Raised by {!fire} when its fault is enabled.  {!Guard.capture}
    converts it into a {!Diag.t} at the owning stage. *)

(** Run [f] with [faults] enabled, restoring the calling domain's
    previous plan after. *)
val with_faults : fault list -> (unit -> 'a) -> 'a

(** Is this exact fault in the calling domain's active plan? *)
val enabled : fault -> bool

(** The fuel cap demanded by an active [Interp_trap], if any. *)
val fuel_cap : unit -> int option

(** Total stall demanded by active [Slow_stage] faults, if any. *)
val slow_stage_ms : unit -> int option

(** Raise {!Injected} if [fault] is enabled; a no-op otherwise. *)
val fire : fault -> unit

(** Honour an active [Slow_stage]: sleep its duration in short chunks,
    calling {!Rt.Watchdog.check} between chunks so an armed watchdog
    can expire mid-stall.  A no-op without the fault. *)
val fire_slow : unit -> unit

(** The pipeline stage a fault belongs to, for diagnostic conversion. *)
val stage_of : fault -> Diag.stage

val pp_fault : fault Fmt.t
