(** Repair-strategy tournament.

    The paper's repair is greedy finish insertion ({!Driver.repair}).
    This module adds three alternative repair strategies and a
    tournament that runs every applicable one, verifies each candidate
    race-free through the normal detect loop, scores it on the
    critical-path simulator ({!Compgraph.Score}), and picks the
    minimum-CPL winner (ties broken toward finish insertion, the
    paper's repair):

    - {b finish} — the interval-DP finish insertion of {!Driver.repair};
    - {b isolated} — wrap the racing statement ranges in [isolated]
      sections (mutual exclusion; scored with serialization edges
      between the conflicting section instances);
    - {b elide} — demote the offending [async] statements to inline
      sequential execution (the async elision of §2, applied
      selectively);
    - {b chunk} — split a racy loop into [C]-iteration sub-loops with a
      finish at every chunk seam, where [C] is the minimum racing
      iteration distance, so every conflicting pair is separated by a
      join.

    Every candidate is re-verified by a fresh detection run under the
    chosen backend; [isolated]-protected pairs are discharged by
    {!Isolate.split} and turned into mutual-exclusion edges for
    scoring.  Per-strategy outcomes land in the [strategy.*] metric
    family. *)

let src = Logs.Src.create "tdrace.strategy" ~doc:"repair-strategy tournament"

module Log = (val Logs.src_log src : Logs.LOG)
module Score = Compgraph.Score

type kind = Finish | Isolated | Elide | Chunk

let kind_name = function
  | Finish -> "finish"
  | Isolated -> "isolated"
  | Elide -> "elide"
  | Chunk -> "chunk"

(* Tie-break rank: lower wins on equal CPL, so finish insertion — the
   paper's repair — prevails unless strictly beaten. *)
let kind_rank = function Finish -> 0 | Isolated -> 1 | Elide -> 2 | Chunk -> 3

let pp_kind ppf k = Fmt.string ppf (kind_name k)

type candidate = {
  kind : kind;
  program : Mhj.Ast.program option;
      (** the rewritten program; [None] when the strategy is
          inapplicable or failed to converge *)
  verified : bool;  (** re-detection under the backend came back clean *)
  score : Score.t option;  (** scored execution of the candidate *)
  rounds : int;  (** rewrite rounds used *)
  note : string;  (** why the strategy produced nothing (diagnostic) *)
}

type choice = [ `Finish | `Isolated | `Elide | `Chunk | `Tournament ]

let pp_choice ppf = function
  | `Finish -> Fmt.string ppf "finish"
  | `Isolated -> Fmt.string ppf "isolated"
  | `Elide -> Fmt.string ppf "elide"
  | `Chunk -> Fmt.string ppf "chunk"
  | `Tournament -> Fmt.string ppf "tournament"

let choice_of_string = function
  | "finish" -> Some `Finish
  | "isolated" -> Some `Isolated
  | "elide" -> Some `Elide
  | "chunk" -> Some `Chunk
  | "tournament" -> Some `Tournament
  | _ -> None

type outcome = {
  winner : candidate;
  program : Mhj.Ast.program;  (** the winner's race-free rewrite *)
  candidates : candidate list;  (** every strategy that was attempted *)
  finish_report : Driver.report option;
      (** the finish-insertion driver report, when that strategy ran *)
  metrics : (string * int) list;  (** the [strategy.*] metric family *)
}

(* ------------------------------------------------------------------ *)
(* Detection plumbing                                                  *)
(* ------------------------------------------------------------------ *)

(* One detection run under the resolved backend: all reported races
   plus the execution's S-DPST (for scoring) and its output (for the
   test-driven semantic check). *)
let detect ~(backend : [ `Espbags | `Vclock ]) ?fuel ~mode prog :
    Espbags.Race.t list * Sdpst.Node.tree * string =
  match backend with
  | `Espbags ->
      let det, res = Espbags.Detector.detect ?fuel mode prog in
      (Espbags.Detector.races det, res.Rt.Interp.tree, res.Rt.Interp.output)
  | `Vclock ->
      let det, res = Vclock.Seq.detect ?fuel mode prog in
      (Vclock.Seq.races det, res.Rt.Interp.tree, res.Rt.Interp.output)

(* Serialization edges for scoring: each discharged race pins its two
   step instances into a depth-first mutual-exclusion order. *)
let serialize_pairs (discharged : Espbags.Race.t list) : (int * int) list =
  List.map
    (fun (r : Espbags.Race.t) ->
      (r.src.Sdpst.Node.id, r.sink.Sdpst.Node.id))
    discharged

(** Does a fresh detection run under [backend] come back race-free
    (after mutual-exclusion discharge of [isolated] pairs)? *)
let race_free ?(mode = Espbags.Detector.Mrw) ~backend ?fuel prog : bool =
  let races, _, _ = detect ~backend ?fuel ~mode prog in
  Isolate.suppress prog races = []

(* ------------------------------------------------------------------ *)
(* Strategy: finish insertion (the paper's repair)                     *)
(* ------------------------------------------------------------------ *)

let finish_candidate ~mode ~backend ~expected ?fuel ?procs ?max_iterations
    prog : candidate * Driver.report option =
  match
    Driver.repair ~mode
      ~backend:(backend :> Driver.backend)
      ?fuel ?max_iterations prog
  with
  | report ->
      let races, tree, output =
        detect ~backend ?fuel ~mode report.Driver.program
      in
      let surviving, discharged = Isolate.split report.program races in
      let score =
        Score.of_tree ?procs ~serialize:(serialize_pairs discharged) tree
      in
      ( {
          kind = Finish;
          program = Some report.program;
          verified = report.converged && surviving = [] && output = expected;
          score = Some score;
          rounds = List.length report.iterations;
          note = (if output = expected then "" else "output differs");
        },
        Some report )
  | exception Driver.Unrepairable msg ->
      ( {
          kind = Finish;
          program = None;
          verified = false;
          score = None;
          rounds = 0;
          note = msg;
        },
        None )

(* ------------------------------------------------------------------ *)
(* Strategy: isolated sections                                         *)
(* ------------------------------------------------------------------ *)

(* Wrap each surviving race's uncovered endpoint ranges.  An endpoint's
   range is its step's statement span [origin_idx .. last_idx] in
   [origin_bid]; ranges in one block are unioned when they overlap or
   touch.  Fails when a range is not serializable (task constructs or
   user calls inside — mirrors the type checker's isolated rule). *)
let isolated_placements (p : Mhj.Ast.program) (races : Espbags.Race.t list) :
    (Mhj.Transform.placement list, string) result =
  let sc = Mhj.Scopecheck.build p in
  let iso = Isolate.bids p in
  let ranges : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let add_endpoint (n : Sdpst.Node.t) =
    let bid = n.Sdpst.Node.origin_bid in
    if not (Isolate.IntSet.mem bid iso) then
      match Hashtbl.find_opt sc.Mhj.Scopecheck.blocks bid with
      | None -> fail "racing step in unknown block"
      | Some stmts ->
          let lo = n.origin_idx in
          let hi = max n.origin_idx n.last_idx in
          if lo < 0 || hi >= Array.length stmts then
            fail "racing step range out of block"
          else begin
            (* A declaration inside the range referenced by a later
               sibling would be orphaned by the nesting; extend the
               section to the end of the block in that case. *)
            let hi =
              if Mhj.Scopecheck.wrap_ok sc ~bid ~lo ~hi then hi
              else Array.length stmts - 1
            in
            let ok = ref (Mhj.Scopecheck.wrap_ok sc ~bid ~lo ~hi) in
            for i = lo to hi do
              if not (Isolate.wrappable_stmt stmts.(i)) then ok := false
            done;
            if not !ok then
              fail "racing statements are not serializable in isolated"
            else begin
              let r =
                match Hashtbl.find_opt ranges bid with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add ranges bid r;
                    r
              in
              r := (lo, hi) :: !r
            end
          end
  in
  List.iter
    (fun (r : Espbags.Race.t) ->
      add_endpoint r.src;
      add_endpoint r.sink)
    races;
  match !err with
  | Some msg -> Error msg
  | None ->
      let pls =
        Hashtbl.fold
          (fun bid r acc ->
            let sorted = List.sort compare !r in
            let merged =
              List.fold_left
                (fun acc (lo, hi) ->
                  match acc with
                  | (l, h) :: rest when lo <= h + 1 ->
                      (l, max h hi) :: rest
                  | _ -> (lo, hi) :: acc)
                [] sorted
            in
            List.fold_left
              (fun acc (lo, hi) -> { Mhj.Transform.bid; lo; hi } :: acc)
              acc merged)
          ranges []
      in
      if pls = [] then Error "no uncovered racing endpoint to wrap"
      else Ok pls

let isolated_max_rounds = 5

(* One refinement round shared by the iterative strategies: detect,
   discharge isolated pairs, and when clean check the candidate still
   prints the test's expected output. *)
let round_result ~kind ~backend ?fuel ?procs ~mode ~expected p round :
    [ `Verified of candidate | `Fail of string | `Races of Espbags.Race.t list ]
    =
  let races, tree, output = detect ~backend ?fuel ~mode p in
  let surviving, discharged = Isolate.split p races in
  if surviving = [] then
    if output = expected then
      `Verified
        {
          kind;
          program = Some p;
          verified = true;
          score =
            Some
              (Score.of_tree ?procs ~serialize:(serialize_pairs discharged)
                 tree);
          rounds = round;
          note = "";
        }
    else `Fail "output differs from the test's expected output"
  else `Races surviving

let isolated_candidate ~mode ~backend ~expected ?fuel ?procs prog : candidate =
  let fail round note =
    { kind = Isolated; program = None; verified = false; score = None;
      rounds = round; note }
  in
  let rec go p round =
    match
      round_result ~kind:Isolated ~backend ?fuel ?procs ~mode ~expected p
        round
    with
    | `Verified c -> c
    | `Fail note -> fail round note
    | `Races surviving -> (
        if round >= isolated_max_rounds then
          fail round "round budget exhausted"
        else
          match isolated_placements p surviving with
          | Error note -> fail round note
          | Ok pls -> go (Mhj.Transform.insert_isolated p pls) (round + 1))
  in
  go prog 0

(* ------------------------------------------------------------------ *)
(* Strategy: async elision                                             *)
(* ------------------------------------------------------------------ *)

(* Nearest enclosing async statement of an S-DPST node. *)
let rec async_sid (n : Sdpst.Node.t) : int option =
  match n.Sdpst.Node.kind with
  | Sdpst.Node.Async -> Some n.sid
  | _ -> Option.bind n.parent async_sid

let elide_candidate ~mode ~backend ~expected ?fuel ?procs prog : candidate =
  let fail round note =
    { kind = Elide; program = None; verified = false; score = None;
      rounds = round; note }
  in
  let max_rounds = Mhj.Ast.count_asyncs prog + 1 in
  let rec go p round =
    match
      round_result ~kind:Elide ~backend ?fuel ?procs ~mode ~expected p round
    with
    | `Verified c -> c
    | `Fail note -> fail round note
    | `Races surviving ->
        if round >= max_rounds then fail round "round budget exhausted"
        else begin
          let sids =
            List.fold_left
              (fun acc (r : Espbags.Race.t) ->
                let add acc n =
                  match async_sid n with
                  | Some sid -> Isolate.IntSet.add sid acc
                  | None -> acc
                in
                add (add acc r.src) r.sink)
              Isolate.IntSet.empty surviving
          in
          if Isolate.IntSet.is_empty sids then
            fail round "racing tasks have no async ancestor"
          else
            go
              (Mhj.Transform.elide_asyncs p (Isolate.IntSet.elements sids))
              (round + 1)
        end
  in
  go prog 0

(* ------------------------------------------------------------------ *)
(* Strategy: loop chunking                                             *)
(* ------------------------------------------------------------------ *)

type loop_info = { for_sid : int; chunkable : bool }

(* Loop-body statement id -> enclosing for statement, for mapping
   S-DPST iteration scopes back to their loop. *)
let loop_table (p : Mhj.Ast.program) : (int, loop_info) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  Mhj.Ast.iter_stmts
    (fun st ->
      match st.s with
      | Mhj.Ast.For (_, _, hi, by, body) ->
          let lit_step =
            match by with
            | None -> true
            | Some { e = Mhj.Ast.Int s; _ } -> s <> 0
            | Some _ -> false
          in
          Hashtbl.replace tbl body.sid
            {
              for_sid = st.sid;
              chunkable = lit_step && Mhj.Transform.duplicable hi;
            }
      | _ -> ())
    p;
  tbl

let path_to (n : Sdpst.Node.t) : Sdpst.Node.t list =
  let rec go n acc =
    match n.Sdpst.Node.parent with
    | None -> n :: acc
    | Some p -> go p (n :: acc)
  in
  go n []

(* If the race is loop-carried — the two endpoints' tree paths diverge
   at two iteration scopes of one chunkable for loop — return the loop's
   statement id and the iteration ordinal distance. *)
let race_loop (tbl : (int, loop_info) Hashtbl.t) (a : Sdpst.Node.t)
    (b : Sdpst.Node.t) : (int * int) option =
  let rec go pa pb =
    match (pa, pb) with
    | x :: (xa :: _ as ra), y :: (yb :: _ as rb)
      when x.Sdpst.Node.id = y.Sdpst.Node.id ->
        if xa.Sdpst.Node.id = yb.Sdpst.Node.id then go ra rb
        else if
          xa.Sdpst.Node.sid = yb.Sdpst.Node.sid
          && Sdpst.Node.is_scope xa && Sdpst.Node.is_scope yb
        then
          match Hashtbl.find_opt tbl xa.Sdpst.Node.sid with
          | Some info when info.chunkable ->
              (* iteration ordinal = position among same-loop siblings *)
              let ord (c : Sdpst.Node.t) =
                let k = ref 0 and stop = ref false in
                Tdrutil.Vec.iter
                  (fun (ch : Sdpst.Node.t) ->
                    if not !stop then
                      if ch.Sdpst.Node.id = c.Sdpst.Node.id then stop := true
                      else if ch.Sdpst.Node.sid = c.Sdpst.Node.sid then
                        incr k)
                  x.Sdpst.Node.children;
                !k
              in
              Some (info.for_sid, abs (ord xa - ord yb))
          | _ -> None
        else None
    | _ -> None
  in
  go (path_to a) (path_to b)

let chunk_max_rounds = 4

let chunk_candidate ~mode ~backend ~expected ?fuel ?procs prog : candidate =
  let fail round note =
    { kind = Chunk; program = None; verified = false; score = None;
      rounds = round; note }
  in
  let rec go p round =
    match
      round_result ~kind:Chunk ~backend ?fuel ?procs ~mode ~expected p round
    with
    | `Verified c -> c
    | `Fail note -> fail round note
    | `Races surviving ->
      if round >= chunk_max_rounds then fail round "round budget exhausted"
      else begin
      let tbl = loop_table p in
      (* minimum racing iteration distance per loop *)
      let dmin : (int, int) Hashtbl.t = Hashtbl.create 4 in
      let err = ref None in
      List.iter
        (fun (r : Espbags.Race.t) ->
          if !err = None then
            match race_loop tbl r.src r.sink with
            | Some (for_sid, d) when d >= 1 ->
                let cur =
                  Option.value ~default:max_int
                    (Hashtbl.find_opt dmin for_sid)
                in
                Hashtbl.replace dmin for_sid (min cur d)
            | _ -> err := Some "race is not carried by a chunkable loop")
        surviving;
      match !err with
      | Some note -> fail round note
      | None ->
          let p' =
            Hashtbl.fold
              (fun for_sid d p -> Mhj.Transform.chunk_loop p ~sid:for_sid ~chunk:d)
              dmin p
          in
          go p' (round + 1)
    end
  in
  go prog 0

(* ------------------------------------------------------------------ *)
(* Tournament                                                          *)
(* ------------------------------------------------------------------ *)

let metrics_of (candidates : candidate list) (winner : candidate) :
    (string * int) list =
  ("strategy.winner", kind_rank winner.kind)
  :: List.concat_map
       (fun c ->
         let k s = "strategy." ^ kind_name c.kind ^ "." ^ s in
         [
           (k "produced", if c.program <> None then 1 else 0);
           (k "verified", if c.verified then 1 else 0);
           (k "rounds", c.rounds);
         ]
         @
         match c.score with
         | Some s ->
             [
               (k "cpl", s.Score.cpl);
               (k "work", s.Score.work);
               (k "makespan", s.Score.makespan);
             ]
         | None -> [ (k "cpl", 0); (k "work", 0); (k "makespan", 0) ])
       candidates

let resolve (backend : Driver.backend) prog : [ `Espbags | `Vclock ] =
  match backend with
  | (`Espbags | `Vclock) as b -> b
  | `Auto -> fst (Vclock.Select.choose prog)

(* Shield the tournament from one strategy's internal failure (e.g. a
   rewrite producing a program the interpreter rejects): the candidate
   is marked unproduced, the others still compete. *)
let guarded kind (f : unit -> candidate) : candidate =
  try f ()
  with
  | Driver.Unrepairable msg ->
      { kind; program = None; verified = false; score = None; rounds = 0;
        note = msg }
  | exn ->
      { kind; program = None; verified = false; score = None; rounds = 0;
        note = Printexc.to_string exn }

(** Run the chosen repair strategy (or the full tournament) on a racy
    program.  The winner is the minimum-CPL verified-race-free
    candidate; ties break toward finish insertion.
    @raise Driver.Unrepairable
      if no strategy produces a verified race-free candidate. *)
let run ?(mode = Espbags.Detector.Mrw) ?(backend = `Auto) ?fuel ?procs
    ?max_iterations (choice : choice) (prog : Mhj.Ast.program) : outcome =
  let backend = resolve backend prog in
  (* The test's expected output: the racy program's canonical depth-first
     execution (which realizes the serial-projection order).  Every
     candidate must reproduce it — race freedom alone is not a repair. *)
  let expected = (Rt.Interp.run prog).Rt.Interp.output in
  let fin () =
    finish_candidate ~mode ~backend ~expected ?fuel ?procs ?max_iterations
      prog
  in
  let single kind gen =
    let cand, report =
      match (kind : kind) with
      | Finish -> fin ()
      | _ -> (guarded kind gen, None)
    in
    match cand with
    | { verified = true; program = Some p; _ } ->
        {
          winner = cand;
          program = p;
          candidates = [ cand ];
          finish_report = report;
          metrics = metrics_of [ cand ] cand;
        }
    | _ ->
        raise
          (Driver.Unrepairable
             (Fmt.str "strategy %a produced no race-free repair%s" pp_kind
                kind
                (if cand.note = "" then "" else ": " ^ cand.note)))
  in
  match choice with
  | `Finish -> single Finish (fun () -> fst (fin ()))
  | `Isolated ->
      single Isolated (fun () ->
          isolated_candidate ~mode ~backend ~expected ?fuel ?procs prog)
  | `Elide ->
      single Elide (fun () -> elide_candidate ~mode ~backend ~expected ?fuel ?procs prog)
  | `Chunk ->
      single Chunk (fun () -> chunk_candidate ~mode ~backend ~expected ?fuel ?procs prog)
  | `Tournament ->
      let fin_cand, report =
        try fin ()
        with exn ->
          ( { kind = Finish; program = None; verified = false; score = None;
              rounds = 0; note = Printexc.to_string exn },
            None )
      in
      let candidates =
        [
          fin_cand;
          guarded Isolated (fun () ->
              isolated_candidate ~mode ~backend ~expected ?fuel ?procs prog);
          guarded Elide (fun () ->
              elide_candidate ~mode ~backend ~expected ?fuel ?procs prog);
          guarded Chunk (fun () ->
              chunk_candidate ~mode ~backend ~expected ?fuel ?procs prog);
        ]
      in
      let viable =
        List.filter
          (fun c -> c.verified && c.score <> None && c.program <> None)
          candidates
      in
      (match viable with
      | [] ->
          raise
            (Driver.Unrepairable
               "tournament: no strategy produced a race-free candidate")
      | first :: rest ->
          let key c =
            match c.score with
            | Some s -> (s.Score.cpl, kind_rank c.kind)
            | None -> (max_int, kind_rank c.kind)
          in
          let winner =
            List.fold_left
              (fun acc c -> if key c < key acc then c else acc)
              first rest
          in
          Log.info (fun m ->
              m "tournament winner: %a (%a)" pp_kind winner.kind
                (Fmt.option Score.pp) winner.score);
          {
            winner;
            program = Option.get winner.program;
            candidates;
            finish_report = report;
            metrics = metrics_of candidates winner;
          })
