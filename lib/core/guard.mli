(** Resource budgets and graceful degradation for the repair pipeline.

    The two blowups the paper itself flags (DESIGN.md §4) — S-DPST memory
    on long executions and the O(n³·d) placement DP on wide dependence
    graphs — are bounded here, each with a principled degradation path
    instead of an abort:

    - {b S-DPST node budget}: when a detection run's tree exceeds the
      budget, race-free regions are collapsed with
      {!Sdpst.Analysis.prune} (placement-preserving by construction) and
      the repair continues on the pruned tree.
    - {b DP work budget}: placement effort per repair call, measured in
      DP cell updates (~n³ per group).  Within the budget the driver
      walks the fidelity chain {e full (uncoalesced) DP → coalesced DP →
      per-edge interval covers}; the interval-cover tier is recorded as a
      degradation so callers can distinguish optimal from best-effort
      repairs.
    - {b fuel budget}: a cap on interpreter cost units per run, folded
      into {!Rt.Interp.run}'s fuel.

    Every degradation that fired is recorded on the guard and surfaced in
    the repair report and the CLI exit code ({!Exit_code.degraded}). *)

type budgets = {
  fuel : int option;  (** interpreter cost units per execution *)
  sdpst_nodes : int option;  (** prune trigger: max S-DPST nodes *)
  dp_work : int option;  (** total DP cell updates per repair call *)
}

(** No limits: today's exact behavior, no degradation ever fires. *)
val unlimited : budgets

type degradation =
  | Sdpst_pruned of { nodes_before : int; nodes_removed : int }
      (** the S-DPST exceeded its node budget and race-free regions were
          collapsed before placement *)
  | Dp_interval_cover of { lca_id : int }
      (** the DP budget could not afford this group's DP; its edges were
          covered by minimal per-edge intervals instead *)
  | Dp_unsat_fallback of { lca_id : int }
      (** the DP was unsatisfiable and per-edge covers were used *)
  | Validate_par_skipped of { ran : int; requested : int }
      (** [--validate-par]'s wall-clock budget ran out before all
          requested fuzzed schedules executed *)
  | Job_timeout of { ms : int }
      (** the per-job wall-clock watchdog expired: the job was killed
          mid-pipeline and its result is a best-effort partial ([tdrepair
          serve] jobs and [--timeout-ms] one-shot runs) *)

val pp_degradation : degradation Fmt.t

(** Mutable per-repair-call tracker: budgets plus spent work plus the
    degradations that fired, in order. *)
type t

val make : budgets -> t

val budgets : t -> budgets

val note : t -> degradation -> unit

val degradations : t -> degradation list

(** [dp_affordable t w] — does charging [w] more DP work units stay within
    the budget?  Always true without a [dp_work] budget. *)
val dp_affordable : t -> int -> bool

val dp_charge : t -> int -> unit

(** Effective interpreter fuel: the minimum of the explicit [?fuel]
    argument, the guard's fuel budget, and any active
    {!Faultinject.Interp_trap} cap. *)
val effective_fuel : t -> int option -> int option

(** [at_stage stage f] runs [f], converting any escaping exception that is
    neither an already-typed diagnostic ({!Diag.of_exn}), an injected
    fault, nor accepted by [passthrough] into a located internal
    {!Diag.Fail} attributed to [stage].  This is the stage boundary the
    raw [Invalid_argument]/[Failure] sites of the lower layers are caught
    at. *)
val at_stage :
  ?passthrough:(exn -> bool) -> Diag.stage -> (unit -> 'a) -> 'a

(** [capture ?classify f] — total evaluation: every exception becomes a
    diagnostic.  [classify] runs first (for caller-private exceptions such
    as [Driver.Unrepairable]), then {!Diag.of_exn} and injected-fault
    conversion, then a catch-all internal diagnostic. *)
val capture :
  ?classify:(exn -> Diag.t option) -> (unit -> 'a) -> ('a, Diag.t) result
