(** The test-driven repair driver (paper Figure 6 and §6.1).

    One iteration: execute the program depth-first under an ESP-bags
    detector; group the reported races by NS-LCA; per group, reduce the
    subtree to a dependence graph and run the dynamic-programming placement
    (Algorithm 1) under the scope-validity predicate; map the chosen
    dynamic finishes to static program locations; merge and insert them.
    Iterate until a detection run reports no races (with SRW, at least one
    extra confirmation run is always needed; with MRW, one repair iteration
    suffices unless placements interact — paper §7.3).

    Robustness: every stage runs inside {!Guard.at_stage}, so raw
    [Invalid_argument]/[Failure] escapes become typed {!Diag.t}
    diagnostics; resource budgets ({!Guard.budgets}) bound the interpreter,
    the S-DPST and the placement DP, each with a graceful degradation path
    recorded in the report; {!Faultinject} hooks let the test-suite fail
    any stage deterministically. *)

let src = Logs.Src.create "tdrace.driver" ~doc:"test-driven repair driver"

module Log = (val Logs.src_log src : Logs.LOG)

type group_result = {
  lca_id : int;  (** S-DPST node id of the NS-LCA *)
  n_vertices : int;
  n_edges : int;
  dp_cost : int;  (** optimal block completion time found by the DP *)
  fell_back : bool;
      (** the DP was bypassed (unsatisfiable or over budget) and per-edge
          minimal covers were used *)
  insertions : Valid.insertion list;
}

type iteration = {
  n_races : int;  (** raw race reports this run *)
  n_race_pairs : int;  (** distinct (src step, sink step) pairs *)
  n_groups : int;  (** distinct NS-LCAs *)
  groups : group_result list;
  merged : Static_place.merged;
  detect_time : float;  (** seconds spent executing + detecting *)
  place_time : float;  (** seconds spent in placement (dynamic + static) *)
  sdpst_nodes : int;
  n_accesses : int;  (** accesses the detector checked this run *)
  n_skipped : int;  (** accesses skipped by the static prune pre-pass *)
}

type report = {
  program : Mhj.Ast.program;  (** the repaired program *)
  mode : Espbags.Detector.mode;
  iterations : iteration list;
  converged : bool;  (** final detection run found no races *)
  final_races : int;  (** races remaining (0 when converged) *)
  degradations : Guard.degradation list;
      (** budget degradations that fired, in order; empty means the repair
          ran at full fidelity *)
  verified_static : bool option;
      (** [--static-verify] verdict on the converged program: [Some true]
          means race-free for every input, not just the test input;
          [Some false] means unproven MHP pairs remain (see
          [static_residual]); [None] means verification was not requested
          or the repair did not converge *)
  static_residual : Static.Finding.t list;
      (** the unproven pairs behind [verified_static = Some false] *)
  validated_par : Par.Validate.t option;
      (** [--validate-par] outcome on the converged program: the repaired
          program re-run under fuzzed parallel schedules and compared
          against the sequential semantics ([None] when not requested or
          not converged) *)
  metrics : (string * int) list;
      (** sorted snapshot of the run's {!Obs.Metrics} registry: detector,
          pruner, engine and driver counters (the full key schema is
          always present, zeros for subsystems that did not run) *)
}

(* The full metrics key schema, pinned at 0 up front so every report and
   [--metrics] dump carries the same keys regardless of which subsystems
   ran.  "detector."/"engine."/"driver." keys are counters (cumulative
   across iterations); "prune." keys are gauges (latest pre-pass wins). *)
let declare_metrics m =
  List.iter (Obs.Metrics.declare m)
    [
      "detector.accesses";
      "detector.locations";
      "detector.races";
      "detector.skipped";
      "detector.uf_finds";
      "detector.uf_unions";
      "detector.scan_entries";
      "detector.backend";
      "detector.tasks";
      "detector.clock_merges";
      "detector.shadow_slabs";
      "detector.shadow_words";
      "detector.gc_retired";
      "detector.clocks_freed";
      "detector.spilled_races";
      "detector.peak_rss_kb";
      "prune.stmts";
      "prune.kept";
      "prune.discharged";
      "prune.conflicts";
      "engine.runs";
      "engine.tasks";
      "engine.fuel_batches";
      "engine.inlined";
      "engine.pooled";
      "engine.yields";
      "engine.steals";
      "engine.deque_grows";
      "driver.iterations";
      "driver.races";
      "driver.race_pairs";
      "driver.groups";
      "driver.finishes_inserted";
      "driver.degradations";
    ]

exception Unrepairable of string

(** Which sequential detection backend executes the program: the
    ESP-bags detectors (the paper's algorithm, the default), the
    vector-clock detector ({!Vclock.Seq}, report-identical), or an
    automatic per-workload pick ({!Vclock.Select.choose}).  The resolved
    choice is recorded in [report.metrics] as [detector.backend]
    (0 = espbags, 1 = vclock). *)
type backend = [ `Espbags | `Vclock | `Auto ]

let pp_backend ppf = function
  | `Espbags -> Fmt.string ppf "espbags"
  | `Vclock -> Fmt.string ppf "vclock"
  | `Auto -> Fmt.string ppf "auto"

(* Resolve [`Auto] against the program's task shape; returns the pick and
   the human-readable reason (empty for explicit picks). *)
let resolve_backend backend prog : [ `Espbags | `Vclock ] * string =
  match backend with
  | (`Espbags | `Vclock) as b -> (b, "")
  | `Auto ->
      let choice, reason = Vclock.Select.choose prog in
      Log.info (fun m ->
          m "backend auto-selection: %a (%s)" pp_backend
            (choice :> backend)
            reason);
      (choice, reason)

(* ------------------------------------------------------------------ *)
(* Single-iteration placement                                          *)
(* ------------------------------------------------------------------ *)

(* Group races by the id of their NS-LCA, in ascending (depth-first) order. *)
let group_races (races : Espbags.Race.t list) :
    (Sdpst.Node.t * Espbags.Race.t list) list =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (r : Espbags.Race.t) ->
      let lca = Sdpst.Lca.ns_lca r.src r.sink in
      match Hashtbl.find_opt tbl lca.Sdpst.Node.id with
      | Some (node, races) ->
          Hashtbl.replace tbl lca.Sdpst.Node.id (node, r :: races)
      | None ->
          Hashtbl.replace tbl lca.Sdpst.Node.id (lca, [ r ]);
          order := lca.Sdpst.Node.id :: !order)
    races;
  List.rev_map
    (fun id ->
      let node, races = Hashtbl.find tbl id in
      (node, List.rev races))
    !order
  |> List.sort (fun (a, _) (b, _) ->
         Int.compare a.Sdpst.Node.id b.Sdpst.Node.id)

(* Fallback when the DP cannot satisfy all edges with one optimal plan:
   cover each edge by its smallest scope-valid interval. *)
let per_edge_fallback (g : Depgraph.t)
    (insertion : i:int -> j:int -> Valid.insertion option) :
    (int * int) list option =
  let cover (x, y) =
    let found = ref None in
    (try
       for width = 0 to y - 1 do
         for s = max 0 (x - width) to x do
           let e = s + width in
           if e >= x && e < y && !found = None then
             match insertion ~i:s ~j:e with
             | Some _ -> found := Some (s, e)
             | None -> ()
         done;
         if !found <> None then raise Exit
       done
     with Exit -> ());
    !found
  in
  let rec all = function
    | [] -> Some []
    | e :: rest -> (
        match (cover e, all rest) with
        | Some iv, Some ivs -> Some (iv :: ivs)
        | _ -> None)
  in
  all g.edges

(* DP work estimate for an n-vertex dependence graph: the interval DP does
   O(n^3) cell updates.  Saturating, so budgets compare safely. *)
let dp_work_of n = if n >= 100_000 then max_int / 2 else n * n * n

let no_placement lca =
  Unrepairable
    (Fmt.str
       "no scope-valid finish placement can separate the races at NS-LCA %a"
       Sdpst.Node.pp lca)

(* Solve one NS-LCA group.  Fidelity chain, highest affordable tier first
   (DESIGN.md "Robustness & failure modes"):
   - with no DP budget: the coalesced DP, exactly as always;
   - with a budget: the exact uncoalesced DP when its ~n_raw^3 work fits,
     else the coalesced DP when ~n^3 fits, else per-edge minimal interval
     covers (recorded as a degradation);
   - a DP that proves Unsatisfiable falls back to per-edge covers at any
     tier (also recorded). *)
let solve_group ~guard ~wrap_ok ~span (lca : Sdpst.Node.t)
    (group : Espbags.Race.t list) : group_result =
  if Faultinject.enabled Faultinject.Place_unsat then
    raise
      (Unrepairable
         (Fmt.str "injected fault: unsatisfiable placement at NS-LCA %a"
            Sdpst.Node.pp lca));
  let g =
    Obs.Trace.with_span "depgraph" (fun () -> Depgraph.build ~span lca group)
  in
  let valid, insertion = Valid.make_checker ~wrap_ok g in
  let cover_with g' insertion' =
    match per_edge_fallback g' insertion' with
    | Some ivs -> (g', insertion', ivs, -1, true)
    | None -> raise (no_placement lca)
  in
  let solve_on g' valid' insertion' =
    match Dp_place.solve ~valid:valid' g' with
    | { cost; finishes } -> (g', insertion', finishes, cost, false)
    | exception Dp_place.Unsatisfiable _ ->
        Log.warn (fun m ->
            m "DP unsatisfiable at NS-LCA %a; falling back to per-edge covers"
              Sdpst.Node.pp lca);
        Guard.note guard
          (Guard.Dp_unsat_fallback { lca_id = lca.Sdpst.Node.id });
        cover_with g' insertion'
  in
  let n = Depgraph.n_vertices g in
  let g_used, insertion_used, finishes, dp_cost, fell_back =
    Obs.Trace.with_span "dp-place"
      ~args:[ ("lca", lca.Sdpst.Node.id); ("vertices", n) ]
    @@ fun () ->
    if
      Faultinject.enabled Faultinject.Dp_timeout
      || not (Guard.dp_affordable guard (dp_work_of n))
    then begin
      Log.warn (fun m ->
          m "DP work budget exhausted at NS-LCA %a; using per-edge covers"
            Sdpst.Node.pp lca);
      Guard.note guard
        (Guard.Dp_interval_cover { lca_id = lca.Sdpst.Node.id });
      cover_with g insertion
    end
    else begin
      let budgeted = (Guard.budgets guard).Guard.dp_work <> None in
      let full_work = dp_work_of g.Depgraph.n_raw in
      if
        budgeted && g.Depgraph.n_raw > n
        && Guard.dp_affordable guard full_work
      then begin
        (* A budget is set and generous enough for the paper's exact
           uncoalesced DP on this group: buy the extra fidelity. *)
        Guard.dp_charge guard full_work;
        let g_full = Depgraph.build ~coalesce:false ~span lca group in
        let valid_full, insertion_full = Valid.make_checker ~wrap_ok g_full in
        solve_on g_full valid_full insertion_full
      end
      else begin
        Guard.dp_charge guard (dp_work_of n);
        solve_on g valid insertion
      end
    end
  in
  let insertions =
    List.map
      (fun (s, e) ->
        match insertion_used ~i:s ~j:e with
        | Some ins -> ins
        | None ->
            (* solve only returns intervals it validated *)
            assert false)
      finishes
  in
  {
    lca_id = lca.Sdpst.Node.id;
    n_vertices = Depgraph.n_vertices g_used;
    n_edges = Depgraph.n_edges g_used;
    dp_cost;
    fell_back;
    insertions;
  }

(** Compute the placements demanded by [races] over the S-DPST
    (one detector run), without touching the program.  This is the
    "Dynamic Finish Placement" + location-mapping half of the pipeline;
    trace-file workflows drive it directly. *)
let place_for_tree ?(guard = Guard.make Guard.unlimited)
    ~(program : Mhj.Ast.program) (races : Espbags.Race.t list) :
    group_result list * Static_place.merged =
  let races = Espbags.Race.dedupe_by_steps races in
  let span, _drag = Sdpst.Analysis.span_memo () in
  let scopes =
    Obs.Trace.with_span "scopecheck" (fun () -> Mhj.Scopecheck.build program)
  in
  let wrap_ok = Mhj.Scopecheck.wrap_ok scopes in
  let groups =
    Obs.Trace.with_span "nslca-group" (fun () -> group_races races)
  in
  let results =
    List.map
      (fun (lca, group) -> solve_group ~guard ~wrap_ok ~span lca group)
      groups
  in
  let demands =
    List.concat_map
      (fun r ->
        List.map (fun (i : Valid.insertion) -> (r.lca_id, i.placement))
          r.insertions)
      results
  in
  (results, Static_place.merge ~scopes demands)

(** Paper §6.1's incremental strategy: process NS-LCA groups one at a time
    against a {e live} S-DPST.  Each round solves the first group in DFS
    order, splices its first finish into the tree (step d), drops the
    races that finish resolves — re-checked with Theorem 1 on the updated
    tree (step e) — and regroups the remainder, whose NS-LCAs may have
    changed (step f).  Mutates [tree]. *)
let place_incremental ?(guard = Guard.make Guard.unlimited)
    ~(program : Mhj.Ast.program) (tree : Sdpst.Node.tree)
    (races : Espbags.Race.t list) : group_result list * Static_place.merged
    =
  let scopes =
    Obs.Trace.with_span "scopecheck" (fun () -> Mhj.Scopecheck.build program)
  in
  let wrap_ok = Mhj.Scopecheck.wrap_ok scopes in
  let results = ref [] in
  let demands = ref [] in
  let remaining = ref (Espbags.Race.dedupe_by_steps races) in
  let rounds = ref 0 in
  while !remaining <> [] do
    incr rounds;
    if !rounds > 100_000 then
      raise (Unrepairable "incremental placement did not converge");
    (* spans change as finish nodes are spliced in: fresh memo per round *)
    let span, _ = Sdpst.Analysis.span_memo () in
    let lca, group =
      Obs.Trace.with_span "nslca-group" (fun () ->
          List.hd (group_races !remaining))
    in
    let r = solve_group ~guard ~wrap_ok ~span lca group in
    (match r.insertions with
    | [] ->
        (* cannot happen: a non-empty group always demands a finish *)
        raise (Unrepairable "placement produced no insertion")
    | ins :: _ ->
        (* splice only the first (outermost) finish this round; sibling
           indices of the others shift, so they are re-derived next round
           from the updated tree *)
        ignore
          (Sdpst.Tree.insert_finish tree ~parent:ins.parent ~lo:ins.child_lo
             ~hi:ins.child_hi);
        results := { r with insertions = [ ins ] } :: !results;
        demands := (r.lca_id, ins.placement) :: !demands);
    remaining :=
      List.filter
        (fun (r : Espbags.Race.t) ->
          Sdpst.Lca.may_happen_in_parallel r.src r.sink)
        !remaining
  done;
  (List.rev !results, Static_place.merge ~scopes (List.rev !demands))

(* ------------------------------------------------------------------ *)
(* Full iterative repair                                               *)
(* ------------------------------------------------------------------ *)

let default_max_iterations = 10

let is_unrepairable = function Unrepairable _ -> true | _ -> false

(* S-DPST node budget: when the detection run's tree exceeds the budget,
   collapse every race-free region with {!Sdpst.Analysis.prune} — the
   paper's §9 garbage collection, placement-preserving because collapsed
   regions contain neither race endpoints nor needed insertion points —
   and continue on the pruned tree. *)
let enforce_sdpst_budget ~guard (tree : Sdpst.Node.tree)
    (races : Espbags.Race.t list) : unit =
  match (Guard.budgets guard).Guard.sdpst_nodes with
  | Some cap when tree.Sdpst.Node.n_nodes > cap ->
      let keep_ids = Hashtbl.create (2 * List.length races) in
      List.iter
        (fun (r : Espbags.Race.t) ->
          Hashtbl.replace keep_ids r.src.Sdpst.Node.id ();
          Hashtbl.replace keep_ids r.sink.Sdpst.Node.id ())
        races;
      let nodes_before = tree.Sdpst.Node.n_nodes in
      let removed =
        Sdpst.Analysis.prune tree ~keep:(fun n ->
            Hashtbl.mem keep_ids n.Sdpst.Node.id)
      in
      if removed > 0 then begin
        Log.warn (fun m ->
            m
              "S-DPST node budget (%d) exceeded: pruned %d of %d node(s) \
               before placement"
              cap removed nodes_before);
        Guard.note guard
          (Guard.Sdpst_pruned { nodes_before; nodes_removed = removed })
      end
  | _ -> ()

(** Repair [prog]: iterate detection and placement until race-free.

    @param mode detector flavour (default {!Espbags.Detector.Mrw})
    @param strategy how one iteration maps races to placements:
      [`Batch] (default) solves every NS-LCA group against the one S-DPST
      of the detection run and merges the demands; [`Incremental] is the
      paper's §6.1 loop, splicing each finish into a live S-DPST and
      re-deriving the remaining races' NS-LCAs before the next placement.
      Both converge to race-free programs; [`Batch] does less work per
      iteration on large race sets.
    @param max_iterations safety bound on repair iterations (default 10)
    @param fuel interpreter fuel per run
    @param budgets resource budgets (default {!Guard.unlimited}); on
      exhaustion the repair degrades gracefully and records how in
      [degradations]
    @param static_prune run the static MHP pre-pass before each detection
      run and skip instrumenting accesses it proves sequential (identical
      race sets with MRW; see {!Static.Prune})
    @param static_verify after convergence, run the static race checker on
      the repaired program and record whether it is race-free for {e all}
      inputs ([verified_static]), with unproven pairs in [static_residual]
    @raise Unrepairable if some race admits no scope-valid fix
    @raise Diag.Fail on typed pipeline failures (see {!repair_checked} for
      the total variant) *)
let repair ?(mode = Espbags.Detector.Mrw) ?(backend = `Espbags)
    ?(strategy = `Batch) ?(max_iterations = default_max_iterations) ?fuel
    ?(budgets = Guard.unlimited) ?(static_prune = false)
    ?(static_verify = false) ?validate_par ?shadow_chunk ?spill
    (prog : Mhj.Ast.program) : report =
  let layout = Option.map (fun n -> Tdrutil.Islab.Chunked n) shadow_chunk in
  let spill = Option.map Espbags.Spill.config spill in
  let guard = Guard.make budgets in
  let fuel = Guard.effective_fuel guard fuel in
  let metrics = Obs.Metrics.create () in
  declare_metrics metrics;
  let backend, _auto_reason = resolve_backend backend prog in
  Obs.Metrics.set metrics "detector.backend"
    (match backend with `Espbags -> 0 | `Vclock -> 1);
  let finish program iterations ~converged ~final_races =
    let verified_static, static_residual =
      if static_verify && converged then
        let summary, _mhp, cs =
          Guard.at_stage Diag.Lint (fun () ->
              Obs.Trace.with_span "static-verify" (fun () ->
                  Static.Racecheck.check program))
        in
        (Some (cs = []), Static.Racecheck.to_findings summary cs)
      else (None, [])
    in
    let validated_par =
      match validate_par with
      | Some req when converged ->
          let v =
            Guard.at_stage Diag.Interp (fun () ->
                Obs.Trace.with_span "validate-par" (fun () ->
                    Par.Validate.of_request ?fuel req program))
          in
          if v.Par.Validate.skipped > 0 then
            Guard.note guard
              (Guard.Validate_par_skipped
                 { ran = v.Par.Validate.ran; requested = v.Par.Validate.requested });
          Obs.Metrics.set metrics "engine.runs" v.Par.Validate.ran;
          Option.iter
            (fun s ->
              Obs.Metrics.add_all metrics (Par.Engine.stats_counters s))
            v.Par.Validate.engine;
          Some v
      | _ -> None
    in
    Obs.Metrics.set metrics "driver.iterations" (List.length iterations);
    Obs.Metrics.set metrics "driver.degradations"
      (List.length (Guard.degradations guard));
    {
      program;
      mode;
      iterations = List.rev iterations;
      converged;
      final_races;
      degradations = Guard.degradations guard;
      verified_static;
      static_residual;
      validated_par;
      metrics = Obs.Metrics.snapshot metrics;
    }
  in
  (* One detection(+placement) round, wrapped in an "iteration" span; the
     recursion and the final report assembly stay outside the span. *)
  let rec loop program iterations remaining =
    let outcome =
      Obs.Trace.with_span "iteration"
        ~args:[ ("n", List.length iterations) ]
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      Faultinject.fire Faultinject.Detector_abort;
      Faultinject.fire_slow ();
      (* the pre-pass is recomputed per iteration: inserted finishes shrink
         the MHP relation, so later runs may skip more *)
      let keep =
        if static_prune then begin
          let pr =
            Guard.at_stage Diag.Lint (fun () ->
                Obs.Trace.with_span "static-prune" (fun () ->
                    Static.Prune.make program))
          in
          (* gauges: the latest pre-pass describes the current program *)
          List.iter
            (fun (k, v) -> Obs.Metrics.set metrics k v)
            (Static.Prune.stats pr);
          Some (Static.Prune.keep_fn pr)
        end
        else None
      in
      (* Both backends share the detection contract: run the program
         depth-first, return the same Race.t records over the same
         S-DPST (the differential suite holds them report-identical). *)
      let races, det_stats, n_accesses, n_skipped, res =
        Guard.at_stage Diag.Detect (fun () ->
            Obs.Trace.with_span "detect" (fun () ->
                match backend with
                | `Espbags ->
                    let det, res =
                      Espbags.Detector.detect ?fuel ?keep ?layout ?spill mode
                        program
                    in
                    ( Espbags.Detector.races det,
                      Espbags.Detector.stats det,
                      det.Espbags.Detector.n_accesses,
                      det.Espbags.Detector.n_skipped,
                      res )
                | `Vclock ->
                    let det, res =
                      Vclock.Seq.detect ?fuel ?keep ?layout ?spill mode
                        program
                    in
                    ( Vclock.Seq.races det,
                      Vclock.Seq.stats det,
                      det.Vclock.Seq.n_accesses,
                      det.Vclock.Seq.n_skipped,
                      res )))
      in
      let detect_time = Unix.gettimeofday () -. t0 in
      (* shadow sizes and RSS are gauges (the latest run's footprint),
         unlike the rest of the detector schema, which accumulates
         across iterations *)
      let shadow_gauge (k, _) =
        k = "detector.shadow_slabs" || k = "detector.shadow_words"
      in
      Obs.Metrics.add_all metrics
        (List.filter (fun kv -> not (shadow_gauge kv)) det_stats);
      List.iter
        (fun ((k, v) as kv) ->
          if shadow_gauge kv then Obs.Metrics.set metrics k v)
        det_stats;
      Obs.Metrics.set metrics "detector.peak_rss_kb" (Obs.Rusage.peak_rss_kb ());
      (* Races whose both endpoints sit inside [isolated] sections are
         discharged by mutual exclusion — the detectors run the body as a
         plain scope and cannot see the serialization. *)
      let races = Isolate.suppress program races in
      if races = [] then `Converged
      else if remaining = 0 then `Exhausted (List.length races)
      else begin
        let t1 = Unix.gettimeofday () in
        enforce_sdpst_budget ~guard res.Rt.Interp.tree races;
        let groups, merged =
          Guard.at_stage ~passthrough:is_unrepairable Diag.Place (fun () ->
              match strategy with
              | `Batch -> place_for_tree ~guard ~program races
              | `Incremental ->
                  place_incremental ~guard ~program res.Rt.Interp.tree races)
        in
        Faultinject.fire Faultinject.Insert_fail;
        let program' =
          Guard.at_stage Diag.Insert (fun () ->
              Obs.Trace.with_span "rewrite" (fun () ->
                  Static_place.apply program merged))
        in
        let place_time = Unix.gettimeofday () -. t1 in
        let iter =
          {
            n_races = List.length races;
            n_race_pairs =
              List.length (Espbags.Race.dedupe_by_steps races);
            n_groups = List.length groups;
            groups;
            merged;
            detect_time;
            place_time;
            sdpst_nodes = res.tree.Sdpst.Node.n_nodes;
            n_accesses;
            n_skipped;
          }
        in
        Obs.Metrics.add metrics "driver.races" iter.n_races;
        Obs.Metrics.add metrics "driver.race_pairs" iter.n_race_pairs;
        Obs.Metrics.add metrics "driver.groups" iter.n_groups;
        Obs.Metrics.add metrics "driver.finishes_inserted"
          (List.length merged.placements);
        Log.info (fun m ->
            m "iteration: %d races (%d pairs) at %d NS-LCAs -> %d finish(es)"
              iter.n_races iter.n_race_pairs iter.n_groups
              (List.length merged.placements));
        `Next (program', iter)
      end
    in
    match outcome with
    | `Converged -> finish program iterations ~converged:true ~final_races:0
    | `Exhausted n ->
        finish program iterations ~converged:false ~final_races:n
    | `Next (program', iter) ->
        loop program' (iter :: iterations) (remaining - 1)
  in
  loop prog [] max_iterations

let classify_unrepairable = function
  | Unrepairable m -> Some (Diag.make ~stage:Diag.Place m)
  | _ -> None

(** Total repair: every failure mode — malformed input, runtime faults of
    the analyzed program, fuel exhaustion, placement infeasibility,
    injected faults, internal invariant violations — comes back as a typed
    diagnostic instead of an exception. *)
let repair_checked ?mode ?backend ?strategy ?max_iterations ?fuel ?budgets
    ?static_prune ?static_verify ?validate_par ?shadow_chunk ?spill prog :
    (report, Diag.t) result =
  Guard.capture ~classify:classify_unrepairable (fun () ->
      repair ?mode ?backend ?strategy ?max_iterations ?fuel ?budgets
        ?static_prune ?static_verify ?validate_par ?shadow_chunk ?spill prog)

(** Total placements inserted across all iterations. *)
let total_placements (r : report) : Mhj.Transform.placement list =
  List.concat_map (fun it -> it.merged.Static_place.placements) r.iterations

(* ------------------------------------------------------------------ *)
(* Multi-input repair (paper §2: "the tool is applied iteratively for   *)
(* different test inputs")                                             *)
(* ------------------------------------------------------------------ *)

type multi_report = {
  final : Mhj.Ast.program;  (** repaired for every processable input *)
  per_input : (string * report) list;
      (** input label -> last successful repair run *)
  failures : (string * Diag.t) list;
      (** inputs whose repair failed or exhausted its budget; the
          remaining inputs are still processed *)
  all_converged : bool;  (** every input converged and none failed *)
  coverage : Coverage.t;  (** combined coverage of the executable inputs *)
}

(** Repair one program under several test inputs, each given as a set of
    int-global overrides ({!Mhj.Transform.set_global_int}).  Placements
    computed under any input are applied to the base program (statement
    and block ids are shared), and the loop continues until every input's
    execution is race-free.  An input that fails (parse/runtime fault,
    budget exhaustion, unrepairable race) is recorded in [failures] and
    does not stop the others.  Also reports the combined statement/async
    coverage of the input set — the paper's §9 test-suitability metric. *)
let repair_multi ?(mode = Espbags.Detector.Mrw) ?backend
    ?(strategy = `Batch) ?(max_rounds = 10) ?fuel
    ?(budgets = Guard.unlimited)
    ~(inputs : (string * (string * int) list) list)
    (prog : Mhj.Ast.program) : multi_report =
  let apply_input program overrides =
    List.fold_left
      (fun p (g, v) ->
        try Mhj.Transform.set_global_int p g v
        with Invalid_argument m ->
          raise (Diag.Fail (Diag.make ~stage:Diag.Typecheck m)))
      program overrides
  in
  let rec loop program round =
    let outcomes =
      List.map
        (fun (label, overrides) ->
          ( label,
            Guard.capture ~classify:classify_unrepairable (fun () ->
                repair ~mode ?backend ~strategy ?fuel ~budgets
                  (apply_input program overrides)) ))
        inputs
    in
    let reports =
      List.filter_map
        (fun (label, o) ->
          match o with Ok r -> Some (label, r) | Error _ -> None)
        outcomes
    in
    let failures =
      List.filter_map
        (fun (label, o) ->
          match o with Error d -> Some (label, d) | Ok _ -> None)
        outcomes
    in
    (* Collect the placements every input demanded and re-apply them to
       the shared base program.  Placements from a repair run's second or
       later iterations may reference blocks that run created itself; they
       do not resolve against the base program this round and are simply
       re-discovered (and then resolved) in the next round. *)
    let scopes = Mhj.Scopecheck.build program in
    let known p =
      Hashtbl.mem scopes.Mhj.Scopecheck.blocks p.Mhj.Transform.bid
    in
    let demands =
      List.concat @@ List.mapi
        (fun input_idx ((_, r) : _ * report) ->
          List.filter_map
            (fun p -> if known p then Some (input_idx, p) else None)
            (total_placements r))
        reports
    in
    let merged = Static_place.merge ~scopes demands in
    let placements = merged.Static_place.placements in
    if placements = [] || round >= max_rounds then begin
      let cov_fuel = Guard.effective_fuel (Guard.make budgets) fuel in
      let trees =
        List.filter_map
          (fun (_, overrides) ->
            match
              Guard.capture (fun () ->
                  (Rt.Interp.run ?fuel:cov_fuel
                     (apply_input program overrides))
                    .tree)
            with
            | Ok tree -> Some tree
            | Error _ -> None)
          inputs
      in
      {
        final = program;
        per_input = reports;
        failures;
        all_converged =
          failures = []
          && List.for_all (fun ((_, r) : _ * report) -> r.converged) reports
          && placements = [];
        coverage = Coverage.of_runs program trees;
      }
    end
    else begin
      let program' = Mhj.Transform.insert_finishes program placements in
      loop program' (round + 1)
    end
  in
  loop prog 0
