(** Test-coverage analysis (paper §9 future work): which static statements
    — and in particular which [async] sites — a set of test executions
    exercises.  Unexecuted asyncs may hide races no test has triggered, so
    this is the paper's proposed "suitability of a given set of test
    cases" metric. *)

type t = {
  total_stmts : int;
  covered_stmts : int;
  total_asyncs : int;
  covered_asyncs : int;
  uncovered_asyncs : Mhj.Loc.t list;
      (** source locations of unexercised asyncs *)
}

(** Fraction of statements covered (1.0 when there are none). *)
val stmt_coverage : t -> float

(** Fraction of async statements covered. *)
val async_coverage : t -> float

(** Coverage of [prog] over the S-DPSTs of several executions (multiple
    test inputs); a statement is covered if any execution reached it. *)
val of_runs : Mhj.Ast.program -> Sdpst.Node.tree list -> t

val pp : t Fmt.t
