(** Static discharge of races protected by [isolated] sections.

    The detectors are oblivious to [isolated]: its body executes as a
    plain scope, so a conflicting pair of section instances still
    surfaces as a race of the S-DPST.  Mutual exclusion is then applied
    here, statically: a race whose {e both} endpoints originate from
    blocks lexically inside some [isolated] statement can never manifest
    — the two sections are serialized at runtime.

    The block set is purely lexical: accesses reached through a function
    call inside a section are {e not} covered (the type checker forbids
    user calls inside [isolated], so the set is in fact exact). *)

module IntSet = Set.Make (Int)

(** Block ids lexically enclosed in an [isolated] statement. *)
let bids (p : Mhj.Ast.program) : IntSet.t =
  let acc = ref IntSet.empty in
  let rec inside (st : Mhj.Ast.stmt) =
    match st.s with
    | Mhj.Ast.Decl _ | Assign _ | Return _ | Expr _ -> ()
    | If (_, a, b) ->
        inside a;
        Option.iter inside b
    | While (_, b) | For (_, _, _, _, b) | Async b | Finish b | Isolated b ->
        inside b
    | Block b ->
        acc := IntSet.add b.bid !acc;
        List.iter inside b.stmts
  in
  Mhj.Ast.iter_stmts
    (fun st -> match st.s with Mhj.Ast.Isolated b -> inside b | _ -> ())
    p;
  !acc

(** Is the race discharged by mutual exclusion — both endpoints inside
    [isolated] sections? *)
let covers (iso : IntSet.t) (r : Espbags.Race.t) : bool =
  IntSet.mem r.src.Sdpst.Node.origin_bid iso
  && IntSet.mem r.sink.Sdpst.Node.origin_bid iso

(** Remove the races discharged by the program's [isolated] sections.
    Returns the surviving races and the discharged ones. *)
let split (p : Mhj.Ast.program) (races : Espbags.Race.t list) :
    Espbags.Race.t list * Espbags.Race.t list =
  if Mhj.Ast.count_isolated p = 0 then (races, [])
  else begin
    let iso = bids p in
    List.partition (fun r -> not (covers iso r)) races
  end

(** The races surviving mutual-exclusion discharge. *)
let suppress (p : Mhj.Ast.program) (races : Espbags.Race.t list) :
    Espbags.Race.t list =
  fst (split p races)

(* ------------------------------------------------------------------ *)
(* Wrappability of a statement range                                   *)
(* ------------------------------------------------------------------ *)

let rec expr_leaf (e : Mhj.Ast.expr) : bool =
  match e.e with
  | Mhj.Ast.Int _ | Float _ | Bool _ | Str _ | Var _ -> true
  | Bin (_, a, b) -> expr_leaf a && expr_leaf b
  | Un (_, a) -> expr_leaf a
  | Idx (a, i) -> expr_leaf a && expr_leaf i
  | NewArr (_, dims) -> List.for_all expr_leaf dims
  | Call (name, args) ->
      Mhj.Builtins.is_builtin name && List.for_all expr_leaf args

(** May this statement live inside an [isolated] section?  Mirrors the
    type checker's rule: no task constructs and no user-function calls
    (which could transitively spawn, or touch memory outside the
    lexical block set). *)
let rec wrappable_stmt (st : Mhj.Ast.stmt) : bool =
  match st.s with
  | Mhj.Ast.Async _ | Finish _ | Isolated _ -> false
  | Decl (_, _, _, init) -> expr_leaf init
  | Assign (_, path, rhs) -> List.for_all expr_leaf path && expr_leaf rhs
  | Return None -> true
  | Return (Some e) | Expr e -> expr_leaf e
  | If (c, a, b) ->
      expr_leaf c && wrappable_stmt a
      && Option.fold ~none:true ~some:wrappable_stmt b
  | While (c, b) -> expr_leaf c && wrappable_stmt b
  | For (_, lo, hi, by, b) ->
      expr_leaf lo && expr_leaf hi
      && Option.fold ~none:true ~some:expr_leaf by
      && wrappable_stmt b
  | Block b -> List.for_all wrappable_stmt b.stmts
