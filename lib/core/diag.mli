(** Typed diagnostics for the repair pipeline.

    Every failure mode of the pipeline — malformed input, runtime faults of
    the analyzed program, placement infeasibility, resource exhaustion —
    is surfaced as a {!t}: a severity, the pipeline stage that produced it,
    an optional source location, and a human-readable message.  Raw
    [Invalid_argument]/[Failure] exceptions never escape a stage boundary;
    they are converted here (see {!Guard.at_stage} and {!Guard.capture}). *)

type severity = Error | Warning | Info

(** The pipeline stage a diagnostic originates from.  [Budget] marks
    resource exhaustion (interpreter fuel, S-DPST nodes, DP work); [Lint]
    marks the static analysis layer (MHP/race lint, static verifier). *)
type stage = Parse | Typecheck | Interp | Detect | Place | Insert | Budget | Lint

type t = {
  severity : severity;
  stage : stage;
  loc : Mhj.Loc.t option;  (** source position, when one is known *)
  message : string;
}

exception Fail of t
(** The single typed escape hatch of the pipeline: raised at failure sites
    that know their stage, caught only at stage boundaries. *)

val make : ?severity:severity -> ?loc:Mhj.Loc.t -> stage:stage -> string -> t

(** Build a diagnostic from a format string and raise it as {!Fail}. *)
val failf :
  ?loc:Mhj.Loc.t -> stage:stage -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** An internal-invariant violation surfaced as a diagnostic (the message
    is prefixed so bug reports are distinguishable from input errors). *)
val internal : stage:stage -> string -> t

val pp_severity : severity Fmt.t

val pp_stage : stage Fmt.t

(** Renders ["error[interp] at 3:14: index 9 out of bounds [0..4)"], or
    without the [at ...] part when no real location is attached. *)
val pp : t Fmt.t

val to_string : t -> string

(** Classify the known typed exceptions of the lower pipeline layers
    (lexer/parser/typechecker errors, interpreter runtime errors, fuel
    exhaustion, DP unsatisfiability).  [None] for unrecognized exceptions. *)
val of_exn : exn -> t option

(** Did the analyzed program (not the tool) cause this?  True for
    [Parse]/[Typecheck]/[Interp] diagnostics. *)
val is_input_error : t -> bool

(** Adapt a static-analysis finding ({!Static.Finding.t}) into a [Lint]
    diagnostic, folding the rule name into the message. *)
val of_finding : Static.Finding.t -> t
