(** Deterministic fault injection (see faultinject.mli). *)

type fault =
  | Interp_trap of int
  | Detector_abort
  | Dp_timeout
  | Place_unsat
  | Insert_fail
  | Worker_crash
  | Slow_stage of int

exception Injected of fault * string

(* The plan is domain-local: daemon worker domains install per-job
   plans concurrently, and a process-global ref would let one job's
   faults fire inside another's pipeline. *)
let plan_key : fault list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let plan () = Domain.DLS.get plan_key

let with_faults faults f =
  let saved = plan () in
  Domain.DLS.set plan_key faults;
  Fun.protect ~finally:(fun () -> Domain.DLS.set plan_key saved) f

let enabled fault = List.mem fault (plan ())

let fuel_cap () =
  List.fold_left
    (fun acc f ->
      match (f, acc) with
      | Interp_trap k, None -> Some k
      | Interp_trap k, Some k' -> Some (min k k')
      | _ -> acc)
    None (plan ())

let slow_stage_ms () =
  List.fold_left
    (fun acc f ->
      match f with
      | Slow_stage ms -> Some (ms + Option.value acc ~default:0)
      | _ -> acc)
    None (plan ())

let pp_fault ppf = function
  | Interp_trap k -> Fmt.pf ppf "interpreter trap at %d cost units" k
  | Detector_abort -> Fmt.string ppf "detector abort"
  | Dp_timeout -> Fmt.string ppf "DP placement timeout"
  | Place_unsat -> Fmt.string ppf "unsatisfiable placement"
  | Insert_fail -> Fmt.string ppf "static insertion failure"
  | Worker_crash -> Fmt.string ppf "worker crash"
  | Slow_stage ms -> Fmt.pf ppf "stage stall of %d ms" ms

let stage_of = function
  | Interp_trap _ -> Diag.Budget
  | Detector_abort -> Diag.Detect
  | Dp_timeout -> Diag.Budget
  | Place_unsat -> Diag.Place
  | Insert_fail -> Diag.Insert
  | Worker_crash -> Diag.Detect
  | Slow_stage _ -> Diag.Budget

let fire fault =
  if enabled fault then
    raise (Injected (fault, Fmt.str "injected fault: %a" pp_fault fault))

(* [Slow_stage] does not raise: it stalls the stage, sleeping in short
   chunks so an armed cooperative watchdog observes the stall and can
   time the job out mid-fault. *)
let fire_slow () =
  match slow_stage_ms () with
  | None -> ()
  | Some total ->
      let remaining = ref total in
      while !remaining > 0 do
        let chunk = min 5 !remaining in
        Unix.sleepf (float_of_int chunk /. 1000.);
        remaining := !remaining - chunk;
        Rt.Watchdog.check ()
      done
