(** Deterministic fault injection (see faultinject.mli). *)

type fault =
  | Interp_trap of int
  | Detector_abort
  | Dp_timeout
  | Place_unsat
  | Insert_fail

exception Injected of fault * string

let plan : fault list ref = ref []

let with_faults faults f =
  let saved = !plan in
  plan := faults;
  Fun.protect ~finally:(fun () -> plan := saved) f

let enabled fault = List.mem fault !plan

let fuel_cap () =
  List.fold_left
    (fun acc f ->
      match (f, acc) with
      | Interp_trap k, None -> Some k
      | Interp_trap k, Some k' -> Some (min k k')
      | _ -> acc)
    None !plan

let pp_fault ppf = function
  | Interp_trap k -> Fmt.pf ppf "interpreter trap at %d cost units" k
  | Detector_abort -> Fmt.string ppf "detector abort"
  | Dp_timeout -> Fmt.string ppf "DP placement timeout"
  | Place_unsat -> Fmt.string ppf "unsatisfiable placement"
  | Insert_fail -> Fmt.string ppf "static insertion failure"

let stage_of = function
  | Interp_trap _ -> Diag.Budget
  | Detector_abort -> Diag.Detect
  | Dp_timeout -> Diag.Budget
  | Place_unsat -> Diag.Place
  | Insert_fail -> Diag.Insert

let fire fault =
  if enabled fault then
    raise (Injected (fault, Fmt.str "injected fault: %a" pp_fault fault))
