(** Dynamic finish placement (paper §5.2, Algorithms 1 and 3).

    Given the dependence graph of an NS-LCA subtree, compute the set of
    finish blocks — ordered pairs [(s, e)] of vertex indices — that
    resolves every dependence edge while minimizing the completion time of
    the block under the ideal parallel execution model, considering only
    scope-valid placements.

    Dynamic program over intervals [(i, j)] (0-based here):

    - [opt.(i).(j)]: minimal completion time of vertices [i..j];
    - [est_after.(i).(j)]: the paper's [EST(j+1, i..j)] — how long the
      block delays control, under the optimal structure chosen for it;
    - [partition]/[finish]: reconstruction tables (Algorithm 3).

    Two published errata are fixed here (documented in DESIGN.md §4):
    [Cmin] must be initialized before the partition-point loop, and
    Algorithm 3's recursion must be [FIND(p+1, end)]. *)

type outcome = {
  cost : int;  (** optimal completion time of the whole vertex block *)
  finishes : (int * int) list;
      (** the FinishSet: vertex intervals (0-based, inclusive) to wrap,
          outermost first *)
}

exception Unsatisfiable of int * int
(** No scope-valid placement can resolve the dependences of this vertex
    interval. *)

let infinity_cost = max_int / 4

(** Solve the placement problem for [g].

    @param valid scope-validity of wrapping vertices [i..j] in a finish
      (see {!Valid.make_checker}); defaults to always-valid, which yields
      the pure Algorithm 1 used by the unit tests and the brute-force
      oracle comparison.
    @raise Unsatisfiable when dependences cannot be resolved with
      scope-valid finishes. *)
let solve ?(valid = fun ~i:_ ~j:_ -> true) (g : Depgraph.t) : outcome =
  let n = Depgraph.n_vertices g in
  if n = 0 then { cost = 0; finishes = [] }
  else begin
    let opt = Array.make_matrix n n infinity_cost in
    let est_after = Array.make_matrix n n infinity_cost in
    let partition = Array.make_matrix n n (-1) in
    let finish = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      opt.(i).(i) <- g.times.(i);
      partition.(i).(i) <- i;
      finish.(i).(i) <- false;
      (* drags already encodes the async (0) and collapsed-scope
         (summarized) cases; for steps and finishes it equals times *)
      est_after.(i).(i) <- g.Depgraph.drags.(i)
    done;
    for s = 2 to n do
      for i = 0 to n - s do
        let j = i + s - 1 in
        let c_min = ref infinity_cost in
        let best_p = ref (-1) in
        let best_finish = ref false in
        let best_est = ref infinity_cost in
        for k = i to j - 1 do
          let candidate =
            if not (Depgraph.are_crossing g ~i ~k ~j) then
              (* No dependence from [i..k] into [k+1..j]: no finish needed;
                 the second block starts once the first block's drag has
                 elapsed. *)
              Some
                ( max opt.(i).(k) (est_after.(i).(k) + opt.(k + 1).(j)),
                  false,
                  est_after.(i).(k) + est_after.(k + 1).(j) )
            else if valid ~i ~j:k then
              (* Crossing dependences: a finish around [i..k] (if a
                 scope-valid one exists) serializes the blocks. *)
              Some
                ( opt.(i).(k) + opt.(k + 1).(j),
                  true,
                  opt.(i).(k) + est_after.(k + 1).(j) )
            else None
          in
          match candidate with
          | Some (c, f, e)
            when opt.(i).(k) < infinity_cost
                 && opt.(k + 1).(j) < infinity_cost
                 && c < !c_min ->
              c_min := c;
              best_p := k;
              best_finish := f;
              best_est := e
          | _ -> ()
        done;
        if !best_p >= 0 then begin
          opt.(i).(j) <- !c_min;
          partition.(i).(j) <- !best_p;
          finish.(i).(j) <- !best_finish;
          est_after.(i).(j) <- !best_est
        end
      done
    done;
    if opt.(0).(n - 1) >= infinity_cost then raise (Unsatisfiable (0, n - 1));
    (* Algorithm 3 (with the p+1 fix): recover the FinishSet. *)
    let rec find b e =
      if b >= e then []
      else begin
        let p = partition.(b).(e) in
        let left = find b p in
        let right = find (p + 1) e in
        if finish.(b).(e) then ((b, p) :: left) @ right else left @ right
      end
    in
    { cost = opt.(0).(n - 1); finishes = find 0 (n - 1) }
  end

(** Completion time of the vertex block under an explicit set of finish
    intervals (the cost function the DP minimizes), evaluated directly.
    Intervals must be pairwise nested or disjoint.  Used by the Figure 3/4
    example test and the brute-force oracle. *)
let eval_placement (g : Depgraph.t) (intervals : (int * int) list) : int =
  let n = Depgraph.n_vertices g in
  let sorted =
    List.sort_uniq
      (fun (a1, b1) (a2, b2) ->
        if a1 <> a2 then Int.compare a1 a2 else Int.compare b2 b1)
      intervals
  in
  (* Evaluate the sequence lo..hi given the intervals nested inside; returns
     (span, drag) of the composed block. *)
  let rec eval lo hi ivs =
    let rec top_level = function
      | [] -> []
      | (a, b) :: rest ->
          let inner, siblings =
            List.partition (fun (x, y) -> x >= a && y <= b) rest
          in
          (* [rest] is sorted by (lo asc, hi desc), so every sibling starts
             at or after [a]; one that starts inside [a, b] but was not
             fully contained crosses the interval — the documented
             precondition (pairwise nested or disjoint) is violated and the
             evaluation would be silently wrong. *)
          List.iter
            (fun (x, y) ->
              if x <= b then
                invalid_arg
                  (Printf.sprintf
                     "Dp_place.eval_placement: overlapping intervals (%d, \
                      %d) and (%d, %d)"
                     a b x y))
            siblings;
          ((a, b), inner) :: top_level siblings
    in
    let tops = top_level ivs in
    let start = ref 0 in
    let span = ref 0 in
    let cursor = ref lo in
    let emit_vertex v =
      span := max !span (!start + g.times.(v));
      start := !start + g.Depgraph.drags.(v)
    in
    List.iter
      (fun ((a, b), inner) ->
        for v = !cursor to a - 1 do
          emit_vertex v
        done;
        let inner_span, _inner_drag = eval a b inner in
        (* a finish: control blocks until everything inside completes *)
        span := max !span (!start + inner_span);
        start := !start + inner_span;
        cursor := b + 1)
      tops;
    for v = !cursor to hi do
      emit_vertex v
    done;
    (!span, !start)
  in
  if n = 0 then 0 else fst (eval 0 (n - 1) sorted)

(** Does [intervals] resolve every dependence edge of [g]?  Edge [(x, y)]
    needs some interval [(s, e)] with [s <= x <= e < y] (paper §5.2). *)
let resolves_all (g : Depgraph.t) (intervals : (int * int) list) : bool =
  List.for_all
    (fun (x, y) ->
      List.exists (fun (s, e) -> s <= x && x <= e && e < y) intervals)
    g.edges
