(** Dependence graphs over NS-LCA subtrees (paper §5.1).

    For each unique non-scope least common ancestor [L] of a set of data
    races, the subtree rooted at [L] is reduced to a DAG whose vertices are
    the non-scope children of [L] (in left-to-right order) and whose edges
    are the races, lifted to the children containing their endpoints.
    Every edge goes from a left vertex to a right vertex because the race
    source precedes the sink in depth-first order.

    {b Vertex coalescing.}  The paper observes that [n] (the number of
    children) "is small in practice"; in our setting a loop that executes
    thousands of iterations under one scope makes [n] large enough that the
    O(n^3 d) DP becomes the bottleneck.  We therefore coalesce maximal runs
    of consecutive {e non-async} children that have identical dependence
    signatures (same predecessor and successor sets) into one super-vertex
    whose weight is their sequential composition.  This preserves the
    optimum: non-async children contribute pure drag (control passes only
    after they complete), so a finish boundary strictly between two
    signature-identical non-async children is never better than the same
    boundary moved to the run's edge.  Async children are never merged. *)

type t = {
  lca : Sdpst.Node.t;
  first : Sdpst.Node.t array;  (** leftmost S-DPST child of each vertex *)
  last : Sdpst.Node.t array;  (** rightmost S-DPST child of each vertex *)
  times : int array;  (** t_i: sequential composition of the run's spans *)
  drags : int array;
      (** delay until the next vertex may start: 0 for an async, the span
          for steps and finishes, the {e summarized} drag for a scope
          collapsed by {!Sdpst.Analysis.prune} (< span when the scope
          contains asyncs that outlive it) *)
  is_async : bool array;  (** singleton async vertex? *)
  edges : (int * int) list;  (** deduplicated, 0-based vertex pairs *)
  cum : int array array;
      (** 2-D prefix sums of the edge matrix for O(1) crossing tests *)
  n_raw : int;  (** number of non-scope children before coalescing *)
}

let n_vertices g = Array.length g.times

let n_edges g = List.length g.edges

(** Non-scope children of [l] (paper Definition 3), left to right: descend
    through scope nodes only.  A scope collapsed by {!Sdpst.Analysis.prune}
    has no children left to descend into; it becomes a leaf vertex carrying
    its summarized span/drag (it contains no race endpoint by construction,
    so no finish boundary ever needs to fall inside it). *)
let nonscope_children (l : Sdpst.Node.t) : Sdpst.Node.t list =
  let acc = ref [] in
  let rec go n =
    Tdrutil.Vec.iter
      (fun c ->
        if Sdpst.Node.is_nonscope c || c.Sdpst.Node.collapsed <> None then
          acc := c :: !acc
        else go c)
      n.Sdpst.Node.children
  in
  go l;
  List.rev !acc

(** [are_crossing g ~i ~k ~j] — paper's [succ(i..k) ∩ {k+1..j} ≠ ∅] test
    (0-based here): does some edge go from a vertex in [i..k] to a vertex
    in [k+1..j]?  O(1) via 2-D prefix sums. *)
let are_crossing g ~i ~k ~j =
  let count lo_src hi_src lo_snk hi_snk =
    g.cum.(hi_src + 1).(hi_snk + 1)
    - g.cum.(lo_src).(hi_snk + 1)
    - g.cum.(hi_src + 1).(lo_snk)
    + g.cum.(lo_src).(lo_snk)
  in
  count i k (k + 1) j > 0

let build_cum n edges =
  let cum = Array.make_matrix (n + 1) (n + 1) 0 in
  List.iter (fun (i, j) -> cum.(i + 1).(j + 1) <- cum.(i + 1).(j + 1) + 1) edges;
  for x = 1 to n do
    for y = 1 to n do
      cum.(x).(y) <-
        cum.(x).(y) + cum.(x - 1).(y) + cum.(x).(y - 1) - cum.(x - 1).(y - 1)
    done
  done;
  cum

(** Build the dependence graph for NS-LCA [lca] from the races whose
    NS-LCA is [lca].  Vertex weights come from [span]: the subtree
    completion time of each child under the current synchronization.
    @param coalesce merge signature-identical non-async runs (default
      [true]; the unit tests use [false] to exercise the paper's exact
      construction)
    @raise Invalid_argument if some race endpoint is not a descendant of a
    non-scope child of [lca]. *)
let build ?(coalesce = true) ~(span : Sdpst.Node.t -> int)
    (lca : Sdpst.Node.t) (races : Espbags.Race.t list) : t =
  let children = Array.of_list (nonscope_children lca) in
  let n_raw = Array.length children in
  let index = Hashtbl.create (2 * n_raw) in
  Array.iteri (fun i c -> Hashtbl.replace index c.Sdpst.Node.id i) children;
  let raw_vertex_of step =
    let child = Sdpst.Lca.nonscope_child_ancestor ~anc:lca step in
    match Hashtbl.find_opt index child.Sdpst.Node.id with
    | Some i -> i
    | None ->
        invalid_arg
          (Fmt.str "Depgraph.build: %a is not a non-scope child of %a"
             Sdpst.Node.pp child Sdpst.Node.pp lca)
  in
  let seen = Hashtbl.create 64 in
  let raw_edges = ref [] in
  List.iter
    (fun (r : Espbags.Race.t) ->
      let i = raw_vertex_of r.src and j = raw_vertex_of r.sink in
      if i >= j then
        invalid_arg
          (Fmt.str "Depgraph.build: race edge (%d, %d) is not left-to-right" i
             j);
      if not (Hashtbl.mem seen (i, j)) then begin
        Hashtbl.add seen (i, j) ();
        raw_edges := (i, j) :: !raw_edges
      end)
    races;
  let raw_edges = List.rev !raw_edges in
  (* Group raw children into vertices. *)
  let group_of = Array.make n_raw 0 in
  let n_groups =
    if not coalesce then begin
      Array.iteri (fun i _ -> group_of.(i) <- i) children;
      n_raw
    end
    else begin
      let preds = Array.make n_raw [] and succs = Array.make n_raw [] in
      List.iter
        (fun (i, j) ->
          succs.(i) <- j :: succs.(i);
          preds.(j) <- i :: preds.(j))
        raw_edges;
      (* Runs may span sibling scopes (e.g. the per-iteration read steps of
         a reduction loop): the exclusion tests in {!Valid.insertion_for}
         always consult the real boundary S-DPST nodes ([first]/[last]), so
         merging is transparent to placement validity.

         Two classes of non-async children merge:
         - identical signatures (same predecessor and successor sets);
         - {e pure sinks} (no outgoing edges), regardless of their
           predecessor sets.  A finish interval never benefits from ending
           strictly between two adjacent pure-drag sinks — ending before
           the whole run satisfies every edge into it at the same cost —
           and without this rule the per-instance merge steps of a
           divide-and-conquer benchmark (each racing with a slightly
           different subset of the child asyncs) blow the DP up to
           thousands of vertices. *)
      let class_of i =
        if succs.(i) = [] then `Sink
        else `Sig (List.sort compare preds.(i), List.sort compare succs.(i))
      in
      let g = ref (-1) in
      let prev_class = ref None in
      Array.iteri
        (fun i c ->
          let cl = class_of i in
          let mergeable =
            (not (Sdpst.Node.is_async c)) && !prev_class = Some cl
          in
          if not mergeable then incr g;
          group_of.(i) <- !g;
          prev_class := (if Sdpst.Node.is_async c then None else Some cl))
        children;
      !g + 1
    end
  in
  let first = Array.make n_groups children.(0) in
  let last = Array.make n_groups children.(0) in
  let times = Array.make n_groups 0 in
  let drags = Array.make n_groups 0 in
  let is_async = Array.make n_groups false in
  let seen_group = Array.make n_groups false in
  (* A child's own drag: 0 for an async, span for a step or finish, and
     for a scope collapsed by pruning the exact summarized drag — which
     is below its span when the collapsed region contains asyncs that
     outlive it.  Using the summary keeps the DP's cost model identical
     to the one the unpruned expansion would induce. *)
  let child_drag c =
    if Sdpst.Node.is_async c then 0
    else
      match c.Sdpst.Node.collapsed with
      | Some (_, d) -> d
      | None -> span c
  in
  Array.iteri
    (fun i c ->
      let v = group_of.(i) in
      if not seen_group.(v) then begin
        seen_group.(v) <- true;
        first.(v) <- c;
        is_async.(v) <- Sdpst.Node.is_async c
      end;
      last.(v) <- c;
      (* runs compose sequentially: the next member starts after the
         previous one's drag; for steps and finishes drag = span, so
         this reduces to the old sum-of-spans *)
      times.(v) <- max times.(v) (drags.(v) + span c);
      drags.(v) <- drags.(v) + child_drag c)
    children;
  let seen2 = Hashtbl.create 64 in
  let edges =
    List.filter_map
      (fun (i, j) ->
        let gi = group_of.(i) and gj = group_of.(j) in
        assert (gi < gj);
        if Hashtbl.mem seen2 (gi, gj) then None
        else begin
          Hashtbl.add seen2 (gi, gj) ();
          Some (gi, gj)
        end)
      raw_edges
  in
  {
    lca;
    first;
    last;
    times;
    drags;
    is_async;
    edges;
    cum = build_cum n_groups edges;
    n_raw;
  }

let pp ppf g =
  Fmt.pf ppf "depgraph@@%a: %d vertices (%d raw), %d edges@\n" Sdpst.Node.pp
    g.lca (n_vertices g) g.n_raw (n_edges g);
  Array.iteri
    (fun i c ->
      Fmt.pf ppf "  v%d = %a..%a (t=%d%s)@\n" i Sdpst.Node.pp c Sdpst.Node.pp
        g.last.(i) g.times.(i)
        (if g.is_async.(i) then ", async" else ""))
    g.first;
  List.iter (fun (i, j) -> Fmt.pf ppf "  v%d -> v%d@\n" i j) g.edges
