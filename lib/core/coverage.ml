(** Test-coverage analysis (paper §9 future work).

    "Test coverage analysis to evaluate the suitability of a given set of
    test cases for program repair": a repair is only as good as the inputs
    it has seen, so this module measures which static statements — and in
    particular which [async] statements, the sources of parallelism — were
    exercised by an execution.  Unexecuted asyncs may hide races no test
    has triggered. *)

type t = {
  total_stmts : int;
  covered_stmts : int;
  total_asyncs : int;
  covered_asyncs : int;
  uncovered_asyncs : Mhj.Loc.t list;  (** source locations of unexercised asyncs *)
}

let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b

let stmt_coverage c = ratio c.covered_stmts c.total_stmts

let async_coverage c = ratio c.covered_asyncs c.total_asyncs

(** Combine coverage of one program over several executions (multiple test
    inputs): a statement is covered if any execution covered it. *)
let of_runs (prog : Mhj.Ast.program) (trees : Sdpst.Node.tree list) : t =
  let scopes = Mhj.Scopecheck.build prog in
  let covered : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  (* sid of statement at (bid, idx) *)
  let sid_at bid idx =
    match Hashtbl.find_opt scopes.Mhj.Scopecheck.blocks bid with
    | Some stmts when idx >= 0 && idx < Array.length stmts ->
        Some stmts.(idx).Mhj.Ast.sid
    | _ -> None
  in
  let mark bid idx =
    match sid_at bid idx with
    | Some sid -> Hashtbl.replace covered sid ()
    | None -> ()
  in
  List.iter
    (fun tree ->
      Sdpst.Node.iter_tree
        (fun n ->
          if Sdpst.Node.is_step n then
            for idx = n.origin_idx to n.last_idx do
              mark n.origin_bid idx
            done
          else if n.Sdpst.Node.sid >= 0 then mark n.origin_bid n.origin_idx)
        tree)
    trees;
  let total_stmts = ref 0 in
  let covered_stmts = ref 0 in
  let total_asyncs = ref 0 in
  let covered_asyncs = ref 0 in
  let uncovered_asyncs = ref [] in
  Mhj.Ast.iter_stmts
    (fun st ->
      incr total_stmts;
      let is_covered = Hashtbl.mem covered st.sid in
      if is_covered then incr covered_stmts;
      match st.s with
      | Mhj.Ast.Async _ ->
          incr total_asyncs;
          if is_covered then incr covered_asyncs
          else uncovered_asyncs := st.sloc :: !uncovered_asyncs
      | _ -> ())
    prog;
  {
    total_stmts = !total_stmts;
    covered_stmts = !covered_stmts;
    total_asyncs = !total_asyncs;
    covered_asyncs = !covered_asyncs;
    uncovered_asyncs = List.rev !uncovered_asyncs;
  }

let pp ppf c =
  Fmt.pf ppf
    "statement coverage %d/%d (%.0f%%), async coverage %d/%d (%.0f%%)"
    c.covered_stmts c.total_stmts
    (100. *. stmt_coverage c)
    c.covered_asyncs c.total_asyncs
    (100. *. async_coverage c);
  if c.uncovered_asyncs <> [] then
    Fmt.pf ppf "; uncovered asyncs at %a"
      (Fmt.list ~sep:(Fmt.any ", ") Mhj.Loc.pp)
      c.uncovered_asyncs
