(** Brute-force finish-placement oracle: exhaustive search over every
    well-formed (nested-or-disjoint, validity-passing) placement that
    resolves all dependence edges.  Exponential; used by the test suite to
    validate {!Dp_place.solve}'s optimality claim (paper Theorem 2). *)

(** Upper bound on graph size accepted by {!solve}. *)
val max_vertices : int

(** Minimum completion time over all valid resolving placements, with a
    witness; [None] if no placement resolves the edges.
    @raise Invalid_argument beyond {!max_vertices} vertices. *)
val solve :
  ?valid:(i:int -> j:int -> bool) ->
  Depgraph.t ->
  (int * (int * int) list) option
