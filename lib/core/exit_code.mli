(** The tdrepair exit-code contract, shared between the CLI and the
    diagnostics layer.

    {v
    0  success (repair converged at full fidelity / command succeeded)
    1  internal error (a bug in the tool, not the input)
    2  repair did not converge within its iteration bound
    3  input error (parse, typecheck, or runtime fault of the program)
    4  resource budget exhausted: the result, if any, is best-effort
       (a degradation fired: S-DPST pruning, DP interval-cover fallback)
    5  unrepairable: some race admits no scope-valid finish placement
    6  lint findings: [tdrepair lint] found at least one issue (the
       program was analyzable; the findings themselves are the result)
    v}

    The [grade-file] command keeps its own documented verdict codes
    ({!grade_racy} = 3, {!grade_oversync} = 4), which share numbers but not
    meaning with the pipeline contract above. *)

val ok : int

val internal_error : int

val not_converged : int

val input_error : int

val degraded : int

val unrepairable : int

val lint_findings : int

(** Verdict codes of the [grade-file] command (paper §7.4). *)
val grade_racy : int

val grade_oversync : int

(** Map a diagnostic to its contract exit code: input errors to
    {!input_error}, budget exhaustion to {!degraded}, placement/insertion
    failures to {!unrepairable}, everything else to {!internal_error}. *)
val of_diag : Diag.t -> int
