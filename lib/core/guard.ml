(** Resource budgets and graceful degradation (see guard.mli). *)

type budgets = {
  fuel : int option;
  sdpst_nodes : int option;
  dp_work : int option;
}

let unlimited = { fuel = None; sdpst_nodes = None; dp_work = None }

type degradation =
  | Sdpst_pruned of { nodes_before : int; nodes_removed : int }
  | Dp_interval_cover of { lca_id : int }
  | Dp_unsat_fallback of { lca_id : int }
  | Validate_par_skipped of { ran : int; requested : int }
  | Job_timeout of { ms : int }

let pp_degradation ppf = function
  | Sdpst_pruned { nodes_before; nodes_removed } ->
      Fmt.pf ppf
        "S-DPST node budget exceeded: pruned %d of %d node(s) (race-free \
         regions collapsed; placement unaffected)"
        nodes_removed nodes_before
  | Dp_interval_cover { lca_id } ->
      Fmt.pf ppf
        "DP work budget exhausted at NS-LCA %d: races covered by minimal \
         per-edge intervals (best-effort, may over-serialize)"
        lca_id
  | Dp_unsat_fallback { lca_id } ->
      Fmt.pf ppf
        "DP unsatisfiable at NS-LCA %d: races covered by minimal per-edge \
         intervals"
        lca_id
  | Validate_par_skipped { ran; requested } ->
      Fmt.pf ppf
        "parallel validation budget exhausted: only %d of %d fuzzed \
         schedule(s) ran (the repair is unvalidated beyond those)"
        ran requested
  | Job_timeout { ms } ->
      Fmt.pf ppf
        "wall-clock watchdog: the job was killed after exceeding its %d ms \
         timeout"
        ms

type t = {
  budgets : budgets;
  mutable dp_spent : int;
  mutable degradations : degradation list;  (* reversed *)
}

let make budgets = { budgets; dp_spent = 0; degradations = [] }

let budgets t = t.budgets

let note t d = t.degradations <- d :: t.degradations

let degradations t = List.rev t.degradations

let dp_affordable t w =
  match t.budgets.dp_work with
  | None -> true
  | Some b -> t.dp_spent <= b - w

let dp_charge t w = t.dp_spent <- t.dp_spent + w

let effective_fuel t explicit =
  let min_opt a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)
  in
  min_opt (min_opt explicit t.budgets.fuel) (Faultinject.fuel_cap ())

let diag_of_injected fault msg =
  Diag.make ~stage:(Faultinject.stage_of fault) msg

let at_stage ?(passthrough = fun _ -> false) stage f =
  try f () with
  | (Diag.Fail _ | Faultinject.Injected _) as e -> raise e
  | e when passthrough e || Diag.of_exn e <> None -> raise e
  | Stack_overflow ->
      raise (Diag.Fail (Diag.internal ~stage "stack overflow"))
  | e -> raise (Diag.Fail (Diag.internal ~stage (Printexc.to_string e)))

let capture ?(classify = fun _ -> None) f =
  try Ok (f ()) with
  | e when classify e <> None -> Error (Option.get (classify e))
  | Faultinject.Injected (fault, msg) -> Error (diag_of_injected fault msg)
  | e -> (
      match Diag.of_exn e with
      | Some d -> Error d
      | None ->
          Error (Diag.internal ~stage:Diag.Place (Printexc.to_string e)))
