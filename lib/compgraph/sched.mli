(** Greedy (work-conserving) list-scheduling simulator: whenever a
    processor is idle and a node is ready, it runs; ready nodes dispatch
    FIFO, so results are deterministic.  By Brent/Graham's bound the
    makespan satisfies [T_P <= work/P + span].  This is the Figure 16
    substrate. *)

type stats = {
  makespan : int;  (** simulated parallel execution time *)
  busy : int;  (** processor-time spent running nodes *)
  max_ready : int;  (** peak size of the ready queue *)
}

(** Simulate a greedy schedule on [procs] processors (default 12).
    @raise Invalid_argument if [procs <= 0]. *)
val simulate : ?procs:int -> Graph.t -> stats

(** Simulated time on [procs] processors. *)
val makespan : ?procs:int -> Graph.t -> int
