(** WORK / SPAN metrics on a computation graph.

    [span] is the critical path length of the paper's Definition 1 — it
    must agree with {!Sdpst.Analysis.critical_path_length} on the same
    execution (property-tested). *)

(** Total work: sum of node weights (ideal 1-processor time). *)
let work (g : Graph.t) : int =
  let acc = ref 0 in
  for i = 0 to Graph.n_nodes g - 1 do
    acc := !acc + Graph.weight g i
  done;
  !acc

(** Critical path length: longest weighted path (ideal time on unboundedly
    many processors). *)
let span (g : Graph.t) : int =
  let n = Graph.n_nodes g in
  if n = 0 then 0
  else begin
    (* Node ids are topologically ordered by construction. *)
    let finish = Array.make n 0 in
    let best = ref 0 in
    for i = 0 to n - 1 do
      finish.(i) <- finish.(i) + Graph.weight g i;
      if finish.(i) > !best then best := finish.(i);
      List.iter
        (fun j -> if finish.(i) > finish.(j) then finish.(j) <- finish.(i))
        (Graph.succs g i)
    done;
    !best
  end

(** Average parallelism [work / span]. *)
let parallelism (g : Graph.t) : float =
  let s = span g in
  if s = 0 then 1.0 else float_of_int (work g) /. float_of_int s
