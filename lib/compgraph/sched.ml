(** Greedy list-scheduling simulator.

    Simulates executing a computation graph on [procs] identical
    processors under a greedy (work-conserving) scheduler: whenever a
    processor is idle and a node is ready, it runs.  This is the model
    behind the paper's Figure 16 runs on 12 cores; by Brent/Graham's bound
    the makespan T_P satisfies [T_P <= work/P + span], and the {e relative}
    ordering of the sequential / original-parallel / repaired-parallel
    series is preserved independently of machine constants.

    Ready nodes are dispatched in FIFO order (the deterministic analogue of
    a work-sharing runtime), so results are exactly reproducible. *)

(* A simple binary min-heap of (time, node) pairs for completion events. *)
module Heap = struct
  type t = {
    mutable data : (int * int) array;
    mutable len : int;
  }

  let create () = { data = Array.make 64 (0, 0); len = 0 }

  let is_empty h = h.len = 0

  let peek h =
    if h.len = 0 then invalid_arg "Heap.peek: empty";
    h.data.(0)

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h x =
    if h.len = Array.length h.data then begin
      let data = Array.make (2 * h.len) (0, 0) in
      Array.blit h.data 0 data 0 h.len;
      h.data <- data
    end;
    h.data.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then invalid_arg "Heap.pop: empty";
    let top = h.data.(0) in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then
        smallest := l;
      if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then
        smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    top
end

type stats = {
  makespan : int;  (** simulated parallel execution time *)
  busy : int;  (** processor-time spent running nodes *)
  max_ready : int;  (** peak size of the ready queue *)
}

(** Simulate a greedy schedule of [g] on [procs] processors. *)
let simulate ?(procs = 12) (g : Graph.t) : stats =
  if procs <= 0 then invalid_arg "Sched.simulate: procs must be positive";
  let n = Graph.n_nodes g in
  if n = 0 then { makespan = 0; busy = 0; max_ready = 0 }
  else begin
    let indeg = Array.init n (Graph.in_degree g) in
    let ready = Queue.create () in
    for i = 0 to n - 1 do
      if indeg.(i) = 0 then Queue.add i ready
    done;
    let events = Heap.create () in
    let idle = ref procs in
    let time = ref 0 in
    let busy = ref 0 in
    let max_ready = ref (Queue.length ready) in
    let dispatch () =
      while !idle > 0 && not (Queue.is_empty ready) do
        let v = Queue.take ready in
        decr idle;
        busy := !busy + Graph.weight g v;
        Heap.push events (!time + Graph.weight g v, v)
      done
    in
    dispatch ();
    while not (Heap.is_empty events) do
      let t, v = Heap.pop events in
      time := t;
      (* Drain all events at the same timestamp before dispatching, so
         ready-queue FIFO order (and [max_ready]) never depends on heap
         pop order for equal keys.  The batch is sorted by node id: heap
         order is unspecified among equal timestamps. *)
      let batch = ref [ v ] in
      while (not (Heap.is_empty events)) && fst (Heap.peek events) = t do
        batch := snd (Heap.pop events) :: !batch
      done;
      let batch = List.sort Int.compare !batch in
      List.iter
        (fun v ->
          incr idle;
          List.iter
            (fun s ->
              indeg.(s) <- indeg.(s) - 1;
              if indeg.(s) = 0 then Queue.add s ready)
            (Graph.succs g v))
        batch;
      if Queue.length ready > !max_ready then max_ready := Queue.length ready;
      dispatch ()
    done;
    { makespan = !time; busy = !busy; max_ready = !max_ready }
  end

(** Simulated time on [procs] processors. *)
let makespan ?procs g = (simulate ?procs g).makespan
