(** WORK / SPAN metrics on a computation graph.  [span] is the critical
    path length of the paper's Definition 1 and must agree with
    {!Sdpst.Analysis.critical_path_length} on the same execution
    (property-tested). *)

(** Total work: sum of node weights (ideal 1-processor time). *)
val work : Graph.t -> int

(** Critical path length (ideal unbounded-processor time). *)
val span : Graph.t -> int

(** Average parallelism [work / span]. *)
val parallelism : Graph.t -> float
