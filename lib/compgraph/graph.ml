(** Computation graph of an async-finish execution.

    The paper's Definition 1 measures parallelism on the computation graph
    of the program; Figure 16 reports execution times on a 12-core machine.
    We derive the computation graph from the S-DPST and the per-step costs:

    - every step becomes a weighted node;
    - sequential composition inside a task adds continue edges;
    - an [async] adds a spawn edge from its predecessor and contributes its
      exit to the enclosing finish's join;
    - a [finish] (and the root) adds a zero-weight join node that waits for
      its body's control exit and every async spawned (transitively, up to
      nested finishes) inside it.

    Nodes are created so that every edge goes from a lower to a higher
    node id — node order is a topological order, which the metrics and the
    scheduler rely on. *)

type t = {
  weights : int Tdrutil.Vec.t;
  succs : int list Tdrutil.Vec.t;  (** successor ids per node *)
  preds : int Tdrutil.Vec.t;  (** in-degree per node *)
  mutable n_edges : int;
  step_node : (int, int) Hashtbl.t;  (** S-DPST step id -> graph node id *)
}

let n_nodes g = Tdrutil.Vec.length g.weights

let n_edges g = g.n_edges

let weight g i = Tdrutil.Vec.get g.weights i

let succs g i = Tdrutil.Vec.get g.succs i

let in_degree g i = Tdrutil.Vec.get g.preds i

let create () =
  {
    weights = Tdrutil.Vec.create ();
    succs = Tdrutil.Vec.create ();
    preds = Tdrutil.Vec.create ();
    n_edges = 0;
    step_node = Hashtbl.create 256;
  }

let add_node g w =
  Tdrutil.Vec.push g.weights w;
  Tdrutil.Vec.push g.succs [];
  Tdrutil.Vec.push g.preds 0;
  n_nodes g - 1

let add_edge g a b =
  if a >= b then invalid_arg "Graph.add_edge: not topological";
  Tdrutil.Vec.set g.succs a (b :: Tdrutil.Vec.get g.succs a);
  Tdrutil.Vec.set g.preds b (Tdrutil.Vec.get g.preds b + 1);
  g.n_edges <- g.n_edges + 1

(** Build the computation graph of an execution's S-DPST. *)
let of_sdpst (tree : Sdpst.Node.tree) : t =
  let g = create () in
  let source = add_node g 0 in
  (* [go n pred] wires the subgraph of S-DPST node [n], whose execution
     starts after graph node [pred].  Returns [(cont, spawned)]: the node
     after which control continues past [n], and the exit nodes of asyncs
     spawned in [n] that are not yet joined by a nested finish. *)
  let rec go (n : Sdpst.Node.t) (pred : int) : int * int list =
    match n.collapsed with
    | Some (span, drag) ->
        (* Pruned summary (Analysis.prune): a drag chain carries control,
           and when work outlives the drag a parallel chain carries the
           span. *)
        let d = add_node g drag in
        add_edge g pred d;
        let drag = match n.kind with Sdpst.Node.Async -> 0 | _ -> drag in
        let cont = if drag = 0 then pred else d in
        if span > drag then begin
          let s = add_node g span in
          add_edge g pred s;
          (cont, [ s ])
        end
        else (cont, if cont = d then [] else [ d ])
    | None -> go_live n pred
  and go_live (n : Sdpst.Node.t) (pred : int) : int * int list =
    match n.kind with
    | Sdpst.Node.Step ->
        let v = add_node g n.cost in
        Hashtbl.replace g.step_node n.id v;
        add_edge g pred v;
        (v, [])
    | Sdpst.Node.Scope _ -> seq n pred
    | Sdpst.Node.Async ->
        let exit, spawned = seq n pred in
        (* Control in the parent continues from [pred] immediately. *)
        (pred, exit :: spawned)
    | Sdpst.Node.Finish | Sdpst.Node.Root ->
        let exit, spawned = seq n pred in
        if spawned = [] then (exit, [])
        else begin
          let j = add_node g 0 in
          add_edge g exit j;
          List.iter (fun s -> if s <> exit then add_edge g s j) spawned;
          (j, [])
        end
  and seq (n : Sdpst.Node.t) (pred : int) : int * int list =
    let cur = ref pred in
    let spawned = ref [] in
    Tdrutil.Vec.iter
      (fun c ->
        let cont, sp = go c !cur in
        cur := cont;
        spawned := List.rev_append sp !spawned)
      n.children;
    (!cur, !spawned)
  in
  let _exit, spawned = go tree.root source in
  assert (spawned = []);
  g
