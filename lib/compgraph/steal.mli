(** Work-stealing scheduler simulation with the HJ runtime's task-creation
    policies (Guo et al., IPDPS 2009 — the paper's [11]): per-processor
    deques, deterministic victim selection, explicit steal overhead.  Used
    by the ablation bench to show Figure 16's result is robust to the
    scheduling policy. *)

type policy =
  | Work_first  (** continue with the first enabled successor (depth-first) *)
  | Help_first  (** queue children, continue breadth-ish *)

val pp_policy : policy Fmt.t

type stats = {
  makespan : int;  (** simulated parallel execution time *)
  steals : int;  (** successful steals *)
}

val default_steal_overhead : int

(** Simulate on [procs] processors.  Deterministic given [seed].
    @raise Invalid_argument if [procs <= 0]. *)
val simulate :
  ?procs:int -> ?policy:policy -> ?steal_overhead:int -> ?seed:int ->
  Graph.t -> stats

val makespan :
  ?procs:int -> ?policy:policy -> ?steal_overhead:int -> ?seed:int ->
  Graph.t -> int
