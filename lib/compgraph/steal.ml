(** Work-stealing scheduler simulation.

    The paper's substrate (Habanero Java) executes async-finish programs
    under a work-stealing runtime with either a {e work-first} or a
    {e help-first} task-creation policy (Guo, Barik, Raman, Sarkar,
    IPDPS 2009 — the paper's [11]).  {!Sched} simulates the idealized
    greedy scheduler; this module simulates per-processor deques with
    stealing, so the bench harness can show that the repaired programs'
    advantage is robust to the scheduling policy (an ablation the paper
    leaves implicit in its use of the HJ runtime).

    Model: each processor owns a deque of ready nodes.  Completing a node
    enables successors, which are pushed onto the completing processor's
    deque with a {e ready time}; a node never starts before its ready
    time.  Under [Work_first] the processor continues with the first
    enabled successor (depth-first, like executing a spawned child
    eagerly); under [Help_first] with the last (like queueing children
    and continuing the parent).  Idle processors steal the oldest entry
    of a deterministically chosen victim at [steal_overhead] cost.  All
    decisions are deterministic given [seed]. *)

type policy = Work_first | Help_first

let pp_policy ppf = function
  | Work_first -> Fmt.string ppf "work-first"
  | Help_first -> Fmt.string ppf "help-first"

type stats = {
  makespan : int;  (** simulated parallel execution time *)
  steals : int;  (** successful steals *)
}

let default_steal_overhead = 1

(** Simulate [g] on [procs] processors under work-stealing.

    @param policy task-creation policy (default [Work_first])
    @param steal_overhead time a successful steal costs the thief
    @param seed victim-selection randomness (deterministic) *)
let simulate ?(procs = 12) ?(policy = Work_first)
    ?(steal_overhead = default_steal_overhead) ?(seed = 42) (g : Graph.t) :
    stats =
  if procs <= 0 then invalid_arg "Steal.simulate: procs must be positive";
  let n = Graph.n_nodes g in
  if n = 0 then { makespan = 0; steals = 0 }
  else begin
    let rng = Tdrutil.Prng.create ~seed in
    let indeg = Array.init n (Graph.in_degree g) in
    let ready_time = Array.make n 0 in
    (* Deques as lists: front = hot end (own pops); steals take the cold
       (rear) end. *)
    let deques = Array.make procs [] in
    let free_time = Array.make procs 0 in
    for i = n - 1 downto 0 do
      if indeg.(i) = 0 then deques.(0) <- i :: deques.(0)
    done;
    let steals = ref 0 in
    let makespan = ref 0 in
    let remaining = ref n in
    let pop_own p =
      match deques.(p) with
      | x :: rest ->
          deques.(p) <- rest;
          Some x
      | [] -> None
    in
    let steal_for p =
      let start = Tdrutil.Prng.int rng procs in
      let found = ref None in
      for k = 0 to procs - 1 do
        let v = (start + k) mod procs in
        if !found = None && v <> p then
          match List.rev deques.(v) with
          | cold :: rest_rev ->
              deques.(v) <- List.rev rest_rev;
              found := Some cold
          | [] -> ()
      done;
      !found
    in
    while !remaining > 0 do
      (* the processor that can act earliest takes the next decision *)
      let p = ref 0 in
      for q = 1 to procs - 1 do
        if free_time.(q) < free_time.(!p) then p := q
      done;
      let p = !p in
      let node =
        match pop_own p with
        | Some x -> Some x
        | None -> (
            match steal_for p with
            | Some x ->
                incr steals;
                free_time.(p) <- free_time.(p) + steal_overhead;
                Some x
            | None ->
                (* nothing to steal: every deque is empty, so all
                   remaining work is enabled in the future by the busy
                   processors.  Jump this processor's clock to the next
                   completion to avoid spinning. *)
                let next = ref max_int in
                for q = 0 to procs - 1 do
                  if q <> p && free_time.(q) > free_time.(p) then
                    next := min !next free_time.(q)
                done;
                free_time.(p) <-
                  (if !next = max_int then free_time.(p) + 1 else !next);
                None)
      in
      match node with
      | None -> ()
      | Some v ->
          let start = max free_time.(p) ready_time.(v) in
          let finish = start + Graph.weight g v in
          free_time.(p) <- finish;
          if finish > !makespan then makespan := finish;
          decr remaining;
          let enabled =
            List.filter
              (fun s ->
                ready_time.(s) <- max ready_time.(s) finish;
                indeg.(s) <- indeg.(s) - 1;
                indeg.(s) = 0)
              (Graph.succs g v)
          in
          let enabled =
            match policy with
            | Work_first -> enabled
            | Help_first -> List.rev enabled
          in
          deques.(p) <- enabled @ deques.(p)
    done;
    { makespan = !makespan; steals = !steals }
  end

let makespan ?procs ?policy ?steal_overhead ?seed g =
  (simulate ?procs ?policy ?steal_overhead ?seed g).makespan
