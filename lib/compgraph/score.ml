(** Candidate scoring for the repair-strategy tournament.

    A repair candidate is judged on the computation graph of one of its
    executions: total WORK, critical path length (CPL), and the simulated
    makespan on a bounded machine ({!Sched.simulate}).  The tournament
    selects the minimum-CPL race-free candidate.

    Isolation-based candidates carry extra {e mutual-exclusion} edges:
    two conflicting [isolated] section instances never overlap, so the
    scored graph serializes each conflicting pair in depth-first order (a
    schedule every mutual-exclusion implementation can realize).  Pairs
    are given as S-DPST step-node ids and resolved through the graph's
    step-node table. *)

type t = {
  work : int;  (** total work (1-processor time) *)
  cpl : int;  (** critical path length (unbounded-processor time) *)
  makespan : int;  (** greedy schedule on [procs] processors *)
  parallelism : float;  (** work / cpl *)
}

let pp ppf s =
  Fmt.pf ppf "work=%d cpl=%d makespan=%d par=%.2f" s.work s.cpl s.makespan
    s.parallelism

let of_graph ?procs (g : Graph.t) : t =
  let work = Metrics.work g in
  let cpl = Metrics.span g in
  {
    work;
    cpl;
    makespan = Sched.makespan ?procs g;
    parallelism = (if cpl = 0 then 1.0 else float_of_int work /. float_of_int cpl);
  }

(** Score an execution's S-DPST.  [serialize] lists S-DPST step-id pairs
    to connect with a mutual-exclusion edge (earlier node -> later node);
    pairs whose steps were pruned from the graph, or that are equal, are
    ignored.  Duplicate edges are added once. *)
let of_tree ?procs ?(serialize : (int * int) list = [])
    (tree : Sdpst.Node.tree) : t =
  let g = Graph.of_sdpst tree in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      match
        (Hashtbl.find_opt g.Graph.step_node a, Hashtbl.find_opt g.Graph.step_node b)
      with
      | Some na, Some nb when na <> nb ->
          let lo, hi = if na < nb then (na, nb) else (nb, na) in
          if not (Hashtbl.mem seen (lo, hi)) then begin
            Hashtbl.add seen (lo, hi) ();
            Graph.add_edge g lo hi
          end
      | _ -> ())
    serialize;
  of_graph ?procs g
