(** Candidate scoring for the repair-strategy tournament: WORK / CPL /
    simulated makespan of a candidate's execution, with optional
    mutual-exclusion edges serializing conflicting [isolated] sections. *)

type t = {
  work : int;  (** total work (1-processor time) *)
  cpl : int;  (** critical path length (unbounded-processor time) *)
  makespan : int;  (** greedy schedule on [procs] processors *)
  parallelism : float;  (** work / cpl *)
}

val pp : t Fmt.t

(** Score a computation graph ([procs] defaults to {!Sched.simulate}'s
    12). *)
val of_graph : ?procs:int -> Graph.t -> t

(** Score an execution's S-DPST.  [serialize] lists S-DPST step-id pairs
    to join with a mutual-exclusion edge (depth-first order); pairs not
    present in the graph are ignored, duplicates are added once. *)
val of_tree : ?procs:int -> ?serialize:(int * int) list -> Sdpst.Node.tree -> t
