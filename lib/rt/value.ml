(** Runtime values of the Mini-HJ interpreter. *)

type arr = { aid : int; cells : t array }

and t =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VStr of string
  | VUnit
  | VArr of arr

let pp ppf = function
  | VInt n -> Fmt.int ppf n
  | VFloat f -> Fmt.pf ppf "%.6g" f
  | VBool b -> Fmt.bool ppf b
  | VStr s -> Fmt.string ppf s
  | VUnit -> Fmt.string ppf "()"
  | VArr a -> Fmt.pf ppf "arr%d(%d cells)" a.aid (Array.length a.cells)

(** Default (zero) value of a scalar type.  Array cells of array type are
    always filled by multi-dimensional [new] expressions (enforced by the
    type checker), so [TArr] has no default. *)
let zero (ty : Mhj.Ast.ty) : t =
  match ty with
  | TInt -> VInt 0
  | TFloat -> VFloat 0.0
  | TBool -> VBool false
  | TUnit -> VUnit
  | TStr -> VStr ""
  | TArr _ -> invalid_arg "Value.zero: arrays have no default value"
