(** Runtime values of the Mini-HJ interpreter. *)

type arr = { aid : int; cells : t array }

and t =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VStr of string
  | VUnit
  | VArr of arr

let pp ppf = function
  | VInt n -> Fmt.int ppf n
  | VFloat f -> Fmt.pf ppf "%.6g" f
  | VBool b -> Fmt.bool ppf b
  | VStr s -> Fmt.string ppf s
  | VUnit -> Fmt.string ppf "()"
  | VArr a -> Fmt.pf ppf "arr%d(%d cells)" a.aid (Array.length a.cells)

(** Structural deep printer, independent of array identity: cells are
    printed recursively and [aid]s are omitted.  Two runs that allocate
    arrays in different orders (e.g. a depth-first and a parallel
    execution of the same program) produce the same rendering iff their
    final states agree cell-for-cell, which is what the schedule-fuzzing
    differential tests compare.  Floats print in hex ([%h]) so the digest
    never identifies two distinct values. *)
let rec deep_pp ppf = function
  | VInt n -> Fmt.int ppf n
  | VFloat f -> Fmt.pf ppf "%h" f
  | VBool b -> Fmt.bool ppf b
  | VStr s -> Fmt.pf ppf "%S" s
  | VUnit -> Fmt.string ppf "()"
  | VArr a ->
      Fmt.pf ppf "[%a]" Fmt.(array ~sep:semi deep_pp) a.cells

let deep_to_string v = Fmt.str "%a" deep_pp v

(** Canonical digest of a final global-variable state: one [name=value]
    line per global, sorted by name, arrays printed deeply without
    [aid]s. *)
let digest_globals (globals : (string * t) list) : string =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) globals
  in
  String.concat "\n"
    (List.map (fun (name, v) -> name ^ "=" ^ deep_to_string v) sorted)

(** Default (zero) value of a scalar type.  Array cells of array type are
    always filled by multi-dimensional [new] expressions (enforced by the
    type checker), so [TArr] has no default. *)
let zero (ty : Mhj.Ast.ty) : t =
  match ty with
  | TInt -> VInt 0
  | TFloat -> VFloat 0.0
  | TBool -> VBool false
  | TUnit -> VUnit
  | TStr -> VStr ""
  | TArr _ -> invalid_arg "Value.zero: arrays have no default value"
