(** Runtime values of the Mini-HJ interpreter. *)

type arr = { aid : int; cells : t array }
(** [aid] identifies the array object for race-detection addresses. *)

and t =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VStr of string
  | VUnit
  | VArr of arr

val pp : t Fmt.t

(** Zero value of a scalar type.
    @raise Invalid_argument for array types (always allocated by [new]). *)
val zero : Mhj.Ast.ty -> t
