(** Runtime values of the Mini-HJ interpreter. *)

type arr = { aid : int; cells : t array }
(** [aid] identifies the array object for race-detection addresses. *)

and t =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VStr of string
  | VUnit
  | VArr of arr

val pp : t Fmt.t

(** Structural deep printer: arrays print their cells recursively and omit
    [aid]s, so renderings are comparable across runs with different
    allocation orders.  Floats print exactly ([%h]). *)
val deep_pp : t Fmt.t

val deep_to_string : t -> string

(** [digest_globals gs] — canonical one-line-per-global rendering of a
    final global state, sorted by name, using {!deep_pp}.  Equal digests
    mean equal final states (modulo array identity). *)
val digest_globals : (string * t) list -> string

(** Zero value of a scalar type.
    @raise Invalid_argument for array types (always allocated by [new]). *)
val zero : Mhj.Ast.ty -> t
