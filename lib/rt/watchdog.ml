(* See watchdog.mli. *)

exception Timeout of int

type state = {
  mutable armed : bool;
  mutable deadline_ns : int64;
  mutable ms : int;  (* the originally requested timeout, for Timeout *)
  mutable ticks : int;
}

let key =
  Domain.DLS.new_key (fun () ->
      { armed = false; deadline_ns = 0L; ms = 0; ticks = 0 })

let st () = Domain.DLS.get key

let arm ~ms =
  let s = st () in
  s.armed <- true;
  s.ms <- ms;
  s.ticks <- 0;
  s.deadline_ns <-
    Int64.add (Obs.Clock.now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L)

let disarm () = (st ()).armed <- false

let remaining_ms () =
  let s = st () in
  if not s.armed then None
  else
    let left = Int64.sub s.deadline_ns (Obs.Clock.now_ns ()) in
    Some (Int64.to_int (Int64.div left 1_000_000L))

let check () =
  let s = st () in
  if s.armed && Obs.Clock.now_ns () >= s.deadline_ns then begin
    (* fire once: the unwind must not re-trip in every Fun.protect
       finalizer between here and the job boundary *)
    s.armed <- false;
    raise (Timeout s.ms)
  end

let tick_mask = 1023

let tick () =
  let s = st () in
  if s.armed then begin
    s.ticks <- s.ticks + 1;
    if s.ticks land tick_mask = 0 then check ()
  end

let with_timeout ~ms f =
  match ms with
  | None -> f ()
  | Some ms ->
      arm ~ms;
      Fun.protect ~finally:disarm f

let () =
  Printexc.register_printer (function
    | Timeout ms -> Some (Printf.sprintf "Rt.Watchdog.Timeout(%dms)" ms)
    | _ -> None)
