(** Abstract addresses of shared memory locations.

    Mini-HJ's type system (see {!Mhj.Typecheck}) restricts shared mutable
    state to globals and array cells, so these are the only locations the
    race detector monitors. *)

type t =
  | Global of string  (** a top-level [var] *)
  | Cell of int * int  (** (array id, index) *)

let equal a b =
  match (a, b) with
  | Global x, Global y -> String.equal x y
  | Cell (a1, i1), Cell (a2, i2) -> a1 = a2 && i1 = i2
  | _ -> false

let hash = function
  | Global x -> Hashtbl.hash (0, x)
  | Cell (a, i) -> Hashtbl.hash (1, a, i)

let pp ppf = function
  | Global x -> Fmt.string ppf x
  | Cell (a, i) -> Fmt.pf ppf "arr%d[%d]" a i

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** Dense integer interning of addresses.

    The detection hot path must not hash a boxed {!t} per monitored
    access, so the interpreter resolves every address to a dense [int] at
    program load / allocation time:

    - the program's globals get ids [0 .. n_globals), in declaration
      order, interned once before execution starts;
    - each array allocation reserves a contiguous block of ids, one per
      cell, so a cell access is a single add ([base + index]).

    The id space is contiguous, so shadow memory becomes a flat growable
    table indexed by id instead of an [Addr.Table].  Reconstructing the
    boxed {!t} from an id ({!Intern.of_id}) is only needed when a race is
    actually reported, which is rare; cells resolve by binary search over
    the (monotone) per-array bases. *)
module Intern = struct
  type addr = t

  type t = {
    names : string Tdrutil.Vec.t;  (** global id -> name *)
    mutable n_globals : int;
    mutable next : int;  (** next free id *)
    bases : Tdrutil.Ivec.t;
        (** array aid -> base id of its cell block; monotone in [aid]
            because arrays register in allocation order; slot 0 unused *)
  }

  let create () =
    {
      names = Tdrutil.Vec.create ();
      n_globals = 0;
      next = 0;
      bases = Tdrutil.Ivec.of_list [ -1 ];
    }

  (** Intern a global (call once per name, in declaration order, before
      any array registration). *)
  let add_global t name =
    let id = t.next in
    Tdrutil.Vec.push t.names name;
    t.n_globals <- t.n_globals + 1;
    t.next <- t.next + 1;
    id

  (** Reserve [len] contiguous ids for the cells of array [aid].  Arrays
      must register in allocation order (dense, increasing [aid]). *)
  let register_array t ~aid ~len =
    if aid <> Tdrutil.Ivec.length t.bases then
      invalid_arg
        (Fmt.str "Addr.Intern.register_array: aid %d out of order" aid);
    Tdrutil.Ivec.push t.bases t.next;
    t.next <- t.next + len

  (** Interned id of cell [idx] of array [aid] (must be registered). *)
  let cell_id t ~aid ~idx = Tdrutil.Ivec.get t.bases aid + idx

  (** Interned id of a global already added with {!add_global}; meant for
      reconstruction paths, not the per-access path (which caches ids). *)
  let find_global t name =
    let rec go i =
      if i >= t.n_globals then None
      else if String.equal (Tdrutil.Vec.get t.names i) name then Some i
      else go (i + 1)
    in
    go 0

  (** Size of the id space so far — an exclusive upper bound on every id
      handed out, for sizing flat shadow tables. *)
  let n_ids t = t.next

  let n_globals t = t.n_globals

  (** Reconstruct the boxed address of an interned id.  O(1) for globals,
      O(log n_arrays) for cells. *)
  let of_id t id =
    if id < 0 || id >= t.next then invalid_arg "Addr.Intern.of_id";
    if id < t.n_globals then Global (Tdrutil.Vec.get t.names id)
    else begin
      (* rightmost aid whose base is <= id: zero-length arrays share their
         successor's base and own no ids, so rightmost is the owner *)
      let lo = ref 1 and hi = ref (Tdrutil.Ivec.length t.bases - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if Tdrutil.Ivec.get t.bases mid <= id then lo := mid else hi := mid - 1
      done;
      let aid = !lo in
      Cell (aid, id - Tdrutil.Ivec.get t.bases aid)
    end
end
