(** Abstract addresses of shared memory locations.

    Mini-HJ's type system (see {!Mhj.Typecheck}) restricts shared mutable
    state to globals and array cells, so these are the only locations the
    race detector monitors. *)

type t =
  | Global of string  (** a top-level [var] *)
  | Cell of int * int  (** (array id, index) *)

let equal a b =
  match (a, b) with
  | Global x, Global y -> String.equal x y
  | Cell (a1, i1), Cell (a2, i2) -> a1 = a2 && i1 = i2
  | _ -> false

let hash = function
  | Global x -> Hashtbl.hash (0, x)
  | Cell (a, i) -> Hashtbl.hash (1, a, i)

let pp ppf = function
  | Global x -> Fmt.string ppf x
  | Cell (a, i) -> Fmt.pf ppf "arr%d[%d]" a i

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
