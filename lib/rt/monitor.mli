(** Instrumentation interface between the interpreter and dynamic
    analyses: structural transitions (task and finish begin/end, carrying
    the S-DPST node) and monitored memory accesses, which identify their
    location by {e interned id} (the dense [int] of {!Addr.Intern}) so the
    per-access path never hashes or allocates a boxed address.  The
    ESP-bags detectors implement this interface. *)

type access = Read | Write

val pp_access : access Fmt.t

type t = {
  on_init : Addr.Intern.t -> unit;
      (** the run's address interner, delivered once before execution
          starts; keep it to reconstruct boxed addresses with
          {!Addr.Intern.of_id} *)
  on_task_begin : Sdpst.Node.t -> unit;
      (** an async task (or the root task) starts *)
  on_task_end : Sdpst.Node.t -> unit;
  on_finish_begin : Sdpst.Node.t -> unit;
      (** a finish region (or the implicit root finish) starts *)
  on_finish_end : Sdpst.Node.t -> unit;
  on_access : step:Sdpst.Node.t -> bid:int -> idx:int -> int -> access -> unit;
      (** a monitored access to the location with the given interned id,
          by the statement at index [idx] of block [bid], while [step] is
          the current step node *)
}

(** The monitor that ignores everything. *)
val nop : t

(** Compose two monitors (events delivered left first). *)
val both : t -> t -> t

(** [filter ~keep ?on_skip m] delivers only the accesses [keep] accepts
    to [m]; skipped accesses invoke [on_skip] instead.  Structural events
    pass through untouched. *)
val filter :
  keep:(bid:int -> idx:int -> int -> access -> bool) ->
  ?on_skip:(unit -> unit) ->
  t ->
  t
