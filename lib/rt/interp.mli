(** Sequential depth-first interpreter for Mini-HJ (the paper's canonical
    execution): async bodies run to completion at their spawn point while
    the S-DPST records the parallel structure.  Abstract {!Cost} units are
    charged to the current step; structural transitions and monitored
    memory accesses are reported to an optional {!Monitor}. *)

exception Runtime_error of string * Mhj.Loc.t

exception Out_of_fuel

type result = {
  output : string;  (** everything [print]ed, one line per call *)
  tree : Sdpst.Node.tree;  (** the S-DPST of the execution *)
  work : int;  (** total cost units charged (serial execution time) *)
  globals : (string * Value.t) list;
      (** final global-variable state, sorted by name — the reference the
          parallel backend's schedule-fuzzing differential checks compare
          against (digest with {!Value.digest_globals}) *)
  intern : Addr.Intern.t;
      (** the run's address interner: resolves the interned ids reported
          to the monitor back to boxed {!Addr.t}s *)
}

val default_fuel : int

(** Execute a program depth-first from [main].

    @param monitor receives structural and memory-access events
    @param fuel abort with {!Out_of_fuel} after this many cost units
    @raise Runtime_error on dynamic errors (bounds, division by zero, ...)
      and on malformed programs (not normalized — use {!Mhj.Front.compile}
      — or lacking a [main]); always carries a source location when one is
      known *)
val run : ?monitor:Monitor.t -> ?fuel:int -> Mhj.Ast.program -> result

(** Run the serial elision (all parallel constructs erased) — the
    reference semantics for repair correctness. *)
val run_elision : ?fuel:int -> Mhj.Ast.program -> result
