(** Abstract addresses of monitored shared-memory locations: globals and
    array cells — the only shared mutable state Mini-HJ's type system
    admits. *)

type t =
  | Global of string  (** a top-level [var] *)
  | Cell of int * int  (** (array id, index) *)

val equal : t -> t -> bool

val hash : t -> int

val pp : t Fmt.t

module Table : Hashtbl.S with type key = t
