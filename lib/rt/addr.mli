(** Abstract addresses of monitored shared-memory locations: globals and
    array cells — the only shared mutable state Mini-HJ's type system
    admits. *)

type t =
  | Global of string  (** a top-level [var] *)
  | Cell of int * int  (** (array id, index) *)

val equal : t -> t -> bool

val hash : t -> int

val pp : t Fmt.t

module Table : Hashtbl.S with type key = t

(** Dense integer interning of addresses.

    The detection hot path must not hash a boxed {!t} per monitored
    access, so the interpreter resolves every address to a dense [int]:
    globals get ids [0 .. n_globals) in declaration order, interned once
    at program load; each array allocation reserves a contiguous block of
    ids, one per cell, so a cell access is a single add ([base + index]).
    The id space is contiguous — shadow memory becomes a flat growable
    table indexed by id instead of an [Addr.Table]. *)
module Intern : sig
  type addr = t

  type t

  val create : unit -> t

  (** Intern a global (once per name, in declaration order, before any
      array registration); returns its id. *)
  val add_global : t -> string -> int

  (** Reserve [len] contiguous ids for the cells of array [aid].  Arrays
      must register in allocation order (dense, increasing [aid]).
      @raise Invalid_argument on an out-of-order [aid] *)
  val register_array : t -> aid:int -> len:int -> unit

  (** Interned id of cell [idx] of a registered array. *)
  val cell_id : t -> aid:int -> idx:int -> int

  (** Id of an interned global, if present (linear scan — reconstruction
      paths only; the access path caches ids). *)
  val find_global : t -> string -> int option

  (** Exclusive upper bound on every id handed out so far — for sizing
      flat shadow tables. *)
  val n_ids : t -> int

  val n_globals : t -> int

  (** Reconstruct the boxed address of an interned id: O(1) for globals,
      O(log n_arrays) for cells.
      @raise Invalid_argument for an id never handed out *)
  val of_id : t -> int -> addr
end
