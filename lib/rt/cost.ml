(** Abstract cost model.

    The dynamic finish-placement algorithm needs an execution time for each
    step (the paper's [t_i], Figure 3), and the performance evaluation
    (Figure 16) needs per-step durations for the computation graph.  The
    paper instruments HJ bytecode to measure step times; we charge
    deterministic abstract cost units per evaluated construct, which makes
    every run exactly reproducible.  The [work(n)] builtin charges [n]
    extra units, so test programs can encode the paper's Figure 3 example
    with known task durations. *)

let stmt = 1  (** executing one statement *)

let expr_node = 1  (** evaluating one expression node *)

let array_cell_alloc = 1  (** allocating one array cell *)

let call_overhead = 2  (** user-function call/return *)

let builtin_overhead = 1  (** builtin call *)
