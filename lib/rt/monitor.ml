(** Instrumentation interface between the interpreter and dynamic
    analyses.

    The interpreter owns S-DPST construction (it knows the execution
    structure) and reports every structural transition and monitored memory
    access to an optional monitor.  The ESP-bags race detectors implement
    this interface; [task] events carry the S-DPST node standing for the
    task (async or root) or finish region, and accesses carry the current
    step node so races can be recorded as step pairs.

    Accesses identify their location by {e interned id} — the dense [int]
    the interpreter resolves every {!Addr.t} to at load/allocation time
    (see {!Addr.Intern}) — so the per-access path never hashes or
    allocates a boxed address.  [on_init] delivers the run's interner
    before execution starts; a monitor that needs to render an address
    (e.g. in a race report) keeps it and calls {!Addr.Intern.of_id}.

    Accesses also carry their static position — the block id and statement
    index of the statement whose expression evaluation performs the access —
    so monitors can make per-statement decisions.  {!filter} uses it to
    skip accesses a static pre-pass proved sequential. *)

type access = Read | Write

let pp_access ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"

type t = {
  on_init : Addr.Intern.t -> unit;
      (** the run's address interner, delivered once before execution *)
  on_task_begin : Sdpst.Node.t -> unit;
      (** an async task (or the root task) starts *)
  on_task_end : Sdpst.Node.t -> unit;
  on_finish_begin : Sdpst.Node.t -> unit;
      (** a finish region (or the implicit root finish) starts *)
  on_finish_end : Sdpst.Node.t -> unit;
  on_access : step:Sdpst.Node.t -> bid:int -> idx:int -> int -> access -> unit;
      (** a monitored access to the location with the given interned id,
          by the statement at index [idx] of block [bid], while [step] is
          the current step node *)
}

let nop =
  {
    on_init = ignore;
    on_task_begin = ignore;
    on_task_end = ignore;
    on_finish_begin = ignore;
    on_finish_end = ignore;
    on_access = (fun ~step:_ ~bid:_ ~idx:_ _ _ -> ());
  }

(** Compose two monitors (events delivered left first). *)
let both a b =
  {
    on_init =
      (fun intern ->
        a.on_init intern;
        b.on_init intern);
    on_task_begin =
      (fun n ->
        a.on_task_begin n;
        b.on_task_begin n);
    on_task_end =
      (fun n ->
        a.on_task_end n;
        b.on_task_end n);
    on_finish_begin =
      (fun n ->
        a.on_finish_begin n;
        b.on_finish_begin n);
    on_finish_end =
      (fun n ->
        a.on_finish_end n;
        b.on_finish_end n);
    on_access =
      (fun ~step ~bid ~idx addr k ->
        a.on_access ~step ~bid ~idx addr k;
        b.on_access ~step ~bid ~idx addr k);
  }

(** [filter ~keep ?on_skip m] delivers only the accesses [keep] accepts to
    [m]; skipped accesses invoke [on_skip].  Structural events pass
    through untouched, so detector bag state stays consistent. *)
let filter ~(keep : bid:int -> idx:int -> int -> access -> bool)
    ?(on_skip = fun () -> ()) m =
  {
    m with
    on_access =
      (fun ~step ~bid ~idx addr k ->
        if keep ~bid ~idx addr k then m.on_access ~step ~bid ~idx addr k
        else on_skip ());
  }
