(** Sequential depth-first interpreter for Mini-HJ.

    The paper's analyses all run over the {e canonical sequential
    (depth-first) execution} of the parallel program: an [async] body runs
    to completion at its spawn point, exactly like the serial elision, while
    the S-DPST records the parallel structure.  This interpreter performs
    that execution, builds the S-DPST, charges abstract {!Cost} units to the
    current step, and reports structural transitions and shared-memory
    accesses to an optional {!Monitor}.

    Structural mapping from program to S-DPST:
    - the root node stands for [main]'s task and its implicit finish;
    - an [async]/[finish] statement creates an async/finish node whose
      children come directly from its body block (the AST is normalized, so
      the body always is a block);
    - entering any other block (branch or loop body, nested block) creates
      a [Scope Sblock] node; each loop iteration is a fresh scope instance;
    - calling a user function creates a [Scope (Scall f)] node — possibly
      in the middle of a step, which ends at the call and resumes after;
    - maximal monitored/costed runs between structural transitions become
      step leaves. *)

open Mhj

exception Runtime_error of string * Loc.t

exception Out_of_fuel

exception Return_v of Value.t

let error loc fmt = Fmt.kstr (fun m -> raise (Runtime_error (m, loc))) fmt

type frame = (string, Value.t ref) Hashtbl.t

type result = {
  output : string;  (** everything [print]ed, one line per call *)
  tree : Sdpst.Node.tree;  (** the S-DPST of the execution *)
  work : int;  (** total cost units charged (serial execution time) *)
  globals : (string * Value.t) list;
      (** final global-variable state, sorted by name — the reference the
          parallel backend's schedule-fuzzing differential checks compare
          against (digest with {!Value.digest_globals}) *)
  intern : Addr.Intern.t;
      (** the run's address interner: resolves the interned ids reported
          to the monitor back to boxed {!Addr.t}s *)
}

(* A global's slot caches its interned address so the monitored read/write
   path reports it without re-resolving the name. *)
type gslot = { gval : Value.t ref; gaddr : int }

type state = {
  funcs : (string, Ast.func) Hashtbl.t;
  globals : (string, gslot) Hashtbl.t;
  intern : Addr.Intern.t;
  mutable locals : frame list;
  tree : Sdpst.Node.tree;
  mutable parent : Sdpst.Node.t;
  mutable step : Sdpst.Node.t option;
  mutable bid : int;  (** block whose statements are currently executing *)
  mutable idx : int;  (** index of the current statement within [bid] *)
  monitor : Monitor.t;
  buf : Buffer.t;
  mutable fuel : int;
  mutable work : int;
  mutable aid : int;
  mutable quiet : bool;  (** global-initializer mode: cost but no steps *)
  mutable max_live_depth : int;
}

(* ------------------------------------------------------------------ *)
(* Steps and cost                                                      *)
(* ------------------------------------------------------------------ *)

let ensure_step st =
  match st.step with
  | Some s -> s
  | None ->
      let s =
        Sdpst.Node.new_child st.tree ~parent:st.parent ~kind:Sdpst.Node.Step
          ~origin_bid:st.bid ~origin_idx:st.idx ()
      in
      st.step <- Some s;
      s

let close_step st = st.step <- None

let charge st n =
  st.fuel <- st.fuel - n;
  if st.fuel < 0 then raise Out_of_fuel;
  Watchdog.tick ();
  if not st.quiet then begin
    (* global-initializer (quiet) cost consumes fuel but is program setup,
       not measured execution time: [work] equals the sum of step costs *)
    st.work <- st.work + n;
    let s = ensure_step st in
    s.cost <- s.cost + n;
    if st.idx > s.last_idx then s.last_idx <- st.idx
  end

(* [addr] is an interned id (see Addr.Intern): a global's cached id or a
   registered array's base plus the cell index — no boxed address is built
   on the access path. *)
let access st addr kind =
  if not st.quiet then
    let s = ensure_step st in
    st.monitor.Monitor.on_access ~step:s ~bid:st.bid ~idx:st.idx addr kind

let cell_addr st aid idx = Addr.Intern.cell_id st.intern ~aid ~idx

(* Enter a structural (async/finish/scope) node: the current step ends, the
   body runs under the new node with its own block cursor, and the step
   resumes lazily afterwards at the same (bid, idx) position. *)
let in_structural st ~kind ~sid ~body_bid f =
  close_step st;
  let node =
    Sdpst.Node.new_child st.tree ~parent:st.parent ~kind ~sid
      ~origin_bid:st.bid ~origin_idx:st.idx ~body_bid ()
  in
  if node.depth > st.max_live_depth then st.max_live_depth <- node.depth;
  let saved_parent = st.parent and saved_bid = st.bid and saved_idx = st.idx in
  st.parent <- node;
  st.bid <- body_bid;
  let restore () =
    close_step st;
    st.parent <- saved_parent;
    st.bid <- saved_bid;
    st.idx <- saved_idx
  in
  Fun.protect ~finally:restore (fun () -> f node)

let push_frame st = st.locals <- Hashtbl.create 8 :: st.locals

let pop_frame st = st.locals <- List.tl st.locals

let in_frame st f =
  push_frame st;
  Fun.protect ~finally:(fun () -> pop_frame st) f

let lookup_local st x =
  let rec go = function
    | [] -> None
    | fr :: rest -> (
        match Hashtbl.find_opt fr x with Some r -> Some r | None -> go rest)
  in
  go st.locals

let declare_local st x v =
  match st.locals with
  | fr :: _ -> Hashtbl.replace fr x (ref v)
  | [] -> invalid_arg "Interp.declare_local: no frame"

(* ------------------------------------------------------------------ *)
(* Values and operators                                                *)
(* ------------------------------------------------------------------ *)

let as_int loc = function
  | Value.VInt n -> n
  | v -> error loc "expected int, got %a" Value.pp v

let as_bool loc = function
  | Value.VBool b -> b
  | v -> error loc "expected bool, got %a" Value.pp v

let as_arr loc = function
  | Value.VArr a -> a
  | v -> error loc "expected array, got %a" Value.pp v

let eval_binop loc op (a : Value.t) (b : Value.t) : Value.t =
  let open Ast in
  match (op, a, b) with
  | Add, VInt x, VInt y -> VInt (x + y)
  | Sub, VInt x, VInt y -> VInt (x - y)
  | Mul, VInt x, VInt y -> VInt (x * y)
  | Div, VInt _, VInt 0 -> error loc "division by zero"
  | Div, VInt x, VInt y -> VInt (x / y)
  | Mod, VInt _, VInt 0 -> error loc "modulo by zero"
  | Mod, VInt x, VInt y -> VInt (x mod y)
  | Add, VFloat x, VFloat y -> VFloat (x +. y)
  | Sub, VFloat x, VFloat y -> VFloat (x -. y)
  | Mul, VFloat x, VFloat y -> VFloat (x *. y)
  | Div, VFloat x, VFloat y -> VFloat (x /. y)
  | Eq, VInt x, VInt y -> VBool (x = y)
  | Ne, VInt x, VInt y -> VBool (x <> y)
  | Lt, VInt x, VInt y -> VBool (x < y)
  | Le, VInt x, VInt y -> VBool (x <= y)
  | Gt, VInt x, VInt y -> VBool (x > y)
  | Ge, VInt x, VInt y -> VBool (x >= y)
  | Eq, VFloat x, VFloat y -> VBool (x = y)
  | Ne, VFloat x, VFloat y -> VBool (x <> y)
  | Lt, VFloat x, VFloat y -> VBool (x < y)
  | Le, VFloat x, VFloat y -> VBool (x <= y)
  | Gt, VFloat x, VFloat y -> VBool (x > y)
  | Ge, VFloat x, VFloat y -> VBool (x >= y)
  | Eq, VBool x, VBool y -> VBool (x = y)
  | Ne, VBool x, VBool y -> VBool (x <> y)
  | _ ->
      error loc "operator '%s' applied to %a and %a" (string_of_binop op)
        Value.pp a Value.pp b

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec alloc_array st loc base dims : Value.t =
  match dims with
  | [] -> assert false
  | [ n ] ->
      if n < 0 then error loc "negative array dimension %d" n;
      charge st (n * Cost.array_cell_alloc);
      st.aid <- st.aid + 1;
      Addr.Intern.register_array st.intern ~aid:st.aid ~len:n;
      Value.VArr { aid = st.aid; cells = Array.make n (Value.zero base) }
  | n :: rest ->
      if n < 0 then error loc "negative array dimension %d" n;
      charge st (n * Cost.array_cell_alloc);
      st.aid <- st.aid + 1;
      let aid = st.aid in
      Addr.Intern.register_array st.intern ~aid ~len:n;
      let cells = Array.init n (fun _ -> alloc_array st loc base rest) in
      Value.VArr { aid; cells }

let rec eval st (e : Ast.expr) : Value.t =
  charge st Cost.expr_node;
  match e.e with
  | Int n -> VInt n
  | Float f -> VFloat f
  | Bool b -> VBool b
  | Str s -> VStr s
  | Var x -> (
      match lookup_local st x with
      | Some r -> !r
      | None -> (
          match Hashtbl.find_opt st.globals x with
          | Some g ->
              access st g.gaddr Monitor.Read;
              !(g.gval)
          | None -> error e.eloc "unbound variable '%s'" x))
  | Bin (And, a, b) ->
      if as_bool a.eloc (eval st a) then eval st b else VBool false
  | Bin (Or, a, b) ->
      if as_bool a.eloc (eval st a) then VBool true else eval st b
  | Bin (op, a, b) ->
      let va = eval st a in
      let vb = eval st b in
      eval_binop e.eloc op va vb
  | Un (Neg, a) -> (
      match eval st a with
      | VInt n -> VInt (-n)
      | VFloat f -> VFloat (-.f)
      | v -> error e.eloc "unary '-' applied to %a" Value.pp v)
  | Un (Not, a) -> VBool (not (as_bool a.eloc (eval st a)))
  | Idx (a, i) ->
      let arr = as_arr a.eloc (eval st a) in
      let i = as_int i.eloc (eval st i) in
      if i < 0 || i >= Array.length arr.cells then
        error e.eloc "index %d out of bounds [0..%d)" i (Array.length arr.cells);
      access st (cell_addr st arr.aid i) Monitor.Read;
      arr.cells.(i)
  | NewArr (base, dims) ->
      let dims = List.map (fun d -> as_int d.Ast.eloc (eval st d)) dims in
      alloc_array st e.eloc base dims
  | Call (name, args) ->
      let vargs = List.map (eval st) args in
      if Builtins.is_builtin name then eval_builtin st e.eloc name vargs
      else call_function st e.eloc name vargs

and eval_builtin st loc name (args : Value.t list) : Value.t =
  charge st Cost.builtin_overhead;
  match (name, args) with
  | "alen", [ VArr a ] -> VInt (Array.length a.cells)
  | "print", [ v ] ->
      Buffer.add_string st.buf (Fmt.str "%a" Value.pp v);
      Buffer.add_char st.buf '\n';
      VUnit
  | "work", [ VInt n ] ->
      if n < 0 then error loc "work(%d): negative amount" n;
      charge st n;
      VUnit
  | "cas", [ VArr a; VInt i; VInt old_v; VInt new_v ] ->
      (* Models HJ's atomic claim; exempt from race detection (DESIGN.md). *)
      if i < 0 || i >= Array.length a.cells then
        error loc "cas: index %d out of bounds [0..%d)" i (Array.length a.cells);
      if a.cells.(i) = VInt old_v then begin
        a.cells.(i) <- VInt new_v;
        VBool true
      end
      else VBool false
  | "float", [ VInt n ] -> VFloat (float_of_int n)
  | "int", [ VFloat f ] -> VInt (int_of_float f)
  | "sqrt", [ VFloat f ] -> VFloat (sqrt f)
  | "sin", [ VFloat f ] -> VFloat (sin f)
  | "cos", [ VFloat f ] -> VFloat (cos f)
  | "fabs", [ VFloat f ] -> VFloat (abs_float f)
  | "pow", [ VFloat a; VFloat b ] -> VFloat (a ** b)
  | "log", [ VFloat f ] -> VFloat (log f)
  | "exp", [ VFloat f ] -> VFloat (exp f)
  | _ ->
      error loc "builtin '%s' applied to (%a)" name
        Fmt.(list ~sep:comma Value.pp)
        args

and call_function st loc name (args : Value.t list) : Value.t =
  let f =
    match Hashtbl.find_opt st.funcs name with
    | Some f -> f
    | None -> error loc "unknown function '%s'" name
  in
  charge st Cost.call_overhead;
  in_structural st ~kind:(Sdpst.Node.Scope (Sdpst.Node.Scall name)) ~sid:(-1)
    ~body_bid:f.body.bid (fun _node ->
      let saved_locals = st.locals in
      st.locals <- [ Hashtbl.create 8 ];
      List.iter2 (fun (x, _ty) v -> declare_local st x v) f.params args;
      push_frame st;
      let restore () = st.locals <- saved_locals in
      Fun.protect ~finally:restore (fun () ->
          match exec_stmts st f.body.stmts with
          | () -> Value.VUnit
          | exception Return_v v -> v))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and exec_stmts st (stmts : Ast.stmt list) : unit =
  List.iteri
    (fun i s ->
      st.idx <- i;
      exec_stmt st s)
    stmts

and exec_body st (body : Ast.stmt) : unit =
  (* Body of an async/finish: the AST is normalized so this is a block;
     its statements run directly under the async/finish node. *)
  match body.s with
  | Ast.Block b -> in_frame st (fun () -> exec_stmts st b.stmts)
  | _ ->
      error body.sloc
        "program not normalized (async/finish body); compile with \
         Front.compile"

and exec_stmt st (stmt : Ast.stmt) : unit =
  (* Structural statements are not charged to the current step: the charge
     would extend the step's statement range over the async/finish/block
     statement itself and spuriously forbid tight finish insertions. *)
  (match stmt.s with
  | Async _ | Finish _ | Isolated _ | Block _ -> ()
  | _ -> charge st Cost.stmt);
  match stmt.s with
  | Decl (_m, x, _ty, init) ->
      let v = eval st init in
      declare_local st x v
  | Assign (x, [], rhs) -> (
      let v = eval st rhs in
      match lookup_local st x with
      | Some r -> r := v
      | None -> (
          match Hashtbl.find_opt st.globals x with
          | Some g ->
              access st g.gaddr Monitor.Write;
              g.gval := v
          | None -> error stmt.sloc "unbound variable '%s'" x))
  | Assign (x, path, rhs) ->
      let base =
        match lookup_local st x with
        | Some r -> !r
        | None -> (
            match Hashtbl.find_opt st.globals x with
            | Some g ->
                access st g.gaddr Monitor.Read;
                !(g.gval)
            | None -> error stmt.sloc "unbound variable '%s'" x)
      in
      let rec walk v = function
        | [] -> assert false
        | [ last ] ->
            let arr = as_arr stmt.sloc v in
            let i = as_int last.Ast.eloc (eval st last) in
            if i < 0 || i >= Array.length arr.cells then
              error stmt.sloc "index %d out of bounds [0..%d)" i
                (Array.length arr.cells);
            let rhs_v = eval st rhs in
            access st (cell_addr st arr.aid i) Monitor.Write;
            arr.cells.(i) <- rhs_v
        | idx :: rest ->
            let arr = as_arr stmt.sloc v in
            let i = as_int idx.Ast.eloc (eval st idx) in
            if i < 0 || i >= Array.length arr.cells then
              error stmt.sloc "index %d out of bounds [0..%d)" i
                (Array.length arr.cells);
            access st (cell_addr st arr.aid i) Monitor.Read;
            walk arr.cells.(i) rest
      in
      walk base path
  | If (c, a, b) ->
      if as_bool c.eloc (eval st c) then exec_scope_body st a
      else Option.iter (exec_scope_body st) b
  | While (c, body) ->
      while as_bool c.eloc (eval st c) do
        exec_scope_body st body
      done
  | For (iv, lo, hi, by, body) ->
      let lo = as_int lo.eloc (eval st lo) in
      let hi = as_int hi.eloc (eval st hi) in
      let step =
        match by with
        | None -> 1
        | Some e -> (
            match as_int e.eloc (eval st e) with
            | 0 -> error stmt.sloc "for step must be non-zero"
            | s -> s)
      in
      let i = ref lo in
      let continue () = if step > 0 then !i <= hi else !i >= hi in
      while continue () do
        exec_for_iteration st iv !i body;
        i := !i + step
      done
  | Return None -> raise (Return_v Value.VUnit)
  | Return (Some e) ->
      let v = eval st e in
      raise (Return_v v)
  | Async body -> (
      match body.s with
      | Ast.Block b ->
          in_structural st ~kind:Sdpst.Node.Async ~sid:stmt.sid ~body_bid:b.bid
            (fun node ->
              st.monitor.Monitor.on_task_begin node;
              Fun.protect
                ~finally:(fun () -> st.monitor.Monitor.on_task_end node)
                (fun () -> exec_body st body))
      | _ ->
          error stmt.sloc
            "program not normalized (async); compile with Front.compile")
  | Finish body -> (
      match body.s with
      | Ast.Block b ->
          in_structural st ~kind:Sdpst.Node.Finish ~sid:stmt.sid ~body_bid:b.bid
            (fun node ->
              st.monitor.Monitor.on_finish_begin node;
              Fun.protect
                ~finally:(fun () -> st.monitor.Monitor.on_finish_end node)
                (fun () -> exec_body st body))
      | _ ->
          error stmt.sloc
            "program not normalized (finish); compile with Front.compile")
  | Isolated body -> (
      (* Sequential execution is a legal schedule of the mutual
         exclusion, so the depth-first interpreter runs the body as a
         plain scope; races between isolated sections still surface in
         the S-DPST and are discharged statically (Repair.Isolate). *)
      match body.s with
      | Ast.Block b ->
          in_structural st ~kind:(Sdpst.Node.Scope Sdpst.Node.Sblock)
            ~sid:stmt.sid ~body_bid:b.bid (fun _node -> exec_body st body)
      | _ ->
          error stmt.sloc
            "program not normalized (isolated); compile with Front.compile")
  | Block b ->
      in_structural st ~kind:(Sdpst.Node.Scope Sdpst.Node.Sblock) ~sid:stmt.sid
        ~body_bid:b.bid (fun _node ->
          in_frame st (fun () -> exec_stmts st b.stmts))
  | Expr e -> ignore (eval st e)

and exec_scope_body st (body : Ast.stmt) : unit =
  (* Branch/loop bodies are blocks after normalization; executing the block
     statement creates the scope node. *)
  match body.s with
  | Ast.Block _ -> exec_stmt st body
  | _ ->
      error body.sloc
        "program not normalized (branch/loop body); compile with \
         Front.compile"

and exec_for_iteration st iv i body =
  match body.s with
  | Ast.Block b ->
      (* No per-iteration overhead charge: it would open a step inside the
         iteration scope even when the body is a lone async, and that step
         would block loop-wide finish placements.  For-loops are bounded,
         so fuel accounting inside the body suffices. *)
      in_structural st ~kind:(Sdpst.Node.Scope Sdpst.Node.Sblock) ~sid:body.sid
        ~body_bid:b.bid (fun _node ->
          in_frame st (fun () ->
              declare_local st iv (Value.VInt i);
              exec_stmts st b.stmts))
  | _ ->
      error body.sloc
        "program not normalized (for body); compile with Front.compile"

(* ------------------------------------------------------------------ *)
(* Whole-program execution                                             *)
(* ------------------------------------------------------------------ *)

let default_fuel = 200_000_000

(** Execute [prog] depth-first from [main].

    @param monitor receives structural and memory-access events
    @param fuel abort with {!Out_of_fuel} after this many cost units
      (guards against non-terminating inputs such as random or student
      programs)
    @raise Runtime_error on dynamic errors (bounds, division by zero, ...)
    @raise Out_of_fuel when the fuel budget is exhausted *)
let run ?(monitor = Monitor.nop) ?(fuel = default_fuel) (prog : Ast.program) :
    result =
  if not (Normalize.is_normalized prog) then
    error Loc.dummy "program must be normalized (use Front.compile)";
  let main =
    match Ast.find_func prog "main" with
    | Some f -> f
    | None -> error Loc.dummy "program has no 'main' function"
  in
  let tree = Sdpst.Node.create_tree ~main_bid:main.body.bid in
  let intern = Addr.Intern.create () in
  let st =
    {
      funcs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      intern;
      locals = [ Hashtbl.create 8 ];
      tree;
      parent = tree.root;
      step = None;
      bid = main.body.bid;
      idx = 0;
      monitor;
      buf = Buffer.create 256;
      fuel;
      work = 0;
      aid = 0;
      quiet = false;
      max_live_depth = 0;
    }
  in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace st.funcs f.fname f) prog.funcs;
  (* Globals are interned up front (ids 0.. in declaration order); arrays
     claim id blocks as they are allocated, starting with any allocated by
     the global initializers themselves. *)
  let gaddrs =
    List.map
      (fun (g : Ast.global) -> (g, Addr.Intern.add_global intern g.gname))
      prog.globals
  in
  monitor.Monitor.on_init intern;
  (* Global initializers run before main, outside any step: they are
     sequenced before every task, so they can never participate in a race
     and are kept out of the S-DPST (see DESIGN.md). *)
  st.quiet <- true;
  List.iter
    (fun ((g : Ast.global), gaddr) ->
      let v = eval st g.ginit in
      Hashtbl.replace st.globals g.gname { gval = ref v; gaddr })
    gaddrs;
  st.quiet <- false;
  (* The monitored depth-first execution is also what grows the S-DPST,
     so one span covers both; nested under "detect" when the driver runs
     this behind a detector monitor. *)
  Obs.Trace.with_span "sdpst-build" (fun () ->
      monitor.Monitor.on_task_begin tree.root;
      monitor.Monitor.on_finish_begin tree.root;
      (try in_frame st (fun () -> exec_stmts st main.body.stmts)
       with Return_v _ -> ());
      close_step st;
      monitor.Monitor.on_finish_end tree.root;
      monitor.Monitor.on_task_end tree.root);
  let globals =
    Hashtbl.fold (fun name g acc -> (name, !(g.gval)) :: acc) st.globals []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { output = Buffer.contents st.buf; tree; work = st.work; globals; intern }

(** Run the serial elision of [prog] (all parallel constructs erased) and
    return its result — the reference semantics for repair correctness. *)
let run_elision ?fuel (prog : Ast.program) : result =
  run ?fuel (Normalize.normalize (Elision.elide prog))
