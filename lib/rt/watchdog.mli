(** Cooperative per-job wall-clock watchdog.

    The deadline is {e domain-local}: each daemon worker domain (and the
    one-shot CLI) arms its own deadline around one job, and the
    interpreter's charge path calls {!tick} so any execution-bound stage
    observes expiry within ~1k cost units.  Expiry raises {!Timeout},
    which the pipeline maps to a [budget]-stage diagnostic (exit code 4)
    — the same degradation semantics for [--timeout-ms] on the one-shot
    commands and for the daemon's per-job watchdog.

    Cooperative means a stage that never ticks cannot be interrupted;
    the daemon supervisor backs this up with a hard watchdog that
    declares such a worker wedged and respawns it (see
    {!Serve.Supervisor}). *)

exception Timeout of int
(** Raised (once per arming) when the deadline passes; the payload is
    the originally requested timeout in milliseconds. *)

(** Arm the calling domain's watchdog [ms] milliseconds from now,
    replacing any previous deadline. *)
val arm : ms:int -> unit

(** Disarm the calling domain's watchdog. *)
val disarm : unit -> unit

(** Milliseconds left before expiry; [None] when disarmed. *)
val remaining_ms : unit -> int option

(** Read the clock and raise {!Timeout} if the armed deadline has
    passed.  No-op when disarmed. *)
val check : unit -> unit

(** Cheap hot-path probe: counts calls and runs {!check} every 1024th
    one, so the common case is one load and an increment. *)
val tick : unit -> unit

(** [with_timeout ~ms f] runs [f] under an [ms]-millisecond deadline
    (disarming on exit, also on exceptions); [ms = None] runs [f]
    unguarded. *)
val with_timeout : ms:int option -> (unit -> 'a) -> 'a
