(** SOR (JGF): red-black successive over-relaxation.  Each sweep updates
    first the odd ("red") interior rows in parallel, then the even
    ("black") ones; a row update only reads rows of the opposite colour,
    so each half-sweep is race-free on its own but must be separated from
    the next by a finish — and the final checksum reads everything.  This
    is the paper's pattern of a finish {e inside} a loop body: every
    dynamic sweep demands the same two static finishes. *)

let source ~size ~iters =
  Fmt.str
    {|
var size: int = %d;
var iters: int = %d;
var omega: float = 1.25;

def update_row(g: float[][], i: int) {
  val row: float[] = g[i];
  val up: float[] = g[i - 1];
  val down: float[] = g[i + 1];
  for (j = 1 to size - 2) {
    row[j] = omega * 0.25 * (up[j] + down[j] + row[j - 1] + row[j + 1])
             + (1.0 - omega) * row[j];
  }
}

def init(g: float[][]) {
  var x: int = 9157;
  for (i = 0 to size - 1) {
    for (j = 0 to size - 1) {
      x = (x * 1103515 + 12345) %% 100000;
      g[i][j] = float(x) / 100000.0;
    }
  }
}

def checksum(g: float[][]): float {
  var sum: float = 0.0;
  for (i = 0 to size - 1) {
    for (j = 0 to size - 1) {
      sum = sum + g[i][j];
    }
  }
  return sum;
}

def main() {
  val g: float[][] = new float[size][size];
  init(g);
  for (it = 0 to iters - 1) {
    finish {
      for (i = 1 to size - 2 by 2) {
        async {
          update_row(g, i);
        }
      }
    }
    finish {
      for (i = 2 to size - 2 by 2) {
        async {
          update_row(g, i);
        }
      }
    }
  }
  print(checksum(g));
}
|}
    size iters

let bench : Bench.t =
  {
    name = "SOR";
    suite = "JGF";
    descr = "Successive over-relaxation (red-black)";
    repair_params = "size = 30, iters = 2 (paper: 100 x 1)";
    perf_params = "size = 80, iters = 10 (paper: 6,000 x 100, scaled)";
    repair_src = source ~size:30 ~iters:2;
    perf_src = source ~size:80 ~iters:10;
  }
