(** Registry of all Table 1 benchmarks, in the paper's order. *)

let all : Bench.t list =
  [
    Fibonacci.bench;
    Quicksort.bench;
    Mergesort.bench;
    Spanning_tree.bench;
    Nqueens.bench;
    Series.bench;
    Sor.bench;
    Crypt.bench;
    Sparse.bench;
    Lufact.bench;
    Fannkuch.bench;
    Mandelbrot.bench;
  ]

let find name =
  List.find_opt
    (fun (b : Bench.t) ->
      String.lowercase_ascii b.name = String.lowercase_ascii name)
    all

let names = List.map (fun (b : Bench.t) -> b.Bench.name) all
