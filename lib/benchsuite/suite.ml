(** Registry of all Table 1 benchmarks, in the paper's order. *)

let all : Bench.t list =
  [
    Fibonacci.bench;
    Quicksort.bench;
    Mergesort.bench;
    Spanning_tree.bench;
    Nqueens.bench;
    Series.bench;
    Sor.bench;
    Crypt.bench;
    Sparse.bench;
    Lufact.bench;
    Fannkuch.bench;
    Mandelbrot.bench;
  ]

let find name =
  List.find_opt
    (fun (b : Bench.t) ->
      String.lowercase_ascii b.name = String.lowercase_ascii name)
    all

let names = List.map (fun (b : Bench.t) -> b.Bench.name) all

(* ------------------------------------------------------------------ *)
(* Scale workloads                                                      *)
(* ------------------------------------------------------------------ *)

(* Closed-form detector-stress benchmarks (DESIGN.md §15).  Kept out of
   [all]: Table 1 drives the repair experiments and its listings are
   golden-tested; these stress the detectors' memory bounds.  The
   repair-mode sources are small (the racy appendix is still genuinely
   repairable); the perf-mode sources are the ~10^6-access presets. *)

let scale_bench ~name ~descr ~(small : Progen.scale_config)
    ~(big : Progen.scale_config) : Bench.t =
  {
    name;
    suite = "Scale";
    descr;
    repair_params = Fmt.str "~%d accesses" (Progen.scale_accesses small);
    perf_params = Fmt.str "~%d accesses" (Progen.scale_accesses big);
    repair_src = Progen.generate_scaled small;
    perf_src = Progen.generate_scaled big;
  }

let scale : Bench.t list =
  [
    scale_bench ~name:"scale-grid"
      ~descr:"wide forasync over disjoint slices, racy appendix"
      ~small:
        { shape = Progen.Grid { tasks = 32; reps = 16 }; racy_pairs = 2 }
      ~big:(List.assoc "grid-1m" Progen.scale_presets);
    scale_bench ~name:"scale-hot"
      ~descr:"hot-address skew: shared read-mostly cells, racy appendix"
      ~small:
        {
          shape = Progen.Hot { tasks = 32; reps = 8; hot = 4 };
          racy_pairs = 2;
        }
      ~big:(List.assoc "hot-1m" Progen.scale_presets);
  ]

let find_scale name =
  List.find_opt
    (fun (b : Bench.t) ->
      String.lowercase_ascii b.name = String.lowercase_ascii name)
    scale
