(** NQueens (BOTS): count the solutions of the N-queens problem.  The
    first rank is explored by one async per column, each accumulating into
    its own slot of a result array (the BOTS per-branch accumulation
    idiom); the final reduction in [main] races with the branch writes
    until a finish wraps the exploration — matching the paper's tiny race
    count for this benchmark (Table 4: 4 races for n = 6). *)

let source ~n =
  Fmt.str
    {|
var n: int = %d;

def ok(board: int[], row: int, col: int): bool {
  for (r = 0 to row - 1) {
    val c: int = board[r];
    if (c == col) { return false; }
    if (c - (row - r) == col) { return false; }
    if (c + (row - r) == col) { return false; }
  }
  return true;
}

def search(board: int[], row: int, count: int[], slot: int) {
  if (row == n) {
    count[slot] = count[slot] + 1;
    return;
  }
  for (col = 0 to n - 1) {
    if (ok(board, row, col)) {
      board[row] = col;
      search(board, row + 1, count, slot);
    }
  }
}

def main() {
  val count: int[] = new int[n];
  finish {
    for (col = 0 to n - 1) {
      async {
        val board: int[] = new int[n];
        board[0] = col;
        search(board, 1, count, col);
      }
    }
  }
  var total: int = 0;
  for (col = 0 to n - 1) {
    total = total + count[col];
  }
  print(total);
}
|}
    n

let bench : Bench.t =
  {
    name = "Nqueens";
    suite = "BOTS";
    descr = "N Queens problem";
    repair_params = "6 (paper: 6)";
    perf_params = "9 (paper: 13, scaled to interpreter)";
    repair_src = source ~n:6;
    perf_src = source ~n:9;
  }
