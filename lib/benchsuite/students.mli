(** Synthetic student homework submissions and their grading (paper §7.4).

    59 deterministic quicksort variants in the paper's mistake-class
    proportions — 5 racy, 29 over-synchronized, 25 optimal — graded by the
    real pipeline: races remaining, then critical-path comparison against
    the tool's own repair. *)

type expected = Racy | Oversync | Optimal

val pp_expected : expected Fmt.t

type submission = { id : int; expected : expected; src : string }

(** The 59 submissions.  @param n array size of the sorting exercise. *)
val submissions : ?n:int -> unit -> submission list

type verdict = {
  submission : submission;
  graded : expected;  (** the tool's classification *)
  races : int;
  cpl : int;  (** submission's critical path length *)
  tool_cpl : int;  (** critical path length of the tool's repair *)
}

val grade : submission -> verdict

type summary = { racy : int; oversync : int; optimal : int; mismatches : int }

(** Grade the whole class; the paper's counts are 5 / 29 / 25. *)
val grade_all : ?n:int -> unit -> summary * verdict list
