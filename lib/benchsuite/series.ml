(** Series (JGF): Fourier coefficient analysis.  One async per coefficient
    pair, each integrating [f(x) = (x+1)^x] by the trapezoid rule into its
    own array slots; [main] then inspects a handful of coefficients, which
    is why the paper reports only 6 races for this benchmark (Table 4). *)

let source ~rows ~points =
  Fmt.str
    {|
var rows: int = %d;
var points: int = %d;

def thefunction(x: float, omegan: float, select: int): float {
  if (select == 0) { return pow(x + 1.0, x); }
  if (select == 1) { return pow(x + 1.0, x) * cos(omegan * x); }
  return pow(x + 1.0, x) * sin(omegan * x);
}

def trapezoid(a: float[], b: float[], i: int) {
  val omegan: float = 3.1415926535897931 * float(i);
  val dx: float = 2.0 / float(points);
  var sumA: float = 0.0;
  var sumB: float = 0.0;
  var x: float = 0.0;
  var selA: int = 1;
  var selB: int = 2;
  if (i == 0) { selA = 0; }
  for (p = 0 to points - 1) {
    val fa: float = thefunction(x, omegan, selA);
    val fb: float = thefunction(x + dx, omegan, selA);
    sumA = sumA + (fa + fb) * 0.5 * dx;
    if (i > 0) {
      val ga: float = thefunction(x, omegan, selB);
      val gb: float = thefunction(x + dx, omegan, selB);
      sumB = sumB + (ga + gb) * 0.5 * dx;
    }
    x = x + dx;
  }
  a[i] = sumA / 2.0;
  b[i] = sumB / 2.0;
}

def main() {
  val a: float[] = new float[rows];
  val b: float[] = new float[rows];
  finish {
    forasync (i = 0 to rows - 1) {
      trapezoid(a, b, i);
    }
  }
  print(a[0]);
  print(a[1]);
  print(b[1]);
}
|}
    rows points

let bench : Bench.t =
  {
    name = "Series";
    suite = "JGF";
    descr = "Fourier coefficient analysis";
    repair_params = "rows = 25 (paper: 25)";
    perf_params = "rows = 400 (paper: 100,000, scaled to interpreter)";
    repair_src = source ~rows:25 ~points:20;
    perf_src = source ~rows:400 ~points:20;
  }
