(** LUFact (JGF): LU factorization by Gaussian elimination (no pivoting;
    the matrix is made diagonally dominant so elimination is stable).
    Elimination step k updates all rows below k in parallel; step k+1
    reads them, so each step needs a finish — the highest per-input race
    count of the suite after mergesort (Table 2: 99,563 at 25 x 25)
    because every trailing submatrix cell is rewritten each step. *)

let source ~n =
  Fmt.str
    {|
var n: int = %d;

def eliminate_row(a: float[][], k: int, i: int) {
  val pivot_row: float[] = a[k];
  val row: float[] = a[i];
  val factor: float = row[k] / pivot_row[k];
  row[k] = factor;
  for (j = k + 1 to n - 1) {
    row[j] = row[j] - factor * pivot_row[j];
  }
}

def main() {
  val a: float[][] = new float[n][n];
  var s: int = 16180;
  for (i = 0 to n - 1) {
    for (j = 0 to n - 1) {
      s = (s * 1103515 + 12345) %% 100000;
      a[i][j] = float(s) / 100000.0;
      if (i == j) {
        a[i][j] = a[i][j] + float(n);
      }
    }
  }
  for (k = 0 to n - 2) {
    finish {
      for (i = k + 1 to n - 1) {
        async {
          eliminate_row(a, k, i);
        }
      }
    }
  }
  var trace: float = 0.0;
  for (i = 0 to n - 1) {
    trace = trace + a[i][i];
  }
  print(trace);
}
|}
    n

let bench : Bench.t =
  {
    name = "LUFact";
    suite = "JGF";
    descr = "LU factorization";
    repair_params = "20 x 20 (paper: 25 x 25)";
    perf_params = "40 x 40 (paper: 1000 x 1000, scaled)";
    repair_src = source ~n:20;
    perf_src = source ~n:40;
  }
