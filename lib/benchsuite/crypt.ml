(** Crypt (JGF): parallel block encryption/decryption.  The JGF benchmark
    runs IDEA over a byte array in parallel chunks; we use a reversible
    mixed congruential cipher over int cells (same dependence structure:
    decrypt chunk k reads what encrypt chunk k wrote, and the final
    comparison reads everything), with one async per chunk and a finish
    between the phases. *)

let source ~n ~chunks =
  Fmt.str
    {|
var n: int = %d;
var chunks: int = %d;

def encrypt_chunk(plain: int[], crypt: int[], c: int) {
  val lo: int = c * (n / chunks);
  var hi: int = (c + 1) * (n / chunks) - 1;
  if (c == chunks - 1) { hi = n - 1; }
  for (i = lo to hi) {
    crypt[i] = (plain[i] * 171 + (i %% 251)) %% 65537;
  }
}

def decrypt_chunk(crypt: int[], out: int[], c: int) {
  val lo: int = c * (n / chunks);
  var hi: int = (c + 1) * (n / chunks) - 1;
  if (c == chunks - 1) { hi = n - 1; }
  for (i = lo to hi) {
    var v: int = crypt[i] - (i %% 251);
    v = v %% 65537;
    if (v < 0) { v = v + 65537; }
    out[i] = (v * 52123) %% 65537;
  }
}

def main() {
  val plain: int[] = new int[n];
  val crypt: int[] = new int[n];
  val out: int[] = new int[n];
  var x: int = 31415;
  for (i = 0 to n - 1) {
    x = (x * 1103515 + 12345) %% 255;
    plain[i] = x;
  }
  finish {
    for (c = 0 to chunks - 1) {
      async {
        encrypt_chunk(plain, crypt, c);
      }
    }
  }
  finish {
    for (c = 0 to chunks - 1) {
      async {
        decrypt_chunk(crypt, out, c);
      }
    }
  }
  var mismatches: int = 0;
  for (i = 0 to n - 1) {
    if (plain[i] != out[i]) { mismatches = mismatches + 1; }
  }
  print(mismatches);
}
|}
    n chunks

let bench : Bench.t =
  {
    name = "Crypt";
    suite = "JGF";
    descr = "IDEA-style encryption/decryption";
    repair_params = "3,000 (paper: 3,000)";
    perf_params = "20,000 (paper: 50,000,000, scaled)";
    repair_src = source ~n:3000 ~chunks:8;
    perf_src = source ~n:20000 ~chunks:16;
  }
