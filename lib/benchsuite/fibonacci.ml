(** Fibonacci (HJ Bench): the paper's running example (Figures 8/15).
    Each call spawns two recursive asyncs whose results are combined by the
    parent; the expert placement is a finish around the two asyncs. *)

let source ~n =
  Fmt.str
    {|
def fib(ret: int[], reti: int, n: int) {
  if (n < 2) {
    ret[reti] = n;
    return;
  }
  val x: int[] = new int[1];
  val y: int[] = new int[1];
  finish {
    async fib(x, 0, n - 1);
    async fib(y, 0, n - 2);
  }
  ret[reti] = x[0] + y[0];
}

def main() {
  val r: int[] = new int[1];
  finish {
    async fib(r, 0, %d);
  }
  print(r[0]);
}
|}
    n

let bench : Bench.t =
  {
    name = "Fibonacci";
    suite = "HJ Bench";
    descr = "Compute nth Fibonacci number";
    repair_params = "16 (paper: 16)";
    perf_params = "21 (paper: 40, scaled to interpreter)";
    repair_src = source ~n:16;
    perf_src = source ~n:21;
  }
