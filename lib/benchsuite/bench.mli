(** A Table 1 benchmark: Mini-HJ source at the paper's two input sizes
    (scaled to an interpreter where necessary; the scaling is recorded in
    the parameter strings and EXPERIMENTS.md). *)

type t = {
  name : string;
  suite : string;  (** provenance: HJ Bench / BOTS / JGF / Shootout *)
  descr : string;  (** Table 1 description *)
  repair_params : string;  (** input size used in repair mode *)
  perf_params : string;  (** input size used for performance runs *)
  repair_src : string;
  perf_src : string;
}

(** Compile the repair-mode program (with its expert finish placements). *)
val repair_program : t -> Mhj.Ast.program

(** Compile the performance-mode program. *)
val perf_program : t -> Mhj.Ast.program

(** The paper's §7.1 buggy version: all finish statements removed. *)
val stripped_program : t -> Mhj.Ast.program

val stripped_perf_program : t -> Mhj.Ast.program
