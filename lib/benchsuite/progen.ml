(** Random async-finish program generator for property-based testing.

    Generates well-typed, terminating, normalized Mini-HJ programs that
    exercise the whole pipeline: random block structure with nested
    [async]/[finish]/[if]/[for]/blocks, reads and writes of a small pool of
    shared global arrays, deterministic arithmetic, and [work(...)] calls
    for varied step durations.  The driving properties (see
    [test/test_properties.ml]):

    - repair converges and the repaired program is race-free;
    - the repaired program's output equals the serial elision's output
      (paper Problem 1, condition 4);
    - statement order and count are preserved modulo inserted finishes.

    Programs use only bounded [for] loops and non-recursive helper calls,
    so every generated program terminates. *)

type config = {
  max_depth : int;  (** structural nesting bound *)
  max_stmts : int;  (** statements per block bound *)
  n_arrays : int;  (** shared global arrays *)
  arr_len : int;
  allow_finish : bool;  (** emit pre-existing finish statements *)
  allow_calls : bool;  (** emit helper-function calls *)
  det_branches : bool;
      (** make every [if] condition schedule-independent (no reads of
          shared state), so a racy program still executes the same
          access set under every schedule — required by the parallel
          detection differential, which compares race sets across
          schedules *)
}

let default =
  {
    max_depth = 4;
    max_stmts = 5;
    n_arrays = 3;
    arr_len = 8;
    allow_finish = true;
    allow_calls = true;
    det_branches = false;
  }

let arr_name k = Fmt.str "g%d" k

(* A random in-bounds index expression: constant, or derived from the
   loop variable when one is in scope. *)
let gen_index cfg rng ~loop_vars =
  match loop_vars with
  | v :: _ when Tdrutil.Prng.bool rng ->
      Fmt.str "(%s + %d) %% %d" v (Tdrutil.Prng.int rng cfg.arr_len) cfg.arr_len
  | _ -> string_of_int (Tdrutil.Prng.int rng cfg.arr_len)

let gen_value_expr cfg rng ~loop_vars =
  match Tdrutil.Prng.int rng 4 with
  | 0 -> string_of_int (Tdrutil.Prng.int rng 100)
  | 1 ->
      Fmt.str "%s[%s] + %d"
        (arr_name (Tdrutil.Prng.int rng cfg.n_arrays))
        (gen_index cfg rng ~loop_vars)
        (Tdrutil.Prng.int rng 10)
  | 2 -> (
      match loop_vars with
      | v :: _ -> Fmt.str "%s * %d" v (1 + Tdrutil.Prng.int rng 5)
      | [] -> string_of_int (Tdrutil.Prng.int rng 100))
  | _ ->
      Fmt.str "%s[%s] * 2"
        (arr_name (Tdrutil.Prng.int rng cfg.n_arrays))
        (gen_index cfg rng ~loop_vars)

let rec gen_stmt cfg rng ~depth ~loop_vars ~locals ~in_helper buf indent =
  let pad = String.make (2 * indent) ' ' in
  let choice =
    Tdrutil.Prng.int rng (if depth >= cfg.max_depth then 5 else 13)
  in
  match choice with
  | 0 | 1 ->
      (* write *)
      Buffer.add_string buf
        (Fmt.str "%s%s[%s] = %s;\n" pad
           (arr_name (Tdrutil.Prng.int rng cfg.n_arrays))
           (gen_index cfg rng ~loop_vars)
           (gen_value_expr cfg rng ~loop_vars))
  | 2 ->
      (* read into sink *)
      Buffer.add_string buf
        (Fmt.str "%ssink[0] = sink[0] + %s[%s];\n" pad
           (arr_name (Tdrutil.Prng.int rng cfg.n_arrays))
           (gen_index cfg rng ~loop_vars))
  | 3 ->
      (* work *)
      Buffer.add_string buf
        (Fmt.str "%swork(%d);\n" pad (1 + Tdrutil.Prng.int rng 20))
  | 4 ->
      (* immutable local declaration + immediate use; later statements of
         this block may reference it too (see gen_block), which exercises
         the repair tool's declaration-visibility constraint *)
      let name = Fmt.str "t%d" (List.length !locals + List.length loop_vars) in
      Buffer.add_string buf
        (Fmt.str "%sval %s: int = %s;\n" pad name
           (gen_value_expr cfg rng ~loop_vars));
      Buffer.add_string buf
        (Fmt.str "%s%s[%s] = %s + %d;\n" pad
           (arr_name (Tdrutil.Prng.int rng cfg.n_arrays))
           (gen_index cfg rng ~loop_vars)
           name
           (Tdrutil.Prng.int rng 5));
      locals := name :: !locals
  | 5 ->
      (* async: may read the enclosing block's immutable locals *)
      (match !locals with
      | x :: _ when Tdrutil.Prng.bool rng ->
          Buffer.add_string buf (pad ^ "async {\n");
          Buffer.add_string buf
            (Fmt.str "%s  %s[%s] = %s * 2;\n" pad
               (arr_name (Tdrutil.Prng.int rng cfg.n_arrays))
               (gen_index cfg rng ~loop_vars)
               x);
          gen_block cfg rng ~depth:(depth + 1) ~loop_vars ~in_helper buf
            (indent + 1);
          Buffer.add_string buf (pad ^ "}\n")
      | _ ->
          Buffer.add_string buf (pad ^ "async {\n");
          gen_block cfg rng ~depth:(depth + 1) ~loop_vars ~in_helper buf
            (indent + 1);
          Buffer.add_string buf (pad ^ "}\n"))
  | 6 when cfg.allow_finish ->
      Buffer.add_string buf (pad ^ "finish {\n");
      gen_block cfg rng ~depth:(depth + 1) ~loop_vars ~in_helper buf
        (indent + 1);
      Buffer.add_string buf (pad ^ "}\n")
  | 7 ->
      (* if: the condition reads shared state by default; [det_branches]
         substitutes a schedule-independent one (the array/index draws
         still happen, keeping the RNG stream aligned across configs) *)
      (* right-to-left draw order matches the old inlined Fmt.str call,
         keeping default-config streams byte-identical *)
      let idx = gen_index cfg rng ~loop_vars in
      let arr = arr_name (Tdrutil.Prng.int rng cfg.n_arrays) in
      let cond =
        if not cfg.det_branches then Fmt.str "%s[%s] %% 2 == 0" arr idx
        else
          match loop_vars with
          | v :: _ -> Fmt.str "%s %% 2 == 0" v
          | [] -> Fmt.str "%d %% 2 == 0" (Tdrutil.Prng.int rng 10)
      in
      Buffer.add_string buf (Fmt.str "%sif (%s) {\n" pad cond);
      gen_block cfg rng ~depth:(depth + 1) ~loop_vars ~in_helper buf
        (indent + 1);
      Buffer.add_string buf (pad ^ "}\n")
  | 8 ->
      (* bounded for (sometimes a forasync) *)
      let v = Fmt.str "i%d" (List.length loop_vars) in
      let kw = if Tdrutil.Prng.int rng 4 = 0 then "forasync" else "for" in
      Buffer.add_string buf
        (Fmt.str "%s%s (%s = 0 to %d) {\n" pad kw v
           (1 + Tdrutil.Prng.int rng 2));
      gen_block cfg rng ~depth:(depth + 1) ~loop_vars:(v :: loop_vars)
        ~in_helper buf (indent + 1);
      Buffer.add_string buf (pad ^ "}\n")
  | 9 when cfg.allow_calls && not in_helper ->
      Buffer.add_string buf
        (Fmt.str "%shelper%d();\n" pad (Tdrutil.Prng.int rng 2))
  | 11 ->
      (* affine parallel loop over provably disjoint cells: every
         iteration writes g[a*i + b] with a != 0 (sometimes strided,
         sometimes an interleaved even/odd pair), so the index-sensitive
         refinement can discharge the cross-iteration self-pair; values
         avoid array reads so the loop's conflicts are all refinable *)
      let arr = arr_name (Tdrutil.Prng.int rng cfg.n_arrays) in
      let v = Fmt.str "i%d" (List.length loop_vars) in
      (match Tdrutil.Prng.int rng 3 with
      | 0 ->
          (* g[i] = ... *)
          Buffer.add_string buf
            (Fmt.str "%sforasync (%s = 0 to %d) {\n%s  %s[%s] = %s * %d;\n%s}\n"
               pad v (cfg.arr_len - 1) pad arr v v
               (1 + Tdrutil.Prng.int rng 5)
               pad)
      | 1 ->
          (* strided: g[a*i + b] = ... *)
          let a = 2 + Tdrutil.Prng.int rng 2 in
          let b = Tdrutil.Prng.int rng a in
          let hi = (cfg.arr_len - 1 - b) / a in
          Buffer.add_string buf
            (Fmt.str
               "%sforasync (%s = 0 to %d) {\n%s  %s[%s * %d + %d] = %d;\n%s}\n"
               pad v hi pad arr v a b
               (Tdrutil.Prng.int rng 100)
               pad)
      | _ ->
          (* interleaved even/odd cells within one iteration *)
          let hi = (cfg.arr_len - 2) / 2 in
          Buffer.add_string buf
            (Fmt.str
               "%sforasync (%s = 0 to %d) {\n\
                %s  %s[2 * %s] = %s;\n\
                %s  %s[2 * %s + 1] = %d;\n\
                %s}\n"
               pad v hi pad arr v v pad arr v
               (Tdrutil.Prng.int rng 100)
               pad))
  | 12 ->
      (* affine parallel loop that genuinely races: neighbouring cells
         overlap across iterations (g[i] vs g[i+1]), or every iteration
         hits one constant cell — the refinement must keep these *)
      let arr = arr_name (Tdrutil.Prng.int rng cfg.n_arrays) in
      let v = Fmt.str "i%d" (List.length loop_vars) in
      if Tdrutil.Prng.bool rng then
        Buffer.add_string buf
          (Fmt.str
             "%sforasync (%s = 0 to %d) {\n\
              %s  %s[%s] = %s + 1;\n\
              %s  %s[%s + 1] = %s;\n\
              %s}\n"
             pad v (cfg.arr_len - 2) pad arr v v pad arr v v pad)
      else
        Buffer.add_string buf
          (Fmt.str "%sforasync (%s = 0 to %d) {\n%s  %s[%d] = %s;\n%s}\n"
             pad v (cfg.arr_len - 1) pad arr
             (Tdrutil.Prng.int rng cfg.arr_len)
             v pad)
  | _ ->
      (* nested block *)
      Buffer.add_string buf (pad ^ "{\n");
      gen_block cfg rng ~depth:(depth + 1) ~loop_vars ~in_helper buf
        (indent + 1);
      Buffer.add_string buf (pad ^ "}\n")

and gen_block cfg rng ~depth ~loop_vars ~in_helper buf indent =
  let n = 1 + Tdrutil.Prng.int rng cfg.max_stmts in
  let locals = ref [] in
  for _ = 1 to n do
    gen_stmt cfg rng ~depth ~loop_vars ~locals ~in_helper buf indent
  done;
  (* close the block with a read of each declared local so that wrapping
     decisions must respect declaration visibility *)
  List.iter
    (fun x ->
      Buffer.add_string buf
        (Fmt.str "%ssink[0] = sink[0] + %s;\n"
           (String.make (2 * indent) ' ')
           x))
    !locals

(** Generate a program from a seed.  Same seed, same program. *)
let generate ?(cfg = default) ~seed () : string =
  let rng = Tdrutil.Prng.create ~seed in
  let buf = Buffer.create 1024 in
  for k = 0 to cfg.n_arrays - 1 do
    Buffer.add_string buf
      (Fmt.str "var %s: int[] = new int[%d];\n" (arr_name k) cfg.arr_len)
  done;
  Buffer.add_string buf (Fmt.str "var sink: int[] = new int[1];\n\n");
  if cfg.allow_calls then
    for h = 0 to 1 do
      Buffer.add_string buf (Fmt.str "def helper%d() {\n" h);
      gen_block cfg rng ~depth:2 ~loop_vars:[] ~in_helper:true buf 1;
      Buffer.add_string buf "}\n\n"
    done;
  Buffer.add_string buf "def main() {\n";
  gen_block cfg rng ~depth:0 ~loop_vars:[] ~in_helper:false buf 1;
  (* a final read of everything, so unsynchronized writes race *)
  Buffer.add_string buf
    (Fmt.str "  for (v = 0 to %d) {\n" (cfg.arr_len - 1));
  for k = 0 to cfg.n_arrays - 1 do
    Buffer.add_string buf
      (Fmt.str "    sink[0] = sink[0] + %s[v];\n" (arr_name k))
  done;
  Buffer.add_string buf "  }\n  print(sink[0]);\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Closed-form scale workloads                                          *)
(* ------------------------------------------------------------------ *)

type scale_shape =
  | Grid of { tasks : int; reps : int }
  | Deep of { depth : int; reps : int }
  | Hot of { tasks : int; reps : int; hot : int }
  | Phased of { phases : int; tasks : int; reps : int; hot : int }
  | Sparse of { pad_arrays : int; pad_len : int; tasks : int; reps : int }

type scale_config = { shape : scale_shape; racy_pairs : int }

(* Per inner-loop iteration, the interpreter monitors the global-variable
   read of each array base in addition to the cell accesses: [g[x] = g[x]
   + e] is 4 monitored accesses (2 base reads, 1 cell read, 1 cell
   write), and the Hot/Phased body [g[i] = g[i] + hot[..]] is 6. *)
let scale_accesses { shape; racy_pairs } =
  let body =
    match shape with
    | Grid { tasks; reps } -> 4 * tasks * reps
    | Deep { depth; reps } -> 4 * depth * reps
    | Hot { tasks; reps; hot } -> (6 * tasks * reps) + (2 * hot)
    | Phased { phases; tasks; reps; hot } ->
        (6 * phases * tasks * reps) + (2 * hot)
    | Sparse { tasks; reps; _ } -> 4 * tasks * reps
  in
  (* each racy pair: a bare write plus a read-increment, with base reads *)
  body + (6 * racy_pairs)

let check_pos what n =
  if n <= 0 then invalid_arg (Fmt.str "Progen scale: %s must be positive" what)

(* [racy_pairs] unjoined async pairs on dedicated cells of [r], emitted
   after the main workload.  Pair [k] produces exactly two deterministic
   race records on [r[k]] (a write-read and a write-write), so the
   config's race density — and with a small spill cap, the spill path —
   is under test control without perturbing the main phase. *)
let add_racy buf racy_pairs =
  if racy_pairs > 0 then begin
    Buffer.add_string buf "  finish {\n";
    for k = 0 to racy_pairs - 1 do
      Buffer.add_string buf
        (Fmt.str "    async {\n      r[%d] = %d;\n    }\n" k k);
      Buffer.add_string buf
        (Fmt.str "    async {\n      r[%d] = r[%d] + 1;\n    }\n" k k)
    done;
    Buffer.add_string buf "  }\n"
  end

let add_header buf ~racy_pairs decls =
  List.iter
    (fun (name, len) ->
      Buffer.add_string buf (Fmt.str "var %s: int[] = new int[%d];\n" name len))
    decls;
  Buffer.add_string buf
    (Fmt.str "var r: int[] = new int[%d];\n\n" (max 1 racy_pairs));
  Buffer.add_string buf "def main() {\n"

let add_footer buf ~racy_pairs ~result =
  add_racy buf racy_pairs;
  Buffer.add_string buf (Fmt.str "  print(%s + r[0]);\n}\n" result)

(** Generate the Mini-HJ source of a scale workload: a closed-form
    program whose monitored-access count is [scale_accesses cfg] up to
    small constants, race-free except for the [racy_pairs] appendix.

    - [Grid]: one wide [forasync] over provably disjoint array slices —
      peak parallelism with a large, uniformly touched address space.
    - [Deep]: a [depth]-long chain of nested [finish { async { ... } }]
      levels, each doing [reps] accesses — stresses live-task state
      (clock count, bag depth), not address volume.
    - [Hot]: wide [forasync] where every task's inner loop re-reads a
      small shared [hot] array — address skew: a few cells accumulate
      reader entries from every task.
    - [Phased]: [phases] sequential top-level finishes of the [Hot]
      shape over the {e same} arrays — after each phase only the root
      task is live, so epoch GC can retire the previous phase's shadow
      entries; without GC the hot cells' lists grow by [tasks] entries
      per phase. *)
let generate_scaled { shape; racy_pairs } : string =
  if racy_pairs < 0 then invalid_arg "Progen scale: racy_pairs negative";
  let buf = Buffer.create 4096 in
  (match shape with
  | Grid { tasks; reps } ->
      check_pos "tasks" tasks;
      check_pos "reps" reps;
      add_header buf ~racy_pairs [ ("g", tasks * reps) ];
      Buffer.add_string buf
        (Fmt.str
           "  finish {\n\
           \    forasync (i = 0 to %d) {\n\
           \      for (j = 0 to %d) {\n\
           \        g[i * %d + j] = g[i * %d + j] + j;\n\
           \      }\n\
           \    }\n\
           \  }\n"
           (tasks - 1) (reps - 1) reps reps);
      add_footer buf ~racy_pairs ~result:"g[0]"
  | Deep { depth; reps } ->
      check_pos "depth" depth;
      check_pos "reps" reps;
      (* cells are shared across levels, but every level's task is an
         ancestor of the next level's, so all conflicts are ordered *)
      let len = min (depth * reps) 65536 in
      add_header buf ~racy_pairs [ ("g", len) ];
      for d = 0 to depth - 1 do
        Buffer.add_string buf
          (Fmt.str
             "  finish {\n\
             \  async {\n\
             \  for (j%d = 0 to %d) {\n\
             \    g[(%d + j%d) %% %d] = g[(%d + j%d) %% %d] + 1;\n\
             \  }\n"
             d (reps - 1) (d * reps) d len (d * reps) d len)
      done;
      for _ = 1 to depth do
        Buffer.add_string buf "  }\n  }\n"
      done;
      add_footer buf ~racy_pairs ~result:"g[0]"
  | Sparse { pad_arrays; pad_len; tasks; reps } ->
      check_pos "pad_arrays" pad_arrays;
      check_pos "pad_len" pad_len;
      check_pos "tasks" tasks;
      check_pos "reps" reps;
      (* the pad arrays are declared (so their cells occupy the interned
         id space) but never accessed; all traffic lands in the last
         declared array, i.e. the top of the id range — a monolithic
         shadow must span every pad id, a chunked one only the touched
         tail *)
      let pads =
        List.init pad_arrays (fun k -> (Fmt.str "p%d" k, pad_len))
      in
      add_header buf ~racy_pairs (pads @ [ ("g", tasks * reps) ]);
      Buffer.add_string buf
        (Fmt.str
           "  finish {\n\
           \    forasync (i = 0 to %d) {\n\
           \      for (j = 0 to %d) {\n\
           \        g[i * %d + j] = g[i * %d + j] + j;\n\
           \      }\n\
           \    }\n\
           \  }\n"
           (tasks - 1) (reps - 1) reps reps);
      add_footer buf ~racy_pairs ~result:"g[0]"
  | Hot { tasks; reps; hot } ->
      check_pos "tasks" tasks;
      check_pos "reps" reps;
      check_pos "hot" hot;
      add_header buf ~racy_pairs [ ("g", tasks); ("hot", hot) ];
      Buffer.add_string buf
        (Fmt.str "  for (k = 0 to %d) {\n    hot[k] = k;\n  }\n" (hot - 1));
      Buffer.add_string buf
        (Fmt.str
           "  finish {\n\
           \    forasync (i = 0 to %d) {\n\
           \      for (j = 0 to %d) {\n\
           \        g[i] = g[i] + hot[j %% %d];\n\
           \      }\n\
           \    }\n\
           \  }\n"
           (tasks - 1) (reps - 1) hot);
      add_footer buf ~racy_pairs ~result:"g[0]"
  | Phased { phases; tasks; reps; hot } ->
      check_pos "phases" phases;
      check_pos "tasks" tasks;
      check_pos "reps" reps;
      check_pos "hot" hot;
      add_header buf ~racy_pairs [ ("g", tasks); ("hot", hot) ];
      Buffer.add_string buf
        (Fmt.str "  for (k = 0 to %d) {\n    hot[k] = k;\n  }\n" (hot - 1));
      for p = 0 to phases - 1 do
        Buffer.add_string buf
          (Fmt.str
             "  finish {\n\
             \    forasync (i = 0 to %d) {\n\
             \      for (j = 0 to %d) {\n\
             \        g[i] = g[i] + hot[(j + %d) %% %d];\n\
             \      }\n\
             \    }\n\
             \  }\n"
             (tasks - 1) (reps - 1) p hot)
      done;
      add_footer buf ~racy_pairs ~result:"g[0]");
  Buffer.contents buf

(** Named full-size presets, each ~10^6 monitored accesses (the sizes
    the committed BENCH_scale.json rows use). *)
let scale_presets : (string * scale_config) list =
  [
    ("grid-1m", { shape = Grid { tasks = 1024; reps = 256 }; racy_pairs = 4 });
    ("deep-1m", { shape = Deep { depth = 512; reps = 512 }; racy_pairs = 2 });
    ( "hot-1m",
      { shape = Hot { tasks = 2048; reps = 85; hot = 64 }; racy_pairs = 8 } );
    ( "phased-1m",
      {
        shape = Phased { phases = 16; tasks = 256; reps = 43; hot = 64 };
        racy_pairs = 16;
      } );
    ( "sparse-1m",
      {
        shape =
          Sparse { pad_arrays = 64; pad_len = 65536; tasks = 1024; reps = 256 };
        racy_pairs = 4;
      } );
  ]
