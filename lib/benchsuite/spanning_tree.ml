(** Spanning Tree (HJ Bench): compute a spanning tree of an undirected
    graph by parallel vertex claiming.  Claiming uses the atomic [cas]
    builtin (HJ's isolated construct; exempt from race detection, see
    DESIGN.md); every task also records its edge visit unconditionally
    (as the HJ-bench version records per-vertex results), so the
    repairable races are the plain [visits]/[parent] writes inside the
    claiming tasks against the validation reads in [main] — fixed by one
    finish around the root [compute] call.

    The graph is a ring (guaranteeing connectivity) plus pseudo-random
    chords, built in-language from a deterministic LCG. *)

let source ~nodes ~neighbors =
  Fmt.str
    {|
var nnodes: int = %d;
var extra: int = %d;

def compute(adj: int[], off: int[], claimed: int[], parent: int[],
            visits: int[], v: int) {
  for (e = off[v] to off[v + 1] - 1) {
    async {
      visits[e] = 1;
      val w: int = adj[e];
      if (cas(claimed, w, 0, 1)) {
        parent[w] = v;
        compute(adj, off, claimed, parent, visits, w);
      }
    }
  }
}

def build_graph(deg: int[], adj: int[], off: int[]) {
  val n: int = nnodes;
  val half: int[] = new int[2 * extra * n];
  var x: int = 12345;
  var m: int = 0;
  for (v = 0 to n - 1) {
    deg[v] = 0;
  }
  for (v = 0 to n - 1) {
    val u: int = (v + 1) %% n;
    half[2 * m] = v;
    half[2 * m + 1] = u;
    m = m + 1;
    for (c = 0 to extra - 2) {
      x = (x * 1103515 + 12345) %% 1000000;
      val w: int = x %% n;
      if (w != v) {
        half[2 * m] = v;
        half[2 * m + 1] = w;
        m = m + 1;
      }
    }
  }
  for (e = 0 to m - 1) {
    deg[half[2 * e]] = deg[half[2 * e]] + 1;
    deg[half[2 * e + 1]] = deg[half[2 * e + 1]] + 1;
  }
  off[0] = 0;
  for (v = 0 to n - 1) {
    off[v + 1] = off[v] + deg[v];
  }
  val cursor: int[] = new int[n];
  for (v = 0 to n - 1) {
    cursor[v] = off[v];
  }
  for (e = 0 to m - 1) {
    val a: int = half[2 * e];
    val b: int = half[2 * e + 1];
    adj[cursor[a]] = b;
    cursor[a] = cursor[a] + 1;
    adj[cursor[b]] = a;
    cursor[b] = cursor[b] + 1;
  }
}

def main() {
  val n: int = nnodes;
  val deg: int[] = new int[n];
  val off: int[] = new int[n + 1];
  val adj: int[] = new int[4 * extra * n];
  build_graph(deg, adj, off);
  val claimed: int[] = new int[n];
  val parent: int[] = new int[n];
  val visits: int[] = new int[4 * extra * n];
  for (v = 0 to n - 1) {
    parent[v] = 0 - 1;
  }
  claimed[0] = 1;
  parent[0] = 0;
  finish {
    compute(adj, off, claimed, parent, visits, 0);
  }
  var in_tree: int = 0;
  for (v = 0 to n - 1) {
    if (parent[v] >= 0) { in_tree = in_tree + 1; }
  }
  var edges_visited: int = 0;
  for (e = 0 to alen(visits) - 1) {
    edges_visited = edges_visited + visits[e];
  }
  print(in_tree);
  print(edges_visited);
}
|}
    nodes neighbors

let bench : Bench.t =
  {
    name = "Spanning Tree";
    suite = "HJ Bench";
    descr = "Compute spanning tree of an undirected graph";
    repair_params = "nodes = 200, neighbors = 4 (paper: same)";
    perf_params = "nodes = 4,000, neighbors = 6 (paper: 1,000,000 x 100, scaled)";
    repair_src = source ~nodes:200 ~neighbors:4;
    perf_src = source ~nodes:4000 ~neighbors:6;
  }
