(** The Table 1 benchmark suite.

    Each benchmark provides its Mini-HJ source at two input sizes, matching
    the paper's "Repair" and "Performance" columns.  The paper's absolute
    sizes target a 12-core JVM; ours are scaled to a tree-walking
    interpreter (the per-benchmark scaling is recorded in [repair_params] /
    [perf_params] and in EXPERIMENTS.md) — the synchronization structure,
    which is what the repair tool consumes, is unchanged. *)

type t = {
  name : string;
  suite : string;  (** provenance: HJ Bench / BOTS / JGF / Shootout *)
  descr : string;  (** Table 1 description *)
  repair_params : string;  (** input size used in repair mode *)
  perf_params : string;  (** input size used for performance runs *)
  repair_src : string;
  perf_src : string;
}

(** Compile the repair-mode program (with its expert finish placements). *)
let repair_program (b : t) : Mhj.Ast.program = Mhj.Front.compile b.repair_src

(** Compile the performance-mode program. *)
let perf_program (b : t) : Mhj.Ast.program = Mhj.Front.compile b.perf_src

(** The paper's §7.1 buggy version: all finish statements removed. *)
let stripped_program (b : t) : Mhj.Ast.program =
  Mhj.Transform.strip_finishes (repair_program b)

let stripped_perf_program (b : t) : Mhj.Ast.program =
  Mhj.Transform.strip_finishes (perf_program b)
