(** Quicksort (HJ Bench): the paper's Figure 2.  The two recursive calls
    run as asyncs with {e no} finish inside [quicksort]; the expert (and
    optimal) placement is a single finish around the root call in [main],
    which is race-free yet keeps the recursion fully asynchronous. *)

let source ~n ~seed =
  Fmt.str
    {|
def partition(a: int[], m: int, n: int, out: int[]) {
  val pivot: int = a[(m + n) / 2];
  var i: int = m;
  var j: int = n;
  while (i <= j) {
    while (a[i] < pivot) { i = i + 1; }
    while (a[j] > pivot) { j = j - 1; }
    if (i <= j) {
      val t: int = a[i];
      a[i] = a[j];
      a[j] = t;
      i = i + 1;
      j = j - 1;
    }
  }
  out[0] = i;
  out[1] = j;
}

def quicksort(a: int[], m: int, n: int) {
  if (m < n) {
    val p: int[] = new int[2];
    partition(a, m, n, p);
    val i: int = p[0];
    val j: int = p[1];
    async quicksort(a, m, j);
    async quicksort(a, i, n);
  }
}

def fill(a: int[], seed: int) {
  var x: int = seed;
  for (i = 0 to alen(a) - 1) {
    x = (x * 1103515 + 12345) %% 100000;
    a[i] = x;
  }
}

def check_sorted(a: int[]): int {
  var bad: int = 0;
  for (i = 0 to alen(a) - 2) {
    if (a[i] > a[i + 1]) { bad = bad + 1; }
  }
  return bad;
}

def main() {
  val a: int[] = new int[%d];
  fill(a, %d);
  finish {
    quicksort(a, 0, alen(a) - 1);
  }
  print(check_sorted(a));
  print(a[0]);
  print(a[alen(a) - 1]);
}
|}
    n seed

let bench : Bench.t =
  {
    name = "Quicksort";
    suite = "HJ Bench";
    descr = "Quicksort";
    repair_params = "1,000 (paper: 1,000)";
    perf_params = "20,000 (paper: 100,000,000, scaled to interpreter)";
    repair_src = source ~n:1000 ~seed:42;
    perf_src = source ~n:20000 ~seed:42;
  }
