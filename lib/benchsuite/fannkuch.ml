(** FannKuch (Shootout): indexed access to a tiny integer sequence —
    maximum number of pancake flips over all permutations.  The search is
    parallelized over the first element of the permutation, one async per
    choice, each recording its branch maximum in its own slot; [main]
    reduces the slots, racing with the branch writes until the finish is
    restored. *)

let source ~n =
  Fmt.str
    {|
var n: int = %d;

def count_flips(perm: int[]): int {
  val work: int[] = new int[n];
  for (i = 0 to n - 1) {
    work[i] = perm[i];
  }
  var flips: int = 0;
  while (work[0] != 0) {
    val f: int = work[0];
    var i: int = 0;
    var j: int = f;
    while (i < j) {
      val t: int = work[i];
      work[i] = work[j];
      work[j] = t;
      i = i + 1;
      j = j - 1;
    }
    flips = flips + 1;
  }
  return flips;
}

def search(perm: int[], depth: int, maxf: int[], slot: int) {
  if (depth == n) {
    val f: int = count_flips(perm);
    if (f > maxf[slot]) {
      maxf[slot] = f;
    }
    return;
  }
  for (i = depth to n - 1) {
    val t: int = perm[depth];
    perm[depth] = perm[i];
    perm[i] = t;
    search(perm, depth + 1, maxf, slot);
    val u: int = perm[depth];
    perm[depth] = perm[i];
    perm[i] = u;
  }
}

def main() {
  val maxf: int[] = new int[n];
  finish {
    for (first = 0 to n - 1) {
      async {
        val perm: int[] = new int[n];
        perm[0] = first;
        var k: int = 1;
        for (v = 0 to n - 1) {
          if (v != first) {
            perm[k] = v;
            k = k + 1;
          }
        }
        search(perm, 1, maxf, first);
      }
    }
  }
  var best: int = 0;
  for (i = 0 to n - 1) {
    if (maxf[i] > best) { best = maxf[i]; }
  }
  print(best);
}
|}
    n

let bench : Bench.t =
  {
    name = "FannKuch";
    suite = "Shootout";
    descr = "Indexed access to tiny integer sequence";
    repair_params = "6 (paper: 6)";
    perf_params = "8 (paper: 12, scaled to interpreter)";
    repair_src = source ~n:6;
    perf_src = source ~n:8;
  }
