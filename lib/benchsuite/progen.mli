(** Random async-finish program generator for property-based testing:
    well-typed, terminating, normalized Mini-HJ programs with random
    nested async/finish/if/for/block structure over a small pool of shared
    global arrays, plus a final read of everything so that unsynchronized
    writes race.  The mix includes affine array-subscript parallel loops —
    both provably disjoint variants (identity, strided, even/odd
    interleaved subscripts) and genuinely racy ones (neighbouring-cell
    overlap, constant cell) — so differential properties exercise the
    index-sensitive static refinement in both directions. *)

type config = {
  max_depth : int;  (** structural nesting bound *)
  max_stmts : int;  (** statements per block bound *)
  n_arrays : int;  (** shared global arrays *)
  arr_len : int;
  allow_finish : bool;  (** emit pre-existing finish statements *)
  allow_calls : bool;  (** emit helper-function calls *)
  det_branches : bool;
      (** make every [if] condition schedule-independent (no shared-state
          reads), so racy programs execute the same access set under
          every schedule — for parallel-detection differentials *)
}

val default : config

(** Generate a program source from a seed; same seed, same program. *)
val generate : ?cfg:config -> seed:int -> unit -> string

(** {1 Closed-form scale workloads}

    Deterministic (seed-free) programs whose monitored-access count is a
    closed form of the configuration — the scale bench and the
    memory-bound differentials dial them from ~10^5 to ~10^7 accesses.
    Race-free except for a [racy_pairs]-controlled appendix of unjoined
    async pairs, each contributing exactly two deterministic race
    records. *)

type scale_shape =
  | Grid of { tasks : int; reps : int }
      (** one wide [forasync] over disjoint array slices: peak
          parallelism, large uniformly-touched address space *)
  | Deep of { depth : int; reps : int }
      (** a chain of nested [finish { async { ... } }] levels: stresses
          live-task state (clocks, bag depth), not address volume *)
  | Hot of { tasks : int; reps : int; hot : int }
      (** address skew: every task re-reads a tiny shared array, whose
          cells accumulate reader entries from all tasks *)
  | Phased of { phases : int; tasks : int; reps : int; hot : int }
      (** sequential top-level finish phases of the [Hot] shape over the
          same arrays — the epoch-GC workload: each phase close makes
          the previous phase's shadow entries retirable *)
  | Sparse of { pad_arrays : int; pad_len : int; tasks : int; reps : int }
      (** large interned id space ([pad_arrays * pad_len] never-accessed
          pad cells) with all traffic in the last-declared array — the
          slab-layout workload: a monolithic shadow spans every pad id,
          a chunked one only the touched tail *)

type scale_config = { shape : scale_shape; racy_pairs : int }

(** Monitored accesses the generated program performs, up to small
    additive constants (array init and the final print). *)
val scale_accesses : scale_config -> int

(** Mini-HJ source of the workload.
    @raise Invalid_argument on non-positive dimensions. *)
val generate_scaled : scale_config -> string

(** Named full-size presets (~10^6 accesses each), as committed in
    BENCH_scale.json. *)
val scale_presets : (string * scale_config) list
