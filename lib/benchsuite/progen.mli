(** Random async-finish program generator for property-based testing:
    well-typed, terminating, normalized Mini-HJ programs with random
    nested async/finish/if/for/block structure over a small pool of shared
    global arrays, plus a final read of everything so that unsynchronized
    writes race.  The mix includes affine array-subscript parallel loops —
    both provably disjoint variants (identity, strided, even/odd
    interleaved subscripts) and genuinely racy ones (neighbouring-cell
    overlap, constant cell) — so differential properties exercise the
    index-sensitive static refinement in both directions. *)

type config = {
  max_depth : int;  (** structural nesting bound *)
  max_stmts : int;  (** statements per block bound *)
  n_arrays : int;  (** shared global arrays *)
  arr_len : int;
  allow_finish : bool;  (** emit pre-existing finish statements *)
  allow_calls : bool;  (** emit helper-function calls *)
  det_branches : bool;
      (** make every [if] condition schedule-independent (no shared-state
          reads), so racy programs execute the same access set under
          every schedule — for parallel-detection differentials *)
}

val default : config

(** Generate a program source from a seed; same seed, same program. *)
val generate : ?cfg:config -> seed:int -> unit -> string
