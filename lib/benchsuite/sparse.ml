(** Sparse (JGF): sparse matrix-vector multiplication, iterated.  As in
    JGF, the rows are divided into bands (one async per band, the paper's
    thread count); each multiply iteration reads the vector written by the
    previous one, so a finish separates iterations, and the final norm
    reads the result.  The paper reports more MRW than SRW races here
    (Table 4: 260 vs 100) because result cells have several racing
    accesses. *)

let source ~size ~nz_per_row ~iters ~bands =
  Fmt.str
    {|
var size: int = %d;
var nzrow: int = %d;
var iters: int = %d;
var bands: int = %d;

def multiply_band(vals: int[], cols: int[], x: int[], y: int[], b: int) {
  val lo: int = b * (size / bands);
  var hi: int = (b + 1) * (size / bands) - 1;
  if (b == bands - 1) { hi = size - 1; }
  for (r = lo to hi) {
    var acc: int = 0;
    for (k = 0 to nzrow - 1) {
      acc = acc + vals[r * nzrow + k] * x[cols[r * nzrow + k]];
    }
    y[r] = acc %% 1000003;
  }
}

def main() {
  val vals: int[] = new int[size * nzrow];
  val cols: int[] = new int[size * nzrow];
  val x: int[] = new int[size];
  val y: int[] = new int[size];
  var s: int = 271828;
  for (i = 0 to size * nzrow - 1) {
    s = (s * 1103515 + 12345) %% 1000000;
    vals[i] = s %% 97;
    s = (s * 1103515 + 12345) %% 1000000;
    cols[i] = s %% size;
  }
  for (i = 0 to size - 1) {
    x[i] = i + 1;
  }
  for (it = 0 to iters - 1) {
    finish {
      for (b = 0 to bands - 1) {
        async {
          multiply_band(vals, cols, x, y, b);
        }
      }
    }
    for (r = 0 to size - 1) {
      x[r] = y[r];
    }
  }
  var norm: int = 0;
  for (r = 0 to size - 1) {
    norm = (norm + x[r]) %% 1000003;
  }
  print(norm);
}
|}
    size nz_per_row iters bands

let bench : Bench.t =
  {
    name = "Sparse";
    suite = "JGF";
    descr = "Sparse matrix multiplication";
    repair_params = "100 (paper: 100)";
    perf_params = "2,000 (paper: 2,500,000, scaled)";
    repair_src = source ~size:100 ~nz_per_row:5 ~iters:2 ~bands:10;
    perf_src = source ~size:2000 ~nz_per_row:5 ~iters:4 ~bands:16;
  }
