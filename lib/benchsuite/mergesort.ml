(** Mergesort (HJ Bench): the paper's Figure 1.  The merge step consumes
    both halves, so the expert placement is a finish around the two
    recursive asyncs — unlike quicksort, a root-level finish alone is not
    race-free.  The MRW detector reports far more races here than SRW
    (Table 4: 424,436 vs 39,684 at n=1,000) because every merged cell has
    many racing reader/writer step pairs. *)

let source ~n ~seed =
  Fmt.str
    {|
def merge(a: int[], tmp: int[], m: int, mid: int, n: int) {
  var i: int = m;
  var j: int = mid + 1;
  var k: int = m;
  while (i <= mid && j <= n) {
    if (a[i] <= a[j]) {
      tmp[k] = a[i];
      i = i + 1;
    }
    else {
      tmp[k] = a[j];
      j = j + 1;
    }
    k = k + 1;
  }
  while (i <= mid) {
    tmp[k] = a[i];
    i = i + 1;
    k = k + 1;
  }
  while (j <= n) {
    tmp[k] = a[j];
    j = j + 1;
    k = k + 1;
  }
  for (c = m to n) {
    a[c] = tmp[c];
  }
}

def mergesort(a: int[], tmp: int[], m: int, n: int) {
  if (m < n) {
    val mid: int = m + (n - m) / 2;
    finish {
      async mergesort(a, tmp, m, mid);
      async mergesort(a, tmp, mid + 1, n);
    }
    merge(a, tmp, m, mid, n);
  }
}

def fill(a: int[], seed: int) {
  var x: int = seed;
  for (i = 0 to alen(a) - 1) {
    x = (x * 1103515 + 12345) %% 100000;
    a[i] = x;
  }
}

def check_sorted(a: int[]): int {
  var bad: int = 0;
  for (i = 0 to alen(a) - 2) {
    if (a[i] > a[i + 1]) { bad = bad + 1; }
  }
  return bad;
}

def main() {
  val a: int[] = new int[%d];
  val tmp: int[] = new int[%d];
  fill(a, %d);
  finish {
    async mergesort(a, tmp, 0, alen(a) - 1);
  }
  print(check_sorted(a));
  print(a[0]);
  print(a[alen(a) - 1]);
}
|}
    n n seed

let bench : Bench.t =
  {
    name = "Mergesort";
    suite = "HJ Bench";
    descr = "Mergesort";
    repair_params = "1,000 (paper: 1,000)";
    perf_params = "20,000 (paper: 100,000,000, scaled to interpreter)";
    repair_src = source ~n:1000 ~seed:7;
    perf_src = source ~n:20000 ~seed:7;
  }
