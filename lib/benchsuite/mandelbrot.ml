(** Mandelbrot (Shootout): generate the Mandelbrot set membership bitmap,
    one async per scan line writing the row's bits and its checksum slot;
    the final reduction over row checksums races with the row tasks until
    the finish is restored. *)

let source ~size ~max_iter =
  Fmt.str
    {|
var size: int = %d;
var max_iter: int = %d;

def render_row(bitmap: int[], rowsum: int[], y: int) {
  val ci: float = 2.0 * float(y) / float(size) - 1.0;
  var sum: int = 0;
  for (x = 0 to size - 1) {
    val cr: float = 2.0 * float(x) / float(size) - 1.5;
    var zr: float = 0.0;
    var zi: float = 0.0;
    var it: int = 0;
    var live: bool = true;
    while (live && it < max_iter) {
      val nzr: float = zr * zr - zi * zi + cr;
      val nzi: float = 2.0 * zr * zi + ci;
      zr = nzr;
      zi = nzi;
      if (zr * zr + zi * zi > 4.0) { live = false; }
      it = it + 1;
    }
    if (live) {
      bitmap[y * size + x] = 1;
      sum = sum + 1;
    }
    else {
      bitmap[y * size + x] = 0;
    }
  }
  rowsum[y] = sum;
}

def main() {
  val bitmap: int[] = new int[size * size];
  val rowsum: int[] = new int[size];
  finish {
    forasync (y = 0 to size - 1) {
      render_row(bitmap, rowsum, y);
    }
  }
  var inside: int = 0;
  for (y = 0 to size - 1) {
    inside = inside + rowsum[y];
  }
  print(inside);
}
|}
    size max_iter

let bench : Bench.t =
  {
    name = "Mandelbrot";
    suite = "Shootout";
    descr = "Generate Mandelbrot set portable bitmap";
    repair_params = "50 (paper: 50)";
    perf_params = "150 (paper: 10,000, scaled)";
    repair_src = source ~size:50 ~max_iter:20;
    perf_src = source ~size:150 ~max_iter:30;
  }
