(** Synthetic student homework submissions (paper §7.4).

    The paper evaluated 59 student submissions of a manual finish-insertion
    exercise on a parallel quicksort: 5 still had data races, 29 were
    over-synchronized, and 25 matched the tool's repair.  The original
    submissions are course data we cannot obtain, so this module generates
    59 deterministic quicksort variants spanning the same mistake classes:

    - {e racy}: finish statements that miss at least one race (including
      the empty placement);
    - {e over-synchronized}: race-free but with less parallelism than the
      tool's repair (e.g. a finish around each async separately, which
      serializes the two recursive sorts);
    - {e optimal}: race-free with the same critical path length as the
      tool's repair.

    The grader classifies a submission exactly the way the paper does:
    run the detector (races remain?), then compare available parallelism
    against the tool-repaired program. *)

type expected = Racy | Oversync | Optimal

let pp_expected ppf = function
  | Racy -> Fmt.string ppf "racy"
  | Oversync -> Fmt.string ppf "over-synchronized"
  | Optimal -> Fmt.string ppf "optimal"

type submission = { id : int; expected : expected; src : string }

(* The quicksort skeleton each "student" started from: asyncs present, all
   finish placement left to them.  The holes are spliced per variant:
   [rec1]/[rec2] wrap the recursive asyncs, [call] wraps the root call. *)
let template ~n ~seed ~wrap_rec_both ~wrap_rec1 ~wrap_rec2 ~wrap_call
    ~extra_partition_finish ?(wrap_fill = false) ?(double_wrap_rec = false)
    () =
  let fin b s = if b then "finish { " ^ s ^ " }" else s in
  let rec_block =
    if double_wrap_rec then
      "finish { finish {\n      async quicksort(a, m, j);\n      async \
       quicksort(a, i, n);\n    } }"
    else if wrap_rec_both then
      "finish {\n      async quicksort(a, m, j);\n      async quicksort(a, i, n);\n    }"
    else
      Fmt.str "%s\n      %s"
        (fin wrap_rec1 "async quicksort(a, m, j);")
        (fin wrap_rec2 "async quicksort(a, i, n);")
  in
  let fill_loop =
    fin wrap_fill
      "for (k = 0 to alen(a) - 1) { x = (x * 1103515 + 12345) % 100000; a[k] \
       = x; }"
  in
  Fmt.str
    {|
def partition(a: int[], m: int, n: int, out: int[]) {
  val pivot: int = a[(m + n) / 2];
  var i: int = m;
  var j: int = n;
  while (i <= j) {
    while (a[i] < pivot) { i = i + 1; }
    while (a[j] > pivot) { j = j - 1; }
    if (i <= j) {
      val t: int = a[i];
      a[i] = a[j];
      a[j] = t;
      i = i + 1;
      j = j - 1;
    }
  }
  out[0] = i;
  out[1] = j;
}

def quicksort(a: int[], m: int, n: int) {
  if (m < n) {
    val p: int[] = new int[2];
    %s
    val i: int = p[0];
    val j: int = p[1];
    %s
  }
}

def main() {
  val a: int[] = new int[%d];
  var x: int = %d;
  %s
  %s
  var bad: int = 0;
  for (k = 0 to alen(a) - 2) {
    if (a[k] > a[k + 1]) { bad = bad + 1; }
  }
  print(bad);
}
|}
    (fin extra_partition_finish "partition(a, m, n, p);")
    rec_block n seed fill_loop
    (fin wrap_call "quicksort(a, 0, alen(a) - 1);")

(** The 59 submissions, deterministic, in the paper's class proportions
    (5 racy / 29 over-synchronized / 25 optimal). *)
let submissions ?(n = 120) () : submission list =
  let mk id expected ~wrap_rec_both ~wrap_rec1 ~wrap_rec2 ~wrap_call
      ~extra_partition_finish ?wrap_fill ?double_wrap_rec ~seed () =
    {
      id;
      expected;
      src =
        template ~n ~seed ~wrap_rec_both ~wrap_rec1 ~wrap_rec2 ~wrap_call
          ~extra_partition_finish ?wrap_fill ?double_wrap_rec ();
    }
  in
  let racy id seed variant =
    (* placements that leave at least one race *)
    match variant with
    | 0 ->
        (* no finish anywhere *)
        mk id Racy ~wrap_rec_both:false ~wrap_rec1:false ~wrap_rec2:false
          ~wrap_call:false ~extra_partition_finish:false ~seed ()
    | 1 ->
        (* only the first recursive async wrapped *)
        mk id Racy ~wrap_rec_both:false ~wrap_rec1:true ~wrap_rec2:false
          ~wrap_call:false ~extra_partition_finish:false ~seed ()
    | 2 ->
        (* only the second recursive async wrapped *)
        mk id Racy ~wrap_rec_both:false ~wrap_rec1:false ~wrap_rec2:true
          ~wrap_call:false ~extra_partition_finish:false ~seed ()
    | 3 ->
        (* a useless finish around the (synchronous) partition call *)
        mk id Racy ~wrap_rec_both:false ~wrap_rec1:false ~wrap_rec2:false
          ~wrap_call:false ~extra_partition_finish:true ~seed ()
    | _ ->
        (* a useless finish around the (synchronous) fill call *)
        mk id Racy ~wrap_rec_both:false ~wrap_rec1:false ~wrap_rec2:false
          ~wrap_call:false ~extra_partition_finish:false ~wrap_fill:true
          ~seed ()
  in
  let oversync id seed variant =
    match variant with
    | 0 ->
        (* finish around each async separately: serializes the recursion *)
        mk id Oversync ~wrap_rec_both:false ~wrap_rec1:true ~wrap_rec2:true
          ~wrap_call:false ~extra_partition_finish:false ~seed ()
    | 1 ->
        (* both of the above plus the root call: correct but doubly serial *)
        mk id Oversync ~wrap_rec_both:false ~wrap_rec1:true ~wrap_rec2:true
          ~wrap_call:true ~extra_partition_finish:false ~seed ()
    | _ ->
        (* serialized recursion with a useless partition finish on top *)
        mk id Oversync ~wrap_rec_both:false ~wrap_rec1:true ~wrap_rec2:true
          ~wrap_call:false ~extra_partition_finish:true ~seed ()
  in
  let optimal id seed variant =
    match variant with
    | 0 ->
        (* finish around both recursive asyncs together *)
        mk id Optimal ~wrap_rec_both:true ~wrap_rec1:false ~wrap_rec2:false
          ~wrap_call:false ~extra_partition_finish:false ~seed ()
    | 1 ->
        (* single finish around the root call *)
        mk id Optimal ~wrap_rec_both:false ~wrap_rec1:false ~wrap_rec2:false
          ~wrap_call:true ~extra_partition_finish:false ~seed ()
    | 2 ->
        (* both (redundant but still maximal parallelism) *)
        mk id Optimal ~wrap_rec_both:true ~wrap_rec1:false ~wrap_rec2:false
          ~wrap_call:true ~extra_partition_finish:false ~seed ()
    | 3 ->
        (* a doubled (idempotent) finish around the recursion *)
        mk id Optimal ~wrap_rec_both:false ~wrap_rec1:false ~wrap_rec2:false
          ~wrap_call:false ~extra_partition_finish:false ~double_wrap_rec:true
          ~seed ()
    | _ ->
        (* root finish plus a harmless synchronous-call finish *)
        mk id Optimal ~wrap_rec_both:false ~wrap_rec1:false ~wrap_rec2:false
          ~wrap_call:true ~extra_partition_finish:true ~seed ()
  in
  let out = ref [] in
  let id = ref 0 in
  let add f count =
    for k = 0 to count - 1 do
      incr id;
      (* vary the seed so submissions are distinct programs *)
      out := f !id (1000 + (37 * !id)) k :: !out
    done
  in
  add (fun id seed k -> racy id seed (k mod 5)) 5;
  add (fun id seed k -> oversync id seed (k mod 3)) 29;
  add (fun id seed k -> optimal id seed (k mod 5)) 25;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Grading                                                             *)
(* ------------------------------------------------------------------ *)

type verdict = {
  submission : submission;
  graded : expected;  (** the tool's classification *)
  races : int;
  cpl : int;  (** submission's critical path length *)
  tool_cpl : int;  (** critical path length of the tool's repair *)
}

(** Grade one submission: detect races; if race-free, compare critical
    path length against the tool-repaired version of the same program
    with all finishes stripped (i.e. what the tool would have produced
    from the same starting point). *)
let grade (s : submission) : verdict =
  let prog = Mhj.Front.compile s.src in
  let det, res = Espbags.Detector.detect Espbags.Detector.Mrw prog in
  let stripped = Mhj.Transform.strip_finishes prog in
  let repaired = (Repair.Driver.repair stripped).program in
  let tool_res = Rt.Interp.run repaired in
  let tool_cpl = Sdpst.Analysis.critical_path_length tool_res.tree in
  let races = Espbags.Detector.race_count det in
  let cpl = Sdpst.Analysis.critical_path_length res.tree in
  let graded =
    if races > 0 then Racy else if cpl > tool_cpl then Oversync else Optimal
  in
  { submission = s; graded; races; cpl; tool_cpl }

type summary = { racy : int; oversync : int; optimal : int; mismatches : int }

(** Grade the whole class; the paper's counts are 5 / 29 / 25. *)
let grade_all ?n () : summary * verdict list =
  let verdicts = List.map grade (submissions ?n ()) in
  let count c = List.length (List.filter (fun v -> v.graded = c) verdicts) in
  let mismatches =
    List.length
      (List.filter (fun v -> v.graded <> v.submission.expected) verdicts)
  in
  ( {
      racy = count Racy;
      oversync = count Oversync;
      optimal = count Optimal;
      mismatches;
    },
    verdicts )
