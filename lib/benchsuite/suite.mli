(** Registry of the Table 1 benchmarks, in the paper's order. *)

val all : Bench.t list

(** Case-insensitive lookup by name. *)
val find : string -> Bench.t option

val names : string list

(** Closed-form scale workloads (detector memory-bound stress; DESIGN.md
    §15).  Not part of {!all}: Table 1 drives the repair experiments,
    these drive [bench scale].  Repair-mode sources are small and
    repairable; perf-mode sources are ~10^6-access presets. *)
val scale : Bench.t list

(** Case-insensitive lookup in {!scale}. *)
val find_scale : string -> Bench.t option
