(** Registry of the Table 1 benchmarks, in the paper's order. *)

val all : Bench.t list

(** Case-insensitive lookup by name. *)
val find : string -> Bench.t option

val names : string list
