(* Multi-input repair (paper §2): "the tool is applied iteratively for
   different test inputs".

   A race hiding behind an input-dependent branch is invisible to a weak
   test input — the detector sees nothing, and coverage analysis (paper §9)
   flags the unexercised async.  Supplying a set of inputs lets the driver
   merge the placements each input demands into one program that is
   race-free for all of them.

   Run with: dune exec examples/multi_input.exe *)

let src =
  {|
var nworkers: int = 0;
var audit: int = 0;
var results: int[] = new int[16];
var log_slot: int[] = new int[1];

def main() {
  for (w = 0 to nworkers - 1) {
    async { results[w] = w * w; }
  }
  if (audit == 1) {
    async { log_slot[0] = 1; }
    print(log_slot[0]);
  }
  var sum: int = 0;
  for (w = 0 to 15) { sum = sum + results[w]; }
  print(sum);
}
|}

let () =
  let prog = Mhj.Front.compile src in

  (* A single weak input exercises nothing and finds nothing. *)
  let weak = Mhj.Transform.set_global_int prog "nworkers" 0 in
  let det, run = Espbags.Detector.detect Espbags.Detector.Mrw weak in
  let cov = Repair.Coverage.of_runs weak [ run.tree ] in
  Fmt.pr "--- weak input (nworkers=0, audit=0) ---@.";
  Fmt.pr "races found: %d@." (Espbags.Detector.race_count det);
  Fmt.pr "coverage:    %a@.@." Repair.Coverage.pp cov;

  (* The input set drives the repair to cover both racy regions. *)
  let inputs =
    [
      ("weak", [ ("nworkers", 0); ("audit", 0) ]);
      ("workers", [ ("nworkers", 8); ("audit", 0) ]);
      ("audit", [ ("nworkers", 0); ("audit", 1) ]);
    ]
  in
  let m = Repair.Driver.repair_multi ~inputs prog in
  Fmt.pr "--- repair over %d inputs ---@." (List.length inputs);
  Fmt.pr "finishes inserted: %d@." (Mhj.Ast.count_finishes m.final);
  List.iter
    (fun ((label, r) : string * Repair.Driver.report) ->
      Fmt.pr "input %-8s: %s@." label
        (if r.Repair.Driver.converged then "race-free" else "NOT race-free"))
    m.per_input;
  Fmt.pr "combined coverage: %a@." Repair.Coverage.pp m.coverage;
  Fmt.pr "all inputs race-free: %b@.@." m.all_converged;
  Fmt.pr "--- final program ---@.%s@."
    (Mhj.Pretty.program_to_string m.final)
