(* The paper's Figures 3 and 4: six asyncs A..F with execution times
   500/10/10/400/600/500 and dependences B->D, A->F, D->F.  Figure 4 lists
   four possible finish placements and their critical path lengths; the
   dynamic-programming placement algorithm searches all of them (and more)
   and returns the optimum.

   Run with: dune exec examples/figure3_placement.exe *)

let mk_graph () =
  let times = [| 500; 10; 10; 400; 600; 500 |] in
  let tree = Sdpst.Node.create_tree ~main_bid:0 in
  let root = tree.Sdpst.Node.root in
  let steps =
    Array.mapi
      (fun i t ->
        let a =
          Sdpst.Node.new_child tree ~parent:root ~kind:Sdpst.Node.Async
            ~origin_bid:0 ~origin_idx:i ()
        in
        let s =
          Sdpst.Node.new_child tree ~parent:a ~kind:Sdpst.Node.Step
            ~origin_bid:(100 + i) ~origin_idx:0 ()
        in
        s.Sdpst.Node.cost <- t;
        s)
      times
  in
  let edge (i, j) =
    Espbags.Race.make ~src:steps.(i) ~sink:steps.(j)
      ~addr:(Rt.Addr.Global "dep") ~kind:Espbags.Race.Write_read
  in
  let races = List.map edge [ (1, 3); (0, 5); (3, 5) ] in
  let span, _ = Sdpst.Analysis.span_memo () in
  Repair.Depgraph.build ~coalesce:false ~span root races

let name_of i = String.make 1 (Char.chr (Char.code 'A' + i))

let pp_placement ppf intervals =
  let opens = List.map fst intervals and closes = List.map snd intervals in
  for v = 0 to 5 do
    List.iter (fun s -> if s = v then Fmt.string ppf "( ") opens;
    Fmt.pf ppf "%s " (name_of v);
    List.iter (fun e -> if e = v then Fmt.string ppf ") ") closes
  done

let () =
  let g = mk_graph () in
  Fmt.pr "dependence graph (Figure 3): tasks A..F, times 500/10/10/400/600/500@.";
  Fmt.pr "dependences: B->D, A->F, D->F@.@.";
  Fmt.pr "Figure 4's candidate placements, re-evaluated by our cost model:@.";
  List.iter
    (fun intervals ->
      Fmt.pr "  %-28s CPL = %d@."
        (Fmt.str "%a" pp_placement intervals)
        (Repair.Dp_place.eval_placement g intervals))
    [
      [ (0, 0); (1, 1); (3, 3) ];
      [ (0, 1); (3, 3) ];
      [ (0, 2); (3, 3) ];
      [ (0, 4); (1, 1) ];
    ];
  let out = Repair.Dp_place.solve g in
  Fmt.pr "@.Algorithm 1's optimum:@.";
  Fmt.pr "  %-28s CPL = %d@."
    (Fmt.str "%a" pp_placement out.finishes)
    out.cost;
  (match Repair.Brute.solve g with
  | Some (best, _) ->
      Fmt.pr "@.brute-force oracle over every valid placement agrees: %d@."
        best
  | None -> assert false);
  Fmt.pr
    "@.(The DP beats all four hand-picked placements of Figure 4 — it \
     overlaps E@.with the finish that joins A..D before F starts.)@."
