(* The paper's Figure 1 vs Figure 2 motivation: mergesort needs a finish
   around its two recursive asyncs, while quicksort can keep its recursion
   fully asynchronous (only a join before the results are consumed).

   We strip all finish statements from both benchmarks (the paper's §7.1
   buggy-program construction), repair them, and compare the available
   parallelism of the repaired programs against the expert originals on a
   simulated 12-core machine (the Figure 16 methodology).

   Run with: dune exec examples/quicksort_repair.exe *)

let analyze name (expert : Mhj.Ast.program) =
  let stripped = Mhj.Transform.strip_finishes expert in
  let det, _ = Espbags.Detector.detect Espbags.Detector.Mrw stripped in
  let report = Repair.Driver.repair stripped in
  let sim prog =
    let res = Rt.Interp.run prog in
    let g = Compgraph.Graph.of_sdpst res.tree in
    ( res.work,
      Sdpst.Analysis.critical_path_length res.tree,
      Compgraph.Sched.makespan ~procs:12 g )
  in
  let w_expert, cpl_expert, t12_expert = sim expert in
  let _, cpl_rep, t12_rep = sim report.program in
  Fmt.pr "=== %s ===@." name;
  Fmt.pr "races in the stripped program: %d@."
    (Espbags.Detector.race_count det);
  Fmt.pr "repair: %s, %d finish(es) inserted@."
    (if report.converged then "converged" else "FAILED")
    (List.length (Repair.Driver.total_placements report));
  Fmt.pr "expert : work=%7d  CPL=%7d  T12=%7d@." w_expert cpl_expert t12_expert;
  Fmt.pr "repaired:                CPL=%7d  T12=%7d  (%.2fx expert CPL)@.@."
    cpl_rep t12_rep
    (float_of_int cpl_rep /. float_of_int cpl_expert)

let () =
  let qs = Mhj.Front.compile (Benchsuite.Quicksort.source ~n:400 ~seed:42) in
  let ms = Mhj.Front.compile (Benchsuite.Mergesort.source ~n:256 ~seed:42) in
  analyze "Quicksort (Figure 2)" qs;
  analyze "Mergesort (Figure 1)" ms;
  Fmt.pr
    "Both repairs restore the expert critical path: quicksort's recursion \
     stays@.async (one join before the results are read), mergesort gets \
     the finish@.around its two recursive asyncs that the merge step \
     requires.@."
