(* The paper's §7.4 experiment: automated grading of a parallel-computing
   homework.  59 student submissions of a "insert the finish statements
   into this parallel quicksort" exercise are classified by the tool into
   racy / over-synchronized / matching the tool's repair (paper counts:
   5 / 29 / 25).

   Our synthetic submission generator reproduces the three mistake
   classes; the grader is the real pipeline (detector + repair + critical
   path comparison).

   Run with: dune exec examples/student_grading.exe *)

let () =
  Fmt.pr "grading 59 quicksort submissions (paper §7.4)...@.@.";
  let summary, verdicts = Benchsuite.Students.grade_all ~n:64 () in
  List.iter
    (fun (v : Benchsuite.Students.verdict) ->
      Fmt.pr "  submission %02d: %-17s (races: %3d, CPL: %5d, tool CPL: %5d)@."
        v.submission.id
        (Fmt.str "%a" Benchsuite.Students.pp_expected v.graded)
        v.races v.cpl v.tool_cpl)
    verdicts;
  Fmt.pr "@.summary: %d racy, %d over-synchronized, %d matched the tool@."
    summary.racy summary.oversync summary.optimal;
  Fmt.pr "paper:    5 racy, 29 over-synchronized, 25 matched the tool@.";
  if summary.mismatches = 0 then
    Fmt.pr "every submission was classified as its generator intended@."
  else
    Fmt.pr "WARNING: %d generator/grader mismatches@." summary.mismatches
