(* The artifact workflow from the paper's Appendix A, as a library user
   would script it: (1) instrument & execute to detect races, writing a
   race trace and an S-DPST dump; (2) reload both — no re-execution; (3)
   run the analyzer on them to compute finish placements; (4) apply and
   verify.

   The phase separation matters: the detector and the analyzer communicate
   only through the recorded files, exactly like the paper's toolchain
   (and the tdrepair CLI's `detect --trace --dump-tree` / `analyze`).

   Run with: dune exec examples/trace_workflow.exe *)

let buggy =
  {|
var done_flags: int[] = new int[4];
var data: int[] = new int[4];

def producer(i: int) {
  data[i] = i * i;
  done_flags[i] = 1;
}

def main() {
  for (i = 0 to 3) {
    async { producer(i); }
  }
  var total: int = 0;
  for (i = 0 to 3) {
    if (done_flags[i] == 1) {
      total = total + data[i];
    }
  }
  print(total);
}
|}

let () =
  let program = Mhj.Front.compile buggy in
  let trace_path = Filename.temp_file "tdrace" ".trc" in
  let tree_path = Filename.temp_file "tdrace" ".tree" in

  (* Phase 1: instrumented execution records the trace and the S-DPST. *)
  let det, run = Espbags.Detector.detect Espbags.Detector.Mrw program in
  Espbags.Trace.save trace_path ~mode:Espbags.Detector.Mrw
    (Espbags.Detector.races det);
  let oc = open_out tree_path in
  output_string oc (Sdpst.Serial.tree_to_string run.tree);
  close_out oc;
  Fmt.pr "phase 1: %d race(s) and a %d-node S-DPST recorded@."
    (Espbags.Detector.race_count det)
    run.tree.Sdpst.Node.n_nodes;

  (* Phase 2: the analyzer reloads both files offline — no re-execution. *)
  let ic = open_in tree_path in
  let tree =
    Sdpst.Serial.tree_of_string
      (really_input_string ic (in_channel_length ic))
  in
  close_in ic;
  let _mode, races = Espbags.Trace.load trace_path tree in
  Fmt.pr "phase 2: %d race(s) resolved against the reloaded S-DPST@."
    (List.length races);
  let groups, merged = Repair.Driver.place_for_tree ~program races in
  Fmt.pr "phase 3: %d NS-LCA group(s) -> %d static placement(s):@."
    (List.length groups)
    (List.length merged.placements);
  List.iter
    (fun p -> Fmt.pr "  %a@." Mhj.Transform.pp_placement p)
    merged.placements;

  (* Phase 4: apply and verify. *)
  let repaired = Repair.Static_place.apply program merged in
  let det2, res2 = Espbags.Detector.detect Espbags.Detector.Mrw repaired in
  Fmt.pr "phase 4: races after applying the placements: %d@."
    (Espbags.Detector.race_count det2);
  Fmt.pr "output: %s@." (String.trim res2.output);
  Sys.remove trace_path;
  Sys.remove tree_path
