(* Quickstart: repair the paper's running example (Figures 8 and 15).

   An under-synchronized Fibonacci: the two recursive asyncs race with the
   combining read.  We detect the races, run the repair driver, and show
   the repaired program — a finish around the two asyncs, exactly the
   paper's Figure 15.

   Run with: dune exec examples/quickstart.exe *)

let buggy_fib =
  {|
def fib(ret: int[], reti: int, n: int) {
  if (n < 2) { ret[reti] = n; return; }
  val x: int[] = new int[1];
  val y: int[] = new int[1];
  async fib(x, 0, n - 1);   // Async1
  async fib(y, 0, n - 2);   // Async2
  ret[reti] = x[0] + y[0];  // races with Async1 and Async2
}

def main() {
  val r: int[] = new int[1];
  async fib(r, 0, 10);
  print(r[0]);
}
|}

let () =
  (* 1. Parse and type-check. *)
  let program = Mhj.Front.compile buggy_fib in

  (* 2. Execute depth-first under the MRW ESP-bags detector. *)
  let detector, execution =
    Espbags.Detector.detect Espbags.Detector.Mrw program
  in
  Fmt.pr "--- detection ---@.";
  Fmt.pr "S-DPST nodes: %d@." execution.tree.Sdpst.Node.n_nodes;
  Fmt.pr "data races:   %d (e.g. %a)@.@."
    (Espbags.Detector.race_count detector)
    (Fmt.option Espbags.Race.pp)
    (List.nth_opt (Espbags.Detector.races detector) 0);

  (* 3. Repair: detect -> place finishes -> insert -> re-check. *)
  let report = Repair.Driver.repair program in
  Fmt.pr "--- repair ---@.";
  Fmt.pr "%a@." Repair.Report.pp (program, report);

  (* 4. The repaired program: race-free, same semantics, same critical
     path as the expert version. *)
  Fmt.pr "--- repaired program ---@.%s@."
    (Mhj.Pretty.program_to_string report.program);
  let repaired_run = Rt.Interp.run report.program in
  let detector2, _ =
    Espbags.Detector.detect Espbags.Detector.Mrw report.program
  in
  Fmt.pr "--- verification ---@.";
  Fmt.pr "fib(10) = %s (expected 55)@." (String.trim repaired_run.output);
  Fmt.pr "races after repair: %d@." (Espbags.Detector.race_count detector2);
  Fmt.pr "critical path: %d cost units (work: %d)@."
    (Sdpst.Analysis.critical_path_length repaired_run.tree)
    repaired_run.work
