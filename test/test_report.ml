(* Tests for the repair report (context-sensitive finish evidence, paper
   §9) and the coverage extension. *)

let fib_src n =
  Fmt.str
    {|
def fib(ret: int[], reti: int, n: int) {
  if (n < 2) { ret[reti] = n; return; }
  val x: int[] = new int[1];
  val y: int[] = new int[1];
  async fib(x, 0, n - 1);
  async fib(y, 0, n - 2);
  ret[reti] = x[0] + y[0];
}
def main() {
  val r: int[] = new int[1];
  async fib(r, 0, %d);
  print(r[0]);
}
|}
    n

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_contexts_per_placement () =
  let prog = Mhj.Front.compile (fib_src 8) in
  let report = Repair.Driver.repair prog in
  let it = List.hd report.iterations in
  let contexts = Repair.Report.contexts_per_placement it in
  (* two static placements: the in-fib finish demanded by every internal
     call instance, the in-main finish demanded once *)
  Alcotest.(check int) "two static placements" 2 (List.length contexts);
  let counts = List.sort compare (List.map snd contexts) in
  Alcotest.(check int) "one single-context placement" 1 (List.hd counts);
  Alcotest.(check bool) "one many-context placement" true
    (List.nth counts 1 > 10)

let test_placement_span () =
  let prog = Mhj.Front.compile (fib_src 4) in
  let scopes = Mhj.Scopecheck.build prog in
  let report = Repair.Driver.repair prog in
  let it = List.hd report.iterations in
  List.iter
    (fun p ->
      match Repair.Report.placement_span scopes p with
      | Some (lo, hi) ->
          if Mhj.Loc.is_dummy lo || lo.Mhj.Loc.line > hi.Mhj.Loc.line then
            Alcotest.fail "bad span"
      | None -> Alcotest.fail "no span for placement")
    it.merged.Repair.Static_place.placements

(* ------------------------------------------------------------------ *)
(* Coverage                                                            *)
(* ------------------------------------------------------------------ *)

let test_coverage_full () =
  let prog = Mhj.Front.compile (fib_src 6) in
  let res = Rt.Interp.run prog in
  let c = Repair.Coverage.of_runs prog [ res.tree ] in
  Alcotest.(check int) "all asyncs covered" c.total_asyncs c.covered_asyncs;
  Alcotest.(check (list int)) "no uncovered asyncs" []
    (List.map (fun _ -> 0) c.uncovered_asyncs)

let test_coverage_partial () =
  (* fib(1) never reaches the recursive asyncs *)
  let prog = Mhj.Front.compile (fib_src 1) in
  let res = Rt.Interp.run prog in
  let c = Repair.Coverage.of_runs prog [ res.tree ] in
  Alcotest.(check int) "three asyncs total" 3 c.total_asyncs;
  Alcotest.(check int) "only main's async covered" 1 c.covered_asyncs;
  Alcotest.(check int) "two uncovered" 2 (List.length c.uncovered_asyncs);
  Alcotest.(check bool) "async coverage below 1" true
    (Repair.Coverage.async_coverage c < 1.0)

let test_coverage_union_of_runs () =
  let prog = Mhj.Front.compile (fib_src 1) in
  let prog2 = prog in
  let r1 = Rt.Interp.run prog in
  (* a second, larger input would cover more; simulate by reusing the same
     program with a tree from the bigger variant is not possible (different
     ids), so instead check union with itself is idempotent *)
  let c1 = Repair.Coverage.of_runs prog [ r1.tree ] in
  let c2 = Repair.Coverage.of_runs prog2 [ r1.tree; r1.tree ] in
  Alcotest.(check int) "idempotent union" c1.covered_stmts c2.covered_stmts

let test_coverage_flags_racy_gap () =
  (* the paper's motivation: a test that never runs an async cannot expose
     its races; coverage flags the gap *)
  let src =
    {|
var x: int = 0;
var flag: int = 0;
def main() {
  if (flag == 1) {
    async { x = 1; }
    print(x);
  }
  print(0);
}
|}
  in
  let prog = Mhj.Front.compile src in
  let det, res = Espbags.Detector.detect Espbags.Detector.Mrw prog in
  Alcotest.(check int) "no race seen by this input" 0
    (Espbags.Detector.race_count det);
  let c = Repair.Coverage.of_runs prog [ res.tree ] in
  Alcotest.(check int) "but the async is uncovered" 1
    (List.length c.uncovered_asyncs)

let () =
  Alcotest.run "report"
    [
      ( "report",
        [
          Alcotest.test_case "contexts per placement" `Quick
            test_contexts_per_placement;
          Alcotest.test_case "placement span" `Quick test_placement_span;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "full" `Quick test_coverage_full;
          Alcotest.test_case "partial" `Quick test_coverage_partial;
          Alcotest.test_case "union" `Quick test_coverage_union_of_runs;
          Alcotest.test_case "flags racy gap" `Quick
            test_coverage_flags_racy_gap;
        ] );
    ]
