(* Tests for the Mini-HJ front end: lexer, parser, pretty-printer,
   type checker, normalization and the AST transforms. *)

open Mhj

let compile = Front.compile

let compile_nomain src = Front.compile ~require_main:false src

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let tokens src =
  Array.to_list (Lexer.tokenize src) |> List.map fst
  |> List.filter (fun t -> t <> Token.EOF)

let test_lexer_basics () =
  Alcotest.(check (list string))
    "operators"
    [ "=="; "!="; "<="; ">="; "&&"; "||"; "="; "<"; ">"; "!" ]
    (List.map Token.to_string (tokens "== != <= >= && || = < > !"));
  Alcotest.(check (list string))
    "numbers and idents"
    [ "42"; "3.5"; "x_1"; "async" ]
    (List.map Token.to_string (tokens "42 3.5 x_1 async"))

let test_lexer_comments () =
  Alcotest.(check int) "line comment" 2
    (List.length (tokens "a // comment with stuff\n b"));
  Alcotest.(check int) "block comment" 2
    (List.length (tokens "a /* multi\nline */ b"))

let test_lexer_string () =
  match tokens {|"hi\nthere"|} with
  | [ Token.STRING s ] -> Alcotest.(check string) "escape" "hi\nthere" s
  | _ -> Alcotest.fail "expected one string token"

let test_lexer_errors () =
  let lex_fails s =
    match Lexer.tokenize s with
    | exception Lexer.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad char" true (lex_fails "a # b");
  Alcotest.(check bool) "unterminated string" true (lex_fails {|"abc|});
  Alcotest.(check bool) "unterminated comment" true (lex_fails "/* abc")

let test_lexer_locations () =
  let toks = Lexer.tokenize "a\n  b" in
  let _, loc_b = toks.(1) in
  Alcotest.(check int) "line" 2 loc_b.Loc.line;
  Alcotest.(check int) "col" 3 loc_b.Loc.col

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parser_precedence () =
  let expr_of src =
    let p = compile_nomain (Fmt.str "def f(): int { return %s; }" src) in
    match (List.hd p.Ast.funcs).body.stmts with
    | [ { s = Ast.Return (Some e); _ } ] -> Pretty.expr_to_string e
    | _ -> Alcotest.fail "unexpected structure"
  in
  Alcotest.(check string) "mul binds tighter" "1 + 2 * 3" (expr_of "1 + 2*3");
  Alcotest.(check string)
    "parens preserved where needed" "(1 + 2) * 3"
    (expr_of "(1 + 2) * 3");
  Alcotest.(check string)
    "left assoc subtraction" "1 - 2 - 3" (expr_of "1 - 2 - 3");
  Alcotest.(check string)
    "right operand parenthesized" "1 - (2 - 3)" (expr_of "1 - (2 - 3)")

let test_parser_structure () =
  let p =
    compile
      {|
def main() {
  var x: int = 0;
  if (x < 1) { x = 1; } else { x = 2; }
  while (x > 0) { x = x - 1; }
  for (i = 0 to 3 by 2) { x = x + i; }
  val a: int[] = new int[1];
  finish { async { a[0] = 5; } }
  print(a[0]);
}
|}
  in
  Alcotest.(check int) "one function" 1 (List.length p.funcs);
  Alcotest.(check int) "asyncs" 1 (Ast.count_asyncs p);
  Alcotest.(check int) "finishes" 1 (Ast.count_finishes p)

let test_parser_errors () =
  let fails src =
    match Parser.parse_program src with
    | exception Parser.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing semi" true (fails "def main() { print(1) }");
  Alcotest.(check bool) "bad lvalue" true (fails "def main() { 1 = 2; }");
  Alcotest.(check bool) "unclosed block" true (fails "def main() {");
  Alcotest.(check bool) "top-level junk" true (fails "print(1);")

let test_forasync_sugar () =
  (* forasync desugars to a for loop whose body spawns an async *)
  let p =
    compile
      "var a: int[] = new int[4];\n\
       def main() { finish { forasync (i = 0 to 3) { a[i] = i; } } }"
  in
  let q =
    compile
      "var a: int[] = new int[4];\n\
       def main() { finish { for (i = 0 to 3) { async { a[i] = i; } } } }"
  in
  Alcotest.(check int) "one async" 1 (Ast.count_asyncs p);
  let sk prog = Sdpst.Serial.skeleton (Rt.Interp.run prog).tree in
  Alcotest.(check string) "same dynamic structure" (sk q) (sk p)

let test_parser_multidim () =
  let p =
    compile
      {|
def main() {
  val g: float[][] = new float[3][4];
  g[1][2] = 5.0;
  print(g[1][2]);
}
|}
  in
  Alcotest.(check int) "parses" 1 (List.length p.funcs)

(* ------------------------------------------------------------------ *)
(* Pretty round-trip                                                   *)
(* ------------------------------------------------------------------ *)

(* Structural equality modulo ids and locations. *)
let rec eq_expr (a : Ast.expr) (b : Ast.expr) =
  match (a.e, b.e) with
  | Ast.Int x, Ast.Int y -> x = y
  | Ast.Float x, Ast.Float y -> x = y
  | Ast.Bool x, Ast.Bool y -> x = y
  | Ast.Str x, Ast.Str y -> x = y
  | Ast.Var x, Ast.Var y -> x = y
  | Ast.Bin (o1, a1, b1), Ast.Bin (o2, a2, b2) ->
      o1 = o2 && eq_expr a1 a2 && eq_expr b1 b2
  | Ast.Un (o1, a1), Ast.Un (o2, a2) -> o1 = o2 && eq_expr a1 a2
  | Ast.Idx (a1, i1), Ast.Idx (a2, i2) -> eq_expr a1 a2 && eq_expr i1 i2
  | Ast.Call (f1, l1), Ast.Call (f2, l2) ->
      f1 = f2 && List.length l1 = List.length l2 && List.for_all2 eq_expr l1 l2
  | Ast.NewArr (t1, d1), Ast.NewArr (t2, d2) ->
      Ast.equal_ty t1 t2
      && List.length d1 = List.length d2
      && List.for_all2 eq_expr d1 d2
  | _ -> false

let rec eq_stmt (a : Ast.stmt) (b : Ast.stmt) =
  match (a.s, b.s) with
  | Ast.Decl (m1, x1, t1, e1), Ast.Decl (m2, x2, t2, e2) ->
      m1 = m2 && x1 = x2 && Ast.equal_ty t1 t2 && eq_expr e1 e2
  | Ast.Assign (x1, p1, e1), Ast.Assign (x2, p2, e2) ->
      x1 = x2
      && List.length p1 = List.length p2
      && List.for_all2 eq_expr p1 p2 && eq_expr e1 e2
  | Ast.If (c1, a1, b1), Ast.If (c2, a2, b2) ->
      eq_expr c1 c2 && eq_stmt a1 a2 && Option.equal eq_stmt b1 b2
  | Ast.While (c1, s1), Ast.While (c2, s2) -> eq_expr c1 c2 && eq_stmt s1 s2
  | Ast.For (i1, l1, h1, b1, s1), Ast.For (i2, l2, h2, b2, s2) ->
      i1 = i2 && eq_expr l1 l2 && eq_expr h1 h2
      && Option.equal eq_expr b1 b2
      && eq_stmt s1 s2
  | Ast.Return e1, Ast.Return e2 -> Option.equal eq_expr e1 e2
  | Ast.Async s1, Ast.Async s2 | Ast.Finish s1, Ast.Finish s2 -> eq_stmt s1 s2
  | Ast.Block b1, Ast.Block b2 ->
      List.length b1.stmts = List.length b2.stmts
      && List.for_all2 eq_stmt b1.stmts b2.stmts
  | Ast.Expr e1, Ast.Expr e2 -> eq_expr e1 e2
  | _ -> false

let eq_program (a : Ast.program) (b : Ast.program) =
  List.length a.funcs = List.length b.funcs
  && List.for_all2
       (fun (f : Ast.func) (g : Ast.func) ->
         f.fname = g.fname && f.params = g.params
         && Ast.equal_ty f.ret g.ret
         && List.length f.body.stmts = List.length g.body.stmts
         && List.for_all2 eq_stmt f.body.stmts g.body.stmts)
       a.funcs b.funcs
  && List.length a.globals = List.length b.globals
  && List.for_all2
       (fun (x : Ast.global) (y : Ast.global) ->
         x.gname = y.gname && Ast.equal_ty x.gty y.gty && eq_expr x.ginit y.ginit)
       a.globals b.globals

let roundtrip_ok prog =
  let printed = Pretty.program_to_string prog in
  let reparsed = compile_nomain printed in
  eq_program prog reparsed

let test_pretty_roundtrip () =
  List.iter
    (fun (b : Benchsuite.Bench.t) ->
      if not (roundtrip_ok (compile b.repair_src)) then
        Alcotest.fail (b.name ^ ": round-trip mismatch"))
    Benchsuite.Suite.all

let roundtrip_prop =
  QCheck.Test.make ~name:"pretty/parse round-trip on random programs"
    ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      roundtrip_ok (compile src))

(* ------------------------------------------------------------------ *)
(* Type checker                                                        *)
(* ------------------------------------------------------------------ *)

let ill_typed src =
  match compile src with
  | exception Typecheck.Error _ -> true
  | _ -> false

let test_typecheck_rejects () =
  let cases =
    [
      ("int + float", "def main() { print(1 + 1.0); }");
      ("bool index", "def main() { val a: int[] = new int[2]; print(a[true]); }");
      ("assign to val", "def main() { val x: int = 1; x = 2; }");
      ("unbound var", "def main() { print(y); }");
      ("bad arity", "def f(x: int) { } def main() { f(1, 2); }");
      ("bad return", "def f(): int { return; } def main() { f(); }");
      ("duplicate decl", "def main() { var x: int = 1; var x: int = 2; }");
      ("mod on float", "def main() { print(1.0 % 2.0); }");
      ("cond not bool", "def main() { if (1) { print(1); } }");
      ("return crosses async", "def f() { async { return; } } def main() { f(); }");
      ( "mutable capture",
        "def main() { var x: int = 1; async { print(x); } }" );
      ( "assign outer local in async",
        "def main() { val a: int[] = new int[1]; async { val y: int = 1; } \
         var z: int = 0; async { z = 1; } }" );
      ("main with params", "def main(x: int) { }");
      ("no main", "def f() { }");
      ("shadow builtin", "def print(x: int) { } def main() { }");
    ]
  in
  List.iter
    (fun (name, src) ->
      if not (ill_typed src) then Alcotest.fail ("accepted: " ^ name))
    cases

let test_typecheck_accepts () =
  let cases =
    [
      "def main() { val x: int = 1; async { print(x); } }";
      "def main() { val a: int[] = new int[3]; async { a[0] = 1; } }";
      "def main() { var g: float = 1.5; g = g * 2.0; print(g); }";
      "def f(): bool { return 1 < 2; } def main() { if (f()) { print(1); } }";
    ]
  in
  List.iter
    (fun src ->
      match compile src with
      | exception Typecheck.Error (m, _) -> Alcotest.fail ("rejected: " ^ m)
      | _ -> ())
    cases

let test_global_capture_allowed () =
  (* Globals are shared state: asyncs may read and write them. *)
  match
    compile "var g: int = 0;\ndef main() { async { g = g + 1; } print(g); }"
  with
  | exception Typecheck.Error (m, _) -> Alcotest.fail m
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Normalization, elision, transforms                                  *)
(* ------------------------------------------------------------------ *)

let test_normalize () =
  let p = Parser.parse_program "def main() { if (true) print(1); }" in
  Alcotest.(check bool) "raw not normalized" false (Normalize.is_normalized p);
  let n = Normalize.normalize p in
  Alcotest.(check bool) "normalized" true (Normalize.is_normalized n);
  Alcotest.(check bool)
    "idempotent" true
    (eq_program n (Normalize.normalize n))

let test_elision () =
  let p = compile "def main() { finish { async { print(1); } } print(2); }" in
  let e = Elision.elide p in
  Alcotest.(check int) "no asyncs" 0 (Ast.count_asyncs e);
  Alcotest.(check int) "no finishes" 0 (Ast.count_finishes e)

let test_strip_finishes () =
  let p =
    compile
      "def main() { finish { async { print(1); } finish { async { print(2); \
       } } } }"
  in
  let s = Transform.strip_finishes p in
  Alcotest.(check int) "no finishes" 0 (Ast.count_finishes s);
  Alcotest.(check int) "asyncs kept" 2 (Ast.count_asyncs s)

let test_insert_finishes () =
  let p = compile "def main() { print(1); print(2); print(3); }" in
  let body = (List.hd p.funcs).body in
  let placement = { Transform.bid = body.bid; lo = 1; hi = 2 } in
  let q = Transform.insert_finishes p [ placement ] in
  Alcotest.(check int) "one finish" 1 (Ast.count_finishes q);
  (match (List.hd q.funcs).body.stmts with
  | [ { s = Ast.Expr _; _ }; { s = Ast.Finish _; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected shape");
  (* nested + disjoint in one block *)
  let p2 = compile "def main() { print(1); print(2); print(3); print(4); }" in
  let b2 = (List.hd p2.funcs).body in
  let q2 =
    Transform.insert_finishes p2
      [
        { Transform.bid = b2.bid; lo = 0; hi = 2 };
        { Transform.bid = b2.bid; lo = 1; hi = 2 };
        { Transform.bid = b2.bid; lo = 3; hi = 3 };
      ]
  in
  Alcotest.(check int) "three finishes" 3 (Ast.count_finishes q2)

let test_insert_crossing_rejected () =
  let p = compile "def main() { print(1); print(2); print(3); }" in
  let body = (List.hd p.funcs).body in
  match
    Transform.insert_finishes p
      [
        { Transform.bid = body.bid; lo = 0; hi = 1 };
        { Transform.bid = body.bid; lo = 1; hi = 2 };
      ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "crossing intervals must be rejected"

let test_scopecheck () =
  let p =
    compile
      "def main() { val x: int = 1; print(x); val y: int = 2; print(3); }"
  in
  let scopes = Scopecheck.build p in
  let bid = (List.hd p.funcs).body.bid in
  Alcotest.(check bool)
    "wrapping decl used later is rejected" false
    (Scopecheck.wrap_ok scopes ~bid ~lo:0 ~hi:0);
  Alcotest.(check bool)
    "wrapping decl and its uses is fine" true
    (Scopecheck.wrap_ok scopes ~bid ~lo:0 ~hi:1);
  Alcotest.(check bool)
    "wrapping unused decl is fine" true
    (Scopecheck.wrap_ok scopes ~bid ~lo:2 ~hi:2);
  Alcotest.(check bool)
    "no decl involved" true
    (Scopecheck.wrap_ok scopes ~bid ~lo:3 ~hi:3)

(* Every block of the program — however deeply nested under async, finish,
   loops or in helper functions — must be indexed by the scope table, or
   position-based queries (the repair tool's, the static pruner's) would
   silently fail on it. *)
let all_block_ids (p : Ast.program) =
  let acc = ref [] in
  let rec stmt (st : Ast.stmt) =
    match st.s with
    | Ast.Block b -> block b
    | Ast.Async s | Ast.Finish s | Ast.Isolated s | Ast.While (_, s)
    | Ast.For (_, _, _, _, s) ->
        stmt s
    | Ast.If (_, t, e) ->
        stmt t;
        Option.iter stmt e
    | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Expr _ -> ()
  and block (b : Ast.block) =
    acc := b.bid :: !acc;
    List.iter stmt b.stmts
  in
  List.iter (fun (f : Ast.func) -> block f.body) p.funcs;
  !acc

let test_scopecheck_covers_nested_blocks () =
  let p =
    compile
      "var x: int = 0;\n\
       def helper(n: int) { finish { async { x = n; } } }\n\
       def main() {\n\
      \  async { finish { async { x = 1; } } }\n\
      \  for (i = 0 to 2) { async { x = i; } }\n\
      \  helper(7);\n\
       }"
  in
  let scopes = Scopecheck.build p in
  List.iter
    (fun bid ->
      if not (Hashtbl.mem scopes.Scopecheck.blocks bid) then
        Alcotest.failf "block %d missing from the scope table" bid)
    (all_block_ids p)

let test_scopecheck_async_under_loop () =
  let p =
    compile
      "var x: int = 0;\n\
       def main() { for (i = 0 to 3) { val d: int = i; async { x = d; } } }"
  in
  let scopes = Scopecheck.build p in
  (* the loop body block: find it as the block holding two statements,
     the first of which declares d *)
  let body_bid =
    Hashtbl.fold
      (fun bid (stmts : Ast.stmt array) acc ->
        match (acc, Array.length stmts) with
        | None, 2 -> (
            match stmts.(0).Ast.s with
            | Ast.Decl (_, "d", _, _) -> Some bid
            | _ -> acc)
        | _ -> acc)
      scopes.Scopecheck.blocks None
  in
  match body_bid with
  | None -> Alcotest.fail "loop body block not indexed"
  | Some bid ->
      Alcotest.(check bool)
        "wrapping the decl away from the async is rejected" false
        (Scopecheck.wrap_ok scopes ~bid ~lo:0 ~hi:0);
      Alcotest.(check bool)
        "wrapping decl and async together is fine" true
        (Scopecheck.wrap_ok scopes ~bid ~lo:0 ~hi:1)

let test_scopecheck_method_calls () =
  (* wrap_ok must answer for helper-function bodies, not just main *)
  let p =
    compile
      "var x: int = 0;\n\
       def f() { val t: int = 1; x = t; }\n\
       def main() { f(); }"
  in
  let scopes = Scopecheck.build p in
  let f = Option.get (Ast.find_func p "f") in
  Alcotest.(check bool)
    "helper decl used later is rejected" false
    (Scopecheck.wrap_ok scopes ~bid:f.body.bid ~lo:0 ~hi:0);
  Alcotest.(check bool)
    "whole helper body is fine" true
    (Scopecheck.wrap_ok scopes ~bid:f.body.bid ~lo:0 ~hi:1)

(* Normalization is a projection: running it on already-normalized
   programs (Progen output is normalized by construction) changes
   nothing. *)
let normalize_idempotent_prop =
  QCheck.Test.make ~name:"normalize is idempotent on random programs"
    ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let p = compile (Benchsuite.Progen.generate ~seed ()) in
      let n = Normalize.normalize p in
      Normalize.is_normalized n && eq_program p n)

let () =
  Alcotest.run "mhj"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "strings" `Quick test_lexer_string;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "locations" `Quick test_lexer_locations;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "structure" `Quick test_parser_structure;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "multidim arrays" `Quick test_parser_multidim;
          Alcotest.test_case "forasync sugar" `Quick test_forasync_sugar;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "benchmark round-trips" `Quick
            test_pretty_roundtrip;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "rejections" `Quick test_typecheck_rejects;
          Alcotest.test_case "acceptances" `Quick test_typecheck_accepts;
          Alcotest.test_case "global capture" `Quick test_global_capture_allowed;
        ] );
      ( "transform",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "elision" `Quick test_elision;
          Alcotest.test_case "strip" `Quick test_strip_finishes;
          Alcotest.test_case "insert" `Quick test_insert_finishes;
          Alcotest.test_case "crossing rejected" `Quick
            test_insert_crossing_rejected;
          Alcotest.test_case "scopecheck" `Quick test_scopecheck;
          Alcotest.test_case "scopecheck nested blocks" `Quick
            test_scopecheck_covers_nested_blocks;
          Alcotest.test_case "scopecheck async under loop" `Quick
            test_scopecheck_async_under_loop;
          Alcotest.test_case "scopecheck helper functions" `Quick
            test_scopecheck_method_calls;
          QCheck_alcotest.to_alcotest normalize_idempotent_prop;
        ] );
    ]
