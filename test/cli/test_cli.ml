(* Integration tests driving the actual tdrepair binary on the sample
   programs, the way a user would (paper Appendix A workflow). *)

(* Resolve paths relative to this test executable so the tests work both
   under `dune runtest` (cwd = _build test dir) and `dune exec` (cwd =
   workspace root). *)
let here = Filename.dirname Sys.executable_name

let binary = Filename.concat here "../../bin/tdrepair.exe"

let sample name = Filename.concat here ("../../samples/" ^ name)

(* Run the binary; return (exit code, combined output). *)
let run_cli args =
  let out = Filename.temp_file "tdrepair_cli" ".out" in
  let cmd =
    Fmt.str "%s %s > %s 2>&1" (Filename.quote binary)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let contents =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, contents)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let check_contains what output affix =
  if not (contains ~affix output) then
    Alcotest.failf "%s: expected output to contain %S, got:\n%s" what affix
      output

let test_help () =
  let code, out = run_cli [ "--help=plain" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "help" out "tdrepair";
  List.iter (check_contains "help lists command" out)
    [ "detect"; "repair"; "strip"; "elide"; "coverage"; "grade"; "emit" ]

let test_detect_fib () =
  let code, out = run_cli [ "detect"; sample "fib_buggy.mhj" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "detect" out "MRW ESP-bags";
  check_contains "detect" out "race report(s)";
  check_contains "detect finds W->R" out "W->R"

let test_detect_srw_figure5 () =
  let code, out =
    run_cli [ "detect"; sample "figure5.mhj"; "--mode"; "srw" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "srw detect" out "SRW ESP-bags: 2 race report(s)"

let test_repair_roundtrip () =
  let fixed = Filename.temp_file "tdrepair_cli" ".mhj" in
  let code, out =
    run_cli [ "repair"; sample "fib_buggy.mhj"; "-o"; fixed; "-q" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "repair" out "race-free after 1 iteration(s)";
  (* the emitted program must be clean when re-analyzed *)
  let code2, out2 = run_cli [ "detect"; fixed ] in
  Alcotest.(check int) "re-detect exit 0" 0 code2;
  check_contains "re-detect" out2 "0 race report(s)";
  (* and still compute fib correctly *)
  let code3, out3 = run_cli [ "run"; fixed ] in
  Alcotest.(check int) "run exit 0" 0 code3;
  check_contains "fib(12)" out3 "144";
  Sys.remove fixed

let test_repair_incremental () =
  let code, out =
    run_cli
      [ "repair"; sample "pipeline.mhj"; "--placement"; "incremental"; "-q" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "incremental repair" out "race-free"

let test_repair_tournament () =
  (* fib: the missing join; finish must win the tournament. *)
  let code, out =
    run_cli [ "repair"; sample "fib_buggy.mhj"; "--strategy"; "tournament" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "winner line" out "strategy tournament: finish wins";
  check_contains "per-candidate table" out "race-free in";
  (* the winning rewrite is printed and re-detects clean *)
  let fixed = Filename.temp_file "tdrepair_cli" ".mhj" in
  let code1, _ =
    run_cli
      [ "repair"; sample "fib_buggy.mhj"; "--strategy"; "tournament"; "-o";
        fixed; "-q" ]
  in
  Alcotest.(check int) "repair -o exit 0" 0 code1;
  let code2, out2 = run_cli [ "detect"; fixed ] in
  Alcotest.(check int) "repaired detect exit 0" 0 code2;
  check_contains "no races" out2 "0 race report(s)";
  Sys.remove fixed

let test_detect_after_isolated_repair () =
  (* detect must discharge races serialized by isolated sections, so an
     isolated-strategy repair verifies race-free through the CLI too. *)
  let src = Filename.temp_file "tdrepair_cli" ".mhj" in
  let oc = open_out src in
  output_string oc
    {|
def main() {
  val sum: int[] = new int[1];
  finish {
    for (i = 0 to 3) {
      async { sum[0] = sum[0] + i; }
    }
  }
  print(sum[0]);
}
|};
  close_out oc;
  let fixed = Filename.temp_file "tdrepair_cli" ".mhj" in
  let code, _ =
    run_cli [ "repair"; src; "--strategy"; "isolated"; "-o"; fixed; "-q" ]
  in
  Alcotest.(check int) "isolated repair exit 0" 0 code;
  let code2, out2 = run_cli [ "detect"; fixed ] in
  Alcotest.(check int) "repaired detect exit 0" 0 code2;
  check_contains "no surviving races" out2 "0 race report(s)";
  check_contains "discharge line" out2 "serialized by isolated section(s)";
  Sys.remove src;
  Sys.remove fixed

let test_detect_strategy_preview () =
  let code, out =
    run_cli [ "detect"; sample "fib_buggy.mhj"; "--strategy"; "tournament" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "preview" out "would win"

let test_repair_report () =
  let code, out =
    run_cli [ "repair"; sample "figure5.mhj"; "--report"; "-q" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "report" out "insert finish around";
  check_contains "report" out "dynamic context(s)"

let test_strip_then_repair () =
  let stripped = Filename.temp_file "tdrepair_cli" ".mhj" in
  (* quicksort.mhj has no finishes; fib via emit does *)
  let code, _ = run_cli [ "emit"; "Fibonacci"; "-o"; stripped ] in
  Alcotest.(check int) "emit exit 0" 0 code;
  let stripped2 = Filename.temp_file "tdrepair_cli" ".mhj" in
  let code2, _ = run_cli [ "strip"; stripped; "-o"; stripped2 ] in
  Alcotest.(check int) "strip exit 0" 0 code2;
  let code3, out3 = run_cli [ "detect"; stripped2 ] in
  Alcotest.(check int) "detect exit 0" 0 code3;
  check_contains "stripped fib races" out3 "3193 race report(s)";
  Sys.remove stripped;
  Sys.remove stripped2

let test_elide () =
  let code, out = run_cli [ "elide"; sample "fib_buggy.mhj" ] in
  Alcotest.(check int) "exit 0" 0 code;
  if contains ~affix:"async" out then
    Alcotest.fail "elision must remove asyncs"

let test_run_metrics () =
  let code, out = run_cli [ "run"; sample "quicksort.mhj"; "-p"; "4" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "metrics" out "work (T1)";
  check_contains "metrics" out "critical path (Tinf)";
  check_contains "metrics" out "simulated T_4"

let test_coverage () =
  let code, out = run_cli [ "coverage"; sample "fib_buggy.mhj" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "coverage" out "async coverage"

let test_benchmarks_listing () =
  let code, out = run_cli [ "benchmarks" ] in
  Alcotest.(check int) "exit 0" 0 code;
  List.iter (check_contains "listing" out) [ "Fibonacci"; "Mandelbrot" ]

let test_trace_file () =
  let trc = Filename.temp_file "tdrepair_cli" ".trc" in
  let code, out =
    run_cli [ "detect"; sample "figure5.mhj"; "--trace"; trc ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "trace note" out "trace written";
  let ic = open_in trc in
  let first = input_line ic in
  close_in ic;
  Sys.remove trc;
  Alcotest.(check string) "trace magic" "tdrace-trace-v1" first

let test_offline_analyze () =
  let tree = Filename.temp_file "tdrepair_cli" ".tree" in
  let trc = Filename.temp_file "tdrepair_cli" ".trc" in
  let code, _ =
    run_cli
      [ "detect"; sample "fib_buggy.mhj"; "--trace"; trc; "--dump-tree"; tree ]
  in
  Alcotest.(check int) "detect exit 0" 0 code;
  let code2, out2 =
    run_cli
      [ "analyze"; sample "fib_buggy.mhj"; "--tree"; tree; "--trace"; trc;
        "-q" ]
  in
  Alcotest.(check int) "analyze exit 0" 0 code2;
  check_contains "analyze" out2 "finish statement(s):";
  check_contains "analyze finds the Fig. 15 placement" out2
    "insert finish around lines 13-14";
  Sys.remove tree;
  Sys.remove trc

let test_set_override () =
  (* pipeline.mhj has no int globals to vary, so use figure5 with a new
     global via emit?  Simplest: craft a program on the fly. *)
  let f = Filename.temp_file "tdrepair_cli" ".mhj" in
  let oc = open_out f in
  output_string oc
    "var n: int = 0;\nvar a: int[] = new int[8];\n\
     def main() { for (i = 0 to n - 1) { async { a[i] = i; } } var s: int = \
     0; for (i = 0 to 7) { s = s + a[i]; } print(s); }";
  close_out oc;
  let code, out = run_cli [ "detect"; f ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "n=0 sees nothing" out "0 race report(s)";
  let code2, out2 = run_cli [ "detect"; f; "--set"; "n=4" ] in
  Alcotest.(check int) "exit 0" 0 code2;
  check_contains "n=4 races" out2 "4 race report(s)";
  let code3, out3 = run_cli [ "detect"; f; "--set"; "n=oops" ] in
  Alcotest.(check bool) "bad value rejected" true (code3 <> 0);
  ignore out3;
  Sys.remove f

let test_grade_file () =
  (* quicksort.mhj is racy by design *)
  let code, out = run_cli [ "grade-file"; sample "quicksort.mhj" ] in
  Alcotest.(check int) "racy exit code" 3 code;
  check_contains "racy verdict" out "RACY";
  (* a repaired copy grades optimal *)
  let fixed = Filename.temp_file "tdrepair_cli" ".mhj" in
  let code2, _ =
    run_cli [ "repair"; sample "quicksort.mhj"; "-o"; fixed; "-q" ]
  in
  Alcotest.(check int) "repair ok" 0 code2;
  let code3, out3 = run_cli [ "grade-file"; fixed ] in
  Alcotest.(check int) "optimal exit code" 0 code3;
  check_contains "optimal verdict" out3 "OPTIMAL";
  Sys.remove fixed;
  (* an over-synchronized variant: serialize the recursion *)
  let oversync = Filename.temp_file "tdrepair_cli" ".mhj" in
  let oc = open_out oversync in
  output_string oc
    {|
def work_item(a: int[], i: int) { a[i] = i * i; }
def main() {
  val a: int[] = new int[16];
  for (i = 0 to 15) {
    finish { async { work_item(a, i); } }
  }
  var s: int = 0;
  for (i = 0 to 15) { s = s + a[i]; }
  print(s);
}
|};
  close_out oc;
  let code4, out4 = run_cli [ "grade-file"; oversync ] in
  Alcotest.(check int) "over-synchronized exit code" 4 code4;
  check_contains "oversync verdict" out4 "OVER-SYNCHRONIZED";
  Sys.remove oversync

let test_explain () =
  let code, out = run_cli [ "explain"; sample "figure5.mhj" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "explain" out "S-DPST:";
  check_contains "explain" out "critical path";
  check_contains "explain" out "NS-LCA groups:";
  check_contains "explain" out "suggested repair:"

let test_errors () =
  let code, out = run_cli [ "detect"; sample "fib_buggy.mhj"; "--mode"; "x" ] in
  Alcotest.(check bool) "bad mode rejected" true (code <> 0);
  ignore out;
  let bad = Filename.temp_file "tdrepair_cli" ".mhj" in
  let oc = open_out bad in
  output_string oc "def main() { print(1) }";
  close_out oc;
  let code2, out2 = run_cli [ "parse"; bad ] in
  Sys.remove bad;
  Alcotest.(check int) "syntax error -> input-error exit" 3 code2;
  check_contains "located parse diagnostic" out2 "error[parse] at 1:"

let with_tmp_program contents f =
  let path = Filename.temp_file "tdrepair_cli" ".mhj" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* Golden renderings of located interpreter diagnostics: every dynamic
   failure of the analyzed program names its stage and source position and
   exits with the input-error code. *)
let test_located_interp_diagnostics () =
  with_tmp_program "def main() {\n  print(1 / 0);\n}" (fun f ->
      let code, out = run_cli [ "run"; f ] in
      Alcotest.(check int) "div-by-zero input-error exit" 3 code;
      check_contains "div-by-zero" out "error[interp] at 2:11: division by zero");
  with_tmp_program
    "def main() {\n  val a: int[] = new int[2];\n  print(a[5]);\n}"
    (fun f ->
      let code, out = run_cli [ "run"; f ] in
      Alcotest.(check int) "out-of-bounds input-error exit" 3 code;
      check_contains "out-of-bounds" out "error[interp] at 3:";
      check_contains "out-of-bounds" out "out of bounds");
  with_tmp_program "def helper() { print(1); }" (fun f ->
      let code, out = run_cli [ "run"; f ] in
      Alcotest.(check int) "missing main input-error exit" 3 code;
      check_contains "missing main" out "error[typecheck]";
      check_contains "missing main" out "main")

let racy_src =
  "def main() {\n\
  \  val a: int[] = new int[4];\n\
  \  async { a[0] = 1; }\n\
  \  a[0] = 2;\n\
  \  print(a[0]);\n\
   }"

let test_budget_flags () =
  with_tmp_program racy_src (fun f ->
      (* a zero DP budget: still repaired, but degraded -> exit 4 *)
      let code, out = run_cli [ "repair"; f; "-q"; "--budget-dp"; "0" ] in
      Alcotest.(check int) "degraded exit" 4 code;
      check_contains "degradation reported" out "degraded:";
      check_contains "degradation names the fallback" out
        "per-edge intervals";
      (* an unaffordable fuel budget: typed budget diagnostic -> exit 4 *)
      let code2, out2 = run_cli [ "repair"; f; "-q"; "--budget-fuel"; "3" ] in
      Alcotest.(check int) "fuel-exhausted exit" 4 code2;
      check_contains "budget diagnostic" out2 "error[budget]";
      (* generous budgets change nothing *)
      let code3, _ =
        run_cli
          [ "repair"; f; "-q"; "--budget-dp"; "100000000"; "--budget-fuel";
            "100000000"; "--budget-sdpst"; "100000000" ]
      in
      Alcotest.(check int) "affordable budgets exit 0" 0 code3)

(* The static analysis layer: lint findings, the lint exit-code contract,
   and the --static-prune / --static-verify integration flags. *)
let test_lint () =
  (* racy program: static-race findings, exit 6 *)
  let code, out = run_cli [ "lint"; sample "figure5.mhj" ] in
  Alcotest.(check int) "findings exit" 6 code;
  check_contains "lint" out "warning[static-race]";
  check_contains "lint" out "finding(s)";
  (* --exit-zero downgrades the exit code but not the findings *)
  let code2, out2 = run_cli [ "lint"; "--exit-zero"; sample "figure5.mhj" ] in
  Alcotest.(check int) "exit-zero" 0 code2;
  check_contains "lint --exit-zero" out2 "warning[static-race]";
  (* a clean, synchronized program: no findings, exit 0 *)
  with_tmp_program
    "var x: int = 0;\ndef main() { finish { async { x = 1; } } print(x); }"
    (fun f ->
      let code3, out3 = run_cli [ "lint"; f ] in
      Alcotest.(check int) "clean exit" 0 code3;
      check_contains "clean lint" out3 "no findings");
  (* redundant finish is reported with its own rule name *)
  with_tmp_program "var x: int = 0;\ndef main() { finish { x = 1; } }"
    (fun f ->
      let code4, out4 = run_cli [ "lint"; f ] in
      Alcotest.(check int) "redundant-finish exit" 6 code4;
      check_contains "redundant finish" out4 "warning[redundant-finish]");
  (* no input at all is an input error, not "no findings" *)
  let code5, _ = run_cli [ "lint" ] in
  Alcotest.(check int) "no input exit" 3 code5

(* The affine refinement's user-visible surface: the stencil sample's
   racy-looking parallel loops are fully discharged (golden output), and
   --explain annotates every surviving pair with the refinement reason. *)
let test_lint_stencil () =
  let code, out = run_cli [ "lint"; sample "stencil.mhj" ] in
  Alcotest.(check int) "notes-only exit" 6 code;
  check_contains "disjoint note" out "info[provably-disjoint]";
  check_contains "note message" out "use affine indices that never collide";
  check_contains "both loops noted" out "2 finding(s)";
  if contains ~affix:"static-race" out then
    Alcotest.fail "stencil must produce no static-race finding";
  (* --explain: surviving pairs carry their refinement-failure reason *)
  let code2, out2 = run_cli [ "lint"; "--explain"; sample "quicksort.mhj" ] in
  Alcotest.(check int) "explain exit" 6 code2;
  check_contains "explain marker" out2 "[unrefined:";
  let code3, out3 = run_cli [ "lint"; sample "quicksort.mhj" ] in
  Alcotest.(check int) "plain exit" 6 code3;
  if contains ~affix:"[unrefined:" out3 then
    Alcotest.fail "reasons must only appear under --explain"

let test_static_verify_stencil () =
  (* the index-sensitive refinement upgrades the stencil to statically
     verified without any repair *)
  let code, out =
    run_cli [ "repair"; "-q"; "--static-verify"; sample "stencil.mhj" ]
  in
  Alcotest.(check int) "verified exit" 0 code;
  check_contains "verdict" out "statically verified: race-free for all inputs"

let test_detect_static_prune () =
  let code, out =
    run_cli [ "detect"; "--static-prune"; sample "figure5.mhj" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "prune stats" out "statement(s) stay monitored";
  (* the race count matches the unpruned run *)
  check_contains "race set unchanged" out "2 race report(s)";
  (* a program whose sequential part does real work: those accesses are
     skipped, while the race on x is still found *)
  with_tmp_program
    "var x: int = 0;\nvar y: int = 0;\n\
     def main() {\n\
    \  y = 1;\n\
    \  y = y + 1;\n\
    \  async { x = 1; }\n\
    \  x = 2;\n\
    \  print(y);\n\
     }"
    (fun f ->
      let code2, out2 = run_cli [ "detect"; "--static-prune"; f ] in
      Alcotest.(check int) "exit 0" 0 code2;
      check_contains "skipped accesses" out2 "proven sequential";
      check_contains "race still found" out2 "1 race report(s)";
      check_contains "race on x" out2 "W->W race on x")

let test_repair_static_verify () =
  (* figure5 repairs to a program with no unproven MHP pair *)
  let code, out =
    run_cli [ "repair"; "-q"; "--static-verify"; sample "figure5.mhj" ]
  in
  Alcotest.(check int) "verified exit" 0 code;
  check_contains "verdict" out "statically verified: race-free for all inputs";
  (* --static-prune composes with repair and converges to the same result *)
  let code2, out2 =
    run_cli
      [ "repair"; "-q"; "--static-prune"; "--static-verify";
        sample "figure5.mhj" ]
  in
  Alcotest.(check int) "pruned repair exit" 0 code2;
  check_contains "pruned repair" out2 "race-free"

(* ---------------- parallel backend and schedule fuzzing ------------- *)

(* Race-free divide-and-conquer program: every schedule prints 55. *)
let par_fib_src =
  "def fib(n: int, out: int[], i: int) {\n\
  \  if (n < 2) { out[i] = n; return; }\n\
  \  val a: int[] = new int[2];\n\
  \  finish {\n\
  \    async { fib(n - 1, a, 0); }\n\
  \    async { fib(n - 2, a, 1); }\n\
  \  }\n\
  \  out[i] = a[0] + a[1];\n\
   }\n\
   def main() {\n\
  \  val r: int[] = new int[1];\n\
  \  finish { async { fib(10, r, 0); } }\n\
  \  print(r[0]);\n\
   }"

(* Racy accumulator: schedules may lose updates and print differently. *)
let par_racy_src =
  "var sum: int = 0;\n\
   def main() {\n\
  \  val a: int[] = new int[8];\n\
  \  finish {\n\
  \    for (i = 0 to 7) {\n\
  \      async { a[i] = i; sum = sum + i; }\n\
  \    }\n\
  \  }\n\
  \  print(sum);\n\
   }"

let strip_wall_clock out =
  String.split_on_char '\n' out
  |> List.filter (fun l -> not (contains ~affix:"wall-clock" l))
  |> String.concat "\n"

let test_run_par () =
  with_tmp_program par_fib_src (fun f ->
      let code, out = run_cli [ "run"; f; "--par=2"; "--seed"; "3" ] in
      Alcotest.(check int) "exit 0" 0 code;
      check_contains "program output" out "55";
      check_contains "domain count" out "parallel run: 2 domain(s)";
      check_contains "seed echoed" out "seed 3";
      check_contains "task count" out "tasks spawned";
      (* --par with no value picks the host's recommended domain count *)
      let code2, out2 = run_cli [ "run"; f; "--par" ] in
      Alcotest.(check int) "auto exit 0" 0 code2;
      check_contains "auto domains" out2 "domain(s)")

let test_run_par_replay () =
  with_tmp_program par_racy_src (fun f ->
      (* same seed => bit-identical schedule, replayable from the CLI *)
      let c1, o1 = run_cli [ "run"; f; "--par=1"; "--seed"; "5" ] in
      let c2, o2 = run_cli [ "run"; f; "--par=1"; "--seed"; "5" ] in
      Alcotest.(check int) "exit 0" 0 c1;
      Alcotest.(check int) "replay exit 0" 0 c2;
      check_contains "fuzz mode announced" o1 "deterministic fuzz schedule";
      Alcotest.(check string)
        "same seed replays the same run"
        (strip_wall_clock o1) (strip_wall_clock o2);
      (* racy program: fuzzed schedules must expose >1 distinct outcome *)
      let outputs =
        List.init 10 (fun seed ->
            strip_wall_clock
              (snd
                 (run_cli
                    [ "run"; f; "--par=1"; "--seed"; string_of_int seed ])))
      in
      let distinct = List.sort_uniq compare outputs in
      if List.length distinct < 2 then
        Alcotest.failf
          "expected the racy program to diverge across 10 schedules, got \
           only:\n%s"
          (List.hd outputs))

let test_repair_validate_par () =
  with_tmp_program par_racy_src (fun f ->
      let code, out = run_cli [ "repair"; f; "-q"; "--validate-par" ] in
      Alcotest.(check int) "validated exit 0" 0 code;
      check_contains "all schedules ran" out "10/10 fuzzed schedule(s) run";
      check_contains "verdict" out "all match the sequential semantics";
      (* custom schedule count and base seed *)
      let code2, out2 =
        run_cli
          [ "repair"; f; "-q"; "--validate-par=3"; "--validate-seed"; "42" ]
      in
      Alcotest.(check int) "custom K exit 0" 0 code2;
      check_contains "3 schedules" out2 "3/3 fuzzed schedule(s) run";
      (* zero budget: validation deterministically skipped -> degraded *)
      let code3, out3 =
        run_cli
          [ "repair"; f; "-q"; "--validate-par"; "--budget-validate"; "0" ]
      in
      Alcotest.(check int) "degraded exit" 4 code3;
      check_contains "degradation recorded" out3 "degraded:";
      check_contains "skip reported" out3 "skipped under budget")

(* --trace/--metrics: schema-validate the emitted JSON with the same
   Obs.Json parser the files were written with.  The parser preserves
   input key order, so sortedness of the file is directly checkable. *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec keys_sorted = function
  | Obs.Json.Obj kvs ->
      let ks = List.map fst kvs in
      ks = List.sort compare ks && List.for_all keys_sorted (List.map snd kvs)
  | Obs.Json.List js -> List.for_all keys_sorted js
  | _ -> true

let test_repair_obs_files () =
  let trace = Filename.temp_file "tdrepair_cli" ".trace.json" in
  let metrics = Filename.temp_file "tdrepair_cli" ".metrics.json" in
  let code, _ =
    run_cli
      [
        "repair"; sample "figure5.mhj"; "-q"; "--trace"; trace; "--metrics";
        metrics;
      ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  (* trace file: Chrome trace format, keys sorted, timestamps monotone,
     one span per pipeline stage *)
  let tj = Obs.Json.of_string (read_file trace) in
  Alcotest.(check bool) "trace keys sorted" true (keys_sorted tj);
  (match Obs.Json.member "displayTimeUnit" tj with
  | Some (Obs.Json.Str "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing");
  let events =
    match Obs.Json.member "traceEvents" tj with
    | Some (Obs.Json.List evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let ts_of ev =
    match Obs.Json.member "ts" ev with
    | Some (Obs.Json.Float f) -> f
    | Some (Obs.Json.Int i) -> float_of_int i
    | _ -> Alcotest.fail "event missing ts"
  in
  let name_of ev =
    match Obs.Json.member "name" ev with
    | Some (Obs.Json.Str s) -> s
    | _ -> Alcotest.fail "event missing name"
  in
  let rec monotone = function
    | a :: b :: tl -> ts_of a <= ts_of b && monotone (b :: tl)
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone" true (monotone events);
  let names = List.map name_of events in
  List.iter
    (fun stage ->
      if not (List.mem stage names) then
        Alcotest.failf "trace missing pipeline stage span %S" stage)
    [
      "parse"; "typecheck"; "normalize"; "iteration"; "detect"; "sdpst-build";
      "scopecheck"; "nslca-group"; "depgraph"; "dp-place"; "rewrite";
    ];
  (* metrics file: one flat object of int counters, keys sorted, all
     four subsystems represented *)
  let mj = Obs.Json.of_string (read_file metrics) in
  Alcotest.(check bool) "metrics keys sorted" true (keys_sorted mj);
  (match mj with
  | Obs.Json.Obj kvs ->
      List.iter
        (fun (k, v) ->
          match v with
          | Obs.Json.Int _ -> ()
          | _ -> Alcotest.failf "metrics value for %s is not an int" k)
        kvs
  | _ -> Alcotest.fail "metrics file is not an object");
  let get k =
    match Obs.Json.member k mj with
    | Some (Obs.Json.Int i) -> i
    | _ -> Alcotest.failf "metrics missing key %s" k
  in
  Alcotest.(check bool) "detector counted accesses" true
    (get "detector.accesses" > 0);
  Alcotest.(check int) "two races found" 2 (get "detector.races");
  Alcotest.(check int) "one iteration" 1 (get "driver.iterations");
  Alcotest.(check int) "two finishes" 2 (get "driver.finishes_inserted");
  (* subsystems that did not run are still in the schema, at 0 *)
  Alcotest.(check int) "engine idle" 0 (get "engine.runs");
  Alcotest.(check int) "pruner idle" 0 (get "prune.stmts");
  Sys.remove trace;
  Sys.remove metrics

(* ------------- memory-bounded detection (--shadow-chunk/--spill) ----- *)

let test_shadow_spill_flags () =
  (* both flags are documented on detect and repair *)
  let code, out = run_cli [ "detect"; "--help=plain" ] in
  Alcotest.(check int) "detect help exit 0" 0 code;
  check_contains "detect help" out "--shadow-chunk";
  check_contains "detect help" out "--spill";
  let code2, out2 = run_cli [ "repair"; "--help=plain" ] in
  Alcotest.(check int) "repair help exit 0" 0 code2;
  check_contains "repair help" out2 "--shadow-chunk";
  check_contains "repair help" out2 "--spill";
  (* a tiny chunk size changes memory layout, never the reported races *)
  let code3, out3 =
    run_cli [ "detect"; sample "figure5.mhj"; "--shadow-chunk"; "16" ]
  in
  Alcotest.(check int) "chunked detect exit 0" 0 code3;
  check_contains "chunked races unchanged" out3 "2 race report(s)";
  let code4, out4 =
    run_cli
      [ "detect"; sample "figure5.mhj"; "--backend"; "vclock";
        "--shadow-chunk"; "16" ]
  in
  Alcotest.(check int) "chunked vclock exit 0" 0 code4;
  check_contains "chunked vclock races unchanged" out4 "2 race report(s)";
  (* a spill file that never receives records is removed again *)
  let spill = Filename.temp_file "tdrepair_cli" ".spill" in
  Sys.remove spill;
  let code5, out5 =
    run_cli [ "detect"; sample "figure5.mhj"; "--spill"; spill ]
  in
  Alcotest.(check int) "spill detect exit 0" 0 code5;
  check_contains "spill races unchanged" out5 "2 race report(s)";
  Alcotest.(check bool) "empty spill stub removed" false (Sys.file_exists spill);
  (* usage errors: non-positive or non-integer chunk is a CLI error *)
  let code6, out6 =
    run_cli [ "detect"; sample "figure5.mhj"; "--shadow-chunk"; "0" ]
  in
  Alcotest.(check int) "zero chunk rejected" 124 code6;
  check_contains "zero chunk diagnostic" out6 "chunk size must be positive";
  let code7, out7 =
    run_cli [ "detect"; sample "figure5.mhj"; "--shadow-chunk"; "huge" ]
  in
  Alcotest.(check int) "non-int chunk rejected" 124 code7;
  check_contains "non-int chunk diagnostic" out7 "not an integer";
  (* an unwritable spill path fails fast with the input-error exit code *)
  let code8, out8 =
    run_cli
      [ "detect"; sample "figure5.mhj"; "--spill";
        "/nonexistent-tdrepair-dir/s.trace" ]
  in
  Alcotest.(check int) "unwritable spill exit" 3 code8;
  check_contains "unwritable spill diagnostic" out8 "error: --spill";
  (* repair accepts both flags and reports the new gauges in --metrics *)
  let metrics = Filename.temp_file "tdrepair_cli" ".metrics.json" in
  let spill2 = Filename.temp_file "tdrepair_cli" ".spill" in
  Sys.remove spill2;
  let code9, out9 =
    run_cli
      [ "repair"; sample "figure5.mhj"; "-q"; "--shadow-chunk"; "32";
        "--spill"; spill2; "--metrics"; metrics ]
  in
  Alcotest.(check int) "chunked repair exit 0" 0 code9;
  check_contains "chunked repair converges" out9 "race-free";
  Alcotest.(check bool) "repair spill stub removed" false
    (Sys.file_exists spill2);
  let mj = Obs.Json.of_string (read_file metrics) in
  let get k =
    match Obs.Json.member k mj with
    | Some (Obs.Json.Int i) -> i
    | _ -> Alcotest.failf "metrics missing key %s" k
  in
  Alcotest.(check bool) "peak RSS gauge set" true
    (get "detector.peak_rss_kb" > 0);
  Alcotest.(check bool) "shadow slab gauge set" true
    (get "detector.shadow_slabs" > 0);
  Alcotest.(check bool) "shadow words gauge set" true
    (get "detector.shadow_words" > 0);
  Alcotest.(check int) "nothing spilled" 0 (get "detector.spilled_races");
  Sys.remove metrics

(* ------------------- detection backend selection -------------------- *)

let test_backend_flag () =
  (* the flag is documented on detect and repair *)
  let code, out = run_cli [ "detect"; "--help=plain" ] in
  Alcotest.(check int) "detect help exit 0" 0 code;
  check_contains "detect help" out "--backend";
  List.iter (check_contains "detect help backends" out)
    [ "espbags"; "vclock"; "auto" ];
  let code2, out2 = run_cli [ "repair"; "--help=plain" ] in
  Alcotest.(check int) "repair help exit 0" 0 code2;
  check_contains "repair help" out2 "--backend";
  (* a bad value is a usage error, not a crash *)
  let code3, out3 =
    run_cli [ "detect"; sample "figure5.mhj"; "--backend"; "bogus" ]
  in
  Alcotest.(check bool) "bad backend rejected" true (code3 <> 0);
  check_contains "bad backend lists choices" out3 "vclock";
  (* vclock reports the same races as the default backend on figure5 *)
  let code4, out4 =
    run_cli [ "detect"; sample "figure5.mhj"; "--backend"; "vclock" ]
  in
  Alcotest.(check int) "vclock detect exit 0" 0 code4;
  check_contains "vclock labeled" out4 "MRW vector-clock: 2 race report(s)";
  (* auto prints its pick and the reason before detecting *)
  let code5, out5 =
    run_cli [ "detect"; sample "figure5.mhj"; "--backend"; "auto" ]
  in
  Alcotest.(check int) "auto detect exit 0" 0 code5;
  check_contains "auto pick reported" out5 "auto backend:";
  check_contains "auto still detects" out5 "2 race report(s)"

let test_repair_backend_metrics () =
  (* a vclock repair converges to the same result and records its
     backend (and clock counters) in the metrics *)
  let metrics = Filename.temp_file "tdrepair_cli" ".metrics.json" in
  let code, out =
    run_cli
      [ "repair"; sample "figure5.mhj"; "-q"; "--backend"; "vclock";
        "--metrics"; metrics ]
  in
  Alcotest.(check int) "vclock repair exit 0" 0 code;
  check_contains "vclock repair converges" out "race-free after 1 iteration(s)";
  let mj = Obs.Json.of_string (read_file metrics) in
  let get k =
    match Obs.Json.member k mj with
    | Some (Obs.Json.Int i) -> i
    | _ -> Alcotest.failf "metrics missing key %s" k
  in
  Alcotest.(check int) "backend recorded as vclock" 1 (get "detector.backend");
  Alcotest.(check int) "two races found" 2 (get "detector.races");
  Alcotest.(check bool) "clock tasks counted" true (get "detector.tasks" > 0);
  Sys.remove metrics;
  (* the default backend records 0 *)
  let metrics2 = Filename.temp_file "tdrepair_cli" ".metrics.json" in
  let code2, _ =
    run_cli [ "repair"; sample "figure5.mhj"; "-q"; "--metrics"; metrics2 ]
  in
  Alcotest.(check int) "default repair exit 0" 0 code2;
  let mj2 = Obs.Json.of_string (read_file metrics2) in
  (match Obs.Json.member "detector.backend" mj2 with
  | Some (Obs.Json.Int 0) -> ()
  | _ -> Alcotest.fail "default backend must record detector.backend = 0");
  Sys.remove metrics2

(* The bench shootout's JSON schema: run `bench detector-quick` on one
   small benchmark and assert the vclock and parallel columns are
   present and sane.  The run also exercises the bench's own race-set
   identity assertions (all three backends vs the seed). *)
let bench_binary = Filename.concat here "../../bench/main.exe"

let test_bench_detector_quick_json () =
  let json = Filename.temp_file "tdrepair_cli" ".bench.json" in
  let out_file = Filename.temp_file "tdrepair_cli" ".out" in
  let cmd =
    Fmt.str
      "TDR_BENCH_SUITE=Fibonacci TDR_BENCH_DETECTOR_JSON=%s %s \
       detector-quick > %s 2>&1"
      (Filename.quote json)
      (Filename.quote bench_binary)
      (Filename.quote out_file)
  in
  let code = Sys.command cmd in
  let out = read_file out_file in
  Sys.remove out_file;
  Alcotest.(check int) "bench exit 0" 0 code;
  check_contains "identity line" out "byte-identical to the seed";
  check_contains "parallel identity line" out
    "parallel static race sets equal to the sequential MRW oracle";
  let j = Obs.Json.of_string (read_file json) in
  Sys.remove json;
  let top k =
    match Obs.Json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "bench JSON missing top-level key %s" k
  in
  (match top "par_domains" with
  | Obs.Json.Int n when n >= 1 -> ()
  | _ -> Alcotest.fail "par_domains must be a positive int");
  ignore (top "aggregate_vc_mrw_speedup_vs_seed");
  ignore (top "geomean_vc_mrw_speedup_vs_seed");
  let rows =
    match top "rows" with
    | Obs.Json.List rs -> rs
    | _ -> Alcotest.fail "rows must be a list"
  in
  Alcotest.(check int) "one filtered row" 1 (List.length rows);
  let row = List.hd rows in
  List.iter
    (fun k ->
      match Obs.Json.member k row with
      | Some (Obs.Json.Float f) when f > 0. -> ()
      | Some (Obs.Json.Int i) when i > 0 -> ()
      | Some _ -> Alcotest.failf "bench row key %s not positive" k
      | None -> Alcotest.failf "bench row missing key %s" k)
    [
      "accesses"; "mrw_s"; "ref_mrw_s"; "vc_srw_s"; "vc_mrw_s";
      "par_mrw_wall_s"; "vc_mrw_det_accesses_per_s";
    ];
  (* the speedup ratio can legitimately round to 0.000 when the seed's
     detection time hits the noise floor on a loaded machine, so only
     require it present and non-negative *)
  (match Obs.Json.member "vc_mrw_speedup_vs_seed" row with
  | Some (Obs.Json.Float f) when f >= 0. -> ()
  | Some (Obs.Json.Int i) when i >= 0 -> ()
  | Some _ -> Alcotest.fail "bench row key vc_mrw_speedup_vs_seed negative"
  | None -> Alcotest.fail "bench row missing key vc_mrw_speedup_vs_seed")

let test_serve_help () =
  let code, out = run_cli [ "serve"; "--help=plain" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "serve help" out "Unix-domain socket";
  List.iter (check_contains "serve help lists flag" out)
    [
      "--workers";
      "--queue";
      "--max-frame";
      "--retries";
      "--backoff-ms";
      "--hard-watchdog-ms";
      "--cache";
      "--socket";
    ];
  check_contains "serve help explains shedding" out "overloaded";
  (* the client command is documented too *)
  let code2, out2 = run_cli [ "call"; "--help=plain" ] in
  Alcotest.(check int) "call help exit 0" 0 code2;
  List.iter (check_contains "call help lists flag" out2)
    [ "--health"; "--shutdown"; "--op"; "--id" ]

let test_timeout_flag () =
  (* a 1 ms wall-clock budget cannot fit a real repair: the cooperative
     watchdog must fire and the CLI must exit 4 (degraded), same as a
     budget exhaustion *)
  let code, out =
    run_cli [ "repair"; sample "fib_buggy.mhj"; "--timeout-ms"; "1"; "-q" ]
  in
  Alcotest.(check int) "exit 4" 4 code;
  check_contains "timeout diagnosed" out "watchdog";
  (* a generous budget changes nothing *)
  let code2, out2 =
    run_cli
      [ "repair"; sample "fib_buggy.mhj"; "--timeout-ms"; "60000"; "-q" ]
  in
  Alcotest.(check int) "exit 0" 0 code2;
  check_contains "repair still converges" out2 "race-free"

let () =
  Alcotest.run "cli"
    [
      ( "cli",
        [
          Alcotest.test_case "help" `Quick test_help;
          Alcotest.test_case "detect fib" `Quick test_detect_fib;
          Alcotest.test_case "detect srw figure5" `Quick
            test_detect_srw_figure5;
          Alcotest.test_case "repair round-trip" `Quick test_repair_roundtrip;
          Alcotest.test_case "repair incremental" `Quick
            test_repair_incremental;
          Alcotest.test_case "repair report" `Quick test_repair_report;
          Alcotest.test_case "repair --strategy tournament" `Quick
            test_repair_tournament;
          Alcotest.test_case "detect --strategy preview" `Quick
            test_detect_strategy_preview;
          Alcotest.test_case "detect after isolated repair" `Quick
            test_detect_after_isolated_repair;
          Alcotest.test_case "emit/strip/detect" `Quick test_strip_then_repair;
          Alcotest.test_case "elide" `Quick test_elide;
          Alcotest.test_case "run metrics" `Quick test_run_metrics;
          Alcotest.test_case "coverage" `Quick test_coverage;
          Alcotest.test_case "benchmark listing" `Quick
            test_benchmarks_listing;
          Alcotest.test_case "trace file" `Quick test_trace_file;
          Alcotest.test_case "offline analyze" `Quick test_offline_analyze;
          Alcotest.test_case "--set override" `Quick test_set_override;
          Alcotest.test_case "grade-file" `Quick test_grade_file;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "located interp diagnostics" `Quick
            test_located_interp_diagnostics;
          Alcotest.test_case "budget flags" `Quick test_budget_flags;
          Alcotest.test_case "lint" `Quick test_lint;
          Alcotest.test_case "lint stencil" `Quick test_lint_stencil;
          Alcotest.test_case "stencil --static-verify" `Quick
            test_static_verify_stencil;
          Alcotest.test_case "detect --static-prune" `Quick
            test_detect_static_prune;
          Alcotest.test_case "repair --static-verify" `Quick
            test_repair_static_verify;
          Alcotest.test_case "run --par" `Quick test_run_par;
          Alcotest.test_case "run --par replay" `Quick test_run_par_replay;
          Alcotest.test_case "repair --validate-par" `Quick
            test_repair_validate_par;
          Alcotest.test_case "repair --trace/--metrics" `Quick
            test_repair_obs_files;
          Alcotest.test_case "--shadow-chunk/--spill" `Quick
            test_shadow_spill_flags;
          Alcotest.test_case "--backend flag" `Quick test_backend_flag;
          Alcotest.test_case "repair --backend metrics" `Quick
            test_repair_backend_metrics;
          Alcotest.test_case "bench detector-quick JSON" `Quick
            test_bench_detector_quick_json;
          Alcotest.test_case "serve/call --help" `Quick test_serve_help;
          Alcotest.test_case "--timeout-ms" `Quick test_timeout_flag;
        ] );
    ]
