(* Multi-input repair (paper §2): a race that only manifests for some
   inputs is missed by a single unlucky test but caught by the input set;
   placements merge into one program that is race-free for every input. *)

(* The race in the flag-guarded branch exists only when [mode] is 1;
   the race in the tail exists only when [count] is large enough to
   enter the loop. *)
let src =
  {|
var mode: int = 0;
var count: int = 0;
var x: int = 0;
var a: int[] = new int[8];

def main() {
  if (mode == 1) {
    async { x = 1; }
    print(x);
  }
  for (i = 0 to count - 1) {
    async { a[i] = i; }
  }
  var s: int = 0;
  for (i = 0 to 7) { s = s + a[i]; }
  print(s);
}
|}

let races prog =
  Espbags.Detector.race_count
    (fst (Espbags.Detector.detect Espbags.Detector.Mrw prog))

let with_input prog overrides =
  List.fold_left
    (fun p (g, v) -> Mhj.Transform.set_global_int p g v)
    prog overrides

let test_single_input_misses () =
  let prog = Mhj.Front.compile src in
  (* the weak input exposes no race at all *)
  let weak = with_input prog [ ("mode", 0); ("count", 0) ] in
  Alcotest.(check int) "weak input sees nothing" 0 (races weak);
  let report = Repair.Driver.repair weak in
  Alcotest.(check int) "so single-input repair inserts nothing" 0
    (List.length (Repair.Driver.total_placements report));
  (* but the strong inputs do race *)
  Alcotest.(check bool) "mode=1 races" true
    (races (with_input prog [ ("mode", 1) ]) > 0);
  Alcotest.(check bool) "count=4 races" true
    (races (with_input prog [ ("count", 4) ]) > 0)

let test_repair_multi () =
  let prog = Mhj.Front.compile src in
  let inputs =
    [
      ("weak", [ ("mode", 0); ("count", 0) ]);
      ("branch", [ ("mode", 1); ("count", 0) ]);
      ("loop", [ ("mode", 0); ("count", 4) ]);
    ]
  in
  let m = Repair.Driver.repair_multi ~inputs prog in
  Alcotest.(check bool) "all inputs converged" true m.all_converged;
  (* the final program is race-free under every input *)
  List.iter
    (fun (label, overrides) ->
      Alcotest.(check int)
        (label ^ " race-free")
        0
        (races (with_input m.final overrides)))
    inputs;
  (* both conditional races got their finishes *)
  Alcotest.(check int) "two finishes inserted" 2
    (Mhj.Ast.count_finishes m.final);
  (* semantics preserved for each input *)
  List.iter
    (fun (_, overrides) ->
      let ser = Rt.Interp.run_elision (with_input prog overrides) in
      let rep = Rt.Interp.run (with_input m.final overrides) in
      Alcotest.(check string) "same output" ser.output rep.output)
    inputs

let test_multi_coverage () =
  let prog = Mhj.Front.compile src in
  (* weak input alone leaves asyncs uncovered; the full set covers all *)
  let weak_only =
    Repair.Driver.repair_multi
      ~inputs:[ ("weak", [ ("mode", 0); ("count", 0) ]) ]
      prog
  in
  Alcotest.(check bool) "weak leaves async coverage gaps" true
    (Repair.Coverage.async_coverage weak_only.coverage < 1.0);
  let full =
    Repair.Driver.repair_multi
      ~inputs:
        [
          ("branch", [ ("mode", 1); ("count", 0) ]);
          ("loop", [ ("mode", 0); ("count", 8) ]);
        ]
      prog
  in
  Alcotest.(check int) "full set covers every async"
    full.coverage.total_asyncs full.coverage.covered_asyncs

let test_set_global_errors () =
  let prog = Mhj.Front.compile src in
  Alcotest.(check bool) "unknown global rejected" true
    (match Mhj.Transform.set_global_int prog "nope" 1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let p2 = Mhj.Front.compile "var f: float = 1.0;\ndef main() { print(f); }" in
  Alcotest.(check bool) "non-int global rejected" true
    (match Mhj.Transform.set_global_int p2 "f" 1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "multi"
    [
      ( "multi-input",
        [
          Alcotest.test_case "single input misses" `Quick
            test_single_input_misses;
          Alcotest.test_case "repair_multi fixes all" `Quick test_repair_multi;
          Alcotest.test_case "combined coverage" `Quick test_multi_coverage;
          Alcotest.test_case "set_global errors" `Quick
            test_set_global_errors;
        ] );
    ]
