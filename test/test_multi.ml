(* Multi-input repair (paper §2): a race that only manifests for some
   inputs is missed by a single unlucky test but caught by the input set;
   placements merge into one program that is race-free for every input. *)

(* The race in the flag-guarded branch exists only when [mode] is 1;
   the race in the tail exists only when [count] is large enough to
   enter the loop. *)
let src =
  {|
var mode: int = 0;
var count: int = 0;
var x: int = 0;
var a: int[] = new int[8];

def main() {
  if (mode == 1) {
    async { x = 1; }
    print(x);
  }
  for (i = 0 to count - 1) {
    async { a[i] = i; }
  }
  var s: int = 0;
  for (i = 0 to 7) { s = s + a[i]; }
  print(s);
}
|}

let races prog =
  Espbags.Detector.race_count
    (fst (Espbags.Detector.detect Espbags.Detector.Mrw prog))

let with_input prog overrides =
  List.fold_left
    (fun p (g, v) -> Mhj.Transform.set_global_int p g v)
    prog overrides

let test_single_input_misses () =
  let prog = Mhj.Front.compile src in
  (* the weak input exposes no race at all *)
  let weak = with_input prog [ ("mode", 0); ("count", 0) ] in
  Alcotest.(check int) "weak input sees nothing" 0 (races weak);
  let report = Repair.Driver.repair weak in
  Alcotest.(check int) "so single-input repair inserts nothing" 0
    (List.length (Repair.Driver.total_placements report));
  (* but the strong inputs do race *)
  Alcotest.(check bool) "mode=1 races" true
    (races (with_input prog [ ("mode", 1) ]) > 0);
  Alcotest.(check bool) "count=4 races" true
    (races (with_input prog [ ("count", 4) ]) > 0)

let test_repair_multi () =
  let prog = Mhj.Front.compile src in
  let inputs =
    [
      ("weak", [ ("mode", 0); ("count", 0) ]);
      ("branch", [ ("mode", 1); ("count", 0) ]);
      ("loop", [ ("mode", 0); ("count", 4) ]);
    ]
  in
  let m = Repair.Driver.repair_multi ~inputs prog in
  Alcotest.(check bool) "all inputs converged" true m.all_converged;
  (* the final program is race-free under every input *)
  List.iter
    (fun (label, overrides) ->
      Alcotest.(check int)
        (label ^ " race-free")
        0
        (races (with_input m.final overrides)))
    inputs;
  (* both conditional races got their finishes *)
  Alcotest.(check int) "two finishes inserted" 2
    (Mhj.Ast.count_finishes m.final);
  (* semantics preserved for each input *)
  List.iter
    (fun (_, overrides) ->
      let ser = Rt.Interp.run_elision (with_input prog overrides) in
      let rep = Rt.Interp.run (with_input m.final overrides) in
      Alcotest.(check string) "same output" ser.output rep.output)
    inputs

let test_multi_coverage () =
  let prog = Mhj.Front.compile src in
  (* weak input alone leaves asyncs uncovered; the full set covers all *)
  let weak_only =
    Repair.Driver.repair_multi
      ~inputs:[ ("weak", [ ("mode", 0); ("count", 0) ]) ]
      prog
  in
  Alcotest.(check bool) "weak leaves async coverage gaps" true
    (Repair.Coverage.async_coverage weak_only.coverage < 1.0);
  let full =
    Repair.Driver.repair_multi
      ~inputs:
        [
          ("branch", [ ("mode", 1); ("count", 0) ]);
          ("loop", [ ("mode", 0); ("count", 8) ]);
        ]
      prog
  in
  Alcotest.(check int) "full set covers every async"
    full.coverage.total_asyncs full.coverage.covered_asyncs

(* One input crashes mid-pipeline (its count drives the loop past the
   array bound); the other inputs must still be repaired and the combined
   report must name the failure. *)
let test_multi_partial_failure () =
  let prog = Mhj.Front.compile src in
  let inputs =
    [
      ("branch", [ ("mode", 1); ("count", 0) ]);
      ("crash", [ ("mode", 0); ("count", 20) ]);
      ("loop", [ ("mode", 0); ("count", 4) ]);
    ]
  in
  let m = Repair.Driver.repair_multi ~inputs prog in
  (match m.failures with
  | [ (label, d) ] ->
      Alcotest.(check string) "failed input is labelled" "crash" label;
      Alcotest.(check bool) "interp-stage diagnostic" true
        (d.Repair.Diag.stage = Repair.Diag.Interp);
      Alcotest.(check bool) "diagnostic is located" true
        (match d.Repair.Diag.loc with
        | Some l -> not (Mhj.Loc.is_dummy l)
        | None -> false)
  | fs -> Alcotest.failf "expected exactly one failure, got %d" (List.length fs));
  Alcotest.(check bool) "combined report flags the failure" false
    m.all_converged;
  Alcotest.(check int) "other inputs still processed" 2
    (List.length m.per_input);
  List.iter
    (fun (label, overrides) ->
      if label <> "crash" then
        Alcotest.(check int)
          (label ^ " race-free")
          0
          (races (with_input m.final overrides)))
    inputs;
  Alcotest.(check int) "both finishes inserted" 2
    (Mhj.Ast.count_finishes m.final)

(* A fuel budget only the cheap input fits under: the heavy input lands in
   failures with a budget-stage diagnostic; the cheap one still converges. *)
let test_multi_budget_exhaustion () =
  let prog = Mhj.Front.compile src in
  let cheap = [ ("mode", 1); ("count", 0) ] in
  let heavy = [ ("mode", 0); ("count", 8) ] in
  (* fuel also covers global-initializer setup that [work] excludes, so
     probe for the actual threshold of each input *)
  let fuel_needed ov =
    let p = with_input prog ov in
    let rec go f =
      match Rt.Interp.run ~fuel:f p with
      | _ -> f
      | exception Rt.Interp.Out_of_fuel -> go (f + 1)
    in
    go (Rt.Interp.run p).work
  in
  let f_cheap = fuel_needed cheap and f_heavy = fuel_needed heavy in
  Alcotest.(check bool) "inputs differ in cost" true (f_cheap < f_heavy);
  let budgets =
    { Repair.Guard.unlimited with Repair.Guard.fuel = Some ((f_cheap + f_heavy) / 2) }
  in
  let m =
    Repair.Driver.repair_multi ~budgets
      ~inputs:[ ("cheap", cheap); ("heavy", heavy) ]
      prog
  in
  (match m.failures with
  | [ ("heavy", d) ] ->
      Alcotest.(check bool) "budget-stage diagnostic" true
        (d.Repair.Diag.stage = Repair.Diag.Budget)
  | _ -> Alcotest.fail "expected exactly the heavy input to fail");
  Alcotest.(check bool) "not all converged" false m.all_converged;
  Alcotest.(check int) "cheap input repaired" 0
    (races (with_input m.final cheap))

let test_set_global_errors () =
  let prog = Mhj.Front.compile src in
  Alcotest.(check bool) "unknown global rejected" true
    (match Mhj.Transform.set_global_int prog "nope" 1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let p2 = Mhj.Front.compile "var f: float = 1.0;\ndef main() { print(f); }" in
  Alcotest.(check bool) "non-int global rejected" true
    (match Mhj.Transform.set_global_int p2 "f" 1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "multi"
    [
      ( "multi-input",
        [
          Alcotest.test_case "single input misses" `Quick
            test_single_input_misses;
          Alcotest.test_case "repair_multi fixes all" `Quick test_repair_multi;
          Alcotest.test_case "combined coverage" `Quick test_multi_coverage;
          Alcotest.test_case "partial failure" `Quick
            test_multi_partial_failure;
          Alcotest.test_case "budget exhaustion" `Quick
            test_multi_budget_exhaustion;
          Alcotest.test_case "set_global errors" `Quick
            test_set_global_errors;
        ] );
    ]
