(* Tests for dependence-graph construction (paper §5.1, Figures 10/11)
   including the vertex-coalescing optimization. *)

let build_graphs ?coalesce src =
  let prog = Mhj.Front.compile src in
  let det, res = Espbags.Detector.detect Espbags.Detector.Mrw prog in
  let races =
    Espbags.Race.dedupe_by_steps (Espbags.Detector.races det)
  in
  ignore res;
  let span, _ = Sdpst.Analysis.span_memo () in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : Espbags.Race.t) ->
      let lca = Sdpst.Lca.ns_lca r.src r.sink in
      let cur =
        Option.value ~default:(lca, []) (Hashtbl.find_opt tbl lca.Sdpst.Node.id)
      in
      Hashtbl.replace tbl lca.Sdpst.Node.id (fst cur, r :: snd cur))
    races;
  Hashtbl.fold
    (fun _ (lca, rs) acc ->
      Repair.Depgraph.build ?coalesce ~span lca (List.rev rs) :: acc)
    tbl []
  |> List.sort (fun a b ->
         Int.compare a.Repair.Depgraph.lca.Sdpst.Node.id
           b.Repair.Depgraph.lca.Sdpst.Node.id)

(* The paper's fib example at n = 3: the dependence graph of the subtree
   rooted at Async1 (Figure 10) has 4 non-scope children — Step,
   Async1', Async2', Step — and edges from both asyncs to the final
   combining step (Figure 11). *)
let fib3 =
  {|
def fib(ret: int[], reti: int, n: int) {
  if (n < 2) { ret[reti] = n; return; }
  val x: int[] = new int[1];
  val y: int[] = new int[1];
  async fib(x, 0, n - 1);
  async fib(y, 0, n - 2);
  ret[reti] = x[0] + y[0];
}
def main() {
  val r: int[] = new int[1];
  async fib(r, 0, 3);
}
|}

let test_fib_figure11 () =
  let graphs = build_graphs ~coalesce:false fib3 in
  (* groups: root (r[0] never read in main -> actually no race at root since
     main never reads r), Async0 (combining step of fib(3)), Async1 of
     fib(3) = fib(2)'s combining step *)
  let g =
    List.find
      (fun g ->
        Sdpst.Node.is_async g.Repair.Depgraph.lca
        && Repair.Depgraph.n_edges g = 2)
      graphs
  in
  let kinds =
    Array.to_list
      (Array.map
         (fun n -> Sdpst.Node.kind_name n.Sdpst.Node.kind)
         g.Repair.Depgraph.first)
  in
  (* async body: arg-evaluation step, then (through the call scope) the
     paper's four children of Figure 10 *)
  Alcotest.(check (list string))
    "children kinds"
    [ "step"; "step"; "async"; "async"; "step" ]
    kinds;
  Alcotest.(check (list (pair int int)))
    "edges are Figure 11's" [ (2, 4); (3, 4) ]
    (List.sort compare g.Repair.Depgraph.edges)

let test_crossing_queries () =
  let graphs = build_graphs ~coalesce:false fib3 in
  let g =
    List.find
      (fun g ->
        Sdpst.Node.is_async g.Repair.Depgraph.lca
        && Repair.Depgraph.n_edges g = 2)
      graphs
  in
  Alcotest.(check bool) "edge (2,4) crosses k=2" true
    (Repair.Depgraph.are_crossing g ~i:0 ~k:2 ~j:4);
  Alcotest.(check bool) "edge (2,4) crosses k=3" true
    (Repair.Depgraph.are_crossing g ~i:0 ~k:3 ~j:4);
  Alcotest.(check bool) "nothing crosses k=1" false
    (Repair.Depgraph.are_crossing g ~i:0 ~k:1 ~j:4);
  Alcotest.(check bool) "restricted to [2..3] nothing crosses" false
    (Repair.Depgraph.are_crossing g ~i:2 ~k:2 ~j:3)

let test_coalescing () =
  (* Many consecutive sink steps with the same predecessors collapse. *)
  let src =
    {|
var a: int[] = new int[8];
def main() {
  async { for (i = 0 to 7) { a[i] = i; } }
  var s: int = 0;
  for (i = 0 to 7) { s = s + a[i]; }
  print(s);
}
|}
  in
  let raw = build_graphs ~coalesce:false src in
  let merged = build_graphs ~coalesce:true src in
  let nraw = Repair.Depgraph.n_vertices (List.hd raw) in
  let nmerged = Repair.Depgraph.n_vertices (List.hd merged) in
  Alcotest.(check bool)
    (Fmt.str "coalescing shrinks (%d -> %d)" nraw nmerged)
    true (nmerged < nraw);
  Alcotest.(check int) "raw count recorded"
    nraw (List.hd merged).Repair.Depgraph.n_raw;
  (* the async is a singleton vertex in both *)
  let asyncs g =
    Array.to_list g.Repair.Depgraph.is_async
    |> List.filter (fun b -> b)
    |> List.length
  in
  Alcotest.(check int) "async vertices preserved" (asyncs (List.hd raw))
    (asyncs (List.hd merged))

let test_times_are_composed () =
  let src =
    {|
var a: int[] = new int[4];
def main() {
  async { work(50); a[0] = 1; }
  work(10);
  work(20);
  print(a[0]);
}
|}
  in
  let raw = List.hd (build_graphs ~coalesce:false src) in
  let merged = List.hd (build_graphs ~coalesce:true src) in
  let total g =
    Array.fold_left
      (fun acc (t, a) -> if a then acc else acc + t)
      0
      (Array.map2
         (fun t a -> (t, a))
         g.Repair.Depgraph.times g.Repair.Depgraph.is_async)
  in
  Alcotest.(check int)
    "non-async time preserved by coalescing" (total raw) (total merged)

(* Pure-sink coalescing regression (the mergesort DP blow-up).
   Sinks racing with different subsets of the sources must still collapse
   into one vertex, and the DP must still produce the two-async finish. *)
let test_pure_sink_coalescing () =
  let src =
    {|
var a: int[] = new int[16];
def main() {
  async { for (i = 0 to 7) { a[i] = i; } }
  async { for (i = 8 to 15) { a[i] = i; } }
  var s: int = 0;
  for (i = 0 to 15) { s = s + a[i]; }
  for (i = 0 to 15 by 3) { s = s + a[i]; }
  print(s);
}
|}
  in
  let prog = Mhj.Front.compile src in
  let det, _ = Espbags.Detector.detect Espbags.Detector.Mrw prog in
  let races = Espbags.Race.dedupe_by_steps (Espbags.Detector.races det) in
  let span, _ = Sdpst.Analysis.span_memo () in
  let lca = Sdpst.Lca.ns_lca (List.hd races).src (List.hd races).sink in
  let g = Repair.Depgraph.build ~span lca races in
  (* the ~40 sink steps (reading different cells, hence racing with
     different async subsets) must coalesce into very few vertices *)
  Alcotest.(check bool)
    (Fmt.str "few vertices (%d raw -> %d)" g.Repair.Depgraph.n_raw
       (Repair.Depgraph.n_vertices g))
    true
    (Repair.Depgraph.n_vertices g <= 8);
  let valid, _ = Repair.Valid.make_checker g in
  let out = Repair.Dp_place.solve ~valid g in
  Alcotest.(check bool) "resolves" true
    (Repair.Dp_place.resolves_all g out.finishes);
  Alcotest.(check int) "one finish interval" 1 (List.length out.finishes)

let () =
  Alcotest.run "depgraph"
    [
      ( "construction",
        [
          Alcotest.test_case "fib Figure 10/11" `Quick test_fib_figure11;
          Alcotest.test_case "crossing queries" `Quick test_crossing_queries;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "runs collapse" `Quick test_coalescing;
          Alcotest.test_case "times composed" `Quick test_times_are_composed;
          Alcotest.test_case "pure sinks collapse" `Quick
            test_pure_sink_coalescing;
        ] );
    ]
