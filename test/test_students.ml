(* The paper's §7.4 student-homework experiment: 59 quicksort submissions
   classified as 5 racy / 29 over-synchronized / 25 matching the tool. *)

let test_counts () =
  let summary, _ = Benchsuite.Students.grade_all ~n:48 () in
  Alcotest.(check int) "racy" 5 summary.racy;
  Alcotest.(check int) "over-synchronized" 29 summary.oversync;
  Alcotest.(check int) "optimal" 25 summary.optimal;
  Alcotest.(check int) "generator labels all confirmed" 0 summary.mismatches

let test_deterministic () =
  let subs1 = Benchsuite.Students.submissions ~n:48 () in
  let subs2 = Benchsuite.Students.submissions ~n:48 () in
  Alcotest.(check int) "59 submissions" 59 (List.length subs1);
  List.iter2
    (fun (a : Benchsuite.Students.submission) (b : Benchsuite.Students.submission) ->
      Alcotest.(check string) "same source" a.src b.src)
    subs1 subs2

let test_verdict_details () =
  let _, verdicts = Benchsuite.Students.grade_all ~n:48 () in
  List.iter
    (fun (v : Benchsuite.Students.verdict) ->
      match v.graded with
      | Benchsuite.Students.Racy ->
          if v.races = 0 then Alcotest.fail "racy verdict without races"
      | Benchsuite.Students.Oversync ->
          if not (v.races = 0 && v.cpl > v.tool_cpl) then
            Alcotest.fail "oversync verdict inconsistent"
      | Benchsuite.Students.Optimal ->
          if not (v.races = 0 && v.cpl <= v.tool_cpl) then
            Alcotest.fail "optimal verdict inconsistent")
    verdicts

let () =
  Alcotest.run "students"
    [
      ( "grading",
        [
          Alcotest.test_case "paper counts (5/29/25)" `Quick test_counts;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "verdict consistency" `Quick test_verdict_details;
        ] );
    ]
