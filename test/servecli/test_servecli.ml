(* End-to-end tests for [tdrepair serve]: a real daemon process driven
   over its Unix socket with [Serve.Client].

   Covers the golden request/reply transcripts (happy path, malformed
   frame, oversized frame, overload shed, cancel, health), graceful
   SIGTERM drain, and the multi-client soak: TDR_SOAK_JOBS mixed jobs
   under injected faults — including forced worker kills — asserting
   the daemon never dies, every job reaches exactly one terminal
   status, respawned workers keep draining the queue, and shutdown is
   clean.  `dune runtest` uses a small default job count; the @ci rule
   sets TDR_SOAK_JOBS=200. *)

module J = Obs.Json
module C = Serve.Client

let here = Filename.dirname Sys.executable_name
let binary = Filename.concat here "../../bin/tdrepair.exe"

let soak_jobs =
  match Option.bind (Sys.getenv_opt "TDR_SOAK_JOBS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 60

let racy_src =
  "def main() {\n  val a: int[] = new int[4];\n  async { a[0] = 1; }\n\
  \  a[0] = 2;\n  async { a[1] = 3; }\n  a[1] = 4;\n  print(a[0] + a[1]);\n}\n"

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

type daemon = { pid : int; sock : string; log : string }

let start_daemon ?(args = []) () =
  let sock = Filename.temp_file "tdr_serve" ".sock" in
  Sys.remove sock;
  let log = Filename.temp_file "tdr_serve" ".log" in
  let log_fd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let argv = [ binary; "serve"; "--socket"; sock ] @ args in
  let pid =
    Unix.create_process binary (Array.of_list argv) Unix.stdin log_fd log_fd
  in
  Unix.close log_fd;
  let rec wait n =
    if Sys.file_exists sock then ()
    else if n = 0 then
      Alcotest.failf "daemon did not come up; log:\n%s" (read_file log)
    else begin
      Unix.sleepf 0.05;
      wait (n - 1)
    end
  in
  wait 200;
  { pid; sock; log }

(* Wait for exit with a bounded clock; never leaves a daemon behind. *)
let wait_exit ?(timeout_s = 30.) d =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] d.pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill d.pid Sys.sigkill;
          ignore (Unix.waitpid [] d.pid);
          Alcotest.failf "daemon did not exit within %.0fs; log:\n%s"
            timeout_s (read_file d.log)
        end
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    | _, status -> status
  in
  go ()

(* ECHILD means the daemon was already reaped by [wait_exit]. *)
let alive d =
  match Unix.waitpid [ Unix.WNOHANG ] d.pid with
  | 0, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false

let stop_daemon d =
  if alive d then begin
    (try Unix.kill d.pid Sys.sigterm with Unix.Unix_error _ -> ());
    try ignore (wait_exit d) with Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  end

let with_daemon ?args f =
  let d = start_daemon ?args () in
  Fun.protect ~finally:(fun () -> stop_daemon d) (fun () -> f d)

(* ------------------------------------------------------------------ *)
(* Request builders and reply accessors                                *)
(* ------------------------------------------------------------------ *)

let job_req ?(op = "repair") ?(flags = []) ~id src =
  J.to_string
    (J.Obj
       ([ ("op", J.Str op); ("id", J.Str id); ("src", J.Str src) ]
       @ if flags = [] then [] else [ ("flags", J.Obj flags) ]))

let field key reply =
  match J.member key (J.of_string reply) with
  | Some v -> v
  | None -> Alcotest.failf "reply %s lacks %S" reply key

let str_field key reply =
  match field key reply with
  | J.Str s -> s
  | _ -> Alcotest.failf "reply %s: %S is not a string" reply key

let recv_ok c =
  match C.recv c with
  | Some line -> line
  | None -> Alcotest.fail "daemon closed the connection unexpectedly"

(* ------------------------------------------------------------------ *)
(* Golden transcripts                                                  *)
(* ------------------------------------------------------------------ *)

let test_happy_path () =
  with_daemon ~args:[ "--workers"; "2" ] @@ fun d ->
  let c = C.connect d.sock in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* health *)
  let h = Option.get (C.request c {|{"op":"health"}|}) in
  Alcotest.(check string) "health ok" "ok" (str_field "status" h);
  Alcotest.(check string) "health op" "health" (str_field "op" h);
  (* repair job *)
  C.send c (job_req ~id:"j1" racy_src);
  let r = recv_ok c in
  Alcotest.(check string) "id echoed" "j1" (str_field "id" r);
  Alcotest.(check string) "repair ok" "ok" (str_field "status" r);
  Alcotest.(check bool) "report present" true
    (J.member "report" (J.of_string r) <> None);
  (* detect job *)
  C.send c (job_req ~op:"detect" ~id:"j2" racy_src);
  let r = recv_ok c in
  Alcotest.(check string) "detect ok" "ok" (str_field "status" r);
  (match J.member "races" (field "report" r) with
  | Some (J.Int n) -> Alcotest.(check bool) "races found" true (n > 0)
  | _ -> Alcotest.fail "detect report lacks races");
  (* lint job *)
  C.send c (job_req ~op:"lint" ~id:"j3" racy_src);
  let r = recv_ok c in
  Alcotest.(check string) "lint ok" "ok" (str_field "status" r);
  (* shutdown drains *)
  let r = Option.get (C.request c {|{"op":"shutdown"}|}) in
  Alcotest.(check string) "draining" "draining" (str_field "status" r);
  let status = wait_exit d in
  Alcotest.(check bool) "clean exit" true (status = Unix.WEXITED 0)

let test_malformed_frame_conn_survives () =
  with_daemon @@ fun d ->
  let c = C.connect d.sock in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let r = Option.get (C.request c "{this is not json") in
  Alcotest.(check string) "typed error" "malformed-frame"
    (str_field "error" r);
  let r = Option.get (C.request c "[1,2,3]") in
  Alcotest.(check string) "non-object typed" "malformed-frame"
    (str_field "error" r);
  let r = Option.get (C.request c {|{"op":"frobnicate"}|}) in
  Alcotest.(check string) "bad request typed" "bad-request"
    (str_field "error" r);
  (* the SAME connection still serves well-formed requests *)
  let h = Option.get (C.request c {|{"op":"health"}|}) in
  Alcotest.(check string) "conn survived" "ok" (str_field "status" h)

let test_oversized_frame_closes_conn () =
  with_daemon ~args:[ "--max-frame"; "256" ] @@ fun d ->
  let c = C.connect d.sock in
  let big = String.make 1000 'x' in
  let r = Option.get (C.request c big) in
  Alcotest.(check string) "typed oversize" "oversized-frame"
    (str_field "error" r);
  (match field "limit" r with
  | J.Int n -> Alcotest.(check int) "limit echoed" 256 n
  | _ -> Alcotest.fail "limit not an int");
  Alcotest.(check bool) "connection closed" true (C.recv c = None);
  C.close c;
  (* the daemon itself is unharmed *)
  let c2 = C.connect d.sock in
  let h = Option.get (C.request c2 {|{"op":"health"}|}) in
  Alcotest.(check string) "daemon alive" "ok" (str_field "status" h);
  C.close c2

let slow_flags ms =
  [
    ("faults", J.List [ J.Str (Fmt.str "slow_stage:%d" ms) ]);
    ("timeout_ms", J.Int 30_000);
  ]

let test_overload_shed () =
  with_daemon ~args:[ "--workers"; "1"; "--queue"; "1" ] @@ fun d ->
  let c = C.connect d.sock in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let n = 6 in
  for i = 1 to n do
    C.send c (job_req ~id:(Fmt.str "s%d" i) ~flags:(slow_flags 150) racy_src)
  done;
  let replies = List.init n (fun _ -> recv_ok c) in
  let by_status s =
    List.length (List.filter (fun r -> str_field "status" r = s) replies)
  in
  Alcotest.(check int) "every job got exactly one terminal reply" n
    (List.length replies);
  Alcotest.(check bool) "some jobs shed" true (by_status "overloaded" >= 1);
  Alcotest.(check bool) "admitted jobs completed" true (by_status "ok" >= 1);
  Alcotest.(check int) "no other statuses" n
    (by_status "overloaded" + by_status "ok");
  (* each id answered exactly once *)
  let ids = List.sort compare (List.map (str_field "id") replies) in
  Alcotest.(check (list string)) "ids unique"
    (List.sort compare (List.init n (fun i -> Fmt.str "s%d" (i + 1))))
    ids

let test_cancel () =
  with_daemon ~args:[ "--workers"; "1" ] @@ fun d ->
  let c = C.connect d.sock in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* occupy the single worker, then cancel a queued job *)
  C.send c (job_req ~id:"busy" ~flags:(slow_flags 300) racy_src);
  Unix.sleepf 0.1;
  C.send c (job_req ~id:"victim" racy_src);
  Unix.sleepf 0.05;
  let r = Option.get (C.request c {|{"op":"cancel","id":"victim"}|}) in
  Alcotest.(check string) "cancelled" "cancelled" (str_field "status" r);
  Alcotest.(check string) "victim id" "victim" (str_field "id" r);
  (* cancelling it again is a typed error *)
  let r = Option.get (C.request c {|{"op":"cancel","id":"victim"}|}) in
  Alcotest.(check string) "double cancel rejected" "bad-request"
    (str_field "error" r);
  (* the busy job still reaches its own terminal reply *)
  let r = recv_ok c in
  Alcotest.(check string) "busy terminal" "busy" (str_field "id" r);
  Alcotest.(check string) "busy ok" "ok" (str_field "status" r)

let test_health_shape () =
  with_daemon ~args:[ "--workers"; "3"; "--queue"; "7" ] @@ fun d ->
  let c = C.connect d.sock in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (Option.get (C.request c (job_req ~id:"h1" racy_src)));
  let h = Option.get (C.request c {|{"op":"health"}|}) in
  let j = J.of_string h in
  let int_field k =
    match J.member k j with
    | Some (J.Int n) -> n
    | _ -> Alcotest.failf "health lacks int %S in %s" k h
  in
  Alcotest.(check int) "queue capacity" 7 (int_field "queue_capacity");
  Alcotest.(check bool) "uptime counted" true (int_field "uptime_ms" >= 0);
  (match J.member "workers" j with
  | Some (J.List ws) -> Alcotest.(check int) "3 worker states" 3 (List.length ws)
  | _ -> Alcotest.fail "health lacks workers");
  (match J.member "metrics" j with
  | Some (J.Obj kvs) ->
      Alcotest.(check bool) "metrics registry embedded" true
        (List.mem_assoc "serve.jobs_admitted" kvs
        && List.mem_assoc "serve.jobs_done" kvs)
  | _ -> Alcotest.fail "health lacks metrics");
  Alcotest.(check bool) "job counted" true
    (int_field "cache_misses" + int_field "cache_hits" >= 1)

let test_cached_reply_byte_identical () =
  with_daemon @@ fun d ->
  let c = C.connect d.sock in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let r1 = Option.get (C.request c (job_req ~id:"c1" racy_src)) in
  let r2 = Option.get (C.request c (job_req ~id:"c1" racy_src)) in
  Alcotest.(check bool) "first computed" true
    (contains ~affix:{|"cached": false|} r1);
  Alcotest.(check bool) "second cached" true
    (contains ~affix:{|"cached": true|} r2);
  (* identical program+flags => byte-identical report *)
  Alcotest.(check string) "report bytes equal"
    (J.to_string (field "report" r1))
    (J.to_string (field "report" r2))

let test_sigterm_drains_inflight () =
  with_daemon ~args:[ "--workers"; "1" ] @@ fun d ->
  let c = C.connect d.sock in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  C.send c (job_req ~id:"inflight" ~flags:(slow_flags 400) racy_src);
  Unix.sleepf 0.1;
  Unix.kill d.pid Sys.sigterm;
  (* the in-flight job must still get its terminal reply before exit *)
  let r = recv_ok c in
  Alcotest.(check string) "in-flight drained" "inflight" (str_field "id" r);
  Alcotest.(check string) "drained ok" "ok" (str_field "status" r);
  let status = wait_exit d in
  Alcotest.(check bool) "clean exit" true (status = Unix.WEXITED 0);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists d.sock)

(* ------------------------------------------------------------------ *)
(* Soak: many clients, mixed jobs, injected faults, forced kills       *)
(* ------------------------------------------------------------------ *)

let soak_flags seed =
  (* deterministic fault mix: clean, transient, slow, crashy *)
  match seed mod 8 with
  | 0 -> [ ("faults", J.List [ J.Str "detector_abort" ]) ]
  | 1 -> [ ("faults", J.List [ J.Str "interp_trap:60" ]) ]
  | 2 ->
      [
        ("faults", J.List [ J.Str "slow_stage:30" ]);
        ("timeout_ms", J.Int 10_000);
      ]
  | 3 when seed = 3 ->
      (* exactly one forced worker kill in the default run *)
      [ ("faults", J.List [ J.Str "worker_crash" ]) ]
  | 4 -> [ ("timeout_ms", J.Int 10_000) ]
  | 5 -> [ ("trace", J.Bool true) ]
  | _ -> []

let soak_op seed =
  match seed mod 3 with 0 -> "detect" | 1 -> "repair" | _ -> "lint"

let test_soak () =
  with_daemon
    ~args:
      [ "--workers"; "3"; "--queue"; "64"; "--hard-watchdog-ms"; "20000" ]
  @@ fun d ->
  let n_clients = 4 in
  let clients = List.init n_clients (fun _ -> C.connect d.sock) in
  Fun.protect ~finally:(fun () -> List.iter C.close clients) @@ fun () ->
  let per_client = (soak_jobs + n_clients - 1) / n_clients in
  let expected = Hashtbl.create 64 in
  (* submit round-robin from every client, reading replies as we go so
     socket buffers never fill *)
  List.iteri
    (fun ci c ->
      for k = 0 to per_client - 1 do
        let seed = (ci * per_client) + k in
        let id = Fmt.str "soak-%d" seed in
        Hashtbl.replace expected id ();
        (* repeat one program often so the cache sees hits; vary others *)
        let src =
          if seed mod 4 = 0 then racy_src
          else Fmt.str "def main() {\n  val a: int[] = new int[%d];\n  \
                        async { a[0] = %d; }\n  a[0] = 1;\n  print(a[0]);\n}\n"
                 (2 + (seed mod 5)) seed
        in
        C.send c
          (job_req ~op:(soak_op seed) ~id ~flags:(soak_flags seed) src)
      done)
    clients;
  (* collect every terminal reply, per client *)
  let statuses = Hashtbl.create 64 in
  List.iter
    (fun c ->
      for _ = 1 to per_client do
        let r = recv_ok c in
        let id = str_field "id" r in
        let st = str_field "status" r in
        (match Hashtbl.find_opt statuses id with
        | Some prev ->
            Alcotest.failf "job %s got TWO terminal replies (%s then %s)" id
              prev st
        | None -> Hashtbl.replace statuses id st);
        match st with
        | "ok" | "degraded" | "failed" | "overloaded" -> ()
        | other -> Alcotest.failf "job %s: unexpected status %s" id other
      done)
    clients;
  Alcotest.(check int) "every job reached exactly one terminal status"
    (Hashtbl.length expected) (Hashtbl.length statuses);
  Hashtbl.iter
    (fun id () ->
      if not (Hashtbl.mem statuses id) then
        Alcotest.failf "job %s never answered" id)
    expected;
  (* the daemon survived the faults, the killed worker was respawned,
     and the pool kept draining *)
  Alcotest.(check bool) "daemon still alive" true (alive d);
  let c = C.connect d.sock in
  let h = Option.get (C.request c {|{"op":"health"}|}) in
  C.close c;
  Alcotest.(check string) "healthy after soak" "ok" (str_field "status" h);
  let int_field k =
    match J.member k (J.of_string h) with
    | Some (J.Int n) -> n
    | _ -> Alcotest.failf "health lacks %S" k
  in
  Alcotest.(check bool) "worker kill respawned" true
    (int_field "respawns" >= 1);
  Alcotest.(check bool) "ok jobs flowed after the kill" true
    (int_field "crashes" >= 1);
  (* clean shutdown after the storm *)
  let c = C.connect d.sock in
  ignore (C.request c {|{"op":"shutdown"}|});
  C.close c;
  let status = wait_exit d in
  Alcotest.(check bool) "clean drain" true (status = Unix.WEXITED 0)

let () =
  Alcotest.run "servecli"
    [
      ( "transcripts",
        [
          Alcotest.test_case "happy path" `Quick test_happy_path;
          Alcotest.test_case "malformed frame: conn survives" `Quick
            test_malformed_frame_conn_survives;
          Alcotest.test_case "oversized frame: conn closed" `Quick
            test_oversized_frame_closes_conn;
          Alcotest.test_case "overload shed" `Quick test_overload_shed;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "health shape" `Quick test_health_shape;
          Alcotest.test_case "cached reply byte-identical" `Quick
            test_cached_reply_byte_identical;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "sigterm drains in-flight" `Quick
            test_sigterm_drains_inflight;
        ] );
      ( "soak",
        [ Alcotest.test_case (Fmt.str "%d mixed jobs" soak_jobs) `Slow
            test_soak ] );
    ]
