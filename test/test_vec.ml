(* Direct unit tests for the growable-vector primitives the detection hot
   path is built on: the polymorphic Tdrutil.Vec and the unboxed
   Tdrutil.Ivec.  Both back the struct-of-arrays shadow memory, so their
   growth, bounds and stack behaviour are pinned down here rather than
   only exercised indirectly through the detector. *)

module Vec = Tdrutil.Vec
module Ivec = Tdrutil.Ivec

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_empty () =
  let v : int Vec.t = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  Alcotest.(check int) "length" 0 (Vec.length v);
  Alcotest.(check (option int)) "last" None (Vec.last v);
  Alcotest.(check (list int)) "to_list" [] (Vec.to_list v)

let test_vec_capacity_hint () =
  (* The hint must not change observable behaviour, only the allocation
     pattern: push through several growth cycles and compare. *)
  let plain = Vec.create () and hinted = Vec.create ~capacity:1000 () in
  for i = 0 to 999 do
    Vec.push plain i;
    Vec.push hinted i
  done;
  Alcotest.(check int) "same length" (Vec.length plain) (Vec.length hinted);
  Alcotest.(check (list int)) "same contents" (Vec.to_list plain)
    (Vec.to_list hinted);
  (* a hint smaller than the default growth is also fine *)
  let tiny = Vec.create ~capacity:1 () in
  for i = 0 to 99 do
    Vec.push tiny i
  done;
  Alcotest.(check int) "tiny hint grows" 100 (Vec.length tiny)

let test_vec_get_set_bounds () =
  let v = Vec.of_list [ 10; 20; 30 ] in
  Vec.set v 2 33;
  Alcotest.(check int) "set/get" 33 (Vec.get v 2);
  Alcotest.check_raises "get -1" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v (-1)));
  Alcotest.check_raises "get len" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set len" (Invalid_argument "Vec.set") (fun () ->
      Vec.set v 3 0)

let test_vec_unsafe_get_set () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.unsafe_set v 1 22;
  Alcotest.(check int) "unsafe roundtrip" 22 (Vec.unsafe_get v 1);
  Alcotest.(check (list int)) "others untouched" [ 1; 22; 3 ] (Vec.to_list v)

let test_vec_fold_order () =
  let v = Vec.of_list [ "a"; "b"; "c" ] in
  Alcotest.(check string) "fold is left-to-right" "abc"
    (Vec.fold ( ^ ) "" v);
  Alcotest.(check int) "fold sum" 6 (Vec.fold ( + ) 0 (Vec.of_list [ 1; 2; 3 ]))

let test_vec_clear_reuse () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v);
  Vec.push v 7;
  Alcotest.(check (list int)) "reusable after clear" [ 7 ] (Vec.to_list v)

(* ------------------------------------------------------------------ *)
(* Ivec                                                                *)
(* ------------------------------------------------------------------ *)

let test_ivec_push_get () =
  let v = Ivec.create () in
  Alcotest.(check bool) "fresh is empty" true (Ivec.is_empty v);
  for i = 0 to 99 do
    Ivec.push v (i * 3)
  done;
  Alcotest.(check int) "length" 100 (Ivec.length v);
  Alcotest.(check int) "get 0" 0 (Ivec.get v 0);
  Alcotest.(check int) "get 99" 297 (Ivec.get v 99);
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Ivec.get")
    (fun () -> ignore (Ivec.get v 100));
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Ivec.set")
    (fun () -> Ivec.set v 100 0)

let test_ivec_capacity_and_make () =
  let v = Ivec.create ~capacity:64 () in
  Alcotest.(check int) "capacity does not set length" 0 (Ivec.length v);
  for i = 0 to 63 do
    Ivec.push v i
  done;
  Alcotest.(check int) "filled to capacity" 64 (Ivec.length v);
  Ivec.push v 64;
  Alcotest.(check int) "grows past capacity" 65 (Ivec.length v);
  let m = Ivec.make ~len:5 (-1) in
  Alcotest.(check (list int)) "make fills" [ -1; -1; -1; -1; -1 ]
    (Ivec.to_list m)

let test_ivec_ensure () =
  let v = Ivec.of_list [ 1; 2 ] in
  Ivec.ensure v 5 ~fill:(-1);
  Alcotest.(check (list int)) "grown with fill" [ 1; 2; -1; -1; -1 ]
    (Ivec.to_list v);
  Ivec.ensure v 3 ~fill:99;
  Alcotest.(check int) "ensure never shrinks" 5 (Ivec.length v);
  Ivec.set v 4 7;
  Alcotest.(check int) "slots writable" 7 (Ivec.get v 4);
  (* ensure across a growth boundary keeps the prefix *)
  let w = Ivec.create () in
  Ivec.push w 42;
  Ivec.ensure w 1000 ~fill:0;
  Alcotest.(check int) "prefix preserved" 42 (Ivec.get w 0);
  Alcotest.(check int) "fill applied" 0 (Ivec.get w 999)

let test_ivec_stack () =
  let v = Ivec.create () in
  Ivec.push v 1;
  Ivec.push v 2;
  Ivec.push v 3;
  Alcotest.(check int) "top" 3 (Ivec.top v);
  Alcotest.(check int) "pop" 3 (Ivec.pop v);
  Alcotest.(check int) "pop again" 2 (Ivec.pop v);
  Alcotest.(check int) "top after pops" 1 (Ivec.top v);
  Alcotest.(check int) "length" 1 (Ivec.length v);
  ignore (Ivec.pop v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Ivec.pop") (fun () ->
      ignore (Ivec.pop v));
  Alcotest.check_raises "top empty" (Invalid_argument "Ivec.top") (fun () ->
      ignore (Ivec.top v))

let test_ivec_fold_iter () =
  let v = Ivec.of_list [ 4; 5; 6 ] in
  Alcotest.(check int) "fold sum" 15 (Ivec.fold ( + ) 0 v);
  let seen = ref [] in
  Ivec.iter (fun x -> seen := x :: !seen) v;
  Alcotest.(check (list int)) "iter order" [ 6; 5; 4 ] !seen;
  Ivec.clear v;
  Alcotest.(check bool) "clear" true (Ivec.is_empty v)

let () =
  Alcotest.run "vec"
    [
      ( "vec",
        [
          Alcotest.test_case "empty" `Quick test_vec_empty;
          Alcotest.test_case "capacity hint" `Quick test_vec_capacity_hint;
          Alcotest.test_case "get/set bounds" `Quick test_vec_get_set_bounds;
          Alcotest.test_case "unsafe get/set" `Quick test_vec_unsafe_get_set;
          Alcotest.test_case "fold order" `Quick test_vec_fold_order;
          Alcotest.test_case "clear and reuse" `Quick test_vec_clear_reuse;
        ] );
      ( "ivec",
        [
          Alcotest.test_case "push/get" `Quick test_ivec_push_get;
          Alcotest.test_case "capacity and make" `Quick
            test_ivec_capacity_and_make;
          Alcotest.test_case "ensure" `Quick test_ivec_ensure;
          Alcotest.test_case "stack ops" `Quick test_ivec_stack;
          Alcotest.test_case "fold/iter/clear" `Quick test_ivec_fold_iter;
        ] );
    ]
