(* Vector-clock detection backend (lib/vclock): Clock unit tests, the
   sequential detector's differential against the ESP-bags seed oracle
   (via Diff_harness — both SRW and MRW, with and without static
   pruning), backend auto-selection, and smoke tests for the parallel
   sharded detector on hand-written programs (the deep cross-schedule
   parallel property lives in test_par.ml).

   `dune runtest` bounds the program count; the @ci alias runs the
   300-program deep pass (TDR_QCHECK_COUNT=300). *)

let compile = Mhj.Front.compile

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_basics () =
  let c = Vclock.Clock.create () in
  Alcotest.(check int) "fresh reads 0" 0 (Vclock.Clock.get c 5);
  Vclock.Clock.set c 3 7;
  Alcotest.(check int) "set/get" 7 (Vclock.Clock.get c 3);
  Alcotest.(check int) "beyond length reads 0" 0 (Vclock.Clock.get c 100);
  Vclock.Clock.incr c 3;
  Alcotest.(check int) "incr" 8 (Vclock.Clock.get c 3);
  Vclock.Clock.incr c 60;
  Alcotest.(check int) "incr grows from 0" 1 (Vclock.Clock.get c 60);
  Alcotest.(check bool) "covers equal" true (Vclock.Clock.covers c 3 8);
  Alcotest.(check bool) "covers below" true (Vclock.Clock.covers c 3 1);
  Alcotest.(check bool) "not covers above" false (Vclock.Clock.covers c 3 9);
  Alcotest.(check bool) "covers zero anywhere" true
    (Vclock.Clock.covers c 999 0)

let test_clock_copy_independent () =
  let a = Vclock.Clock.create () in
  Vclock.Clock.set a 1 4;
  let b = Vclock.Clock.copy a in
  Vclock.Clock.incr b 1;
  Vclock.Clock.set b 9 2;
  Alcotest.(check int) "copy sees original" 5 (Vclock.Clock.get b 1);
  Alcotest.(check int) "original untouched" 4 (Vclock.Clock.get a 1);
  Alcotest.(check int) "original not grown" 0 (Vclock.Clock.get a 9)

let test_clock_merge () =
  let a = Vclock.Clock.create () and b = Vclock.Clock.create () in
  Vclock.Clock.set a 0 3;
  Vclock.Clock.set a 2 1;
  Vclock.Clock.set b 0 2;
  Vclock.Clock.set b 4 9;
  Vclock.Clock.merge ~into:a b;
  Alcotest.(check int) "pointwise max keeps larger" 3 (Vclock.Clock.get a 0);
  Alcotest.(check int) "untouched slot survives" 1 (Vclock.Clock.get a 2);
  Alcotest.(check int) "merge grows" 9 (Vclock.Clock.get a 4);
  (* merge must give a's clock every entry b covers: the join rule *)
  for i = 0 to 5 do
    if Vclock.Clock.covers b i (Vclock.Clock.get b i) then
      Alcotest.(check bool)
        (Fmt.str "a covers b's slot %d" i)
        true
        (Vclock.Clock.covers a i (Vclock.Clock.get b i))
  done

(* Fork/join happens-before through the detector's own transitions:
   parent epochs before a fork are covered by the child (inherited),
   the parent's post-fork epoch is not (concurrent), and a finish-end
   merge restores coverage. *)
let test_clock_happens_before () =
  let det = Vclock.Seq.make Vclock.Seq.Mrw in
  let m = det.Vclock.Seq.monitor in
  let tree = Sdpst.Node.create_tree ~main_bid:0 in
  let n = tree.Sdpst.Node.root in
  m.Rt.Monitor.on_task_begin n;
  (* root = task 0 *)
  m.Rt.Monitor.on_finish_begin n;
  let root_clock = det.Vclock.Seq.cur in
  let pre_fork = Vclock.Clock.get root_clock 0 in
  m.Rt.Monitor.on_task_begin n;
  (* child = task 1 *)
  let child_clock = det.Vclock.Seq.cur in
  Alcotest.(check bool) "child covers parent's pre-fork epoch" true
    (Vclock.Clock.covers child_clock 0 pre_fork);
  let post_fork = Vclock.Clock.get root_clock 0 in
  Alcotest.(check bool) "fork bumped the parent's epoch" true
    (post_fork > pre_fork);
  Alcotest.(check bool) "child does not cover post-fork epoch" false
    (Vclock.Clock.covers child_clock 0 post_fork);
  let child_epoch = Vclock.Clock.get child_clock 1 in
  m.Rt.Monitor.on_task_end n;
  (* back in the root: the child ended but its finish is still open *)
  Alcotest.(check bool) "parent does not cover unjoined child" false
    (Vclock.Clock.covers det.Vclock.Seq.cur 1 child_epoch);
  m.Rt.Monitor.on_finish_end n;
  Alcotest.(check bool) "join merges the child's epoch" true
    (Vclock.Clock.covers det.Vclock.Seq.cur 1 child_epoch)

(* ------------------------------------------------------------------ *)
(* Sequential differential vs the ESP-bags seed oracle                 *)
(* ------------------------------------------------------------------ *)

let diff_tests =
  Diff_harness.diff_tests
    ~backends:[ Diff_harness.vclock ]
    ~modes:[ Espbags.Detector.Srw; Espbags.Detector.Mrw ]
    ~prunes:[ false ] ()
  @ Diff_harness.diff_tests
      ~backends:[ Diff_harness.vclock ]
      ~modes:[ Espbags.Detector.Srw; Espbags.Detector.Mrw ]
      ~prunes:[ true ] ()
  (* Memory-bounded paths (DESIGN.md §15): tiny chunks force the
     multi-chunk shadow slab, a 2-record spill cap forces the on-disk
     race round-trip.  Reports must stay byte-identical. *)
  @ Diff_harness.diff_tests
      ~backends:[ Diff_harness.vclock_chunked; Diff_harness.vclock_spilled ]
      ~modes:[ Espbags.Detector.Srw; Espbags.Detector.Mrw ]
      ~prunes:[ false ] ()
  @ Diff_harness.diff_tests
      ~backends:[ Diff_harness.vclock_spilled ]
      ~modes:[ Espbags.Detector.Mrw ]
      ~prunes:[ true ] ()

(* ------------------------------------------------------------------ *)
(* Backend auto-selection                                              *)
(* ------------------------------------------------------------------ *)

let test_select () =
  let choice src =
    fst (Vclock.Select.choose (compile src))
  in
  Alcotest.(check string) "no tasks -> espbags" "espbags"
    (Fmt.str "%a" Vclock.Select.pp_choice
       (choice "def main() { print(1); }"));
  Alcotest.(check string) "loop fan-out -> vclock" "vclock"
    (Fmt.str "%a" Vclock.Select.pp_choice
       (choice
          "var g: int[] = new int[8];\n\
           def main() { finish { for (i = 0 to 7) { async { g[i] = i; } } } }"));
  Alcotest.(check string) "deep nesting -> espbags" "espbags"
    (Fmt.str "%a" Vclock.Select.pp_choice
       (choice
          "var g: int[] = new int[4];\n\
           def main() {\n\
          \  finish { async { async { async { g[0] = 1; } } } }\n\
           }"));
  let _, reason =
    Vclock.Select.choose (compile "def main() { async { print(1); } }")
  in
  Alcotest.(check bool) "reason is non-empty" true (String.length reason > 0)

(* ------------------------------------------------------------------ *)
(* Parallel detector smoke tests                                       *)
(* ------------------------------------------------------------------ *)

let racy_src =
  "var g: int[] = new int[8];\n\
   var sum: int = 0;\n\
   def main() {\n\
  \  finish {\n\
  \    for (i = 0 to 7) {\n\
  \      async { g[i] = i; sum = sum + i; }\n\
  \    }\n\
  \  }\n\
  \  print(sum);\n\
   }"

let racefree_src =
  "var g: int[] = new int[8];\n\
   def main() {\n\
  \  finish {\n\
  \    for (i = 0 to 7) {\n\
  \      async { g[i] = i * 2; }\n\
  \    }\n\
  \  }\n\
  \  print(g[3]);\n\
   }"

(* Block ids are assigned per Front.compile call, so the oracle and the
   parallel runs must share one compiled program for keys to line up. *)
let seq_oracle_keys prog =
  let det, _ = Espbags.Detector.detect Espbags.Detector.Mrw prog in
  List.sort_uniq compare
    (List.map Espbags.Race.static_key_of_race (Espbags.Detector.races det))

let test_pardet_racy () =
  let prog = compile racy_src in
  let expected = seq_oracle_keys prog in
  Alcotest.(check bool) "oracle finds the sum race" true (expected <> []);
  List.iter
    (fun mode ->
      let det, _ = Vclock.Pardet.detect ~mode prog in
      Alcotest.(check bool) "not clean" false (Vclock.Pardet.clean det);
      Alcotest.(check int)
        "race_count agrees with races"
        (List.length (Vclock.Pardet.races det))
        (Vclock.Pardet.race_count det);
      if Vclock.Pardet.races det <> expected then
        Alcotest.fail
          (Fmt.str "parallel race set differs@.par: @[%a@]@.seq: @[%a@]"
             Fmt.(list ~sep:comma Espbags.Race.pp_static_key)
             (Vclock.Pardet.races det)
             Fmt.(list ~sep:comma Espbags.Race.pp_static_key)
             expected))
    [
      Par.Engine.Fuzz { seed = 1 };
      Par.Engine.Fuzz { seed = 42 };
      Par.Engine.Domains { n = 2; seed = 1 };
    ]

let test_pardet_racefree () =
  List.iter
    (fun mode ->
      let det, res = Vclock.Pardet.detect ~mode (compile racefree_src) in
      Alcotest.(check bool) "clean" true (Vclock.Pardet.clean det);
      Alcotest.(check string) "output intact" "6\n" res.Par.Engine.output;
      let stats = Vclock.Pardet.stats det in
      Alcotest.(check bool)
        "accesses counted" true
        (List.assoc "detector.accesses" stats > 0);
      Alcotest.(check bool)
        "tasks counted" true
        (List.assoc "detector.tasks" stats >= 9))
    [ Par.Engine.Fuzz { seed = 3 }; Par.Engine.Domains { n = 2; seed = 1 } ]

(* Sequential vclock detection through the driver-facing stats contract:
   Seq.stats carries the vclock-specific keys the metrics registry
   declares. *)
let test_seq_stats_keys () =
  let det, _ = Vclock.Seq.detect Vclock.Seq.Mrw (compile racy_src) in
  let stats = Vclock.Seq.stats det in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k stats))
    [
      "detector.accesses";
      "detector.races";
      "detector.tasks";
      "detector.clock_merges";
      "detector.scan_entries";
    ];
  Alcotest.(check bool) "saw tasks" true (List.assoc "detector.tasks" stats >= 9)

let () =
  Alcotest.run "vclock"
    [
      ( "clock",
        [
          Alcotest.test_case "basics" `Quick test_clock_basics;
          Alcotest.test_case "copy is independent" `Quick
            test_clock_copy_independent;
          Alcotest.test_case "merge is pointwise max" `Quick test_clock_merge;
          Alcotest.test_case "fork/join happens-before" `Quick
            test_clock_happens_before;
        ] );
      ("differential", List.map QCheck_alcotest.to_alcotest diff_tests);
      ("select", [ Alcotest.test_case "heuristic" `Quick test_select ]);
      ( "parallel",
        [
          Alcotest.test_case "racy program matches oracle" `Quick
            test_pardet_racy;
          Alcotest.test_case "race-free program is clean" `Quick
            test_pardet_racefree;
          Alcotest.test_case "seq stats keys" `Quick test_seq_stats_keys;
        ] );
    ]
