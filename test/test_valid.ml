(* Tests for scope-validity (paper Algorithm 2, Figure 5) and the
   insertion-point construction. *)

let graph_of src =
  let prog = Mhj.Front.compile src in
  let det, _res = Espbags.Detector.detect Espbags.Detector.Mrw prog in
  let races = Espbags.Race.dedupe_by_steps (Espbags.Detector.races det) in
  let span, _ = Sdpst.Analysis.span_memo () in
  let lca = Sdpst.Lca.ns_lca (List.hd races).src (List.hd races).sink in
  let mine =
    List.filter
      (fun (r : Espbags.Race.t) ->
        (Sdpst.Lca.ns_lca r.src r.sink).Sdpst.Node.id = lca.Sdpst.Node.id)
      races
  in
  (prog, Repair.Depgraph.build ~coalesce:false ~span lca mine)

(* Paper Figure 5: A1, A2 inside an if-block; A3, A4 outside.  Races
   A2 -> A4 and A3 -> A4. *)
let figure5 =
  {|
var x: int = 0;
var y: int = 0;
def main() {
  if (1 < 2) {
    async { work(5); }
    async { x = 1; }
  }
  async { y = 2; }
  async { print(x + y); }
}
|}

(* vertex indices in the dependence graph at the root: the if's scope is
   transparent, so vertices are [step(cond); A1; A2; A3; A4] = 0..4 *)

let test_figure5_validity () =
  let _prog, g = graph_of figure5 in
  Alcotest.(check int) "five vertices" 5 (Repair.Depgraph.n_vertices g);
  let valid ~i ~j =
    Option.is_some (Repair.Valid.insertion_for g ~i ~j)
  in
  (* wrapping A2 and A3 without A1 would cut the if-scope *)
  Alcotest.(check bool) "A2..A3 invalid" false (valid ~i:2 ~j:3);
  (* legal repairs from the paper's discussion *)
  Alcotest.(check bool) "A2 alone valid" true (valid ~i:2 ~j:2);
  Alcotest.(check bool) "A3 alone valid" true (valid ~i:3 ~j:3);
  Alcotest.(check bool) "A1..A3 valid" true (valid ~i:1 ~j:3);
  Alcotest.(check bool) "A1..A2 valid" true (valid ~i:1 ~j:2)

let test_figure5_depth_formulation_agrees () =
  let _prog, g = graph_of figure5 in
  for i = 0 to Repair.Depgraph.n_vertices g - 1 do
    for j = i to Repair.Depgraph.n_vertices g - 1 do
      let by_depth = Repair.Valid.valid_by_depths g ~i ~j in
      let by_insertion =
        Option.is_some (Repair.Valid.insertion_for g ~i ~j)
      in
      (* The direct construction refines the depth test with statement
         boundaries, so it can only be stricter. *)
      if by_insertion && not by_depth then
        Alcotest.failf "(%d,%d): insertion exists but depth test rejects" i j
    done
  done

let test_figure5_placements () =
  let _prog, g = graph_of figure5 in
  (* A2 alone: the finish lands inside the if's block *)
  (match Repair.Valid.insertion_for g ~i:2 ~j:2 with
  | Some ins ->
      Alcotest.(check bool)
        "parent is the if scope" true
        (Sdpst.Node.is_scope ins.parent)
  | None -> Alcotest.fail "A2 alone should be insertable");
  (* A1..A3: the finish must climb out to the main block, wrapping the
     whole if statement plus A3 *)
  match Repair.Valid.insertion_for g ~i:1 ~j:3 with
  | Some ins ->
      Alcotest.(check bool)
        "parent is the root" true
        (ins.parent.Sdpst.Node.kind = Sdpst.Node.Root);
      Alcotest.(check int)
        "wraps two statements"
        (ins.placement.hi - ins.placement.lo)
        1
  | None -> Alcotest.fail "A1..A3 should be insertable"

let test_end_to_end_figure5 () =
  (* The whole tool on Figure 5: both races fixed, scope respected. *)
  let prog = Mhj.Front.compile figure5 in
  let report = Repair.Driver.repair prog in
  Alcotest.(check bool) "converged" true report.converged;
  let det, _ =
    Espbags.Detector.detect Espbags.Detector.Mrw report.program
  in
  Alcotest.(check int) "race-free" 0 (Espbags.Detector.race_count det);
  (* output equals the serial elision *)
  let rep = Rt.Interp.run report.program in
  let ser = Rt.Interp.run_elision prog in
  Alcotest.(check string) "semantics" ser.output rep.output

let test_decl_visibility () =
  (* wrapping must not capture a declaration used later; here the only
     race fix must avoid wrapping the decl of b *)
  let src =
    {|
var x: int = 0;
def main() {
  async { x = 1; }
  val b: int[] = new int[1];
  b[0] = x;
  print(b[0]);
}
|}
  in
  let prog = Mhj.Front.compile src in
  let report = Repair.Driver.repair prog in
  Alcotest.(check bool) "converged" true report.converged;
  (* the repaired program still type-checks and runs: decl not captured *)
  let printed = Mhj.Pretty.program_to_string report.program in
  match Mhj.Front.compile printed with
  | exception _ -> Alcotest.fail "repaired program is ill-formed"
  | reparsed ->
      let r = Rt.Interp.run reparsed in
      Alcotest.(check string) "runs" "1" (String.trim r.output)

let () =
  Alcotest.run "valid"
    [
      ( "figure5",
        [
          Alcotest.test_case "validity" `Quick test_figure5_validity;
          Alcotest.test_case "depth formulation agrees" `Quick
            test_figure5_depth_formulation_agrees;
          Alcotest.test_case "insertion points" `Quick test_figure5_placements;
          Alcotest.test_case "end-to-end repair" `Quick test_end_to_end_figure5;
        ] );
      ( "declarations",
        [ Alcotest.test_case "visibility preserved" `Quick test_decl_visibility ] );
    ]
