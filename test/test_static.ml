(* Tests for the static analysis layer (lib/static): MHP pairs, alias
   summaries, race conflicts, the lint rules, and the two properties that
   justify wiring the layer into the dynamic pipeline — soundness of the
   static MHP relation w.r.t. the ESP-bags detector, and race-set identity
   under static pruning. *)

let compile = Mhj.Front.compile

let analyze src =
  let prog = compile src in
  let summary = Static.Summary.build prog in
  let mhp = Static.Mhp.analyze prog summary in
  (prog, summary, mhp)

let conflicts src =
  let _, summary, mhp = analyze src in
  Static.Racecheck.conflicts summary mhp

let conflicts_coarse src =
  let _, summary, mhp = analyze src in
  Static.Racecheck.conflicts ~refine:false summary mhp

let qcount default =
  match Option.bind (Sys.getenv_opt "TDR_QCHECK_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

(* The statement ids of every async body in source order. *)
let async_body_sids prog =
  let acc = ref [] in
  Mhj.Ast.iter_stmts
    (fun st ->
      match st.Mhj.Ast.s with
      | Mhj.Ast.Async body -> acc := body.Mhj.Ast.sid :: !acc
      | _ -> ())
    prog;
  List.rev !acc

let rule_names findings =
  List.sort_uniq compare
    (List.map (fun (f : Static.Finding.t) -> Static.Finding.rule_name f.rule)
       findings)

(* ------------------------------------------------------------------ *)
(* MHP unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_sibling_asyncs_mhp () =
  let prog, _, mhp =
    analyze "var x: int = 0;\ndef main() { async { x = 1; } async { x = 2; } }"
  in
  match async_body_sids prog with
  | [ a; b ] ->
      Alcotest.(check bool) "bodies may run in parallel" true
        (Static.Mhp.mhp mhp a b);
      Alcotest.(check bool) "no self-pair without a loop" false
        (Static.Mhp.mhp mhp a a)
  | sids -> Alcotest.failf "expected 2 async bodies, got %d" (List.length sids)

let test_finish_kills_mhp () =
  let prog, summary, mhp =
    analyze
      "var x: int = 0;\n\
       def main() { finish { async { x = 1; } } x = 2; }"
  in
  let body =
    match async_body_sids prog with
    | [ s ] -> s
    | _ -> Alcotest.fail "expected one async"
  in
  (* the final assignment is some statement after the finish; no statement
     outside the finish may overlap the async body *)
  Mhj.Ast.iter_stmts
    (fun st ->
      if st.Mhj.Ast.sid <> body then
        Alcotest.(check bool)
          (Fmt.str "sid %d vs async body" st.Mhj.Ast.sid)
          false
          (Static.Mhp.mhp mhp st.Mhj.Ast.sid body))
    prog;
  ignore summary

let test_loop_self_pair () =
  let prog, _, mhp =
    analyze
      "var x: int = 0;\n\
       def main() { for (i = 0 to 3) { async { x = x + 1; } } }"
  in
  match async_body_sids prog with
  | [ body ] ->
      Alcotest.(check bool) "cross-iteration self-pair" true
        (Static.Mhp.mhp mhp body body)
  | _ -> Alcotest.fail "expected one async"

let test_interprocedural_escape () =
  (* f leaves its async unjoined: the escape crosses the call boundary *)
  let escaping =
    conflicts
      "var x: int = 0;\n\
       def f() { async { x = 1; } }\n\
       def main() { f(); x = 2; }"
  in
  Alcotest.(check bool) "escaping async conflicts with caller" true
    (escaping <> []);
  (* g joins its async internally: nothing escapes, nothing conflicts *)
  let joined =
    conflicts
      "var x: int = 0;\n\
       def g() { finish { async { x = 1; } } }\n\
       def main() { g(); x = 2; }"
  in
  Alcotest.(check int) "joined async is invisible to the caller" 0
    (List.length joined)

(* ------------------------------------------------------------------ *)
(* Alias summary / race-check unit tests                               *)
(* ------------------------------------------------------------------ *)

let test_alias_conflict () =
  (* b aliases a, so the two writes collide through different names *)
  let cs =
    conflicts
      "def main() {\n\
      \  val a: int[] = new int[2];\n\
      \  val b: int[] = a;\n\
      \  async { a[0] = 1; }\n\
      \  b[0] = 2;\n\
       }"
  in
  Alcotest.(check bool) "aliased arrays conflict" true (cs <> []);
  Alcotest.(check bool) "witness is a write/write" true
    (List.exists (fun (c : Static.Racecheck.conflict) -> c.kind = `Write_write)
       cs)

let test_disjoint_allocations_no_conflict () =
  let cs =
    conflicts
      "def main() {\n\
      \  val a: int[] = new int[2];\n\
      \  val b: int[] = new int[2];\n\
      \  async { a[0] = 1; }\n\
      \  b[0] = 2;\n\
       }"
  in
  Alcotest.(check int) "distinct sites stay disjoint" 0 (List.length cs)

let test_param_aliasing () =
  (* the same array flows into both calls; writes in the escaped asyncs
     must be seen as colliding through the shared parameter *)
  let cs =
    conflicts
      "def put(a: int[]) { async { a[0] = 1; } }\n\
       def main() { val a: int[] = new int[4]; put(a); put(a); }"
  in
  Alcotest.(check bool) "aliasing through parameters detected" true
    (cs <> [])

let test_verified_clean () =
  let prog =
    compile
      "var x: int = 0;\n\
       def main() { finish { async { x = 1; } } print(x); }"
  in
  let _, _, cs = Static.Racecheck.check prog in
  Alcotest.(check int) "fully synchronized program verifies" 0
    (List.length cs)

let test_figure5_static_races () =
  (* Figure 5 of the paper: the dynamic detector finds races on x and y;
     the static layer must cover both (soundness), as findings *)
  let prog =
    compile
      {|
var x: int = 0;
var y: int = 0;
def main() {
  if (1 < 2) {
    async { work(5); }
    async { x = 1; }
  }
  async { y = 2; }
  async { print(x + y); }
}
|}
  in
  let summary, _, cs = Static.Racecheck.check prog in
  let findings = Static.Racecheck.to_findings summary cs in
  Alcotest.(check bool) "finds the figure-5 conflicts" true
    (List.length findings >= 2);
  Alcotest.(check (list string)) "all are static-race findings"
    [ "static-race" ] (rule_names findings)

(* ------------------------------------------------------------------ *)
(* Lint rules                                                          *)
(* ------------------------------------------------------------------ *)

let test_redundant_finish () =
  let prog = compile "var x: int = 0;\ndef main() { finish { x = 1; } }" in
  let findings = Static.Lint.run prog in
  Alcotest.(check (list string)) "flags the async-free finish"
    [ "redundant-finish" ] (rule_names findings)

let test_redundant_finish_interprocedural () =
  (* the callee joins its own async, so the caller's finish is a no-op *)
  let prog =
    compile
      "var x: int = 0;\n\
       def g() { finish { async { x = 1; } } }\n\
       def main() { finish { g(); } }"
  in
  let findings = Static.Lint.run prog in
  Alcotest.(check bool) "outer finish flagged through the call" true
    (List.mem "redundant-finish" (rule_names findings))

let test_no_redundant_finish_when_needed () =
  let prog =
    compile "var x: int = 0;\ndef main() { finish { async { x = 1; } } }"
  in
  let findings = Static.Lint.run prog in
  Alcotest.(check bool) "joining finish not flagged" false
    (List.mem "redundant-finish" (rule_names findings))

let test_dead_async () =
  let prog = compile "def main() { async { } print(1); }" in
  let findings = Static.Lint.dead_asyncs prog in
  Alcotest.(check int) "one dead async" 1 (List.length findings);
  Alcotest.(check (list string)) "rule" [ "dead-async" ] (rule_names findings)

let test_finish_coarsen () =
  let prog =
    compile
      "var x: int = 0;\nvar y: int = 0;\n\
       def main() {\n\
      \  finish { async { x = 1; } }\n\
      \  finish { async { y = 1; } }\n\
       }"
  in
  let findings = Static.Lint.coarsen_candidates prog in
  Alcotest.(check int) "adjacent finishes reported once" 1
    (List.length findings);
  List.iter
    (fun (f : Static.Finding.t) ->
      Alcotest.(check bool) "coarsening is informational" true
        (f.severity = Static.Finding.Info))
    findings

(* ------------------------------------------------------------------ *)
(* Prune unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_prune_counts () =
  let prog =
    compile
      "var x: int = 0;\nvar y: int = 0;\n\
       def main() {\n\
      \  y = 5;\n\
      \  print(y);\n\
      \  async { x = 1; }\n\
      \  print(x);\n\
       }"
  in
  let p = Static.Prune.make prog in
  Alcotest.(check bool) "some statements pruned" true
    (Static.Prune.n_kept p < Static.Prune.n_stmts p);
  Alcotest.(check bool) "some conflicts remain" true
    (Static.Prune.n_conflicts p > 0);
  (* unknown coordinates are conservatively kept *)
  Alcotest.(check bool) "unknown position kept" true
    (Static.Prune.keep p ~bid:999_999 ~idx:0);
  Alcotest.(check bool) "unknown position kept (keep_fn)" true
    (Static.Prune.keep_fn p ~bid:999_999 ~idx:0);
  Alcotest.(check bool) "negative position kept (keep_fn)" true
    (Static.Prune.keep_fn p ~bid:(-1) ~idx:(-1))

(* ------------------------------------------------------------------ *)
(* Affine disjointness unit tests                                      *)
(* ------------------------------------------------------------------ *)

let mk_loops specs : Static.Affine.loops =
  let t = Hashtbl.create 4 in
  List.iter
    (fun (sid, counter, lo, hi, step) ->
      Hashtbl.replace t sid
        { Static.Affine.counter; lo; hi; step; floc = Mhj.Loc.dummy })
    specs;
  t

let no_loop = { Static.Affine.loop = None; shared = Static.Affine.IntSet.empty }

let in_loop l =
  { Static.Affine.loop = Some l; shared = Static.Affine.IntSet.empty }

let check_ok name r = Alcotest.(check bool) name true (r = Ok ())

let check_err name e r = Alcotest.(check bool) name true (r = Error e)

let test_affine_interval () =
  let open Static.Affine in
  let loops =
    mk_loops
      [ (1, "i", Some 0, Some 3, Some 1); (2, "j", Some 4, Some 7, Some 1) ]
  in
  check_ok "0..3 vs 4..7 never meet" (disjoint loops no_loop (var 1) (var 2));
  let touching =
    mk_loops
      [ (1, "i", Some 0, Some 3, Some 1); (2, "j", Some 3, Some 7, Some 1) ]
  in
  check_err "0..3 vs 3..7 may meet at 3" May_overlap
    (disjoint touching no_loop (var 1) (var 2));
  let unbounded = mk_loops [ (1, "i", Some 0, None, Some 1) ] in
  check_err "missing hi bound" Unknown_bounds
    (disjoint unbounded no_loop (var 1) (const 9))

let test_affine_gcd () =
  let open Static.Affine in
  let loops =
    mk_loops
      [ (1, "i", Some 0, Some 3, Some 1); (2, "j", Some 0, Some 3, Some 1) ]
  in
  let even = mul (const 2) (var 1) in
  let odd = add (mul (const 2) (var 2)) (const 1) in
  check_ok "2i vs 2j+1 differ in parity" (disjoint loops no_loop even odd);
  check_err "2i vs 2j may collide" May_overlap
    (disjoint loops no_loop even (mul (const 2) (var 2)))

let test_affine_cross_iteration () =
  let open Static.Affine in
  (* canonical forasync a[i]: distinct iterations of the same loop write
     distinct cells, no bounds information needed at all *)
  let nobounds = mk_loops [ (1, "i", None, None, None) ] in
  check_ok "a[i] self-pair, unknown bounds"
    (disjoint nobounds (in_loop 1) (var 1) (var 1));
  (* stride: i walks multiples of 3, so an offset of 1 never cancels *)
  let stride3 = mk_loops [ (1, "i", Some 0, Some 9, Some 3) ] in
  check_ok "offset below the stride"
    (disjoint stride3 (in_loop 1) (var 1) (add (var 1) (const 1)));
  check_err "offset on the stride" May_overlap
    (disjoint stride3 (in_loop 1) (var 1) (add (var 1) (const 3)));
  (* span: the required delta exceeds the loop's reach *)
  let small = mk_loops [ (1, "i", Some 0, Some 2, Some 1) ] in
  check_ok "offset beyond the span"
    (disjoint small (in_loop 1) (var 1) (add (var 1) (const 5)));
  check_err "neighbouring cells overlap across iterations" May_overlap
    (disjoint small (in_loop 1) (var 1) (add (var 1) (const 1)));
  let nostep = mk_loops [ (1, "i", Some 0, Some 9, None) ] in
  check_err "missing step blocks the stride test" Unknown_bounds
    (disjoint nostep (in_loop 1) (var 1) (add (var 1) (const 1)));
  check_err "non-affine subscript" Non_affine
    (disjoint nostep (in_loop 1) Top (var 1))

(* ------------------------------------------------------------------ *)
(* Refinement through the race check                                   *)
(* ------------------------------------------------------------------ *)

let test_forasync_discharged () =
  let src =
    "def main() {\n\
    \  val a: int[] = new int[8];\n\
    \  finish { forasync (i = 0 to 7) { a[i] = i; } }\n\
    \  print(a[0]);\n\
     }"
  in
  Alcotest.(check bool) "coarse analysis keeps the self-pair" true
    (conflicts_coarse src <> []);
  Alcotest.(check int) "refinement discharges it" 0
    (List.length (conflicts src))

let test_sibling_parity_discharged () =
  let src =
    "def main() {\n\
    \  val a: int[] = new int[8];\n\
    \  finish {\n\
    \    forasync (i = 0 to 3) { a[2 * i] = 1; }\n\
    \    forasync (j = 0 to 3) { a[2 * j + 1] = 2; }\n\
    \  }\n\
    \  print(a[0]);\n\
     }"
  in
  Alcotest.(check bool) "coarse analysis keeps the sibling pairs" true
    (conflicts_coarse src <> []);
  Alcotest.(check int) "even/odd interleaving discharged" 0
    (List.length (conflicts src))

let test_range_split_discharged () =
  let src =
    "def main() {\n\
    \  val a: int[] = new int[8];\n\
    \  finish {\n\
    \    forasync (i = 0 to 3) { a[i] = 1; }\n\
    \    forasync (j = 4 to 7) { a[j] = 2; }\n\
    \  }\n\
    \  print(a[0]);\n\
     }"
  in
  Alcotest.(check bool) "coarse analysis keeps the sibling pairs" true
    (conflicts_coarse src <> []);
  Alcotest.(check int) "disjoint ranges discharged" 0
    (List.length (conflicts src))

let test_racy_neighbour_kept () =
  let src =
    "def main() {\n\
    \  val a: int[] = new int[8];\n\
    \  finish { forasync (i = 0 to 6) { a[i] = a[i + 1]; } }\n\
    \  print(a[0]);\n\
     }"
  in
  let cs = conflicts src in
  Alcotest.(check bool) "cross-iteration a[i]/a[i+1] overlap kept" true
    (cs <> []);
  Alcotest.(check bool) "kept with the may-overlap reason" true
    (List.exists
       (fun (c : Static.Racecheck.conflict) ->
         c.reason = Some Static.Affine.May_overlap)
       cs)

let test_constant_cell_kept () =
  let src =
    "def main() {\n\
    \  val a: int[] = new int[8];\n\
    \  finish { forasync (i = 0 to 7) { a[3] = i; } }\n\
    \  print(a[0]);\n\
     }"
  in
  let cs = conflicts src in
  Alcotest.(check bool) "every iteration writes a[3]: kept" true (cs <> []);
  Alcotest.(check bool) "refined conflicts carry a reason" true
    (List.for_all
       (fun (c : Static.Racecheck.conflict) -> c.reason <> None)
       cs);
  Alcotest.(check bool) "coarse conflicts carry none" true
    (List.for_all
       (fun (c : Static.Racecheck.conflict) -> c.reason = None)
       (conflicts_coarse src))

let test_provably_disjoint_note () =
  let prog =
    compile
      "def main() {\n\
      \  val a: int[] = new int[8];\n\
      \  finish { forasync (i = 0 to 7) { a[i] = i; } }\n\
      \  print(a[0]);\n\
       }"
  in
  let summary, _, cs, notes = Static.Racecheck.check_full prog in
  Alcotest.(check int) "no surviving conflicts" 0 (List.length cs);
  Alcotest.(check bool) "the discharged pair is recorded" true (notes <> []);
  let findings = Static.Racecheck.note_findings summary notes in
  Alcotest.(check (list string)) "note rule" [ "provably-disjoint" ]
    (rule_names findings);
  List.iter
    (fun (f : Static.Finding.t) ->
      Alcotest.(check bool) "notes are informational" true
        (f.severity = Static.Finding.Info))
    findings

let test_explain_messages () =
  let src =
    "def main() {\n\
    \  val a: int[] = new int[8];\n\
    \  finish { forasync (i = 0 to 7) { a[3] = i; } }\n\
    \  print(a[0]);\n\
     }"
  in
  let _, summary, mhp = analyze src in
  let cs = Static.Racecheck.conflicts summary mhp in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let has_marker fs =
    List.exists
      (fun (f : Static.Finding.t) -> contains f.msg "[unrefined:")
      fs
  in
  Alcotest.(check bool) "--explain appends the refinement reason" true
    (has_marker (Static.Racecheck.to_findings ~explain:true summary cs));
  Alcotest.(check bool) "plain findings stay unannotated" false
    (has_marker (Static.Racecheck.to_findings summary cs))

let test_series_refined_verified () =
  match Benchsuite.Suite.find "series" with
  | None -> Alcotest.fail "series missing from the benchmark suite"
  | Some b ->
      let prog = Benchsuite.Bench.repair_program b in
      let _, _, coarse = Static.Racecheck.check ~refine:false prog in
      let _, _, refined = Static.Racecheck.check prog in
      Alcotest.(check bool) "coarse analysis leaves unproven pairs" true
        (coarse <> []);
      Alcotest.(check int) "refinement verifies series race-free" 0
        (List.length refined)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Statement ids a step may have executed: the step covers statement
   indices [origin_idx .. last_idx] of its origin block. *)
let step_sids summary (n : Sdpst.Node.t) =
  let lo = n.Sdpst.Node.origin_idx in
  let hi = max lo n.Sdpst.Node.last_idx in
  let rec go i acc =
    if i > hi then acc
    else
      match Static.Summary.stmt_at summary ~bid:n.Sdpst.Node.origin_bid ~idx:i with
      | Some sid -> go (i + 1) (sid :: acc)
      | None -> go (i + 1) acc
  in
  go lo []

(* Differential soundness: every race the dynamic MRW detector reports is
   covered by a static MHP pair of the endpoint statements.  This is the
   property that makes --static-prune and --static-verify sound. *)
let static_mhp_covers_dynamic_races =
  QCheck.Test.make ~name:"static MHP covers every dynamic race" ~count:500
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let prog = compile src in
      let det, _ = Espbags.Detector.detect Espbags.Detector.Mrw prog in
      let summary = Static.Summary.build prog in
      let mhp = Static.Mhp.analyze prog summary in
      List.for_all
        (fun (r : Espbags.Race.t) ->
          let srcs = step_sids summary r.src in
          let sinks = step_sids summary r.sink in
          let covered =
            List.exists
              (fun a -> List.exists (fun b -> Static.Mhp.mhp mhp a b) sinks)
              srcs
          in
          if not covered then
            QCheck.Test.fail_reportf
              "seed %d: race %a not covered by any static MHP pair\n\
               src step: block %d, stmts %d..%d; sink step: block %d, stmts \
               %d..%d"
              seed Espbags.Race.pp r r.src.Sdpst.Node.origin_bid
              r.src.Sdpst.Node.origin_idx r.src.Sdpst.Node.last_idx
              r.sink.Sdpst.Node.origin_bid r.sink.Sdpst.Node.origin_idx
              r.sink.Sdpst.Node.last_idx;
          covered)
        (Espbags.Detector.races det))

(* A race signature that is stable across runs (node ids are not). *)
let race_signature (r : Espbags.Race.t) =
  ( r.src.Sdpst.Node.origin_bid,
    r.src.Sdpst.Node.origin_idx,
    r.sink.Sdpst.Node.origin_bid,
    r.sink.Sdpst.Node.origin_idx,
    Fmt.str "%a" Rt.Addr.pp r.addr,
    Fmt.str "%a" Espbags.Race.pp_kind r.kind )

(* The dense-bitmap fast path must be the same predicate as the
   hashtable-backed [keep], on known and unknown positions alike. *)
let keep_fn_agrees_with_keep =
  QCheck.Test.make ~name:"Prune.keep_fn agrees with Prune.keep" ~count:150
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let prog = compile src in
      let pr = Static.Prune.make prog in
      let fast = Static.Prune.keep_fn pr in
      let summary = Static.Summary.build prog in
      let ok = ref true in
      let check ~bid ~idx =
        if fast ~bid ~idx <> Static.Prune.keep pr ~bid ~idx then ok := false
      in
      Static.Summary.iter_positions summary (fun ~bid ~idx ~sid:_ ->
          check ~bid ~idx;
          (* just past a known position: likely unmapped, must agree too *)
          check ~bid ~idx:(idx + 1);
          check ~bid:(bid + 1) ~idx);
      check ~bid:0 ~idx:0;
      check ~bid:999_999 ~idx:3;
      if not !ok then
        QCheck.Test.fail_reportf "seed %d: keep_fn diverges from keep" seed;
      true)

(* Race-set identity under pruning: running MRW with the static keep
   predicate reports exactly the same races as the unpruned run. *)
let prune_preserves_race_set =
  QCheck.Test.make ~name:"--static-prune preserves the MRW race set"
    ~count:150
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let prog = compile src in
      let full, _ = Espbags.Detector.detect Espbags.Detector.Mrw prog in
      let pr = Static.Prune.make prog in
      let pruned, _ =
        Espbags.Detector.detect
          ~keep:(fun ~bid ~idx -> Static.Prune.keep pr ~bid ~idx)
          Espbags.Detector.Mrw prog
      in
      let sigs d =
        List.sort_uniq compare
          (List.map race_signature (Espbags.Detector.races d))
      in
      let a = sigs full and b = sigs pruned in
      if a <> b then
        QCheck.Test.fail_reportf
          "seed %d: race sets differ (full %d, pruned %d; %d accesses \
           skipped)"
          seed (List.length a) (List.length b) pruned.n_skipped;
      true)

(* Strict one-sidedness: the refined conflict set is a subset of the
   coarse one — refinement can only remove pairs, never add or move
   them, which is what lets it inherit the coarse layer's soundness. *)
let refinement_is_one_sided =
  QCheck.Test.make ~name:"refinement only ever removes conflict pairs"
    ~count:150
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let prog = compile src in
      let summary = Static.Summary.build prog in
      let mhp = Static.Mhp.analyze prog summary in
      let key (c : Static.Racecheck.conflict) =
        (min c.sid_a c.sid_b, max c.sid_a c.sid_b)
      in
      let coarse =
        List.map key (Static.Racecheck.conflicts ~refine:false summary mhp)
      in
      List.for_all
        (fun c ->
          let covered = List.mem (key c) coarse in
          if not covered then
            QCheck.Test.fail_reportf
              "seed %d: refined pair (%d, %d) absent from the coarse set"
              seed (fst (key c)) (snd (key c));
          covered)
        (Static.Racecheck.conflicts summary mhp))

(* Differential soundness of the refinement itself: every race the MRW
   detector reports is covered by a SURVIVING refined conflict — the
   affine tests never discharge a pair that races on some input.  This
   is the acceptance property for the index-sensitive refinement; the
   @ci alias runs it over 300 generated programs. *)
let refined_conflicts_cover_dynamic_races =
  QCheck.Test.make ~name:"refined conflicts cover every dynamic race"
    ~count:(qcount 150)
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let prog = compile src in
      let det, _ = Espbags.Detector.detect Espbags.Detector.Mrw prog in
      let summary = Static.Summary.build prog in
      let mhp = Static.Mhp.analyze prog summary in
      let pairs = Hashtbl.create 64 in
      List.iter
        (fun (c : Static.Racecheck.conflict) ->
          Hashtbl.replace pairs (min c.sid_a c.sid_b, max c.sid_a c.sid_b) ())
        (Static.Racecheck.conflicts summary mhp);
      List.for_all
        (fun (r : Espbags.Race.t) ->
          let srcs = step_sids summary r.src in
          let sinks = step_sids summary r.sink in
          let covered =
            List.exists
              (fun a ->
                List.exists
                  (fun b -> Hashtbl.mem pairs (min a b, max a b))
                  sinks)
              srcs
          in
          if not covered then
            QCheck.Test.fail_reportf
              "seed %d: dynamic race %a was discharged by the refinement"
              seed Espbags.Race.pp r;
          covered)
        (Espbags.Detector.races det))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "static"
    [
      ( "mhp",
        [
          Alcotest.test_case "sibling asyncs" `Quick test_sibling_asyncs_mhp;
          Alcotest.test_case "finish barrier" `Quick test_finish_kills_mhp;
          Alcotest.test_case "loop self-pair" `Quick test_loop_self_pair;
          Alcotest.test_case "interprocedural escape" `Quick
            test_interprocedural_escape;
        ] );
      ( "alias",
        [
          Alcotest.test_case "aliased arrays" `Quick test_alias_conflict;
          Alcotest.test_case "disjoint allocations" `Quick
            test_disjoint_allocations_no_conflict;
          Alcotest.test_case "parameter aliasing" `Quick test_param_aliasing;
          Alcotest.test_case "verified clean" `Quick test_verified_clean;
          Alcotest.test_case "figure 5" `Quick test_figure5_static_races;
        ] );
      ( "lint",
        [
          Alcotest.test_case "redundant finish" `Quick test_redundant_finish;
          Alcotest.test_case "redundant finish, interprocedural" `Quick
            test_redundant_finish_interprocedural;
          Alcotest.test_case "needed finish kept" `Quick
            test_no_redundant_finish_when_needed;
          Alcotest.test_case "dead async" `Quick test_dead_async;
          Alcotest.test_case "finish coarsening" `Quick test_finish_coarsen;
        ] );
      ( "prune",
        [ Alcotest.test_case "counts" `Quick test_prune_counts ] );
      ( "affine",
        [
          Alcotest.test_case "interval separation" `Quick test_affine_interval;
          Alcotest.test_case "gcd residue" `Quick test_affine_gcd;
          Alcotest.test_case "cross-iteration" `Quick
            test_affine_cross_iteration;
        ] );
      ( "refine",
        [
          Alcotest.test_case "forasync discharged" `Quick
            test_forasync_discharged;
          Alcotest.test_case "even/odd siblings discharged" `Quick
            test_sibling_parity_discharged;
          Alcotest.test_case "split ranges discharged" `Quick
            test_range_split_discharged;
          Alcotest.test_case "racy neighbour kept" `Quick
            test_racy_neighbour_kept;
          Alcotest.test_case "constant cell kept" `Quick
            test_constant_cell_kept;
          Alcotest.test_case "provably-disjoint note" `Quick
            test_provably_disjoint_note;
          Alcotest.test_case "explain messages" `Quick test_explain_messages;
          Alcotest.test_case "series verified" `Quick
            test_series_refined_verified;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            static_mhp_covers_dynamic_races;
            keep_fn_agrees_with_keep;
            prune_preserves_race_set;
            refinement_is_one_sided;
            refined_conflicts_cover_dynamic_races;
          ] );
    ]
