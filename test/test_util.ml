(* Tests for the shared utility library: growable vectors and the
   deterministic PRNG. *)

let test_vec_push_get () =
  let v = Tdrutil.Vec.create () in
  Alcotest.(check bool) "fresh is empty" true (Tdrutil.Vec.is_empty v);
  for i = 0 to 99 do
    Tdrutil.Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Tdrutil.Vec.length v);
  Alcotest.(check int) "get 0" 0 (Tdrutil.Vec.get v 0);
  Alcotest.(check int) "get 99" (99 * 99) (Tdrutil.Vec.get v 99);
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get")
    (fun () -> ignore (Tdrutil.Vec.get v 100))

let test_vec_set_last () =
  let v = Tdrutil.Vec.of_list [ 1; 2; 3 ] in
  Tdrutil.Vec.set v 1 42;
  Alcotest.(check (list int)) "set" [ 1; 42; 3 ] (Tdrutil.Vec.to_list v);
  Alcotest.(check (option int)) "last" (Some 3) (Tdrutil.Vec.last v);
  Alcotest.(check (option int))
    "last empty" None
    (Tdrutil.Vec.last (Tdrutil.Vec.create ()))

let test_vec_replace_range () =
  let v = Tdrutil.Vec.of_list [ 0; 1; 2; 3; 4; 5 ] in
  Tdrutil.Vec.replace_range v ~lo:1 ~hi:3 99;
  Alcotest.(check (list int))
    "middle collapsed" [ 0; 99; 4; 5 ] (Tdrutil.Vec.to_list v);
  let w = Tdrutil.Vec.of_list [ 7 ] in
  Tdrutil.Vec.replace_range w ~lo:0 ~hi:0 8;
  Alcotest.(check (list int)) "singleton" [ 8 ] (Tdrutil.Vec.to_list w)

let test_vec_iter_fold () =
  let v = Tdrutil.Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Tdrutil.Vec.fold ( + ) 0 v);
  let seen = ref [] in
  Tdrutil.Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  Alcotest.(check int) "iteri count" 4 (List.length !seen);
  Alcotest.(check bool) "exists" true (Tdrutil.Vec.exists (fun x -> x = 3) v);
  Alcotest.(check (option int))
    "find_index" (Some 2)
    (Tdrutil.Vec.find_index (fun x -> x = 3) v)

let vec_model =
  QCheck.Test.make ~name:"Vec.push/to_list agrees with list model" ~count:200
    QCheck.(small_list small_int)
    (fun xs ->
      let v = Tdrutil.Vec.create () in
      List.iter (Tdrutil.Vec.push v) xs;
      Tdrutil.Vec.to_list v = xs && Tdrutil.Vec.length v = List.length xs)

let vec_replace_model =
  QCheck.Test.make
    ~name:"Vec.replace_range agrees with list splice" ~count:200
    QCheck.(triple (list_of_size (Gen.int_range 1 20) small_int) small_int small_int)
    (fun (xs, a, b) ->
      let n = List.length xs in
      let lo = abs a mod n in
      let hi = lo + (abs b mod (n - lo)) in
      let v = Tdrutil.Vec.of_list xs in
      Tdrutil.Vec.replace_range v ~lo ~hi (-1);
      let expected =
        List.filteri (fun i _ -> i < lo) xs
        @ [ -1 ]
        @ List.filteri (fun i _ -> i > hi) xs
      in
      Tdrutil.Vec.to_list v = expected)

let test_prng_deterministic () =
  let a = Tdrutil.Prng.create ~seed:7 in
  let b = Tdrutil.Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Tdrutil.Prng.int a 1000)
      (Tdrutil.Prng.int b 1000)
  done

let test_prng_bounds () =
  let r = Tdrutil.Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Tdrutil.Prng.int r 17 in
    if x < 0 || x >= 17 then Alcotest.fail "int out of bounds";
    let f = Tdrutil.Prng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int") (fun () ->
      ignore (Tdrutil.Prng.int r 0))

let test_prng_choose () =
  let r = Tdrutil.Prng.create ~seed:3 in
  for _ = 1 to 50 do
    let x = Tdrutil.Prng.choose r [ "a"; "b"; "c" ] in
    if not (List.mem x [ "a"; "b"; "c" ]) then Alcotest.fail "choose"
  done

(* Every [choose] consumes exactly one draw regardless of list length, so
   interleaving chooses of different lengths keeps two same-seeded
   generators in lock-step.  Pins the draw-sequence invariant the O(1)
   rewrite relies on. *)
let test_prng_choose_one_draw () =
  let a = Tdrutil.Prng.create ~seed:11 in
  let b = Tdrutil.Prng.create ~seed:11 in
  List.iter
    (fun n -> ignore (Tdrutil.Prng.choose a (List.init n string_of_int)))
    [ 1; 2; 3; 7; 1; 40; 2 ];
  for _ = 1 to 7 do
    ignore (Tdrutil.Prng.int b 1_000_000)
  done;
  Alcotest.(check int) "streams aligned" (Tdrutil.Prng.int b 997)
    (Tdrutil.Prng.int a 997);
  Alcotest.check_raises "empty list"
    (Invalid_argument "Prng.choose: empty list") (fun () ->
      ignore (Tdrutil.Prng.choose a [] : string))

(* Rejection sampling: with bound = 2^61 + 1 roughly half of all 62-bit
   draws land in the tail above the largest multiple of the bound and
   must be redrawn, so this bound exercises the rejection loop on nearly
   every call; every returned value must still be in range. *)
let test_prng_rejection_in_range () =
  let r = Tdrutil.Prng.create ~seed:5 in
  let huge = (max_int / 2) + 2 in
  for _ = 1 to 200 do
    let x = Tdrutil.Prng.int r huge in
    if x < 0 || x >= huge then Alcotest.fail "huge bound out of range"
  done

(* ------------------- slab-chunked shadow tables --------------------- *)

let test_islab_basic () =
  let t = Tdrutil.Islab.create ~layout:(Tdrutil.Islab.Chunked 16) ~fill:(-1) () in
  Alcotest.(check int) "fresh has no chunks" 0 (Tdrutil.Islab.n_chunks t);
  Alcotest.(check int) "untouched reads fill" (-1) (Tdrutil.Islab.get t 12345);
  Alcotest.(check int) "read allocates nothing" 0 (Tdrutil.Islab.n_chunks t);
  Tdrutil.Islab.set t 3 7;
  Alcotest.(check int) "written slot" 7 (Tdrutil.Islab.get t 3);
  Alcotest.(check int) "one chunk" 1 (Tdrutil.Islab.n_chunks t);
  Alcotest.(check int) "neighbour in same chunk reads fill" (-1)
    (Tdrutil.Islab.get t 4);
  (* a far-away write lands in its own chunk; the gap stays unallocated *)
  Tdrutil.Islab.set t 100_000 9;
  Alcotest.(check int) "far slot" 9 (Tdrutil.Islab.get t 100_000);
  Alcotest.(check int) "only two chunks" 2 (Tdrutil.Islab.n_chunks t);
  Alcotest.check_raises "negative get" (Invalid_argument "Islab.get: negative index")
    (fun () -> ignore (Tdrutil.Islab.get t (-1)));
  Alcotest.check_raises "negative set" (Invalid_argument "Islab.set: negative index")
    (fun () -> Tdrutil.Islab.set t (-1) 0)

let test_islab_slot_stride () =
  (* chunk size below the minimum is rounded up so a stride-8 row never
     straddles chunks *)
  let t = Tdrutil.Islab.create ~layout:(Tdrutil.Islab.Chunked 1) ~fill:0 () in
  Alcotest.(check bool) "chunk floor >= 8" true (Tdrutil.Islab.chunk_slots t >= 8);
  let arr, off = Tdrutil.Islab.slot t 16 ~stride:8 in
  for k = 0 to 7 do
    arr.(off + k) <- 100 + k
  done;
  for k = 0 to 7 do
    Alcotest.(check int) "row readable via get" (100 + k)
      (Tdrutil.Islab.get t (16 + k))
  done;
  Alcotest.check_raises "non-positive chunk size"
    (Invalid_argument "Islab.create: chunk size must be positive") (fun () ->
      ignore (Tdrutil.Islab.create ~layout:(Tdrutil.Islab.Chunked 0) ~fill:0 ()))

(* Chunked and Monolithic must be observationally identical (only the
   words/chunks accounting differs). *)
let islab_model =
  QCheck.Test.make ~count:200 ~name:"Islab: Chunked == Monolithic"
    QCheck.(list (pair (int_bound 5000) (int_bound 1000)))
    (fun writes ->
      let c = Tdrutil.Islab.create ~layout:(Tdrutil.Islab.Chunked 32) ~fill:(-7) () in
      let m = Tdrutil.Islab.create ~layout:Tdrutil.Islab.Monolithic ~fill:(-7) () in
      List.iter
        (fun (i, v) ->
          Tdrutil.Islab.set c i v;
          Tdrutil.Islab.set m i v)
        writes;
      List.for_all
        (fun i ->
          Tdrutil.Islab.get c i = Tdrutil.Islab.get m i
          && Tdrutil.Islab.words c > 0 = (Tdrutil.Islab.words m > 0))
        (List.init 60 (fun k -> k * 100)))

let test_slab_basic () =
  let t = Tdrutil.Slab.create ~layout:(Tdrutil.Islab.Chunked 16) ~fill:None () in
  Alcotest.(check int) "fresh has no chunks" 0 (Tdrutil.Slab.n_chunks t);
  Alcotest.(check bool) "untouched reads fill" true
    (Tdrutil.Slab.get t 999 = None);
  Tdrutil.Slab.set t 5 (Some 42);
  Alcotest.(check bool) "written slot" true (Tdrutil.Slab.get t 5 = Some 42);
  Alcotest.(check int) "one chunk" 1 (Tdrutil.Slab.n_chunks t);
  let seen = ref 0 in
  Tdrutil.Slab.iter_present
    (fun v -> match v with Some _ -> incr seen | None -> ())
    t;
  Alcotest.(check int) "iter_present sees the one element" 1 !seen;
  Alcotest.check_raises "negative get" (Invalid_argument "Slab.get: negative index")
    (fun () -> ignore (Tdrutil.Slab.get t (-1)))

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "set/last" `Quick test_vec_set_last;
          Alcotest.test_case "replace_range" `Quick test_vec_replace_range;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
          QCheck_alcotest.to_alcotest vec_model;
          QCheck_alcotest.to_alcotest vec_replace_model;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "choose" `Quick test_prng_choose;
          Alcotest.test_case "choose one draw" `Quick
            test_prng_choose_one_draw;
          Alcotest.test_case "rejection in range" `Quick
            test_prng_rejection_in_range;
        ] );
      ( "slab",
        [
          Alcotest.test_case "islab basics" `Quick test_islab_basic;
          Alcotest.test_case "islab slot/stride" `Quick test_islab_slot_stride;
          QCheck_alcotest.to_alcotest islab_model;
          Alcotest.test_case "slab basics" `Quick test_slab_basic;
        ] );
    ]
