(* Tests for the instrumented depth-first interpreter. *)

let run src = Rt.Interp.run (Mhj.Front.compile src)

let output src = String.trim (run src).output

let test_arith () =
  Alcotest.(check string) "int ops" "17" (output "def main() { print(3 + 2 * 7); }");
  Alcotest.(check string) "division truncates" "2" (output "def main() { print(7 / 3); }");
  Alcotest.(check string) "mod" "1" (output "def main() { print(7 % 3); }");
  Alcotest.(check string) "neg" "-4" (output "def main() { print(-4); }");
  Alcotest.(check string)
    "float" "3.5"
    (output "def main() { print(1.5 + 2.0); }");
  Alcotest.(check string)
    "comparison chain" "true"
    (output "def main() { print(1 < 2 && 2 <= 2 && !(3 > 4) || false); }")

let test_short_circuit () =
  (* && must not evaluate its right operand when the left is false: the
     right operand here would divide by zero. *)
  Alcotest.(check string) "and" "false"
    (output "def main() { print(false && 1 / 0 == 0); }");
  Alcotest.(check string) "or" "true"
    (output "def main() { print(true || 1 / 0 == 0); }")

let test_control_flow () =
  Alcotest.(check string) "if/else" "b"
    (output
       {|def main() { if (1 > 2) { print("a"); } else { print("b"); } }|});
  Alcotest.(check string) "while" "10"
    (output
       "def main() { var s: int = 0; var i: int = 0; while (i < 5) { s = s + \
        i; i = i + 1; } print(s); }");
  Alcotest.(check string) "for with step" "9"
    (output
       "def main() { var s: int = 0; for (i = 1 to 5 by 2) { s = s + i; } \
        print(s); }");
  Alcotest.(check string) "for downward" "6"
    (output
       "def main() { var s: int = 0; for (i = 3 to 1 by -1) { s = s + i; } \
        print(s); }")

let test_functions () =
  Alcotest.(check string) "recursion" "120"
    (output
       {|
def fact(n: int): int {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
def main() { print(fact(5)); }
|});
  Alcotest.(check string) "call in expression" "12"
    (output
       {|
def twice(n: int): int { return 2 * n; }
def main() { print(twice(2) + twice(4)); }
|})

let test_arrays () =
  Alcotest.(check string) "1d" "7"
    (output
       "def main() { val a: int[] = new int[3]; a[1] = 7; print(a[1]); }");
  Alcotest.(check string) "zero-init" "0"
    (output "def main() { val a: int[] = new int[3]; print(a[2]); }");
  Alcotest.(check string) "2d" "9"
    (output
       "def main() { val g: int[][] = new int[2][3]; g[1][2] = 9; \
        print(g[1][2]); }");
  Alcotest.(check string) "alen" "5"
    (output "def main() { val a: int[] = new int[5]; print(alen(a)); }");
  Alcotest.(check string) "aliasing" "3"
    (output
       "def main() { val a: int[] = new int[1]; val b: int[] = a; b[0] = 3; \
        print(a[0]); }")

let test_globals () =
  Alcotest.(check string) "global init order" "11"
    (output "var g: int = 10;\ndef main() { g = g + 1; print(g); }")

let test_builtins () =
  Alcotest.(check string) "float conv" "2.5"
    (output "def main() { print(float(5) / 2.0); }");
  Alcotest.(check string) "int conv" "2"
    (output "def main() { print(int(2.9)); }");
  Alcotest.(check string) "sqrt" "3"
    (output "def main() { print(int(sqrt(9.0))); }");
  Alcotest.(check string) "cas success" "true"
    (output
       "def main() { val a: int[] = new int[1]; print(cas(a, 0, 0, 5)); }");
  Alcotest.(check string) "cas failure leaves value" "0"
    (output
       "def main() { val a: int[] = new int[1]; val ok: bool = cas(a, 0, 3, \
        5); print(a[0]); }")

let test_async_depth_first () =
  (* The sequential depth-first execution runs async bodies at their spawn
     point, so output order matches the serial elision. *)
  Alcotest.(check string) "df order" "1\n2\n3"
    (output
       "def main() { print(1); async { print(2); } print(3); }")

let test_numeric_builtins () =
  let approx name expected src =
    let got = float_of_string (output src) in
    if abs_float (got -. expected) > 1e-5 then
      Alcotest.failf "%s: expected %f, got %f" name expected got
  in
  approx "sin" 0.0 "def main() { print(sin(0.0)); }";
  approx "cos" 1.0 "def main() { print(cos(0.0)); }";
  approx "pow" 8.0 "def main() { print(pow(2.0, 3.0)); }";
  approx "exp(log x)" 5.0 "def main() { print(exp(log(5.0))); }";
  approx "fabs" 2.5 "def main() { print(fabs(0.0 - 2.5)); }";
  approx "sqrt" 1.41421 "def main() { print(sqrt(2.0)); }"

let test_call_in_expression_context () =
  (* a call mid-expression splits the enclosing step around a scope node *)
  let res =
    run
      {|
def g(): int { return 21; }
def main() { val x: int = g() + g(); print(x); }
|}
  in
  Alcotest.(check string) "value" "42" (String.trim res.output);
  let _, _, scopes, _ = Sdpst.Node.count_by_kind res.tree in
  Alcotest.(check int) "two call scopes" 2 scopes

let test_arrays_by_reference () =
  Alcotest.(check string) "callee mutates caller's array" "9"
    (output
       {|
def set(a: int[], i: int, v: int) { a[i] = v; }
def main() { val a: int[] = new int[3]; set(a, 1, 9); print(a[1]); }
|})

let test_return_from_nested_blocks () =
  Alcotest.(check string) "return exits through blocks and loops" "3"
    (output
       {|
def find(a: int[], v: int): int {
  for (i = 0 to alen(a) - 1) {
    if (a[i] == v) {
      return i;
    }
  }
  return 0 - 1;
}
def main() {
  val a: int[] = new int[5];
  a[3] = 7;
  print(find(a, 7));
}
|})

let test_cas_bounds () =
  match
    run "def main() { val a: int[] = new int[1]; print(cas(a, 5, 0, 1)); }"
  with
  | exception Rt.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "cas out of bounds must fail"

let test_runtime_errors () =
  let fails src =
    match run src with
    | exception Rt.Interp.Runtime_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "div by zero" true (fails "def main() { print(1 / 0); }");
  Alcotest.(check bool) "mod by zero" true (fails "def main() { print(1 % 0); }");
  Alcotest.(check bool) "index oob" true
    (fails "def main() { val a: int[] = new int[2]; print(a[2]); }");
  Alcotest.(check bool) "negative index" true
    (fails "def main() { val a: int[] = new int[2]; print(a[0 - 1]); }");
  Alcotest.(check bool) "negative dimension" true
    (fails "def main() { val a: int[] = new int[0 - 3]; print(0); }");
  Alcotest.(check bool) "zero for step" true
    (fails "def main() { for (i = 0 to 1 by 0) { print(i); } }")

let test_fuel () =
  match
    Rt.Interp.run ~fuel:1000
      (Mhj.Front.compile "def main() { while (true) { work(10); } }")
  with
  | exception Rt.Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected Out_of_fuel"

let test_work_builtin () =
  let r1 = run "def main() { work(100); }" in
  let r2 = run "def main() { work(200); }" in
  Alcotest.(check int) "work difference" 100 (r2.work - r1.work)

let test_determinism () =
  let src = Benchsuite.Progen.generate ~seed:99 () in
  let a = run src and b = run src in
  Alcotest.(check string) "same output" a.output b.output;
  Alcotest.(check int) "same work" a.work b.work;
  Alcotest.(check int) "same tree size" a.tree.Sdpst.Node.n_nodes
    b.tree.Sdpst.Node.n_nodes

let test_elision_equivalence () =
  (* async/finish do not change sequential semantics. *)
  List.iter
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let prog = Mhj.Front.compile src in
      let par = Rt.Interp.run prog in
      let ser = Rt.Interp.run_elision prog in
      Alcotest.(check string)
        (Fmt.str "seed %d output" seed)
        ser.output par.output)
    [ 1; 2; 3; 4; 5 ]

let test_unnormalized_rejected () =
  let p = Mhj.Parser.parse_program "def main() { if (true) print(1); }" in
  match Rt.Interp.run p with
  | exception Rt.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "unnormalized program must be rejected"

let test_missing_main_rejected () =
  let p = Mhj.Front.compile ~require_main:false "def helper() { print(1); }" in
  match Rt.Interp.run p with
  | exception Rt.Interp.Runtime_error (m, _) ->
      Alcotest.(check bool) "mentions main" true
        (let affix = "main" in
         let n = String.length affix and len = String.length m in
         let rec go i = i + n <= len && (String.sub m i n = affix || go (i + 1)) in
         go 0)
  | _ -> Alcotest.fail "program without main must be rejected"

let () =
  Alcotest.run "interp"
    [
      ( "eval",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "globals" `Quick test_globals;
          Alcotest.test_case "builtins" `Quick test_builtins;
          Alcotest.test_case "numeric builtins" `Quick test_numeric_builtins;
          Alcotest.test_case "call in expression" `Quick
            test_call_in_expression_context;
          Alcotest.test_case "arrays by reference" `Quick
            test_arrays_by_reference;
          Alcotest.test_case "return from nesting" `Quick
            test_return_from_nested_blocks;
          Alcotest.test_case "cas bounds" `Quick test_cas_bounds;
        ] );
      ( "execution",
        [
          Alcotest.test_case "depth-first order" `Quick test_async_depth_first;
          Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "work builtin" `Quick test_work_builtin;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "elision equivalence" `Quick
            test_elision_equivalence;
          Alcotest.test_case "normalization required" `Quick
            test_unnormalized_rejected;
          Alcotest.test_case "missing main rejected" `Quick
            test_missing_main_rejected;
        ] );
    ]
