(* Reusable cross-backend differential harness.

   Every sequential detector backend (the seed ESP-bags reference, the
   optimized dense-shadow ESP-bags detector, the vector-clock detector)
   is wrapped as a [backend] value exposing one uniform [run]; the
   differential properties then quantify over (backend pair x program
   source x prune flag) instead of hand-rolling a comparison per pair.
   The oracle side of every test is [reference] — the seed
   implementation kept verbatim.

   Comparisons use {!Espbags.Race.exact_sigs}: node ids are
   deterministic under the depth-first interpreter, so two backends
   agree iff their signature lists are equal (ordered when both record
   in execution order, sorted when pruning may interleave reports
   differently). *)

let compile = Mhj.Front.compile

(* Shared deep-pass knob: `dune runtest` uses the bounded default, @ci
   rules override via TDR_QCHECK_COUNT. *)
let qcheck_count =
  match
    Option.bind (Sys.getenv_opt "TDR_QCHECK_COUNT") int_of_string_opt
  with
  | Some n when n > 0 -> n
  | _ -> 60

type outcome = {
  sigs : (int * int * string * string) list;  (** exact race records *)
  n_accesses : int;
  n_skipped : int;
}

type backend = {
  bname : string;
  run :
    ?keep:(bid:int -> idx:int -> bool) ->
    Espbags.Detector.mode ->
    Mhj.Ast.program ->
    outcome;
}

let reference =
  {
    bname = "reference";
    run =
      (fun ?keep mode prog ->
        let det, _ = Espbags.Reference.detect ?keep mode prog in
        {
          sigs = Espbags.Race.exact_sigs (Espbags.Reference.races det);
          n_accesses = det.Espbags.Reference.n_accesses;
          n_skipped = det.Espbags.Reference.n_skipped;
        });
  }

let espbags =
  {
    bname = "espbags";
    run =
      (fun ?keep mode prog ->
        let det, _ = Espbags.Detector.detect ?keep mode prog in
        {
          sigs = Espbags.Race.exact_sigs (Espbags.Detector.races det);
          n_accesses = det.Espbags.Detector.n_accesses;
          n_skipped = det.Espbags.Detector.n_skipped;
        });
  }

let vclock =
  {
    bname = "vclock";
    run =
      (fun ?keep mode prog ->
        let det, _ = Vclock.Seq.detect ?keep mode prog in
        {
          sigs = Espbags.Race.exact_sigs (Vclock.Seq.races det);
          n_accesses = det.Vclock.Seq.n_accesses;
          n_skipped = det.Vclock.Seq.n_skipped;
        });
  }

(* Memory-bounded variants (DESIGN.md §15): a tiny chunk size forces
   the multi-chunk slab path on every program, and a tiny spill cap
   forces race records through the on-disk Trace round-trip.  Epoch GC
   is always on.  All of it must leave the reported races byte-identical
   to the unbounded oracle. *)
let tiny_chunk = Tdrutil.Islab.Chunked 16

let with_tiny_spill f =
  let path = Filename.temp_file "tdr_diff" ".spill" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (Espbags.Spill.config ~cap:2 path))

let espbags_chunked =
  {
    bname = "espbags[chunk=16]";
    run =
      (fun ?keep mode prog ->
        let det, _ =
          Espbags.Detector.detect ?keep ~layout:tiny_chunk mode prog
        in
        {
          sigs = Espbags.Race.exact_sigs (Espbags.Detector.races det);
          n_accesses = det.Espbags.Detector.n_accesses;
          n_skipped = det.Espbags.Detector.n_skipped;
        });
  }

let espbags_spilled =
  {
    bname = "espbags[chunk=16,spill cap=2]";
    run =
      (fun ?keep mode prog ->
        with_tiny_spill (fun spill ->
            let det, _ =
              Espbags.Detector.detect ?keep ~layout:tiny_chunk ~spill mode
                prog
            in
            {
              sigs = Espbags.Race.exact_sigs (Espbags.Detector.races det);
              n_accesses = det.Espbags.Detector.n_accesses;
              n_skipped = det.Espbags.Detector.n_skipped;
            }));
  }

let vclock_chunked =
  {
    bname = "vclock[chunk=16]";
    run =
      (fun ?keep mode prog ->
        let det, _ = Vclock.Seq.detect ?keep ~layout:tiny_chunk mode prog in
        {
          sigs = Espbags.Race.exact_sigs (Vclock.Seq.races det);
          n_accesses = det.Vclock.Seq.n_accesses;
          n_skipped = det.Vclock.Seq.n_skipped;
        });
  }

let vclock_spilled =
  {
    bname = "vclock[chunk=16,spill cap=2]";
    run =
      (fun ?keep mode prog ->
        with_tiny_spill (fun spill ->
            let det, _ =
              Vclock.Seq.detect ?keep ~layout:tiny_chunk ~spill mode prog
            in
            {
              sigs = Espbags.Race.exact_sigs (Vclock.Seq.races det);
              n_accesses = det.Vclock.Seq.n_accesses;
              n_skipped = det.Vclock.Seq.n_skipped;
            }));
  }

let check_identical ~seed ~what a b =
  if a <> b then
    QCheck.Test.fail_reportf
      "seed %d: %s differ@.lhs (%d): @[%a@]@.rhs (%d): @[%a@]" seed what
      (List.length a)
      Fmt.(list ~sep:comma Espbags.Race.pp_sig)
      a (List.length b)
      Fmt.(list ~sep:comma Espbags.Race.pp_sig)
      b

(* One differential check: [backend] vs [reference] on the program
   generated from [seed].  [prune] monitors only statements the static
   pre-pass cannot prove race-free; pruned comparisons are multiset
   (sorted) since skipped accesses no longer interleave reports. *)
let diff_one ?(gen_cfg = Benchsuite.Progen.default) ~backend ~mode ~prune seed
    =
  let prog = compile (Benchsuite.Progen.generate ~cfg:gen_cfg ~seed ()) in
  let oracle = reference.run mode prog in
  if prune then begin
    let pr = Static.Prune.make prog in
    let got = backend.run ~keep:(Static.Prune.keep_fn pr) mode prog in
    check_identical ~seed
      ~what:
        (Fmt.str "pruned %s %a race multisets vs seed" backend.bname
           Espbags.Detector.pp_mode mode)
      (List.sort compare got.sigs)
      (List.sort compare oracle.sigs);
    if got.n_skipped > oracle.n_accesses then
      QCheck.Test.fail_reportf "seed %d: %s skipped more accesses than exist"
        seed backend.bname
  end
  else begin
    let got = backend.run mode prog in
    check_identical ~seed
      ~what:
        (Fmt.str "%s %a race records vs seed" backend.bname
           Espbags.Detector.pp_mode mode)
      got.sigs oracle.sigs;
    if got.n_accesses <> oracle.n_accesses then
      QCheck.Test.fail_reportf "seed %d: %s access counters differ (%d vs %d)"
        seed backend.bname got.n_accesses oracle.n_accesses
  end;
  true

(* The full (backend x mode x prune) grid as qcheck tests over random
   program seeds. *)
let diff_tests ?gen_cfg ?(count = qcheck_count) ~backends ~modes ~prunes () =
  List.concat_map
    (fun backend ->
      List.concat_map
        (fun mode ->
          List.map
            (fun prune ->
              QCheck.Test.make ~count
                ~name:
                  (Fmt.str "%s %a%s == seed" backend.bname
                     Espbags.Detector.pp_mode mode
                     (if prune then " + static prune (multiset)"
                      else " (ordered records)"))
                QCheck.(int_range 0 1_000_000)
                (diff_one ?gen_cfg ~backend ~mode ~prune))
            prunes)
        modes)
    backends
