(* Repair-strategy tournament: candidate generation for each strategy,
   verification through the detect loop, CPL-based winner selection and
   the strategy.* metric family. *)

module Strategy = Repair.Strategy
module Score = Compgraph.Score

let compile = Mhj.Front.compile

let out prog = (Rt.Interp.run prog).Rt.Interp.output

let metric outcome key =
  match List.assoc_opt key outcome.Strategy.metrics with
  | Some v -> v
  | None -> Alcotest.failf "metric %s missing" key

let cpl_of (c : Strategy.candidate) = (Option.get c.score).Score.cpl

let candidate outcome kind =
  List.find (fun (c : Strategy.candidate) -> c.kind = kind)
    outcome.Strategy.candidates

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

(* Figure 8 fib: parent reads the children's results too early.  Finish
   insertion restores the join and keeps the recursive parallelism. *)
let fib_buggy =
  {|
def fib(ret: int[], reti: int, n: int) {
  if (n < 2) { ret[reti] = n; return; }
  val x: int[] = new int[1];
  val y: int[] = new int[1];
  async fib(x, 0, n - 1);
  async fib(y, 0, n - 2);
  ret[reti] = x[0] + y[0];
}
def main() {
  val r: int[] = new int[1];
  async fib(r, 0, 8);
  print(r[0]);
}
|}

(* Sibling reduction: every iteration accumulates into sum[0] after a
   heavy local computation.  Finish insertion can only serialize the
   whole loop; wrapping the (commutative) accumulation in [isolated]
   keeps the heavy() calls parallel. *)
let reduce_src =
  {|
def heavy(n: int): int {
  var acc: int = 0;
  for (j = 0 to 63) { acc = acc + n + j; }
  return acc;
}
def main() {
  val sum: int[] = new int[1];
  finish {
    for (i = 0 to 7) {
      async {
        val v: int = heavy(i);
        sum[0] = sum[0] + v;
      }
    }
  }
  print(sum[0]);
}
|}

(* Stride-8 stencil: iteration i reads the slot iteration i+8 writes,
   through a user call — so [isolated] is inapplicable and finish
   insertion serializes the loop, but an 8-iteration chunk boundary
   separates every conflicting pair. *)
let stencil_src =
  {|
def heavy(n: int): int {
  var acc: int = 0;
  for (j = 0 to 31) { acc = acc + n + j; }
  return acc;
}
def main() {
  val a: int[] = new int[16];
  finish {
    for (i = 0 to 15) {
      async {
        if (i < 8) { a[i] = heavy(a[i + 8]); }
        else { a[i] = heavy(i); }
      }
    }
  }
  var s: int = 0;
  for (k = 0 to 15) { s = s + a[k]; }
  print(s);
}
|}

(* ------------------------------------------------------------------ *)
(* Tests                                                               *)
(* ------------------------------------------------------------------ *)

let test_fib_tournament () =
  let prog = compile fib_buggy in
  let outcome = Strategy.run `Tournament prog in
  Alcotest.(check bool)
    "winner verified" true outcome.Strategy.winner.verified;
  Alcotest.(check string)
    "winner computes fib(8)" "21"
    (String.trim (out outcome.Strategy.program));
  let fin = candidate outcome Strategy.Finish in
  Alcotest.(check bool) "finish candidate verified" true fin.verified;
  (* whatever wins, it may not be worse than finish insertion *)
  Alcotest.(check bool)
    "winner cpl <= finish cpl" true
    (cpl_of outcome.Strategy.winner <= cpl_of fin);
  Alcotest.(check int)
    "strategy.winner metric matches" (metric outcome "strategy.winner")
    (match outcome.Strategy.winner.kind with
    | Strategy.Finish -> 0
    | Strategy.Isolated -> 1
    | Strategy.Elide -> 2
    | Strategy.Chunk -> 3)

let test_reduce_isolated_wins () =
  let prog = compile reduce_src in
  let expected = out prog in
  let outcome = Strategy.run `Tournament prog in
  Alcotest.(check string)
    "winner keeps the reduction's value" expected
    (out outcome.Strategy.program);
  (* the accumulation race is between sibling iterations: finish can
     only serialize, isolated keeps the heavy() calls parallel *)
  let iso = candidate outcome Strategy.Isolated in
  Alcotest.(check bool) "isolated verified" true iso.verified;
  Alcotest.(check bool)
    "isolated candidate uses isolated sections" true
    (Mhj.Ast.count_isolated (Option.get iso.program) > 0);
  Alcotest.(check string) "isolated wins" "isolated"
    (Strategy.kind_name outcome.Strategy.winner.kind);
  let fin = candidate outcome Strategy.Finish in
  (if fin.verified then
     Alcotest.(check bool)
       "isolated strictly beats finish" true
       (cpl_of iso < cpl_of fin));
  Alcotest.(check int) "winner metric says isolated" 1
    (metric outcome "strategy.winner");
  Alcotest.(check int) "isolated.verified metric" 1
    (metric outcome "strategy.isolated.verified")

let test_stencil_chunk_wins () =
  let prog = compile stencil_src in
  let expected = out prog in
  let outcome = Strategy.run `Tournament prog in
  Alcotest.(check string)
    "winner keeps the stencil's value" expected
    (out outcome.Strategy.program);
  let chunk = candidate outcome Strategy.Chunk in
  Alcotest.(check bool) "chunk verified" true chunk.verified;
  (* the racing statement calls heavy(), so isolated is inapplicable *)
  let iso = candidate outcome Strategy.Isolated in
  Alcotest.(check bool) "isolated inapplicable" false iso.verified;
  Alcotest.(check string) "chunk wins" "chunk"
    (Strategy.kind_name outcome.Strategy.winner.kind);
  Alcotest.(check int) "winner metric says chunk" 3
    (metric outcome "strategy.winner")

let test_single_strategy_elide () =
  let prog = compile fib_buggy in
  let outcome = Strategy.run `Elide prog in
  Alcotest.(check string) "elide winner" "elide"
    (Strategy.kind_name outcome.Strategy.winner.kind);
  Alcotest.(check bool) "verified" true outcome.Strategy.winner.verified;
  (* full elision leaves a sequential program *)
  Alcotest.(check int) "no asyncs left" 0
    (Mhj.Ast.count_asyncs outcome.Strategy.program);
  Alcotest.(check string) "still computes fib(8)" "21"
    (String.trim (out outcome.Strategy.program))

let test_single_strategy_isolated_inapplicable () =
  let prog = compile stencil_src in
  Alcotest.check_raises "isolated alone cannot repair the stencil"
    (Repair.Driver.Unrepairable
       "strategy isolated produced no race-free repair: racing statements \
        are not serializable in isolated")
    (fun () -> ignore (Strategy.run `Isolated prog))

let test_finish_choice_matches_driver () =
  let prog = compile fib_buggy in
  let outcome = Strategy.run `Finish prog in
  let report = Repair.Driver.repair prog in
  Alcotest.(check int) "same finish count"
    (Mhj.Ast.count_finishes report.Repair.Driver.program)
    (Mhj.Ast.count_finishes outcome.Strategy.program);
  Alcotest.(check bool) "report carried" true
    (outcome.Strategy.finish_report <> None)

let test_both_backends_verify () =
  let prog = compile reduce_src in
  let outcome = Strategy.run `Tournament prog in
  List.iter
    (fun backend ->
      Alcotest.(check bool)
        (Fmt.str "winner race-free under %s"
           (match backend with `Espbags -> "espbags" | `Vclock -> "vclock"))
        true
        (Strategy.race_free ~backend outcome.Strategy.program))
    [ `Espbags; `Vclock ]

let () =
  Alcotest.run "strategy"
    [
      ( "tournament",
        [
          Alcotest.test_case "fib: winner no worse than finish" `Quick
            test_fib_tournament;
          Alcotest.test_case "reduction: isolated wins" `Quick
            test_reduce_isolated_wins;
          Alcotest.test_case "stencil: chunk wins" `Quick
            test_stencil_chunk_wins;
          Alcotest.test_case "winner verifies under both backends" `Quick
            test_both_backends_verify;
        ] );
      ( "single strategy",
        [
          Alcotest.test_case "elide serializes fib" `Quick
            test_single_strategy_elide;
          Alcotest.test_case "isolated inapplicable raises" `Quick
            test_single_strategy_isolated_inapplicable;
          Alcotest.test_case "finish choice matches the driver" `Quick
            test_finish_choice_matches_driver;
        ] );
    ]
